package repro

import (
	"bytes"
	"testing"

	"repro/internal/kspectrum"
	"repro/internal/reptile"
	"repro/internal/simulate"
)

// BenchmarkSpectrumReadWrite measures the persistent spectrum store
// (kspectrum.WriteSpectrum/ReadSpectrum) on the D3-scale spectrum: the
// encode and decode legs separately, with bytes/op reflecting the on-disk
// size so the ns/op convert to MB/s. The decode leg includes the full
// validation pass (ordering, range, CRC) and the frozen-index rebuild —
// the real cost of a daemon loading a spectrum at startup.
func BenchmarkSpectrumReadWrite(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	s, err := kspectrum.Build(simulate.Reads(ds.Sim), 13, true)
	if err != nil {
		b.Fatal(err)
	}
	var blob bytes.Buffer
	if err := kspectrum.WriteSpectrum(&blob, s); err != nil {
		b.Fatal(err)
	}
	size := int64(blob.Len())

	b.Run("write", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "bytes": float64(size)})
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			buf.Grow(int(size))
			if err := kspectrum.WriteSpectrum(&buf, s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "bytes": float64(size)})
		b.SetBytes(size)
		data := blob.Bytes()
		for i := 0; i < b.N; i++ {
			got, err := kspectrum.ReadSpectrum(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if got.Size() != s.Size() {
				b.Fatalf("decoded %d kmers want %d", got.Size(), s.Size())
			}
		}
	})
}

// BenchmarkServeCorrectChunk measures the serve path of the correction
// daemon (cmd/kserve) without the HTTP framing: a shared
// reptile.Service — spectrum and neighbor index built once — correcting
// independent request-sized chunks. The serial leg is one request's
// latency; the parallel leg is the daemon's steady-state shape, many
// requests sharing the read-only Phase 1 products.
func BenchmarkServeCorrectChunk(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	s, err := kspectrum.Build(reads, 13, true)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := reptile.NewService(s, reptile.Params{D: 1})
	if err != nil {
		b.Fatal(err)
	}
	chunkLen := min(512, len(reads))
	chunk := reads[:chunkLen]

	b.Run("serial", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"chunk_reads": float64(chunkLen)})
		for i := 0; i < b.N; i++ {
			if _, _, err := svc.CorrectChunk(chunk, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(chunkLen), "chunk_reads")
	})
	b.Run("parallel", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"chunk_reads": float64(chunkLen)})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := svc.CorrectChunk(chunk, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.ReportMetric(float64(chunkLen), "chunk_reads")
	})
}
