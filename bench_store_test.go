package repro

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/kspectrum"
	"repro/internal/reptile"
	"repro/internal/simulate"
)

// BenchmarkSpectrumReadWrite measures the persistent spectrum store
// (kspectrum.WriteSpectrum/ReadSpectrum) on the D3-scale spectrum: the
// encode and decode legs separately, with bytes/op reflecting the on-disk
// size so the ns/op convert to MB/s. The decode leg includes the full
// validation pass (ordering, range, CRC) and the frozen-index rebuild —
// the real cost of a daemon loading a spectrum at startup.
func BenchmarkSpectrumReadWrite(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	s, err := kspectrum.Build(simulate.Reads(ds.Sim), 13, true)
	if err != nil {
		b.Fatal(err)
	}
	var blob bytes.Buffer
	if err := kspectrum.WriteSpectrum(&blob, s); err != nil {
		b.Fatal(err)
	}
	size := int64(blob.Len())
	// One encode or decode of the default-scale store is a handful of
	// milliseconds — single-sample noise at -benchtime 1x (observed swings
	// of ±60% across identical runs). Repeat each leg until an op moves at
	// least 128 MiB, which lands one op comfortably above the benchguard
	// gate floor (-min-gate-ms) at ~1 GB/s; bytes/op still converts to MB/s.
	reps := int(max(1, (128<<20)/size))

	b.Run("write", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "bytes": float64(size), "reps": float64(reps)})
		b.SetBytes(size * int64(reps))
		for i := 0; i < b.N; i++ {
			for r := 0; r < reps; r++ {
				var buf bytes.Buffer
				buf.Grow(int(size))
				if err := kspectrum.WriteSpectrum(&buf, s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "bytes": float64(size), "reps": float64(reps)})
		b.SetBytes(size * int64(reps))
		data := blob.Bytes()
		for i := 0; i < b.N; i++ {
			for r := 0; r < reps; r++ {
				got, err := kspectrum.ReadSpectrum(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				if got.Size() != s.Size() {
					b.Fatalf("decoded %d kmers want %d", got.Size(), s.Size())
				}
			}
		}
	})
}

// BenchmarkSpectrumOpenCold measures cold start to first answer for the
// two ways of materializing a persisted spectrum: the copying loader
// (ReadSpectrumFile: decode + full validation + frozen index, then one
// query) versus the zero-copy mapping (OpenMapped: header checks only,
// then one query touching a single lazily-validated bucket). The
// mapped/full-scan leg adds Verify — the deferred whole-file check — to
// show what the laziness actually defers. Each leg repeats the full
// open/query/close cycle per op to smooth single-sample noise; the reps
// differ per leg (they measure different magnitudes), so legs are
// comparable across PRs but only ns/op÷reps across legs.
func BenchmarkSpectrumOpenCold(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	s, err := kspectrum.Build(simulate.Reads(ds.Sim), 13, true)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "cold.kspc")
	if err := kspectrum.WriteSpectrumFile(path, s); err != nil {
		b.Fatal(err)
	}
	probe := s.Kmers[len(s.Kmers)/2]

	b.Run("copied/full-load", func(b *testing.B) {
		const reps = 24
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "reps": reps})
		for i := 0; i < b.N; i++ {
			for r := 0; r < reps; r++ {
				got, err := kspectrum.ReadSpectrumFile(path)
				if err != nil {
					b.Fatal(err)
				}
				if got.Index(probe) < 0 {
					b.Fatal("probe missing")
				}
				got.Close()
			}
		}
	})
	b.Run("mapped/first-query", func(b *testing.B) {
		const reps = 512
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "reps": reps})
		for i := 0; i < b.N; i++ {
			for r := 0; r < reps; r++ {
				got, err := kspectrum.OpenMapped(path)
				if err != nil {
					b.Fatal(err)
				}
				if got.Index(probe) < 0 {
					b.Fatal("probe missing")
				}
				got.Close()
			}
		}
	})
	b.Run("mapped/full-scan", func(b *testing.B) {
		const reps = 24
		defer recordBench(b, map[string]float64{"kmers": float64(s.Size()), "reps": reps})
		for i := 0; i < b.N; i++ {
			for r := 0; r < reps; r++ {
				got, err := kspectrum.OpenMapped(path)
				if err != nil {
					b.Fatal(err)
				}
				if err := got.Verify(); err != nil {
					b.Fatal(err)
				}
				if got.Index(probe) < 0 {
					b.Fatal("probe missing")
				}
				got.Close()
			}
		}
	})
}

// BenchmarkServeCorrectChunk measures the serve path of the correction
// daemon (cmd/kserve) without the HTTP framing: a shared
// reptile.Service — spectrum and neighbor index built once — correcting
// independent request-sized chunks. The serial leg is one request's
// latency; the parallel leg is the daemon's steady-state shape, many
// requests sharing the read-only Phase 1 products.
func BenchmarkServeCorrectChunk(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	s, err := kspectrum.Build(reads, 13, true)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := reptile.NewService(s, reptile.Params{D: 1})
	if err != nil {
		b.Fatal(err)
	}
	chunkLen := min(512, len(reads))
	chunk := reads[:chunkLen]

	b.Run("serial", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"chunk_reads": float64(chunkLen)})
		for i := 0; i < b.N; i++ {
			if _, _, err := svc.CorrectChunk(chunk, 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(chunkLen), "chunk_reads")
	})
	b.Run("parallel", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"chunk_reads": float64(chunkLen)})
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := svc.CorrectChunk(chunk, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.ReportMetric(float64(chunkLen), "chunk_reads")
	})
}
