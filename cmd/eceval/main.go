// Command eceval scores an error correction run at base level (§2.4): given
// the original reads, the corrected reads, and the error-free truth (all
// FASTQ, same order), it reports TP/FP/TN/FN, EBA, Sensitivity, Specificity
// and Gain.
//
// Usage:
//
//	eceval -before reads.fastq -after corrected.fastq -truth truth.fastq [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/eval"
	"repro/internal/fastq"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eceval: ")
	var (
		before  = flag.String("before", "", "original reads FASTQ (required)")
		after   = flag.String("after", "", "corrected reads FASTQ (required)")
		truth   = flag.String("truth", "", "error-free truth FASTQ (required)")
		workers = flag.Int("workers", 0, "parallel workers (0 = all cores)")
	)
	flag.Parse()
	if *before == "" || *after == "" || *truth == "" {
		log.Fatal("-before, -after and -truth are required")
	}
	b := readAll(*before)
	a := readAll(*after)
	tr := readAll(*truth)
	if len(b) != len(a) || len(b) != len(tr) {
		log.Fatalf("read counts differ: before=%d after=%d truth=%d", len(b), len(a), len(tr))
	}
	sim := make([]simulate.SimRead, len(b))
	for i := range b {
		if b[i].ID != tr[i].ID {
			log.Fatalf("read %d: id mismatch %q vs truth %q", i, b[i].ID, tr[i].ID)
		}
		sim[i] = simulate.SimRead{Read: b[i], True: tr[i].Seq}
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	stats, err := eval.EvaluateCorrectionParallel(sim, a, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stats)
}

func readAll(path string) []seq.Read {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	reads, err := fastq.NewReader(f).ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	return reads
}
