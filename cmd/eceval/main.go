// Command eceval scores an error correction run at base level (§2.4):
// TP/FP/TN/FN, EBA, Sensitivity, Specificity and Gain against error-free
// truth. It is a thin wrapper over `repro eceval` — the same subcommand
// function, flags and output; see internal/cli.
package main

import "repro/internal/cli"

func main() {
	cli.Main("eceval", cli.Eceval)
}
