package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolSmoke proves the binary speaks the cmd/go vettool
// protocol end to end: `go vet -vettool=reprolint` on a scratch module
// fails with our diagnostic on a violating package and passes on a
// clean one.
func TestVettoolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "reprolint")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reprolint: %v\n%s", err, out)
	}

	t.Run("violation", func(t *testing.T) {
		dir := writeModule(t, `package p

import "fmt"

//repro:noalloc
func Hot(s string) {
	fmt.Println(s)
}
`)
		out, err := runVet(t, tool, dir)
		if err == nil {
			t.Fatalf("go vet passed on a //repro:noalloc violation:\n%s", out)
		}
		if !strings.Contains(out, "calls fmt.Println") || !strings.Contains(out, "(noalloc)") {
			t.Fatalf("vet failed but without the expected noalloc diagnostic:\n%s", out)
		}
	})

	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, `package p

//repro:noalloc
func Hot(dst []byte) []byte {
	dst = append(dst, 'x')
	return dst
}
`)
		out, err := runVet(t, tool, dir)
		if err != nil {
			t.Fatalf("go vet failed on a clean package: %v\n%s", err, out)
		}
	})
}

func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module smoke\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runVet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}
