// Reprolint is the repository's vet tool: the project-specific
// analyzers from internal/lint compiled into a single binary that
// speaks the cmd/go vettool protocol. CI (and contributors) run it as
//
//	go build -o /tmp/reprolint ./cmd/reprolint
//	go vet -vettool=/tmp/reprolint ./...
//
// Any diagnostic fails the vet run, making the repo's hand-maintained
// invariants — zero-alloc hot paths, context threading, declared fault
// sites, %w error chains, the unsafe/mmap fence — machine-checked
// compile gates. Run `reprolint help` for the analyzer list.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/errwrap"
	"repro/internal/lint/faultsite"
	"repro/internal/lint/nilness"
	"repro/internal/lint/noalloc"
	"repro/internal/lint/shadow"
	"repro/internal/lint/unsafescope"
)

func main() {
	lint.Main(
		noalloc.Analyzer,
		ctxflow.Analyzer,
		faultsite.Analyzer,
		errwrap.Analyzer,
		unsafescope.Analyzer,
		nilness.Analyzer,
		shadow.Analyzer,
	)
}
