// Command repro is the unified front end over the dissertation's systems:
// one multi-command binary exposing every engine and tool through a
// shared flag layer and one failure path.
//
// Usage:
//
//	repro reptile -in reads.fastq -out corrected.fastq [flags]
//	repro redeem  -in reads.fastq -out corrected.fastq [flags]
//	repro shrec   -in reads.fastq -out corrected.fastq [flags]
//	repro serve   -spectrum name=spec.kspc [flags]
//	repro ngsim   -mode reads|meta -out reads.fastq [flags]
//	repro eceval  -before a.fastq -after b.fastq -truth t.fastq [flags]
//	repro closet  -in meta.fastq -out clusters.tsv [flags]
//
// Run `repro <subcommand> -h` for a subcommand's flags. The legacy
// single-purpose binaries (reptile, redeem, kserve, ngsim, eceval,
// closet) remain as thin wrappers over the same subcommand functions, so
// their behavior and output are identical.
package main

import (
	"io"
	"os"

	"repro/internal/cli"
)

// stdout is the subcommands' status stream; a variable so the binary
// stays a two-liner if tests ever need to capture it.
var stdout io.Writer = os.Stdout

func main() {
	cli.Main("repro", func(args []string) error { return cli.Run(args, stdout) })
}
