// Command ngsim synthesizes the evaluation datasets of the dissertation:
// reference genomes with controlled repeat content, Illumina-like short
// reads with position-specific error profiles and ground truth, and
// 454-like metagenomic 16S read pools with taxonomy labels.
//
// Usage:
//
//	ngsim -mode reads  -genome-len 100000 -read-len 36 -coverage 80 \
//	      -error-rate 0.006 -repeat-frac 0.5 -out reads.fastq \
//	      -truth truth.fastq -ref ref.fasta [-workers N]
//	ngsim -mode meta   -n 50000 -out meta.fastq -labels labels.tsv
//
// The truth file carries the error-free read sequences in the same order as
// the read file, enabling exact evaluation with eceval.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/fastq"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ngsim: ")
	var (
		mode       = flag.String("mode", "reads", "what to simulate: reads | meta")
		out        = flag.String("out", "", "output FASTQ path (required)")
		seed       = flag.Int64("seed", 1, "random seed")
		genomeLen  = flag.Int("genome-len", 100000, "reference genome length (reads mode)")
		repeatFrac = flag.Float64("repeat-frac", 0, "fraction of genome covered by repeats (reads mode)")
		readLen    = flag.Int("read-len", 36, "read length (reads mode)")
		coverage   = flag.Float64("coverage", 80, "sequencing coverage (reads mode)")
		errorRate  = flag.Float64("error-rate", 0.006, "mean substitution rate")
		bias       = flag.String("bias", "ecoli", "platform bias profile: ecoli | asp | uniform")
		nRate      = flag.Float64("n-rate", 0, "ambiguous base rate (reads mode)")
		truth      = flag.String("truth", "", "optional error-free truth FASTQ (reads mode)")
		ref        = flag.String("ref", "", "optional reference genome FASTA (reads mode)")
		n          = flag.Int("n", 10000, "number of reads (meta mode)")
		labels     = flag.String("labels", "", "optional taxonomy label TSV (meta mode)")
		workers    = flag.Int("workers", 1, "read-synthesis workers (reads mode); <=1 = the single-stream sampler, >1 = parallel per-read RNG streams (identical output for any worker count >1, but different from the single-stream sampler)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}
	switch *mode {
	case "reads":
		if err := simReads(*out, *truth, *ref, *seed, *genomeLen, *repeatFrac, *readLen, *coverage, *errorRate, *bias, *nRate, *workers); err != nil {
			log.Fatal(err)
		}
	case "meta":
		if err := simMeta(*out, *labels, *seed, *n, *errorRate); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func simReads(out, truth, ref string, seed int64, genomeLen int, repeatFrac float64, readLen int, coverage, errorRate float64, bias string, nRate float64, workers int) error {
	var platform simulate.PlatformBias
	switch bias {
	case "ecoli":
		platform = simulate.EcoliBias
	case "asp":
		platform = simulate.AspBias
	case "uniform":
		platform = simulate.PlatformBias{Name: "uniform", Bias: simulate.Matrix4{
			{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0},
		}}
	default:
		return fmt.Errorf("unknown bias %q", bias)
	}
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "ngsim", GenomeLen: genomeLen, RepeatFrac: repeatFrac,
		ReadLen: readLen, Coverage: coverage, ErrorRate: errorRate,
		Bias: platform, QualityNoise: 2, AmbiguousRate: nRate, Seed: seed,
		Workers: workers,
	})
	if err != nil {
		return err
	}
	if err := writeFastq(out, simulate.Reads(ds.Sim)); err != nil {
		return err
	}
	if truth != "" {
		tr := make([]seq.Read, len(ds.Sim))
		for i, s := range ds.Sim {
			tr[i] = seq.Read{ID: s.Read.ID, Seq: s.True}
		}
		if err := writeFastq(truth, tr); err != nil {
			return err
		}
	}
	if ref != "" {
		f, err := os.Create(ref)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fastq.WriteFasta(f, []fastq.FastaRecord{{ID: "ngsim-ref", Seq: ds.Genome}}); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d reads (%dbp, %.0fx, %.2f%% error) over a %d bp genome (%.0f%% repeats)\n",
		len(ds.Sim), readLen, coverage, 100*errorRate, genomeLen, 100*repeatFrac)
	return nil
}

func simMeta(out, labels string, seed int64, n int, errorRate float64) error {
	rng := rand.New(rand.NewSource(seed))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		return err
	}
	cfg := simulate.DefaultMetagenomeConfig(n)
	if errorRate > 0 {
		cfg.ErrorRate = errorRate
	}
	reads, err := simulate.SampleMetagenome(tax, cfg, rng)
	if err != nil {
		return err
	}
	if err := writeFastq(out, simulate.MetaReads(reads)); err != nil {
		return err
	}
	if labels != "" {
		f, err := os.Create(labels)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "read\tphylum\tgenus\tspecies")
		for _, r := range reads {
			fmt.Fprintf(f, "%s\t%d\t%d\t%d\n", r.Read.ID, r.Taxon.Phylum, r.Taxon.Genus, r.Taxon.Species)
		}
	}
	fmt.Printf("wrote %d metagenomic reads from %d species\n", len(reads), len(tax.Species))
	return nil
}

func writeFastq(path string, reads []seq.Read) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fastq.Write(f, reads)
}
