// Command ngsim synthesizes the evaluation datasets of the dissertation:
// reference genomes, Illumina-like short reads with ground truth, and
// 454-like metagenomic 16S read pools with taxonomy labels. It is a thin
// wrapper over `repro ngsim` — the same subcommand function, flags and
// output; see internal/cli.
package main

import "repro/internal/cli"

func main() {
	cli.Main("ngsim", cli.Ngsim)
}
