// Command redeem performs repeat-aware error detection and correction
// (Chapter 3): EM estimation of per-kmer expected read attempts, automatic
// threshold inference via the §3.7 mixture model, and per-base posterior
// correction. Correction runs as a streaming pipeline: two chunked passes
// over the input, so with -mem-budget the k-spectrum accumulator spills to
// disk and peak memory is bounded regardless of input size.
//
// Usage:
//
//	redeem -in reads.fastq -out corrected.fastq [-k 11] [-error-rate 0.01] \
//	       [-workers N] [-shards N] [-mem-budget 64MB] \
//	       [-load-spectrum spec.kspc] [-save-spectrum spec.kspc] \
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	redeem -in reads.fastq -detect-only -k 11            # print the T histogram + threshold
//
// -save-spectrum persists the counted k-spectrum; -load-spectrum reuses a
// persisted one, skipping the counting pass entirely (EM and correction
// still run, so output is byte-identical to a fresh build over the same
// input). The stored k is authoritative: it overrides the default when -k
// is not given, and an explicitly disagreeing -k is an error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("redeem: ")
	var (
		in         = flag.String("in", "", "input FASTQ (required)")
		out        = flag.String("out", "", "output FASTQ (required unless -detect-only)")
		k          = flag.Int("k", 11, "kmer length")
		errorRate  = flag.Float64("error-rate", 0.01, "assumed uniform substitution rate for the error model")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		shards     = flag.Int("shards", 0, "spectrum shard count (0 = derive from workers)")
		memBudget  = flag.String("mem-budget", "0", "spectrum accumulator budget, e.g. 64MB (0 = unlimited, in-memory)")
		loadSpec   = flag.String("load-spectrum", "", "reuse a persisted k-spectrum instead of counting the input")
		saveSpec   = flag.String("save-spectrum", "", "persist the run's k-spectrum to this path")
		detectOnly = flag.Bool("detect-only", false, "estimate T, print histogram and inferred threshold, and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *in == "" || (*out == "" && !*detectOnly) {
		log.Fatal("-in is required, and -out unless -detect-only")
	}
	budget, err := core.ParseByteSize(*memBudget)
	if err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := core.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	var spec *kspectrum.Spectrum
	if *loadSpec != "" {
		// -k has a non-zero default, so explicitness needs flag.Visit;
		// core.LoadSpectrumForK then owns the k-authority rule.
		explicitK := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "k" {
				explicitK = *k
			}
		})
		spec, err = core.LoadSpectrumForK(*loadSpec, explicitK)
		if err != nil {
			log.Fatal(err)
		}
		*k = spec.K // the stored k is authoritative over the default
	}
	model := simulate.NewUniformKmerModel(*k, *errorRate)
	cfg := redeem.DefaultConfig(*k)
	cfg.Spectrum = spec
	cfg.Build = kspectrum.BuildOptions{Workers: *workers, Shards: *shards}
	cfg.MemoryBudget = budget
	// The CLI has always swept up to 4 mixture components; keep the
	// correction pass consistent with the -detect-only report.
	cfg.MixtureMaxG = 4
	start := time.Now()

	if *detectOnly {
		// With a preloaded spectrum the reads are never consulted —
		// detection runs purely on the stored counts — so skip reading
		// the (possibly huge) input entirely.
		var reads []seq.Read
		if spec == nil {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			if reads, err = fastq.NewReader(f).ReadAll(); err != nil {
				f.Close()
				log.Fatal(err)
			}
			f.Close()
		}
		m, err := redeem.New(reads, model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		iters := m.Run()
		thr, mix, err := m.InferThreshold(1, 4)
		if err != nil {
			log.Fatal(err)
		}
		if *saveSpec != "" {
			if err := kspectrum.WriteSpectrumFile(*saveSpec, m.Spec); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("spectrum %d kmers; EM converged in %d iterations; inferred threshold %.2f (coverage constant %.1f, G=%d) in %v\n",
			m.Spec.Size(), iters, thr, mix.Theta, mix.G, time.Since(start).Round(time.Millisecond))
		flagged := m.DetectByT(thr)
		n := 0
		for _, b := range flagged {
			if b {
				n++
			}
		}
		fmt.Printf("flagged %d of %d kmers as erroneous\n", n, len(flagged))
		fmt.Println("T histogram (bin width = coverage/20):")
		width := mix.Theta / 20
		if width <= 0 {
			width = 1
		}
		h := m.THistogram(width, 2.5*mix.Theta)
		for b, c := range h {
			fmt.Printf("%8.1f %d\n", float64(b)*width, c)
		}
		if err := stopProfiles(); err != nil {
			log.Fatal(err)
		}
		return
	}

	open := func() (redeem.ChunkSource, error) {
		f, err := os.Open(*in)
		if err != nil {
			return nil, err
		}
		return fastq.NewChunkReader(f, 0), nil
	}
	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	w := fastq.NewWriter(o)
	total, changed := 0, 0
	emit := func(orig, corrected []seq.Read) error {
		total += len(orig)
		for i := range orig {
			if string(orig[i].Seq) != string(corrected[i].Seq) {
				changed++
			}
		}
		return w.WriteChunk(corrected)
	}
	m, thr, err := redeem.CorrectStream(open, emit, model, cfg, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *saveSpec != "" {
		if err := kspectrum.WriteSpectrumFile(*saveSpec, m.Spec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("spectrum %d kmers; inferred threshold %.2f; corrected %d of %d reads (budget %s) in %v\n",
		m.Spec.Size(), thr, changed, total, *memBudget, time.Since(start).Round(time.Millisecond))
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
