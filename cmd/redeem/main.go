// Command redeem performs repeat-aware error detection and correction
// (Chapter 3): EM estimation of per-kmer expected read attempts,
// automatic threshold inference, and per-base posterior correction. It is
// a thin wrapper over `repro redeem` — the same subcommand function,
// flags and output; see internal/cli.
package main

import "repro/internal/cli"

func main() {
	cli.Main("redeem", cli.Redeem)
}
