// Command redeem performs repeat-aware error detection and correction
// (Chapter 3): EM estimation of per-kmer expected read attempts, automatic
// threshold inference via the §3.7 mixture model, and per-base posterior
// correction.
//
// Usage:
//
//	redeem -in reads.fastq -out corrected.fastq [-k 11] [-error-rate 0.01] [-workers N] [-shards N]
//	redeem -in reads.fastq -detect-only -k 11            # print the T histogram + threshold
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("redeem: ")
	var (
		in         = flag.String("in", "", "input FASTQ (required)")
		out        = flag.String("out", "", "output FASTQ (required unless -detect-only)")
		k          = flag.Int("k", 11, "kmer length")
		errorRate  = flag.Float64("error-rate", 0.01, "assumed uniform substitution rate for the error model")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		shards     = flag.Int("shards", 0, "spectrum shard count (0 = derive from workers)")
		detectOnly = flag.Bool("detect-only", false, "estimate T, print histogram and inferred threshold, and exit")
	)
	flag.Parse()
	if *in == "" || (*out == "" && !*detectOnly) {
		log.Fatal("-in is required, and -out unless -detect-only")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := fastq.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	model := simulate.NewUniformKmerModel(*k, *errorRate)
	cfg := redeem.DefaultConfig(*k)
	cfg.Build = kspectrum.BuildOptions{Workers: *workers, Shards: *shards}
	start := time.Now()
	m, err := redeem.New(reads, model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	iters := m.Run()
	thr, mix, err := m.InferThreshold(1, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spectrum %d kmers; EM converged in %d iterations; inferred threshold %.2f (coverage constant %.1f, G=%d) in %v\n",
		m.Spec.Size(), iters, thr, mix.Theta, mix.G, time.Since(start).Round(time.Millisecond))
	if *detectOnly {
		flagged := m.DetectByT(thr)
		n := 0
		for _, b := range flagged {
			if b {
				n++
			}
		}
		fmt.Printf("flagged %d of %d kmers as erroneous\n", n, len(flagged))
		fmt.Println("T histogram (bin width = coverage/20):")
		width := mix.Theta / 20
		if width <= 0 {
			width = 1
		}
		h := m.THistogram(width, 2.5*mix.Theta)
		for b, c := range h {
			fmt.Printf("%8.1f %d\n", float64(b)*width, c)
		}
		return
	}
	corrected := m.CorrectReads(reads, thr, *workers)
	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	if err := fastq.Write(o, corrected); err != nil {
		log.Fatal(err)
	}
	changed := 0
	for i := range reads {
		if string(reads[i].Seq) != string(corrected[i].Seq) {
			changed++
		}
	}
	fmt.Printf("corrected %d of %d reads in %v\n", changed, len(reads), time.Since(start).Round(time.Millisecond))
}
