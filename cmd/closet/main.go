// Command closet clusters metagenomic reads (Chapter 4): sketch-based
// edge construction followed by incremental γ-quasi-clique enumeration
// over a decreasing similarity-threshold ladder. It is a thin wrapper
// over `repro closet` — the same subcommand function, flags and output;
// see internal/cli.
package main

import "repro/internal/cli"

func main() {
	cli.Main("closet", cli.Closet)
}
