package main

import (
	"strings"
	"testing"
)

// defaultGateNs mirrors the -min-gate-ms flag default (100 ms).
const defaultGateNs = 100 * 1e6

func bf(scale int, recs ...benchRecord) *benchFile {
	for i := range recs {
		if recs[i].N == 0 {
			recs[i].N = 1 << 21 // amortized run, above the gate's time floor
		}
	}
	return &benchFile{PR: "t", Scale: scale, Benchmarks: recs}
}

func TestCompareFlagsOnlyExcessRegressions(t *testing.T) {
	oldF := bf(5000,
		benchRecord{Name: "A", NsPerOp: 100},
		benchRecord{Name: "B", NsPerOp: 100},
		benchRecord{Name: "C", NsPerOp: 100},
		benchRecord{Name: "Gone", NsPerOp: 50},
	)
	newF := bf(5000,
		benchRecord{Name: "A", NsPerOp: 124}, // +24% — inside the limit
		benchRecord{Name: "B", NsPerOp: 130}, // +30% — regression
		benchRecord{Name: "C", NsPerOp: 60},  // improvement
		benchRecord{Name: "Fresh", NsPerOp: 10},
	)
	rep := compare(oldF, newF, 0.25, defaultGateNs)
	if rep.shared != 3 {
		t.Fatalf("shared = %d want 3", rep.shared)
	}
	if len(rep.failures) != 1 || !strings.Contains(rep.failures[0], "B regressed 30.0%") {
		t.Fatalf("failures = %v", rep.failures)
	}
}

func TestCompareIgnoresUnmeasuredRecords(t *testing.T) {
	oldF := bf(5000, benchRecord{Name: "A", NsPerOp: 0})
	newF := bf(5000, benchRecord{Name: "A", NsPerOp: 1e9})
	rep := compare(oldF, newF, 0.25, defaultGateNs)
	if rep.shared != 0 || len(rep.failures) != 0 {
		t.Fatalf("zero ns/op records must not gate: %+v", rep)
	}
}

func TestCompareSkipsShortSamples(t *testing.T) {
	// A 20 ms run swinging ±60% at -benchtime 1x is single-sample noise,
	// not a regression; a run above the floor (via N or per-op workload)
	// gates again.
	oldF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 20e6})
	newF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 32e6})
	rep := compare(oldF, newF, 0.25, defaultGateNs)
	if rep.shared != 0 || len(rep.failures) != 0 {
		t.Fatalf("sub-floor samples must not gate: %+v", rep)
	}
	oldF.Benchmarks[0].NsPerOp = 200e6
	newF.Benchmarks[0].NsPerOp = 320e6
	rep = compare(oldF, newF, 0.25, defaultGateNs)
	if rep.shared != 1 || len(rep.failures) != 1 {
		t.Fatalf("above-floor samples must gate: %+v", rep)
	}
}

func TestCompareSkipsFloorCrossings(t *testing.T) {
	// A benchmark whose workload was raised past the floor in this PR has
	// a sub-floor old record: the pair must be skipped, not read as a
	// 100x regression (and the reverse direction must skip too).
	oldF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 5e6})
	newF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 400e6})
	rep := compare(oldF, newF, 0.25, defaultGateNs)
	if rep.shared != 0 || len(rep.failures) != 0 {
		t.Fatalf("floor-crossing pair must not gate: %+v", rep)
	}
	rep = compare(newF, oldF, 0.25, defaultGateNs)
	if rep.shared != 0 || len(rep.failures) != 0 {
		t.Fatalf("reverse floor-crossing pair must not gate: %+v", rep)
	}
}

func TestCompareHonorsGateFloorOverride(t *testing.T) {
	oldF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 2e6})
	newF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 4e6})
	if rep := compare(oldF, newF, 0.25, defaultGateNs); rep.shared != 0 {
		t.Fatalf("default floor must skip 2 ms samples: %+v", rep)
	}
	if rep := compare(oldF, newF, 0.25, 1e6); rep.shared != 1 || len(rep.failures) != 1 {
		t.Fatalf("a lowered floor must gate them: %+v", rep)
	}
}

func TestCompareBoundary(t *testing.T) {
	oldF := bf(5000, benchRecord{Name: "A", NsPerOp: 100})
	newF := bf(5000, benchRecord{Name: "A", NsPerOp: 125})
	if rep := compare(oldF, newF, 0.25, defaultGateNs); len(rep.failures) != 0 {
		t.Fatalf("exactly-at-limit must pass: %v", rep.failures)
	}
	newF.Benchmarks[0].NsPerOp = 125.2
	if rep := compare(oldF, newF, 0.25, defaultGateNs); len(rep.failures) != 1 {
		t.Fatal("just-over-limit must fail")
	}
}
