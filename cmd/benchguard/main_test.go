package main

import (
	"strings"
	"testing"
)

func bf(scale int, recs ...benchRecord) *benchFile {
	for i := range recs {
		if recs[i].N == 0 {
			recs[i].N = 1 << 20 // amortized run, above the gate's time floor
		}
	}
	return &benchFile{PR: "t", Scale: scale, Benchmarks: recs}
}

func TestCompareFlagsOnlyExcessRegressions(t *testing.T) {
	oldF := bf(5000,
		benchRecord{Name: "A", NsPerOp: 100},
		benchRecord{Name: "B", NsPerOp: 100},
		benchRecord{Name: "C", NsPerOp: 100},
		benchRecord{Name: "Gone", NsPerOp: 50},
	)
	newF := bf(5000,
		benchRecord{Name: "A", NsPerOp: 124}, // +24% — inside the limit
		benchRecord{Name: "B", NsPerOp: 130}, // +30% — regression
		benchRecord{Name: "C", NsPerOp: 60},  // improvement
		benchRecord{Name: "Fresh", NsPerOp: 10},
	)
	rep := compare(oldF, newF, 0.25)
	if rep.shared != 3 {
		t.Fatalf("shared = %d want 3", rep.shared)
	}
	if len(rep.failures) != 1 || !strings.Contains(rep.failures[0], "B regressed 30.0%") {
		t.Fatalf("failures = %v", rep.failures)
	}
}

func TestCompareIgnoresUnmeasuredRecords(t *testing.T) {
	oldF := bf(5000, benchRecord{Name: "A", NsPerOp: 0})
	newF := bf(5000, benchRecord{Name: "A", NsPerOp: 1e9})
	rep := compare(oldF, newF, 0.25)
	if rep.shared != 0 || len(rep.failures) != 0 {
		t.Fatalf("zero ns/op records must not gate: %+v", rep)
	}
}

func TestCompareSkipsSubMillisecondSamples(t *testing.T) {
	// A 2 µs lookup doubling at -benchtime 1x is single-sample noise, not
	// a regression; a repeated run crossing the floor via N gates again.
	oldF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 2000})
	newF := bf(5000, benchRecord{Name: "Q", N: 1, NsPerOp: 4000})
	rep := compare(oldF, newF, 0.25)
	if rep.shared != 0 || len(rep.failures) != 0 {
		t.Fatalf("sub-millisecond samples must not gate: %+v", rep)
	}
	oldF.Benchmarks[0].N = 1000
	newF.Benchmarks[0].N = 1000
	rep = compare(oldF, newF, 0.25)
	if rep.shared != 1 || len(rep.failures) != 1 {
		t.Fatalf("amortized samples must gate: %+v", rep)
	}
}

func TestCompareBoundary(t *testing.T) {
	oldF := bf(5000, benchRecord{Name: "A", NsPerOp: 100})
	newF := bf(5000, benchRecord{Name: "A", NsPerOp: 125})
	if rep := compare(oldF, newF, 0.25); len(rep.failures) != 0 {
		t.Fatalf("exactly-at-limit must pass: %v", rep.failures)
	}
	newF.Benchmarks[0].NsPerOp = 125.2
	if rep := compare(oldF, newF, 0.25); len(rep.failures) != 1 {
		t.Fatal("just-over-limit must fail")
	}
}
