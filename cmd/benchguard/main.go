// Command benchguard is the CI perf-regression gate: it compares two
// BENCH_pr<N>.json snapshots (see bench_helpers_test.go for the schema)
// and exits non-zero when any benchmark present in both regresses by more
// than the allowed ns/op fraction. Benchmarks that appear in only one
// snapshot are reported but never fail the gate — new benchmarks and
// retired ones are normal across PRs.
//
// Usage:
//
//	benchguard -old BENCH_pr2.json -new BENCH_pr3.json [-max-regress 0.25]
//
// A missing -old file is a skip, not a failure (the first PR has no
// predecessor artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

// benchRecord mirrors the benchmark entry of the harness's JSON schema.
type benchRecord struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchFile mirrors the BENCH_pr<N>.json envelope.
type benchFile struct {
	PR         string        `json:"pr"`
	Scale      int           `json:"repro_scale"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		oldPath    = flag.String("old", "", "previous BENCH_pr<N>.json (missing file = skip)")
		newPath    = flag.String("new", "", "fresh BENCH_pr<N>.json (required)")
		maxRegress = flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression on shared benchmarks")
		minGateMs  = flag.Float64("min-gate-ms", 100, "minimum total measured milliseconds (ns/op x n, both sides) for a benchmark to gate")
	)
	flag.Parse()
	if *newPath == "" {
		log.Fatal("-new is required")
	}
	if *oldPath == "" {
		log.Fatal("-old is required (point it at the previous artifact)")
	}
	oldFile, err := loadBench(*oldPath)
	if os.IsNotExist(err) {
		fmt.Printf("no previous snapshot at %s; skipping regression gate\n", *oldPath)
		return
	}
	if err != nil {
		log.Fatal(err)
	}
	newFile, err := loadBench(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	if oldFile.Scale != newFile.Scale {
		fmt.Printf("scales differ (old %d, new %d); skipping regression gate\n", oldFile.Scale, newFile.Scale)
		return
	}
	report := compare(oldFile, newFile, *maxRegress, *minGateMs*1e6)
	for _, line := range report.lines {
		fmt.Println(line)
	}
	fmt.Printf("compared %d shared benchmarks (old PR %s -> new PR %s): %d regressed beyond %.0f%%\n",
		report.shared, oldFile.PR, newFile.PR, len(report.failures), 100**maxRegress)
	if len(report.failures) > 0 {
		for _, f := range report.failures {
			fmt.Println("FAIL:", f)
		}
		os.Exit(1)
	}
}

func loadBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &bf, nil
}

// compareReport is the outcome of one snapshot comparison.
type compareReport struct {
	shared   int
	lines    []string // per-benchmark deltas, worst first not required
	failures []string // human-readable regression descriptions
}

// compare diffs the ns/op of benchmarks shared by name. Records with a
// non-positive ns/op on either side, or whose total measured time
// (ns_per_op × n) is below minGateNs on either side, are ignored. The CI
// suite runs at -benchtime 1x, so short benchmarks are single-sample
// noise — a 20 ms run jittering ±60% is not a regression signal, while a
// 200 ms build drifting 25% is; the -min-gate-ms default of 100 ms is the
// workload floor the in-repo benchmarks are sized against.
func compare(oldFile, newFile *benchFile, maxRegress, minGateNs float64) compareReport {
	oldByName := make(map[string]benchRecord, len(oldFile.Benchmarks))
	for _, r := range oldFile.Benchmarks {
		oldByName[r.Name] = r
	}
	var rep compareReport
	for _, nr := range newFile.Benchmarks {
		or, ok := oldByName[nr.Name]
		if !ok {
			rep.lines = append(rep.lines, fmt.Sprintf("  new   %-60s %12.0f ns/op", nr.Name, nr.NsPerOp))
			continue
		}
		if or.NsPerOp <= 0 || nr.NsPerOp <= 0 {
			continue
		}
		if or.NsPerOp*float64(or.N) < minGateNs || nr.NsPerOp*float64(nr.N) < minGateNs {
			rep.lines = append(rep.lines, fmt.Sprintf("  short %-60s %12.0f -> %.0f ns/op (below gate floor)",
				nr.Name, or.NsPerOp, nr.NsPerOp))
			continue
		}
		rep.shared++
		ratio := nr.NsPerOp/or.NsPerOp - 1
		rep.lines = append(rep.lines, fmt.Sprintf("  %+6.1f%% %-60s %12.0f -> %.0f ns/op",
			100*ratio, nr.Name, or.NsPerOp, nr.NsPerOp))
		if ratio > maxRegress {
			rep.failures = append(rep.failures, fmt.Sprintf(
				"%s regressed %.1f%% (%.0f -> %.0f ns/op, limit %.0f%%)",
				nr.Name, 100*ratio, or.NsPerOp, nr.NsPerOp, 100*maxRegress))
		}
	}
	return rep
}
