// Command kserve is the correction-as-a-service daemon: it loads one or
// more persisted k-spectra (see reptile/redeem -save-spectrum) into a
// named registry at startup and serves correction requests over HTTP from
// then on, so the expensive Phase-1 spectrum work is paid once per corpus
// instead of once per invocation.
//
// Usage:
//
//	kserve -spectrum ecoli=ecoli.kspc [-spectrum human=h.kspc ...] \
//	       [-listen :8424] [-max-inflight N] [-max-chunk-reads N] \
//	       [-workers N] [-error-rate 0.01] [-d 1]
//
// Endpoints:
//
//	POST /v1/correct?spectrum=NAME&method=reptile|redeem
//	    Request body: a FASTQ chunk. Response body: the corrected chunk,
//	    same order and count. The spectrum parameter may be omitted when
//	    exactly one spectrum is loaded. Per-request stats come back in
//	    X-Kserve-Reads / X-Kserve-Changed / X-Kserve-Duration-Ms headers.
//	GET /v1/spectra
//	    JSON list of the loaded spectra (name, k, kmers, both_strands).
//	GET /healthz
//	    Liveness plus aggregate request counters.
//
// Concurrency is bounded by a semaphore of -max-inflight slots; requests
// beyond the bound queue until a slot frees or the client gives up.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kserve: ")
	var specs specFlags
	var (
		listen        = flag.String("listen", ":8424", "HTTP listen address")
		maxInflight   = flag.Int("max-inflight", 0, "max concurrent correction requests (0 = 2x GOMAXPROCS)")
		maxChunkReads = flag.Int("max-chunk-reads", 100000, "max reads accepted per request (0 = unlimited)")
		maxChunkBytes = flag.String("max-chunk-bytes", "64MB", "max raw request body size")
		workers       = flag.Int("workers", 1, "correction workers per request (0 = all cores; keep small, requests already run in parallel)")
		errorRate     = flag.Float64("error-rate", 0.01, "assumed substitution rate for the REDEEM error model")
		d             = flag.Int("d", 1, "Reptile max Hamming distance per constituent kmer")
		readTimeout   = flag.Duration("read-timeout", 2*time.Minute, "deadline for reading one full request; bounds how long a slow upload can hold a correction slot (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
	)
	flag.Var(&specs, "spectrum", "name=path of a persisted spectrum to serve (repeatable, required)")
	flag.Parse()
	if len(specs) == 0 {
		log.Fatal("at least one -spectrum name=path is required")
	}

	loaded := make(map[string]*kspectrum.Spectrum, len(specs))
	for _, nv := range specs {
		name, path, ok := strings.Cut(nv, "=")
		if !ok || name == "" || path == "" {
			log.Fatalf("-spectrum %q: want name=path", nv)
		}
		if _, dup := loaded[name]; dup {
			log.Fatalf("-spectrum %q: duplicate name", name)
		}
		start := time.Now()
		spec, err := kspectrum.ReadSpectrumFile(path)
		if err != nil {
			log.Fatal(err)
		}
		loaded[name] = spec
		log.Printf("loaded spectrum %q: k=%d, %d kmers, bothStrands=%v (%v)",
			name, spec.K, spec.Size(), spec.BothStrands, time.Since(start).Round(time.Millisecond))
	}

	chunkBytes, err := core.ParseByteSize(*maxChunkBytes)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := newServer(loaded, serverOptions{
		MaxInflight:   *maxInflight,
		MaxChunkReads: *maxChunkReads,
		MaxChunkBytes: chunkBytes,
		Workers:       *workers,
		ErrorRate:     *errorRate,
		D:             *d,
	})
	if err != nil {
		log.Fatal(err)
	}
	for name, e := range srv.entries {
		if e.reptileErr != nil {
			log.Printf("spectrum %q serves redeem only (%v)", name, e.reptileErr)
		}
	}

	httpSrv := &http.Server{
		Addr:    *listen,
		Handler: srv.mux(),
		// Without read deadlines, max-inflight slow uploads would pin
		// every correction slot forever (each handler reads the body
		// while holding its semaphore slot).
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d spectra on %s (max-inflight %d)", len(loaded), *listen, srv.maxInflight)
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("served %d requests (%d reads, %d changed)",
		srv.stats.requests.Load(), srv.stats.reads.Load(), srv.stats.changed.Load())
}

// specFlags collects repeated -spectrum name=path arguments.
type specFlags []string

func (s *specFlags) String() string     { return strings.Join(*s, ",") }
func (s *specFlags) Set(v string) error { *s = append(*s, v); return nil }

// serverOptions configures a correction server.
type serverOptions struct {
	// MaxInflight bounds concurrently-executing correction requests
	// (<= 0 selects 2x GOMAXPROCS).
	MaxInflight int
	// MaxChunkReads caps the reads accepted per request (0 = unlimited).
	MaxChunkReads int
	// MaxChunkBytes caps the raw request body size (<= 0 selects 64 MiB)
	// via http.MaxBytesReader, so a hostile or misconfigured client
	// cannot balloon the daemon before read-count limits even apply.
	MaxChunkBytes int64
	// Workers is the per-request correction parallelism (the inter-request
	// parallelism is MaxInflight; <= 0 uses all cores per request).
	Workers int
	// ErrorRate parameterizes the uniform REDEEM error model.
	ErrorRate float64
	// D is Reptile's per-kmer Hamming budget (0 selects the default 1).
	D int
}

// entry is one registry slot: a loaded spectrum plus the per-algorithm
// service state derived from it. The Reptile side (neighbor index) is
// built at registration; the REDEEM side (EM fit + threshold inference)
// is built lazily on first use, once, because it is the more expensive
// derivation and many deployments serve a single algorithm.
type entry struct {
	name string
	spec *kspectrum.Spectrum
	// reptile is nil when the spectrum cannot serve Reptile (e.g. k > 16
	// overflows the packed tile); reptileErr then says why, and the
	// spectrum still serves REDEEM.
	reptile    *reptile.Service
	reptileErr error

	redeemOnce sync.Once
	redeemMdl  *redeem.Model
	redeemThr  float64
	redeemErr  error

	rate float64
}

// redeemModel returns the lazily-fitted REDEEM model for this spectrum.
func (e *entry) redeemModel() (*redeem.Model, float64, error) {
	e.redeemOnce.Do(func() {
		cfg := redeem.DefaultConfig(e.spec.K)
		cfg.Spectrum = e.spec
		model := simulate.NewUniformKmerModel(e.spec.K, e.rate)
		m, err := redeem.NewFromSpectrum(e.spec, model, cfg)
		if err != nil {
			e.redeemErr = err
			return
		}
		m.Run()
		thr, _, err := m.InferThreshold(1, 3)
		if err != nil {
			e.redeemErr = err
			return
		}
		e.redeemMdl, e.redeemThr = m, thr
	})
	return e.redeemMdl, e.redeemThr, e.redeemErr
}

// server is the HTTP correction service: an immutable registry of named
// spectra and a semaphore bounding in-flight correction work.
type server struct {
	entries     map[string]*entry
	sem         chan struct{}
	maxInflight int
	opts        serverOptions

	stats struct {
		requests atomic.Int64
		reads    atomic.Int64
		changed  atomic.Int64
	}
}

// newServer builds the registry: every spectrum gets its Reptile service
// (shared neighbor index) constructed eagerly so the first request pays
// no index-build latency.
func newServer(specs map[string]*kspectrum.Spectrum, opts serverOptions) (*server, error) {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.MaxChunkBytes <= 0 {
		opts.MaxChunkBytes = 64 << 20
	}
	if opts.ErrorRate <= 0 {
		opts.ErrorRate = 0.01
	}
	s := &server{
		entries:     make(map[string]*entry, len(specs)),
		sem:         make(chan struct{}, opts.MaxInflight),
		maxInflight: opts.MaxInflight,
		opts:        opts,
	}
	for name, spec := range specs {
		e := &entry{name: name, spec: spec, rate: opts.ErrorRate}
		// A spectrum Reptile cannot serve (2k-base tiles need k <= 16)
		// is not fatal: it still serves REDEEM, and method=reptile
		// requests get the stored reason back as a clean 400.
		if e.reptile, e.reptileErr = reptile.NewService(spec, reptile.Params{D: opts.D}); e.reptileErr != nil {
			e.reptile = nil
		}
		s.entries[name] = e
	}
	return s, nil
}

// mux wires the endpoints.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/spectra", s.handleSpectra)
	mux.HandleFunc("/v1/correct", s.handleCorrect)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"spectra":  len(s.entries),
		"requests": s.stats.requests.Load(),
		"reads":    s.stats.reads.Load(),
		"changed":  s.stats.changed.Load(),
	})
}

func (s *server) handleSpectra(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		Name        string `json:"name"`
		K           int    `json:"k"`
		Kmers       int    `json:"kmers"`
		BothStrands bool   `json:"both_strands"`
	}
	out := make([]specInfo, 0, len(s.entries))
	for name, e := range s.entries {
		out = append(out, specInfo{Name: name, K: e.spec.K, Kmers: e.spec.Size(), BothStrands: e.spec.BothStrands})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleCorrect is the serve path: decode the FASTQ chunk, take a
// semaphore slot, correct with the selected algorithm against the
// selected spectrum, encode the result.
func (s *server) handleCorrect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a FASTQ chunk", http.StatusMethodNotAllowed)
		return
	}
	e, ok := s.selectEntry(w, r)
	if !ok {
		return
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = "reptile"
	}
	if method != "reptile" && method != "redeem" {
		http.Error(w, fmt.Sprintf("unknown method %q (want reptile or redeem)", method), http.StatusBadRequest)
		return
	}
	if method == "reptile" && e.reptile == nil {
		http.Error(w, fmt.Sprintf("spectrum %q cannot serve method reptile: %v", e.name, e.reptileErr), http.StatusBadRequest)
		return
	}

	// Bounded in-flight concurrency: block for a slot, give up if the
	// client does. Admission happens BEFORE the body is decoded so at
	// most max-inflight fully-parsed chunks exist at once; the time a
	// slow upload can then occupy a slot is bounded by the server's
	// ReadTimeout (-read-timeout), not by client goodwill.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		http.Error(w, "client gave up waiting for a correction slot", http.StatusServiceUnavailable)
		return
	}

	capped := http.MaxBytesReader(w, r.Body, s.opts.MaxChunkBytes)
	reads, err := fastq.DecodeChunk(capped, s.opts.MaxChunkReads)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.Is(err, fastq.ErrChunkTooLarge) || errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	if len(reads) == 0 {
		http.Error(w, "empty chunk", http.StatusBadRequest)
		return
	}

	start := time.Now()
	var corrected []seq.Read
	switch method {
	case "reptile":
		corrected, _, err = e.reptile.CorrectChunk(reads, s.opts.Workers)
	case "redeem":
		var m *redeem.Model
		var thr float64
		if m, thr, err = e.redeemModel(); err == nil {
			corrected = m.CorrectReads(reads, thr, s.opts.Workers)
		}
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := fastq.EncodeChunk(corrected)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	changed := 0
	for i := range reads {
		if !bytes.Equal(reads[i].Seq, corrected[i].Seq) {
			changed++
		}
	}
	s.stats.requests.Add(1)
	s.stats.reads.Add(int64(len(reads)))
	s.stats.changed.Add(int64(changed))

	h := w.Header()
	h.Set("Content-Type", "text/x-fastq")
	h.Set("X-Kserve-Spectrum", e.name)
	h.Set("X-Kserve-Method", method)
	h.Set("X-Kserve-Reads", fmt.Sprint(len(reads)))
	h.Set("X-Kserve-Changed", fmt.Sprint(changed))
	h.Set("X-Kserve-Duration-Ms", fmt.Sprint(time.Since(start).Milliseconds()))
	w.WriteHeader(http.StatusOK)
	// A write failure means the client disconnected mid-response; the
	// work is already done and counted, nothing to clean up.
	_, _ = w.Write(body)
}

// selectEntry resolves the spectrum query parameter: an explicit name, or
// the sole loaded spectrum when the parameter is omitted.
func (s *server) selectEntry(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	name := r.URL.Query().Get("spectrum")
	if name == "" {
		if len(s.entries) == 1 {
			for _, e := range s.entries {
				return e, true
			}
		}
		http.Error(w, "spectrum parameter required (several spectra loaded)", http.StatusBadRequest)
		return nil, false
	}
	e, ok := s.entries[name]
	if !ok {
		known := make([]string, 0, len(s.entries))
		for n := range s.entries {
			known = append(known, n)
		}
		sort.Strings(known)
		http.Error(w, fmt.Sprintf("unknown spectrum %q (loaded: %s)", name, strings.Join(known, ", ")), http.StatusNotFound)
		return nil, false
	}
	return e, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure only means the
	// client went away.
	_ = json.NewEncoder(w).Encode(v)
}
