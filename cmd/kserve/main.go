// Command kserve is the correction-as-a-service daemon: it loads one or
// more persisted k-spectra into a named registry at startup and serves
// correction requests over HTTP (legacy /v1, registry-driven /v2). It is
// a thin wrapper over `repro serve` — the same subcommand function, flags
// and endpoints; see internal/cli.
package main

import "repro/internal/cli"

func main() {
	cli.Main("kserve", cli.Serve)
}
