// Command reptile corrects substitution errors in short-read FASTQ data
// using the representative-tiling algorithm of Chapter 2. It runs as a
// streaming pipeline: two chunked passes over the input, so with
// -mem-budget the k-spectrum accumulators spill to disk and peak memory is
// bounded regardless of input size.
//
// Usage:
//
//	reptile -in reads.fastq -out corrected.fastq [-k 12] [-d 1] [-genome-len 0] \
//	        [-workers N] [-shards N] [-mem-budget 64MB] \
//	        [-load-spectrum spec.kspc] [-save-spectrum spec.kspc] \
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -save-spectrum persists the k-spectrum built by the run to the versioned
// store format; -load-spectrum reuses a persisted spectrum, skipping the
// kmer counting of the build pass (tile counts are still taken from the
// input, so output is byte-identical to a fresh build over the same data).
// The stored k is authoritative: it overrides the derived default, and an
// explicitly disagreeing -k is an error.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/reptile"
	"repro/internal/seq"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reptile: ")
	var (
		in         = flag.String("in", "", "input FASTQ (required)")
		out        = flag.String("out", "", "output FASTQ (required)")
		k          = flag.Int("k", 0, "kmer length (0 = derive from genome length)")
		d          = flag.Int("d", 1, "max Hamming distance per constituent kmer")
		genomeLen  = flag.Int("genome-len", 0, "estimated genome length for parameter selection")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		shards     = flag.Int("shards", 0, "spectrum shard count (0 = derive from workers)")
		memBudget  = flag.String("mem-budget", "0", "spectrum accumulator budget, e.g. 64MB (0 = unlimited, in-memory)")
		loadSpec   = flag.String("load-spectrum", "", "reuse a persisted k-spectrum instead of counting the input")
		saveSpec   = flag.String("save-spectrum", "", "persist the run's k-spectrum to this path")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}
	budget, err := core.ParseByteSize(*memBudget)
	if err != nil {
		log.Fatal(err)
	}
	stopProfiles, err := core.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}

	open := func() (reptile.ChunkSource, error) {
		f, err := os.Open(*in)
		if err != nil {
			return nil, err
		}
		return fastq.NewChunkReader(f, 0), nil
	}

	// Derive data-dependent parameters (Qc, default k) from a bounded
	// leading sample — large enough to smooth quality drift across the run.
	const sampleReads = 20000
	src, err := open()
	if err != nil {
		log.Fatal(err)
	}
	var sample []seq.Read
	for len(sample) < sampleReads {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			src.Close()
			log.Fatalf("sampling %s: %v", *in, err)
		}
		sample = append(sample, chunk...)
	}
	src.Close()
	if len(sample) == 0 {
		log.Fatalf("sampling %s: no reads", *in)
	}
	params := reptile.DefaultParams(sample, *genomeLen)
	if *k > 0 {
		params.K = *k
		params.C = min(params.K, params.D+4)
	}
	if *loadSpec != "" {
		// core.LoadSpectrumForK owns the k-authority rule: an explicit
		// disagreeing -k errors, otherwise the stored k wins.
		spec, err := core.LoadSpectrumForK(*loadSpec, *k)
		if err != nil {
			log.Fatal(err)
		}
		params.K = spec.K
		params.C = min(params.K, params.D+4)
		params.Spectrum = spec
	}
	params.D = *d
	if params.C <= params.D {
		params.C = params.D + 2
	}
	params.Build = kspectrum.BuildOptions{Workers: *workers, Shards: *shards}
	params.MemoryBudget = budget

	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	w := fastq.NewWriter(o)

	total, changed := 0, 0
	emit := func(orig, corrected []seq.Read) error {
		total += len(orig)
		for i := range orig {
			if string(orig[i].Seq) != string(corrected[i].Seq) {
				changed++
			}
		}
		return w.WriteChunk(corrected)
	}
	start := time.Now()
	c, err := reptile.CorrectStream(open, emit, params, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *saveSpec != "" {
		if err := kspectrum.WriteSpectrumFile(*saveSpec, c.Spec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("corrected %d of %d reads (k=%d d=%d Cg=%d Cm=%d Qc=%d; spectrum %d kmers, %d tiles, budget %s) in %v\n",
		changed, total, c.P.K, c.P.D, c.P.Cg, c.P.Cm, c.P.Qc, c.Spec.Size(), c.Tiles.Size(), *memBudget, time.Since(start).Round(time.Millisecond))
	if err := stopProfiles(); err != nil {
		log.Fatal(err)
	}
}
