// Command reptile corrects substitution errors in short-read FASTQ data
// using the representative-tiling algorithm of Chapter 2. It is a thin
// wrapper over `repro reptile` — the same subcommand function, flags and
// output; see internal/cli.
package main

import "repro/internal/cli"

func main() {
	cli.Main("reptile", cli.Reptile)
}
