// Command reptile corrects substitution errors in short-read FASTQ data
// using the representative-tiling algorithm of Chapter 2.
//
// Usage:
//
//	reptile -in reads.fastq -out corrected.fastq [-k 12] [-d 1] [-genome-len 0] [-workers N] [-shards N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/reptile"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reptile: ")
	var (
		in        = flag.String("in", "", "input FASTQ (required)")
		out       = flag.String("out", "", "output FASTQ (required)")
		k         = flag.Int("k", 0, "kmer length (0 = derive from genome length)")
		d         = flag.Int("d", 1, "max Hamming distance per constituent kmer")
		genomeLen = flag.Int("genome-len", 0, "estimated genome length for parameter selection")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		shards    = flag.Int("shards", 0, "spectrum shard count (0 = derive from workers)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	reads, err := fastq.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	params := reptile.DefaultParams(reads, *genomeLen)
	if *k > 0 {
		params.K = *k
		params.C = min(params.K, params.D+4)
	}
	params.D = *d
	if params.C <= params.D {
		params.C = params.D + 2
	}
	params.Build = kspectrum.BuildOptions{Workers: *workers, Shards: *shards}
	start := time.Now()
	c, err := reptile.New(reads, params)
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(start)
	corrected := c.CorrectAll(reads, *workers)
	total := time.Since(start)
	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	if err := fastq.Write(o, corrected); err != nil {
		log.Fatal(err)
	}
	changed := 0
	for i := range reads {
		if string(reads[i].Seq) != string(corrected[i].Seq) {
			changed++
		}
	}
	fmt.Printf("corrected %d of %d reads (k=%d d=%d Cg=%d Cm=%d Qc=%d; spectrum %d kmers, %d tiles) in %v (build %v)\n",
		changed, len(reads), c.P.K, c.P.D, c.P.Cg, c.P.Cm, c.P.Qc, c.Spec.Size(), c.Tiles.Size(), total.Round(time.Millisecond), build.Round(time.Millisecond))
}
