package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/kspectrum"
	"repro/internal/simulate"
)

// BenchmarkSpectrumBuild measures the sharded parallel k-spectrum engine —
// the Phase 1 hot path shared by Reptile, REDEEM and (via its trie analogue)
// SHREC — on the D3-scale dataset (highest coverage and error rate of Table
// 2.1, hence the largest spectrum per genome base). Sub-benchmarks sweep the
// worker/shard ladder from the sequential baseline to full parallelism; the
// recorded ratios are the engine's speedup trajectory (see EXPERIMENTS.md).
func BenchmarkSpectrumBuild(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	const k = 13
	configs := []struct {
		name string
		opts kspectrum.BuildOptions
	}{
		{"workers=1/shards=1", kspectrum.BuildOptions{Workers: 1, Shards: 1}},
		{"workers=2/shards=8", kspectrum.BuildOptions{Workers: 2, Shards: 8}},
		{"workers=4/shards=16", kspectrum.BuildOptions{Workers: 4, Shards: 16}},
		{"workers=8/shards=32", kspectrum.BuildOptions{Workers: 8, Shards: 32}},
		{fmt.Sprintf("workers=%d/auto", runtime.GOMAXPROCS(0)), kspectrum.BuildOptions{}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				s, err := kspectrum.BuildParallel(reads, k, true, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				size = s.Size()
			}
			b.ReportMetric(float64(size), "kmers")
		})
	}
}
