package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/kspectrum"
	"repro/internal/simulate"
)

// BenchmarkSpectrumBuild measures the sharded parallel k-spectrum engine —
// the Phase 1 hot path shared by Reptile, REDEEM and (via its trie analogue)
// SHREC — on the D3-scale dataset (highest coverage and error rate of Table
// 2.1, hence the largest spectrum per genome base). Sub-benchmarks sweep the
// worker/shard ladder from the sequential baseline to full parallelism; the
// recorded ratios are the engine's speedup trajectory (see EXPERIMENTS.md).
func BenchmarkSpectrumBuild(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	const k = 13
	configs := []struct {
		name string
		opts kspectrum.BuildOptions
	}{
		{"workers=1/shards=1", kspectrum.BuildOptions{Workers: 1, Shards: 1}},
		{"workers=2/shards=8", kspectrum.BuildOptions{Workers: 2, Shards: 8}},
		{"workers=4/shards=16", kspectrum.BuildOptions{Workers: 4, Shards: 16}},
		{"workers=8/shards=32", kspectrum.BuildOptions{Workers: 8, Shards: 32}},
		{fmt.Sprintf("workers=%d/auto", runtime.GOMAXPROCS(0)), kspectrum.BuildOptions{}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				s, err := kspectrum.BuildParallel(reads, k, true, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				size = s.Size()
			}
			b.ReportMetric(float64(size), "kmers")
			recordBench(b, map[string]float64{"kmers": float64(size)})
		})
	}
}

// BenchmarkSpectrumBuildOutOfCore measures the out-of-core engine
// (kspectrum.StreamBuilder) on the same D3-scale dataset across a memory
// budget ladder: unlimited (identical to the in-memory path), a budget that
// mostly fits, and one far below the accumulator's in-memory footprint —
// demonstrating that spectrum construction completes in bounded memory with
// spilled sorted runs merged back byte-identically (DESIGN.md §4).
func BenchmarkSpectrumBuildOutOfCore(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	const k = 13
	ref, err := kspectrum.BuildParallel(reads, k, true, kspectrum.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// The accumulator's in-memory footprint: the open-addressing table a
	// counter holding every distinct kmer reaches (see kspectrum.Counter).
	footprint := kspectrum.ApproxAccumulatorBytes(ref.Size())
	tbl := newTable(b, "--- BENCH out-of-core spectrum build (D3 scale, k=13)")
	tbl.row("%-14s %10s %8s %10s %12s", "budget", "kmers", "runs", "spilled", "wall")
	budgets := []struct {
		name   string
		budget int64
	}{
		{"unlimited", 0},
		{"64MB", 64 << 20},
		{"8MB", 8 << 20},
		// Scale-relative rung: always below the accumulator footprint, so
		// the spill path is demonstrated at any REPRO_SCALE.
		{"quarter-footprint", footprint / 4},
	}
	for _, bb := range budgets {
		b.Run("budget="+bb.name, func(b *testing.B) {
			var stats kspectrum.StreamStats
			var size int
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				elapsed, _ := measured(func() {
					s, st, err := kspectrum.BuildOutOfCore(reads, k, true, kspectrum.StreamOptions{
						MemoryBudget: bb.budget,
						TempDir:      b.TempDir(),
					})
					if err != nil {
						b.Fatal(err)
					}
					size, stats = s.Size(), st
				})
				wall = elapsed
			}
			if size != ref.Size() {
				b.Fatalf("out-of-core spectrum has %d kmers, in-memory %d", size, ref.Size())
			}
			if bb.budget > 0 && bb.budget < footprint && stats.SpilledRuns == 0 {
				b.Fatalf("budget %s below footprint %d B but nothing spilled", bb.name, footprint)
			}
			b.ReportMetric(float64(stats.SpilledRuns), "spill-runs")
			tbl.row("%-14s %10d %8d %9.1fMB %12v", bb.name, size, stats.SpilledRuns,
				float64(stats.SpilledBytes)/(1<<20), wall.Round(time.Millisecond))
			recordBench(b, map[string]float64{
				"kmers":         float64(size),
				"spill_runs":    float64(stats.SpilledRuns),
				"spilled_bytes": float64(stats.SpilledBytes),
			})
		})
	}
	tbl.row("in-memory accumulator footprint ≈ %.1f MB (open-addressing table for %d kmers)",
		float64(footprint)/(1<<20), ref.Size())
	tbl.flush()
}
