// Engines: the unified correction API. One simulated corpus is corrected
// by every registered engine through the same three concepts — the
// registry (engine.Lookup / engine.Engines), a Run built from functional
// options, and the canonical chunked Source/Sink streaming contract —
// with context cancellation demonstrated at the end. This is the seam
// new engines, transports and workloads plug into; the core facade and
// every CLI are thin layers over exactly these calls.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"

	"repro/internal/engine"
	"repro/internal/fastq"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

func main() {
	// 1. Simulate a small corpus with ground truth.
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "engines", GenomeLen: 30_000, ReadLen: 36, Coverage: 40,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	var blob bytes.Buffer
	if err := fastq.Write(&blob, reads); err != nil {
		log.Fatal(err)
	}
	open := func() (engine.Source, error) {
		return fastq.NewChunkReader(io.NopCloser(bytes.NewReader(blob.Bytes())), 0), nil
	}

	// 2. The registry knows every engine and its declared capabilities.
	fmt.Println("registered engines:")
	for _, eng := range engine.Engines() {
		caps := eng.Capabilities()
		fmt.Printf("  %-8s streaming=%-5v spectrumReuse=%-5v maxSpectrumK=%d\n",
			eng.Name(), caps.Streaming, caps.SpectrumReuse, caps.MaxSpectrumK)
	}

	// 3. Correct the same stream with each engine through the one
	//    contract: cross-engine options on the Run, engine-specific
	//    options from the engine packages.
	runs := []struct {
		name string
		opts []engine.Option
	}{
		{reptile.EngineName, []engine.Option{
			engine.WithGenomeLen(len(ds.Genome)),
			engine.WithWorkers(1),
			reptile.WithD(1),
		}},
		{redeem.EngineName, []engine.Option{
			engine.WithK(11),
			engine.WithWorkers(1),
			redeem.WithErrorRate(0.008),
		}},
		{shrec.EngineName, []engine.Option{
			engine.WithGenomeLen(len(ds.Genome)),
			shrec.WithIterations(2),
		}},
	}
	for _, rc := range runs {
		eng, err := engine.Lookup(rc.name)
		if err != nil {
			log.Fatal(err)
		}
		discard := engine.SinkFunc(func(orig, corrected []seq.Read) error { return nil })
		res, err := eng.CorrectStream(context.Background(), open, discard, engine.NewRun(rc.opts...))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s corrected %d of %d reads in %v (%s)\n",
			res.Engine, res.Changed, res.Reads, res.Duration.Round(1e6), res.Summary)
	}

	// 4. Unknown names fail with the typed registry error that lists
	//    what exists — the same message the CLI and the daemon surface.
	if _, err := engine.Lookup("phred"); errors.Is(err, engine.ErrUnknownEngine) {
		fmt.Println("lookup error:", err)
	}

	// 5. Cancellation is part of the contract: a cancelled context
	//    aborts the stream at the next chunk boundary with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := engine.Lookup(reptile.EngineName)
	if err != nil {
		log.Fatal(err)
	}
	_, err = eng.CorrectStream(ctx, open,
		engine.SinkFunc(func(orig, corrected []seq.Read) error { return nil }),
		engine.NewRun(engine.WithGenomeLen(len(ds.Genome))))
	fmt.Println("cancelled run:", err)
}
