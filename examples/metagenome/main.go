// Metagenome clustering: the Chapter 4 workload. A synthetic 16S rRNA
// amplicon pool with ground-truth taxonomy is clustered by CLOSET across a
// decreasing similarity ladder; cluster quality is scored by Adjusted Rand
// Index against the species partition, and the abundance profile of the
// largest clusters is compared with the true community composition.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/closet"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simulate"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		log.Fatal(err)
	}
	// Amplicon-style sampling of one hypervariable window so same-species
	// reads overlap (the regime in which taxonomy recovery is possible).
	mcfg := simulate.DefaultMetagenomeConfig(2000)
	mcfg.RegionStart, mcfg.RegionLen = 400, 450
	mcfg.MeanLen, mcfg.SDLen, mcfg.MinLen = 400, 30, 300
	meta, err := simulate.SampleMetagenome(tax, mcfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d reads from %d species\n", len(meta), len(tax.Species))

	cfg := closet.DefaultConfig(400)
	cfg.Nodes = 8
	cfg.Thresholds = []float64{0.95, 0.85, 0.70}
	res, err := core.Cluster(simulate.MetaReads(meta), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edges: %d predicted, %d unique, %d confirmed\n",
		res.PredictedEdges, res.UniqueEdges, res.ConfirmedEdges)

	truth := make([]int, len(meta))
	for i, r := range meta {
		truth[i] = r.Taxon.Species
	}
	for _, tr := range res.ByThreshold {
		labels := closet.PartitionLabels(tr.Clusters, len(meta))
		ari, err := eval.ARI(truth, labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%.2f: %5d edges, %4d clusters, ARI=%.3f\n",
			tr.Threshold, tr.EdgesUsed, len(tr.Clusters), ari)
	}

	// Abundance profiling at the species-level threshold: compare the
	// biggest clusters' share of reads with the true community profile.
	final := res.ByThreshold[len(res.ByThreshold)-1].Clusters
	fmt.Println("\nlargest clusters vs true species abundance:")
	for ci := 0; ci < min(5, len(final)); ci++ {
		c := final[ci]
		// Majority species of the cluster.
		counts := map[int]int{}
		for _, v := range c.Verts {
			counts[meta[v].Taxon.Species]++
		}
		bestSp, bestN := -1, 0
		for sp, n := range counts {
			if n > bestN {
				bestSp, bestN = sp, n
			}
		}
		fmt.Printf("  cluster %d: %4d reads (%.1f%% of sample), %5.1f%% pure, species %d true abundance %.1f%%\n",
			ci, len(c.Verts), 100*float64(len(c.Verts))/float64(len(meta)),
			100*float64(bestN)/float64(len(c.Verts)), bestSp, 100*tax.Species[bestSp].Abundance)
	}
	for _, st := range res.Timings {
		fmt.Printf("stage %-16s %v\n", st.Stage, st.Duration)
	}
}
