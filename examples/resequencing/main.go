// Resequencing: the Chapter 2 motivating workload. Reads from a known
// reference are corrected and the improvement is measured the way a
// re-sequencing pipeline experiences it — through read mapping: corrected
// reads map uniquely more often and carry fewer mismatches, which is the
// §2.4 evaluation protocol when ground truth is unavailable.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simulate"
)

func main() {
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name:         "reseq",
		GenomeLen:    80_000,
		ReadLen:      47, // the D5 configuration: longer reads, higher error
		Coverage:     50,
		ErrorRate:    0.02,
		Bias:         simulate.EcoliBias,
		QualityNoise: 2,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)

	corrected, rep, err := core.Correct(reads, core.CorrectOptions{
		Method:    core.MethodReptile,
		GenomeLen: len(ds.Genome),
	})
	if err != nil {
		log.Fatal(err)
	}

	pre, post, err := core.EvaluateByMapping(ds.Genome, reads, corrected, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correction took %v\n", rep.Duration)
	fmt.Printf("%-22s %12s %12s\n", "", "pre-corr", "post-corr")
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "uniquely mapped (<=2mm)", 100*pre.UniqueFraction(), 100*post.UniqueFraction())
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "mapped error rate", 100*pre.ErrorRate(), 100*post.ErrorRate())
	fmt.Printf("%-22s %12d %12d\n", "unmapped reads", pre.Unmapped, post.Unmapped)

	// Cross-check against the simulation truth.
	stats, err := core.EvaluateAgainstTruth(ds.Sim, corrected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nground truth: %s\n", stats)
}
