// Quickstart: simulate a small Illumina-like run, correct it with Reptile,
// and score the correction against ground truth — the minimal end-to-end
// use of the library's public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simulate"
)

func main() {
	// 1. Synthesize a 50 kb genome sequenced at 60x with 0.8% errors.
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name:         "quickstart",
		GenomeLen:    50_000,
		ReadLen:      36,
		Coverage:     60,
		ErrorRate:    0.008,
		Bias:         simulate.EcoliBias,
		QualityNoise: 2,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	fmt.Printf("simulated %d reads of %d bp (%.0fx coverage, %.1f%% error)\n",
		len(reads), ds.ReadLen, ds.Coverage, 100*ds.ErrorRate)

	// 2. Correct with Reptile (parameters derived from the data).
	corrected, report, err := core.Correct(reads, core.CorrectOptions{
		Method:    core.MethodReptile,
		GenomeLen: len(ds.Genome),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Score base-level outcomes against the simulation truth.
	stats, err := core.EvaluateAgainstTruth(ds.Sim, corrected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reptile finished in %v\n", report.Duration)
	fmt.Printf("  %s\n", stats)
	fmt.Printf("  => %.1f%% of sequencing errors removed (Gain)\n", 100*stats.Gain())
}
