// Repeat-rich correction: the Chapter 3 scenario. As genome repeat content
// grows from 20% to 80%, conventional correction (Reptile) loses ground
// while REDEEM's repeat-aware EM model holds up — the Table 3.4 crossover.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simulate"
)

func main() {
	model := simulate.IlluminaModel(36, 0.01, simulate.EcoliBias)
	kmerModel, err := simulate.KmerModelFromReadModel(model, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %10s %10s\n", "repeats", "reptile", "redeem")
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		ds, err := simulate.BuildDataset(simulate.DatasetSpec{
			Name:         "repeat",
			GenomeLen:    30_000,
			RepeatFrac:   frac,
			ReadLen:      36,
			Coverage:     80,
			ErrorRate:    0.01,
			Bias:         simulate.EcoliBias,
			QualityNoise: 2,
			Seed:         int64(100 * frac),
		})
		if err != nil {
			log.Fatal(err)
		}
		reads := simulate.Reads(ds.Sim)
		gains := map[core.Method]float64{}
		for _, m := range []core.Method{core.MethodReptile, core.MethodRedeem} {
			corrected, _, err := core.Correct(reads, core.CorrectOptions{
				Method:      m,
				GenomeLen:   len(ds.Genome),
				RedeemK:     11,
				RedeemModel: kmerModel,
			})
			if err != nil {
				log.Fatal(err)
			}
			stats, err := core.EvaluateAgainstTruth(ds.Sim, corrected)
			if err != nil {
				log.Fatal(err)
			}
			gains[m] = stats.Gain()
		}
		fmt.Printf("%7.0f%% %9.1f%% %9.1f%%\n", 100*frac,
			100*gains[core.MethodReptile], 100*gains[core.MethodRedeem])
	}
	fmt.Println("\nExpected shape (Table 3.4): reptile degrades with repeat content;")
	fmt.Println("redeem models the kmer neighborhood and stays strong at 80% repeats.")
}
