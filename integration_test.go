package repro

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/align"
	"repro/internal/closet"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/sketch"
)

// TestEndToEndCorrectionThroughFastq drives the full file-based workflow:
// simulate -> serialize -> parse -> correct -> evaluate, covering the same
// path the command-line tools use.
func TestEndToEndCorrectionThroughFastq(t *testing.T) {
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "e2e", GenomeLen: 15000, ReadLen: 36, Coverage: 50,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fastq.Write(&buf, simulate.Reads(ds.Sim)); err != nil {
		t.Fatal(err)
	}
	parsed, err := fastq.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(ds.Sim) {
		t.Fatalf("round trip lost reads: %d vs %d", len(parsed), len(ds.Sim))
	}
	corrected, _, err := core.Correct(parsed, core.CorrectOptions{GenomeLen: len(ds.Genome), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eval.EvaluateCorrection(ds.Sim, corrected)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Gain() < 0.7 {
		t.Errorf("end-to-end gain %.3f", stats.Gain())
	}
}

// TestCorrectionImprovesClustering chains Chapter 2 into Chapter 4: error
// correction before clustering must not reduce — and typically raises —
// the number of confirmed intra-species edges, since errors destroy shared
// kmers.
func TestCorrectionImprovesClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := simulate.DefaultMetagenomeConfig(900)
	mcfg.ErrorRate = 0.02 // noisy enough that correction matters
	meta, err := simulate.SampleMetagenome(tax, mcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.MetaReads(meta)
	cfg := closet.DefaultConfig(375)
	cfg.Nodes = 8
	before, err := closet.Run(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrected, _, err := core.Correct(reads, core.CorrectOptions{Method: core.MethodReptile, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	after, err := closet.Run(corrected, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("confirmed edges: before correction %d, after %d", before.ConfirmedEdges, after.ConfirmedEdges)
	if after.ConfirmedEdges < before.ConfirmedEdges {
		t.Errorf("correction reduced edges: %d -> %d", before.ConfirmedEdges, after.ConfirmedEdges)
	}
}

// TestRedeemDetectionFeedsReptile demonstrates the §3.5 suggestion of
// combining the systems: REDEEM's kmer classification agrees with the
// genome ground truth strongly enough to guide another corrector.
func TestRedeemDetectionFeedsReptile(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g, err := simulate.GenomeWithRepeats(20000, simulate.RepeatLadder(20000, 0.5), simulate.MaizeProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := simulate.IlluminaModel(36, 0.008, simulate.EcoliBias)
	sim, err := simulate.SimulateReads(g.Seq, simulate.ReadSimConfig{
		N: 40000, Model: model, BothStrands: true, QualityNoise: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	km, err := simulate.KmerModelFromReadModel(model, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := redeem.New(simulate.Reads(sim), km, redeem.DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	thr, _, err := m.InferThreshold(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	flagged := m.DetectByT(thr)
	genomeSet := eval.GenomeKmerSet(g.Seq, 11)
	d := eval.EvaluateDetection(m.Spec.Kmers, func(i int) bool { return flagged[i] }, genomeSet)
	wrongFrac := float64(d.Wrong()) / float64(m.Spec.Size())
	t.Logf("detection: FP=%d FN=%d over %d kmers (%.2f%% wrong)", d.FP, d.FN, m.Spec.Size(), 100*wrongFrac)
	if wrongFrac > 0.05 {
		t.Errorf("detection error fraction %.3f too high", wrongFrac)
	}
}

// Property-based tests on the core data structures (testing/quick).

func TestQuickPackedKmerOrderMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	f := func(seedA, seedB int64) bool {
		a := randomDNA(rng, 12)
		b := randomDNA(rng, 12)
		ka, _ := seq.Pack(a, 12)
		kb, _ := seq.Pack(b, 12)
		return (string(a) < string(b)) == (ka < kb) || string(a) == string(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randomDNA(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = "ACGT"[rng.Intn(4)]
	}
	return out
}

func TestQuickSketchSimilarityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func(lenA, lenB uint8) bool {
		a := sketch.Shingles(randomDNA(rng, 30+int(lenA)), 15)
		b := sketch.Shingles(randomDNA(rng, 30+int(lenB)), 15)
		s := sketch.Similarity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		// Identity on self.
		return sketch.Similarity(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTilePackSplitRoundTrip(t *testing.T) {
	ts, err := kspectrum.CountTiles(nil, 10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(82))
	f := func(_ uint64) bool {
		// Construct overlap-consistent kmer pairs.
		full := randomDNA(rng, 17) // 2*10-3
		a, _ := seq.Pack(full[:10], 10)
		b, _ := seq.Pack(full[7:], 10)
		tile := ts.PackTile(a, b)
		ga, gb := ts.SplitTile(tile)
		return ga == a && gb == b && string(tile.Unpack(17)) == string(full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAlignmentIdentityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	f := func(lenA, lenB uint8) bool {
		a := randomDNA(rng, 20+int(lenA%100))
		b := randomDNA(rng, 20+int(lenB%100))
		s := align.OverlapIdentity(a, b)
		if s < 0 || s > 1 {
			return false
		}
		// Self identity is exactly 1.
		return align.OverlapIdentity(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickRevCompPreservesHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	f := func(_ uint64) bool {
		k := 4 + rng.Intn(28)
		a := randomDNA(rng, k)
		b := randomDNA(rng, k)
		ka, _ := seq.Pack(a, k)
		kb, _ := seq.Pack(b, k)
		// Hamming distance is invariant under reverse complement.
		return seq.HammingKmer(ka, kb, k) == seq.HammingKmer(seq.RevComp(ka, k), seq.RevComp(kb, k), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickARIBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	f := func(n uint8, ka, kb uint8) bool {
		size := 10 + int(n)
		a := make([]int, size)
		b := make([]int, size)
		for i := range a {
			a[i] = rng.Intn(1 + int(ka%8))
			b[i] = rng.Intn(1 + int(kb%8))
		}
		ari, err := eval.ARI(a, b)
		if err != nil {
			return false
		}
		// ARI of identical labelings is 1; any ARI stays within [-1, 1].
		self, err := eval.ARI(a, a)
		if err != nil {
			return false
		}
		return ari >= -1.000001 && ari <= 1.000001 && self > 0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
