package repro

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simulate"
)

// benchScale returns the genome scale (bases) for the experiment harness.
// The default keeps the full suite tractable on one core; set REPRO_SCALE
// to a larger base-pair count (e.g. 200000) to approach paper-sized runs.
func benchScale() int {
	if s := os.Getenv("REPRO_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 1000 {
			return v
		}
	}
	return 20000
}

// buildDataset materializes a spec, failing the benchmark on error.
func buildDataset(b *testing.B, spec simulate.DatasetSpec) *simulate.Dataset {
	b.Helper()
	ds, err := simulate.BuildDataset(spec)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// measured wraps a run with wall-clock and allocation accounting, standing
// in for the CPU-hours and memory columns of the paper's tables.
func measured(fn func()) (time.Duration, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	return elapsed, allocMB
}

// table prints an aligned experiment table alongside the benchmark output.
// Tables go to stdout rather than b.Log because the benchmark runner
// truncates long log output, and the whole point is the full row set.
type table struct {
	b    *testing.B
	rows []string
}

func newTable(b *testing.B, title string) *table {
	t := &table{b: b}
	t.rows = append(t.rows, "", title)
	return t
}

func (t *table) row(format string, args ...any) {
	t.rows = append(t.rows, fmt.Sprintf(format, args...))
}

// printedTables suppresses duplicate copies when the benchmark runner
// re-invokes a fast benchmark with growing b.N.
var printedTables sync.Map

func (t *table) flush() {
	if len(t.rows) > 1 {
		if _, dup := printedTables.LoadOrStore(t.rows[1], true); dup {
			return
		}
	}
	fmt.Println(strings.Join(t.rows, "\n"))
}

// realizedErrorRate computes a dataset's actual per-base error rate from
// simulation truth.
func realizedErrorRate(sim []simulate.SimRead) float64 {
	errs, bases := 0, 0
	for _, s := range sim {
		errs += len(s.Errors())
		bases += len(s.True)
	}
	if bases == 0 {
		return 0
	}
	return float64(errs) / float64(bases)
}
