package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simulate"
)

// benchScale returns the genome scale (bases) for the experiment harness.
// The default keeps the full suite tractable on one core; set REPRO_SCALE
// to a larger base-pair count (e.g. 200000) to approach paper-sized runs.
func benchScale() int {
	if s := os.Getenv("REPRO_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 1000 {
			return v
		}
	}
	return 20000
}

// buildDataset materializes a spec, failing the benchmark on error.
func buildDataset(b *testing.B, spec simulate.DatasetSpec) *simulate.Dataset {
	b.Helper()
	ds, err := simulate.BuildDataset(spec)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// measured wraps a run with wall-clock and allocation accounting, standing
// in for the CPU-hours and memory columns of the paper's tables.
func measured(fn func()) (time.Duration, float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	return elapsed, allocMB
}

// table prints an aligned experiment table alongside the benchmark output.
// Tables go to stdout rather than b.Log because the benchmark runner
// truncates long log output, and the whole point is the full row set.
type table struct {
	b    *testing.B
	rows []string
}

func newTable(b *testing.B, title string) *table {
	t := &table{b: b}
	t.rows = append(t.rows, "", title)
	return t
}

func (t *table) row(format string, args ...any) {
	t.rows = append(t.rows, fmt.Sprintf(format, args...))
}

// printedTables suppresses duplicate copies when the benchmark runner
// re-invokes a fast benchmark with growing b.N.
var printedTables sync.Map

func (t *table) flush() {
	if len(t.rows) > 1 {
		if _, dup := printedTables.LoadOrStore(t.rows[1], true); dup {
			return
		}
	}
	fmt.Println(strings.Join(t.rows, "\n"))
}

// --- machine-readable benchmark records -------------------------------------
//
// Every benchmark leaf registers itself via `defer recordBench(b, nil)` (or
// passes extra metrics). When REPRO_BENCH_DIR is set, TestMain writes the
// collected records to BENCH_pr<N>.json there — the per-PR perf snapshot the
// CI bench-smoke job uploads, so the repository's performance trajectory
// accumulates across PRs.

// benchRecord is one benchmark's measured values.
type benchRecord struct {
	Name    string             `json:"name"`
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the BENCH_pr<N>.json schema.
type benchFile struct {
	PR         string        `json:"pr"`
	Scale      int           `json:"repro_scale"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	MaxProcs   int           `json:"gomaxprocs"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

var (
	benchRecMu   sync.Mutex
	benchRecords = map[string]benchRecord{}
)

// recordBench registers the surrounding benchmark's result; call it via
// `defer recordBench(b, nil)` at the top of a benchmark leaf so it captures
// the final b.N and elapsed time. The runner may re-invoke a benchmark with
// growing b.N; the last (largest-N) record wins.
func recordBench(b *testing.B, metrics map[string]float64) {
	rec := benchRecord{Name: b.Name(), N: b.N, Metrics: metrics}
	if b.N > 0 {
		rec.NsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	}
	benchRecMu.Lock()
	benchRecords[rec.Name] = rec
	benchRecMu.Unlock()
}

// writeBenchJSON dumps the collected records, sorted by name for stable
// diffs. The PR number comes from REPRO_PR_NUMBER (the CI workflow sets it;
// "local" otherwise).
func writeBenchJSON(dir string) error {
	pr := os.Getenv("REPRO_PR_NUMBER")
	if pr == "" {
		pr = "local"
	}
	out := benchFile{
		PR:        pr,
		Scale:     benchScale(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	benchRecMu.Lock()
	for _, rec := range benchRecords {
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	benchRecMu.Unlock()
	sort.Slice(out.Benchmarks, func(i, j int) bool { return out.Benchmarks[i].Name < out.Benchmarks[j].Name })
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_pr"+pr+".json"), append(data, '\n'), 0o644)
}

// TestMain flushes the benchmark records after the run when REPRO_BENCH_DIR
// is set (and at least one benchmark actually ran).
func TestMain(m *testing.M) {
	code := m.Run()
	if dir := os.Getenv("REPRO_BENCH_DIR"); dir != "" && code == 0 {
		benchRecMu.Lock()
		n := len(benchRecords)
		benchRecMu.Unlock()
		if n > 0 {
			if err := writeBenchJSON(dir); err != nil {
				fmt.Fprintln(os.Stderr, "bench json:", err)
				code = 1
			}
		}
	}
	os.Exit(code)
}

// realizedErrorRate computes a dataset's actual per-base error rate from
// simulation truth.
func realizedErrorRate(sim []simulate.SimRead) float64 {
	errs, bases := 0, 0
	for _, s := range sim {
		errs += len(s.Errors())
		bases += len(s.True)
	}
	if bases == 0 {
		return 0
	}
	return float64(errs) / float64(bases)
}
