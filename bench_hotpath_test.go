package repro

import (
	"math/rand"
	"testing"

	"repro/internal/kspectrum"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// BenchmarkSpectrumQuery measures the membership/count lookup that the
// correction inner loop hammers (dozens of probes per read position): the
// frozen prefix-bucket index against the binary-search reference it
// replaced, on a 50/50 hit/miss mix drawn from the D3-scale spectrum.
func BenchmarkSpectrumQuery(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	const k = 13
	s, err := kspectrum.BuildParallel(reads, k, true, kspectrum.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Query mix: even slots are guaranteed hits sampled across the
	// spectrum, odd slots are uniform random kmers (overwhelmingly misses
	// at this density).
	rng := rand.New(rand.NewSource(5))
	mask := uint64(1)<<(2*k) - 1
	queries := make([]seq.Kmer, 1<<14)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = s.Kmers[rng.Intn(s.Size())]
		} else {
			queries[i] = seq.Kmer(rng.Uint64() & mask)
		}
	}
	b.Run("prefix-index", func(b *testing.B) {
		defer recordBench(b, nil)
		hits := 0
		for i := 0; i < b.N; i++ {
			if s.Index(queries[i%len(queries)]) >= 0 {
				hits++
			}
		}
		sinkInt = hits
	})
	b.Run("binary-search", func(b *testing.B) {
		defer recordBench(b, nil)
		hits := 0
		for i := 0; i < b.N; i++ {
			if s.IndexBinarySearch(queries[i%len(queries)]) >= 0 {
				hits++
			}
		}
		sinkInt = hits
	})
	// The two paths must agree — a benchmark that drifts from the oracle
	// is measuring a bug.
	for _, q := range queries[:256] {
		if s.Index(q) != s.IndexBinarySearch(q) {
			b.Fatalf("index mismatch on %v", q)
		}
	}
}

// sinkInt defeats dead-code elimination in the query benchmarks.
var sinkInt int

// BenchmarkKmerCounter replays the real kmer stream of a D3-scale read
// set (both strands, in scatter order) through the open-addressing
// Counter and the map[seq.Kmer]uint32 accumulator it replaced — the
// microbench behind BenchmarkSpectrumBuild's speedup.
func BenchmarkKmerCounter(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[2] // D3
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	const k = 13
	var stream []seq.Kmer
	for _, r := range reads {
		kspectrum.ForEachKmer(r.Seq, k, func(km seq.Kmer, _ int) {
			stream = append(stream, km, seq.RevComp(km, k))
		})
	}
	b.Run("open-addressing", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"stream_kmers": float64(len(stream))})
		for i := 0; i < b.N; i++ {
			c := kspectrum.NewCounter(0)
			for _, km := range stream {
				c.Inc(km, 1)
			}
			sinkInt = c.Len()
		}
	})
	b.Run("map", func(b *testing.B) {
		defer recordBench(b, map[string]float64{"stream_kmers": float64(len(stream))})
		for i := 0; i < b.N; i++ {
			m := make(map[seq.Kmer]uint32)
			for _, km := range stream {
				m[km]++
			}
			sinkInt = len(m)
		}
	})
}

// BenchmarkCorrectRead measures the per-read correction cost of the
// Reptile inner loop. The in-place variant is the steady-state number the
// zero-alloc refactor targets — b.ReportAllocs must show 0 allocs/op —
// while the copying variant includes the unavoidable output clone of the
// CorrectRead API.
func BenchmarkCorrectRead(b *testing.B) {
	spec := simulate.Chapter2Specs(benchScale())[0] // D1
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	p := reptile.DefaultParams(reads, len(ds.Genome))
	p.Build = kspectrum.BuildOptions{Workers: 1}
	c, err := reptile.New(reads, p)
	if err != nil {
		b.Fatal(err)
	}
	maxLen := 0
	for _, r := range reads {
		maxLen = max(maxLen, len(r.Seq))
	}
	b.Run("in-place", func(b *testing.B) {
		defer recordBench(b, nil)
		b.ReportAllocs()
		seqBuf := make([]byte, 0, maxLen)
		qualBuf := make([]byte, 0, maxLen)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := reads[i%len(reads)]
			seqBuf = append(seqBuf[:0], r.Seq...)
			qualBuf = append(qualBuf[:0], r.Qual...)
			c.CorrectInPlace(seqBuf, qualBuf)
		}
	})
	b.Run("copying", func(b *testing.B) {
		defer recordBench(b, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.CorrectRead(reads[i%len(reads)])
		}
	})
}
