package repro

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/closet"
	"repro/internal/eval"
	"repro/internal/simulate"
)

// metaScale returns the small/medium/large metagenome sample sizes. The
// paper's 0.3M/1.7M/5.6M reads scale down by default; REPRO_META_READS
// overrides the large size (the others follow the paper's ratios).
func metaScale() [3]int {
	large := 4000
	if s := os.Getenv("REPRO_META_READS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 100 {
			large = v
		}
	}
	return [3]int{large * 312 / 5656, large * 1742 / 5656, large}
}

func sampleMeta(b *testing.B, n int, seed int64) []simulate.MetaRead {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	reads, err := simulate.SampleMetagenome(tax, simulate.DefaultMetagenomeConfig(n), rng)
	if err != nil {
		b.Fatal(err)
	}
	return reads
}

// BenchmarkTable41MetagenomeData regenerates Table 4.1: the characteristics
// of the small/medium/large 16S read collections (count, size, length
// minimum / average / maximum).
func BenchmarkTable41MetagenomeData(b *testing.B) {
	defer recordBench(b, nil)
	sizes := metaScale()
	names := [3]string{"Small", "Medium", "Large"}
	type rowData struct {
		name             string
		n                int
		mb               float64
		minL, avgL, maxL int
	}
	// One sampling pass is ~10 ms at the default scale — single-sample
	// noise at -benchtime 1x. Re-sample the same seeds enough times per op
	// to clear the benchguard gate floor; the table rows come from the
	// final round, so the output is unchanged.
	const rounds = 24
	var rows []rowData
	for i := 0; i < b.N; i++ {
		for round := 0; round < rounds; round++ {
			rows = rows[:0]
			for si, n := range sizes {
				meta := sampleMeta(b, n, int64(410+si))
				minL, maxL, sum := 1<<30, 0, 0
				for _, r := range meta {
					L := len(r.Read.Seq)
					minL = min(minL, L)
					maxL = max(maxL, L)
					sum += L
				}
				rows = append(rows, rowData{names[si], n, float64(sum) / (1 << 20), minL, sum / n, maxL})
			}
		}
	}
	t := newTable(b, "Table 4.1: metagenome dataset characteristics (scaled)")
	t.row("%-8s %-9s %-9s %s", "Data", "Reads", "SizeMB", "ReadLen(min/avg/max)")
	for _, r := range rows {
		t.row("%-8s %-9d %-9.1f %d/%d/%d", r.name, r.n, r.mb, r.minL, r.avgL, r.maxL)
	}
	t.flush()
}

// BenchmarkTable42DataQuantities regenerates Table 4.2: predicted, unique
// and confirmed edge counts, plus clusters processed / resulting at the
// three similarity thresholds, for each dataset size.
func BenchmarkTable42DataQuantities(b *testing.B) {
	defer recordBench(b, nil)
	sizes := metaScale()
	names := [3]string{"Small", "Medium", "Large"}
	var results [3]*closet.Result
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		for si, n := range sizes {
			meta := sampleMeta(b, n, int64(420+si))
			cfg := closet.DefaultConfig(375)
			res, err := closet.Run(simulate.MetaReads(meta), cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[si] = res
		}
	}
	t := newTable(b, "Table 4.2: data quantities per stage")
	t.row("%-24s %12s %12s %12s", "", names[0], names[1], names[2])
	t.row("%-24s %12d %12d %12d", "Predicted edges", results[0].PredictedEdges, results[1].PredictedEdges, results[2].PredictedEdges)
	t.row("%-24s %12d %12d %12d", "Unique edges", results[0].UniqueEdges, results[1].UniqueEdges, results[2].UniqueEdges)
	t.row("%-24s %12d %12d %12d", "Confirmed edges", results[0].ConfirmedEdges, results[1].ConfirmedEdges, results[2].ConfirmedEdges)
	for ti := range results[0].ByThreshold {
		thr := results[0].ByThreshold[ti].Threshold
		t.row("t1 = %.0f%%", 100*thr)
		t.row("%-24s %12d %12d %12d", "  Clusters processed",
			results[0].ByThreshold[ti].ClustersProcessed, results[1].ByThreshold[ti].ClustersProcessed, results[2].ByThreshold[ti].ClustersProcessed)
		t.row("%-24s %12d %12d %12d", "  Resulting clusters",
			len(results[0].ByThreshold[ti].Clusters), len(results[1].ByThreshold[ti].Clusters), len(results[2].ByThreshold[ti].Clusters))
	}
	t.flush()
}

// BenchmarkTable43StageTimes regenerates Table 4.3: per-stage run times of
// the CLOSET pipeline on the simulated 32-node cluster for the three
// dataset sizes.
func BenchmarkTable43StageTimes(b *testing.B) {
	defer recordBench(b, nil)
	sizes := metaScale()
	names := [3]string{"Small", "Medium", "Large"}
	var timings [3]map[string]time.Duration
	var order []string
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		for si, n := range sizes {
			meta := sampleMeta(b, n, int64(430+si))
			cfg := closet.DefaultConfig(375)
			cfg.Nodes = 32
			res, err := closet.Run(simulate.MetaReads(meta), cfg)
			if err != nil {
				b.Fatal(err)
			}
			timings[si] = map[string]time.Duration{}
			if si == 0 {
				order = order[:0]
			}
			for _, st := range res.Timings {
				timings[si][st.Stage] = st.Duration
				if si == 0 {
					order = append(order, st.Stage)
				}
			}
		}
	}
	t := newTable(b, "Table 4.3: per-stage run time, 32 simulated nodes")
	t.row("%-18s %12s %12s %12s", "Stage", names[0], names[1], names[2])
	for _, stage := range order {
		t.row("%-18s %12s %12s %12s", stage,
			timings[0][stage].Round(time.Millisecond),
			timings[1][stage].Round(time.Millisecond),
			timings[2][stage].Round(time.Millisecond))
	}
	t.flush()
}

// BenchmarkTable44ARI regenerates the Table 4.4 evaluation: Adjusted Rand
// Index between CLOSET clusters (resolved to a partition) and the
// ground-truth species labels, using amplicon-style reads so that
// same-species reads overlap (the regime in which the paper's ARI
// methodology is applicable; the paper leaves the conversion open —
// see DESIGN.md).
func BenchmarkTable44ARI(b *testing.B) {
	defer recordBench(b, nil)
	type rowData struct {
		threshold float64
		clusters  int
		ari       float64
	}
	var rows []rowData
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		rows = rows[:0]
		rng := rand.New(rand.NewSource(44))
		tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
		if err != nil {
			b.Fatal(err)
		}
		mcfg := simulate.DefaultMetagenomeConfig(metaScale()[1])
		mcfg.RegionStart, mcfg.RegionLen = 400, 450
		mcfg.MeanLen, mcfg.SDLen, mcfg.MinLen = 400, 30, 300
		meta, err := simulate.SampleMetagenome(tax, mcfg, rng)
		if err != nil {
			b.Fatal(err)
		}
		cfg := closet.DefaultConfig(400)
		cfg.Thresholds = []float64{0.95, 0.85, 0.70}
		res, err := closet.Run(simulate.MetaReads(meta), cfg)
		if err != nil {
			b.Fatal(err)
		}
		truth := make([]int, len(meta))
		for ri, r := range meta {
			truth[ri] = r.Taxon.Species
		}
		for _, tr := range res.ByThreshold {
			labels := closet.PartitionLabels(tr.Clusters, len(meta))
			ari, err := eval.ARI(truth, labels)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, rowData{tr.Threshold, len(tr.Clusters), ari})
		}
	}
	t := newTable(b, fmt.Sprintf("Table 4.4: ARI vs ground-truth species (%d amplicon reads)", metaScale()[1]))
	t.row("%-10s %10s %8s", "threshold", "clusters", "ARI")
	for _, r := range rows {
		t.row("%-10.2f %10d %8.3f", r.threshold, r.clusters, r.ari)
	}
	t.flush()
}
