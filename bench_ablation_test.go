package repro

import (
	"math/rand"
	"testing"

	"repro/internal/closet"
	"repro/internal/kspectrum"
	"repro/internal/simulate"
)

// BenchmarkAblationNeighborhood compares the §2.3 replicated masked-sort
// neighborhood index against brute-force complete-neighborhood probing —
// the design choice DESIGN.md calls out. Reported as queries over the same
// spectrum; the index should win by a growing margin as d rises.
func BenchmarkAblationNeighborhood(b *testing.B) {
	rng := rand.New(rand.NewSource(50))
	genome, err := simulate.RandomGenome(benchScale(), simulate.UniformProfile, rng)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := simulate.SimulateReads(genome, simulate.ReadSimConfig{
		N: benchScale() * 2, Model: simulate.UniformModel(36, 0.01), BothStrands: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := kspectrum.Build(simulate.Reads(sim), 13, true)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]int, 2000)
	for i := range queries {
		queries[i] = rng.Intn(spec.Size())
	}
	for _, d := range []int{1, 2} {
		ni, err := kspectrum.NewNeighborIndex(spec, d, d+4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("index/d="+itoa(d), func(b *testing.B) {
			defer recordBench(b, nil)
			var buf []int32
			for i := 0; i < b.N; i++ {
				km := spec.Kmers[queries[i%len(queries)]]
				buf = ni.Neighbors(km, buf[:0])
			}
		})
		b.Run("bruteforce/d="+itoa(d), func(b *testing.B) {
			defer recordBench(b, nil)
			for i := 0; i < b.N; i++ {
				km := spec.Kmers[queries[i%len(queries)]]
				kspectrum.BruteForceNeighbors(spec, km, d)
			}
		})
	}
}

func itoa(d int) string { return string(rune('0' + d)) }

// BenchmarkAblationSketchRounds sweeps the number of sketch rounds l: more
// rounds recover more candidate edges (the §4.3.1 recall argument) at
// proportional cost. Rows report unique candidate edges surviving per round
// count, normalized by the 4-round run.
func BenchmarkAblationSketchRounds(b *testing.B) {
	defer recordBench(b, nil)
	meta := sampleMeta(b, metaScale()[0], 51)
	reads := simulate.MetaReads(meta)
	type rowData struct {
		rounds int
		edges  int
	}
	var rows []rowData
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		rows = rows[:0]
		for rounds := 1; rounds <= 4; rounds++ {
			cfg := closet.DefaultConfig(375)
			cfg.Sketch.Rounds = rounds
			cfg.Thresholds = []float64{0.90}
			res, err := closet.Run(reads, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, rowData{rounds, res.ConfirmedEdges})
		}
	}
	t := newTable(b, "Ablation: sketch rounds vs confirmed edge recall")
	t.row("%-8s %10s %10s", "rounds", "edges", "recall%")
	base := rows[len(rows)-1].edges
	for _, r := range rows {
		recall := 0.0
		if base > 0 {
			recall = 100 * float64(r.edges) / float64(base)
		}
		t.row("%-8d %10d %10.1f", r.rounds, r.edges, recall)
	}
	t.flush()
}

// BenchmarkAblationGamma sweeps the quasi-clique density γ on one
// metagenome: lower γ consolidates more aggressively (fewer, larger
// clusters), higher γ approaches exact cliques.
func BenchmarkAblationGamma(b *testing.B) {
	defer recordBench(b, nil)
	meta := sampleMeta(b, metaScale()[0], 52)
	reads := simulate.MetaReads(meta)
	type rowData struct {
		gamma    float64
		clusters int
		largest  int
	}
	var rows []rowData
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		rows = rows[:0]
		for _, gamma := range []float64{0.5, 2.0 / 3.0, 0.8, 1.0} {
			cfg := closet.DefaultConfig(375)
			cfg.Gamma = gamma
			cfg.Thresholds = []float64{0.90}
			res, err := closet.Run(reads, cfg)
			if err != nil {
				b.Fatal(err)
			}
			clusters := res.ByThreshold[0].Clusters
			largest := 0
			for _, c := range clusters {
				largest = max(largest, len(c.Verts))
			}
			rows = append(rows, rowData{gamma, len(clusters), largest})
		}
	}
	t := newTable(b, "Ablation: quasi-clique density gamma at t=0.90")
	t.row("%-8s %10s %10s", "gamma", "clusters", "largest")
	for _, r := range rows {
		t.row("%-8.2f %10d %10d", r.gamma, r.clusters, r.largest)
	}
	t.flush()
}
