package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/loadgen"
	"repro/internal/simulate"
)

// serveBenchHarness stands up the daemon's full handler over a persisted
// benchScale spectrum and splits the corpus into request chunks — the
// exact path a production deployment exercises, minus the TCP socket.
func serveBenchHarness(b *testing.B, opts cli.ServerOptions) (*httptest.Server, [][]byte) {
	b.Helper()
	spec := simulate.Chapter2Specs(benchScale())[0] // D1
	ds := buildDataset(b, spec)
	reads := simulate.Reads(ds.Sim)
	built, err := kspectrum.Build(reads, 13, true)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.kspc")
	if err := kspectrum.WriteSpectrumFile(path, built); err != nil {
		b.Fatal(err)
	}
	loaded, err := kspectrum.ReadSpectrumFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { loaded.Close() })
	h, err := cli.NewHandler(map[string]*kspectrum.Spectrum{"main": loaded}, opts)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(h)
	b.Cleanup(ts.Close)

	var chunks [][]byte
	const chunkReads = 500
	for at := 0; at < len(reads); at += chunkReads {
		end := min(at+chunkReads, len(reads))
		body, err := fastq.EncodeChunk(reads[at:end])
		if err != nil {
			b.Fatal(err)
		}
		chunks = append(chunks, body)
	}
	return ts, chunks
}

// scrapeCounter fetches one counter's value from the daemon's /metrics
// exposition.
func scrapeCounter(b *testing.B, baseURL, name string) float64 {
	b.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`).FindSubmatch(body)
	if m == nil {
		b.Fatalf("/metrics has no %s:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// BenchmarkServeLoadgen is the first service-level row set: the daemon
// measured from the client side under the repo's own load generator.
// The steady leg runs inside capacity and reports the latency
// distribution and throughput a well-provisioned client sees; the
// overload leg pins the daemon to one slot and no queue, drives it far
// past capacity, and reports the shed behavior — cross-checking the
// daemon's own shed counter against what the client observed, the same
// invariant the CI service-smoke job asserts.
func BenchmarkServeLoadgen(b *testing.B) {
	b.Run("steady", func(b *testing.B) {
		ts, chunks := serveBenchHarness(b, cli.ServerOptions{Workers: 1, MaxInflight: 4})
		var last loadgen.Report
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := loadgen.Run(context.Background(), loadgen.Config{
				URL:         ts.URL + "/v2/correct?engine=reptile&spectrum=main",
				Chunks:      chunks,
				Concurrency: 4,
				Duration:    1500 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.OK == 0 || rep.Server5xx != 0 || rep.Failed != 0 {
				b.Fatalf("steady load failed: %s", rep)
			}
			last = rep
		}
		b.StopTimer()
		recordBench(b, map[string]float64{
			"requests": float64(last.Requests), "ok_per_sec": last.OKPerSec,
			"reads_per_sec": last.ReadsPerSec, "shed_rate": last.ShedRate,
			"p50_ms": last.P50Ms, "p90_ms": last.P90Ms, "p99_ms": last.P99Ms,
		})
		fmt.Printf("\nserve/steady: %s\n", last)
	})

	b.Run("overload", func(b *testing.B) {
		ts, chunks := serveBenchHarness(b, cli.ServerOptions{Workers: 1, MaxInflight: 1, MaxQueue: -1})
		var last loadgen.Report
		var shedBefore float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shedBefore = scrapeCounter(b, ts.URL, "repro_requests_shed_total")
			rep, err := loadgen.Run(context.Background(), loadgen.Config{
				URL:         ts.URL + "/v2/correct?engine=reptile&spectrum=main",
				Chunks:      chunks,
				Concurrency: 8,
				Duration:    1500 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.OK == 0 || rep.Shed == 0 {
				b.Fatalf("overload run did not both serve and shed: %s", rep)
			}
			if rep.Server5xx != 0 || rep.Failed != 0 {
				b.Fatalf("overload produced hard failures: %s", rep)
			}
			// The daemon's shed counter and the client's 429 tally are two
			// views of the same events. They can differ only by requests
			// in flight when the run deadline cancelled the client — at
			// most one per worker — and the daemon's count is the larger.
			shedAfter := scrapeCounter(b, ts.URL, "repro_requests_shed_total")
			got := shedAfter - shedBefore
			if got < float64(rep.Shed) || got > float64(rep.Shed+8) {
				b.Fatalf("daemon shed counter moved %v, loadgen observed %d", got, rep.Shed)
			}
			last = rep
		}
		b.StopTimer()
		recordBench(b, map[string]float64{
			"requests": float64(last.Requests), "ok_per_sec": last.OKPerSec,
			"shed_rate": last.ShedRate, "shed": float64(last.Shed),
			"p50_ms": last.P50Ms, "p99_ms": last.P99Ms,
		})
		fmt.Printf("\nserve/overload: %s\n", last)
	})
}
