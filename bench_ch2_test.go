package repro

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/kspectrum"
	"repro/internal/mapper"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

// BenchmarkTable21Datasets regenerates Table 2.1: the six experimental
// datasets D1–D6 (genome, read length, read count, coverage, error rate).
// Genomes are scaled stand-ins (see DESIGN.md); the coverage, read-length
// and error-rate structure matches the paper's rows.
func BenchmarkTable21Datasets(b *testing.B) {
	defer recordBench(b, nil)
	var datasets []*simulate.Dataset
	for i := 0; i < b.N; i++ {
		datasets = datasets[:0]
		for _, spec := range simulate.Chapter2Specs(benchScale()) {
			datasets = append(datasets, buildDataset(b, spec))
		}
	}
	t := newTable(b, "Table 2.1: experimental datasets (scaled)")
	t.row("%-4s %-10s %-8s %-10s %-6s %-8s", "Data", "GenomeLen", "ReadLen", "Reads", "Cov", "Err%")
	for _, ds := range datasets {
		t.row("%-4s %-10d %-8d %-10d %-6.0f %-8.2f",
			ds.Name, len(ds.Genome), ds.ReadLen, len(ds.Sim), ds.Coverage, 100*realizedErrorRate(ds.Sim))
	}
	t.flush()
}

// BenchmarkTable22Mapping regenerates Table 2.2: mapping each dataset to
// its genome, reporting uniquely and ambiguously mapped percentages under
// the paper's per-dataset mismatch budgets.
func BenchmarkTable22Mapping(b *testing.B) {
	defer recordBench(b, nil)
	specs := simulate.Chapter2Specs(benchScale())
	mismatches := map[string]int{"D1": 5, "D2": 5, "D3": 5, "D4": 5, "D5": 10, "D6": 15}
	type rowData struct {
		name              string
		mm, total         int
		unique, ambiguous float64
	}
	var rows []rowData
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, spec := range specs {
			ds := buildDataset(b, spec)
			idx, err := mapper.NewIndex(ds.Genome, 12)
			if err != nil {
				b.Fatal(err)
			}
			sum := idx.MapAll(simulate.Reads(ds.Sim), mismatches[spec.Name])
			rows = append(rows, rowData{spec.Name, mismatches[spec.Name], sum.Total,
				100 * sum.UniqueFraction(), 100 * sum.AmbiguousFraction()})
		}
	}
	t := newTable(b, "Table 2.2: RMAP-style mapping results")
	t.row("%-4s %-10s %-10s %-10s %-10s", "Data", "Mismatch", "Reads", "Unique%", "Ambig%")
	for _, r := range rows {
		t.row("%-4s %-10d %-10d %-10.1f %-10.1f", r.name, r.mm, r.total, r.unique, r.ambiguous)
	}
	t.flush()
}

// BenchmarkTable23ErrorCorrection regenerates Table 2.3: Reptile (d=1 and
// d=2 on D1/D2) versus SHREC across the datasets, with base-level outcome
// counts, EBA, Sensitivity, Specificity, Gain, time and allocation volume.
// The expected shape: Reptile achieves higher Gain and far lower EBA with
// a fraction of SHREC's memory and time.
func BenchmarkTable23ErrorCorrection(b *testing.B) {
	defer recordBench(b, nil)
	specs := simulate.Chapter2Specs(benchScale())
	t := newTable(b, "Table 2.3: Reptile vs SHREC on Illumina-like reads")
	t.row("%-4s %-12s %8s %8s %8s %8s %7s %7s %7s %9s %9s",
		"Data", "Method", "TP", "FN", "FP", "NE", "EBA%", "Sens%", "Gain%", "time", "allocMB")
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break // table content is deterministic; extra iterations only re-time
		}
		for _, spec := range specs {
			ds := buildDataset(b, spec)
			reads := simulate.Reads(ds.Sim)
			run := func(label string, correct func() []seq.Read) {
				var out []seq.Read
				elapsed, allocMB := measured(func() { out = correct() })
				stats, err := eval.EvaluateCorrection(ds.Sim, out)
				if err != nil {
					b.Fatal(err)
				}
				t.row("%-4s %-12s %8d %8d %8d %8d %7.3f %7.1f %7.1f %9s %9.0f",
					spec.Name, label, stats.TP, stats.FN, stats.FP, stats.NE,
					100*stats.EBA(), 100*stats.Sensitivity(), 100*stats.Gain(),
					elapsed.Round(1e6), allocMB)
			}
			run("SHREC", func() []seq.Read {
				cfg := shrec.DefaultConfig(len(ds.Genome))
				out, _, err := shrec.Correct(reads, cfg)
				if err != nil {
					b.Fatal(err)
				}
				return out
			})
			run("Reptile(1)", func() []seq.Read {
				p := reptile.DefaultParams(reads, len(ds.Genome))
				c, err := reptile.New(reads, p)
				if err != nil {
					b.Fatal(err)
				}
				return c.CorrectAll(reads, 0)
			})
			if spec.Name == "D1" || spec.Name == "D2" {
				run("Reptile(2)", func() []seq.Read {
					p := reptile.DefaultParams(reads, len(ds.Genome))
					p.D = 2
					p.C = min(p.K, p.D+4)
					c, err := reptile.New(reads, p)
					if err != nil {
						b.Fatal(err)
					}
					return c.CorrectAll(reads, 0)
				})
			}
		}
	}
	t.flush()
}

// BenchmarkTable24AmbiguousBases regenerates Table 2.4: quality of
// ambiguous ('N') base correction under each choice of the default
// replacement base, on D2- and D6-like datasets carrying N bases.
func BenchmarkTable24AmbiguousBases(b *testing.B) {
	defer recordBench(b, nil)
	specs := []simulate.DatasetSpec{
		{Name: "D2", GenomeLen: benchScale(), ReadLen: 36, Coverage: 80, ErrorRate: 0.006,
			Bias: simulate.EcoliBias, QualityNoise: 2, AmbiguousRate: 0.004, Seed: 242},
		{Name: "D6", GenomeLen: benchScale(), ReadLen: 101, Coverage: 96, ErrorRate: 0.022,
			Bias: simulate.EcoliBias, QualityNoise: 2, AmbiguousRate: 0.004, Seed: 246},
	}
	t := newTable(b, "Table 2.4: ambiguous base correction by default-base choice")
	t.row("%-4s %-3s %9s %7s %7s %7s", "Data", "N", "Accuracy%", "Sens%", "Spec%", "Gain%")
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		for _, spec := range specs {
			ds := buildDataset(b, spec)
			reads := simulate.Reads(ds.Sim)
			for _, def := range []byte{'A', 'C', 'G', 'T'} {
				p := reptile.DefaultParams(reads, len(ds.Genome))
				p.DefaultBase = def
				c, err := reptile.New(reads, p)
				if err != nil {
					b.Fatal(err)
				}
				out := c.CorrectAll(reads, 0)
				stats, err := eval.EvaluateCorrection(ds.Sim, out)
				if err != nil {
					b.Fatal(err)
				}
				// Accuracy over N positions only: fraction of ambiguous
				// bases recovered to the true base.
				nTotal, nFixed := 0, 0
				for ri, s := range ds.Sim {
					for pos, ch := range s.Read.Seq {
						if ch == 'N' {
							nTotal++
							if out[ri].Seq[pos] == s.True[pos] {
								nFixed++
							}
						}
					}
				}
				acc := 0.0
				if nTotal > 0 {
					acc = float64(nFixed) / float64(nTotal)
				}
				t.row("%-4s %-3c %9.2f %7.1f %7.2f %7.1f", spec.Name, def,
					100*acc, 100*stats.Sensitivity(), 100*stats.Specificity(), 100*stats.Gain())
			}
		}
	}
	t.flush()
}

// BenchmarkFig23ParameterSweep regenerates Figure 2.3: Gain and Sensitivity
// across the paper's 12 parameter points on the D3 dataset (high coverage,
// high error rate): 11 (Cm, Qc) combinations at k=11/d=1 plus the final
// (k=12, d=2) point.
func BenchmarkFig23ParameterSweep(b *testing.B) {
	defer recordBench(b, nil)
	asp := benchScale() * 36 / 46 // D3's smaller genome, as in Chapter2Specs
	spec := simulate.DatasetSpec{Name: "D3", GenomeLen: asp, ReadLen: 36, Coverage: 173,
		ErrorRate: 0.015, Bias: simulate.AspBias, QualityNoise: 2, Seed: 103}
	// The paper's raw (Cm, Qc) values are tied to its Solexa score range;
	// Qc here is expressed as the quality quantile it was chosen from
	// (§2.3's selection rule), so the ladder relaxes the same way.
	type point struct {
		k, d   int
		cm     uint32
		qcFrac float64
		qc     byte
		gain   float64
		sens   float64
	}
	points := []point{
		{k: 11, d: 1, cm: 14, qcFrac: 0.30}, {k: 11, d: 1, cm: 12, qcFrac: 0.28}, {k: 11, d: 1, cm: 10, qcFrac: 0.26},
		{k: 11, d: 1, cm: 10, qcFrac: 0.24}, {k: 11, d: 1, cm: 8, qcFrac: 0.22}, {k: 11, d: 1, cm: 8, qcFrac: 0.20},
		{k: 11, d: 1, cm: 8, qcFrac: 0.17}, {k: 11, d: 1, cm: 8, qcFrac: 0.12}, {k: 11, d: 1, cm: 7, qcFrac: 0.10},
		{k: 11, d: 1, cm: 6, qcFrac: 0.08}, {k: 11, d: 1, cm: 5, qcFrac: 0.05},
		{k: 12, d: 2, cm: 8, qcFrac: 0.05},
	}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		ds := buildDataset(b, spec)
		reads := simulate.Reads(ds.Sim)
		for pi := range points {
			pt := &points[pi]
			p := reptile.DefaultParams(reads, asp)
			p.K = pt.k
			p.D = pt.d
			p.C = min(p.K, p.D+4)
			p.Cm = pt.cm
			p.Cg = pt.cm * 4
			pt.qc = kspectrum.QualityQuantile(reads, pt.qcFrac)
			p.Qc = pt.qc
			p.Qm = p.Qc + 15
			c, err := reptile.New(reads, p)
			if err != nil {
				b.Fatal(err)
			}
			out := c.CorrectAll(reads, 0)
			stats, err := eval.EvaluateCorrection(ds.Sim, out)
			if err != nil {
				b.Fatal(err)
			}
			pt.gain = stats.Gain()
			pt.sens = stats.Sensitivity()
		}
	}
	t := newTable(b, "Fig 2.3: Gain and Sensitivity vs parameter choices on D3")
	t.row("%-3s %-3s %-3s %-4s %-4s %8s %8s", "pt", "k", "d", "Cm", "Qc", "Sens%", "Gain%")
	for i, pt := range points {
		t.row("%-3d %-3d %-3d %-4d %-4d %8.1f %8.1f", i+1, pt.k, pt.d, pt.cm, pt.qc, 100*pt.sens, 100*pt.gain)
	}
	t.flush()
}
