// Package repro is a from-scratch Go reproduction of Xiao Yang's 2011
// dissertation "Error correction and clustering algorithms for next
// generation sequencing": the Reptile short-read error corrector
// (Chapter 2), the REDEEM repeat-aware EM error detector/corrector
// (Chapter 3), and the CLOSET MapReduce metagenomic read clusterer
// (Chapter 4), together with every substrate they rely on — dataset
// simulators, a read mapper, the SHREC baseline, and an in-process
// MapReduce engine.
//
// The root package holds the benchmark harness: one Benchmark per table and
// figure of the dissertation's evaluation chapters (see EXPERIMENTS.md for
// the index and the paper-vs-measured record). Library code lives under
// internal/, executables under cmd/, and runnable walkthroughs under
// examples/.
package repro
