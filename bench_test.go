// The benchmark harness regenerating every table and figure of the
// dissertation's evaluation chapters. One Benchmark function corresponds to
// one table or figure; each prints the reproduced rows under its "--- BENCH"
// section. See EXPERIMENTS.md for the experiment index and the
// paper-vs-measured record, and DESIGN.md for the module mapping.
//
// Chapter 2 (Reptile):      bench_ch2_test.go  — Tables 2.1–2.4, Fig 2.3
// Chapter 3 (REDEEM):       bench_ch3_test.go  — Tables 3.1–3.4, Figs 3.2–3.3, §3.7
// Chapter 4 (CLOSET):       bench_ch4_test.go  — Tables 4.1–4.4
// Design-choice ablations:  bench_ablation_test.go
//
// Sizes are scaled for single-machine runs; REPRO_SCALE and
// REPRO_META_READS grow them toward paper scale.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/simulate"
)

// BenchmarkPipelineEndToEnd measures the full simulate -> correct ->
// evaluate pipeline, the composite workload every chapter-level experiment
// builds on.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	defer recordBench(b, nil)
	var gain float64
	for i := 0; i < b.N; i++ {
		ds, err := simulate.BuildDataset(simulate.DatasetSpec{
			Name: "e2e", GenomeLen: benchScale(), ReadLen: 36, Coverage: 60,
			ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		reads := simulate.Reads(ds.Sim)
		corrected, _, err := core.Correct(reads, core.CorrectOptions{GenomeLen: len(ds.Genome), Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := eval.EvaluateCorrection(ds.Sim, corrected)
		if err != nil {
			b.Fatal(err)
		}
		gain = stats.Gain()
	}
	b.ReportMetric(100*gain, "gain%")
}
