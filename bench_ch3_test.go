package repro

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/mapper"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

// ch3Dataset bundles a Chapter 3 dataset with its genome truth set and the
// four error-distribution variants of §3.4.2.
type ch3Dataset struct {
	name      string
	genome    []byte
	sim       []simulate.SimRead
	k         int
	genomeSet map[seq.Kmer]bool
	models    map[string]*simulate.KmerErrorModel // tIED wIED tUED wUED
}

// buildCh3Dataset realizes one Table 3.1 row and its error models: tIED is
// estimated from the same platform run (EcoliBias), wIED from the other run
// (AspBias), tUED uses the true average rate, wUED an inflated 2% rate.
func buildCh3Dataset(b *testing.B, name string, genomeLen int, repeatFrac, errRate, coverage float64, seed int64) *ch3Dataset {
	b.Helper()
	const k = 11
	spec := simulate.DatasetSpec{
		Name: name, GenomeLen: genomeLen, RepeatFrac: repeatFrac, ReadLen: 36,
		Coverage: coverage, ErrorRate: errRate, Bias: simulate.EcoliBias,
		QualityNoise: 2, Seed: seed,
	}
	ds := buildDataset(b, spec)
	trueModel := simulate.IlluminaModel(36, errRate, simulate.EcoliBias)
	wrongModel := simulate.IlluminaModel(36, errRate*1.3, simulate.AspBias)
	tied, err := simulate.KmerModelFromReadModel(trueModel, k)
	if err != nil {
		b.Fatal(err)
	}
	wied, err := simulate.KmerModelFromReadModel(wrongModel, k)
	if err != nil {
		b.Fatal(err)
	}
	return &ch3Dataset{
		name:      name,
		genome:    ds.Genome,
		sim:       ds.Sim,
		k:         k,
		genomeSet: eval.GenomeKmerSet(ds.Genome, k),
		models: map[string]*simulate.KmerErrorModel{
			"tIED": tied,
			"wIED": wied,
			"tUED": simulate.NewUniformKmerModel(k, errRate),
			"wUED": simulate.NewUniformKmerModel(k, 0.02),
		},
	}
}

// ch3Suite returns the Table 3.1 ladder at bench scale.
func ch3Suite(b *testing.B) []*ch3Dataset {
	scale := benchScale()
	return []*ch3Dataset{
		buildCh3Dataset(b, "D1(20%)", scale, 0.20, 0.006, 80, 311),
		buildCh3Dataset(b, "D2(50%)", scale, 0.50, 0.006, 80, 312),
		buildCh3Dataset(b, "D3(80%)", scale, 0.80, 0.006, 80, 313),
		buildCh3Dataset(b, "D6(ctl)", scale, 0, 0.006, 160, 316),
	}
}

// BenchmarkTable31Datasets regenerates Table 3.1: the Chapter 3 dataset
// inventory (repeat content, coverage, reads).
func BenchmarkTable31Datasets(b *testing.B) {
	defer recordBench(b, nil)
	var suite []*ch3Dataset
	for i := 0; i < b.N; i++ {
		suite = ch3Suite(b)
	}
	t := newTable(b, "Table 3.1: REDEEM experimental datasets (scaled)")
	t.row("%-8s %-10s %-8s %-8s", "Data", "GenomeLen", "Reads", "Err%")
	for _, ds := range suite {
		t.row("%-8s %-10d %-8d %-8.2f", ds.name, len(ds.genome), len(ds.sim), 100*realizedErrorRate(ds.sim))
	}
	t.flush()
}

// BenchmarkTable32ErrorProbs regenerates Table 3.2: the position-11 misread
// probability matrices q_11(.,.) estimated by mapping each platform run back
// to its reference — two visibly different error profiles.
func BenchmarkTable32ErrorProbs(b *testing.B) {
	defer recordBench(b, nil)
	scale := benchScale()
	type run struct {
		label string
		bias  simulate.PlatformBias
		mat   simulate.Matrix4
	}
	runs := []run{
		{label: "E. coli-like run", bias: simulate.EcoliBias},
		{label: "A. sp-like run", bias: simulate.AspBias},
	}
	for i := 0; i < b.N; i++ {
		for ri := range runs {
			ds := buildDataset(b, simulate.DatasetSpec{
				Name: runs[ri].label, GenomeLen: scale, ReadLen: 36, Coverage: 60,
				ErrorRate: 0.01, Bias: runs[ri].bias, QualityNoise: 2, Seed: int64(320 + ri),
			})
			idx, err := mapper.NewIndex(ds.Genome, 12)
			if err != nil {
				b.Fatal(err)
			}
			mats := idx.EstimateErrorMatrices(simulate.Reads(ds.Sim), 36, 3)
			// Average read positions into kmer position 11 of an 11-mer,
			// i.e. the last kmer position (index 10), as §3.4.2 does.
			var acc simulate.Matrix4
			n := 0
			for start := 0; start+11 <= 36; start++ {
				m := mats[start+10]
				for a := 0; a < 4; a++ {
					for c := 0; c < 4; c++ {
						acc[a][c] += m[a][c]
					}
				}
				n++
			}
			for a := 0; a < 4; a++ {
				for c := 0; c < 4; c++ {
					acc[a][c] /= float64(n)
				}
			}
			runs[ri].mat = acc
		}
	}
	t := newTable(b, "Table 3.2: estimated error probabilities q_i(.,.) at kmer position i=11 (x10^-2)")
	for _, r := range runs {
		t.row("%s", r.label)
		t.row("%6s %8s %8s %8s %8s", "", "A", "C", "G", "T")
		for a := 0; a < 4; a++ {
			t.row("%6c %8.2f %8.2f %8.2f %8.2f", "ACGT"[a],
				100*r.mat[a][0], 100*r.mat[a][1], 100*r.mat[a][2], 100*r.mat[a][3])
		}
	}
	t.flush()
}

// detectionCurve evaluates FP+FN for thresholding values[i] over a
// threshold grid, returning the per-threshold curve and the minimum.
func detectionCurve(m *redeem.Model, values []float64, genomeSet map[seq.Kmer]bool, grid []float64) ([]int, int) {
	curve := make([]int, len(grid))
	best := math.MaxInt
	for gi, thr := range grid {
		d := eval.EvaluateDetection(m.Spec.Kmers, func(i int) bool { return values[i] < thr }, genomeSet)
		curve[gi] = d.Wrong()
		if d.Wrong() < best {
			best = d.Wrong()
		}
	}
	return curve, best
}

func thresholdGrid(maxThr float64, steps int) []float64 {
	out := make([]float64, steps)
	for i := range out {
		out[i] = 1 + (maxThr-1)*float64(i)/float64(steps-1)
	}
	return out
}

// BenchmarkTable33MinErrors regenerates Table 3.3: the minimum FP+FN
// achieved by optimum thresholds on the observed counts Y versus the
// estimated attempts T under each error distribution. Expected shape: T
// beats Y, most clearly on repeat-rich genomes, and degrades gracefully as
// the error model gets wronger (tIED -> wIED -> tUED -> wUED).
func BenchmarkTable33MinErrors(b *testing.B) {
	defer recordBench(b, nil)
	modelNames := []string{"tIED", "wIED", "tUED", "wUED"}
	type rowData struct {
		name  string
		bestY int
		bestT map[string]int
	}
	var rows []rowData
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		rows = rows[:0]
		for _, ds := range ch3Suite(b) {
			reads := simulate.Reads(ds.sim)
			row := rowData{name: ds.name, bestT: map[string]int{}}
			grid := thresholdGrid(60, 40)
			for mi, mn := range modelNames {
				m, err := redeem.New(reads, ds.models[mn], redeem.DefaultConfig(ds.k))
				if err != nil {
					b.Fatal(err)
				}
				m.Run()
				if mi == 0 {
					_, row.bestY = detectionCurve(m, m.Y, ds.genomeSet, grid)
				}
				_, row.bestT[mn] = detectionCurve(m, m.T, ds.genomeSet, grid)
			}
			rows = append(rows, row)
		}
	}
	t := newTable(b, "Table 3.3: minimum FP+FN, thresholding Y vs estimated T")
	t.row("%-8s %8s %8s %8s %8s %8s", "Data", "Y", "tIED", "wIED", "tUED", "wUED")
	for _, r := range rows {
		t.row("%-8s %8d %8d %8d %8d %8d", r.name, r.bestY,
			r.bestT["tIED"], r.bestT["wIED"], r.bestT["tUED"], r.bestT["wUED"])
	}
	t.flush()
}

// BenchmarkFig32ThresholdCurves regenerates Figure 3.2: log10(FP+FN) as a
// function of the threshold, comparing Y-thresholding with T-thresholding
// under the four error distributions, on the 50%-repeat dataset.
func BenchmarkFig32ThresholdCurves(b *testing.B) {
	defer recordBench(b, nil)
	modelNames := []string{"tIED", "wIED", "tUED", "wUED"}
	grid := thresholdGrid(60, 13)
	curves := map[string][]int{}
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		ds := buildCh3Dataset(b, "D2(50%)", benchScale(), 0.50, 0.006, 80, 332)
		reads := simulate.Reads(ds.sim)
		for mi, mn := range modelNames {
			m, err := redeem.New(reads, ds.models[mn], redeem.DefaultConfig(ds.k))
			if err != nil {
				b.Fatal(err)
			}
			m.Run()
			if mi == 0 {
				curves["Y"], _ = detectionCurve(m, m.Y, ds.genomeSet, grid)
			}
			curves[mn], _ = detectionCurve(m, m.T, ds.genomeSet, grid)
		}
	}
	t := newTable(b, "Fig 3.2: log10(FP+FN) vs threshold on the 50%-repeat dataset")
	header := fmt.Sprintf("%-9s", "thresh")
	for _, name := range append([]string{"Y"}, modelNames...) {
		header += fmt.Sprintf(" %8s", name)
	}
	t.row("%s", header)
	for gi, thr := range grid {
		line := fmt.Sprintf("%-9.1f", thr)
		for _, name := range append([]string{"Y"}, modelNames...) {
			v := curves[name][gi]
			line += fmt.Sprintf(" %8.2f", math.Log10(float64(v)+1))
		}
		t.row("%s", line)
	}
	t.flush()
}

// BenchmarkFig33THistogram regenerates Figure 3.3: the histogram of
// estimated T_l for a low-repeat control dataset, showing the error mass
// near zero and coverage peaks at multiples of the coverage constant.
func BenchmarkFig33THistogram(b *testing.B) {
	defer recordBench(b, nil)
	var m *redeem.Model
	var cov float64
	for i := 0; i < b.N; i++ {
		ds := buildCh3Dataset(b, "ctl", benchScale(), 0, 0.006, 160, 333)
		reads := simulate.Reads(ds.sim)
		var err error
		m, err = redeem.New(reads, ds.models["tIED"], redeem.DefaultConfig(ds.k))
		if err != nil {
			b.Fatal(err)
		}
		m.Run()
		cov = float64(len(reads)*(36-ds.k+1)) / float64(len(ds.genome))
	}
	width := cov / 10
	h := m.THistogram(width, 2.5*cov)
	t := newTable(b, fmt.Sprintf("Fig 3.3: histogram of estimated T_l (coverage constant ~%.0f)", cov))
	maxCount := 0
	for _, c := range h {
		maxCount = max(maxCount, c)
	}
	for bi, c := range h {
		bar := ""
		if maxCount > 0 {
			n := 50 * c / maxCount
			for j := 0; j < n; j++ {
				bar += "#"
			}
		}
		t.row("%8.1f %8d %s", float64(bi)*width, c, bar)
	}
	t.flush()
}

// BenchmarkSec37MixtureThreshold regenerates the §3.7 automatic threshold
// inference: the Gamma+Normals+Uniform mixture fitted to T with BIC model
// selection across the repeat ladder.
func BenchmarkSec37MixtureThreshold(b *testing.B) {
	defer recordBench(b, nil)
	type rowData struct {
		name              string
		g                 int
		theta, thr        float64
		flagged, spectrum int
	}
	var rows []rowData
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		rows = rows[:0]
		for _, ds := range ch3Suite(b) {
			reads := simulate.Reads(ds.sim)
			m, err := redeem.New(reads, ds.models["tIED"], redeem.DefaultConfig(ds.k))
			if err != nil {
				b.Fatal(err)
			}
			m.Run()
			thr, mix, err := m.InferThreshold(1, 4)
			if err != nil {
				b.Fatal(err)
			}
			flagged := 0
			for _, f := range m.DetectByT(thr) {
				if f {
					flagged++
				}
			}
			rows = append(rows, rowData{ds.name, mix.G, mix.Theta, thr, flagged, m.Spec.Size()})
		}
	}
	t := newTable(b, "Sec 3.7: automatic threshold inference (mixture + BIC)")
	t.row("%-8s %4s %10s %10s %10s %10s", "Data", "G", "theta", "threshold", "flagged", "spectrum")
	for _, r := range rows {
		t.row("%-8s %4d %10.1f %10.2f %10d %10d", r.name, r.g, r.theta, r.thr, r.flagged, r.spectrum)
	}
	t.flush()
}

// BenchmarkTable34RepeatCorrection regenerates Table 3.4: SHREC vs Reptile
// vs REDEEM error correction across the repeat ladder. Expected shape: the
// conventional correctors win on low-repeat genomes; REDEEM overtakes as
// repeat content grows.
func BenchmarkTable34RepeatCorrection(b *testing.B) {
	defer recordBench(b, nil)
	t := newTable(b, "Table 3.4: error correction on repeat-rich genomes")
	t.row("%-8s %-10s %7s %7s %7s %10s %9s", "Data", "Method", "Sens%", "Spec%", "Gain%", "time", "allocMB")
	for i := 0; i < b.N; i++ {
		if i > 0 {
			break
		}
		for _, ds := range ch3Suite(b)[:3] { // D1-D3: the repeat ladder
			reads := simulate.Reads(ds.sim)
			type method struct {
				label   string
				correct func() []seq.Read
			}
			methods := []method{
				{"SHREC", func() []seq.Read {
					out, _, err := shrec.Correct(reads, shrec.DefaultConfig(len(ds.genome)))
					if err != nil {
						b.Fatal(err)
					}
					return out
				}},
				{"Reptile", func() []seq.Read {
					c, err := reptile.New(reads, reptile.DefaultParams(reads, len(ds.genome)))
					if err != nil {
						b.Fatal(err)
					}
					return c.CorrectAll(reads, 0)
				}},
				{"REDEEM", func() []seq.Read {
					m, err := redeem.New(reads, ds.models["tIED"], redeem.DefaultConfig(ds.k))
					if err != nil {
						b.Fatal(err)
					}
					m.Run()
					thr, _, err := m.InferThreshold(1, 3)
					if err != nil {
						b.Fatal(err)
					}
					return m.CorrectReads(reads, thr, 0)
				}},
			}
			for _, mt := range methods {
				var out []seq.Read
				elapsed, allocMB := measured(func() { out = mt.correct() })
				stats, err := eval.EvaluateCorrection(ds.sim, out)
				if err != nil {
					b.Fatal(err)
				}
				t.row("%-8s %-10s %7.1f %7.2f %7.1f %10s %9.0f", ds.name, mt.label,
					100*stats.Sensitivity(), 100*stats.Specificity(), 100*stats.Gain(),
					elapsed.Round(1e6), allocMB)
			}
		}
	}
	t.flush()
}
