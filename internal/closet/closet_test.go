package closet

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/eval"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func metaSample(t *testing.T, nReads int, seed int64) (*simulate.Taxonomy, []simulate.MetaRead) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := simulate.SampleMetagenome(tax, simulate.DefaultMetagenomeConfig(nReads), rng)
	if err != nil {
		t.Fatal(err)
	}
	return tax, reads
}

func smallConfig() Config {
	cfg := DefaultConfig(375)
	cfg.Nodes = 8
	return cfg
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Cmax = 1 },
		func(c *Config) { c.Cmin = 0 },
		func(c *Config) { c.Cmin = 1.5 },
		func(c *Config) { c.Gamma = 0 },
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Thresholds = nil },
		func(c *Config) { c.Thresholds = []float64{0.9, 0.95} },
		func(c *Config) { c.MaxMergeRounds = 0 },
		func(c *Config) { c.Sketch.K = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig(375)
		mod(&cfg)
		if _, err := Run(nil, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPipelineClustersSpecies(t *testing.T) {
	tax, meta := metaSample(t, 1200, 1)
	_ = tax
	res, err := Run(simulate.MetaReads(meta), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueEdges == 0 || res.ConfirmedEdges == 0 {
		t.Fatalf("no edges built: %+v", res)
	}
	if res.PredictedEdges < res.UniqueEdges {
		t.Errorf("predicted %d < unique %d", res.PredictedEdges, res.UniqueEdges)
	}
	if res.UniqueEdges < res.ConfirmedEdges {
		t.Errorf("unique %d < confirmed %d", res.UniqueEdges, res.ConfirmedEdges)
	}
	if len(res.ByThreshold) != 3 {
		t.Fatalf("threshold results: %d", len(res.ByThreshold))
	}
	// Edges within a species should dominate the confirmed set.
	intra, inter := 0, 0
	for _, e := range res.Edges {
		if meta[e.I].Taxon.Species == meta[e.J].Taxon.Species {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter*3 {
		t.Errorf("edge purity weak: intra=%d inter=%d", intra, inter)
	}
	// Timings must cover all stages.
	if len(res.Timings) < 2+2*len(res.ByThreshold) {
		t.Errorf("missing stage timings: %v", res.Timings)
	}
}

func TestLowerThresholdsGrowClusters(t *testing.T) {
	_, meta := metaSample(t, 800, 2)
	cfg := smallConfig()
	cfg.Thresholds = []float64{0.95, 0.80, 0.65}
	res, err := Run(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lower thresholds admit more edges.
	for i := 1; i < len(res.ByThreshold); i++ {
		if res.ByThreshold[i].EdgesUsed < res.ByThreshold[i-1].EdgesUsed {
			t.Errorf("edges shrank when threshold dropped: %d -> %d",
				res.ByThreshold[i-1].EdgesUsed, res.ByThreshold[i].EdgesUsed)
		}
	}
	// The largest cluster should not shrink as the threshold loosens.
	maxSize := func(cs []Cluster) int {
		m := 0
		for _, c := range cs {
			m = max(m, len(c.Verts))
		}
		return m
	}
	first := maxSize(res.ByThreshold[0].Clusters)
	last := maxSize(res.ByThreshold[len(res.ByThreshold)-1].Clusters)
	if last < first {
		t.Errorf("largest cluster shrank: %d -> %d", first, last)
	}
}

func TestClusteringRecoversTaxonomyARI(t *testing.T) {
	// Amplicon-style sampling: reads come from one 450bp hypervariable
	// window, so same-species reads mutually overlap — the regime where
	// clustering can be validated against taxonomy (Table 4.4).
	rng := rand.New(rand.NewSource(3))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := simulate.DefaultMetagenomeConfig(1500)
	mcfg.RegionStart, mcfg.RegionLen = 400, 450
	mcfg.MeanLen, mcfg.SDLen, mcfg.MinLen = 400, 30, 300
	meta, err := simulate.SampleMetagenome(tax, mcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Thresholds = []float64{0.95, 0.85, 0.70}
	res, err := Run(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, len(meta))
	for i, r := range meta {
		truth[i] = r.Taxon.Species
	}
	best := -1.0
	for _, tr := range res.ByThreshold {
		labels := PartitionLabels(tr.Clusters, len(meta))
		ari, err := eval.ARI(truth, labels)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("t=%.2f: clusters=%d ARI=%.3f", tr.Threshold, len(tr.Clusters), ari)
		best = max(best, ari)
	}
	if best < 0.5 {
		t.Errorf("best ARI %.3f, clustering failed to recover species", best)
	}
}

func TestClusterDensityInvariant(t *testing.T) {
	_, meta := metaSample(t, 800, 4)
	cfg := smallConfig()
	res, err := Run(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.ByThreshold {
		for _, c := range tr.Clusters {
			if len(c.Verts) < 2 {
				t.Fatalf("degenerate cluster: %+v", c)
			}
			if c.Density() < cfg.Gamma-1e-9 {
				t.Fatalf("cluster below gamma: density=%.3f verts=%d", c.Density(), len(c.Verts))
			}
			// Vertices sorted; edges reference member vertices.
			for i := 1; i < len(c.Verts); i++ {
				if c.Verts[i] <= c.Verts[i-1] {
					t.Fatal("vertices not sorted-distinct")
				}
			}
			for _, e := range c.Edges {
				if !containsSorted(c.Verts, e[0]) || !containsSorted(c.Verts, e[1]) {
					t.Fatalf("edge %v references non-member vertex", e)
				}
			}
		}
	}
}

func containsSorted(vs []int32, x int32) bool {
	lo, hi := 0, len(vs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case vs[mid] < x:
			lo = mid + 1
		case vs[mid] > x:
			hi = mid - 1
		default:
			return true
		}
	}
	return false
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, meta := metaSample(t, 600, 5)
	cfg := smallConfig()
	a, err := Run(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.UniqueEdges != b.UniqueEdges || a.ConfirmedEdges != b.ConfirmedEdges {
		t.Errorf("edge counts differ: %d/%d vs %d/%d", a.UniqueEdges, a.ConfirmedEdges, b.UniqueEdges, b.ConfirmedEdges)
	}
	for i := range a.ByThreshold {
		ka := clusterKeySet(a.ByThreshold[i].Clusters)
		kb := clusterKeySet(b.ByThreshold[i].Clusters)
		if !keySetEqual(ka, kb) {
			t.Errorf("threshold %v: cluster sets differ (%d vs %d)",
				a.ByThreshold[i].Threshold, len(ka), len(kb))
		}
	}
}

func TestMergeGroupRespectsGamma(t *testing.T) {
	// Two 2-cliques sharing a vertex: union has 3 verts, 2 edges,
	// density 2/3 — mergeable at gamma=2/3 but not at gamma=0.9.
	cs := []Cluster{
		{Verts: []int32{1, 2}, Edges: [][2]int32{{1, 2}}},
		{Verts: []int32{2, 3}, Edges: [][2]int32{{2, 3}}},
	}
	adj := buildAdjacency([]Edge{{I: 1, J: 2}, {I: 2, J: 3}})
	merged := mergeGroup(cs, 2.0/3.0, adj)
	if len(merged) != 1 || len(merged[0].Verts) != 3 {
		t.Errorf("gamma=2/3 merge failed: %+v", merged)
	}
	kept := mergeGroup(cs, 0.9, adj)
	if len(kept) != 2 {
		t.Errorf("gamma=0.9 should not merge: %+v", kept)
	}
	// With the closing edge present, even gamma=1 merges.
	adjFull := buildAdjacency([]Edge{{I: 1, J: 2}, {I: 2, J: 3}, {I: 1, J: 3}})
	full := mergeGroup(cs, 1.0, adjFull)
	if len(full) != 1 {
		t.Errorf("triangle should merge at gamma=1: %+v", full)
	}
}

func TestDropAbsorbed(t *testing.T) {
	cs := []Cluster{
		{Verts: []int32{1, 2, 3}, Edges: [][2]int32{{1, 2}, {2, 3}}},
		{Verts: []int32{1, 2}, Edges: [][2]int32{{1, 2}}},
		{Verts: []int32{4, 5}, Edges: [][2]int32{{4, 5}}},
	}
	out := dropAbsorbed(cs)
	if len(out) != 2 {
		t.Fatalf("got %d clusters want 2: %+v", len(out), out)
	}
	for _, c := range out {
		if len(c.Verts) == 2 && c.Verts[0] == 1 {
			t.Error("subset cluster survived")
		}
	}
}

func TestPartitionLabels(t *testing.T) {
	clusters := []Cluster{
		{Verts: []int32{0, 1, 2}, Edges: [][2]int32{{0, 1}, {1, 2}}},
		{Verts: []int32{2, 3}, Edges: [][2]int32{{2, 3}}},
	}
	labels := PartitionLabels(clusters, 6)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("large cluster split: %v", labels)
	}
	if labels[3] == labels[2] {
		t.Errorf("overlap not resolved to largest cluster: %v", labels)
	}
	if labels[4] == labels[5] {
		t.Errorf("singletons share a label: %v", labels)
	}
}

func TestSubsetSorted(t *testing.T) {
	if !subsetSorted([]int32{1, 3}, []int32{1, 2, 3}) {
		t.Error("subset not detected")
	}
	if subsetSorted([]int32{1, 4}, []int32{1, 2, 3}) {
		t.Error("non-subset accepted")
	}
	if subsetSorted([]int32{1, 2, 3}, []int32{1, 2}) {
		t.Error("longer-than accepted")
	}
}

func TestRunEmptyInput(t *testing.T) {
	res, err := Run([]seq.Read{}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ConfirmedEdges != 0 || len(res.ByThreshold) != 3 {
		t.Errorf("empty input result: %+v", res)
	}
}

func TestAlignmentSimilarityFn(t *testing.T) {
	// Plugging the alignment-based F (§4.1's user-defined similarity slot)
	// changes edge weights but preserves the structure: intra-species edges
	// still dominate, and higher-identity pairs score higher than the
	// containment estimate would suggest for partially-overlapping reads.
	_, meta := metaSample(t, 400, 6)
	cfg := smallConfig()
	cfg.SimilarityFn = align.OverlapIdentity
	cfg.Thresholds = []float64{0.95, 0.85, 0.70}
	res, err := Run(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConfirmedEdges == 0 {
		t.Fatal("no edges confirmed with alignment similarity")
	}
	intra, inter := 0, 0
	for _, e := range res.Edges {
		if meta[e.I].Taxon.Species == meta[e.J].Taxon.Species {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter*3 {
		t.Errorf("alignment-F edge purity weak: intra=%d inter=%d", intra, inter)
	}
}
