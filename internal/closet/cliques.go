package closet

import (
	"fmt"
	"sort"

	"repro/internal/mapreduce"
)

// Cluster is a γ-quasi-clique: a vertex set and the similarity edges
// supporting it (Algorithm 4's <key = vertices, value = edges> pairs).
// Vertices and Edges are kept sorted; clusters may overlap — a read can
// belong to several clusters when the similarity evidence is ambiguous
// (§4.1's deliberate departure from hard partitioning).
type Cluster struct {
	Verts []int32
	Edges [][2]int32
}

// Density returns |E| / C(|V|, 2).
func (c Cluster) Density() float64 {
	n := len(c.Verts)
	if n < 2 {
		return 0
	}
	return float64(len(c.Edges)) / (float64(n) * float64(n-1) / 2)
}

// key identifies the vertex set for deduplication (Task 8's hash h).
func (c Cluster) key() uint64 {
	h := uint64(1469598103934665603) // FNV offset
	for _, v := range c.Verts {
		h ^= uint64(uint32(v))
		h *= 1099511628211
	}
	return h
}

// sameVerts reports exact vertex-set equality (guards hash collisions).
func sameVerts(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeClusters unions two clusters' vertices and edges.
func mergeClusters(a, b Cluster) Cluster {
	return Cluster{
		Verts: unionSorted(a.Verts, b.Verts),
		Edges: unionSortedPairs(a.Edges, b.Edges),
	}
}

func unionSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func pairLess(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func unionSortedPairs(a, b [][2]int32) [][2]int32 {
	out := make([][2]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && pairLess(a[i], b[j])):
			out = append(out, a[i])
			i++
		case i == len(a) || pairLess(b[j], a[i]):
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// adjacency indexes the filtered edge set for induced-subgraph queries.
type adjacency map[int32]map[int32]bool

func buildAdjacency(edges []Edge) adjacency {
	adj := make(adjacency)
	add := func(a, b int32) {
		m := adj[a]
		if m == nil {
			m = make(map[int32]bool)
			adj[a] = m
		}
		m[b] = true
	}
	for _, e := range edges {
		add(e.I, e.J)
		add(e.J, e.I)
	}
	return adj
}

// inducedEdgeCount counts edges of the filtered graph inside the sorted
// vertex set — the |{(r,s) ∈ T×T : F(r,s) >= t}| of the §4.1 cluster
// definition.
func (adj adjacency) inducedEdgeCount(verts []int32) int {
	set := make(map[int32]bool, len(verts))
	for _, v := range verts {
		set[v] = true
	}
	n := 0
	for _, v := range verts {
		for u := range adj[v] {
			if u > v && set[u] {
				n++
			}
		}
	}
	return n
}

// inducedEdges materializes the induced edge list, sorted.
func (adj adjacency) inducedEdges(verts []int32) [][2]int32 {
	set := make(map[int32]bool, len(verts))
	for _, v := range verts {
		set[v] = true
	}
	var out [][2]int32
	for _, v := range verts {
		for u := range adj[v] {
			if u > v && set[u] {
				out = append(out, [2]int32{v, u})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return pairLess(out[i], out[j]) })
	return out
}

// enumerateQuasiCliques is Algorithm 4 over one threshold level: seed
// two-cliques from the filtered edges, join with the clusters carried from
// the previous (higher) threshold, then iterate Task 7 (merge clusters
// sharing vertices when the union stays a γ-quasi-clique) and Task 8
// (deduplicate by vertex set) until no change or the round bound. Density
// is evaluated on the subgraph induced by the union vertex set, per the
// formal cluster definition of §4.1.
// It returns the final clusters and the total number of clusters processed
// (generated and examined) — the Table 4.2 "clusters processed" quantity.
func enumerateQuasiCliques(carried []Cluster, edges []Edge, cfg Config, mrCfg mapreduce.Config, res *Result) ([]Cluster, int, error) {
	adj := buildAdjacency(edges)
	current := make([]Cluster, 0, len(carried)+len(edges))
	current = append(current, carried...)
	for _, e := range edges {
		current = append(current, Cluster{
			Verts: []int32{e.I, e.J},
			Edges: [][2]int32{{e.I, e.J}},
		})
	}
	current = dedupeClusters(current)
	processed := len(current)

	for round := 0; round < cfg.MaxMergeRounds; round++ {
		before := clusterKeySet(current)
		// Task 7: route each cluster to one of its vertices — rotating the
		// anchor across rounds so clusters sharing any vertex eventually
		// co-locate — and greedily merge co-resident clusters when the
		// union remains a γ-quasi-clique. (The dissertation routes every
		// cluster to all of its vertices; anchoring on one vertex per
		// round keeps the same fixpoint semantics while avoiding the
		// duplicated-variant blow-up its Table 4.2 "clusters processed"
		// column records.)
		mrCfg.Name = fmt.Sprintf("task7-merge-round%d", round)
		merged, st7, err := mapreduce.Run(mrCfg, current,
			func(c Cluster, emit mapreduce.Emitter[int32, Cluster]) {
				emit(c.Verts[round%len(c.Verts)], c)
			},
			func(_ int32, cs []Cluster, emit func(Cluster)) {
				for _, c := range mergeGroup(cs, cfg.Gamma, adj) {
					emit(c)
				}
			},
			mapreduce.HashInt32,
		)
		if err != nil {
			return nil, processed, err
		}
		res.Jobs = append(res.Jobs, st7)
		processed += len(merged)

		// Task 8: deduplicate clusters sharing the same vertex set,
		// unioning their edges.
		mrCfg.Name = fmt.Sprintf("task8-dedupe-round%d", round)
		deduped, st8, err := mapreduce.Run(mrCfg, merged,
			func(c Cluster, emit mapreduce.Emitter[uint64, Cluster]) {
				emit(c.key(), c)
			},
			func(_ uint64, cs []Cluster, emit func(Cluster)) {
				for _, c := range dedupeClusters(cs) {
					emit(c)
				}
			},
			mapreduce.HashUint64,
		)
		if err != nil {
			return nil, processed, err
		}
		res.Jobs = append(res.Jobs, st8)
		current = dropAbsorbed(deduped)
		if keySetEqual(before, clusterKeySet(current)) {
			break
		}
	}
	// Materialize the final induced edge sets.
	for i := range current {
		current[i].Edges = adj.inducedEdges(current[i].Verts)
	}
	sortClusters(current)
	return current, processed, nil
}

// mergeGroup greedily merges clusters sharing a reducer vertex when the
// union's induced subgraph remains a γ-quasi-clique (Algorithm 4 lines
// 10–15, density per the §4.1 definition). Larger clusters are tried first
// so growth is monotone and deterministic.
func mergeGroup(cs []Cluster, gamma float64, adj adjacency) []Cluster {
	sorted := append([]Cluster(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i].Verts) != len(sorted[j].Verts) {
			return len(sorted[i].Verts) > len(sorted[j].Verts)
		}
		return lessVerts(sorted[i].Verts, sorted[j].Verts)
	})
	out := make([]Cluster, 0, len(sorted))
	for _, c := range sorted {
		mergedIn := false
		for i := range out {
			verts := unionSorted(out[i].Verts, c.Verts)
			if len(verts) == len(out[i].Verts) {
				// c is a vertex subset of out[i]: absorbed outright.
				mergedIn = true
				break
			}
			n := len(verts)
			need := gamma * float64(n) * float64(n-1) / 2
			if float64(adj.inducedEdgeCount(verts)) >= need {
				out[i] = Cluster{Verts: verts}
				mergedIn = true
				break
			}
		}
		if !mergedIn {
			out = append(out, c)
		}
	}
	return out
}

func lessVerts(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// dedupeClusters collapses clusters with identical vertex sets, unioning
// their edge sets.
func dedupeClusters(cs []Cluster) []Cluster {
	byKey := make(map[uint64][]Cluster)
	var order []uint64
	for _, c := range cs {
		k := c.key()
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], c)
	}
	var out []Cluster
	for _, k := range order {
		group := byKey[k]
		for len(group) > 0 {
			acc := group[0]
			rest := group[:0]
			for _, c := range group[1:] {
				if sameVerts(acc.Verts, c.Verts) {
					acc.Edges = unionSortedPairs(acc.Edges, c.Edges)
				} else {
					rest = append(rest, c) // hash collision: keep separate
				}
			}
			out = append(out, acc)
			group = rest
		}
	}
	return out
}

// dropAbsorbed removes clusters whose vertex set is a strict subset of
// another cluster's (maximality of the enumerated quasi-cliques).
func dropAbsorbed(cs []Cluster) []Cluster {
	sort.Slice(cs, func(i, j int) bool { return len(cs[i].Verts) > len(cs[j].Verts) })
	memberOf := make(map[int32][]int) // vertex -> indices of kept clusters
	var kept []Cluster
	for _, c := range cs {
		absorbed := false
		// A superset cluster must contain c's first vertex.
		for _, ki := range memberOf[c.Verts[0]] {
			if subsetSorted(c.Verts, kept[ki].Verts) {
				absorbed = true
				break
			}
		}
		if absorbed {
			continue
		}
		idx := len(kept)
		kept = append(kept, c)
		for _, v := range c.Verts {
			memberOf[v] = append(memberOf[v], idx)
		}
	}
	return kept
}

// subsetSorted reports whether sorted a ⊆ sorted b.
func subsetSorted(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func clusterKeySet(cs []Cluster) map[uint64]bool {
	m := make(map[uint64]bool, len(cs))
	for _, c := range cs {
		m[c.key()] = true
	}
	return m
}

func keySetEqual(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sortClusters(cs []Cluster) {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i].Verts) != len(cs[j].Verts) {
			return len(cs[i].Verts) > len(cs[j].Verts)
		}
		return lessVerts(cs[i].Verts, cs[j].Verts)
	})
}

// PartitionLabels resolves the (possibly overlapping) clusters into a hard
// partition for ARI evaluation: each read joins its largest containing
// cluster; reads in no cluster become singletons. This is the conversion
// §4.5.2 notes is required before ARI can be applied.
func PartitionLabels(clusters []Cluster, nReads int) []int {
	labels := make([]int, nReads)
	for i := range labels {
		labels[i] = -1
	}
	ordered := append([]Cluster(nil), clusters...)
	sortClusters(ordered)
	for ci, c := range ordered {
		for _, v := range c.Verts {
			if int(v) < nReads && labels[v] < 0 {
				labels[v] = ci
			}
		}
	}
	next := len(ordered)
	for i := range labels {
		if labels[i] < 0 {
			labels[i] = next
			next++
		}
	}
	return labels
}
