// Package closet implements CLOSET (CLoud Open SequencE clusTering),
// Chapter 4: metagenomic read clustering by sketch-based edge construction
// (Algorithm 3, MapReduce Tasks 1–5) followed by incremental maximal
// γ-quasi-clique enumeration over a decreasing ladder of similarity
// thresholds (Algorithm 4, Tasks 6–8). Every stage runs on the in-process
// MapReduce engine, reporting the per-stage timings and data quantities of
// Tables 4.2 and 4.3.
package closet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/seq"
	"repro/internal/sketch"
)

// Config drives the whole pipeline.
type Config struct {
	Sketch sketch.Params
	// Cmax postpones sketch values shared by more than this many reads —
	// high-frequency substrings common to many rRNAs do not discriminate
	// and would throw the pair generation back to O(n^2) (§4.3.1).
	Cmax int
	// Cmin is the candidate-pair similarity cutoff (the paper's default
	// de-novo setting is 0.60).
	Cmin float64
	// Thresholds is the decreasing similarity ladder T = (t1 > t2 > ...).
	Thresholds []float64
	// Gamma is the quasi-clique density γ (default 2/3).
	Gamma float64
	// Nodes is the simulated Hadoop cluster size (the paper uses 32).
	Nodes int
	// MaxMergeRounds bounds the Task 7/8 iteration per threshold.
	MaxMergeRounds int
	// Validate applies the exact similarity function to candidate pairs
	// (Algorithm 3 line 18). When false the sketch estimate is trusted
	// directly, the standalone mode §4.3.1 describes.
	Validate bool
	// SimilarityFn is the user-defined similarity function F of §4.1
	// applied during validation (e.g. align.OverlapIdentity for pairwise
	// alignment identity). nil uses the exact shared-shingle containment
	// similarity, the standalone default.
	SimilarityFn func(a, b []byte) float64
}

// DefaultConfig mirrors §4.5.1's experimental settings.
func DefaultConfig(meanReadLen int) Config {
	return Config{
		Sketch:         sketch.DefaultParams(meanReadLen),
		Cmax:           200,
		Cmin:           0.60,
		Thresholds:     []float64{0.95, 0.92, 0.90},
		Gamma:          2.0 / 3.0,
		Nodes:          32,
		MaxMergeRounds: 8,
		Validate:       true,
	}
}

func (c Config) validate() error {
	if err := c.Sketch.Validate(); err != nil {
		return err
	}
	if c.Cmax < 2 {
		return fmt.Errorf("closet: Cmax must be at least 2")
	}
	if c.Cmin <= 0 || c.Cmin > 1 {
		return fmt.Errorf("closet: Cmin must be in (0,1], got %v", c.Cmin)
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("closet: gamma must be in (0,1], got %v", c.Gamma)
	}
	if c.Nodes < 1 {
		return fmt.Errorf("closet: need at least one node")
	}
	for i := 1; i < len(c.Thresholds); i++ {
		if c.Thresholds[i] >= c.Thresholds[i-1] {
			return fmt.Errorf("closet: thresholds must strictly decrease")
		}
	}
	if len(c.Thresholds) == 0 {
		return fmt.Errorf("closet: need at least one threshold")
	}
	if c.MaxMergeRounds < 1 {
		return fmt.Errorf("closet: need at least one merge round")
	}
	return nil
}

// Edge is a validated similarity edge between two reads (i < j).
type Edge struct {
	I, J int32
	F    float64
}

// StageTiming records one pipeline stage's wall clock (Table 4.3 rows).
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// ThresholdResult is the clustering outcome at one similarity level.
type ThresholdResult struct {
	Threshold         float64
	EdgesUsed         int
	ClustersProcessed int // clusters generated and examined during merging
	Clusters          []Cluster
}

// Result aggregates everything the experiments report.
type Result struct {
	// Table 4.2 quantities.
	PredictedEdges int // candidate pairs generated across all rounds
	UniqueEdges    int // after deduplication
	ConfirmedEdges int // after exact validation
	Edges          []Edge
	ByThreshold    []ThresholdResult
	// Table 4.3 rows.
	Timings []StageTiming
	// MapReduce job statistics in execution order.
	Jobs []mapreduce.Stats
}

// Run executes the full CLOSET pipeline on the reads.
func Run(reads []seq.Read, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	mrCfg := mapreduce.Config{Nodes: cfg.Nodes}

	// Precompute every read's full shingle set once; sketches per round
	// derive from it by the modulo rule.
	shingles := make([][]uint64, len(reads))
	for i, r := range reads {
		shingles[i] = sketch.Shingles(r.Seq, cfg.Sketch.K)
	}

	start := time.Now()
	candidates, predicted, err := buildCandidates(shingles, cfg, mrCfg, res)
	if err != nil {
		return nil, err
	}
	res.PredictedEdges = predicted
	res.UniqueEdges = len(candidates)
	res.Timings = append(res.Timings, StageTiming{"sketching", time.Since(start)})

	start = time.Now()
	edges, err := validateEdges(candidates, reads, shingles, cfg, mrCfg, res)
	if err != nil {
		return nil, err
	}
	res.Edges = edges
	res.ConfirmedEdges = len(edges)
	res.Timings = append(res.Timings, StageTiming{"validation", time.Since(start)})

	// Phase II: incremental clustering over the threshold ladder.
	var carried []Cluster
	for _, t := range cfg.Thresholds {
		startF := time.Now()
		filtered, err := filterEdges(edges, t, mrCfg, res)
		if err != nil {
			return nil, err
		}
		res.Timings = append(res.Timings, StageTiming{fmt.Sprintf("filtering@%.2f", t), time.Since(startF)})

		startC := time.Now()
		clusters, processed, err := enumerateQuasiCliques(carried, filtered, cfg, mrCfg, res)
		if err != nil {
			return nil, err
		}
		res.Timings = append(res.Timings, StageTiming{fmt.Sprintf("clustering@%.2f", t), time.Since(startC)})
		res.ByThreshold = append(res.ByThreshold, ThresholdResult{
			Threshold:         t,
			EdgesUsed:         len(filtered),
			ClustersProcessed: processed,
			Clusters:          clusters,
		})
		carried = clusters
	}
	return res, nil
}

// pairKey orders a read pair canonically.
func pairKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// buildCandidates runs Tasks 1–3 for each sketch round and returns the
// deduplicated candidate pair list plus the raw (pre-dedup) pair count.
func buildCandidates(shingles [][]uint64, cfg Config, mrCfg mapreduce.Config, res *Result) ([][2]int32, int, error) {
	type pairCount struct {
		pair  [2]int32
		count int
	}
	seen := make(map[[2]int32]bool)
	var unique [][2]int32
	predicted := 0
	readIDs := make([]int32, len(shingles))
	for i := range readIDs {
		readIDs[i] = int32(i)
	}
	for round := 0; round < cfg.Sketch.Rounds; round++ {
		// Task 1: sketch selection — emit <sketch value, read id>, group,
		// and split groups into usable (<= Cmax) and postponed (rem).
		type group struct {
			rem   bool
			reads []int32
		}
		mrCfg.Name = fmt.Sprintf("task1-sketch-round%d", round)
		groups, st1, err := mapreduce.Run(mrCfg, readIDs,
			func(rid int32, emit mapreduce.Emitter[uint64, int32]) {
				for _, h := range sketch.Select(shingles[rid], cfg.Sketch.M, round) {
					emit(h, rid)
				}
			},
			func(_ uint64, rids []int32, emit func(group)) {
				if len(rids) < 2 {
					return
				}
				g := group{reads: append([]int32(nil), rids...)}
				g.rem = len(rids) > cfg.Cmax
				emit(g)
			},
			mapreduce.HashUint64,
		)
		if err != nil {
			return nil, 0, err
		}
		res.Jobs = append(res.Jobs, st1)

		// Postponed high-frequency groups: membership index for Task 2's
		// count adjustment (§4.3.1 line 14).
		remMembership := make(map[int32][]int32) // read -> rem group ids
		var usable []group
		remID := int32(0)
		for _, g := range groups {
			if g.rem {
				for _, r := range g.reads {
					remMembership[r] = append(remMembership[r], remID)
				}
				remID++
			} else {
				usable = append(usable, g)
			}
		}

		// Task 2: edge generation — every pair within a usable group gets
		// a unit count; the reducer aggregates, adds back rem co-occurrence,
		// and applies the Cmin filter on the estimated similarity J.
		mrCfg.Name = fmt.Sprintf("task2-edges-round%d", round)
		sketchSize := func(rid int32) int {
			return len(sketch.Select(shingles[rid], cfg.Sketch.M, round))
		}
		pairs, st2, err := mapreduce.Run(mrCfg, usable,
			func(g group, emit mapreduce.Emitter[[2]int32, int]) {
				for x := 0; x < len(g.reads); x++ {
					for y := x + 1; y < len(g.reads); y++ {
						if g.reads[x] != g.reads[y] {
							emit(pairKey(g.reads[x], g.reads[y]), 1)
						}
					}
				}
			},
			func(pk [2]int32, ones []int, emit func(pairCount)) {
				count := len(ones)
				count += sharedSorted(remMembership[pk[0]], remMembership[pk[1]])
				mi := min(sketchSize(pk[0]), sketchSize(pk[1]))
				if mi == 0 {
					return
				}
				if float64(count)/float64(mi) >= cfg.Cmin {
					emit(pairCount{pair: pk, count: count})
				}
			},
			mapreduce.HashInt32Pair,
		)
		if err != nil {
			return nil, 0, err
		}
		res.Jobs = append(res.Jobs, st2)
		predicted += len(pairs)

		// Task 3: merge this round's survivors into the global unique set.
		for _, pc := range pairs {
			if !seen[pc.pair] {
				seen[pc.pair] = true
				unique = append(unique, pc.pair)
			}
		}
	}
	sort.Slice(unique, func(i, j int) bool {
		if unique[i][0] != unique[j][0] {
			return unique[i][0] < unique[j][0]
		}
		return unique[i][1] < unique[j][1]
	})
	return unique, predicted, nil
}

// sharedSorted counts common elements of two ascending id lists.
func sharedSorted(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// validateEdges is Tasks 4–5: compute the exact similarity for every
// candidate pair — the user-defined F when configured, the shared-shingle
// containment similarity otherwise — and keep those at or above Cmin.
func validateEdges(cands [][2]int32, reads []seq.Read, shingles [][]uint64, cfg Config, mrCfg mapreduce.Config, res *Result) ([]Edge, error) {
	similarity := func(i, j int32) float64 {
		if cfg.SimilarityFn != nil {
			return cfg.SimilarityFn(reads[i].Seq, reads[j].Seq)
		}
		return sketch.Similarity(shingles[i], shingles[j])
	}
	mrCfg.Name = "task5-validate"
	edges, st, err := mapreduce.Run(mrCfg, cands,
		func(pk [2]int32, emit mapreduce.Emitter[[2]int32, struct{}]) {
			emit(pk, struct{}{})
		},
		func(pk [2]int32, _ []struct{}, emit func(Edge)) {
			f := similarity(pk[0], pk[1])
			if !cfg.Validate || f >= cfg.Cmin {
				emit(Edge{I: pk[0], J: pk[1], F: f})
			}
		},
		mapreduce.HashInt32Pair,
	)
	if err != nil {
		return nil, err
	}
	res.Jobs = append(res.Jobs, st)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].I != edges[j].I {
			return edges[i].I < edges[j].I
		}
		return edges[i].J < edges[j].J
	})
	return edges, nil
}

// filterEdges is Task 6: keep edges with similarity at or above t.
func filterEdges(edges []Edge, t float64, mrCfg mapreduce.Config, res *Result) ([]Edge, error) {
	mrCfg.Name = fmt.Sprintf("task6-filter@%.2f", t)
	out, st, err := mapreduce.Run(mrCfg, edges,
		func(e Edge, emit mapreduce.Emitter[[2]int32, Edge]) {
			if e.F >= t {
				emit([2]int32{e.I, e.J}, e)
			}
		},
		func(_ [2]int32, es []Edge, emit func(Edge)) {
			emit(es[0])
		},
		mapreduce.HashInt32Pair,
	)
	if err != nil {
		return nil, err
	}
	res.Jobs = append(res.Jobs, st)
	sort.Slice(out, func(i, j int) bool {
		if out[i].I != out[j].I {
			return out[i].I < out[j].I
		}
		return out[i].J < out[j].J
	})
	return out, nil
}
