package core

import (
	"math/rand"
	"testing"

	"repro/internal/closet"
	"repro/internal/simulate"
)

func smallDataset(t *testing.T, seed int64) *simulate.Dataset {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 10000, ReadLen: 36, Coverage: 50,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCorrectAllMethodsImproveReads(t *testing.T) {
	ds := smallDataset(t, 11)
	reads := simulate.Reads(ds.Sim)
	model := simulate.IlluminaModel(36, 0.008, simulate.EcoliBias)
	km, err := simulate.KmerModelFromReadModel(model, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodReptile, MethodRedeem, MethodShrec} {
		out, rep, err := Correct(reads, CorrectOptions{
			Method:      m,
			GenomeLen:   len(ds.Genome),
			Workers:     1,
			RedeemK:     11,
			RedeemModel: km,
		})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		stats, err := EvaluateAgainstTruth(ds.Sim, out)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s (%v): %v", m, rep.Duration.Round(1e6), stats)
		if stats.Gain() <= 0 {
			t.Errorf("%s: non-positive gain %.3f", m, stats.Gain())
		}
		if rep.Method == "" || rep.Duration <= 0 {
			t.Errorf("%s: incomplete report %+v", m, rep)
		}
	}
}

func TestCorrectDefaultsToReptile(t *testing.T) {
	ds := smallDataset(t, 12)
	_, rep, err := Correct(simulate.Reads(ds.Sim), CorrectOptions{GenomeLen: len(ds.Genome), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != MethodReptile {
		t.Errorf("default method = %q", rep.Method)
	}
}

func TestCorrectUnknownMethod(t *testing.T) {
	if _, _, err := Correct(nil, CorrectOptions{Method: "nope"}); err == nil {
		t.Error("expected error for unknown method")
	}
}

func TestClusterFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := simulate.SampleMetagenome(tax, simulate.DefaultMetagenomeConfig(400), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := closet.DefaultConfig(375)
	cfg.Nodes = 4
	res, err := Cluster(simulate.MetaReads(meta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConfirmedEdges == 0 {
		t.Error("no edges confirmed")
	}
}

func TestEvaluateByMapping(t *testing.T) {
	ds := smallDataset(t, 14)
	reads := simulate.Reads(ds.Sim)
	out, _, err := Correct(reads, CorrectOptions{GenomeLen: len(ds.Genome), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pre, post, err := EvaluateByMapping(ds.Genome, reads, out, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Correction should increase the mappable fraction and reduce the
	// estimated error rate (the §2.4 improvement signal).
	if post.UniqueFraction() < pre.UniqueFraction() {
		t.Errorf("unique mapping dropped: %.3f -> %.3f", pre.UniqueFraction(), post.UniqueFraction())
	}
	if post.ErrorRate() >= pre.ErrorRate() {
		t.Errorf("mapped error rate did not drop: %.4f -> %.4f", pre.ErrorRate(), post.ErrorRate())
	}
}
