package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/fastq"
	"repro/internal/reptile"
	"repro/internal/simulate"
)

// memOpener re-opens an in-memory FASTQ blob, standing in for a file.
type memOpener struct{ data []byte }

func (m memOpener) open() (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(m.data)), nil
}

func fastqBlob(t *testing.T, ds *simulate.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fastq.Write(&buf, simulate.Reads(ds.Sim)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorrectStreamMatchesInMemory is the pipeline's acceptance property:
// the streamed, budget-bounded output is byte-identical to the in-memory
// Correct path for both streaming methods.
func TestCorrectStreamMatchesInMemory(t *testing.T) {
	ds := smallDataset(t, 21)
	reads := simulate.Reads(ds.Sim)
	blob := fastqBlob(t, ds)
	model := simulate.IlluminaModel(36, 0.008, simulate.EcoliBias)
	km, err := simulate.KmerModelFromReadModel(model, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodReptile, MethodRedeem} {
		// The in-memory reference must use the same parameters the stream
		// derives; Reptile's defaults are data-dependent (Qc), so fix them
		// from the whole read set here and pass them explicitly.
		opts := CorrectOptions{
			Method:      m,
			GenomeLen:   len(ds.Genome),
			Workers:     2,
			RedeemK:     11,
			RedeemModel: km,
		}
		if m == MethodReptile {
			opts.Reptile = reptile.DefaultParams(reads, len(ds.Genome))
		}
		want, _, err := Correct(reads, opts)
		if err != nil {
			t.Fatalf("%s: in-memory: %v", m, err)
		}

		for _, budget := range []int64{0, 1 << 15} {
			opts.MemoryBudget = budget
			opts.Reptile.MemoryBudget = 0 // let opts.MemoryBudget thread through
			var out bytes.Buffer
			rep, err := CorrectStream(memOpener{blob}.open, &out, opts)
			if err != nil {
				t.Fatalf("%s budget=%d: %v", m, budget, err)
			}
			if rep.Reads != len(reads) {
				t.Errorf("%s budget=%d: processed %d reads want %d", m, budget, rep.Reads, len(reads))
			}
			got, err := fastq.NewReader(bytes.NewReader(out.Bytes())).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s budget=%d: %d reads out, want %d", m, budget, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || !bytes.Equal(got[i].Seq, want[i].Seq) {
					t.Fatalf("%s budget=%d: read %d diverges from in-memory path:\n  got  %s\n  want %s",
						m, budget, i, got[i].Seq, want[i].Seq)
				}
			}
		}
	}
}

// TestCorrectStreamShrecFallback covers the buffering fallback for methods
// without a streaming path.
func TestCorrectStreamShrecFallback(t *testing.T) {
	ds := smallDataset(t, 22)
	blob := fastqBlob(t, ds)
	var out bytes.Buffer
	rep, err := CorrectStream(memOpener{blob}.open, &out, CorrectOptions{
		Method: MethodShrec, GenomeLen: len(ds.Genome), Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads != len(ds.Sim) {
		t.Errorf("processed %d reads want %d", rep.Reads, len(ds.Sim))
	}
	got, err := fastq.NewReader(bytes.NewReader(out.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Sim) {
		t.Errorf("%d reads out, want %d", len(got), len(ds.Sim))
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"123", 123, true},
		{"64B", 64, true},
		{"8K", 8 << 10, true},
		{"8KB", 8 << 10, true},
		{"8KiB", 8 << 10, true},
		{"64MB", 64 << 20, true},
		{" 2 GiB ", 2 << 30, true},
		{"1tb", 1 << 40, true},
		{"", 0, false},
		{"MB", 0, false},
		{"-1MB", 0, false},
		{"12XB", 0, false},
		{"9999999999G", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseByteSize(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseByteSize(%q) error = %v, ok want %v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseByteSize(%q) = %d want %d", tc.in, got, tc.want)
		}
	}
}
