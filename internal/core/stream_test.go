package core

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/reptile"
	"repro/internal/simulate"
)

// memOpener re-opens an in-memory FASTQ blob, standing in for a file.
type memOpener struct{ data []byte }

func (m memOpener) open() (io.ReadCloser, error) {
	return io.NopCloser(bytes.NewReader(m.data)), nil
}

func fastqBlob(t *testing.T, ds *simulate.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fastq.Write(&buf, simulate.Reads(ds.Sim)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorrectStreamMatchesInMemory is the pipeline's acceptance property:
// the streamed, budget-bounded output is byte-identical to the in-memory
// Correct path for both streaming methods.
func TestCorrectStreamMatchesInMemory(t *testing.T) {
	ds := smallDataset(t, 21)
	reads := simulate.Reads(ds.Sim)
	blob := fastqBlob(t, ds)
	model := simulate.IlluminaModel(36, 0.008, simulate.EcoliBias)
	km, err := simulate.KmerModelFromReadModel(model, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodReptile, MethodRedeem} {
		// The in-memory reference must use the same parameters the stream
		// derives; Reptile's defaults are data-dependent (Qc), so fix them
		// from the whole read set here and pass them explicitly.
		opts := CorrectOptions{
			Method:      m,
			GenomeLen:   len(ds.Genome),
			Workers:     2,
			RedeemK:     11,
			RedeemModel: km,
		}
		if m == MethodReptile {
			opts.Reptile = reptile.DefaultParams(reads, len(ds.Genome))
		}
		want, _, err := Correct(reads, opts)
		if err != nil {
			t.Fatalf("%s: in-memory: %v", m, err)
		}

		for _, budget := range []int64{0, 1 << 15} {
			opts.MemoryBudget = budget
			opts.Reptile.MemoryBudget = 0 // let opts.MemoryBudget thread through
			var out bytes.Buffer
			rep, err := CorrectStream(memOpener{blob}.open, &out, opts)
			if err != nil {
				t.Fatalf("%s budget=%d: %v", m, budget, err)
			}
			if rep.Reads != len(reads) {
				t.Errorf("%s budget=%d: processed %d reads want %d", m, budget, rep.Reads, len(reads))
			}
			got, err := fastq.NewReader(bytes.NewReader(out.Bytes())).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s budget=%d: %d reads out, want %d", m, budget, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID || !bytes.Equal(got[i].Seq, want[i].Seq) {
					t.Fatalf("%s budget=%d: read %d diverges from in-memory path:\n  got  %s\n  want %s",
						m, budget, i, got[i].Seq, want[i].Seq)
				}
			}
		}
	}
}

// TestCorrectStreamSpectrumReuse is the persistence acceptance property:
// a run that saves its spectrum, followed by a run that loads it, must
// produce byte-identical corrected output to a fresh-build run over the
// same input — for both streaming methods — and the save/load cycle must
// also agree with the in-memory Correct path under SpectrumPath.
func TestCorrectStreamSpectrumReuse(t *testing.T) {
	ds := smallDataset(t, 23)
	reads := simulate.Reads(ds.Sim)
	blob := fastqBlob(t, ds)
	model := simulate.IlluminaModel(36, 0.008, simulate.EcoliBias)
	km, err := simulate.KmerModelFromReadModel(model, 11)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, m := range []Method{MethodReptile, MethodRedeem} {
		opts := CorrectOptions{
			Method:      m,
			GenomeLen:   len(ds.Genome),
			Workers:     2,
			RedeemK:     11,
			RedeemModel: km,
		}
		if m == MethodReptile {
			opts.Reptile = reptile.DefaultParams(reads, len(ds.Genome))
		}

		// Fresh build, saving the spectrum.
		opts.SaveSpectrumPath = filepath.Join(dir, string(m)+".kspc")
		var fresh bytes.Buffer
		if _, err := CorrectStream(memOpener{blob}.open, &fresh, opts); err != nil {
			t.Fatalf("%s: fresh run: %v", m, err)
		}

		// Reuse run: load the saved spectrum, build nothing.
		opts.SpectrumPath = opts.SaveSpectrumPath
		opts.SaveSpectrumPath = ""
		var reused bytes.Buffer
		if _, err := CorrectStream(memOpener{blob}.open, &reused, opts); err != nil {
			t.Fatalf("%s: reuse run: %v", m, err)
		}
		if !bytes.Equal(fresh.Bytes(), reused.Bytes()) {
			t.Errorf("%s: -load-spectrum output diverges from fresh build", m)
		}

		// The in-memory facade under the same loaded spectrum agrees too.
		want, _, err := Correct(reads, opts)
		if err != nil {
			t.Fatalf("%s: in-memory reuse: %v", m, err)
		}
		var buf bytes.Buffer
		if err := fastq.Write(&buf, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), reused.Bytes()) {
			t.Errorf("%s: in-memory SpectrumPath output diverges from streamed", m)
		}
	}
}

// TestCorrectSpectrumMismatch: a loaded spectrum disagreeing with an
// explicitly requested k is a clean error, and SHREC rejects spectrum
// options outright.
func TestCorrectSpectrumMismatch(t *testing.T) {
	ds := smallDataset(t, 24)
	reads := simulate.Reads(ds.Sim)
	spec, err := kspectrum.Build(reads, 13, true)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "k13.kspc")
	if err := kspectrum.WriteSpectrumFile(path, spec); err != nil {
		t.Fatal(err)
	}

	// Explicit k disagreeing with the stored k.
	p := reptile.DefaultParams(reads, len(ds.Genome))
	p.K = 12
	if _, _, err := Correct(reads, CorrectOptions{
		Method: MethodReptile, Reptile: p, SpectrumPath: path, Workers: 1,
	}); err == nil {
		t.Error("reptile: explicit k mismatch accepted")
	}
	if _, _, err := Correct(reads, CorrectOptions{
		Method: MethodRedeem, RedeemK: 11, SpectrumPath: path, Workers: 1,
	}); err == nil {
		t.Error("redeem: explicit k mismatch accepted")
	}
	// Unset k adopts the stored k instead.
	if _, _, err := Correct(reads, CorrectOptions{
		Method: MethodRedeem, SpectrumPath: path, Workers: 1,
	}); err != nil {
		t.Errorf("redeem: adopting stored k failed: %v", err)
	}
	// SHREC has no spectrum to load or save.
	if _, _, err := Correct(reads, CorrectOptions{
		Method: MethodShrec, SpectrumPath: path, Workers: 1,
	}); err == nil {
		t.Error("shrec: spectrum option accepted")
	}
}

// TestCorrectStreamShrecFallback covers the buffering fallback for methods
// without a streaming path.
func TestCorrectStreamShrecFallback(t *testing.T) {
	ds := smallDataset(t, 22)
	blob := fastqBlob(t, ds)
	var out bytes.Buffer
	rep, err := CorrectStream(memOpener{blob}.open, &out, CorrectOptions{
		Method: MethodShrec, GenomeLen: len(ds.Genome), Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads != len(ds.Sim) {
		t.Errorf("processed %d reads want %d", rep.Reads, len(ds.Sim))
	}
	got, err := fastq.NewReader(bytes.NewReader(out.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Sim) {
		t.Errorf("%d reads out, want %d", len(got), len(ds.Sim))
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"123", 123, true},
		{"64B", 64, true},
		{"8K", 8 << 10, true},
		{"8KB", 8 << 10, true},
		{"8KiB", 8 << 10, true},
		{"64MB", 64 << 20, true},
		{" 2 GiB ", 2 << 30, true},
		{"1tb", 1 << 40, true},
		// Suffix-of-a-suffix cases: every "<X>iB"/"<X>B" form must bind to
		// the longest suffix, never stop early at the trailing "B" (the
		// nondeterminism the ordered byteSuffixes slice exists to prevent).
		{"3MiB", 3 << 20, true},
		{"7gib", 7 << 30, true},
		{"4TiB", 4 << 40, true},
		{"5TB", 5 << 40, true},
		{"10m", 10 << 20, true},
		{"1B", 1, true},
		{"", 0, false},
		{"MB", 0, false},
		{"KiB", 0, false},
		{"B", 0, false},
		{"-1MB", 0, false},
		{"12XB", 0, false},
		{"5IB", 0, false},
		{"9999999999G", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseByteSize(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseByteSize(%q) error = %v, ok want %v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseByteSize(%q) = %d want %d", tc.in, got, tc.want)
		}
	}
}
