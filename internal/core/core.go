// Package core is the high-level facade over the dissertation's three
// systems: Reptile (Chapter 2) and REDEEM (Chapter 3) for short-read error
// correction, and CLOSET (Chapter 4) for metagenomic read clustering. It
// wires the substrates together behind task-shaped entry points so that
// command-line tools, examples and benchmarks share one code path.
package core

import (
	"fmt"
	"time"

	"repro/internal/closet"
	"repro/internal/eval"
	"repro/internal/kspectrum"
	"repro/internal/mapper"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

// Method selects an error correction algorithm.
type Method string

// Supported correction methods.
const (
	MethodReptile Method = "reptile"
	MethodRedeem  Method = "redeem"
	MethodShrec   Method = "shrec"
)

// CorrectOptions configures Correct.
type CorrectOptions struct {
	Method Method
	// GenomeLen is the (estimated) genome length used for parameter
	// selection; 0 means unknown.
	GenomeLen int
	// Workers bounds parallelism; <= 0 uses all cores (except SHREC's
	// trie build, which stays serial unless Workers is explicitly > 0).
	Workers int
	// Shards is the kmer-space partition count of the sharded spectrum
	// engine (Reptile and REDEEM); <= 0 derives it from the worker count.
	Shards int
	// MemoryBudget, when positive, bounds the resident size of the
	// k-spectrum accumulators (Reptile and REDEEM) by spilling oversized
	// shards to sorted temp-file runs — the out-of-core engine of
	// kspectrum.StreamBuilder. 0 keeps everything in memory.
	MemoryBudget int64

	// SpectrumPath, when set, loads a prebuilt k-spectrum from the
	// persistent store (kspectrum.ReadSpectrumFile) instead of counting
	// the input: Reptile skips Phase 1's kmer accumulation (tiles are
	// still counted) and REDEEM skips its counting pass entirely. The
	// stored k is authoritative — a zero method k adopts it, an explicit
	// disagreeing k is an error. Reptile and REDEEM only; SHREC has no
	// spectrum to load.
	SpectrumPath string
	// SaveSpectrumPath, when set, writes the k-spectrum the run built
	// (or loaded) to the persistent store after correction, so later
	// invocations can reuse it via SpectrumPath.
	SaveSpectrumPath string

	// Reptile overrides; zero values take data-derived defaults.
	Reptile reptile.Params

	// RedeemK is REDEEM's kmer length (default 11).
	RedeemK int
	// RedeemModel supplies the kmer error model; nil falls back to a
	// uniform model at RedeemErrorRate.
	RedeemModel *simulate.KmerErrorModel
	// RedeemErrorRate parameterizes the fallback uniform model.
	RedeemErrorRate float64

	// Shrec overrides; zero value takes DefaultConfig(GenomeLen).
	Shrec shrec.Config
}

// CorrectReport describes a correction run.
type CorrectReport struct {
	Method   Method
	Duration time.Duration
	// Threshold is REDEEM's inferred kmer threshold (0 for other methods).
	Threshold float64
	// Corrections is SHREC's applied-change count (0 for other methods).
	Corrections int
	// Reads and Changed tally the streaming pipeline's throughput: reads
	// processed and reads whose sequence was altered (both 0 for the
	// in-memory Correct, whose caller holds the slices).
	Reads   int
	Changed int
}

// LoadSpectrumForK loads a persisted spectrum and enforces the single
// k-authority rule shared by the facade and the CLIs: the stored k is
// authoritative, so an explicit requested k (non-zero) that disagrees
// with it is an error, while explicitK == 0 defers to the store (the
// caller then adopts spec.K). Keeping the rule here means cmd/reptile,
// cmd/redeem and the CorrectOptions paths cannot drift apart.
func LoadSpectrumForK(path string, explicitK int) (*kspectrum.Spectrum, error) {
	spec, err := kspectrum.ReadSpectrumFile(path)
	if err != nil {
		return nil, err
	}
	if explicitK != 0 && explicitK != spec.K {
		return nil, fmt.Errorf("core: requested k=%d disagrees with %s (stored k=%d)", explicitK, path, spec.K)
	}
	return spec, nil
}

// loadSpectrumOption resolves opts.SpectrumPath: nil when unset, the
// loaded and k-validated spectrum otherwise.
func loadSpectrumOption(opts CorrectOptions, explicitK int) (*kspectrum.Spectrum, error) {
	if opts.SpectrumPath == "" {
		return nil, nil
	}
	return LoadSpectrumForK(opts.SpectrumPath, explicitK)
}

// saveSpectrumOption persists spec when opts.SaveSpectrumPath is set.
func saveSpectrumOption(opts CorrectOptions, spec *kspectrum.Spectrum) error {
	if opts.SaveSpectrumPath == "" {
		return nil
	}
	return kspectrum.WriteSpectrumFile(opts.SaveSpectrumPath, spec)
}

// reptileParams finalizes the Reptile parameter block shared by Correct
// and CorrectStream: data-derived defaults from sample when K is unset,
// the facade-level build/budget fallbacks, and the preloaded spectrum
// (whose stored k overrides a data-derived default but conflicts with an
// explicit one — reptile.Params.validate reports that).
func reptileParams(sample []seq.Read, opts CorrectOptions, spec *kspectrum.Spectrum) reptile.Params {
	p := opts.Reptile
	explicitK := p.K != 0
	if !explicitK {
		build := p.Build // survives the defaults swap
		p = reptile.DefaultParams(sample, opts.GenomeLen)
		p.Build = build
	}
	if spec != nil {
		if !explicitK && p.K != spec.K {
			p.K = spec.K
			p.C = min(p.K, p.D+4)
		}
		p.Spectrum = spec
	}
	if p.Build == (kspectrum.BuildOptions{}) {
		p.Build = kspectrum.BuildOptions{Workers: opts.Workers, Shards: opts.Shards}
	}
	if p.MemoryBudget == 0 {
		p.MemoryBudget = opts.MemoryBudget
	}
	return p
}

// redeemConfig finalizes the REDEEM configuration and error model shared
// by Correct and CorrectStream. A preloaded spectrum's k wins over the
// package default when RedeemK is unset; an explicit disagreeing RedeemK
// is reported by redeem's validation.
func redeemConfig(opts CorrectOptions, spec *kspectrum.Spectrum) (redeem.Config, *simulate.KmerErrorModel) {
	k := opts.RedeemK
	if k == 0 {
		if spec != nil {
			k = spec.K
		} else {
			k = 11
		}
	}
	model := opts.RedeemModel
	if model == nil {
		rate := opts.RedeemErrorRate
		if rate == 0 {
			rate = 0.01
		}
		model = simulate.NewUniformKmerModel(k, rate)
	}
	cfg := redeem.DefaultConfig(k)
	cfg.Spectrum = spec
	cfg.Build = kspectrum.BuildOptions{Workers: opts.Workers, Shards: opts.Shards}
	cfg.MemoryBudget = opts.MemoryBudget
	return cfg, model
}

// Correct runs the selected error corrector over the reads and returns
// corrected copies.
func Correct(reads []seq.Read, opts CorrectOptions) ([]seq.Read, *CorrectReport, error) {
	start := time.Now()
	rep := &CorrectReport{Method: opts.Method}
	switch opts.Method {
	case MethodReptile, "":
		spec, err := loadSpectrumOption(opts, opts.Reptile.K)
		if err != nil {
			return nil, nil, err
		}
		p := reptileParams(reads, opts, spec)
		c, err := reptile.New(reads, p)
		if err != nil {
			return nil, nil, err
		}
		out := c.CorrectAll(reads, opts.Workers)
		if err := saveSpectrumOption(opts, c.Spec); err != nil {
			return nil, nil, err
		}
		rep.Method = MethodReptile
		rep.Duration = time.Since(start)
		return out, rep, nil
	case MethodRedeem:
		spec, err := loadSpectrumOption(opts, opts.RedeemK)
		if err != nil {
			return nil, nil, err
		}
		cfg, model := redeemConfig(opts, spec)
		m, err := redeem.New(reads, model, cfg)
		if err != nil {
			return nil, nil, err
		}
		m.Run()
		thr, _, err := m.InferThreshold(1, 3)
		if err != nil {
			return nil, nil, err
		}
		rep.Threshold = thr
		out := m.CorrectReads(reads, thr, opts.Workers)
		if err := saveSpectrumOption(opts, m.Spec); err != nil {
			return nil, nil, err
		}
		rep.Duration = time.Since(start)
		return out, rep, nil
	case MethodShrec:
		if opts.SpectrumPath != "" || opts.SaveSpectrumPath != "" {
			return nil, nil, fmt.Errorf("core: method %q has no k-spectrum to load or save", MethodShrec)
		}
		cfg := opts.Shrec
		if cfg.FromLevel == 0 {
			workers := cfg.Workers // survives the defaults swap
			cfg = shrec.DefaultConfig(opts.GenomeLen)
			cfg.Workers = workers
		}
		// SHREC's parallel trie build is opt-in (see shrec.Config.Workers):
		// it changes the baseline's published memory profile, so only an
		// explicit positive worker request enables it — the all-cores
		// meaning of opts.Workers <= 0 deliberately does not apply here.
		if cfg.Workers == 0 && opts.Workers > 0 {
			cfg.Workers = opts.Workers
		}
		out, st, err := shrec.Correct(reads, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep.Corrections = st.Corrections
		rep.Duration = time.Since(start)
		return out, rep, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown correction method %q", opts.Method)
	}
}

// Cluster runs the CLOSET pipeline with the given configuration.
func Cluster(reads []seq.Read, cfg closet.Config) (*closet.Result, error) {
	return closet.Run(reads, cfg)
}

// EvaluateAgainstTruth scores corrected reads against simulation truth.
func EvaluateAgainstTruth(sim []simulate.SimRead, corrected []seq.Read) (eval.CorrectionStats, error) {
	return eval.EvaluateCorrection(sim, corrected)
}

// EvaluateByMapping scores reads against a reference genome through the
// RMAP-style mapper when no simulation truth exists: it reports the mapping
// summary before and after correction, the paper's §2.4 protocol.
func EvaluateByMapping(genome []byte, before, after []seq.Read, maxMismatches int) (pre, post mapper.Summary, err error) {
	idx, err := mapper.NewIndex(genome, 12)
	if err != nil {
		return pre, post, err
	}
	return idx.MapAll(before, maxMismatches), idx.MapAll(after, maxMismatches), nil
}
