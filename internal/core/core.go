// Package core is the high-level facade over the dissertation's three
// systems: Reptile (Chapter 2) and REDEEM (Chapter 3) for short-read error
// correction, and CLOSET (Chapter 4) for metagenomic read clustering. Its
// correction entry points are thin, behavior-preserving shims over the
// pluggable engine registry (see repro/internal/engine): CorrectOptions is
// translated into an engine.Run plus engine-specific functional options and
// dispatched by name. New code should use the engine package directly; the
// facade remains so existing callers (CLIs, examples, benchmarks) keep one
// stable surface.
package core

import (
	"context"
	"time"

	"repro/internal/closet"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/kspectrum"
	"repro/internal/mapper"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

// Method selects an error correction algorithm. It is the registry name
// of an engine; the zero value selects Reptile.
type Method string

// Supported correction methods.
const (
	MethodReptile Method = reptile.EngineName
	MethodRedeem  Method = redeem.EngineName
	MethodShrec   Method = shrec.EngineName
)

// CorrectOptions configures Correct.
//
// It is the historical field-jungle configuration, kept as a stable
// shim for existing callers (the formal deprecation marker is withheld
// so they build clean). New code should build an engine.Run from
// functional options (engine.WithK, engine.WithWorkers, reptile.WithD,
// ...) and call the engine directly; see DESIGN.md §7 for the field →
// option migration table.
type CorrectOptions struct {
	Method Method
	// GenomeLen is the (estimated) genome length used for parameter
	// selection; 0 means unknown.
	GenomeLen int
	// Workers bounds parallelism; <= 0 uses all cores (except SHREC's
	// trie build, which stays serial unless Workers is explicitly > 0).
	Workers int
	// Shards is the kmer-space partition count of the sharded spectrum
	// engine (Reptile and REDEEM); <= 0 derives it from the worker count.
	Shards int
	// MemoryBudget, when positive, bounds the resident size of the
	// k-spectrum accumulators (Reptile and REDEEM) by spilling oversized
	// shards to sorted temp-file runs — the out-of-core engine of
	// kspectrum.StreamBuilder. 0 keeps everything in memory.
	MemoryBudget int64

	// SpectrumPath, when set, loads a prebuilt k-spectrum from the
	// persistent store (kspectrum.ReadSpectrumFile) instead of counting
	// the input: Reptile skips Phase 1's kmer accumulation (tiles are
	// still counted) and REDEEM skips its counting pass entirely. The
	// stored k is authoritative — a zero method k adopts it, an explicit
	// disagreeing k is an error. Reptile and REDEEM only; SHREC has no
	// spectrum to load.
	SpectrumPath string
	// SaveSpectrumPath, when set, writes the k-spectrum the run built
	// (or loaded) to the persistent store after correction, so later
	// invocations can reuse it via SpectrumPath.
	SaveSpectrumPath string

	// Reptile overrides; zero values take data-derived defaults.
	Reptile reptile.Params

	// RedeemK is REDEEM's kmer length (default 11).
	RedeemK int
	// RedeemModel supplies the kmer error model; nil falls back to a
	// uniform model at RedeemErrorRate.
	RedeemModel *simulate.KmerErrorModel
	// RedeemErrorRate parameterizes the fallback uniform model.
	RedeemErrorRate float64

	// Shrec overrides; zero value takes DefaultConfig(GenomeLen).
	Shrec shrec.Config
}

// CorrectReport describes a correction run.
type CorrectReport struct {
	Method   Method
	Duration time.Duration
	// Threshold is REDEEM's inferred kmer threshold (0 for other methods).
	Threshold float64
	// Corrections is SHREC's applied-change count (0 for other methods).
	Corrections int
	// Reads and Changed tally the streaming pipeline's throughput: reads
	// processed and reads whose sequence was altered (both 0 for the
	// in-memory Correct, whose caller holds the slices).
	Reads   int
	Changed int
}

// LoadSpectrumForK loads a persisted spectrum under the single
// k-authority rule; see engine.LoadSpectrumForK, which now owns it.
// The load is memory-mapped (the engine default); callers needing an
// eagerly-validated copy call the engine package directly. New code
// should call the engine package directly.
func LoadSpectrumForK(path string, explicitK int) (*kspectrum.Spectrum, error) {
	return engine.LoadSpectrumForK(path, explicitK, engine.SpectrumMapped)
}

// engineRun translates the options into a registry lookup plus an
// engine.Run: the cross-engine fields become run fields, the
// method-specific blocks become that engine's functional options. An
// unknown method yields engine.ErrUnknownEngine listing the registered
// names.
func (opts CorrectOptions) engineRun() (engine.Engine, *engine.Run, error) {
	name := string(opts.Method)
	if name == "" {
		name = string(MethodReptile)
	}
	eng, err := engine.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	o := []engine.Option{
		engine.WithGenomeLen(opts.GenomeLen),
		engine.WithWorkers(opts.Workers),
		engine.WithShards(opts.Shards),
		engine.WithMemoryBudget(opts.MemoryBudget),
		engine.WithSpectrumPath(opts.SpectrumPath),
		engine.WithSaveSpectrumPath(opts.SaveSpectrumPath),
	}
	switch name {
	case reptile.EngineName:
		o = append(o, reptile.WithParams(opts.Reptile))
	case redeem.EngineName:
		o = append(o,
			engine.WithK(opts.RedeemK),
			redeem.WithModel(opts.RedeemModel),
			redeem.WithErrorRate(opts.RedeemErrorRate),
		)
	case shrec.EngineName:
		o = append(o, shrec.WithConfig(opts.Shrec))
	}
	return eng, engine.NewRun(o...), nil
}

// report maps an engine result onto the facade's report shape.
func report(res *engine.Result, start time.Time) *CorrectReport {
	return &CorrectReport{
		Method:      Method(res.Engine),
		Duration:    time.Since(start),
		Threshold:   res.Threshold,
		Corrections: res.Corrections,
		Reads:       res.Reads,
		Changed:     res.Changed,
	}
}

// Correct runs the selected error corrector over the reads and returns
// corrected copies. It is a shim over the engine registry: the selected
// engine resolves the options as the historical facade did, so output
// stays byte-identical — with one deliberate exception: SHREC now
// honors explicitly-set Alpha/Iterations alongside a zero FromLevel
// instead of silently discarding them in the defaults swap.
func Correct(reads []seq.Read, opts CorrectOptions) ([]seq.Read, *CorrectReport, error) {
	start := time.Now()
	eng, run, err := opts.engineRun()
	if err != nil {
		return nil, nil, err
	}
	out, res, err := eng.Correct(context.Background(), reads, run)
	if err != nil {
		return nil, nil, err
	}
	return out, report(res, start), nil
}

// Cluster runs the CLOSET pipeline with the given configuration.
func Cluster(reads []seq.Read, cfg closet.Config) (*closet.Result, error) {
	return closet.Run(reads, cfg)
}

// EvaluateAgainstTruth scores corrected reads against simulation truth.
func EvaluateAgainstTruth(sim []simulate.SimRead, corrected []seq.Read) (eval.CorrectionStats, error) {
	return eval.EvaluateCorrection(sim, corrected)
}

// EvaluateByMapping scores reads against a reference genome through the
// RMAP-style mapper when no simulation truth exists: it reports the mapping
// summary before and after correction, the paper's §2.4 protocol.
func EvaluateByMapping(genome []byte, before, after []seq.Read, maxMismatches int) (pre, post mapper.Summary, err error) {
	idx, err := mapper.NewIndex(genome, 12)
	if err != nil {
		return pre, post, err
	}
	return idx.MapAll(before, maxMismatches), idx.MapAll(after, maxMismatches), nil
}
