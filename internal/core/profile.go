package core

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling into cpuPath and arranges a heap
// profile into memPath, either path optional (""). It returns a stop
// function that must run before exit (defer it): stop ends the CPU
// profile and writes the heap snapshot after a final GC. The CLIs share
// it behind their -cpuprofile/-memprofile flags so perf work can profile
// the real binaries rather than only the benchmark harness.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("core: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("core: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("core: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("core: mem profile: %w", err)
			}
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("core: mem profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("core: mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
