package core

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/fastq"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
)

// CorrectStream runs the streaming FASTQ→correct→FASTQ pipeline: reads are
// consumed in chunks from fresh streams produced by open (the source must be
// re-openable — the correctors take two passes), corrected with the selected
// method, and written incrementally to out. With opts.MemoryBudget set, the
// k-spectrum accumulators spill to disk, so peak resident memory is bounded
// regardless of the input size (Reptile and REDEEM). Methods without a
// streaming path (SHREC) fall back to buffering the whole input in memory.
//
// For MethodReptile with zero Params, the data-derived defaults (Qc, K) are
// estimated from the first chunk rather than the full read set.
func CorrectStream(open func() (io.ReadCloser, error), out io.Writer, opts CorrectOptions) (*CorrectReport, error) {
	start := time.Now()
	rep := &CorrectReport{Method: opts.Method}
	w := fastq.NewWriter(out)
	emit := func(orig, corrected []seq.Read) error {
		rep.Reads += len(orig)
		for i := range orig {
			if !bytes.Equal(orig[i].Seq, corrected[i].Seq) {
				rep.Changed++
			}
		}
		return w.WriteChunk(corrected)
	}
	switch opts.Method {
	case MethodReptile, "":
		rep.Method = MethodReptile
		spec, err := loadSpectrumOption(opts, opts.Reptile.K)
		if err != nil {
			return nil, err
		}
		var sample []seq.Read
		if opts.Reptile.K == 0 {
			// Data-dependent defaults (Qc, default k) come from a bounded
			// leading sample of a fresh stream.
			if sample, err = firstChunk(open); err != nil {
				return nil, err
			}
		}
		p := reptileParams(sample, opts, spec)
		c, err := reptile.CorrectStream(chunkSource(open), emit, p, opts.Workers)
		if err != nil {
			return nil, err
		}
		if err := saveSpectrumOption(opts, c.Spec); err != nil {
			return nil, err
		}
	case MethodRedeem:
		spec, err := loadSpectrumOption(opts, opts.RedeemK)
		if err != nil {
			return nil, err
		}
		cfg, model := redeemConfig(opts, spec)
		m, thr, err := redeem.CorrectStream(chunkSource(open), emit, model, cfg, opts.Workers)
		if err != nil {
			return nil, err
		}
		if err := saveSpectrumOption(opts, m.Spec); err != nil {
			return nil, err
		}
		rep.Threshold = thr
	default:
		// No streaming path (SHREC and unknown methods): buffer the input
		// and delegate, preserving Correct's semantics and errors — but
		// reject incompatible spectrum options before the I/O Correct
		// would only fail after.
		if opts.SpectrumPath != "" || opts.SaveSpectrumPath != "" {
			return nil, fmt.Errorf("core: method %q has no k-spectrum to load or save", opts.Method)
		}
		reads, err := readAllStream(open)
		if err != nil {
			return nil, err
		}
		corrected, inner, err := Correct(reads, opts)
		if err != nil {
			return nil, err
		}
		rep.Corrections = inner.Corrections
		if err := emit(reads, corrected); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	rep.Duration = time.Since(start)
	return rep, nil
}

// chunkSource adapts the byte-stream opener to the correctors' shared
// seq.ChunkSource contract.
func chunkSource(open func() (io.ReadCloser, error)) func() (seq.ChunkSource, error) {
	return func() (seq.ChunkSource, error) {
		rc, err := open()
		if err != nil {
			return nil, err
		}
		return fastq.NewChunkReader(rc, 0), nil
	}
}

// paramSampleReads bounds the leading-read sample used to derive Reptile's
// data-dependent parameters (the Qc quality quantile): large enough to
// smooth per-tile quality drift, small enough to stay a footnote in the
// memory budget.
const paramSampleReads = 20000

// firstChunk samples the leading reads of a fresh stream for parameter
// derivation.
func firstChunk(open func() (io.ReadCloser, error)) ([]seq.Read, error) {
	var sample []seq.Read
	err := seq.StreamChunks(chunkSource(open), func(chunk []seq.Read) error {
		sample = append(sample, chunk...)
		if len(sample) >= paramSampleReads {
			return errSampleFull
		}
		return nil
	})
	if err != nil && err != errSampleFull {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("core: empty input stream")
	}
	return sample, nil
}

// errSampleFull is firstChunk's internal early-exit sentinel.
var errSampleFull = fmt.Errorf("core: sample full")

// readAllStream drains a fresh stream into memory (the non-streaming
// fallback).
func readAllStream(open func() (io.ReadCloser, error)) ([]seq.Read, error) {
	var reads []seq.Read
	err := seq.StreamChunks(chunkSource(open), func(chunk []seq.Read) error {
		reads = append(reads, chunk...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reads, nil
}

// byteSuffixes maps size suffixes to their power-of-two shifts, ordered
// longest-first. Matching must walk this slice in order: with suffixes
// that are suffixes of one another ("MIB" ends in "B", "KB" ends in "B"),
// iterating an unordered container (the original implementation ranged
// over a Go map) parses correctly only while the key set happens to be
// suffix-free — one added key away from a nondeterministic result.
var byteSuffixes = []struct {
	suffix string
	shift  int
}{
	{"KIB", 10}, {"MIB", 20}, {"GIB", 30}, {"TIB", 40},
	{"KB", 10}, {"MB", 20}, {"GB", 30}, {"TB", 40},
	{"K", 10}, {"M", 20}, {"G", 30}, {"T", 40},
}

// ParseByteSize parses a human-readable byte count: a plain integer, or one
// with a B/KB/MB/GB/TB suffix (KiB/MiB/... also accepted; both forms are
// 1024-based). Case and surrounding space are ignored. "0" disables a
// budget.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("core: empty byte size")
	}
	shift := 0
	for _, sfx := range byteSuffixes {
		if strings.HasSuffix(t, sfx.suffix) && len(t) > len(sfx.suffix) {
			t, shift = strings.TrimSpace(strings.TrimSuffix(t, sfx.suffix)), sfx.shift
			break
		}
	}
	if shift == 0 {
		t = strings.TrimSuffix(t, "B")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("core: negative byte size %q", s)
	}
	if shift > 0 && v > (1<<62)>>shift {
		return 0, fmt.Errorf("core: byte size %q overflows", s)
	}
	return v << shift, nil
}
