package core

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/fastq"
	"repro/internal/seq"
)

// CorrectStream runs the streaming FASTQ→correct→FASTQ pipeline: reads are
// consumed in chunks from fresh streams produced by open (the source must be
// re-openable — the correctors take two passes), corrected with the selected
// method, and written incrementally to out. With opts.MemoryBudget set, the
// k-spectrum accumulators spill to disk, so peak resident memory is bounded
// regardless of the input size (Reptile and REDEEM). Methods without a
// streaming path (SHREC) fall back to buffering the whole input in memory.
//
// For MethodReptile with zero Params, the data-derived defaults (Qc, K) are
// estimated from a bounded leading sample rather than the full read set.
//
// It is a shim over the engine registry's canonical Source/Sink streaming
// contract; output stays byte-identical to the historical pipeline.
func CorrectStream(open func() (io.ReadCloser, error), out io.Writer, opts CorrectOptions) (*CorrectReport, error) {
	start := time.Now()
	eng, run, err := opts.engineRun()
	if err != nil {
		return nil, err
	}
	w := fastq.NewWriter(out)
	sink := engine.SinkFunc(func(orig, corrected []seq.Read) error {
		return w.WriteChunk(corrected)
	})
	res, err := eng.CorrectStream(context.Background(), chunkSource(open), sink, run)
	if err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return report(res, start), nil
}

// chunkSource adapts the byte-stream opener to the engines' shared
// chunked Source contract.
func chunkSource(open func() (io.ReadCloser, error)) engine.SourceOpener {
	return func() (engine.Source, error) {
		rc, err := open()
		if err != nil {
			return nil, err
		}
		return fastq.NewChunkReader(rc, 0), nil
	}
}

// byteSuffixes maps size suffixes to their power-of-two shifts, ordered
// longest-first. Matching must walk this slice in order: with suffixes
// that are suffixes of one another ("MIB" ends in "B", "KB" ends in "B"),
// iterating an unordered container (the original implementation ranged
// over a Go map) parses correctly only while the key set happens to be
// suffix-free — one added key away from a nondeterministic result.
var byteSuffixes = []struct {
	suffix string
	shift  int
}{
	{"KIB", 10}, {"MIB", 20}, {"GIB", 30}, {"TIB", 40},
	{"KB", 10}, {"MB", 20}, {"GB", 30}, {"TB", 40},
	{"K", 10}, {"M", 20}, {"G", 30}, {"T", 40},
}

// ParseByteSize parses a human-readable byte count: a plain integer, or one
// with a B/KB/MB/GB/TB suffix (KiB/MiB/... also accepted; both forms are
// 1024-based). Case and surrounding space are ignored. "0" disables a
// budget.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("core: empty byte size")
	}
	shift := 0
	for _, sfx := range byteSuffixes {
		if strings.HasSuffix(t, sfx.suffix) && len(t) > len(sfx.suffix) {
			t, shift = strings.TrimSpace(strings.TrimSuffix(t, sfx.suffix)), sfx.shift
			break
		}
	}
	if shift == 0 {
		t = strings.TrimSuffix(t, "B")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("core: negative byte size %q", s)
	}
	if shift > 0 && v > (1<<62)>>shift {
		return 0, fmt.Errorf("core: byte size %q overflows", s)
	}
	return v << shift, nil
}
