package seq

import "io"

// ChunkSource yields successive chunks of reads, returning (nil, io.EOF)
// when exhausted. fastq.ChunkReader satisfies it; the interface lives here —
// the package every pipeline stage already shares — so the streaming
// correctors stay I/O-format agnostic without duplicating the contract.
type ChunkSource interface {
	Next() ([]Read, error)
	Close() error
}

// StreamChunks drives one pass over a freshly opened source: every chunk is
// handed to fn, and the source is closed on all return paths.
func StreamChunks(open func() (ChunkSource, error), fn func([]Read) error) error {
	src, err := open()
	if err != nil {
		return err
	}
	defer src.Close()
	for {
		chunk, err := src.Next()
		if err == io.EOF {
			return src.Close()
		}
		if err != nil {
			return err
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
}
