package seq

import (
	"context"
	"io"
)

// ChunkSource yields successive chunks of reads, returning (nil, io.EOF)
// when exhausted. fastq.ChunkReader satisfies it; the interface lives here —
// the package every pipeline stage already shares — so the streaming
// correctors stay I/O-format agnostic without duplicating the contract.
type ChunkSource interface {
	Next() ([]Read, error)
	Close() error
}

// SourceOpener opens a fresh pass over a chunked input; the streaming
// correctors take two passes, so sources must be re-openable.
type SourceOpener func() (ChunkSource, error)

// StreamChunks drives one pass over a freshly opened source: every chunk is
// handed to fn, and the source is closed on all return paths.
func StreamChunks(open SourceOpener, fn func([]Read) error) error {
	return StreamChunksCtx(context.Background(), open, fn)
}

// StreamChunksCtx is StreamChunks under a context: ctx is checked before
// every chunk, so a cancelled context stops the pass at the next chunk
// boundary with ctx.Err(). The source is closed on all return paths.
func StreamChunksCtx(ctx context.Context, open SourceOpener, fn func([]Read) error) error {
	src, err := open()
	if err != nil {
		return err
	}
	defer src.Close()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk, err := src.Next()
		if err == io.EOF {
			return src.Close()
		}
		if err != nil {
			return err
		}
		if err := fn(chunk); err != nil {
			return err
		}
	}
}
