// Package seq provides the DNA sequence primitives shared by every other
// package in this repository: the 4-letter base alphabet, 2-bit packed kmers,
// reverse complements, Hamming distance, and the Read type carrying bases and
// Phred quality scores.
//
// Kmers up to 32 bases are packed two bits per base into a uint64 (A=0, C=1,
// G=2, T=3), with the first base of the kmer in the most significant occupied
// bits so that packed kmers sort in the same order as their string forms.
package seq

import (
	"fmt"
	"strings"
)

// Base is a 2-bit encoded nucleotide: A=0, C=1, G=2, T=3.
type Base byte

// Canonical base codes.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// MaxK is the largest kmer length representable in a packed Kmer.
const MaxK = 32

var baseChars = [4]byte{'A', 'C', 'G', 'T'}

// baseCodes maps ASCII to a base code; 0xFF marks non-ACGT characters
// (including the ambiguity character 'N').
var baseCodes [256]byte

func init() {
	for i := range baseCodes {
		baseCodes[i] = 0xFF
	}
	for code, ch := range baseChars {
		baseCodes[ch] = byte(code)
		baseCodes[ch+'a'-'A'] = byte(code)
	}
}

// BaseFromChar converts an ASCII nucleotide to its 2-bit code. The second
// return value is false for any character outside ACGT (case-insensitive),
// notably the ambiguity code 'N'.
func BaseFromChar(ch byte) (Base, bool) {
	code := baseCodes[ch]
	if code == 0xFF {
		return 0, false
	}
	return Base(code), true
}

// Char returns the upper-case ASCII letter for b.
func (b Base) Char() byte { return baseChars[b&3] }

// Complement returns the Watson-Crick complement of b.
func (b Base) Complement() Base { return b ^ 3 }

// IsAmbiguous reports whether ch is not one of ACGT (case-insensitive).
func IsAmbiguous(ch byte) bool { return baseCodes[ch] == 0xFF }

// Kmer is a 2-bit packed DNA word of up to MaxK bases. The kmer length is
// not stored in the value; callers carry it alongside (all structures in
// this repository use a single k per instance).
type Kmer uint64

// Pack encodes s[0:k] into a Kmer. It returns ok=false if the window
// contains any non-ACGT character or the geometry is invalid (k outside
// [1, min(len(s), MaxK)] — found by FuzzPackUnpack: a non-positive k used
// to pack successfully into the empty kmer).
func Pack(s []byte, k int) (Kmer, bool) {
	if k < 1 || k > len(s) || k > MaxK {
		return 0, false
	}
	var km Kmer
	for i := 0; i < k; i++ {
		code := baseCodes[s[i]]
		if code == 0xFF {
			return 0, false
		}
		km = km<<2 | Kmer(code)
	}
	return km, true
}

// PackString is Pack for string input, packing the whole string.
func PackString(s string) (Kmer, bool) { return Pack([]byte(s), len(s)) }

// MustPack packs s entirely and panics on ambiguous bases; intended for
// tests and constants.
func MustPack(s string) Kmer {
	km, ok := PackString(s)
	if !ok {
		panic(fmt.Sprintf("seq: cannot pack %q", s))
	}
	return km
}

// Unpack decodes km into a fresh byte slice of length k. Hot paths that
// cannot afford the allocation use UnpackInto with a reused buffer.
func (km Kmer) Unpack(k int) []byte {
	return km.UnpackInto(nil, k)
}

// UnpackInto decodes km into dst, reusing dst's storage when its capacity
// allows (allocating only otherwise), and returns the filled k-length
// slice. It is the allocation-free decoding primitive of the correction
// inner loop; callers keep the returned slice as the buffer for the next
// call.
//
//repro:noalloc
func (km Kmer) UnpackInto(dst []byte, k int) []byte {
	if cap(dst) < k {
		dst = make([]byte, k)
	} else {
		dst = dst[:k]
	}
	for i := k - 1; i >= 0; i-- {
		dst[i] = baseChars[km&3]
		km >>= 2
	}
	return dst
}

// StringK renders a k-long kmer as a string. The packed form cannot
// distinguish leading A's from a shorter kmer, so the length must be
// supplied; it allocates per call and is meant for debugging and error
// messages — real code uses Unpack(k) or UnpackInto.
func (km Kmer) StringK(k int) string { return string(km.Unpack(k)) }

// At returns the base at position i (0-based from the 5' end) of a k-long kmer.
func (km Kmer) At(i, k int) Base {
	shift := uint(2 * (k - 1 - i))
	return Base(km>>shift) & 3
}

// WithBase returns km with position i replaced by b.
func (km Kmer) WithBase(i, k int, b Base) Kmer {
	shift := uint(2 * (k - 1 - i))
	return km&^(3<<shift) | Kmer(b)<<shift
}

// Append shifts km left by one base and appends b, keeping length k.
func (km Kmer) Append(b Base, k int) Kmer {
	mask := Kmer(1)<<(2*uint(k)) - 1
	return (km<<2 | Kmer(b)) & mask
}

// RevComp returns the reverse complement of a k-long kmer.
func RevComp(km Kmer, k int) Kmer {
	var rc Kmer
	for i := 0; i < k; i++ {
		rc = rc<<2 | (km & 3) ^ 3
		km >>= 2
	}
	return rc
}

// Canonical returns the lexicographically smaller of km and its reverse
// complement, the conventional strand-neutral representative.
func Canonical(km Kmer, k int) Kmer {
	if rc := RevComp(km, k); rc < km {
		return rc
	}
	return km
}

// HammingKmer counts positions at which two k-long kmers differ. Bits
// above position 2k do not participate: stray high bits (a hand-built
// kmer, an unmasked scratch value) never inflate the distance.
func HammingKmer(a, b Kmer, k int) int {
	// Mask the XOR to the low 2k bits. At k=32 the shift count is 0 and
	// the mask is all ones; Go defines shifts >= 64 as 0, so k <= 0
	// degenerates to a zero mask rather than undefined behavior.
	x := uint64(a^b) & (^uint64(0) >> (64 - 2*uint(k)))
	// Collapse each 2-bit base to a single indicator bit, then popcount.
	x = (x | x>>1) & 0x5555555555555555
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Hamming counts mismatching positions between equal-length byte strings.
// It panics if the lengths differ, as that is always a programming error in
// this codebase.
func Hamming(a, b []byte) int {
	if len(a) != len(b) {
		panic("seq: Hamming on unequal lengths")
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// ReverseComplement returns the reverse complement of an ASCII DNA string.
// Ambiguous characters map to themselves ('N' stays 'N').
func ReverseComplement(s []byte) []byte {
	return ReverseComplementInto(nil, s)
}

// ReverseComplementInto writes the reverse complement of src into dst,
// reusing dst's storage when its capacity allows, and returns the filled
// slice. src and dst must not overlap partially; passing the same slice
// for both is not supported (the forward scan would read already-written
// bytes).
//
//repro:noalloc
func ReverseComplementInto(dst, src []byte) []byte {
	if cap(dst) < len(src) {
		dst = make([]byte, len(src))
	} else {
		dst = dst[:len(src)]
	}
	for i, ch := range src {
		j := len(src) - 1 - i
		if code, ok := BaseFromChar(ch); ok {
			dst[j] = code.Complement().Char()
		} else {
			dst[j] = ch
		}
	}
	return dst
}

// Read is a sequenced fragment: an identifier, the called bases (over
// A,C,G,T,N) and the per-base Phred quality scores (raw values, not
// ASCII-offset; see the fastq package for encoding).
type Read struct {
	ID   string
	Seq  []byte
	Qual []byte
}

// Clone deep-copies the read so corrections do not alias the original.
func (r Read) Clone() Read {
	c := Read{ID: r.ID, Seq: append([]byte(nil), r.Seq...)}
	if r.Qual != nil {
		c.Qual = append([]byte(nil), r.Qual...)
	}
	return c
}

// CountAmbiguous returns the number of non-ACGT characters in the read.
func (r Read) CountAmbiguous() int {
	n := 0
	for _, ch := range r.Seq {
		if IsAmbiguous(ch) {
			n++
		}
	}
	return n
}

// Validate checks internal consistency (quality length matches sequence).
func (r Read) Validate() error {
	if r.Qual != nil && len(r.Qual) != len(r.Seq) {
		return fmt.Errorf("seq: read %s: %d bases but %d quality values", r.ID, len(r.Seq), len(r.Qual))
	}
	return nil
}

// FormatBases renders a byte sequence safely for error messages.
func FormatBases(s []byte) string {
	var b strings.Builder
	for _, ch := range s {
		if IsAmbiguous(ch) && ch != 'N' {
			fmt.Fprintf(&b, "<%02x>", ch)
		} else {
			b.WriteByte(ch)
		}
	}
	return b.String()
}
