package seq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseFromChar(t *testing.T) {
	cases := []struct {
		ch   byte
		want Base
		ok   bool
	}{
		{'A', A, true}, {'c', C, true}, {'G', G, true}, {'t', T, true},
		{'N', 0, false}, {'n', 0, false}, {'-', 0, false}, {'X', 0, false},
	}
	for _, tc := range cases {
		got, ok := BaseFromChar(tc.ch)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("BaseFromChar(%q) = %v,%v want %v,%v", tc.ch, got, ok, tc.want, tc.ok)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%c complement = %c, want %c", b.Char(), got.Char(), want.Char())
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, s := range []string{"A", "ACGT", "TTTTTTTT", "GATTACA", "ACGTACGTACGTACGTACGTACGTACGTACGT"} {
		km, ok := PackString(s)
		if !ok {
			t.Fatalf("PackString(%q) failed", s)
		}
		if got := string(km.Unpack(len(s))); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestPackRejectsAmbiguous(t *testing.T) {
	if _, ok := PackString("ACGNT"); ok {
		t.Error("PackString accepted N")
	}
	if _, ok := Pack([]byte("ACG"), 4); ok {
		t.Error("Pack accepted k > len(s)")
	}
}

func TestPackOrderMatchesStringOrder(t *testing.T) {
	a := MustPack("ACGT")
	b := MustPack("ACTA")
	if !(a < b) {
		t.Errorf("packed order disagrees with string order: %v >= %v", a, b)
	}
}

func TestAtAndWithBase(t *testing.T) {
	km := MustPack("ACGTAC")
	k := 6
	want := "ACGTAC"
	for i := 0; i < k; i++ {
		if got := km.At(i, k).Char(); got != want[i] {
			t.Errorf("At(%d) = %c want %c", i, got, want[i])
		}
	}
	km2 := km.WithBase(2, k, T)
	if got := string(km2.Unpack(k)); got != "ACTTAC" {
		t.Errorf("WithBase = %q want ACTTAC", got)
	}
	// Original unchanged (value semantics).
	if got := string(km.Unpack(k)); got != want {
		t.Errorf("WithBase mutated receiver: %q", got)
	}
}

func TestAppend(t *testing.T) {
	km := MustPack("ACGT")
	km = km.Append(G, 4)
	if got := string(km.Unpack(4)); got != "CGTG" {
		t.Errorf("Append = %q want CGTG", got)
	}
}

func TestRevComp(t *testing.T) {
	cases := map[string]string{
		"ACGT":   "ACGT",
		"AAAA":   "TTTT",
		"GATTAC": "GTAATC",
	}
	for in, want := range cases {
		got := string(RevComp(MustPack(in), len(in)).Unpack(len(in)))
		if got != want {
			t.Errorf("RevComp(%s) = %s want %s", in, got, want)
		}
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(v uint64, kRaw uint8) bool {
		k := int(kRaw%31) + 1
		km := Kmer(v) & (Kmer(1)<<(2*uint(k)) - 1)
		return RevComp(RevComp(km, k), k) == km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalStrandNeutral(t *testing.T) {
	f := func(v uint64, kRaw uint8) bool {
		k := int(kRaw%31) + 1
		km := Kmer(v) & (Kmer(1)<<(2*uint(k)) - 1)
		return Canonical(km, k) == Canonical(RevComp(km, k), k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingKmer(t *testing.T) {
	a := MustPack("ACGTACGT")
	b := MustPack("ACGAACGA")
	if got := HammingKmer(a, b, 8); got != 2 {
		t.Errorf("HammingKmer = %d want 2", got)
	}
	if got := HammingKmer(a, a, 8); got != 0 {
		t.Errorf("HammingKmer self = %d want 0", got)
	}
}

// TestHammingKmerIgnoresHighBits is the regression test for the unmasked
// XOR: bits above position 2k — a hand-built kmer, a scratch value that
// was never masked — must not count as mismatches. Before the fix every
// dirty high bit pair inflated the distance.
func TestHammingKmerIgnoresHighBits(t *testing.T) {
	for _, k := range []int{1, 4, 8, 31, 32} {
		rng := rand.New(rand.NewSource(int64(k)))
		for trial := 0; trial < 100; trial++ {
			a := randomKmerBytes(rng, k)
			b := randomKmerBytes(rng, k)
			ka, _ := Pack(a, k)
			kb, _ := Pack(b, k)
			// Smear garbage into the bits above 2k (none exist at k=32,
			// where the identity must hold trivially).
			dirtyA, dirtyB := ka, kb
			if k < MaxK {
				high := ^(Kmer(1)<<(2*uint(k)) - 1)
				dirtyA |= Kmer(rng.Uint64()) & high
				dirtyB |= Kmer(rng.Uint64()) & high
			}
			want := Hamming(a, b)
			if got := HammingKmer(dirtyA, dirtyB, k); got != want {
				t.Fatalf("k=%d dirty HammingKmer=%d want %d (a=%s b=%s)", k, got, want, a, b)
			}
		}
	}
}

func TestHammingKmerMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(MaxK)
		a := randomKmerBytes(rng, k)
		b := randomKmerBytes(rng, k)
		ka, _ := Pack(a, k)
		kb, _ := Pack(b, k)
		if got, want := HammingKmer(ka, kb, k), Hamming(a, b); got != want {
			t.Fatalf("k=%d a=%s b=%s: HammingKmer=%d Hamming=%d", k, a, b, got, want)
		}
	}
}

func randomKmerBytes(rng *rand.Rand, k int) []byte {
	out := make([]byte, k)
	for i := range out {
		out[i] = baseChars[rng.Intn(4)]
	}
	return out
}

func TestHammingPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Hamming([]byte("AC"), []byte("ACG"))
}

func TestReverseComplementBytes(t *testing.T) {
	got := ReverseComplement([]byte("ACGNT"))
	if string(got) != "ANCGT" {
		t.Errorf("ReverseComplement = %s want ANCGT", got)
	}
	// Involution on unambiguous input.
	in := []byte("GGATCCA")
	if out := ReverseComplement(ReverseComplement(in)); !bytes.Equal(out, in) {
		t.Errorf("double ReverseComplement = %s want %s", out, in)
	}
}

func TestReadCloneIndependent(t *testing.T) {
	r := Read{ID: "r1", Seq: []byte("ACGT"), Qual: []byte{30, 30, 30, 30}}
	c := r.Clone()
	c.Seq[0] = 'T'
	c.Qual[0] = 2
	if r.Seq[0] != 'A' || r.Qual[0] != 30 {
		t.Error("Clone aliases original storage")
	}
}

func TestReadValidate(t *testing.T) {
	good := Read{ID: "x", Seq: []byte("ACG"), Qual: []byte{1, 2, 3}}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	bad := Read{ID: "x", Seq: []byte("ACG"), Qual: []byte{1}}
	if err := bad.Validate(); err == nil {
		t.Error("expected length-mismatch error")
	}
	noQual := Read{ID: "x", Seq: []byte("ACG")}
	if err := noQual.Validate(); err != nil {
		t.Errorf("nil quality should validate: %v", err)
	}
}

func TestCountAmbiguous(t *testing.T) {
	r := Read{Seq: []byte("ANCGNNT")}
	if got := r.CountAmbiguous(); got != 3 {
		t.Errorf("CountAmbiguous = %d want 3", got)
	}
}

func BenchmarkPack(b *testing.B) {
	s := []byte("ACGTACGTACGTACGT")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pack(s, 16)
	}
}

func BenchmarkHammingKmer(b *testing.B) {
	x := MustPack("ACGTACGTACGTACGT")
	y := MustPack("ACGAACGTACGAACGT")
	for i := 0; i < b.N; i++ {
		HammingKmer(x, y, 16)
	}
}
