package seq

import (
	"bytes"
	"testing"
)

// FuzzPackUnpack checks the Pack/UnpackInto round trip on arbitrary
// input: Pack must accept exactly the ACGT-only windows (case
// insensitive), UnpackInto must reproduce the packed window upper-cased,
// and re-packing the decoded bytes must return the original kmer. It also
// pins UnpackInto's buffer-reuse contract against the allocating Unpack.
func FuzzPackUnpack(f *testing.F) {
	f.Add([]byte("ACGTACGTACGT"), 5)
	f.Add([]byte("acgtn"), 4)
	f.Add([]byte("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT"), 32)
	f.Add([]byte(""), 1)
	f.Fuzz(func(t *testing.T, s []byte, k int) {
		km, ok := Pack(s, k)
		if k < 1 || k > len(s) || k > MaxK {
			if ok {
				t.Fatalf("Pack(%q, %d) accepted an invalid geometry", s, k)
			}
			return
		}
		clean := true
		for i := 0; i < k; i++ {
			if IsAmbiguous(s[i]) {
				clean = false
				break
			}
		}
		if ok != clean {
			t.Fatalf("Pack(%q, %d) ok=%v, window clean=%v", s[:k], k, ok, clean)
		}
		if !ok {
			return
		}
		want := bytes.ToUpper(s[:k])
		// Fresh allocation path.
		if got := km.Unpack(k); !bytes.Equal(got, want) {
			t.Fatalf("Unpack = %q want %q", got, want)
		}
		// Reuse path: undersized buffer grows, oversized buffer is reused.
		small := km.UnpackInto(make([]byte, 0, 1), k)
		if !bytes.Equal(small, want) {
			t.Fatalf("UnpackInto(small) = %q want %q", small, want)
		}
		big := make([]byte, MaxK+7)
		got := km.UnpackInto(big, k)
		if !bytes.Equal(got, want) {
			t.Fatalf("UnpackInto(big) = %q want %q", got, want)
		}
		if len(got) != k || &got[0] != &big[0] {
			t.Fatal("UnpackInto did not reuse the provided buffer")
		}
		// Round trip.
		km2, ok2 := Pack(got, k)
		if !ok2 || km2 != km {
			t.Fatalf("re-Pack(%q) = %v,%v want %v", got, km2, ok2, km)
		}
		if km.StringK(k) != string(want) {
			t.Fatalf("StringK = %q want %q", km.StringK(k), want)
		}
	})
}

// FuzzReverseComplementInto checks the involution property and the
// buffer-reuse contract of the in-place reverse complement.
func FuzzReverseComplementInto(f *testing.F) {
	f.Add([]byte("ACGTN"))
	f.Add([]byte("nnNNacgt"))
	f.Fuzz(func(t *testing.T, s []byte) {
		rc := ReverseComplement(s)
		if len(rc) != len(s) {
			t.Fatalf("length changed: %d -> %d", len(s), len(rc))
		}
		buf := make([]byte, len(s))
		back := ReverseComplementInto(buf, rc)
		if len(s) > 0 && &back[0] != &buf[0] {
			t.Fatal("ReverseComplementInto did not reuse the buffer")
		}
		// rc(rc(s)) restores s with every ACGT base upper-cased and
		// ambiguity characters untouched.
		for i, ch := range s {
			want := ch
			if code, ok := BaseFromChar(ch); ok {
				want = code.Char()
			}
			if back[i] != want {
				t.Fatalf("involution broke at %d: %q -> %q -> %q", i, s, rc, back)
			}
		}
	})
}
