package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

func simPair(truth, called string) simulate.SimRead {
	return simulate.SimRead{
		Read: seq.Read{ID: "r", Seq: []byte(called)},
		True: []byte(truth),
	}
}

func TestEvaluateCorrectionCategories(t *testing.T) {
	// truth:  ACGTA
	// called: ACTTA  (error at pos 2: G->T)
	// fixed:  ACGTA  -> TP at pos 2, TN elsewhere
	sim := []simulate.SimRead{simPair("ACGTA", "ACTTA")}
	stats, err := EvaluateCorrection(sim, []seq.Read{{Seq: []byte("ACGTA")}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TP != 1 || stats.TN != 4 || stats.FP+stats.FN+stats.NE != 0 {
		t.Errorf("stats = %+v", stats)
	}

	// Left unchanged -> FN.
	stats, _ = EvaluateCorrection(sim, []seq.Read{{Seq: []byte("ACTTA")}})
	if stats.FN != 1 || stats.TP != 0 {
		t.Errorf("FN case: %+v", stats)
	}

	// Changed to another wrong base -> NE.
	stats, _ = EvaluateCorrection(sim, []seq.Read{{Seq: []byte("ACCTA")}})
	if stats.NE != 1 || stats.TP != 0 || stats.FN != 0 {
		t.Errorf("NE case: %+v", stats)
	}

	// Correct base wrongly changed -> FP.
	stats, _ = EvaluateCorrection(sim, []seq.Read{{Seq: []byte("TCGTA")}})
	if stats.FP != 1 || stats.TP != 1 {
		t.Errorf("FP case: %+v", stats)
	}
}

func TestCorrectionDerivedMeasures(t *testing.T) {
	s := CorrectionStats{TP: 80, FN: 20, FP: 10, TN: 890, NE: 5}
	if got := s.Sensitivity(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Sensitivity = %v", got)
	}
	if got := s.Specificity(); math.Abs(got-890.0/900) > 1e-12 {
		t.Errorf("Specificity = %v", got)
	}
	if got := s.Gain(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Gain = %v", got)
	}
	if got := s.EBA(); math.Abs(got-5.0/85) > 1e-12 {
		t.Errorf("EBA = %v", got)
	}
	// Gain can be negative when FP > TP.
	bad := CorrectionStats{TP: 1, FP: 5, FN: 4}
	if bad.Gain() >= 0 {
		t.Errorf("Gain should be negative, got %v", bad.Gain())
	}
}

func TestEvaluateCorrectionValidation(t *testing.T) {
	sim := []simulate.SimRead{simPair("ACG", "ACG")}
	if _, err := EvaluateCorrection(sim, nil); err == nil {
		t.Error("expected count mismatch error")
	}
	if _, err := EvaluateCorrection(sim, []seq.Read{{Seq: []byte("ACGT")}}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestCorrectionStatsAdd(t *testing.T) {
	a := CorrectionStats{TP: 1, FP: 2, TN: 3, FN: 4, NE: 5}
	a.Add(CorrectionStats{TP: 10, FP: 20, TN: 30, FN: 40, NE: 50})
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 || a.NE != 55 {
		t.Errorf("Add = %+v", a)
	}
}

func TestGenomeKmerSetBothStrands(t *testing.T) {
	set := GenomeKmerSet([]byte("ACGTT"), 3)
	// Forward: ACG CGT GTT; reverse complements: CGT ACG AAC.
	for _, s := range []string{"ACG", "CGT", "GTT", "AAC"} {
		if !set[seq.MustPack(s)] {
			t.Errorf("missing %s", s)
		}
	}
	if set[seq.MustPack("TTT")] {
		t.Error("phantom kmer")
	}
}

func TestEvaluateDetection(t *testing.T) {
	genomeSet := GenomeKmerSet([]byte("ACGTACGT"), 4)
	kmers := []seq.Kmer{
		seq.MustPack("ACGT"), // in genome
		seq.MustPack("CGTA"), // in genome
		seq.MustPack("TTTT"), // not in genome (erroneous)
		seq.MustPack("GGGG"), // not in genome (erroneous)
	}
	// Flag ACGT (wrongly) and TTTT (rightly); miss GGGG.
	flags := []bool{true, false, true, false}
	d := EvaluateDetection(kmers, func(i int) bool { return flags[i] }, genomeSet)
	if d.FP != 1 || d.FN != 1 || d.Wrong() != 2 {
		t.Errorf("detection = %+v", d)
	}
}

func TestARIPerfectAgreement(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7} // same partition, renamed labels
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI = %v want 1", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Hand-checked 6-item example.
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 1, 1}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Contingency: rows {3,3}, cols {2,4}; cells: (0,0)=2,(0,1)=1,(1,1)=3.
	// sumCells = 1+0+3 = 4; sumRows = 3+3 = 6; sumCols = 1+6 = 7; total = 15.
	// expected = 42/15 = 2.8; maxIndex = 6.5; ARI = (4-2.8)/(6.5-2.8).
	want := (4.0 - 2.8) / (6.5 - 2.8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ARI = %v want %v", got, want)
	}
}

func TestARIRandomIsNearZero(t *testing.T) {
	// Independent balanced labelings over many items: expect ~0.
	n := 4000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i % 4
		b[i] = (i * 2654435761) % 5 // decorrelated
	}
	got, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Errorf("ARI of unrelated labelings = %v want ~0", got)
	}
}

func TestARIValidation(t *testing.T) {
	if _, err := ARI([]int{1}, []int{1, 2}); err == nil {
		t.Error("expected length error")
	}
	if _, err := ARI(nil, nil); err == nil {
		t.Error("expected empty error")
	}
}

// TestEvaluateCorrectionParallelMatchesSerial pins the worker-count
// invariance of the parallel tally, including error propagation from a
// mid-slice length mismatch.
func TestEvaluateCorrectionParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var sim []simulate.SimRead
	var corrected []seq.Read
	for i := 0; i < 500; i++ {
		truth := make([]byte, 30)
		before := make([]byte, 30)
		after := make([]byte, 30)
		for p := range truth {
			truth[p] = "ACGT"[rng.Intn(4)]
			before[p], after[p] = truth[p], truth[p]
			if rng.Intn(10) == 0 {
				before[p] = "ACGT"[rng.Intn(4)]
			}
			if rng.Intn(12) == 0 {
				after[p] = "ACGT"[rng.Intn(4)]
			}
		}
		sim = append(sim, simulate.SimRead{Read: seq.Read{Seq: before}, True: truth})
		corrected = append(corrected, seq.Read{Seq: after})
	}
	want, err := EvaluateCorrection(sim, corrected)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := EvaluateCorrectionParallel(sim, corrected, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: %+v want %+v", workers, got, want)
		}
	}
	corrected[250].Seq = corrected[250].Seq[:10] // poison one read
	if _, err := EvaluateCorrectionParallel(sim, corrected, 4); err == nil {
		t.Error("expected length-mismatch error under parallel evaluation")
	}
}
