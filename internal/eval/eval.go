// Package eval implements the dissertation's evaluation measures: the
// base-level error correction statistics of §2.4 (TP/FP/TN/FN, Sensitivity,
// Specificity, the Gain and EBA measures the thesis introduces), the
// kmer-level detection error FP+FN of Chapter 3, and the Adjusted Rand Index
// used to validate clusterings in Chapter 4 (Table 4.4).
package eval

import (
	"fmt"
	"sync"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// CorrectionStats aggregates base-level correction outcomes (§2.4):
//
//	TP — erroneous base changed to the true base,
//	FP — true base changed (wrongly),
//	TN — true base left unchanged,
//	FN — erroneous base left unchanged,
//	NE — erroneous base identified but changed to a wrong base.
type CorrectionStats struct {
	TP, FP, TN, FN, NE int
}

// Add accumulates another tally.
func (s *CorrectionStats) Add(o CorrectionStats) {
	s.TP += o.TP
	s.FP += o.FP
	s.TN += o.TN
	s.FN += o.FN
	s.NE += o.NE
}

// Sensitivity is TP / (TP + FN).
func (s CorrectionStats) Sensitivity() float64 { return ratio(s.TP, s.TP+s.FN) }

// Specificity is TN / (TN + FP).
func (s CorrectionStats) Specificity() float64 { return ratio(s.TN, s.TN+s.FP) }

// Gain is (TP - FP) / (TP + FN): the fraction of errors effectively removed
// from the dataset; negative when a method introduces more errors than it
// corrects (§2.4).
func (s CorrectionStats) Gain() float64 { return ratio(s.TP-s.FP, s.TP+s.FN) }

// EBA is n_e / (TP + n_e): among identified erroneous bases, the fraction
// assigned the wrong replacement; lower is better (§2.4).
func (s CorrectionStats) EBA() float64 { return ratio(s.NE, s.TP+s.NE) }

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func (s CorrectionStats) String() string {
	return fmt.Sprintf("TP=%d FN=%d FP=%d TN=%d EBA=%.3f%% Sens=%.1f%% Spec=%.2f%% Gain=%.1f%%",
		s.TP, s.FN, s.FP, s.TN, 100*s.EBA(), 100*s.Sensitivity(), 100*s.Specificity(), 100*s.Gain())
}

// EvaluateCorrection compares corrected reads against simulation ground
// truth. corrected[i] must correspond to sim[i]; lengths must match.
func EvaluateCorrection(sim []simulate.SimRead, corrected []seq.Read) (CorrectionStats, error) {
	return evaluateRange(sim, corrected, 0, len(sim))
}

// EvaluateCorrectionParallel is EvaluateCorrection with the per-read tally
// fanned across `workers` goroutines (<= 1 is serial). The outcome counts
// are sums over reads, so the result is identical for every worker count;
// on error, the reported read is the lowest-indexed offender.
func EvaluateCorrectionParallel(sim []simulate.SimRead, corrected []seq.Read, workers int) (CorrectionStats, error) {
	var s CorrectionStats
	if len(sim) != len(corrected) {
		return s, fmt.Errorf("eval: %d truth reads but %d corrected reads", len(sim), len(corrected))
	}
	if workers <= 1 || len(sim) < 2*workers {
		return evaluateRange(sim, corrected, 0, len(sim))
	}
	chunk := (len(sim) + workers - 1) / workers
	stats := make([]CorrectionStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(sim))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			stats[w], errs[w] = evaluateRange(sim, corrected, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for w := range errs {
		if errs[w] != nil {
			return s, errs[w]
		}
		s.Add(stats[w])
	}
	return s, nil
}

func evaluateRange(sim []simulate.SimRead, corrected []seq.Read, lo, hi int) (CorrectionStats, error) {
	var s CorrectionStats
	if len(sim) != len(corrected) {
		return s, fmt.Errorf("eval: %d truth reads but %d corrected reads", len(sim), len(corrected))
	}
	for i := lo; i < hi; i++ {
		truth := sim[i].True
		before := sim[i].Read.Seq
		after := corrected[i].Seq
		if len(after) != len(truth) || len(before) != len(truth) {
			return s, fmt.Errorf("eval: read %d length mismatch (truth %d, before %d, after %d)",
				i, len(truth), len(before), len(after))
		}
		for p := range truth {
			wasError := before[p] != truth[p]
			switch {
			case !wasError && after[p] == truth[p]:
				s.TN++
			case !wasError:
				s.FP++
			case after[p] == truth[p]:
				s.TP++
			case after[p] == before[p]:
				s.FN++
			default:
				s.NE++
			}
		}
	}
	return s, nil
}

// DetectionStats is the kmer-classification error count of Chapter 3: FP is
// an error-free kmer declared erroneous, FN an erroneous kmer not declared.
type DetectionStats struct {
	FP, FN int
}

// Wrong is the combined FP+FN criterion minimized in Table 3.3.
func (d DetectionStats) Wrong() int { return d.FP + d.FN }

// GenomeKmerSet builds the set of kmers genuinely present in a genome
// (both strands) — the ground truth for kmer-level detection.
func GenomeKmerSet(genome []byte, k int) map[seq.Kmer]bool {
	set := make(map[seq.Kmer]bool)
	for pos := 0; pos+k <= len(genome); pos++ {
		if km, ok := seq.Pack(genome[pos:], k); ok {
			set[km] = true
			set[seq.RevComp(km, k)] = true
		}
	}
	return set
}

// EvaluateDetection scores a predicate that flags kmers as erroneous
// against the genome kmer set. kmers lists the observed spectrum.
func EvaluateDetection(kmers []seq.Kmer, flagged func(i int) bool, genomeSet map[seq.Kmer]bool) DetectionStats {
	var d DetectionStats
	for i, km := range kmers {
		inGenome := genomeSet[km]
		isFlagged := flagged(i)
		switch {
		case inGenome && isFlagged:
			d.FP++
		case !inGenome && !isFlagged:
			d.FN++
		}
	}
	return d
}

// ARI computes the Adjusted Rand Index between two labelings of the same n
// items (Table 4.4 / Hubert & Arabie). Labels are arbitrary comparable ints.
func ARI(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: label vectors differ in length: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("eval: empty labeling")
	}
	cont := map[[2]int]int{}
	rows := map[int]int{}
	cols := map[int]int{}
	for i := range a {
		cont[[2]int{a[i], b[i]}]++
		rows[a[i]]++
		cols[b[i]]++
	}
	var sumCells, sumRows, sumCols float64
	for _, c := range cont {
		sumCells += choose2(c)
	}
	for _, c := range rows {
		sumRows += choose2(c)
	}
	for _, c := range cols {
		sumCols += choose2(c)
	}
	total := choose2(n)
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		return 1, nil // both partitions trivial and identical in structure
	}
	return (sumCells - expected) / (maxIndex - expected), nil
}

func choose2(n int) float64 { return float64(n) * float64(n-1) / 2 }
