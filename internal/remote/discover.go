package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/kspectrum"
)

// ShardLoc is one shard's resolved location in a cluster: the node that
// owns it and the registry entry to query it under.
type ShardLoc struct {
	Node  string
	Entry string
	Kmers int
}

// ShardMap is one spectrum's complete distribution across a cluster: a
// prefix partition plus the owning node of every shard. Built by
// Discover, consumed by New.
type ShardMap struct {
	Spectrum    string
	Part        kspectrum.PrefixPartition
	BothStrands bool
	Shards      []ShardLoc
}

// Len is the number of distinct kmers across all shards.
func (m *ShardMap) Len() int {
	n := 0
	for _, s := range m.Shards {
		n += s.Kmers
	}
	return n
}

// Discover polls every node's GET /v2/shards and assembles per-spectrum
// shard maps. It is strict: every spectrum mentioned anywhere must have
// all of its shards owned by exactly one node each, with consistent k,
// shard count and strand closure — a partial or conflicting map would
// silently misroute queries, so it is a startup error instead. A nil
// httpc uses http.DefaultClient.
func Discover(ctx context.Context, httpc *http.Client, nodes []string) (map[string]*ShardMap, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	maps := make(map[string]*ShardMap)
	for _, node := range nodes {
		sr, err := fetchShards(ctx, httpc, node)
		if err != nil {
			return nil, fmt.Errorf("remote: discovering %s: %w", node, err)
		}
		for _, si := range sr.Shards {
			if si.Of < 1 || si.Of&(si.Of-1) != 0 {
				return nil, fmt.Errorf("remote: node %s: spectrum %q has non-power-of-two shard count %d", node, si.Spectrum, si.Of)
			}
			if si.Shard < 0 || si.Shard >= si.Of {
				return nil, fmt.Errorf("remote: node %s: spectrum %q shard %d out of range of %d", node, si.Spectrum, si.Shard, si.Of)
			}
			m := maps[si.Spectrum]
			if m == nil {
				part := kspectrum.PrefixPartition{K: si.K}
				for 1<<part.Bits < si.Of {
					part.Bits++
				}
				m = &ShardMap{
					Spectrum:    si.Spectrum,
					Part:        part,
					BothStrands: si.BothStrands,
					Shards:      make([]ShardLoc, si.Of),
				}
				maps[si.Spectrum] = m
			}
			if si.K != m.Part.K || si.Of != len(m.Shards) || si.BothStrands != m.BothStrands {
				return nil, fmt.Errorf("remote: node %s: spectrum %q shard %d (k=%d, of=%d, both=%v) disagrees with the cluster (k=%d, of=%d, both=%v)",
					node, si.Spectrum, si.Shard, si.K, si.Of, si.BothStrands, m.Part.K, len(m.Shards), m.BothStrands)
			}
			if owner := m.Shards[si.Shard].Node; owner != "" {
				return nil, fmt.Errorf("remote: spectrum %q shard %d owned by both %s and %s", si.Spectrum, si.Shard, owner, node)
			}
			m.Shards[si.Shard] = ShardLoc{Node: node, Entry: si.Entry, Kmers: si.Kmers}
		}
	}
	names := make([]string, 0, len(maps))
	for name := range maps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := maps[name]
		for i, s := range m.Shards {
			if s.Node == "" {
				return nil, fmt.Errorf("remote: spectrum %q shard %d of %d has no owner among the configured nodes", name, i, len(m.Shards))
			}
		}
	}
	return maps, nil
}

// fetchShards GETs one node's shard listing.
func fetchShards(ctx context.Context, httpc *http.Client, node string) (*ShardsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v2/shards", nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v2/shards: %s", resp.Status)
	}
	var sr ShardsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("GET /v2/shards: decoding: %w", err)
	}
	return &sr, nil
}
