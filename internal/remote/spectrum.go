package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/kspectrum"
	"repro/internal/seq"
)

// Options configures a RemoteSpectrum.
type Options struct {
	// HTTP is the transport (nil selects http.DefaultClient; set a
	// Timeout on it — the per-attempt bound).
	HTTP *http.Client
	// Policy is the per-shard retry schedule; the zero value fails fast
	// with Client-default backoff arithmetic.
	Policy client.Policy
	// OnQuery, when set, observes every shard round trip with an outcome
	// of "ok", "unavailable" (retry budget exhausted) or "error"
	// (non-retryable node answer). The daemon hangs its per-shard
	// request counters here.
	OnQuery func(shard int, outcome string)
}

// RemoteSpectrum is the coordinator's view of a sharded spectrum: a
// kspectrum.SpectrumBackend and kspectrum.NeighborSource that routes
// each query to the node owning the kmer's prefix shard and merges the
// answers. Index positions are global — each shard's local index plus
// the prefix-sum offset of the shards before it — so a remote spectrum
// is positionally byte-identical to the unsharded one.
//
// Failures are errors, never silent absences: a node that stays
// unreachable or quarantined through the retry budget yields a
// *ShardUnavailableError, which the daemon maps to 503-with-Retry-After
// for requests touching that shard while the rest of the keyspace keeps
// serving.
//
// A RemoteSpectrum is safe for concurrent use.
type RemoteSpectrum struct {
	name    string
	part    kspectrum.PrefixPartition
	both    bool
	shards  []ShardLoc
	offsets []int // len(shards)+1 prefix sums; offsets[n] is the global Len
	httpc   *http.Client
	policy  client.Policy
	onQuery func(shard int, outcome string)
	stats   []shardCounters
	closed  atomic.Bool
}

// shardCounters is one shard's request tally.
type shardCounters struct {
	requests atomic.Int64
	errors   atomic.Int64
}

// ShardStat is a point-in-time snapshot of one shard's traffic.
type ShardStat struct {
	Shard    int
	Node     string
	Requests int64
	Errors   int64
}

// New builds a RemoteSpectrum over a discovered shard map.
func New(m *ShardMap, opts Options) (*RemoteSpectrum, error) {
	if m == nil || len(m.Shards) == 0 {
		return nil, fmt.Errorf("remote: empty shard map")
	}
	if len(m.Shards) != m.Part.Shards() {
		return nil, fmt.Errorf("remote: shard map has %d shards for a %d-shard partition", len(m.Shards), m.Part.Shards())
	}
	httpc := opts.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	offsets := make([]int, len(m.Shards)+1)
	for i, s := range m.Shards {
		offsets[i+1] = offsets[i] + s.Kmers
	}
	return &RemoteSpectrum{
		name:    m.Spectrum,
		part:    m.Part,
		both:    m.BothStrands,
		shards:  slices.Clone(m.Shards),
		offsets: offsets,
		httpc:   httpc,
		policy:  opts.Policy,
		onQuery: opts.OnQuery,
		stats:   make([]shardCounters, len(m.Shards)),
	}, nil
}

// Name is the spectrum's cluster-wide base name.
func (r *RemoteSpectrum) Name() string { return r.name }

// SetOnQuery installs the per-round-trip observer (see Options.OnQuery).
// It must be called before the spectrum serves queries.
func (r *RemoteSpectrum) SetOnQuery(f func(shard int, outcome string)) { r.onQuery = f }

// K is the kmer length.
func (r *RemoteSpectrum) K() int { return r.part.K }

// Len is the number of distinct kmers across all shards.
func (r *RemoteSpectrum) Len() int { return r.offsets[len(r.shards)] }

// BothStrands reports whether the sharded spectrum was built RC-closed.
func (r *RemoteSpectrum) BothStrands() bool { return r.both }

// Partition exposes the routing partition (for the daemon's cluster
// status endpoint).
func (r *RemoteSpectrum) Partition() kspectrum.PrefixPartition { return r.part }

// Shards exposes the shard map (for the daemon's cluster status
// endpoint).
func (r *RemoteSpectrum) Shards() []ShardLoc { return slices.Clone(r.shards) }

// Err reports sticky health; a remote spectrum has none — failures are
// per-query.
func (r *RemoteSpectrum) Err() error {
	if r.closed.Load() {
		return kspectrum.ErrSpectrumClosed
	}
	return nil
}

// Close marks the backend closed; it holds no local resources.
func (r *RemoteSpectrum) Close() error {
	r.closed.Store(true)
	return nil
}

// ShardStats snapshots per-shard traffic counters.
func (r *RemoteSpectrum) ShardStats() []ShardStat {
	out := make([]ShardStat, len(r.shards))
	for i := range r.shards {
		out[i] = ShardStat{
			Shard:    i,
			Node:     r.shards[i].Node,
			Requests: r.stats[i].requests.Load(),
			Errors:   r.stats[i].errors.Load(),
		}
	}
	return out
}

// shardOf routes km to its owning shard, rejecting kmers outside the
// partition's 2k-bit keyspace. Without the bounds check a hostile or
// corrupt kmer value (>= 4^k) would index the shard and stats tables
// out of range — inside spawned fan-out goroutines, where a panic
// escapes any HTTP recover middleware and kills the process.
func (r *RemoteSpectrum) shardOf(km seq.Kmer) (int, error) {
	shard := r.part.ShardOf(km)
	if shard < 0 || shard >= len(r.shards) {
		return 0, fmt.Errorf("remote: kmer %d does not fit the %d-base keyspace of %q", uint64(km), r.part.K, r.name)
	}
	return shard, nil
}

// Index returns km's position in the globally-sorted spectrum (-1
// absent): the owning shard's local index plus that shard's offset.
func (r *RemoteSpectrum) Index(km seq.Kmer) (int, error) {
	return r.IndexCtx(context.Background(), km)
}

// IndexCtx is Index with the shard round trip scoped to ctx.
func (r *RemoteSpectrum) IndexCtx(ctx context.Context, km seq.Kmer) (int, error) {
	shard, err := r.shardOf(km)
	if err != nil {
		return -1, err
	}
	resp, err := r.query(ctx, shard, QueryRequest{Kmers: []string{formatKmer(km)}})
	if err != nil {
		return -1, err
	}
	if len(resp.Indexes) != 1 {
		return -1, r.malformed(shard, "1 index", len(resp.Indexes))
	}
	if resp.Indexes[0] < 0 {
		return -1, nil
	}
	return r.offsets[shard] + resp.Indexes[0], nil
}

// Count returns km's occurrence count (0 absent).
func (r *RemoteSpectrum) Count(km seq.Kmer) (uint32, error) {
	return r.CountCtx(context.Background(), km)
}

// CountCtx is Count with the shard round trip scoped to ctx.
func (r *RemoteSpectrum) CountCtx(ctx context.Context, km seq.Kmer) (uint32, error) {
	shard, err := r.shardOf(km)
	if err != nil {
		return 0, err
	}
	resp, err := r.query(ctx, shard, QueryRequest{Kmers: []string{formatKmer(km)}})
	if err != nil {
		return 0, err
	}
	if len(resp.Counts) != 1 {
		return 0, r.malformed(shard, "1 count", len(resp.Counts))
	}
	return resp.Counts[0], nil
}

// Contains reports membership.
func (r *RemoteSpectrum) Contains(km seq.Kmer) (bool, error) {
	idx, err := r.Index(km)
	return idx >= 0, err
}

// fanOutByShard groups kms by owning shard, issues one d=0 query per
// shard concurrently under ctx, and hands each shard's answer to fill
// together with the input positions it covers (fill runs in the
// fan-out goroutines but each call owns disjoint positions). The first
// failure is recorded and returned; healthy shards still fill.
func (r *RemoteSpectrum) fanOutByShard(ctx context.Context, kms []seq.Kmer, fill func(shard int, positions []int, resp *QueryResponse) error) error {
	byShard := make(map[int][]int)
	for i, km := range kms {
		s, err := r.shardOf(km)
		if err != nil {
			return err
		}
		byShard[s] = append(byShard[s], i)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for shard, positions := range byShard {
		wg.Add(1)
		go func(shard int, positions []int) {
			defer wg.Done()
			req := QueryRequest{Kmers: make([]string, len(positions))}
			for j, pos := range positions {
				req.Kmers[j] = formatKmer(kms[pos])
			}
			resp, err := r.query(ctx, shard, req)
			if err == nil {
				err = fill(shard, positions, resp)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(shard, positions)
	}
	wg.Wait()
	return firstErr
}

// CountMany fills counts[i] with the count of kms[i], batching one
// round trip per owning shard and issuing the shard requests
// concurrently. The first shard failure is returned; counts for kmers
// on healthy shards are still filled.
func (r *RemoteSpectrum) CountMany(kms []seq.Kmer, counts []uint32) error {
	return r.CountManyCtx(context.Background(), kms, counts)
}

// CountManyCtx is CountMany with the shard round trips scoped to ctx.
func (r *RemoteSpectrum) CountManyCtx(ctx context.Context, kms []seq.Kmer, counts []uint32) error {
	if len(kms) != len(counts) {
		return fmt.Errorf("remote: CountMany: %d kmers but %d count slots", len(kms), len(counts))
	}
	if len(kms) == 0 {
		return nil
	}
	return r.fanOutByShard(ctx, kms, func(shard int, positions []int, resp *QueryResponse) error {
		if len(resp.Counts) != len(positions) {
			return r.malformed(shard, fmt.Sprintf("%d counts", len(positions)), len(resp.Counts))
		}
		for j, pos := range positions {
			counts[pos] = resp.Counts[j]
		}
		return nil
	})
}

// IndexCountManyCtx fills idxs[i] with the global index of kms[i] (-1
// absent) and counts[i] with its occurrence count, in the same one
// round trip per owning shard — a d=0 node answer carries both columns,
// so batch callers wanting indexes and counts (the coordinator's query
// proxy) pay no extra fan-out over CountManyCtx alone.
func (r *RemoteSpectrum) IndexCountManyCtx(ctx context.Context, kms []seq.Kmer, idxs []int, counts []uint32) error {
	if len(kms) != len(idxs) || len(kms) != len(counts) {
		return fmt.Errorf("remote: IndexCountMany: %d kmers but %d index and %d count slots", len(kms), len(idxs), len(counts))
	}
	if len(kms) == 0 {
		return nil
	}
	return r.fanOutByShard(ctx, kms, func(shard int, positions []int, resp *QueryResponse) error {
		if len(resp.Indexes) != len(positions) || len(resp.Counts) != len(positions) {
			return r.malformed(shard, fmt.Sprintf("%d indexes and counts", len(positions)), len(resp.Indexes))
		}
		for j, pos := range positions {
			if resp.Indexes[j] >= 0 {
				idxs[pos] = r.offsets[shard] + resp.Indexes[j]
			} else {
				idxs[pos] = -1
			}
			counts[pos] = resp.Counts[j]
		}
		return nil
	})
}

// Neighborhood appends the spectrum kmers within Hamming distance d of
// km to dst, ascending and unique — the NeighborSource contract. d == 0
// is a membership probe against the owning shard alone; d > 0 fans out
// to exactly the shards a d-mutation of km could land in
// (PrefixPartition.NeighborShards) and merges their answers. Because
// shards partition the kmer space into ascending contiguous ranges and
// each shard answers in ascending order, the merged result ordered by
// shard is globally ascending — identical to the local NeighborIndex
// answer on the unsharded spectrum.
func (r *RemoteSpectrum) Neighborhood(km seq.Kmer, d int, dst []seq.Kmer) ([]seq.Kmer, error) {
	return r.NeighborhoodCtx(context.Background(), km, d, dst)
}

// NeighborhoodCtx is Neighborhood with the shard round trips scoped to
// ctx.
func (r *RemoteSpectrum) NeighborhoodCtx(ctx context.Context, km seq.Kmer, d int, dst []seq.Kmer) ([]seq.Kmer, error) {
	if d == 0 {
		idx, err := r.IndexCtx(ctx, km)
		if err != nil {
			return dst, err
		}
		if idx >= 0 {
			dst = append(dst, km)
		}
		return dst, nil
	}
	// Validates km against the keyspace too: every d-mutation of an
	// in-range kmer stays in range, so the fanned-out shards are in
	// bounds by construction.
	if _, err := r.shardOf(km); err != nil {
		return dst, err
	}
	shards := r.part.NeighborShards(km, d, nil)
	kmStr := formatKmer(km)
	results := make([][]seq.Kmer, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			resp, err := r.query(ctx, shard, QueryRequest{Kmers: []string{kmStr}, D: d})
			if err != nil {
				errs[i] = err
				return
			}
			if len(resp.Neighbors) != 1 {
				errs[i] = r.malformed(shard, "1 neighbor list", len(resp.Neighbors))
				return
			}
			out := make([]seq.Kmer, 0, len(resp.Neighbors[0]))
			for _, s := range resp.Neighbors[0] {
				nb, err := parseKmer(s)
				if err != nil {
					errs[i] = fmt.Errorf("remote: shard %d of %q at %s: %w", shard, r.name, r.shards[shard].Node, err)
					return
				}
				out = append(out, nb)
			}
			results[i] = out
		}(i, shard)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return dst, err
		}
	}
	// NeighborShards returns shards ascending and shards own ascending
	// contiguous kmer ranges, so in-order concatenation is globally
	// ascending already; each shard's list is unique within itself and
	// shards are disjoint, so no dedup is needed.
	for _, out := range results {
		dst = append(dst, out...)
	}
	return dst, nil
}

// BindContext implements kspectrum.ContextBinder: the returned backend
// shares every shard, counter and policy with r but scopes all shard
// round trips (including retry backoff sleeps) to ctx, so the daemon's
// per-request deadline and client disconnects actually cancel in-flight
// fan-outs. A background ctx returns r itself.
func (r *RemoteSpectrum) BindContext(ctx context.Context) kspectrum.SpectrumBackend {
	if ctx == nil || ctx == context.Background() {
		return r
	}
	return boundSpectrum{r: r, ctx: ctx}
}

// boundSpectrum is a RemoteSpectrum view pinned to one request context;
// it implements kspectrum.SpectrumBackend and kspectrum.NeighborSource
// by delegating to the Ctx query forms.
type boundSpectrum struct {
	r   *RemoteSpectrum
	ctx context.Context
}

func (b boundSpectrum) K() int            { return b.r.K() }
func (b boundSpectrum) Len() int          { return b.r.Len() }
func (b boundSpectrum) BothStrands() bool { return b.r.BothStrands() }
func (b boundSpectrum) Err() error        { return b.r.Err() }
func (b boundSpectrum) Close() error      { return b.r.Close() }
func (b boundSpectrum) Index(km seq.Kmer) (int, error) {
	return b.r.IndexCtx(b.ctx, km)
}
func (b boundSpectrum) Count(km seq.Kmer) (uint32, error) {
	return b.r.CountCtx(b.ctx, km)
}
func (b boundSpectrum) Contains(km seq.Kmer) (bool, error) {
	idx, err := b.r.IndexCtx(b.ctx, km)
	return idx >= 0, err
}
func (b boundSpectrum) CountMany(kms []seq.Kmer, counts []uint32) error {
	return b.r.CountManyCtx(b.ctx, kms, counts)
}
func (b boundSpectrum) Neighborhood(km seq.Kmer, d int, dst []seq.Kmer) ([]seq.Kmer, error) {
	return b.r.NeighborhoodCtx(b.ctx, km, d, dst)
}

// malformed builds the protocol-violation error for a shard answer with
// the wrong shape.
func (r *RemoteSpectrum) malformed(shard int, want string, got int) error {
	return fmt.Errorf("remote: shard %d of %q at %s: malformed answer: want %s, got %d",
		shard, r.name, r.shards[shard].Node, want, got)
}

// query runs one shard query under the retry policy, with every
// attempt and backoff sleep scoped to ctx — a cancelled request stops
// retrying instead of blocking a correction slot past its deadline.
// Retryable failures (transport, 429, 5xx) are retried with jittered
// backoff honoring the node's Retry-After; an exhausted budget yields
// *ShardUnavailableError. Non-retryable node answers (a 4xx) fail
// immediately.
func (r *RemoteSpectrum) query(ctx context.Context, shard int, qr QueryRequest) (*QueryResponse, error) {
	if r.closed.Load() {
		return nil, kspectrum.ErrSpectrumClosed
	}
	if shard < 0 || shard >= len(r.shards) {
		// Belt over shardOf's suspenders: never index the shard or
		// stats tables out of range inside a fan-out goroutine.
		return nil, fmt.Errorf("remote: shard %d out of range for %q (%d shards)", shard, r.name, len(r.shards))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	loc := r.shards[shard]
	body, err := json.Marshal(qr)
	if err != nil {
		return nil, err
	}
	target := loc.Node + "/v2/query?spectrum=" + url.QueryEscape(loc.Entry)
	var (
		lastErr        error
		lastRetryAfter string
	)
	for try := 0; ; try++ {
		r.stats[shard].requests.Add(1)
		status, respBody, retryAfter, err := postJSON(ctx, r.httpc, target, body)
		if err == nil && status == http.StatusOK {
			var resp QueryResponse
			if uerr := json.Unmarshal(respBody, &resp); uerr != nil {
				return nil, fmt.Errorf("remote: shard %d of %q at %s: decoding answer: %w", shard, r.name, loc.Node, uerr)
			}
			r.observe(shard, "ok")
			return &resp, nil
		}
		if err == nil {
			err = fmt.Errorf("HTTP %d: %s", status, truncate(respBody, 200))
		}
		if !client.Retryable(status, nil) && status != 0 {
			r.stats[shard].errors.Add(1)
			r.observe(shard, "error")
			return nil, fmt.Errorf("remote: shard %d of %q at %s: %w", shard, r.name, loc.Node, err)
		}
		lastErr, lastRetryAfter = err, retryAfter
		if try >= r.policy.MaxRetries {
			break
		}
		if serr := r.policy.Sleep(ctx, try, retryAfter); serr != nil {
			break
		}
	}
	r.stats[shard].errors.Add(1)
	r.observe(shard, "unavailable")
	secs, _ := strconv.Atoi(lastRetryAfter)
	return nil, &ShardUnavailableError{
		Spectrum:   r.name,
		Shard:      shard,
		Node:       loc.Node,
		RetryAfter: secs,
		Err:        lastErr,
	}
}

func (r *RemoteSpectrum) observe(shard int, outcome string) {
	if r.onQuery != nil {
		r.onQuery(shard, outcome)
	}
}

// postJSON sends one query attempt. A transport failure returns err;
// any HTTP answer returns (status, body, retryAfter, nil).
func postJSON(ctx context.Context, httpc *http.Client, target string, body []byte) (int, []byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, "", err
	}
	return resp.StatusCode, data, resp.Header.Get("Retry-After"), nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(bytes.TrimSpace(b))
}

// formatKmer and parseKmer are the wire codec: decimal strings, because
// JSON numbers cannot carry a full 64-bit packed kmer.
func formatKmer(km seq.Kmer) string { return strconv.FormatUint(uint64(km), 10) }

func parseKmer(s string) (seq.Kmer, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad kmer %q: %w", s, err)
	}
	return seq.Kmer(v), nil
}
