// Cluster conformance: the PR 6 spectrum-store conformance suite
// (corruption table + byte-identity) applied to the distributed
// backend. The spectrum is split into shard files, served by real
// daemon handlers over in-process HTTP nodes, and queried through
// RemoteSpectrum — every answer must be byte-identical to the local
// backend over the unsharded source, corruption must be rejected at
// shard load time, and a dead node must surface as a typed
// availability error on exactly its shards while the others keep
// answering.
package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/client"
	"repro/internal/kspectrum"
	"repro/internal/remote"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// testSpectrum builds the deterministic corpus spectrum every cluster
// test shards.
func testSpectrum(t *testing.T) *kspectrum.Spectrum {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 5000, ReadLen: 36, Coverage: 25,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := kspectrum.Build(simulate.Reads(ds.Sim), 11, true)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// cluster is one in-process sharded deployment: N shard files spread
// across node daemons plus the coordinator-side remote backend.
type cluster struct {
	spec    *kspectrum.Spectrum
	part    kspectrum.PrefixPartition
	rs      *remote.RemoteSpectrum
	servers []*httptest.Server
	// ownerNode[shard] is the index into servers of the owning node.
	ownerNode []int
}

// startCluster splits spec across len(nodesShards) node daemons
// (nodesShards[n] lists the shard numbers node n owns — together they
// must cover all shards) and connects a RemoteSpectrum to them.
func startCluster(t *testing.T, spec *kspectrum.Spectrum, shards int, nodesShards [][]int) *cluster {
	t.Helper()
	dir := t.TempDir()
	part, views, err := kspectrum.SplitShards(spec, shards)
	if err != nil {
		t.Fatal(err)
	}
	n := len(views)
	paths := make([]string, n)
	for i, sh := range views {
		paths[i] = filepath.Join(dir, kspectrum.ShardFileName("main", i, n))
		if err := kspectrum.WriteSpectrumFile(paths[i], sh); err != nil {
			t.Fatal(err)
		}
	}
	c := &cluster{spec: spec, part: part, ownerNode: make([]int, n)}
	var urls []string
	for nodeIdx, owned := range nodesShards {
		loaded := make(map[string]*kspectrum.Spectrum)
		meta := make(map[string]remote.ShardInfo)
		for _, i := range owned {
			sh, err := kspectrum.ReadSpectrumFile(paths[i])
			if err != nil {
				t.Fatal(err)
			}
			entry := kspectrum.ShardEntryName("main", i, n)
			loaded[entry] = sh
			meta[entry] = remote.ShardInfo{
				Spectrum: "main", Shard: i, Of: n, Entry: entry,
				K: sh.K, BothStrands: sh.BothStrands, Kmers: sh.Size(),
			}
			c.ownerNode[i] = nodeIdx
		}
		h, err := cli.NewHandler(loaded, cli.ServerOptions{Workers: 1, ShardEntries: meta})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		c.servers = append(c.servers, ts)
		urls = append(urls, ts.URL)
	}
	maps, err := remote.Discover(context.Background(), nil, urls)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := maps["main"]
	if !ok {
		t.Fatalf("discovery found %d spectra, no %q", len(maps), "main")
	}
	c.rs, err = remote.New(m, remote.Options{
		Policy: client.Policy{MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// kmerOnShard finds a spectrum kmer owned by the given shard.
func (c *cluster) kmerOnShard(t *testing.T, shard int) seq.Kmer {
	t.Helper()
	for _, km := range c.spec.Kmers {
		if c.part.ShardOf(km) == shard {
			return km
		}
	}
	t.Fatalf("no spectrum kmer lands on shard %d", shard)
	return 0
}

// TestRemoteSpectrumConformanceIdentity: every query against the
// 2-node, 4-shard cluster must be byte-identical to the local backend
// over the unsharded spectrum — positions (global index), counts,
// membership, batches, and d-neighborhoods in identical order.
func TestRemoteSpectrumConformanceIdentity(t *testing.T) {
	spec := testSpectrum(t)
	c := startCluster(t, spec, 4, [][]int{{0, 1}, {2, 3}})
	local := kspectrum.Local(spec)

	if c.rs.K() != spec.K || c.rs.Len() != spec.Size() || !c.rs.BothStrands() {
		t.Fatalf("remote metadata k=%d len=%d both=%v, want k=%d len=%d both=true",
			c.rs.K(), c.rs.Len(), c.rs.BothStrands(), spec.K, spec.Size())
	}

	// Probe set: a sample of present kmers plus mutated (mostly absent)
	// ones, covering every shard.
	var probes []seq.Kmer
	for i := 0; i < len(spec.Kmers); i += 53 {
		km := spec.Kmers[i]
		probes = append(probes, km, km^3, km^(3<<20))
	}
	for _, km := range probes {
		wantIdx, _ := local.Index(km)
		gotIdx, err := c.rs.Index(km)
		if err != nil {
			t.Fatalf("Index(%v): %v", km, err)
		}
		if gotIdx != wantIdx {
			t.Fatalf("Index(%v) = %d, local %d", km, gotIdx, wantIdx)
		}
		wantCnt, _ := local.Count(km)
		gotCnt, err := c.rs.Count(km)
		if err != nil {
			t.Fatalf("Count(%v): %v", km, err)
		}
		if gotCnt != wantCnt {
			t.Fatalf("Count(%v) = %d, local %d", km, gotCnt, wantCnt)
		}
	}

	// Batched counts in one call.
	wantCounts := make([]uint32, len(probes))
	gotCounts := make([]uint32, len(probes))
	if err := local.CountMany(probes, wantCounts); err != nil {
		t.Fatal(err)
	}
	if err := c.rs.CountMany(probes, gotCounts); err != nil {
		t.Fatal(err)
	}
	for i := range probes {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("CountMany[%d] = %d, local %d", i, gotCounts[i], wantCounts[i])
		}
	}

	// Neighborhoods: same sets in the same ascending order as the local
	// NeighborIndex over the unsharded spectrum.
	ni, err := kspectrum.NewNeighborIndex(spec, 1, min(spec.K, 5))
	if err != nil {
		t.Fatal(err)
	}
	localNeigh := kspectrum.LocalNeighbors(spec, ni)
	for d := 0; d <= 1; d++ {
		for i := 0; i < len(probes); i += 7 {
			km := probes[i]
			want, err := localNeigh.Neighborhood(km, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.rs.Neighborhood(km, d, nil)
			if err != nil {
				t.Fatalf("Neighborhood(%v, %d): %v", km, d, err)
			}
			if len(got) != len(want) {
				t.Fatalf("Neighborhood(%v, %d): %d kmers, local %d", km, d, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("Neighborhood(%v, %d)[%d] = %v, local %v", km, d, j, got[j], want[j])
				}
			}
		}
	}
}

// TestRemoteQueryHonorsContext: a context-bound view of the backend
// must abandon its shard round trips when the context expires. Before
// query() took a context, a stalled node held a coordinator correction
// slot for the full HTTP-client timeout (plus retry backoffs) after the
// requesting client was long gone.
func TestRemoteQueryHonorsContext(t *testing.T) {
	entry := kspectrum.ShardEntryName("main", 0, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/shards", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(remote.ShardsResponse{Shards: []remote.ShardInfo{{
			Spectrum: "main", Shard: 0, Of: 1, Entry: entry,
			K: 11, BothStrands: true, Kmers: 1,
		}}})
	})
	queryStarted := make(chan struct{}, 8)
	unblock := make(chan struct{})
	mux.HandleFunc("/v2/query", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body: the server only watches for a client hang-up
		// (which cancels r.Context) once the request is fully read.
		io.Copy(io.Discard, r.Body)
		select {
		case queryStarted <- struct{}{}:
		default:
		}
		select {
		case <-r.Context().Done(): // the client hung up
		case <-unblock: // test over; let Close drain
		}
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(unblock) })

	maps, err := remote.Discover(context.Background(), nil, []string{ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	// Hour-long backoffs: if cancellation ever stopped short-circuiting
	// the retry sleep, the test would time out instead of passing slowly.
	rs, err := remote.New(maps["main"], remote.Options{
		Policy: client.Policy{MaxRetries: 2, BaseBackoff: time.Hour, MaxBackoff: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	bound := rs.BindContext(ctx)
	start := time.Now()
	counts := make([]uint32, 1)
	err = bound.CountMany([]seq.Kmer{0}, counts)
	if err == nil {
		t.Fatal("CountMany against a stalled node under an expired context answered without error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled query returned after %v; the context was ignored", elapsed)
	}
	select {
	case <-queryStarted:
	default:
		t.Fatal("the query never reached the node; the test stalled before the interesting part")
	}

	// Binding the background context is the identity: no wrapper, no
	// behavior change for callers without a deadline.
	if rs.BindContext(context.Background()) != kspectrum.SpectrumBackend(rs) {
		t.Error("BindContext(Background) wrapped the backend")
	}
}

// TestRemoteRejectsOutOfRangeKmer: kmer values outside the partition
// keyspace must come back as errors from every query form — never an
// out-of-range shard index inside the fan-out goroutines.
func TestRemoteRejectsOutOfRangeKmer(t *testing.T) {
	spec := testSpectrum(t)
	c := startCluster(t, spec, 4, [][]int{{0, 1}, {2, 3}})

	oversized := seq.Kmer(1) << uint(2*spec.K)
	if _, err := c.rs.Index(oversized); err == nil {
		t.Error("Index accepted an out-of-keyspace kmer")
	}
	if _, err := c.rs.Count(oversized); err == nil {
		t.Error("Count accepted an out-of-keyspace kmer")
	}
	if _, err := c.rs.Neighborhood(oversized, 1, nil); err == nil {
		t.Error("Neighborhood accepted an out-of-keyspace kmer")
	}
	counts := make([]uint32, 2)
	if err := c.rs.CountMany([]seq.Kmer{c.kmerOnShard(t, 0), oversized}, counts); err == nil {
		t.Error("CountMany accepted an out-of-keyspace kmer")
	}
	// The backend stays healthy: valid queries still answer.
	km := c.kmerOnShard(t, 1)
	got, err := c.rs.Count(km)
	if err != nil {
		t.Fatalf("valid query after rejections: %v", err)
	}
	if want := spec.Count(km); got != want {
		t.Fatalf("Count(%v) = %d, local %d", km, got, want)
	}
}

// TestShardFilesRejectCorruption: every corruption case of the PR 6
// store conformance table, applied to a shard file, must be rejected at
// shard load time with ErrSpectrumStore — a node can never come up
// serving a mangled shard.
func TestShardFilesRejectCorruption(t *testing.T) {
	spec := testSpectrum(t)
	_, views, err := kspectrum.SplitShards(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Shard 0 stands in for any shard: a valid standalone store.
	path := filepath.Join(dir, kspectrum.ShardFileName("main", 0, 4))
	if err := kspectrum.WriteSpectrumFile(path, views[0]); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kspectrum.ReadSpectrumFile(path); err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	for _, tc := range kspectrum.CorruptionCases(views[0], valid) {
		t.Run(tc.Name, func(t *testing.T) {
			bad := filepath.Join(dir, "bad.kspc")
			if err := os.WriteFile(bad, tc.Data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := kspectrum.ReadSpectrumFile(bad)
			if err == nil {
				t.Fatal("corrupted shard loaded cleanly")
			}
			if !errors.Is(err, kspectrum.ErrSpectrumStore) {
				t.Fatalf("error does not wrap ErrSpectrumStore: %v", err)
			}
		})
	}
}

// TestRemoteShardUnavailable: killing one node must degrade exactly its
// shards — typed *ShardUnavailableError with the shard and node
// identified — while shards on the surviving node keep answering
// byte-identically.
func TestRemoteShardUnavailable(t *testing.T) {
	spec := testSpectrum(t)
	c := startCluster(t, spec, 4, [][]int{{0, 1}, {2, 3}})
	local := kspectrum.Local(spec)

	kmAlive := c.kmerOnShard(t, 0) // node 0
	kmDead := c.kmerOnShard(t, 2)  // node 1

	c.servers[1].Close()

	// The dead node's shard fails with the typed availability error.
	_, err := c.rs.Count(kmDead)
	var sue *remote.ShardUnavailableError
	if !errors.As(err, &sue) {
		t.Fatalf("query against dead node: %v, want *ShardUnavailableError", err)
	}
	if sue.Spectrum != "main" || sue.Shard != 2 || sue.Node != c.servers[1].URL {
		t.Fatalf("error identifies %q shard %d node %s, want main shard 2 node %s",
			sue.Spectrum, sue.Shard, sue.Node, c.servers[1].URL)
	}

	// The surviving node's shards answer exactly as before.
	wantIdx, _ := local.Index(kmAlive)
	gotIdx, err := c.rs.Index(kmAlive)
	if err != nil {
		t.Fatalf("query against live node after peer death: %v", err)
	}
	if gotIdx != wantIdx {
		t.Fatalf("Index(%v) = %d, local %d", kmAlive, gotIdx, wantIdx)
	}

	// A batch spanning both nodes reports the failure (no silent
	// absences) but still fills the live shards' counts.
	kms := []seq.Kmer{kmAlive, kmDead}
	counts := make([]uint32, 2)
	if err := c.rs.CountMany(kms, counts); !errors.As(err, &sue) {
		t.Fatalf("CountMany spanning a dead node: %v, want *ShardUnavailableError", err)
	}
	wantCnt, _ := local.Count(kmAlive)
	if counts[0] != wantCnt {
		t.Fatalf("live-shard count in failed batch = %d, want %d", counts[0], wantCnt)
	}

	// Per-shard stats recorded the failure on shard 2 only.
	stats := c.rs.ShardStats()
	if stats[2].Errors == 0 {
		t.Errorf("shard 2 error counter = 0 after node death")
	}
	if stats[0].Errors != 0 {
		t.Errorf("shard 0 error counter = %d, want 0", stats[0].Errors)
	}
}
