// Package remote implements the distributed spectrum backend: a
// coordinator-side kspectrum.SpectrumBackend that routes kmer queries to
// the daemon nodes owning each prefix shard, merges their answers, and
// surfaces node failures as errors rather than absent kmers. The wire
// protocol is two endpoints every node serves: GET /v2/shards lists the
// shard entries a node owns, POST /v2/query answers batched
// membership/count and d-neighborhood queries against one entry.
package remote

import "fmt"

// Kmers cross the wire as decimal strings, not JSON numbers: a packed
// k=32 kmer occupies 64 bits and JSON numbers lose integer precision
// past 2^53.

// ShardInfo describes one shard entry a node serves, as listed by
// GET /v2/shards.
type ShardInfo struct {
	// Spectrum is the base spectrum name the shard belongs to.
	Spectrum string `json:"spectrum"`
	// Shard and Of locate this shard in the prefix partition (0-based
	// shard number of a power-of-two total).
	Shard int `json:"shard"`
	Of    int `json:"of"`
	// Entry is the node's registry name for the shard
	// (kspectrum.ShardEntryName), the value /v2/query?spectrum= takes.
	Entry string `json:"entry"`
	// K and BothStrands echo the shard store's metadata.
	K           int  `json:"k"`
	BothStrands bool `json:"both_strands"`
	// Kmers is the number of distinct kmers in this shard.
	Kmers int `json:"kmers"`
}

// ShardsResponse is the GET /v2/shards payload.
type ShardsResponse struct {
	Shards []ShardInfo `json:"shards"`
}

// QueryRequest is the POST /v2/query body: a batch of kmers (decimal
// strings) and a neighborhood radius. D == 0 asks membership: the
// response carries per-kmer shard-local indexes (-1 absent) and counts.
// D > 0 asks d-neighborhoods: the response carries, per input kmer, the
// shard's spectrum kmers within Hamming distance D, ascending.
type QueryRequest struct {
	Kmers []string `json:"kmers"`
	D     int      `json:"d,omitempty"`
}

// QueryResponse is the POST /v2/query answer.
type QueryResponse struct {
	// Indexes[i] is the shard-local position of Kmers[i] (-1 when
	// absent); the coordinator adds the shard's global offset. Present
	// for D == 0 queries.
	Indexes []int `json:"indexes,omitempty"`
	// Counts[i] is the occurrence count of Kmers[i] (0 when absent).
	// Present for D == 0 queries.
	Counts []uint32 `json:"counts,omitempty"`
	// Neighbors[i] lists the shard kmers within distance D of Kmers[i],
	// ascending, as decimal strings. Present for D > 0 queries.
	Neighbors [][]string `json:"neighbors,omitempty"`
}

// ShardUnavailableError reports that a shard's owning node could not
// answer within the retry budget — the coordinator's signal to degrade
// that shard's keyspace to 503-with-Retry-After while the rest of the
// spectrum keeps serving. It is an availability error, never a wrong
// answer: correction requests touching the shard fail explicitly.
type ShardUnavailableError struct {
	// Spectrum and Shard identify the unreachable keyspace slice.
	Spectrum string
	Shard    int
	// Node is the owning node's base URL.
	Node string
	// RetryAfter is the node's own recovery estimate in seconds (0 when
	// it sent none); the coordinator forwards it to its clients.
	RetryAfter int
	// Err is the final attempt's failure.
	Err error
}

func (e *ShardUnavailableError) Error() string {
	return fmt.Sprintf("remote: shard %d of spectrum %q unavailable at %s: %v",
		e.Shard, e.Spectrum, e.Node, e.Err)
}

func (e *ShardUnavailableError) Unwrap() error { return e.Err }
