package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/seq"
)

// fakeEngine is a registry probe.
type fakeEngine struct{ name string }

func (f fakeEngine) Name() string               { return f.name }
func (f fakeEngine) Capabilities() Capabilities { return Capabilities{} }
func (f fakeEngine) Correct(ctx context.Context, reads []seq.Read, run *Run) ([]seq.Read, *Result, error) {
	return reads, &Result{Engine: f.name}, nil
}
func (f fakeEngine) CorrectStream(ctx context.Context, open SourceOpener, sink Sink, run *Run) (*Result, error) {
	return &Result{Engine: f.name}, nil
}

func TestRegistryLookup(t *testing.T) {
	Register(fakeEngine{name: "fake-lookup"})
	e, err := Lookup("fake-lookup")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "fake-lookup" {
		t.Errorf("looked up %q", e.Name())
	}
	found := false
	for _, name := range Names() {
		if name == "fake-lookup" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v misses fake-lookup", Names())
	}
}

// TestLookupUnknown: the typed error matches the sentinel and lists the
// registered names — the same message every front end surfaces.
func TestLookupUnknown(t *testing.T) {
	Register(fakeEngine{name: "fake-known"})
	_, err := Lookup("definitely-not-registered")
	if err == nil {
		t.Fatal("lookup of unknown engine succeeded")
	}
	if !errors.Is(err, ErrUnknownEngine) {
		t.Errorf("error %v does not match ErrUnknownEngine", err)
	}
	var ue *UnknownEngineError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T is not *UnknownEngineError", err)
	}
	if ue.Name != "definitely-not-registered" {
		t.Errorf("UnknownEngineError.Name = %q", ue.Name)
	}
	if !strings.Contains(err.Error(), "fake-known") {
		t.Errorf("error %q does not list registered engines", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeEngine{name: "fake-dup"})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(fakeEngine{name: "fake-dup"})
}

func TestRunOptions(t *testing.T) {
	r := NewRun(
		WithK(13),
		WithWorkers(4),
		WithShards(8),
		WithGenomeLen(100000),
		WithMemoryBudget(1<<20),
		WithTempDir("/tmp/x"),
		WithSpectrumPath("in.kspc"),
		WithSaveSpectrumPath("out.kspc"),
	)
	if r.K != 13 || r.Workers != 4 || r.Shards != 8 || r.GenomeLen != 100000 ||
		r.MemoryBudget != 1<<20 || r.TempDir != "/tmp/x" ||
		r.SpectrumPath != "in.kspc" || r.SaveSpectrumPath != "out.kspc" {
		t.Errorf("options not applied: %+v", r)
	}
}

func TestRunExt(t *testing.T) {
	r := NewRun()
	if _, ok := r.Ext("x"); ok {
		t.Error("empty run has ext")
	}
	r.SetExt("x", 42)
	v, ok := r.Ext("x")
	if !ok || v.(int) != 42 {
		t.Errorf("Ext = %v, %v", v, ok)
	}
	// nil options are ignored (engine packages may return nil for
	// no-op settings).
	r.Apply(nil, WithK(5))
	if r.K != 5 {
		t.Error("Apply after nil option dropped the real one")
	}
}

func TestRejectSpectrumOptions(t *testing.T) {
	if err := NewRun().RejectSpectrumOptions("x"); err != nil {
		t.Errorf("zero run rejected: %v", err)
	}
	if err := NewRun(WithSpectrumPath("a.kspc")).RejectSpectrumOptions("x"); err == nil {
		t.Error("spectrum path accepted by spectrum-free engine")
	}
	if err := NewRun(WithSaveSpectrumPath("a.kspc")).RejectSpectrumOptions("x"); err == nil {
		t.Error("save path accepted by spectrum-free engine")
	}
}

func TestCapabilitiesServesSpectrum(t *testing.T) {
	cases := []struct {
		caps Capabilities
		k    int
		want bool
	}{
		{Capabilities{}, 11, false},
		{Capabilities{SpectrumReuse: true}, 31, true},
		{Capabilities{SpectrumReuse: true, MaxSpectrumK: 16}, 16, true},
		{Capabilities{SpectrumReuse: true, MaxSpectrumK: 16}, 17, false},
	}
	for _, tc := range cases {
		if got := tc.caps.ServesSpectrum(tc.k); got != tc.want {
			t.Errorf("%+v.ServesSpectrum(%d) = %v want %v", tc.caps, tc.k, got, tc.want)
		}
	}
}

func TestCountChangedBases(t *testing.T) {
	mk := func(seqs ...string) []seq.Read {
		reads := make([]seq.Read, len(seqs))
		for i, s := range seqs {
			reads[i] = seq.Read{Seq: []byte(s)}
		}
		return reads
	}
	cases := []struct {
		name  string
		orig  []seq.Read
		corr  []seq.Read
		want  int
		reads int
	}{
		{"identical", mk("ACGT", "TTTT"), mk("ACGT", "TTTT"), 0, 0},
		{"one base", mk("ACGT"), mk("ACTT"), 1, 1},
		{"several", mk("AAAA", "CCCC"), mk("ATAA", "GGGC"), 4, 2},
		{"shortened", mk("ACGTACGT"), mk("ACGT"), 4, 1},
		{"lengthened", mk("ACGT"), mk("ACGTAA"), 2, 1},
		{"fewer reads", mk("ACGT", "TTTT"), mk("ACGT"), 4, 1},
		{"extra reads", mk("ACGT"), mk("ACGT", "GG"), 2, 1},
	}
	for _, tc := range cases {
		if got := CountChangedBases(tc.orig, tc.corr); got != tc.want {
			t.Errorf("%s: CountChangedBases = %d want %d", tc.name, got, tc.want)
		}
		if got := CountChanged(tc.orig, tc.corr); got != tc.reads {
			t.Errorf("%s: CountChanged = %d want %d", tc.name, got, tc.reads)
		}
	}
}
