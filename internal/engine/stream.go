package engine

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/seq"
)

// Source yields successive chunks of reads; it is the package-neutral
// chunk contract every pipeline stage shares (fastq.ChunkReader satisfies
// it).
type Source = seq.ChunkSource

// SourceOpener opens a fresh pass over the input. The correctors take two
// passes (count, then correct), so the source must be re-openable.
type SourceOpener func() (Source, error)

// Sink receives (original, corrected) chunk pairs in input order — the
// single streaming output contract unifying the correctors' historical
// per-package callback shapes.
type Sink interface {
	WriteChunk(orig, corrected []seq.Read) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(orig, corrected []seq.Read) error

// WriteChunk calls f.
func (f SinkFunc) WriteChunk(orig, corrected []seq.Read) error { return f(orig, corrected) }

// StreamChunks drives one pass over a freshly opened source, handing
// every chunk to fn and closing the source on all return paths. The
// context is checked before each chunk, so a cancelled ctx stops the pass
// at the next chunk boundary with ctx.Err().
func StreamChunks(ctx context.Context, open SourceOpener, fn func([]seq.Read) error) error {
	return seq.StreamChunksCtx(ctx, seq.SourceOpener(open), fn)
}

// CollectReads drains a source into memory — the buffering fallback for
// engines without a streaming path. Cancellation stops the drain at the
// next chunk boundary.
func CollectReads(ctx context.Context, open SourceOpener) ([]seq.Read, error) {
	var reads []seq.Read
	err := StreamChunks(ctx, open, func(chunk []seq.Read) error {
		reads = append(reads, chunk...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reads, nil
}

// CountChanged tallies the reads whose sequence differs between the
// original and corrected chunk — the shared throughput accounting of
// every streaming front end. An engine that returns a different number
// of reads than it was given has every unpaired read counted as changed
// rather than faulting the caller.
func CountChanged(orig, corrected []seq.Read) int {
	n := min(len(orig), len(corrected))
	changed := len(orig) - n + len(corrected) - n
	for i := 0; i < n; i++ {
		if !bytes.Equal(orig[i].Seq, corrected[i].Seq) {
			changed++
		}
	}
	return changed
}

// CountChangedBases tallies the individual bases rewritten between the
// original and corrected chunk. Reads whose length changed (trimming
// engines) count every position past the common prefix as changed, and
// unpaired reads — an engine returning a different read count — count
// every base rather than faulting the caller.
func CountChangedBases(orig, corrected []seq.Read) int {
	changed := 0
	pairs := min(len(orig), len(corrected))
	for i := 0; i < pairs; i++ {
		a, b := orig[i].Seq, corrected[i].Seq
		if bytes.Equal(a, b) {
			continue
		}
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for j := 0; j < n; j++ {
			if a[j] != b[j] {
				changed++
			}
		}
		changed += len(a) - n + len(b) - n
	}
	for i := pairs; i < len(orig); i++ {
		changed += len(orig[i].Seq)
	}
	for i := pairs; i < len(corrected); i++ {
		changed += len(corrected[i].Seq)
	}
	return changed
}

// SampleReads is the bounded leading-read sample engines use to derive
// data-dependent parameters (e.g. Reptile's Qc quality quantile): large
// enough to smooth per-tile quality drift, small enough to stay a
// footnote in the memory budget.
const SampleReads = 20000

// Sample collects up to SampleReads leading reads from a fresh pass over
// the source. An empty input is an error — there is nothing to derive
// parameters from.
func Sample(ctx context.Context, open SourceOpener) ([]seq.Read, error) {
	var sample []seq.Read
	err := StreamChunks(ctx, open, func(chunk []seq.Read) error {
		sample = append(sample, chunk...)
		if len(sample) >= SampleReads {
			return errSampleFull
		}
		return nil
	})
	if err != nil && err != errSampleFull {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("engine: empty input stream")
	}
	return sample, nil
}

// errSampleFull is Sample's internal early-exit sentinel.
var errSampleFull = fmt.Errorf("engine: sample full")
