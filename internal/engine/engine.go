package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/kspectrum"
	"repro/internal/seq"
)

// Capabilities declares what an engine can do, so front ends route
// requests by declaration instead of hand-rolled per-algorithm checks
// (the kserve daemon's historical k>16 special case for Reptile is now
// MaxSpectrumK).
type Capabilities struct {
	// Streaming reports a true out-of-core streaming path: two chunked
	// passes, bounded memory. Engines without one still satisfy
	// CorrectStream by buffering the input.
	Streaming bool
	// SpectrumReuse reports that the engine can adopt a preloaded
	// k-spectrum (WithSpectrum / WithSpectrumPath) instead of counting
	// the input.
	SpectrumReuse bool
	// MaxSpectrumK is the largest spectrum k the engine can operate on
	// (0 = no engine-specific limit beyond seq.MaxK). Reptile's packed
	// 2k-base tiles cap it at seq.MaxK/2.
	MaxSpectrumK int
	// RemoteSpectrum reports that the engine's service path can run
	// against a kspectrum.SpectrumBackend (Run.Backend) instead of a
	// local *Spectrum — the property the coordinator's distributed
	// serving mode routes on. Engines that need full column access
	// (REDEEM fits its model over every spectrum entry) leave it false
	// and stay colocated with their spectrum.
	RemoteSpectrum bool
}

// ServesSpectrum reports whether the engine can serve requests against a
// preloaded spectrum of the given k. Engines that do not reuse spectra
// never do; the rest are bounded by MaxSpectrumK.
func (c Capabilities) ServesSpectrum(k int) bool {
	if !c.SpectrumReuse {
		return false
	}
	return c.MaxSpectrumK == 0 || k <= c.MaxSpectrumK
}

// Result reports one correction run. Engines fill the fields they have;
// the rest stay zero.
type Result struct {
	// Engine is the name of the engine that ran.
	Engine string
	// Duration covers the engine's whole run, including spectrum
	// load/save.
	Duration time.Duration
	// Reads and Changed tally the streaming pipeline's throughput: reads
	// processed and reads whose sequence was altered (both 0 for the
	// in-memory Correct, whose caller holds the slices).
	Reads   int
	Changed int
	// Threshold is REDEEM's inferred kmer threshold.
	Threshold float64
	// Corrections is SHREC's applied-change count.
	Corrections int
	// Spectrum is the k-spectrum the run built or adopted (nil for
	// engines without one).
	Spectrum *kspectrum.Spectrum
	// Summary is a one-line, engine-specific description of the resolved
	// parameters and outcome, suitable for a CLI status line.
	Summary string
}

// Engine is the pluggable correction algorithm contract.
//
// Both correction entry points honor ctx: cancellation aborts worker
// pools and out-of-core spill/merge loops, and the streaming pipeline
// stops at the next chunk boundary, returning ctx.Err().
type Engine interface {
	// Name is the registry key ("reptile", "redeem", ...).
	Name() string
	// Capabilities declares the engine's routing-relevant properties.
	Capabilities() Capabilities
	// Correct runs the engine over an in-memory read set and returns
	// corrected copies; the input is not modified.
	Correct(ctx context.Context, reads []seq.Read, run *Run) ([]seq.Read, *Result, error)
	// CorrectStream runs the engine over a re-openable chunked source
	// (the correctors take two passes) and hands (original, corrected)
	// chunk pairs to the sink in input order.
	CorrectStream(ctx context.Context, open SourceOpener, sink Sink, run *Run) (*Result, error)
}

// ChunkCorrector corrects independent read chunks against shared,
// immutable per-corpus state. Implementations are safe for concurrent
// use.
type ChunkCorrector interface {
	CorrectChunk(ctx context.Context, reads []seq.Read, workers int) ([]seq.Read, error)
}

// Servicer is implemented by engines that can amortize expensive
// per-corpus state (spectrum indexes, fitted models) across many
// independent correction requests — the correction-as-a-service form.
// NewService resolves the run (typically carrying WithSpectrum) once and
// returns the shared corrector.
type Servicer interface {
	NewService(run *Run) (ChunkCorrector, error)
}

// ErrUnknownEngine is the sentinel matched by errors.Is for lookups of
// unregistered engine names.
var ErrUnknownEngine = errors.New("unknown engine")

// UnknownEngineError is the typed lookup failure: it names the missing
// engine and lists what is registered, and matches ErrUnknownEngine.
type UnknownEngineError struct {
	// Name is the engine name that failed to resolve.
	Name string
	// Known lists the registered engine names, sorted.
	Known []string
}

func (e *UnknownEngineError) Error() string {
	if len(e.Known) == 0 {
		return fmt.Sprintf("engine: unknown engine %q (none registered)", e.Name)
	}
	return fmt.Sprintf("engine: unknown engine %q (registered: %s)", e.Name, strings.Join(e.Known, ", "))
}

func (e *UnknownEngineError) Unwrap() error { return ErrUnknownEngine }

// registry is the process-wide engine table. Engines self-register from
// their package init functions, so importing an engine package is what
// plugs it in.
var registry struct {
	mu sync.RWMutex
	m  map[string]Engine
}

// Register adds an engine under its Name. Registering an empty name or a
// duplicate is a programming error and panics, matching the behavior of
// other Go registries (database/sql, image): it can only happen at init
// time, and a silent overwrite would make correction results depend on
// import order.
func Register(e Engine) {
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]Engine)
	}
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("engine: Register called twice for %q", name))
	}
	registry.m[name] = e
}

// Lookup resolves a registered engine by name. Unknown names (including
// the empty string) yield an *UnknownEngineError matching
// ErrUnknownEngine that lists the registered names.
func Lookup(name string) (Engine, error) {
	registry.mu.RLock()
	e, ok := registry.m[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, &UnknownEngineError{Name: name, Known: Names()}
	}
	return e, nil
}

// Names lists the registered engine names, sorted.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Engines snapshots the registered engines, sorted by name.
func Engines() []Engine {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Engine, 0, len(registry.m))
	for _, e := range registry.m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
