// Package engine is the unified, pluggable correction API of the
// repository — the single seam behind which the dissertation's correction
// algorithms (Reptile, REDEEM, SHREC) and any future engine live. It is
// written as a promotable public API: nothing in it references a concrete
// algorithm, and every consumer (the core facade, the repro CLI, the
// kserve daemon, examples, benchmarks) programs against the same three
// concepts:
//
//   - Engine: the algorithm contract. An engine has a Name, declares its
//     Capabilities (streaming path? spectrum reuse? largest servable
//     spectrum k?), and corrects either a batch of in-memory reads
//     (Correct) or an arbitrarily large input through the canonical
//     chunked streaming contract (CorrectStream). Both entry points take
//     a context.Context and honor cancellation: a cancelled context
//     aborts the worker pools, the out-of-core spill/merge loops, and the
//     chunk pipeline at the next chunk boundary.
//
//   - Registry: engines self-register in an init function
//     (engine.Register) and are retrieved by name (engine.Lookup).
//     Looking up an unknown name yields an *UnknownEngineError wrapping
//     ErrUnknownEngine that lists the registered engine names, so every
//     front end — CLI flag, HTTP query parameter, facade option — reports
//     the same actionable error.
//
//   - Run: the per-invocation configuration, built from functional
//     options. Cross-engine knobs live here (WithK, WithWorkers,
//     WithShards, WithMemoryBudget, WithGenomeLen, WithSpectrum,
//     WithSpectrumPath, WithSaveSpectrumPath, WithTempDir); engine
//     packages contribute their own options (reptile.WithD,
//     redeem.WithErrorRate, shrec.WithConfig, ...) that tuck
//     engine-specific payloads into the Run's extension slots. A Run is
//     inert data: engines resolve it against their defaults at call time,
//     so the zero Run means "derive everything from the data", exactly
//     like the historical facade.
//
// Streaming uses one chunk-shaped contract for every engine: a Source
// yields successive []seq.Read chunks (SourceOpener re-opens it, because
// the correctors take two passes), and a Sink receives (original,
// corrected) chunk pairs in input order. Engines without a true streaming
// path (SHREC) satisfy the same contract by buffering, so callers never
// special-case.
//
// Engines that can amortize per-corpus state across many independent
// requests additionally implement Servicer: NewService builds a shared,
// concurrency-safe ChunkCorrector (the correction-as-a-service form used
// by the kserve daemon's /v2 endpoints).
package engine
