package engine_test

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

// endlessSource yields the same chunk forever and cancels the run's
// context after cancelAfter chunks — so only context-awareness can stop a
// pass over it.
type endlessSource struct {
	chunk       []seq.Read
	delivered   *atomic.Int64
	cancelAfter int64
	cancel      context.CancelFunc
}

func (s *endlessSource) Next() ([]seq.Read, error) {
	if n := s.delivered.Add(1); n == s.cancelAfter {
		s.cancel()
	}
	return s.chunk, nil
}

func (s *endlessSource) Close() error { return nil }

// testChunk builds a small simulated read chunk.
func testChunk(t *testing.T) []seq.Read {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "cancel", GenomeLen: 4000, ReadLen: 36, Coverage: 10,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return simulate.Reads(ds.Sim)
}

// TestCorrectStreamCancel is the acceptance test of the context-aware
// streaming contract: cancelling the context mid-stream aborts
// CorrectStream promptly — within one chunk boundary, with ctx.Err() —
// for every registered engine, and leaks no goroutines. Run under -race
// (CI does).
func TestCorrectStreamCancel(t *testing.T) {
	chunk := testChunk(t)
	// Explicit reptile params so the adapter skips its leading-sample
	// pass (which would legitimately consume extra chunks).
	rp := reptile.DefaultParams(chunk, 4000)

	engines := []struct {
		name string
		opts []engine.Option
	}{
		{reptile.EngineName, []engine.Option{reptile.WithParams(rp)}},
		{redeem.EngineName, nil},
		{shrec.EngineName, nil},
	}
	for _, tc := range engines {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := engine.Lookup(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const cancelAfter = 3
			var delivered atomic.Int64
			open := func() (engine.Source, error) {
				return &endlessSource{chunk: chunk, delivered: &delivered, cancelAfter: cancelAfter, cancel: cancel}, nil
			}
			sink := engine.SinkFunc(func(orig, corrected []seq.Read) error { return nil })

			done := make(chan error, 1)
			go func() {
				_, err := eng.CorrectStream(ctx, open, sink, engine.NewRun(tc.opts...))
				done <- err
			}()
			select {
			case err = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("CorrectStream did not return after cancellation")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("CorrectStream error = %v, want ctx.Err()", err)
			}
			// Promptness: the pass stops at the next chunk boundary, so at
			// most one further chunk is pulled after the cancelling one.
			if n := delivered.Load(); n > cancelAfter+1 {
				t.Errorf("source delivered %d chunks after cancel at %d — not within a chunk boundary", n, cancelAfter)
			}
			// No leaked goroutines: the worker pools and the merge loops
			// must have drained. Allow the runtime a moment to retire them.
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if after := runtime.NumGoroutine(); after > before+2 {
				t.Errorf("goroutines: %d before, %d after cancellation", before, after)
			}
		})
	}
}

// TestCorrectCancelBatch: the in-memory entry point honors cancellation
// inside its worker pool too.
func TestCorrectCancelBatch(t *testing.T) {
	chunk := testChunk(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the pool must not do the work
	eng, err := engine.Lookup(reptile.EngineName)
	if err != nil {
		t.Fatal(err)
	}
	rp := reptile.DefaultParams(chunk, 4000)
	_, _, err = eng.Correct(ctx, chunk, engine.NewRun(reptile.WithParams(rp)))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Correct error = %v, want ctx.Err()", err)
	}
}

// TestStreamChunksCancel: the shared chunk driver itself stops at the
// boundary.
func TestStreamChunksCancel(t *testing.T) {
	chunk := testChunk(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	open := func() (engine.Source, error) {
		return &endlessSource{chunk: chunk, delivered: &delivered, cancelAfter: 2, cancel: cancel}, nil
	}
	err := engine.StreamChunks(ctx, open, func([]seq.Read) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("StreamChunks error = %v, want ctx.Err()", err)
	}
	if n := delivered.Load(); n > 3 {
		t.Errorf("delivered %d chunks after cancel at 2", n)
	}
}

// TestCollectReadsEOF exercises the buffering helper on a finite source.
func TestCollectReadsEOF(t *testing.T) {
	chunk := testChunk(t)
	served := false
	open := func() (engine.Source, error) {
		served = false
		return sourceFunc(func() ([]seq.Read, error) {
			if served {
				return nil, io.EOF
			}
			served = true
			return chunk, nil
		}), nil
	}
	reads, err := engine.CollectReads(context.Background(), open)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != len(chunk) {
		t.Errorf("collected %d reads want %d", len(reads), len(chunk))
	}
}

// sourceFunc adapts a closure to the Source contract.
type sourceFunc func() ([]seq.Read, error)

func (f sourceFunc) Next() ([]seq.Read, error) { return f() }
func (f sourceFunc) Close() error              { return nil }
