package engine

import (
	"fmt"

	"repro/internal/kspectrum"
)

// Run is one correction invocation's configuration, built from functional
// options. It replaces the historical CorrectOptions field jungle: the
// cross-engine knobs are fields here, engine-specific settings ride in
// extension slots filled by the engine packages' own options
// (reptile.WithD, redeem.WithErrorRate, ...). The zero Run is valid and
// means "derive everything from the data".
type Run struct {
	// K is the kmer length (0 = engine default / data-derived /
	// adopted from a preloaded spectrum).
	K int
	// Workers bounds parallelism; <= 0 uses all cores (engines may
	// document exceptions, e.g. SHREC's opt-in parallel trie build).
	Workers int
	// Shards is the kmer-space partition count of the sharded spectrum
	// engine; <= 0 derives it from the worker count.
	Shards int
	// GenomeLen is the (estimated) genome length used for parameter
	// selection; 0 means unknown.
	GenomeLen int
	// MemoryBudget, when positive, bounds the resident size of the
	// k-spectrum accumulators by spilling oversized shards to sorted
	// temp-file runs. 0 keeps everything in memory.
	MemoryBudget int64
	// TempDir hosts out-of-core spill files ("" = os.TempDir()).
	TempDir string
	// CheckpointDir, when set, makes spectrum counting crash-safe: runs
	// and a read-cursor manifest live durably in this directory, and a
	// killed build resumes from the newest checkpoint when Resume is
	// also set (see kspectrum.StreamOptions).
	CheckpointDir string
	// Resume adopts the manifest already in CheckpointDir, skipping the
	// reads it covers.
	Resume bool
	// CheckpointEvery is the read interval between automatic checkpoints
	// (<= 0 = the kspectrum default).
	CheckpointEvery int64
	// Spectrum, when non-nil, is a preloaded k-spectrum the engine
	// adopts instead of counting the input.
	Spectrum *kspectrum.Spectrum
	// Backend, when non-nil (and Spectrum is nil), is a pluggable
	// spectrum query backend — typically a remote, sharded spectrum —
	// that engines with Capabilities.RemoteSpectrum adopt for their
	// service path. Engines asserting richer access (neighborhoods)
	// type-assert kspectrum.NeighborSource on it.
	Backend kspectrum.SpectrumBackend
	// SpectrumPath, when set, loads the spectrum from the persistent
	// store instead. The stored k is authoritative: an explicit
	// disagreeing k is an error, an unset k adopts it.
	SpectrumPath string
	// SpectrumMode selects how SpectrumPath is materialized: the zero
	// value SpectrumMapped serves queries zero-copy off a read-only
	// memory mapping (the default for read-only use — instant load,
	// integrity checks deferred per bucket / to the first full scan);
	// SpectrumCopied decodes into fresh columns with eager whole-file
	// validation.
	SpectrumMode SpectrumMode
	// SaveSpectrumPath, when set, persists the run's spectrum after
	// correction for reuse via SpectrumPath.
	SaveSpectrumPath string

	// ext holds engine-specific payloads keyed by engine name; see
	// SetExt/Ext.
	ext map[string]any
}

// Option mutates a Run under construction.
type Option func(*Run)

// NewRun builds a Run from functional options.
func NewRun(opts ...Option) *Run {
	r := &Run{}
	r.Apply(opts...)
	return r
}

// Apply applies further options to an existing Run.
func (r *Run) Apply(opts ...Option) {
	for _, opt := range opts {
		if opt != nil {
			opt(r)
		}
	}
}

// SetExt stores an engine-specific payload under key (by convention the
// engine name). Engine packages use it from their own options; callers
// never touch it directly.
func (r *Run) SetExt(key string, v any) {
	if r.ext == nil {
		r.ext = make(map[string]any)
	}
	r.ext[key] = v
}

// Ext retrieves the engine-specific payload stored under key.
func (r *Run) Ext(key string) (any, bool) {
	v, ok := r.ext[key]
	return v, ok
}

// WithK sets the kmer length (0 = engine default / data-derived).
func WithK(k int) Option { return func(r *Run) { r.K = k } }

// WithWorkers bounds parallelism (<= 0 = all cores).
func WithWorkers(n int) Option { return func(r *Run) { r.Workers = n } }

// WithShards sets the spectrum shard count (<= 0 = derive from workers).
func WithShards(n int) Option { return func(r *Run) { r.Shards = n } }

// WithGenomeLen sets the estimated genome length for parameter selection.
func WithGenomeLen(n int) Option { return func(r *Run) { r.GenomeLen = n } }

// WithMemoryBudget bounds the spectrum accumulators' resident bytes
// through the out-of-core engine (0 = unlimited, in-memory).
func WithMemoryBudget(b int64) Option { return func(r *Run) { r.MemoryBudget = b } }

// WithTempDir hosts out-of-core spill files ("" = os.TempDir()).
func WithTempDir(dir string) Option { return func(r *Run) { r.TempDir = dir } }

// WithCheckpointDir makes spectrum counting crash-safe, persisting runs
// and a read-cursor manifest in dir ("" = no checkpointing).
func WithCheckpointDir(dir string) Option { return func(r *Run) { r.CheckpointDir = dir } }

// WithResume adopts the manifest already in the checkpoint directory,
// re-counting only the reads past its cursor.
func WithResume(resume bool) Option { return func(r *Run) { r.Resume = resume } }

// WithCheckpointEvery sets the read interval between automatic
// checkpoints (<= 0 = the kspectrum default).
func WithCheckpointEvery(n int64) Option { return func(r *Run) { r.CheckpointEvery = n } }

// WithSpectrum supplies a preloaded in-memory spectrum the engine adopts
// instead of counting the input.
func WithSpectrum(spec *kspectrum.Spectrum) Option { return func(r *Run) { r.Spectrum = spec } }

// WithSpectrumBackend supplies a pluggable spectrum query backend (local
// adapter or remote shard router) for engines whose service path
// declares Capabilities.RemoteSpectrum.
func WithSpectrumBackend(b kspectrum.SpectrumBackend) Option {
	return func(r *Run) { r.Backend = b }
}

// SpectrumMode selects how a persisted spectrum is materialized by
// WithSpectrumPath / LoadSpectrumForK.
type SpectrumMode int

const (
	// SpectrumMapped (the default) opens the store as a read-only memory
	// mapping: load is O(1) regardless of spectrum size, N processes
	// share one copy of page cache, and integrity checks run lazily —
	// per prefix bucket on first touch, whole-file CRC on the first full
	// scan (kspectrum.OpenMapped). On platforms without mmap it falls
	// back to the copying reader.
	SpectrumMapped SpectrumMode = iota
	// SpectrumCopied decodes the store into freshly allocated columns,
	// validating ordering and the whole-file CRC eagerly before anything
	// serves — the historical behavior; still right when the file may be
	// replaced underneath a long-lived process or eager fail-fast
	// loading matters more than startup latency.
	SpectrumCopied
)

// WithSpectrumPath loads the spectrum from the persistent store instead
// of counting the input. The stored k is authoritative. The load mode
// defaults to SpectrumMapped; combine with WithSpectrumMode to override.
func WithSpectrumPath(path string) Option { return func(r *Run) { r.SpectrumPath = path } }

// WithSpectrumMode selects how WithSpectrumPath materializes the store:
// zero-copy mapped (default) or eagerly-validated copy.
func WithSpectrumMode(m SpectrumMode) Option { return func(r *Run) { r.SpectrumMode = m } }

// WithSaveSpectrumPath persists the run's spectrum after correction.
func WithSaveSpectrumPath(path string) Option { return func(r *Run) { r.SaveSpectrumPath = path } }

// LoadSpectrumForK loads a persisted spectrum in the given mode and
// enforces the single k-authority rule shared by every front end: the
// stored k is authoritative, so an explicit requested k (non-zero) that
// disagrees with it is an error, while explicitK == 0 defers to the
// store (the caller then adopts spec.K). Keeping the rule here means the
// CLI, the facade and the daemon cannot drift apart.
func LoadSpectrumForK(path string, explicitK int, mode SpectrumMode) (*kspectrum.Spectrum, error) {
	var spec *kspectrum.Spectrum
	var err error
	if mode == SpectrumCopied {
		spec, err = kspectrum.ReadSpectrumFile(path)
	} else {
		spec, err = kspectrum.OpenMapped(path)
	}
	if err != nil {
		return nil, err
	}
	if explicitK != 0 && explicitK != spec.K {
		spec.Close()
		return nil, fmt.Errorf("engine: requested k=%d disagrees with %s (stored k=%d)", explicitK, path, spec.K)
	}
	return spec, nil
}

// ResolveSpectrum resolves the run's spectrum inputs: the preloaded
// in-memory spectrum if set, else the persistent store at SpectrumPath
// under the k-authority rule, else nil (count the input). explicitK is
// the caller's explicitly-requested k, 0 when unset.
func (r *Run) ResolveSpectrum(explicitK int) (*kspectrum.Spectrum, error) {
	if r.Spectrum != nil {
		return r.Spectrum, nil
	}
	if r.SpectrumPath == "" {
		return nil, nil
	}
	return LoadSpectrumForK(r.SpectrumPath, explicitK, r.SpectrumMode)
}

// SaveSpectrum persists spec when SaveSpectrumPath is set; a no-op
// otherwise.
func (r *Run) SaveSpectrum(spec *kspectrum.Spectrum) error {
	if r.SaveSpectrumPath == "" {
		return nil
	}
	return kspectrum.WriteSpectrumFile(r.SaveSpectrumPath, spec)
}

// RejectSpectrumOptions is the guard for engines without a k-spectrum
// (Capabilities.SpectrumReuse == false): any spectrum option on the run
// is a configuration error reported before work starts.
func (r *Run) RejectSpectrumOptions(engineName string) error {
	if r.Spectrum != nil || r.SpectrumPath != "" || r.SaveSpectrumPath != "" {
		return fmt.Errorf("engine: %q has no k-spectrum to load or save", engineName)
	}
	return nil
}
