//go:build unix

package faultinject

import (
	"os"
	"syscall"
)

// killSelf simulates a crash with SIGKILL: no deferred cleanup runs, no
// buffers flush — the process simply stops, exactly like kill -9 or a
// power cut from the filesystem's point of view (modulo the page cache).
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL is not deliverable to a stopped process instantaneously;
	// block rather than return and let the "crashed" code continue.
	select {}
}
