//go:build !unix

package faultinject

import "os"

// killSelf approximates a crash where SIGKILL is unavailable: os.Exit
// also skips deferred cleanup and user-space buffer flushes. Exit code
// 137 matches the shell's encoding of a SIGKILL death.
func killSelf() {
	os.Exit(137)
}
