package faultinject

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsPassthrough(t *testing.T) {
	var buf bytes.Buffer
	if w := Writer("x", &buf); w != io.Writer(&buf) {
		t.Error("disabled Writer did not return its argument")
	}
	r := strings.NewReader("abc")
	if got := Reader("x", r); got != io.Reader(r) {
		t.Error("disabled Reader did not return its argument")
	}
	f, err := Create("x", filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(*os.File); !ok {
		t.Errorf("disabled Create returned %T, want *os.File", f)
	}
	f.Close()
	if err := Check("x", OpWrite); err != nil {
		t.Errorf("disabled Check = %v", err)
	}
}

func TestNthAndSticky(t *testing.T) {
	defer Enable(&Rule{Site: "s", Op: OpWrite, Nth: 2})()
	var buf bytes.Buffer
	w := Writer("s", &buf)
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := w.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: err = %v, want ErrInjected", err)
	}
	if _, err := w.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 (non-sticky rule must burn out): %v", err)
	}

	defer Enable(&Rule{Site: "s", Op: OpWrite, Nth: 2, Sticky: true})()
	w = Writer("s", &buf)
	w.Write([]byte("a"))
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("b")); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky write %d: err = %v, want ErrInjected", i+2, err)
		}
	}
}

func TestShortWriteLies(t *testing.T) {
	defer Enable(&Rule{Site: "s", Op: OpWrite, Short: 2})()
	var buf bytes.Buffer
	n, err := Writer("s", &buf).Write([]byte("hello"))
	if n != 2 || err != nil {
		t.Fatalf("short write = (%d, %v), want (2, nil)", n, err)
	}
	if buf.Len() != 0 {
		t.Errorf("short write leaked %d bytes to the sink", buf.Len())
	}
}

func TestTornWriteLandsPrefix(t *testing.T) {
	defer Enable(&Rule{Site: "s", Op: OpWrite, Torn: 3})()
	var buf bytes.Buffer
	n, err := Writer("s", &buf).Write([]byte("hello"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = (%d, %v), want (3, ErrInjected)", n, err)
	}
	if got := buf.String(); got != "hel" {
		t.Errorf("torn write landed %q, want %q", got, "hel")
	}
}

func TestReadError(t *testing.T) {
	boom := errors.New("EIO")
	defer Enable(&Rule{Site: "s", Op: OpRead, Err: boom})()
	r := Reader("s", strings.NewReader("abc"))
	if _, err := r.Read(make([]byte, 3)); !errors.Is(err, boom) {
		t.Fatalf("read err = %v, want EIO", err)
	}
}

func TestSiteAndOpFiltering(t *testing.T) {
	defer Enable(&Rule{Site: "only", Op: OpSync})()
	if err := Check("other", OpSync); err != nil {
		t.Errorf("mismatched site fired: %v", err)
	}
	if err := Check("only", OpWrite); err != nil {
		t.Errorf("mismatched op fired: %v", err)
	}
	if err := Check("only", OpSync); err == nil {
		t.Error("matching site+op did not fire")
	}
}

func TestFileDecorator(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	defer Enable(&Rule{Site: "f", Op: OpSync})()
	f, err := Create("f", path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "data" {
		t.Fatalf("file content = %q, %v", got, err)
	}
}

func TestEnableFromEnv(t *testing.T) {
	if err := EnableFromEnv("spill.write:write:nth=2:torn=5,kspc.sync:sync:err=EIO"); err != nil {
		t.Fatal(err)
	}
	defer active.Store(nil)
	p := active.Load()
	if p == nil || len(p.rules) != 2 {
		t.Fatalf("plan = %+v, want 2 rules", p)
	}
	r := p.rules[0]
	if r.Site != "spill.write" || r.Op != OpWrite || r.Nth != 2 || r.Torn != 5 {
		t.Errorf("rule 0 = %+v", r)
	}
	r = p.rules[1]
	if r.Site != "kspc.sync" || r.Op != OpSync || r.Err == nil || r.Err.Error() != "EIO" {
		t.Errorf("rule 1 = %+v", r)
	}

	for _, bad := range []string{
		"justasite",
		"s:badop",
		"s:write:nth=0",
		"s:write:short=x",
		"s:write:torn=1:kill", // two actions
		"s:write:frob=1",
	} {
		if err := EnableFromEnv(bad); err == nil {
			t.Errorf("EnableFromEnv(%q) accepted a bad spec", bad)
		}
	}
	if err := EnableFromEnv("  "); err != nil {
		t.Errorf("blank spec: %v", err)
	}
}

func TestDelayProceeds(t *testing.T) {
	defer Enable(&Rule{Site: "s", Op: OpWrite, Delay: 10 * time.Millisecond, Sticky: true})()
	var buf bytes.Buffer
	start := time.Now()
	n, err := Writer("s", &buf).Write([]byte("slow"))
	if n != 4 || err != nil {
		t.Fatalf("delayed write = (%d, %v)", n, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("delay rule did not sleep")
	}
	if buf.String() != "slow" {
		t.Errorf("delayed write landed %q", buf.String())
	}
}

func TestPanicAction(t *testing.T) {
	defer Enable(&Rule{Site: "s", Op: OpAny, Panic: true})()
	defer func() {
		if recover() == nil {
			t.Error("panic rule did not panic")
		}
	}()
	Check("s", OpWrite)
}

// TestDisabledIsAllocationFree pins the zero-cost contract: with no
// rules armed, Check and the decorators must not allocate — the seam is
// compiled into hot I/O paths (spill, merge, publish, every request)
// and may cost exactly one atomic load when disabled.
func TestDisabledIsAllocationFree(t *testing.T) {
	if Enabled() {
		t.Fatal("rules armed; disabled-path test cannot run")
	}
	var buf bytes.Buffer
	w := Writer("s", &buf)
	r := Reader("s", &buf)
	p := []byte("x")
	if allocs := testing.AllocsPerRun(100, func() {
		Check("s", OpWrite)
		w.Write(p)
		r.Read(p)
		buf.Reset()
	}); allocs != 0 {
		t.Errorf("disabled fault seam allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkCheckDisabled is the benchguard-visible cost of an armed-off
// fault site: one atomic pointer load.
func BenchmarkCheckDisabled(b *testing.B) {
	if Enabled() {
		b.Fatal("rules armed")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Check("bench", OpWrite); err != nil {
			b.Fatal(err)
		}
	}
}
