// Package faultinject is the repository's fault-injection seam: named
// call sites in the I/O paths (spectrum store writes, spill runs,
// checkpoint manifests, the daemon's request loop) consult a
// process-global plan of trigger rules and, when a rule matches, fail
// the operation in a controlled way — return an error, lie about a
// short write, tear a write at byte K, sleep, panic, or SIGKILL the
// process. Disabled (the default, and the only production state) every
// instrumented site costs one atomic pointer load and zero allocations;
// decorators return their argument untouched, so the hot path is the
// undecorated os.File / io.Writer.
//
// Tests install a plan with Enable; harnesses driving a real binary set
// the REPRO_FAULTS environment variable, parsed by EnableFromEnv from
// cli.Main. The grammar is comma-separated rules of colon-separated
// fields:
//
//	site:op[:nth=N][:action]
//
// where site is the instrumented call-site name ("*" matches all), op
// is one of open, create, read, write, sync, close, rename, remove or
// "*", nth=N arms the rule on the Nth matching operation (1-based,
// default 1; "nth=N+" keeps it armed from then on), and action is one
// of:
//
//	err[=MSG]  fail the operation with ErrInjected (or MSG)   [default]
//	short=K    report only K bytes written, nil error (a lying sink)
//	torn=K     write K bytes for real, then fail (a torn write)
//	delay=DUR  sleep DUR, then proceed normally (slow I/O)
//	panic      panic at the call site
//	kill       SIGKILL the process (crash simulation: no deferred
//	           cleanup, no flushes)
//
// Example: REPRO_FAULTS='spill:write:nth=6:kill' kills the process
// during the sixth spill-file write.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names an instrumented call site. Instrumentation points pass one
// of the declared Site constants below; the faultsite analyzer
// (internal/lint/faultsite) checks every constant-valued site argument
// against this registry, so a typo'd site — which would silently never
// match any REPRO_FAULTS rule — is a vet error, not a dead test knob.
// Rule.Site stays a plain string because it is parsed from the
// environment and supports the "*" wildcard.
type Site string

// The declared fault sites. Adding an instrumentation point means adding
// a constant here — the analyzer picks the registry up from this
// package's export data, no analyzer change needed.
const (
	// SiteKSPC covers spectrum store writes: the KSPC column encode, the
	// pre-rename fsync, and the atomic rename into place.
	SiteKSPC Site = "kspc"
	// SiteKSPCDir is the store's parent-directory fsync after the rename.
	SiteKSPCDir Site = "kspc.dir"
	// SiteSpill covers spill-run file creation and writes in the
	// out-of-core counter.
	SiteSpill Site = "spill"
	// SiteMerge covers spill-run reads during the k-way merge.
	SiteMerge Site = "merge"
	// SiteManifest covers checkpoint manifest creation, write and rename.
	SiteManifest Site = "manifest"
	// SiteManifestDir is the manifest's parent-directory fsync.
	SiteManifestDir Site = "manifest.dir"
	// SiteServeRequest is the daemon's per-request hook.
	SiteServeRequest Site = "serve.request"
)

// Op classifies an instrumented operation.
type Op uint8

const (
	OpAny Op = iota
	OpOpen
	OpCreate
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
)

var opNames = map[string]Op{
	"*": OpAny, "open": OpOpen, "create": OpCreate, "read": OpRead,
	"write": OpWrite, "sync": OpSync, "close": OpClose,
	"rename": OpRename, "remove": OpRemove,
}

// ErrInjected is the default failure returned by a triggered rule.
var ErrInjected = errors.New("faultinject: injected fault")

// Rule is one trigger: when an instrumented operation matches Site and
// Op for the Nth time, the configured action fires.
type Rule struct {
	// Site names the instrumented call site; "" or "*" matches every site.
	Site string
	// Op restricts the rule to one operation kind; OpAny matches all.
	Op Op
	// Nth arms the rule on the Nth matching operation (1-based; 0 means 1).
	Nth int64
	// Sticky keeps the rule firing on every matching operation at or
	// after the Nth, instead of exactly once.
	Sticky bool

	// Err is the failure to return (nil selects ErrInjected). Ignored by
	// the Short action, which lies with a nil error by design.
	Err error
	// Short, when > 0 on a write, reports min(Short, len(p)) bytes
	// written with a nil error — the io.Writer contract violation a
	// broken sink can commit. Nothing reaches the underlying writer.
	Short int
	// Torn, when > 0 on a write, writes the first min(Torn, len(p))
	// bytes to the underlying writer for real, then fails — the
	// crash-consistency case where bytes landed before the error.
	Torn int
	// Delay sleeps before proceeding normally (slow I/O); combinable
	// with nothing else — a delaying rule never fails the operation.
	Delay time.Duration
	// Panic panics at the call site instead of returning an error.
	Panic bool
	// Kill SIGKILLs the process at the call site: no deferred cleanup,
	// no buffer flushes — the honest crash.
	Kill bool

	// hits counts matching operations observed so far.
	hits atomic.Int64
}

// plan is the installed rule set; nil means disabled.
type plan struct {
	rules []*Rule
}

var active atomic.Pointer[plan]

// Enabled reports whether a fault plan is installed.
func Enabled() bool { return active.Load() != nil }

// Enable installs rules as the process-wide fault plan, replacing any
// previous plan, and returns a func that disables injection again.
// Tests defer the returned func; binaries driven via REPRO_FAULTS never
// disable.
func Enable(rules ...*Rule) (disable func()) {
	active.Store(&plan{rules: rules})
	return func() { active.Store(nil) }
}

// check consults the plan for (site, op) and returns the rule to apply,
// or nil. The w==nil caller (non-write operations) never sees Short/Torn
// rules misfire because those only make sense on writes, which pass w.
func check(site Site, op Op) *Rule {
	p := active.Load()
	if p == nil {
		return nil
	}
	for _, r := range p.rules {
		if r.Site != "" && r.Site != "*" && r.Site != string(site) {
			continue
		}
		if r.Op != OpAny && op != OpAny && r.Op != op {
			continue
		}
		nth := r.Nth
		if nth <= 0 {
			nth = 1
		}
		h := r.hits.Add(1)
		if h == nth || (r.Sticky && h > nth) {
			return r
		}
	}
	return nil
}

// fire applies a triggered rule's terminal action (everything except
// Short/Torn, which only writers interpret) and returns the error to
// surface. Delay rules sleep and return nil.
func (r *Rule) fire(site Site) error {
	switch {
	case r.Kill:
		killSelf()
		return nil // unreachable on platforms with signals
	case r.Panic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	case r.Delay > 0:
		time.Sleep(r.Delay)
		return nil
	}
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// Check is the bare instrumentation hook for sites without a byte
// stream (request handling, directory syncs): it returns the injected
// error, or nil. Disabled cost: one atomic load.
//
//repro:noalloc
func Check(site Site, op Op) error {
	r := check(site, op)
	if r == nil {
		return nil
	}
	return r.fire(site)
}

// File is the slice of *os.File the instrumented code paths use; the
// decorator implements it, and so does *os.File itself.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
	Chmod(mode os.FileMode) error
}

var _ File = (*os.File)(nil)

// Create is os.Create behind the seam: rules on (site, create) can fail
// it; the returned File carries the site so read/write/sync/close rules
// apply to subsequent operations. Disabled, it returns the *os.File
// itself.
func Create(site Site, path string) (File, error) {
	if !Enabled() {
		return os.Create(path)
	}
	if err := Check(site, OpCreate); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{f: f, site: site}, nil
}

// Open is os.Open behind the seam, mirroring Create.
func Open(site Site, path string) (File, error) {
	if !Enabled() {
		return os.Open(path)
	}
	if err := Check(site, OpOpen); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{f: f, site: site}, nil
}

// Rename is os.Rename behind the seam.
func Rename(site Site, oldpath, newpath string) error {
	if err := Check(site, OpRename); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// Writer decorates w with the site's write rules; disabled, it returns
// w itself (no wrapper allocation).
func Writer(site Site, w io.Writer) io.Writer {
	if !Enabled() {
		return w
	}
	return &writer{w: w, site: site}
}

// Reader decorates r with the site's read rules; disabled, it returns
// r itself.
func Reader(site Site, r io.Reader) io.Reader {
	if !Enabled() {
		return r
	}
	return &reader{r: r, site: site}
}

// writeThrough applies a triggered write rule against dst: Short lies,
// Torn writes a prefix then fails, everything else delegates to fire.
func writeThrough(r *Rule, site Site, dst io.Writer, p []byte) (int, error) {
	switch {
	case r.Short > 0:
		return min(r.Short, len(p)), nil
	case r.Torn > 0:
		n, err := dst.Write(p[:min(r.Torn, len(p))])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: torn write at %s", ErrInjected, site)
	}
	if err := r.fire(site); err != nil {
		return 0, err
	}
	return dst.Write(p) // delay rules proceed normally
}

type writer struct {
	w    io.Writer
	site Site
}

func (w *writer) Write(p []byte) (int, error) {
	if r := check(w.site, OpWrite); r != nil {
		return writeThrough(r, w.site, w.w, p)
	}
	return w.w.Write(p)
}

type reader struct {
	r    io.Reader
	site Site
}

func (r *reader) Read(p []byte) (int, error) {
	if rule := check(r.site, OpRead); rule != nil {
		if err := rule.fire(r.site); err != nil {
			return 0, err
		}
	}
	return r.r.Read(p)
}

// file decorates an *os.File with the site's rules on every operation.
type file struct {
	f    *os.File
	site Site
}

func (f *file) Read(p []byte) (int, error) {
	if r := check(f.site, OpRead); r != nil {
		if err := r.fire(f.site); err != nil {
			return 0, err
		}
	}
	return f.f.Read(p)
}

func (f *file) Write(p []byte) (int, error) {
	if r := check(f.site, OpWrite); r != nil {
		return writeThrough(r, f.site, f.f, p)
	}
	return f.f.Write(p)
}

func (f *file) Sync() error {
	if err := Check(f.site, OpSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *file) Close() error {
	if err := Check(f.site, OpClose); err != nil {
		f.f.Close() // the descriptor must not leak even when the close "fails"
		return err
	}
	return f.f.Close()
}

func (f *file) Name() string                 { return f.f.Name() }
func (f *file) Chmod(mode os.FileMode) error { return f.f.Chmod(mode) }

// EnableFromEnv parses spec (the REPRO_FAULTS grammar, see the package
// comment) and installs the plan. An empty spec is a no-op. Parse
// errors are returned without installing anything.
func EnableFromEnv(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	var rules []*Rule
	for _, rs := range strings.Split(spec, ",") {
		r, err := parseRule(rs)
		if err != nil {
			return fmt.Errorf("faultinject: rule %q: %w", rs, err)
		}
		rules = append(rules, r)
	}
	Enable(rules...)
	return nil
}

func parseRule(s string) (*Rule, error) {
	fields := strings.Split(strings.TrimSpace(s), ":")
	if len(fields) < 2 {
		return nil, errors.New("want site:op[:nth=N][:action]")
	}
	r := &Rule{Site: fields[0]}
	op, ok := opNames[fields[1]]
	if !ok {
		return nil, fmt.Errorf("unknown op %q", fields[1])
	}
	r.Op = op
	action := false
	for _, f := range fields[2:] {
		key, val, _ := strings.Cut(f, "=")
		switch key {
		case "nth":
			if strings.HasSuffix(val, "+") {
				r.Sticky = true
				val = strings.TrimSuffix(val, "+")
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad nth %q", val)
			}
			r.Nth = n
			continue
		case "err":
			if val != "" {
				r.Err = errors.New(val)
			}
		case "short":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad short %q", val)
			}
			r.Short = n
		case "torn":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad torn %q", val)
			}
			r.Torn = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("bad delay %q", val)
			}
			r.Delay = d
		case "panic":
			r.Panic = true
		case "kill":
			r.Kill = true
		default:
			return nil, fmt.Errorf("unknown field %q", f)
		}
		if action {
			return nil, errors.New("multiple actions")
		}
		action = true
	}
	return r, nil
}
