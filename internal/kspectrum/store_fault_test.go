package kspectrum

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

// TestWriteSpectrumFileInjectedFaults drives every failure mode of the
// atomic store write through the fault seam: a lying short write, a torn
// write, a failed fsync and a failed rename must each surface an error,
// leave no destination file and leak no temporary sibling.
func TestWriteSpectrumFileInjectedFaults(t *testing.T) {
	spec, err := BuildParallel(randomReads(t, 500), 11, true, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		rule func() *faultinject.Rule
	}{
		{"short write", func() *faultinject.Rule { return &faultinject.Rule{Site: "kspc", Op: faultinject.OpWrite, Short: 10} }},
		{"torn write", func() *faultinject.Rule { return &faultinject.Rule{Site: "kspc", Op: faultinject.OpWrite, Torn: 16} }},
		{"sync failure", func() *faultinject.Rule { return &faultinject.Rule{Site: "kspc", Op: faultinject.OpSync} }},
		{"rename failure", func() *faultinject.Rule { return &faultinject.Rule{Site: "kspc", Op: faultinject.OpRename} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "s.kspc")
			disable := faultinject.Enable(tc.rule())
			err := WriteSpectrumFile(path, spec)
			disable()
			if err == nil {
				t.Fatal("WriteSpectrumFile succeeded under injected fault")
			}
			if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
				t.Fatalf("destination exists after %s: %v", tc.name, serr)
			}
			if tmps, _ := filepath.Glob(filepath.Join(dir, ".kspc-*")); len(tmps) != 0 {
				t.Fatalf("%s leaked %d temp files", tc.name, len(tmps))
			}
		})
	}

	// Injected dir-sync failure happens after the rename: the store is in
	// place and loadable; the error still surfaces so callers know
	// durability was not established.
	t.Run("dirsync failure", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "s.kspc")
		disable := faultinject.Enable(&faultinject.Rule{Site: "kspc.dir", Op: faultinject.OpSync})
		err := WriteSpectrumFile(path, spec)
		disable()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
		if _, err := ReadSpectrumFile(path); err != nil {
			t.Fatalf("renamed store unreadable after dir-sync failure: %v", err)
		}
	})

	// And with the plan disabled the same write succeeds end to end.
	path := filepath.Join(t.TempDir(), "s.kspc")
	if err := WriteSpectrumFile(path, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpectrumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	spectraEqual(t, spec, got, "clean store round-trip")
}
