package kspectrum

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/seq"
)

// SpectrumBackend is the query seam every spectrum consumer goes
// through: the correction engines, the tile scorer and the serve daemon
// ask membership/count questions here instead of touching *Spectrum
// columns directly, so a remote, sharded spectrum (internal/remote) can
// stand in for a local one. Local backends — built, copied or mapped
// spectra wrapped by Local — never return errors from queries (a mapped
// spectrum's lazy-validation failure surfaces through Err and absent
// answers, exactly as Spectrum.Index behaves); remote backends return
// transport and availability errors, which callers must surface rather
// than misread as "absent".
//
// Implementations must be safe for concurrent use.
type SpectrumBackend interface {
	// K is the kmer length.
	K() int
	// Len is the number of distinct kmers across the whole spectrum.
	Len() int
	// Index returns the position of km in the globally-sorted spectrum,
	// or -1 when absent.
	Index(km seq.Kmer) (int, error)
	// Count returns km's occurrence count (0 when absent).
	Count(km seq.Kmer) (uint32, error)
	// Contains reports membership.
	Contains(km seq.Kmer) (bool, error)
	// CountMany fills counts[i] with the occurrence count of kms[i]
	// (len(counts) must equal len(kms)). Batching is the amortization
	// lever for remote backends: one round trip per owning shard instead
	// of one per kmer.
	CountMany(kms []seq.Kmer, counts []uint32) error
	// Err reports the backend's sticky health (nil when servable).
	Err() error
	// Close releases backing resources; queries afterwards answer
	// absent or ErrSpectrumClosed.
	Close() error
}

// NeighborSource answers d-neighborhood queries by kmer value: all
// spectrum kmers within Hamming distance d of km, appended to dst in
// ascending order without duplicates. d == 0 degenerates to membership.
// Remote backends implement it by fanning out to the shards a mutation
// of km's prefix could land in (PrefixPartition.NeighborShards).
type NeighborSource interface {
	Neighborhood(km seq.Kmer, d int, dst []seq.Kmer) ([]seq.Kmer, error)
}

// ContextBinder is optionally implemented by backends whose queries
// block on I/O: BindContext returns a view of the backend whose
// queries are cancelled with ctx, so a request-scoped caller (the
// serve daemon's correction path) can make shard round trips respect
// its deadline and client disconnects. The returned backend shares
// all state with the original — only the context differs. Local
// backends never block and do not implement it.
type ContextBinder interface {
	BindContext(ctx context.Context) SpectrumBackend
}

// localBackend adapts a *Spectrum to SpectrumBackend. (The adapter
// exists because Spectrum's K is a public field, which blocks a K()
// method on the type itself.)
type localBackend struct{ s *Spectrum }

// Local wraps a built, copied or mapped spectrum as a SpectrumBackend.
// Queries never error; Err and Close delegate to the spectrum.
func Local(s *Spectrum) SpectrumBackend { return localBackend{s} }

// Unwrap exposes the underlying spectrum of a Local backend (nil for
// any other implementation) — the escape hatch for local-only engines
// that need full column access.
func Unwrap(b SpectrumBackend) *Spectrum {
	if lb, ok := b.(localBackend); ok {
		return lb.s
	}
	return nil
}

func (b localBackend) K() int   { return b.s.K }
func (b localBackend) Len() int { return b.s.Size() }
func (b localBackend) Index(km seq.Kmer) (int, error) {
	return b.s.Index(km), nil
}
func (b localBackend) Count(km seq.Kmer) (uint32, error) {
	return b.s.Count(km), nil
}
func (b localBackend) Contains(km seq.Kmer) (bool, error) {
	return b.s.Contains(km), nil
}
func (b localBackend) CountMany(kms []seq.Kmer, counts []uint32) error {
	b.s.CountMany(kms, counts)
	return nil
}
func (b localBackend) Err() error          { return b.s.Err() }
func (b localBackend) Close() error        { return b.s.Close() }
func (b localBackend) BothStrands() bool   { return b.s.BothStrands }
func (b localBackend) Spectrum() *Spectrum { return b.s }

// CountMany fills counts[i] with the occurrence count of kms[i]; the
// slices must have equal length. It is the batched form of Count.
func (s *Spectrum) CountMany(kms []seq.Kmer, counts []uint32) {
	for i, km := range kms {
		counts[i] = s.Count(km)
	}
}

// localNeighbors answers neighborhood queries from a local spectrum and
// its NeighborIndex.
type localNeighbors struct {
	s  *Spectrum
	ni *NeighborIndex
}

// LocalNeighbors builds a NeighborSource over a local spectrum. ni may
// be nil when only d == 0 (membership) queries will be issued; d > 0
// queries require ni and must satisfy d <= ni.D.
func LocalNeighbors(s *Spectrum, ni *NeighborIndex) NeighborSource {
	return localNeighbors{s: s, ni: ni}
}

func (l localNeighbors) Neighborhood(km seq.Kmer, d int, dst []seq.Kmer) ([]seq.Kmer, error) {
	if d == 0 {
		if i := l.s.Index(km); i >= 0 {
			dst = append(dst, l.s.Kmers[i])
		}
		return dst, nil
	}
	if l.ni == nil {
		return dst, errNoNeighborIndex
	}
	if d > l.ni.D {
		return dst, fmt.Errorf("kspectrum: neighborhood radius %d exceeds the index radius %d", d, l.ni.D)
	}
	start := len(dst)
	dst = l.ni.NeighborKmers(km, dst)
	if d < l.ni.D {
		// The index enumerates its full D-neighborhood; honor the
		// requested radius. A remote shard answers exactly d (its
		// per-d node index), so the seam's local/distributed
		// byte-identity depends on the local source filtering too.
		kept := dst[:start]
		for _, nb := range dst[start:] {
			if seq.HammingKmer(km, nb, l.s.K) <= d {
				kept = append(kept, nb)
			}
		}
		dst = kept
	}
	return dst, nil
}

var errNoNeighborIndex = errors.New("kspectrum: neighborhood query without a NeighborIndex")
