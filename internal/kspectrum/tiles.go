package kspectrum

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// TileCount carries the two occurrence statistics Reptile keeps per tile
// (§2.3): Oc, the total multiplicity in R (both strands), and Og, the number
// of those occurrences in which every base has quality score at least Qc.
type TileCount struct {
	Oc uint32
	Og uint32
}

// TileSet counts tiles: l-concatenations of two k-mers, i.e. substrings of
// length 2k-l (Definition 2.1 with |t| = 2k-l). Tiles are packed like kmers,
// so 2k-l must not exceed seq.MaxK.
type TileSet struct {
	K       int
	Overlap int // l, the kmer overlap inside a tile
	TileLen int // 2k - l
	Qc      byte
	m       *tileCounter
}

// CountTiles scans all reads (both strands) and records tile multiplicities.
// qc is the quality threshold defining the high-quality count Og; reads
// without quality scores contribute to Og unconditionally (the paper's
// Og = Oc fallback).
func CountTiles(reads []seq.Read, k, overlap int, qc byte) (*TileSet, error) {
	tileLen := 2*k - overlap
	if k <= 0 || overlap < 0 || overlap >= k {
		return nil, fmt.Errorf("kspectrum: invalid tile geometry k=%d l=%d", k, overlap)
	}
	if tileLen > seq.MaxK {
		return nil, fmt.Errorf("kspectrum: tile length %d exceeds %d packed bases", tileLen, seq.MaxK)
	}
	ts := &TileSet{K: k, Overlap: overlap, TileLen: tileLen, Qc: qc, m: newTileCounter()}
	ts.Add(reads)
	return ts, nil
}

// Add merges one chunk of reads into the tile counts, enabling the §2.3
// divide-and-merge construction.
func (ts *TileSet) Add(reads []seq.Read) {
	for _, r := range reads {
		ts.addStrand(r.Seq, r.Qual, false)
		rcSeq := seq.ReverseComplement(r.Seq)
		var rcQual []byte
		if r.Qual != nil {
			rcQual = make([]byte, len(r.Qual))
			for i, q := range r.Qual {
				rcQual[len(r.Qual)-1-i] = q
			}
		}
		ts.addStrand(rcSeq, rcQual, true)
	}
}

func (ts *TileSet) addStrand(bases, qual []byte, rc bool) {
	ForEachKmer(bases, ts.TileLen, func(tile seq.Kmer, pos int) {
		ts.m.add(tile, ts.highQuality(qual, pos))
	})
}

func (ts *TileSet) highQuality(qual []byte, pos int) bool {
	if qual == nil {
		return true
	}
	for i := pos; i < pos+ts.TileLen; i++ {
		if qual[i] < ts.Qc {
			return false
		}
	}
	return true
}

// Get returns the counts for a packed tile (zero counts if unseen).
func (ts *TileSet) Get(tile seq.Kmer) TileCount { return ts.m.get(tile) }

// Size returns the number of distinct tiles.
func (ts *TileSet) Size() int { return ts.m.Len() }

// PackTile concatenates two kmers with the configured overlap into a packed
// tile. The caller guarantees the overlapping regions agree (Definition 2.1);
// the suffix of a wins in the packed value.
func (ts *TileSet) PackTile(a, b seq.Kmer) seq.Kmer {
	// tile = a || (b without its first Overlap bases)
	tailLen := ts.K - ts.Overlap
	tailMask := seq.Kmer(1)<<(2*uint(tailLen)) - 1
	return a<<(2*uint(tailLen)) | b&tailMask
}

// SplitTile recovers the two constituent kmers of a packed tile.
func (ts *TileSet) SplitTile(tile seq.Kmer) (a, b seq.Kmer) {
	tailLen := ts.K - ts.Overlap
	a = tile >> (2 * uint(tailLen))
	kMask := seq.Kmer(1)<<(2*uint(ts.K)) - 1
	b = tile & kMask
	return a, b
}

// OgHistogram tallies distinct tiles by Og count, binning counts above
// maxBin into the last bin.
func (ts *TileSet) OgHistogram(maxBin int) []int {
	h := make([]int, maxBin+1)
	ts.m.forEach(func(_ seq.Kmer, tc TileCount) {
		idx := int(tc.Og)
		if idx > maxBin {
			idx = maxBin
		}
		h[idx]++
	})
	return h
}

// OgQuantile returns the smallest count x such that at least `fraction` of
// distinct tiles have Og <= x — the empirical-histogram parameter selection
// Reptile uses for Cg and Cm (§2.3 "Choosing Parameters").
func (ts *TileSet) OgQuantile(fraction float64) uint32 {
	if ts.m.Len() == 0 {
		return 0
	}
	counts := make([]uint32, 0, ts.m.Len())
	ts.m.forEach(func(_ seq.Kmer, tc TileCount) {
		counts = append(counts, tc.Og)
	})
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	idx := int(fraction * float64(len(counts)))
	if idx >= len(counts) {
		idx = len(counts) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return counts[idx]
}

// QualityQuantile returns the Phred score q such that `fraction` of all
// bases in the read set score below q — the selection rule for Qc.
func QualityQuantile(reads []seq.Read, fraction float64) byte {
	var hist [128]int
	total := 0
	for _, r := range reads {
		for _, q := range r.Qual {
			if q > 127 {
				q = 127
			}
			hist[q]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	target := int(fraction * float64(total))
	acc := 0
	for q := 0; q < len(hist); q++ {
		acc += hist[q]
		if acc >= target {
			return byte(q)
		}
	}
	return 127
}
