package kspectrum

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/seq"
)

// mapReferenceSpectrum is the retained map-based reference implementation
// the open-addressing Counter replaced: count every clean window (both
// strands when asked) into a Go map, then sort. Determinism tests assert
// the production engine stays byte-identical to it.
func mapReferenceSpectrum(reads []seq.Read, k int, bothStrands bool) *Spectrum {
	m := map[seq.Kmer]uint32{}
	for _, r := range reads {
		ForEachKmer(r.Seq, k, func(km seq.Kmer, _ int) {
			m[km]++
			if bothStrands {
				m[seq.RevComp(km, k)]++
			}
		})
	}
	kmers := make([]seq.Kmer, 0, len(m))
	for km := range m {
		kmers = append(kmers, km)
	}
	sort.Slice(kmers, func(i, j int) bool { return kmers[i] < kmers[j] })
	counts := make([]uint32, len(kmers))
	for i, km := range kmers {
		counts[i] = m[km]
	}
	return &Spectrum{K: k, Kmers: kmers, Counts: counts}
}

// TestCounterVsMapOracle drives random increment/lookup traffic through a
// Counter and a map[seq.Kmer]uint32 side by side, including the zero kmer
// (AAA…A, the value an empty slot must not be confused with) and heavy
// duplication to exercise growth and probing chains.
func TestCounterVsMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := NewCounter(0)
	oracle := map[seq.Kmer]uint32{}
	keys := make([]seq.Kmer, 500)
	for i := range keys {
		keys[i] = seq.Kmer(rng.Uint64() >> uint(rng.Intn(40))) // skewed, includes small values
	}
	keys[0] = 0
	for i := 0; i < 20000; i++ {
		km := keys[rng.Intn(len(keys))]
		delta := uint32(rng.Intn(3)) // 0 must be a no-op
		c.Inc(km, delta)
		if delta > 0 {
			oracle[km] += delta
		}
		if i%97 == 0 {
			probe := keys[rng.Intn(len(keys))]
			if got, want := c.Get(probe), oracle[probe]; got != want {
				t.Fatalf("Get(%v) = %d, oracle %d", probe, got, want)
			}
		}
	}
	distinct := len(oracle)
	if c.Len() != distinct {
		t.Fatalf("Len = %d, oracle %d", c.Len(), distinct)
	}
	kmers, counts := c.AppendSortedInto(nil, nil)
	if len(kmers) != distinct || len(counts) != distinct {
		t.Fatalf("AppendSortedInto returned %d/%d entries, want %d", len(kmers), len(counts), distinct)
	}
	for i := range kmers {
		if i > 0 && kmers[i-1] >= kmers[i] {
			t.Fatalf("entries not strictly sorted at %d: %v >= %v", i, kmers[i-1], kmers[i])
		}
		if counts[i] != oracle[kmers[i]] {
			t.Fatalf("count[%v] = %d, oracle %d", kmers[i], counts[i], oracle[kmers[i]])
		}
	}
}

// TestCounterSaturatesAtMaxUint32 pins the overflow contract: a count may
// never wrap to 0, because a zero count reads as an empty slot and would
// structurally corrupt the probe chains.
func TestCounterSaturatesAtMaxUint32(t *testing.T) {
	c := NewCounter(0)
	km := seq.Kmer(0) // the all-A kmer, the most overflow-prone in practice
	c.Inc(km, ^uint32(0))
	c.Inc(km, 1)
	c.Inc(km, ^uint32(0))
	if got := c.Get(km); got != ^uint32(0) {
		t.Fatalf("Get = %d want MaxUint32", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d want 1", c.Len())
	}
	tc := newTileCounter()
	for i := 0; i < 3; i++ {
		tc.add(km, true)
	}
	tc.oc[mixSlot(tc, km)] = ^uint32(0)
	tc.add(km, false)
	if got := tc.get(km); got.Oc != ^uint32(0) {
		t.Fatalf("tile Oc = %d want MaxUint32", got.Oc)
	}
}

// mixSlot locates km's slot in a tileCounter (test helper).
func mixSlot(tc *tileCounter, km seq.Kmer) uint64 {
	mask := uint64(len(tc.keys) - 1)
	i := mix(uint64(km)) & mask
	for tc.keys[i] != km || tc.oc[i] == 0 {
		i = (i + 1) & mask
	}
	return i
}

// TestCounterAppendSortedIntoReuse verifies the append contract: existing
// prefixes survive and the counter can extract repeatedly.
func TestCounterAppendSortedIntoReuse(t *testing.T) {
	c := NewCounter(4)
	c.Inc(seq.MustPack("ACGT"), 2)
	c.Inc(seq.MustPack("TTTT"), 1)
	kmers := []seq.Kmer{99}
	counts := []uint32{99}
	kmers, counts = c.AppendSortedInto(kmers, counts)
	if len(kmers) != 3 || kmers[0] != 99 || counts[0] != 99 {
		t.Fatalf("prefix clobbered: %v %v", kmers, counts)
	}
	if kmers[1] != seq.MustPack("ACGT") || counts[1] != 2 {
		t.Fatalf("first entry wrong: %v %v", kmers, counts)
	}
	k2, c2 := c.AppendSortedInto(nil, nil)
	if len(k2) != 2 || c2[1] != 1 {
		t.Fatalf("second extraction wrong: %v %v", k2, c2)
	}
}

// TestCounterSpectrumMatchesMapReference is the tentpole acceptance
// property: spectra built through the open-addressing counter are
// byte-identical to the retained map-based reference for every
// workers × shards × memory-budget combination.
func TestCounterSpectrumMatchesMapReference(t *testing.T) {
	reads := randomReads(t, 2500)
	for _, bothStrands := range []bool{false, true} {
		want := mapReferenceSpectrum(reads, 13, bothStrands)
		for _, workers := range []int{1, 3, 8} {
			for _, shards := range []int{1, 4, 7} {
				got, err := BuildParallel(reads, 13, bothStrands, BuildOptions{Workers: workers, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				spectraEqual(t, want, got, "in-memory vs map reference")
				for _, budget := range []int64{0, 1 << 15} {
					goc, stats, err := BuildOutOfCore(reads, 13, bothStrands, StreamOptions{
						Build:        BuildOptions{Workers: workers, Shards: shards},
						MemoryBudget: budget,
						TempDir:      t.TempDir(),
					})
					if err != nil {
						t.Fatal(err)
					}
					if budget > 0 && stats.SpilledRuns == 0 {
						t.Fatalf("workers=%d shards=%d: tiny budget spilled nothing", workers, shards)
					}
					spectraEqual(t, want, goc, "out-of-core vs map reference")
				}
			}
		}
	}
}

// TestTileSetMatchesMapReference compares the tileCounter-backed TileSet
// against a map[seq.Kmer]TileCount reference following the identical
// traversal (both strands, reversed qualities, high-quality test).
func TestTileSetMatchesMapReference(t *testing.T) {
	reads := randomReads(t, 800)
	const k, overlap = 8, 3
	const qc = 25
	ts, err := CountTiles(reads, k, overlap, qc)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[seq.Kmer]TileCount{}
	tileLen := 2*k - overlap
	addStrand := func(bases, qual []byte) {
		ForEachKmer(bases, tileLen, func(tile seq.Kmer, pos int) {
			tc := ref[tile]
			tc.Oc++
			hq := true
			if qual != nil {
				for i := pos; i < pos+tileLen; i++ {
					if qual[i] < qc {
						hq = false
						break
					}
				}
			}
			if hq {
				tc.Og++
			}
			ref[tile] = tc
		})
	}
	for _, r := range reads {
		addStrand(r.Seq, r.Qual)
		rcSeq := seq.ReverseComplement(r.Seq)
		var rcQual []byte
		if r.Qual != nil {
			rcQual = make([]byte, len(r.Qual))
			for i, q := range r.Qual {
				rcQual[len(r.Qual)-1-i] = q
			}
		}
		addStrand(rcSeq, rcQual)
	}
	if ts.Size() != len(ref) {
		t.Fatalf("size %d, reference %d", ts.Size(), len(ref))
	}
	for tile, want := range ref {
		if got := ts.Get(tile); got != want {
			t.Fatalf("tile %v: got %+v want %+v", tile, got, want)
		}
	}
	// Histograms agree too (iteration-order independent).
	wantHist := make([]int, 9)
	for _, tc := range ref {
		idx := int(tc.Og)
		if idx > 8 {
			idx = 8
		}
		wantHist[idx]++
	}
	gotHist := ts.OgHistogram(8)
	for i := range wantHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("OgHistogram[%d] = %d want %d", i, gotHist[i], wantHist[i])
		}
	}
}

// TestApproxAccumulatorBytes pins the budget math: the estimate must match
// the footprint an actual counter reaches after n inserts.
func TestApproxAccumulatorBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 47, 48, 49, 1000, 5000} {
		c := NewCounter(0)
		for i := 0; i < n; i++ {
			c.Inc(seq.Kmer(rng.Uint64()), 1)
		}
		if c.Len() != n {
			// collisions in the random keys are possible but vanishingly
			// unlikely at these sizes; regenerate if it ever trips
			t.Fatalf("n=%d: inserted %d distinct", n, c.Len())
		}
		if got, want := c.ResidentBytes(), ApproxAccumulatorBytes(n); got != want {
			t.Fatalf("n=%d: ResidentBytes %d, ApproxAccumulatorBytes %d", n, got, want)
		}
	}
	if ApproxAccumulatorBytes(10) != int64(minCounterSlots)*counterSlotBytes {
		t.Fatal("small-n floor wrong")
	}
}
