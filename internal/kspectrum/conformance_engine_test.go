package kspectrum_test

// The end-to-end half of the store-backend conformance harness: a mapped
// spectrum and a copied spectrum must drive every registered engine to
// byte-identical corrected output. This is the external-package
// counterpart of conformance_test.go — it exercises the whole stack
// (engine registry, mode threading, lazy neighbor index) rather than the
// store in isolation, so it lives in kspectrum_test to import the engine
// packages without a cycle.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/shrec"
	"repro/internal/simulate"
)

// conformanceCorpus simulates a corpus, builds its k-spectrum and
// persists the store, returning the reads, the store path and the genome
// length.
func conformanceCorpus(t *testing.T) ([]seq.Read, string, int) {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "conformance", GenomeLen: 5000, ReadLen: 36, Coverage: 20,
		ErrorRate: 0.01, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	spec, err := kspectrum.Build(reads, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/conformance.kspc"
	if err := kspectrum.WriteSpectrumFile(path, spec); err != nil {
		t.Fatal(err)
	}
	return reads, path, len(ds.Genome)
}

// readsEqual compares two corrected read sets byte for byte.
func readsEqual(t *testing.T, label string, a, b []seq.Read) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d reads", label, len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || !bytes.Equal(a[i].Seq, b[i].Seq) || !bytes.Equal(a[i].Qual, b[i].Qual) {
			t.Fatalf("%s: read %d differs", label, i)
		}
	}
}

// TestEngineConformanceMappedVsCopied runs the spectrum-reusing engines
// end to end against the same persisted store loaded both ways. Mapped
// and copied runs must correct identically — the zero-copy path is an
// implementation detail, never an answer change.
func TestEngineConformanceMappedVsCopied(t *testing.T) {
	reads, specPath, _ := conformanceCorpus(t)
	for _, name := range []string{reptile.EngineName, redeem.EngineName} {
		t.Run(name, func(t *testing.T) {
			eng, err := engine.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			correct := func(mode engine.SpectrumMode) []seq.Read {
				t.Helper()
				run := engine.NewRun(
					engine.WithSpectrumPath(specPath),
					engine.WithSpectrumMode(mode),
					engine.WithWorkers(2),
				)
				out, _, err := eng.Correct(context.Background(), reads, run)
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			copied := correct(engine.SpectrumCopied)
			mapped := correct(engine.SpectrumMapped)
			readsEqual(t, "mapped vs copied", copied, mapped)
			changed := engine.CountChanged(reads, copied)
			if changed == 0 {
				t.Fatalf("%s corrected nothing: the identity check is vacuous", name)
			}
			t.Logf("%s: %d of %d reads changed identically under both modes", name, changed, len(reads))
		})
	}
}

// TestEngineConformanceShrec covers the spectrum-free engine: SHREC has
// no store to map, so mode identity degenerates to determinism — two
// runs over the same input must agree byte for byte (and spectrum
// options, including a mode, must still be rejected as configuration
// errors rather than ignored).
func TestEngineConformanceShrec(t *testing.T) {
	reads, specPath, genomeLen := conformanceCorpus(t)
	eng, err := engine.Lookup(shrec.EngineName)
	if err != nil {
		t.Fatal(err)
	}
	correct := func() []seq.Read {
		t.Helper()
		run := engine.NewRun(engine.WithGenomeLen(genomeLen), engine.WithWorkers(2))
		out, _, err := eng.Correct(context.Background(), reads, run)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	readsEqual(t, "run 1 vs run 2", correct(), correct())

	run := engine.NewRun(
		engine.WithGenomeLen(genomeLen),
		engine.WithSpectrumPath(specPath),
		engine.WithSpectrumMode(engine.SpectrumMapped),
	)
	if _, _, err := eng.Correct(context.Background(), reads, run); err == nil {
		t.Fatal("shrec accepted a spectrum path it cannot use")
	}
}
