package kspectrum

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestPrefixBitsFor(t *testing.T) {
	cases := []struct {
		n    int
		max  uint
		want uint
	}{
		{0, 10, 0},
		{1, 10, 0},
		{2, 10, 1},
		{3, 10, 2},
		{4, 10, 2},
		{5, 10, 3},
		{1024, 10, 10},
		{1025, 10, 10}, // capped
		{1 << 20, 10, 10},
		{7, 2, 2}, // capped below need
		{64, 22, 6},
	}
	for _, c := range cases {
		if got := prefixBitsFor(c.n, c.max); got != c.want {
			t.Errorf("prefixBitsFor(%d, %d) = %d, want %d", c.n, c.max, got, c.want)
		}
	}
}

func TestPrefixPartitionShardOf(t *testing.T) {
	cases := []struct {
		k     int
		bits  uint
		kmer  string
		shard int
	}{
		// 2 bits = the first base selects the shard.
		{4, 2, "AAAA", 0},
		{4, 2, "CAAA", 1},
		{4, 2, "GTTT", 2},
		{4, 2, "TTTT", 3},
		// 3 bits split the second base's high bit.
		{4, 3, "AAAA", 0},
		{4, 3, "AGAA", 1},
		{4, 3, "CAAA", 2},
		{4, 3, "TTTT", 7},
		// 0 bits: everything in shard 0.
		{4, 0, "TTTT", 0},
		// Full 2k bits: the kmer is its own shard number.
		{2, 4, "GT", 0b1011},
	}
	for _, c := range cases {
		km, ok := seq.PackString(c.kmer)
		if !ok {
			t.Fatalf("bad kmer %q", c.kmer)
		}
		p := PrefixPartition{K: c.k, Bits: c.bits}
		if got := p.ShardOf(km); got != c.shard {
			t.Errorf("PrefixPartition{%d,%d}.ShardOf(%s) = %d, want %d",
				c.k, c.bits, c.kmer, got, c.shard)
		}
		if got := p.Shards(); got != 1<<c.bits {
			t.Errorf("Shards() = %d, want %d", got, 1<<c.bits)
		}
	}
}

// TestPrefixPartitionContiguous asserts the property every consumer
// relies on: the shard number is monotone in the kmer, so each shard is
// one contiguous range of the sorted spectrum.
func TestPrefixPartitionContiguous(t *testing.T) {
	p := PrefixPartition{K: 6, Bits: 5}
	prev := 0
	for v := uint64(0); v < 1<<12; v += 7 {
		s := p.ShardOf(seq.Kmer(v))
		if s < prev {
			t.Fatalf("shard number decreased: kmer %#x -> %d after %d", v, s, prev)
		}
		prev = s
	}
}

// bruteNeighborShards enumerates every kmer within Hamming distance d of
// km and collects the owning shards — the oracle for NeighborShards.
func bruteNeighborShards(p PrefixPartition, km seq.Kmer, d int) map[int]bool {
	shards := map[int]bool{p.ShardOf(km): true}
	var walk func(cur seq.Kmer, from, left int)
	walk = func(cur seq.Kmer, from, left int) {
		if left == 0 {
			return
		}
		for i := from; i < p.K; i++ {
			orig := cur.At(i, p.K)
			for b := seq.Base(0); b < 4; b++ {
				if b == orig {
					continue
				}
				mut := cur.WithBase(i, p.K, b)
				shards[p.ShardOf(mut)] = true
				walk(mut, i+1, left-1)
			}
		}
	}
	walk(km, 0, d)
	return shards
}

func TestNeighborShardsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		k    int
		bits uint
		d    int
	}{
		{5, 0, 2}, {5, 1, 1}, {5, 3, 1}, {5, 4, 2},
		{7, 5, 1}, {7, 5, 2}, {9, 6, 3}, {13, 4, 2},
	} {
		p := PrefixPartition{K: tc.k, Bits: tc.bits}
		for trial := 0; trial < 25; trial++ {
			km := seq.Kmer(rng.Uint64()) & (1<<(2*uint(tc.k)) - 1)
			got := p.NeighborShards(km, tc.d, nil)
			want := bruteNeighborShards(p, km, tc.d)
			if len(got) != len(want) {
				t.Fatalf("k=%d bits=%d d=%d km=%#x: got %d shards %v, want %d",
					tc.k, tc.bits, tc.d, uint64(km), len(got), got, len(want))
			}
			for i, s := range got {
				if !want[s] {
					t.Fatalf("k=%d bits=%d d=%d km=%#x: shard %d not in oracle",
						tc.k, tc.bits, tc.d, uint64(km), s)
				}
				if i > 0 && got[i-1] >= s {
					t.Fatalf("NeighborShards not ascending-unique: %v", got)
				}
			}
		}
	}
}

// TestNeighborShardsAppend checks the dst-append contract: existing
// entries are preserved and only the appended tail is sorted.
func TestNeighborShardsAppend(t *testing.T) {
	p := PrefixPartition{K: 4, Bits: 2}
	km, _ := seq.PackString("CAAA")
	dst := []int{99}
	out := p.NeighborShards(km, 1, dst)
	if out[0] != 99 {
		t.Fatalf("prefix clobbered: %v", out)
	}
	tail := out[1:]
	if len(tail) == 0 || tail[0] > tail[len(tail)-1] {
		t.Fatalf("tail not ascending: %v", tail)
	}
}
