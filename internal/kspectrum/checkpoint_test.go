package kspectrum

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/seq"
)

// feedChunks streams reads into st in fixed-size chunks, stopping after
// at least stop reads (-1 = all). Returns the number fed.
func feedChunks(st *StreamBuilder, reads []seq.Read, chunk, stop int) int {
	fed := 0
	for lo := 0; lo < len(reads); lo += chunk {
		if stop >= 0 && fed >= stop {
			break
		}
		hi := min(lo+chunk, len(reads))
		st.Add(reads[lo:hi])
		fed += hi - lo
	}
	return fed
}

func newCheckpointBuilder(t *testing.T, dir string, budget int64, resume bool) *StreamBuilder {
	t.Helper()
	st, err := NewStreamBuilder(13, true, StreamOptions{
		Build:           BuildOptions{Workers: 2, Shards: 8},
		MemoryBudget:    budget,
		CheckpointDir:   dir,
		Resume:          resume,
		CheckpointEvery: 700,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCheckpointResumeByteIdentical is the acceptance property of
// crash-safe resume: a build abandoned mid-stream (the in-process
// equivalent of SIGKILL — nothing after the last manifest survives into
// the merge) and resumed over the same reads yields a spectrum
// byte-identical to an uninterrupted build. Exercised with and without
// a spill budget, and with a different resume chunking so the partial
// chunk-skip path runs.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	reads := randomReads(t, 4000)
	want, err := BuildParallel(reads, 13, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1 << 15} {
		dir := filepath.Join(t.TempDir(), "ckpt")
		st1 := newCheckpointBuilder(t, dir, budget, false)
		// ~2500 reads in chunks of 300 crosses the 700-read checkpoint
		// interval several times; abandon without Build.
		fed := feedChunks(st1, reads, 300, 2500)
		if err := st1.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
			t.Fatalf("budget=%d: no manifest after abandoned build: %v", budget, err)
		}

		st2 := newCheckpointBuilder(t, dir, budget, true)
		if st2.Resumed() == 0 {
			t.Fatalf("budget=%d: resume adopted no cursor", budget)
		}
		if st2.Resumed() > int64(fed) {
			t.Fatalf("budget=%d: cursor %d beyond the %d reads fed", budget, st2.Resumed(), fed)
		}
		// A different chunk size lands the cursor mid-chunk.
		feedChunks(st2, reads, 170, -1)
		got, err := st2.Build()
		if err != nil {
			t.Fatal(err)
		}
		spectraEqual(t, want, got, "checkpoint-resume")
		if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("budget=%d: successful Build left the checkpoint dir (%v)", budget, err)
		}
	}
}

// TestCheckpointExplicitAndStats verifies Checkpoint() flushes the
// residue durably at an arbitrary cursor and that a kill-free resume
// re-counts only the tail.
func TestCheckpointExplicitAndStats(t *testing.T) {
	reads := randomReads(t, 1500)
	want, err := BuildParallel(reads, 13, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	st1 := newCheckpointBuilder(t, dir, 0, false)
	fed := feedChunks(st1, reads, 123, 400)
	if err := st1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	st2 := newCheckpointBuilder(t, dir, 0, true)
	if got := st2.Resumed(); got != int64(fed) {
		t.Fatalf("Resumed() = %d, want the %d reads before the explicit checkpoint", got, fed)
	}
	if st2.Stats().SpilledRuns == 0 {
		t.Fatal("resume adopted no runs")
	}
	feedChunks(st2, reads, 123, -1)
	got, err := st2.Build()
	if err != nil {
		t.Fatal(err)
	}
	spectraEqual(t, want, got, "explicit-checkpoint")
}

// TestResumeDeletesStrayRuns: run files the manifest does not list —
// spills that postdate the newest checkpoint — cover reads the resume
// counts again, so adopting them would double-count. They must die.
func TestResumeDeletesStrayRuns(t *testing.T) {
	reads := randomReads(t, 1000)
	dir := filepath.Join(t.TempDir(), "ckpt")
	st1 := newCheckpointBuilder(t, dir, 0, false)
	st1.Add(reads[:500])
	if err := st1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "run999999.bin")
	if err := os.WriteFile(stray, []byte("post-checkpoint spill junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	newCheckpointBuilder(t, dir, 0, true)
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray run survived resume: %v", err)
	}
}

// TestResumeWithoutManifestIsFresh: a build killed before its first
// checkpoint leaves runs but no manifest; resume must start from zero
// and clear the uncommitted runs.
func TestResumeWithoutManifestIsFresh(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "run000001.bin")
	if err := os.WriteFile(stray, []byte("uncommitted"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := newCheckpointBuilder(t, dir, 0, true)
	if st.Resumed() != 0 {
		t.Fatalf("Resumed() = %d without a manifest", st.Resumed())
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("uncommitted run survived: %v", err)
	}
}

// TestResumeRejectsCorruption: a flipped byte in a listed run or in the
// manifest is a hard ErrCheckpoint, never a silently wrong spectrum.
func TestResumeRejectsCorruption(t *testing.T) {
	reads := randomReads(t, 1200)
	setup := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "ckpt")
		st := newCheckpointBuilder(t, dir, 0, false)
		st.Add(reads)
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	flipByte := func(t *testing.T, path string, off int64) {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
	}
	resumeErr := func(dir string, k int) error {
		_, err := NewStreamBuilder(k, true, StreamOptions{
			Build: BuildOptions{Workers: 2}, CheckpointDir: dir, Resume: true,
		})
		return err
	}

	t.Run("corrupt run", func(t *testing.T) {
		dir := setup(t)
		runs, _ := filepath.Glob(filepath.Join(dir, "run*.bin"))
		if len(runs) == 0 {
			t.Fatal("no runs to corrupt")
		}
		flipByte(t, runs[0], runHeaderLen+5)
		if err := resumeErr(dir, 13); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("resume over corrupt run: %v, want ErrCheckpoint", err)
		}
	})
	t.Run("corrupt manifest", func(t *testing.T) {
		dir := setup(t)
		flipByte(t, filepath.Join(dir, ManifestName), 21)
		if err := resumeErr(dir, 13); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("resume over corrupt manifest: %v, want ErrCheckpoint", err)
		}
	})
	t.Run("geometry mismatch", func(t *testing.T) {
		dir := setup(t)
		if err := resumeErr(dir, 15); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("resume with different k: %v, want ErrCheckpoint", err)
		}
	})
	t.Run("fresh build refuses manifest", func(t *testing.T) {
		dir := setup(t)
		_, err := NewStreamBuilder(13, true, StreamOptions{
			Build: BuildOptions{Workers: 2}, CheckpointDir: dir,
		})
		if !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("fresh build into a manifest-bearing dir: %v, want ErrCheckpoint", err)
		}
	})
}

// TestResumeAdoptsShardGeometry: the run partition is only meaningful
// under the manifest's shard count, so resume overrides the caller's.
func TestResumeAdoptsShardGeometry(t *testing.T) {
	reads := randomReads(t, 1500)
	want, err := BuildParallel(reads, 13, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	st1, err := NewStreamBuilder(13, true, StreamOptions{
		Build: BuildOptions{Workers: 2, Shards: 4}, CheckpointDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	st1.Add(reads[:800])
	if err := st1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	st2, err := NewStreamBuilder(13, true, StreamOptions{
		Build: BuildOptions{Workers: 2, Shards: 16}, CheckpointDir: dir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st2.sb.shards); got != 4 {
		t.Fatalf("resume built %d shards, want the manifest's 4", got)
	}
	st2.Add(reads)
	got, err := st2.Build()
	if err != nil {
		t.Fatal(err)
	}
	spectraEqual(t, want, got, "shard-adoption")
}

// TestSpillFailureCleansUp is the regression test for the error-path
// audit: an injected spill-write failure must surface from Build, and no
// partial run file or spill directory may survive it.
func TestSpillFailureCleansUp(t *testing.T) {
	reads := randomReads(t, 3000)

	t.Run("ephemeral", func(t *testing.T) {
		tmp := t.TempDir()
		defer faultinject.Enable(&faultinject.Rule{Site: "spill", Op: faultinject.OpWrite, Sticky: true})()
		_, _, err := BuildOutOfCore(reads, 13, true, StreamOptions{
			Build:        BuildOptions{Workers: 2, Shards: 4},
			MemoryBudget: 1 << 14,
			TempDir:      tmp,
		})
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("Build error = %v, want ErrInjected", err)
		}
		if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
			t.Fatalf("failed build left %d entries in the temp dir", len(ents))
		}
	})

	t.Run("durable checkpoint", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "ckpt")
		st := newCheckpointBuilder(t, dir, 0, false)
		st.Add(reads[:600])
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		listed, _ := filepath.Glob(filepath.Join(dir, "run*.bin"))

		st.Add(reads[600:1200])
		disable := faultinject.Enable(&faultinject.Rule{Site: "spill", Op: faultinject.OpWrite, Sticky: true})
		err := st.Checkpoint()
		disable()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("Checkpoint error = %v, want ErrInjected", err)
		}
		// The failed run was removed; only manifest-listed runs (and
		// possibly complete pre-failure flushes, deleted as strays on
		// resume) remain — none partial.
		after, _ := filepath.Glob(filepath.Join(dir, "run*.bin"))
		if len(after) < len(listed) {
			t.Fatalf("checkpoint failure removed committed runs: %d -> %d", len(listed), len(after))
		}

		// The directory still resumes to a byte-identical spectrum.
		want, err := BuildParallel(reads, 13, true, BuildOptions{Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		st2 := newCheckpointBuilder(t, dir, 0, true)
		st2.Add(reads)
		got, err := st2.Build()
		if err != nil {
			t.Fatal(err)
		}
		spectraEqual(t, want, got, "post-failure-resume")
	})
}

// TestCheckpointCancelKeepsDir: cancellation is a resumable interruption,
// not a reason to discard durable state.
func TestCheckpointCancelKeepsDir(t *testing.T) {
	reads := randomReads(t, 1000)
	dir := filepath.Join(t.TempDir(), "ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	st, err := NewStreamBuilder(13, true, StreamOptions{
		Build:         BuildOptions{Workers: 2},
		CheckpointDir: dir,
		Context:       ctx,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Add(reads)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := st.Build(); err == nil {
		t.Fatal("Build after cancel succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatalf("cancelled build discarded the checkpoint: %v", err)
	}
}
