package kspectrum

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// The zero-copy spectrum store: OpenMapped serves Index/Contains/Count
// straight off a read-only memory mapping of a KSPC file instead of
// decoding it into fresh columns. Opening validates the header and the
// file geometry eagerly — O(1) work, so a daemon restart or autoscale
// event costs microseconds regardless of spectrum size — and defers the
// expensive integrity work:
//
//   - Each prefix bucket is structurally validated (in-range, strictly
//     ascending, correct prefix) on the first query that touches it.
//   - The whole-file CRC-32C is checked on the first full scan — an
//     explicit Verify call, an eager NeighborIndex build, a lazy replica
//     materialization, or re-encoding through WriteSpectrum — never
//     silently skipped.
//   - The prefix-bucket boundary table is resolved lazily per bucket by
//     binary search instead of a full counting pass, so first-query
//     latency pays for one bucket, not the whole file.
//
// A validation failure is sticky: Err reports it, every later query
// answers absent, and the serving layers surface it (the daemon fails
// requests against a spectrum whose verification failed). Close unmaps;
// afterwards queries answer absent and Err reports ErrSpectrumClosed —
// never a fault. Callers that want the eager PR-4 guarantee (whole file
// checked before anything serves) either call Verify after OpenMapped or
// load copied via ReadSpectrumFile.

// ErrSpectrumClosed is the sticky error reported by Err, Verify and
// WriteSpectrum after Close. Queries on a closed spectrum answer absent;
// they never fault.
var ErrSpectrumClosed = errors.New("kspectrum: spectrum is closed")

// MmapSupported reports whether this build serves OpenMapped spectra off
// a real memory mapping. When false (non-unix or big-endian platforms, or
// the repro_nommap build tag), OpenMapped transparently falls back to the
// copying reader with its eager whole-file validation.
const MmapSupported = mmapSupported

// mappedState is the lazy-validation machinery behind a mapped Spectrum.
// All fields are safe for concurrent readers: boundary resolution and
// bucket validation are idempotent (two racing goroutines both compute
// the same answer) and publish through atomics.
type mappedState struct {
	data []byte // the whole mapping, trailer included
	path string

	// bounds caches lazily-resolved bucket boundaries: bounds[b] == 0
	// means unresolved, v > 0 means bucket b starts at Kmers[v-1].
	bounds []atomic.Int32
	// checked is a bitset of structurally-validated buckets.
	checked []atomic.Uint32

	// failed flags a sticky validation failure; err (under mu) holds the
	// first cause. The fast query path loads only the bool.
	failed atomic.Bool
	mu     sync.Mutex
	err    error

	verifyOnce sync.Once
}

// OpenMapped opens the spectrum stored at path as a read-only memory
// mapping: the returned Spectrum's Kmers and Counts columns are views
// over the file, so opening allocates nothing proportional to its size
// and N processes share one copy of page cache. The header and file
// geometry are validated eagerly; ordering and the CRC-32C lazily (see
// the package comment above). Call Close to unmap when done; exiting the
// process also releases the mapping.
//
// On platforms without mmap support — or if mapping fails — OpenMapped
// falls back to ReadSpectrumFile: a fully-validated in-memory copy whose
// Close and Verify obey the same contract.
func OpenMapped(path string) (*Spectrum, error) {
	if !mmapSupported {
		return ReadSpectrumFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("kspectrum: open mapped: %w", err)
	}
	size := fi.Size()
	if size < storeHeaderLen+4 {
		return nil, fmt.Errorf("%s: %w", path, storeErr("truncated header"))
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("%s: %w", path, storeErr("file too large to map"))
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		// A filesystem that cannot map (or the fallback build) still
		// serves, just without the zero-copy win.
		return ReadSpectrumFile(path)
	}
	s, err := newMappedSpectrum(data, path)
	if err != nil {
		munmapFile(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// newMappedSpectrum validates the header and geometry of a complete
// mapped store image and builds the lazy Spectrum over it. It performs
// exactly the eager checks ReadSpectrum performs before its first column
// byte, plus the exact-size check that replaces streaming truncation
// detection.
func newMappedSpectrum(data []byte, path string) (*Spectrum, error) {
	hdr := data[:storeHeaderLen]
	if [4]byte(hdr[0:4]) != storeMagic {
		return nil, storeErr("bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != StoreVersion {
		return nil, storeErr("unsupported version %d (want %d)", v, StoreVersion)
	}
	k := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if k < 1 || k > seq.MaxK {
		return nil, storeErr("invalid k=%d", k)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:16])
	if flags&^storeFlagBothStrands != 0 {
		return nil, storeErr("unknown flags %#x", flags)
	}
	count64 := binary.LittleEndian.Uint64(hdr[16:24])
	if k < seq.MaxK && count64 > 1<<(2*uint(k)) {
		return nil, storeErr("count %d exceeds 4^%d distinct kmers", count64, k)
	}
	if count64 > (1<<31)-1 {
		return nil, storeErr("count %d exceeds the index limit", count64)
	}
	count := int(count64)
	want := int64(storeHeaderLen) + 12*int64(count) + 4
	if int64(len(data)) != want {
		if int64(len(data)) < want {
			return nil, storeErr("truncated store: %d bytes, want %d for %d kmers", len(data), want, count)
		}
		return nil, storeErr("trailing data after checksum")
	}

	s := &Spectrum{
		K:           k,
		BothStrands: flags&storeFlagBothStrands != 0,
	}
	if count > 0 {
		s.Kmers, s.Counts = mapColumns(data, count)
	}
	part := pickIndexPartition(count, k)
	s.pshift = part.Shift()
	s.mapped = &mappedState{
		data:    data,
		path:    path,
		bounds:  make([]atomic.Int32, part.Shards()+1),
		checked: make([]atomic.Uint32, uint(part.Shards()+31)/32),
	}
	return s, nil
}

// fail records the first validation failure; later queries answer absent
// and Err reports the cause.
func (m *mappedState) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
	m.failed.Store(true)
}

// stickyErr returns the recorded validation failure, if any.
func (m *mappedState) stickyErr() error {
	if !m.failed.Load() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// bound resolves the start index of bucket b lazily: a cached atomic read
// when already resolved, one binary search over the mapped kmer column
// otherwise. Racing resolvers compute the same value, so publication
// order does not matter.
func (m *mappedState) bound(s *Spectrum, b int) int {
	if v := m.bounds[b].Load(); v != 0 {
		return int(v) - 1
	}
	var lo int
	if b >= len(m.bounds)-1 {
		// One past the last bucket: the shifted target would overflow for
		// k = 32; the boundary is the column end by definition.
		lo = len(s.Kmers)
	} else {
		target := seq.Kmer(uint64(b) << s.pshift)
		lo = sort.Search(len(s.Kmers), func(i int) bool { return s.Kmers[i] >= target })
	}
	m.bounds[b].Store(int32(lo) + 1)
	return lo
}

// ensureBucket structurally validates bucket b — every kmer in range,
// carrying prefix b, strictly ascending — the first time a query touches
// it. Corruption inside a bucket is therefore detected on first touch,
// without ever scanning the rest of the file. Validation is idempotent;
// racing goroutines may both run it and both set the bit.
func (m *mappedState) ensureBucket(s *Spectrum, b, lo, hi int) bool {
	w, bit := b>>5, uint32(1)<<(b&31)
	if m.checked[w].Load()&bit != 0 {
		return true
	}
	if lo > hi {
		m.fail(fmt.Errorf("%s: %w", m.path, storeErr("bucket %#x has inverted bounds (kmers not sorted)", b)))
		return false
	}
	kmax := ^uint64(0) >> (64 - 2*uint(s.K))
	for i := lo; i < hi; i++ {
		km := uint64(s.Kmers[i])
		switch {
		case km > kmax:
			m.fail(fmt.Errorf("%s: %w", m.path, storeErr("kmer %#x out of range for k=%d", km, s.K)))
			return false
		case km>>s.pshift != uint64(b):
			m.fail(fmt.Errorf("%s: %w", m.path, storeErr("bucket %#x contains out-of-order kmer %#x", b, km)))
			return false
		case i > lo && km <= uint64(s.Kmers[i-1]):
			m.fail(fmt.Errorf("%s: %w", m.path, storeErr("kmers not strictly ascending in bucket %#x", b)))
			return false
		}
	}
	for {
		old := m.checked[w].Load()
		if old&bit != 0 || m.checked[w].CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// index is the mapped query path: lazy bucket boundaries, first-touch
// bucket validation, then the same short in-bucket scan as the frozen
// index.
func (m *mappedState) index(s *Spectrum, km seq.Kmer) int {
	if len(s.Kmers) == 0 || m.failed.Load() {
		return -1
	}
	b := int(uint64(km) >> s.pshift)
	if b >= len(m.bounds)-1 {
		// km carries bits beyond 2k — it cannot be a member, and (unlike
		// the frozen index, whose inputs are always masked to k) a corrupt
		// mapped column can hand such a kmer back to a caller probing the
		// spectrum's own entries. Answer absent instead of indexing past
		// the bucket table.
		return -1
	}
	lo, hi := m.bound(s, b), m.bound(s, b+1)
	if !m.ensureBucket(s, b, lo, hi) {
		return -1
	}
	for i := lo; i < hi; i++ {
		if s.Kmers[i] >= km {
			if s.Kmers[i] == km {
				return i
			}
			return -1
		}
	}
	return -1
}

// verify is the whole-file check: full ordering/range validation of the
// kmer column plus the trailing CRC-32C over every preceding byte —
// exactly what ReadSpectrum enforces while streaming. It runs at most
// once; the result is sticky either way.
func (m *mappedState) verify(s *Spectrum) error {
	m.verifyOnce.Do(func() {
		kmax := ^uint64(0) >> (64 - 2*uint(s.K))
		for i, km := range s.Kmers {
			if uint64(km) > kmax {
				m.fail(fmt.Errorf("%s: %w", m.path, storeErr("kmer %#x out of range for k=%d", uint64(km), s.K)))
				return
			}
			if i > 0 && km <= s.Kmers[i-1] {
				m.fail(fmt.Errorf("%s: %w", m.path, storeErr("kmers not strictly ascending at entry %d", i)))
				return
			}
		}
		body := m.data[:len(m.data)-4]
		want := binary.LittleEndian.Uint32(m.data[len(m.data)-4:])
		if got := crc32.Checksum(body, crcTable); got != want {
			m.fail(fmt.Errorf("%s: %w", m.path, storeErr("checksum mismatch (file %#x, computed %#x)", want, got)))
		}
	})
	return m.stickyErr()
}

// Mapped reports whether the spectrum serves queries off a memory
// mapping (false for built, copied and fallback-loaded spectra).
func (s *Spectrum) Mapped() bool { return s.mapped != nil }

// Err returns the spectrum's sticky validation state: nil for a healthy
// spectrum, the first lazy-validation or Verify failure for a corrupt
// mapped one, ErrSpectrumClosed after Close. Serving layers poll it to
// fail requests instead of silently answering absent.
func (s *Spectrum) Err() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	if s.mapped != nil {
		return s.mapped.stickyErr()
	}
	return nil
}

// Verify checks the whole store eagerly: full ordering validation and the
// trailing CRC-32C. For built and copied spectra — already validated at
// build or decode — it returns nil immediately; for mapped spectra the
// scan runs at most once and the result is sticky. Every full-scan
// operation (WriteSpectrum, NeighborIndex construction) verifies
// implicitly, so a corrupt mapped spectrum cannot survive a full read.
func (s *Spectrum) Verify() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	if s.mapped == nil {
		return nil
	}
	return s.mapped.verify(s)
}

// Close releases the spectrum's backing storage — for mapped spectra, the
// memory mapping. Afterwards queries answer absent and Err, Verify and
// WriteSpectrum report ErrSpectrumClosed; use-after-close is defined, not
// a fault. Close is idempotent. It must not race in-flight queries on a
// mapped spectrum: the unmap would pull pages out from under them.
// Closing a built or copied spectrum just drops the column references.
func (s *Spectrum) Close() error {
	if s.closeErr != nil {
		return nil
	}
	s.closeErr = ErrSpectrumClosed
	s.Kmers, s.Counts = nil, nil
	s.pbuckets = nil
	m := s.mapped
	s.mapped = nil
	if m != nil && m.data != nil {
		data := m.data
		m.data = nil
		return munmapFile(data)
	}
	return nil
}
