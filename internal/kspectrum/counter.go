package kspectrum

import (
	"sort"

	"repro/internal/seq"
)

// Counter is a purpose-built replacement for map[seq.Kmer]uint32 on the
// spectrum-construction hot path: an open-addressing linear-probing hash
// table with power-of-two capacity and no tombstones (entries are never
// deleted, only the whole table reset). One increment costs a multiply,
// a shift and on average barely more than one cache line, versus the
// generic map's hashing, bucket chasing and per-entry overhead.
//
// A slot is occupied iff its count is non-zero, which is sound because
// increments are always positive; the kmer 0 (AAA…A) therefore needs no
// sentinel. The table grows at 3/4 load by rehashing into double the
// capacity.
type Counter struct {
	keys []seq.Kmer
	vals []uint32
	n    int // occupied slots
	grow int // occupancy threshold that triggers doubling
}

// counterSlotBytes is the resident cost of one table slot: an 8-byte key
// plus a 4-byte count. Unlike the Go map there are no bucket headers and
// no per-entry pointers, so capacity × counterSlotBytes is the whole
// footprint (modulo the transient old table during a rehash).
const counterSlotBytes = 8 + 4

// minCounterSlots keeps fresh tables small: shards start near-empty and
// most never see more than a few hundred kmers at small scale.
const minCounterSlots = 64

// slotsFor is the single source of the table-sizing rule: the power-of-two
// capacity a counter holding n entries needs (capacity ≥ n/0.75, floored
// at minCounterSlots). NewCounter and ApproxAccumulatorBytes must agree on
// it, or the StreamBuilder's budget math would diverge from the footprint
// tables actually reach.
func slotsFor(n int) int {
	slots := minCounterSlots
	for slots*3 < n*4 {
		slots *= 2
	}
	return slots
}

// NewCounter returns an empty counter sized for about `hint` entries
// (<= 0 picks the minimum capacity).
func NewCounter(hint int) *Counter {
	c := &Counter{}
	c.alloc(slotsFor(hint))
	return c
}

func (c *Counter) alloc(slots int) {
	c.keys = make([]seq.Kmer, slots)
	c.vals = make([]uint32, slots)
	c.grow = slots * 3 / 4
	c.n = 0
}

// mix is the xor-shift/fibonacci finalizer scattering kmer bits across the
// table index. Packed kmers are highly structured (neighboring windows
// share all but two bits), so the raw value must not address the table
// directly.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0x9E3779B97F4A7C15 // 2^64 / φ
	x ^= x >> 29
	return x
}

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return c.n }

// Inc adds delta (> 0) to km's count, inserting it if absent. Counts
// saturate at MaxUint32 instead of wrapping: a wrap to 0 would read as an
// empty slot and structurally corrupt the table (the map it replaced
// merely wrapped the value), and at ~4 billion occurrences the count has
// long stopped carrying information anyway.
func (c *Counter) Inc(km seq.Kmer, delta uint32) {
	if delta == 0 {
		return
	}
	mask := uint64(len(c.keys) - 1)
	i := mix(uint64(km)) & mask
	for {
		if c.vals[i] == 0 {
			if c.n >= c.grow {
				c.rehash()
				c.Inc(km, delta)
				return
			}
			c.keys[i] = km
			c.vals[i] = delta
			c.n++
			return
		}
		if c.keys[i] == km {
			if v := c.vals[i]; delta > ^uint32(0)-v {
				c.vals[i] = ^uint32(0)
			} else {
				c.vals[i] = v + delta
			}
			return
		}
		i = (i + 1) & mask
	}
}

// Get returns km's count (0 if absent).
func (c *Counter) Get(km seq.Kmer) uint32 {
	mask := uint64(len(c.keys) - 1)
	i := mix(uint64(km)) & mask
	for {
		if c.vals[i] == 0 {
			return 0
		}
		if c.keys[i] == km {
			return c.vals[i]
		}
		i = (i + 1) & mask
	}
}

func (c *Counter) rehash() {
	oldK, oldV := c.keys, c.vals
	c.alloc(2 * len(oldK))
	mask := uint64(len(c.keys) - 1)
	for j, v := range oldV {
		if v == 0 {
			continue
		}
		i := mix(uint64(oldK[j])) & mask
		for c.vals[i] != 0 {
			i = (i + 1) & mask
		}
		c.keys[i] = oldK[j]
		c.vals[i] = v
		c.n++
	}
}

// AppendSortedInto appends the counter's entries in ascending key order to
// the two parallel slices and returns them — the extraction step of the
// sharded Build, replacing the map-iterate-then-sort path. Keys are sorted
// alone and the counts re-fetched by O(1) probe: measurably faster than
// dragging the counts through the sort in lockstep, because sort.Slice
// keeps the 8-byte key swaps on its optimized path while a paired
// sort.Interface pays a dispatched double swap per exchange (~1.6× slower
// end-to-end on the serial spectrum build).
func (c *Counter) AppendSortedInto(kmers []seq.Kmer, counts []uint32) ([]seq.Kmer, []uint32) {
	kstart := len(kmers)
	for i, v := range c.vals {
		if v != 0 {
			kmers = append(kmers, c.keys[i])
		}
	}
	added := kmers[kstart:]
	sort.Slice(added, func(a, b int) bool { return added[a] < added[b] })
	for _, km := range added {
		counts = append(counts, c.Get(km))
	}
	return kmers, counts
}

// ResidentBytes reports the table's actual memory footprint — the real
// number the StreamBuilder budgets against, replacing the former
// per-map-entry estimate.
func (c *Counter) ResidentBytes() int64 {
	return int64(len(c.keys)) * counterSlotBytes
}

// ApproxAccumulatorBytes is the resident footprint a Counter holding n
// entries reaches: the next power-of-two capacity ≥ n/0.75 at
// counterSlotBytes per slot. Benchmarks and budget math use it to relate
// distinct-kmer counts to accumulator memory.
func ApproxAccumulatorBytes(n int) int64 {
	return int64(slotsFor(n)) * counterSlotBytes
}

// tileCounter is the paired-uint32-value variant of Counter backing
// TileSet: per tile it tracks Oc (total occurrences) and Og (high-quality
// occurrences). A slot is occupied iff Oc is non-zero — every insertion
// increments Oc, so the invariant holds.
type tileCounter struct {
	keys []seq.Kmer
	oc   []uint32
	og   []uint32
	n    int
	grow int
}

func newTileCounter() *tileCounter {
	tc := &tileCounter{}
	tc.alloc(minCounterSlots)
	return tc
}

func (tc *tileCounter) alloc(slots int) {
	tc.keys = make([]seq.Kmer, slots)
	tc.oc = make([]uint32, slots)
	tc.og = make([]uint32, slots)
	tc.grow = slots * 3 / 4
	tc.n = 0
}

// Len returns the number of distinct tiles.
func (tc *tileCounter) Len() int { return tc.n }

// add records one occurrence of tile, high-quality when hq. Like
// Counter.Inc, counts saturate at MaxUint32 — Oc wrapping to 0 would free
// an occupied slot.
func (tc *tileCounter) add(tile seq.Kmer, hq bool) {
	mask := uint64(len(tc.keys) - 1)
	i := mix(uint64(tile)) & mask
	for {
		if tc.oc[i] == 0 {
			if tc.n >= tc.grow {
				tc.rehash()
				tc.add(tile, hq)
				return
			}
			tc.keys[i] = tile
			tc.oc[i] = 1
			if hq {
				tc.og[i] = 1
			}
			tc.n++
			return
		}
		if tc.keys[i] == tile {
			if tc.oc[i] != ^uint32(0) {
				tc.oc[i]++
			}
			if hq && tc.og[i] != ^uint32(0) {
				tc.og[i]++
			}
			return
		}
		i = (i + 1) & mask
	}
}

// get returns the tile's counts (zero counts if unseen).
func (tc *tileCounter) get(tile seq.Kmer) TileCount {
	mask := uint64(len(tc.keys) - 1)
	i := mix(uint64(tile)) & mask
	for {
		if tc.oc[i] == 0 {
			return TileCount{}
		}
		if tc.keys[i] == tile {
			return TileCount{Oc: tc.oc[i], Og: tc.og[i]}
		}
		i = (i + 1) & mask
	}
}

func (tc *tileCounter) rehash() {
	oldK, oldOc, oldOg := tc.keys, tc.oc, tc.og
	tc.alloc(2 * len(oldK))
	mask := uint64(len(tc.keys) - 1)
	for j, v := range oldOc {
		if v == 0 {
			continue
		}
		i := mix(uint64(oldK[j])) & mask
		for tc.oc[i] != 0 {
			i = (i + 1) & mask
		}
		tc.keys[i] = oldK[j]
		tc.oc[i] = v
		tc.og[i] = oldOg[j]
		tc.n++
	}
}

// forEach visits every distinct tile in table (not sorted) order.
func (tc *tileCounter) forEach(fn func(tile seq.Kmer, c TileCount)) {
	for i, v := range tc.oc {
		if v != 0 {
			fn(tc.keys[i], TileCount{Oc: v, Og: tc.og[i]})
		}
	}
}
