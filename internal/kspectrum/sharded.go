package kspectrum

import (
	"runtime"
	"sync"

	"repro/internal/seq"
)

// BuildOptions tunes the sharded parallel spectrum engine. The zero value
// asks for full parallelism: all cores counting into a worker-scaled number
// of shards. Results are byte-identical for every (Workers, Shards) choice —
// occurrence counting is commutative and the shard partition is a refinement
// of the sorted order — so parallelism is purely a throughput knob.
type BuildOptions struct {
	// Workers is the number of counting goroutines each Add call fans its
	// read chunks out to (<= 0 selects GOMAXPROCS). The bound is per call:
	// callers streaming chunks through concurrent Adds multiply it.
	Workers int
	// Shards is the number of kmer-space partitions. Kmers are routed by
	// their high bits, so each shard owns one contiguous range of the
	// sorted spectrum. The value is rounded up to a power of two and capped
	// at min(4^k, 1024); <= 0 derives 4x the worker count (1 when serial).
	Shards int
}

// resolve materializes the option defaults for a given k.
func (o BuildOptions) resolve(k int) (workers int, shardBits uint) {
	workers = o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := o.Shards
	if shards <= 0 {
		if workers == 1 {
			shards = 1
		} else {
			shards = 4 * workers
		}
	}
	return workers, prefixBitsFor(shards, min(10, uint(2*k)))
}

// chunkSize is the read-batch granularity of the producer: large enough to
// amortize channel and lock traffic, small enough to balance uneven chunks.
const chunkSize = 512

// countShard is one stripe of the accumulator: a contiguous high-bit range
// of kmer space with its own lock, so concurrent writers only contend when
// flushing into the same range. Counting goes through the open-addressing
// Counter rather than a Go map — see counter.go.
type countShard struct {
	mu     sync.Mutex
	counts *Counter
}

// SpectrumBuilder accumulates the k-spectrum incrementally, supporting the
// §2.3 divide-and-merge strategy: read chunks are streamed through Add and
// need not be retained. Internally it is a sharded parallel engine — each
// Add scatters kmers into per-shard buffers by high bits and flushes them
// into striped accumulators, so Add is safe to call from multiple
// goroutines and large chunks are counted by a worker pool.
type SpectrumBuilder struct {
	k           int
	bothStrands bool
	workers     int
	part        PrefixPartition
	shards      []countShard

	// onFlush, when set, is invoked after each buffer flush while the
	// shard's stripe lock is still held. It is the out-of-core hook: the
	// StreamBuilder spills oversized accumulators from here (see stream.go).
	onFlush func(s int, shard *countShard)
}

// NewSpectrumBuilder validates k and prepares an empty accumulator. An
// optional BuildOptions configures parallelism; omitting it uses the
// defaults (all cores, worker-scaled shard count).
func NewSpectrumBuilder(k int, bothStrands bool, opts ...BuildOptions) (*SpectrumBuilder, error) {
	if k <= 0 || k > seq.MaxK {
		return nil, errInvalidK(k)
	}
	var o BuildOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	workers, shardBits := o.resolve(k)
	part := PrefixPartition{K: k, Bits: shardBits}
	sb := &SpectrumBuilder{
		k:           k,
		bothStrands: bothStrands,
		workers:     workers,
		part:        part,
		shards:      make([]countShard, part.Shards()),
	}
	for i := range sb.shards {
		sb.shards[i].counts = NewCounter(0)
	}
	return sb, nil
}

// Add merges one chunk of reads into the accumulator, fanning large chunks
// out to the builder's counting workers. It may be called concurrently.
func (sb *SpectrumBuilder) Add(reads []seq.Read) {
	if sb.workers == 1 || len(reads) < 2*chunkSize {
		// Still chunked so scatter buffers stay cache-sized.
		buf := make([][]seq.Kmer, len(sb.shards))
		for lo := 0; lo < len(reads); lo += chunkSize {
			sb.countChunk(reads[lo:min(lo+chunkSize, len(reads))], buf)
		}
		return
	}
	chunks := make(chan []seq.Read, sb.workers)
	var wg sync.WaitGroup
	for w := 0; w < sb.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([][]seq.Kmer, len(sb.shards))
			for c := range chunks {
				sb.countChunk(c, buf)
			}
		}()
	}
	for lo := 0; lo < len(reads); lo += chunkSize {
		chunks <- reads[lo:min(lo+chunkSize, len(reads))]
	}
	close(chunks)
	wg.Wait()
}

// countChunk scatters one read chunk's kmers into the caller-owned
// per-shard buffers (reused across chunks, reset here), then flushes each
// buffer into its striped accumulator under the stripe lock. Buffering
// keeps the critical section to a tight increment loop.
func (sb *SpectrumBuilder) countChunk(reads []seq.Read, buf [][]seq.Kmer) {
	for s := range buf {
		buf[s] = buf[s][:0]
	}
	for _, r := range reads {
		ForEachKmer(r.Seq, sb.k, func(km seq.Kmer, _ int) {
			buf[sb.part.ShardOf(km)] = append(buf[sb.part.ShardOf(km)], km)
			if sb.bothStrands {
				rc := seq.RevComp(km, sb.k)
				buf[sb.part.ShardOf(rc)] = append(buf[sb.part.ShardOf(rc)], rc)
			}
		})
	}
	for s := range buf {
		if len(buf[s]) == 0 {
			continue
		}
		shard := &sb.shards[s]
		shard.mu.Lock()
		for _, km := range buf[s] {
			shard.counts.Inc(km, 1)
		}
		if sb.onFlush != nil {
			sb.onFlush(s, shard)
		}
		shard.mu.Unlock()
	}
}

// Build finalizes the sorted spectrum: each shard is extracted and sorted
// independently (in parallel), and because shard s holds exactly the kmers
// whose high bits equal s, the k-way merge of the sorted shards degenerates
// to concatenation in shard order. The builder remains usable afterwards.
func (sb *SpectrumBuilder) Build() *Spectrum {
	type shardRun struct {
		kmers  []seq.Kmer
		counts []uint32
	}
	runs := make([]shardRun, len(sb.shards))
	var wg sync.WaitGroup
	work := make(chan int, len(sb.shards))
	for w := 0; w < min(sb.workers, len(sb.shards)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				shard := &sb.shards[s]
				shard.mu.Lock()
				if shard.counts.Len() == 0 {
					shard.mu.Unlock()
					continue
				}
				kmers := make([]seq.Kmer, 0, shard.counts.Len())
				counts := make([]uint32, 0, shard.counts.Len())
				kmers, counts = shard.counts.AppendSortedInto(kmers, counts)
				shard.mu.Unlock()
				runs[s] = shardRun{kmers: kmers, counts: counts}
			}
		}()
	}
	for s := range sb.shards {
		work <- s
	}
	close(work)
	wg.Wait()

	total := 0
	for _, r := range runs {
		total += len(r.kmers)
	}
	s := &Spectrum{
		K:           sb.k,
		BothStrands: sb.bothStrands,
		Kmers:       make([]seq.Kmer, 0, total),
		Counts:      make([]uint32, 0, total),
	}
	for _, r := range runs {
		s.Kmers = append(s.Kmers, r.kmers...)
		s.Counts = append(s.Counts, r.counts...)
	}
	s.freezeIndex()
	return s
}
