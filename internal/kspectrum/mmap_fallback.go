//go:build !((darwin || dragonfly || freebsd || linux || netbsd || openbsd) && (386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64)) || repro_nommap

package kspectrum

import (
	"errors"
	"os"
)

// Fallback shim for platforms without a usable read-only mapping (non-unix,
// big-endian — where reinterpreting the LE columns in place would be
// wrong) and for builds forcing the portability path via the repro_nommap
// tag. OpenMapped still works: it falls back to the copying reader, so
// callers program against one API everywhere.

// mmapSupported reports that this build copies files instead of mapping
// them.
const mmapSupported = false

// errMmapUnsupported makes mmapFile's contract explicit; OpenMapped treats
// it (like any mmap failure) as "fall back to the copying reader".
var errMmapUnsupported = errors.New("kspectrum: memory mapping unsupported on this platform")

func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errMmapUnsupported
}

func munmapFile(b []byte) error { return nil }
