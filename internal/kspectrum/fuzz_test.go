package kspectrum

import (
	"encoding/binary"
	"testing"

	"repro/internal/seq"
)

// FuzzCounter replays an arbitrary Inc/Get sequence against the
// open-addressing Counter and a map[uint64]uint32 oracle: every
// intermediate Get, the final Len, and the sorted extraction must agree.
// Each 9-byte record of the input is one operation (8-byte key, 1-byte
// delta; delta 0 exercises the documented no-op).
func FuzzCounter(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 9))
	f.Add([]byte("\x01\x00\x00\x00\x00\x00\x00\x00\x02" +
		"\x01\x00\x00\x00\x00\x00\x00\x00\x03" +
		"\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCounter(0)
		oracle := map[uint64]uint32{}
		for len(data) >= 9 {
			key := binary.LittleEndian.Uint64(data[:8])
			delta := uint32(data[8])
			data = data[9:]
			c.Inc(seq.Kmer(key), delta)
			if delta > 0 {
				oracle[key] += delta
			}
			if got, want := c.Get(seq.Kmer(key)), oracle[key]; got != want {
				t.Fatalf("Get(%#x) = %d, oracle %d", key, got, want)
			}
		}
		if c.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle %d", c.Len(), len(oracle))
		}
		kmers, counts := c.AppendSortedInto(nil, nil)
		if len(kmers) != len(oracle) {
			t.Fatalf("extracted %d entries, oracle %d", len(kmers), len(oracle))
		}
		for i, km := range kmers {
			if i > 0 && kmers[i-1] >= km {
				t.Fatalf("extraction not strictly sorted at %d", i)
			}
			if counts[i] != oracle[uint64(km)] {
				t.Fatalf("count[%#x] = %d, oracle %d", uint64(km), counts[i], oracle[uint64(km)])
			}
		}
	})
}
