package kspectrum

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// SplitShards cuts a spectrum into n per-prefix shards under the same
// high-bit partition the builder and the query index use. n is rounded
// up to a power of two and capped at 4^k. Each returned sub-spectrum is
// a zero-copy view over the source's columns (shard i holds exactly the
// kmers whose top partition bits equal i — one contiguous sorted range),
// valid as a standalone spectrum: WriteSpectrumFile persists it as a
// normal KSPC store, and the concatenation of the shards in shard order
// reproduces the source byte-for-byte. Empty shards are returned too —
// a cluster needs a file per shard so ownership stays explicit.
//
// A memory-mapped source is fully verified first, so corruption is
// rejected at split time rather than smeared across shard files.
func SplitShards(s *Spectrum, n int) (PrefixPartition, []*Spectrum, error) {
	if err := s.Verify(); err != nil {
		return PrefixPartition{}, nil, err
	}
	if n < 1 {
		return PrefixPartition{}, nil, fmt.Errorf("kspectrum: invalid shard count %d", n)
	}
	part := PrefixPartition{K: s.K, Bits: prefixBitsFor(n, uint(2*s.K))}
	shards := make([]*Spectrum, part.Shards())
	lo := 0
	for i := range shards {
		hi := len(s.Kmers)
		if i+1 < len(shards) {
			target := seq.Kmer(uint64(i+1) << part.Shift())
			hi = lo + sort.Search(len(s.Kmers)-lo, func(j int) bool { return s.Kmers[lo+j] >= target })
		}
		shards[i] = &Spectrum{
			K:           s.K,
			Kmers:       s.Kmers[lo:hi:hi],
			Counts:      s.Counts[lo:hi:hi],
			BothStrands: s.BothStrands,
		}
		lo = hi
	}
	return part, shards, nil
}

// ShardFileName is the canonical file name of shard i of n for a
// spectrum whose base name (no extension) is base. The stem doubles as
// the daemon's registry entry name for the shard, so it sticks to the
// registry's name alphabet.
func ShardFileName(base string, i, n int) string {
	return fmt.Sprintf("%s.s%dof%d.kspc", base, i, n)
}

// ShardEntryName is ShardFileName without the .kspc extension — the
// name a serving node registers shard i of n under.
func ShardEntryName(base string, i, n int) string {
	return fmt.Sprintf("%s.s%dof%d", base, i, n)
}
