package kspectrum

import "encoding/binary"

// The store conformance corruption matrix, exported so every backend's
// test suite — the streaming copier, the zero-copy mapping, and the
// distributed RemoteSpectrum in internal/remote — faces the same
// adversarial inputs. The table lives in a non-test file purely so
// other packages' tests can import it; nothing in production code calls
// it.

// CorruptionCase is one mutilated store image a conformant backend must
// reject — eagerly at open, or (for lazily-validating backends) at the
// latest by Verify, never by crashing or serving wrong answers.
type CorruptionCase struct {
	Name string
	Data []byte
}

// CorruptionCases derives the corruption matrix from a valid encoding
// of s: truncations of every section, header field forgeries, single-bit
// flips in each column and the trailer, ordering violations, and
// trailing garbage.
func CorruptionCases(s *Spectrum, valid []byte) []CorruptionCase {
	kmerCol := storeHeaderLen
	countCol := kmerCol + 8*len(s.Kmers)
	crcOff := len(valid) - 4

	mutate := func(fn func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return fn(b)
	}
	return []CorruptionCase{
		{"empty", nil},
		{"truncated magic", valid[:2]},
		{"truncated header", valid[:storeHeaderLen-3]},
		{"truncated kmer column", valid[:kmerCol+8*len(s.Kmers)/2]},
		{"truncated count column", valid[:countCol+4*len(s.Kmers)/2-1]},
		{"truncated checksum", valid[:len(valid)-1]},
		{"wrong magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"wrong version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], StoreVersion+1)
			return b
		})},
		{"zero k", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 0)
			return b
		})},
		{"oversized k", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 33)
			return b
		})},
		{"unknown flags", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], 0xF0)
			return b
		})},
		{"absurd count", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
			return b
		})},
		{"forged count, k=32, header only", func() []byte {
			// k in [16,32] evades the 4^k bound and 2^31-1 evades the
			// index limit: the decoder must fail on truncation after at
			// most one slab, never allocate count-sized columns up front
			// (this case completing quickly IS the assertion).
			hdr := append([]byte(nil), valid[:storeHeaderLen]...)
			binary.LittleEndian.PutUint32(hdr[8:12], 32)
			binary.LittleEndian.PutUint64(hdr[16:24], (1<<31)-1)
			return hdr
		}()},
		{"flipped kmer byte", mutate(func(b []byte) []byte { b[kmerCol+3] ^= 0x40; return b })},
		{"flipped count byte", mutate(func(b []byte) []byte { b[countCol] ^= 0x01; return b })},
		{"flipped crc byte", mutate(func(b []byte) []byte { b[crcOff] ^= 0x01; return b })},
		{"kmer order swap", mutate(func(b []byte) []byte {
			// Swap the first two kmer records: individually valid values,
			// but the strict-ascending invariant breaks.
			tmp := make([]byte, 8)
			copy(tmp, b[kmerCol:kmerCol+8])
			copy(b[kmerCol:kmerCol+8], b[kmerCol+8:kmerCol+16])
			copy(b[kmerCol+8:kmerCol+16], tmp)
			return b
		})},
		{"out-of-range kmer", mutate(func(b []byte) []byte {
			// Set high bits beyond 2k on the last kmer record.
			b[countCol-1] = 0xFF
			return b
		})},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xAA)},
	}
}
