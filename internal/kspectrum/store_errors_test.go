package kspectrum

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/seq"
)

// The I/O-failure audit of the store: every encode/decode leg must
// propagate a sink or source failure (wrapped, distinguishable from
// corruption), and the file-level helpers must leave no temp state
// behind on any error path.

// errBrokenPipe is the injected I/O failure; tests assert it survives
// wrapping via errors.Is.
var errBrokenPipe = errors.New("injected: broken pipe")

// failWriter accepts `budget` bytes, then fails every write.
type failWriter struct {
	budget int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errBrokenPipe
	}
	w.budget -= len(p)
	return len(p), nil
}

// shortWriter violates the io.Writer contract once: a partial write with
// a nil error. bufio maps that to io.ErrShortWrite; the direct trailer
// write must too.
type shortWriter struct {
	budget int
}

func (w *shortWriter) Write(p []byte) (int, error) {
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, nil
	}
	w.budget -= len(p)
	return len(p), nil
}

// failReader serves `budget` bytes of a valid image, then fails.
type failReader struct {
	data   []byte
	budget int
}

func (r *failReader) Read(p []byte) (int, error) {
	if r.budget == 0 {
		return 0, errBrokenPipe
	}
	n := min(len(p), r.budget, len(r.data))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	r.budget -= n
	return n, nil
}

// TestWriteSpectrumFailingWriter: a sink failing in any section — header,
// kmer column, count column, trailer — must surface the cause, wrapped.
func TestWriteSpectrumFailingWriter(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	total := len(encodeSpectrum(t, s))
	for _, budget := range []int{0, storeHeaderLen, storeHeaderLen + 8*len(s.Kmers)/2, total - 4, total - 1} {
		err := WriteSpectrum(&failWriter{budget: budget}, s)
		if err == nil {
			t.Fatalf("budget %d: write succeeded against a failing sink", budget)
		}
		if !errors.Is(err, errBrokenPipe) {
			t.Fatalf("budget %d: cause lost in wrapping: %v", budget, err)
		}
	}
}

// TestWriteSpectrumShortWrite: a contract-violating sink (partial write,
// nil error) must yield io.ErrShortWrite everywhere — including the
// trailer, which bypasses bufio's own short-write mapping.
func TestWriteSpectrumShortWrite(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	total := len(encodeSpectrum(t, s))
	for _, budget := range []int{storeHeaderLen / 2, total - 4, total - 2} {
		err := WriteSpectrum(&shortWriter{budget: budget}, s)
		if err == nil {
			t.Fatalf("budget %d: write succeeded against a short-writing sink", budget)
		}
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("budget %d: want io.ErrShortWrite, got: %v", budget, err)
		}
	}
}

// TestReadSpectrumFailingReader: a source failing mid-stream is an I/O
// error, not file corruption — the cause must survive wrapping and must
// NOT be conflated with ErrSpectrumStore (a daemon retries transport
// errors but quarantines corrupt files).
func TestReadSpectrumFailingReader(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	valid := encodeSpectrum(t, s)
	for _, budget := range []int{0, storeHeaderLen - 1, storeHeaderLen, len(valid) / 2, len(valid) - 2} {
		_, err := ReadSpectrum(&failReader{data: valid, budget: budget})
		if err == nil {
			t.Fatalf("budget %d: read succeeded against a failing source", budget)
		}
		if !errors.Is(err, errBrokenPipe) {
			t.Fatalf("budget %d: cause lost in wrapping: %v", budget, err)
		}
		if errors.Is(err, ErrSpectrumStore) {
			t.Fatalf("budget %d: I/O failure misreported as corruption: %v", budget, err)
		}
	}
}

// TestWriteSpectrumFileErrorPaths: every failure of the atomic file
// write must remove its temporary sibling and name the destination path.
func TestWriteSpectrumFileErrorPaths(t *testing.T) {
	assertClean := func(t *testing.T, dir string) {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			t.Fatalf("temp dropping left behind: %s", e.Name())
		}
	}

	t.Run("invalid spectrum", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "bad.kspc")
		err := WriteSpectrumFile(path, &Spectrum{K: 0})
		if err == nil {
			t.Fatal("wrote a spectrum with invalid k")
		}
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("error does not name the destination: %v", err)
		}
		assertClean(t, dir)
	})

	t.Run("mismatched columns", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "bad.kspc")
		s := &Spectrum{K: 4, Kmers: []seq.Kmer{1, 2}, Counts: []uint32{1}}
		if err := WriteSpectrumFile(path, s); err == nil {
			t.Fatal("wrote a spectrum with ragged columns")
		}
		assertClean(t, dir)
	})

	t.Run("closed spectrum", func(t *testing.T) {
		dir := t.TempDir()
		s := storeTestSpectrum(t, 8, 50, true)
		good := filepath.Join(dir, "good.kspc")
		if err := WriteSpectrumFile(good, s); err != nil {
			t.Fatal(err)
		}
		spec, err := OpenMapped(good)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "copy.kspc")
		if err := WriteSpectrumFile(path, spec); !errors.Is(err, ErrSpectrumClosed) {
			t.Fatalf("re-encoding a closed spectrum: %v, want ErrSpectrumClosed", err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatal("failed write left a destination file")
		}
	})

	t.Run("unwritable directory", func(t *testing.T) {
		s := storeTestSpectrum(t, 8, 50, true)
		path := filepath.Join(t.TempDir(), "no-such-dir", "spec.kspc")
		err := WriteSpectrumFile(path, s)
		if err == nil {
			t.Fatal("wrote into a nonexistent directory")
		}
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("error does not name the destination: %v", err)
		}
	})
}

// TestReadSpectrumFileWrapsPath: load failures must identify the
// offending file — the daemon registry loads many stores and its log has
// to say which one was bad.
func TestReadSpectrumFileWrapsPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.kspc")
	if err := os.WriteFile(path, []byte("KSPCgarbage-not-a-store"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, open := range []struct {
		name string
		fn   func(string) (*Spectrum, error)
	}{
		{"ReadSpectrumFile", ReadSpectrumFile},
		{"OpenMapped", OpenMapped},
	} {
		_, err := open.fn(path)
		if err == nil {
			t.Fatalf("%s accepted garbage", open.name)
		}
		if !errors.Is(err, ErrSpectrumStore) {
			t.Fatalf("%s: error does not wrap ErrSpectrumStore: %v", open.name, err)
		}
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("%s: error does not name the file: %v", open.name, err)
		}
		missing := filepath.Join(t.TempDir(), "absent.kspc")
		if _, err := open.fn(missing); !os.IsNotExist(err) {
			t.Fatalf("%s on a missing file: %v, want IsNotExist", open.name, err)
		}
	}
}

// TestWriteSpectrumBufferUnchanged pins that the happy path is not
// perturbed by the error-path hardening: a plain in-memory encode still
// round-trips.
func TestWriteSpectrumBufferUnchanged(t *testing.T) {
	s := storeTestSpectrum(t, 10, 100, true)
	var buf bytes.Buffer
	if err := WriteSpectrum(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpectrum(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != s.Size() {
		t.Fatalf("round trip lost kmers: %d vs %d", got.Size(), s.Size())
	}
}
