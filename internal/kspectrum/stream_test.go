package kspectrum

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestStreamBuilderByteIdentical is the acceptance property of the
// out-of-core engine: for budget ∈ {unlimited, tiny-forcing-spill} ×
// workers ∈ {1, 8}, the StreamBuilder's spectrum is byte-identical to the
// in-memory SpectrumBuilder's. Run under -race this doubles as the spill
// path's data-race test.
func TestStreamBuilderByteIdentical(t *testing.T) {
	reads := randomReads(t, 3000)
	want, err := BuildParallel(reads, 13, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1 << 15} {
		for _, workers := range []int{1, 8} {
			opts := StreamOptions{
				Build:        BuildOptions{Workers: workers, Shards: 8},
				MemoryBudget: budget,
				TempDir:      t.TempDir(),
			}
			got, stats, err := BuildOutOfCore(reads, 13, true, opts)
			if err != nil {
				t.Fatal(err)
			}
			label := "budget=unlimited"
			if budget > 0 {
				label = "budget=tiny"
				if stats.SpilledRuns == 0 {
					t.Fatalf("workers=%d: tiny budget spilled nothing", workers)
				}
			} else if stats.SpilledRuns != 0 {
				t.Fatalf("workers=%d: unlimited budget spilled %d runs", workers, stats.SpilledRuns)
			}
			spectraEqual(t, want, got, label)
		}
	}
}

// TestStreamBuilderConcurrentAdd drives Add from many goroutines with a
// spill-forcing budget — the full out-of-core ingestion pattern.
func TestStreamBuilderConcurrentAdd(t *testing.T) {
	reads := randomReads(t, 3000)
	want, err := BuildParallel(reads, 11, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamBuilder(11, true, StreamOptions{
		Build:        BuildOptions{Workers: 2, Shards: 7},
		MemoryBudget: 1 << 15,
		TempDir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 9
	var wg sync.WaitGroup
	size := (len(reads) + chunks - 1) / chunks
	for lo := 0; lo < len(reads); lo += size {
		hi := min(lo+size, len(reads))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			st.Add(reads[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	got, err := st.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats().SpilledRuns == 0 {
		t.Fatal("tiny budget spilled nothing under concurrent Add")
	}
	spectraEqual(t, want, got, "stream-concurrent-add")
}

// TestStreamBuilderCleanup verifies Build and Close remove the spill
// directory, and that a consumed builder refuses another Build.
func TestStreamBuilderCleanup(t *testing.T) {
	reads := randomReads(t, 1000)
	tmp := t.TempDir()
	st, err := NewStreamBuilder(13, true, StreamOptions{
		Build:        BuildOptions{Workers: 2, Shards: 4},
		MemoryBudget: 1 << 14,
		TempDir:      tmp,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.Add(reads)
	if _, err := st.Build(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned: %d entries left", len(ents))
	}
	if _, err := st.Build(); err == nil {
		t.Fatal("second Build should fail on a consumed builder")
	}

	// Close without Build also cleans up.
	st2, err := NewStreamBuilder(13, true, StreamOptions{
		Build: BuildOptions{Workers: 1}, MemoryBudget: 1 << 14, TempDir: tmp,
	})
	if err != nil {
		t.Fatal(err)
	}
	st2.Add(reads)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if ents, _ := filepath.Glob(filepath.Join(tmp, "kspectrum-spill-*")); len(ents) != 0 {
		t.Fatalf("Close left %d spill dirs", len(ents))
	}
}
