package kspectrum

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/seq"
)

// storeTestSpectrum builds a real spectrum from random reads.
func storeTestSpectrum(t testing.TB, k, reads int, bothStrands bool) *Spectrum {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	rs := make([]seq.Read, reads)
	for i := range rs {
		b := make([]byte, 60)
		for j := range b {
			b[j] = "ACGT"[rng.Intn(4)]
		}
		rs[i] = seq.Read{ID: "r", Seq: b}
	}
	s, err := Build(rs, k, bothStrands)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func encodeSpectrum(t testing.TB, s *Spectrum) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSpectrum(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpectrumStoreRoundTrip: Write→Read must reproduce the in-memory
// build exactly — K, BothStrands, Kmers, Counts — and the loaded spectrum
// must answer queries through the frozen index identically to the
// original.
func TestSpectrumStoreRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		k           int
		bothStrands bool
	}{{12, true}, {12, false}, {1, true}, {31, true}, {32, false}} {
		s := storeTestSpectrum(t, tc.k, 200, tc.bothStrands)
		got, err := ReadSpectrum(bytes.NewReader(encodeSpectrum(t, s)))
		if err != nil {
			t.Fatalf("k=%d: %v", tc.k, err)
		}
		if got.K != s.K || got.BothStrands != s.BothStrands {
			t.Fatalf("k=%d: metadata mismatch: got (%d,%v) want (%d,%v)",
				tc.k, got.K, got.BothStrands, s.K, s.BothStrands)
		}
		if !reflect.DeepEqual(got.Kmers, s.Kmers) || !reflect.DeepEqual(got.Counts, s.Counts) {
			t.Fatalf("k=%d: columns differ after round trip", tc.k)
		}
		if got.pbuckets == nil {
			t.Fatalf("k=%d: loaded spectrum has no frozen index", tc.k)
		}
		for i, km := range s.Kmers {
			if j := got.Index(km); j != i {
				t.Fatalf("k=%d: Index(%v) = %d want %d", tc.k, km, j, i)
			}
		}
		// An absent kmer answers absent through the rebuilt index (skip
		// when the whole kmer space is occupied, as at k=1).
		kmax := seq.Kmer(^uint64(0) >> (64 - 2*uint(tc.k)))
		for probe := seq.Kmer(0); probe <= kmax; probe++ {
			if !got.Contains(probe) {
				if got.Count(probe) != 0 {
					t.Fatalf("k=%d: absent kmer has nonzero count", tc.k)
				}
				break
			}
		}
	}
}

// TestSpectrumStoreEmpty round-trips the zero-kmer spectrum.
func TestSpectrumStoreEmpty(t *testing.T) {
	s := &Spectrum{K: 9, BothStrands: true}
	got, err := ReadSpectrum(bytes.NewReader(encodeSpectrum(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 9 || !got.BothStrands || len(got.Kmers) != 0 || len(got.Counts) != 0 {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}

// TestSpectrumStoreFile exercises the file-level helpers, including the
// atomic write (no temp droppings on success).
func TestSpectrumStoreFile(t *testing.T) {
	s := storeTestSpectrum(t, 12, 300, true)
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.kspc")
	if err := WriteSpectrumFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpectrumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Kmers, s.Kmers) || !reflect.DeepEqual(got.Counts, s.Counts) {
		t.Fatal("file round trip mismatch")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the store file in %s, found %d entries", dir, len(entries))
	}
	// The rename must not leak CreateTemp's private 0600: a daemon under
	// another account has to be able to read the store.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Errorf("store file mode = %o want 644", info.Mode().Perm())
	}
}

// TestSpectrumStoreRejectsCorruption is the corrupted-input suite: every
// mutilation of a valid file must yield a clean ErrSpectrumStore — never a
// panic, never a silently wrong spectrum.
func TestSpectrumStoreRejectsCorruption(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	valid := encodeSpectrum(t, s)
	for _, tc := range CorruptionCases(s, valid) {
		t.Run(tc.Name, func(t *testing.T) {
			got, err := ReadSpectrum(bytes.NewReader(tc.Data))
			if err == nil {
				t.Fatalf("corrupted input accepted: %d kmers decoded", got.Size())
			}
			if !errors.Is(err, ErrSpectrumStore) {
				t.Fatalf("error does not wrap ErrSpectrumStore: %v", err)
			}
		})
	}
}

// TestSpectrumStoreKMismatch covers the requesting-config check callers
// perform on load: the stored k is authoritative and a disagreeing
// configuration must be detected (the threading in core/reptile/redeem
// compares Spectrum.K; here we pin that the store preserves k faithfully
// for that comparison).
func TestSpectrumStoreKMismatch(t *testing.T) {
	s := storeTestSpectrum(t, 13, 100, true)
	got, err := ReadSpectrum(bytes.NewReader(encodeSpectrum(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 13 {
		t.Fatalf("stored k = %d want 13", got.K)
	}
}

// TestSpectrumStoreMatchesOutOfCoreBuild: the store round-trips the
// out-of-core engine's product byte-identically too (the two build paths
// already agree; persistence must not perturb either).
func TestSpectrumStoreMatchesOutOfCoreBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reads := make([]seq.Read, 400)
	for i := range reads {
		b := make([]byte, 50)
		for j := range b {
			b[j] = "ACGT"[rng.Intn(4)]
		}
		reads[i] = seq.Read{ID: "r", Seq: b}
	}
	spec, _, err := BuildOutOfCore(reads, 11, true, StreamOptions{MemoryBudget: 1 << 12, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpectrum(bytes.NewReader(encodeSpectrum(t, spec)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Kmers, spec.Kmers) || !reflect.DeepEqual(got.Counts, spec.Counts) {
		t.Fatal("out-of-core round trip mismatch")
	}
	if !got.BothStrands || got.K != 11 {
		t.Fatalf("metadata mismatch: %+v", got)
	}
}
