package kspectrum

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

// TestPrefixIndexMatchesBinarySearch probes every spectrum kmer plus a
// large random miss mix through the frozen prefix-bucket index and the
// retained binary-search reference — they must agree exactly.
func TestPrefixIndexMatchesBinarySearch(t *testing.T) {
	reads := randomReads(t, 2000)
	for _, k := range []int{4, 11, 13} {
		spec, err := Build(reads, k, true)
		if err != nil {
			t.Fatal(err)
		}
		if spec.pbuckets == nil {
			t.Fatalf("k=%d: Build did not freeze the query index", k)
		}
		for i, km := range spec.Kmers {
			if got := spec.Index(km); got != i {
				t.Fatalf("k=%d: Index(%v) = %d want %d", k, km, got, i)
			}
		}
		rng := rand.New(rand.NewSource(int64(k)))
		mask := uint64(1)<<(2*uint(k)) - 1
		for trial := 0; trial < 5000; trial++ {
			km := seq.Kmer(rng.Uint64() & mask)
			if got, want := spec.Index(km), spec.IndexBinarySearch(km); got != want {
				t.Fatalf("k=%d: Index(%v) = %d, binary search %d", k, km, got, want)
			}
		}
		// Count/Contains ride on Index.
		km := spec.Kmers[len(spec.Kmers)/2]
		if !spec.Contains(km) || spec.Count(km) != spec.Counts[len(spec.Kmers)/2] {
			t.Fatalf("k=%d: Contains/Count disagree with Counts", k)
		}
	}
}

// TestIndexFallbackWithoutFreeze pins the compatibility contract: a
// hand-assembled Spectrum (no Build, no frozen index) still answers
// queries through the binary-search fallback.
func TestIndexFallbackWithoutFreeze(t *testing.T) {
	spec := &Spectrum{
		K:      4,
		Kmers:  []seq.Kmer{seq.MustPack("AACG"), seq.MustPack("CGTA"), seq.MustPack("TTTT")},
		Counts: []uint32{1, 2, 3},
	}
	if spec.Index(seq.MustPack("CGTA")) != 1 {
		t.Fatal("fallback lookup failed")
	}
	if spec.Index(seq.MustPack("GGGG")) != -1 {
		t.Fatal("fallback miss failed")
	}
	if spec.Count(seq.MustPack("TTTT")) != 3 {
		t.Fatal("fallback Count failed")
	}
}

// TestFreezeIndexEdgeCases covers tiny spectra and small k, where pbits
// clamps to 2k and buckets are near-singletons.
func TestFreezeIndexEdgeCases(t *testing.T) {
	// Empty spectrum: freeze is a no-op, queries miss.
	empty := &Spectrum{K: 5}
	empty.freezeIndex()
	if empty.Index(seq.MustPack("AAAAA")) != -1 {
		t.Fatal("empty spectrum returned a hit")
	}
	// k=2: only 16 kmers exist; every one must resolve.
	spec, err := Build(mkReads("ACGTACGTTGCA"), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, km := range spec.Kmers {
		if spec.Index(km) != i {
			t.Fatalf("k=2: Index(%v) != %d", km, i)
		}
	}
	for km := seq.Kmer(0); km < 16; km++ {
		if got, want := spec.Index(km), spec.IndexBinarySearch(km); got != want {
			t.Fatalf("k=2: Index(%v) = %d want %d", km, got, want)
		}
	}
	// Single-kmer spectrum.
	one, err := Build(mkReads("ACGT"), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if one.Index(seq.MustPack("ACGT")) != 0 || one.Index(seq.MustPack("TTTT")) != -1 {
		t.Fatal("single-kmer spectrum lookup wrong")
	}
}
