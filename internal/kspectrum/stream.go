package kspectrum

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/seq"
)

// StreamOptions tunes the out-of-core spectrum engine. The zero value never
// spills and is equivalent to the in-memory SpectrumBuilder.
type StreamOptions struct {
	// Build configures the underlying sharded parallel engine.
	Build BuildOptions
	// MemoryBudget caps the resident bytes of the counting accumulators
	// across all shards; <= 0 means unlimited — nothing is ever spilled.
	// Each shard gets an equal slice of the budget and compares it against
	// its Counter's actual table footprint (Counter.ResidentBytes), so the
	// cap tracks real memory rather than a per-entry estimate.
	MemoryBudget int64
	// TempDir is where spilled run files live; "" uses os.TempDir(). A
	// fresh subdirectory is created per builder and removed by Build/Close.
	// Ignored when CheckpointDir is set: durable runs live there instead.
	TempDir string
	// CheckpointDir, when non-empty, makes the build crash-safe: run files
	// carry headers and CRC-32C trailers, are fsynced, and live in this
	// directory alongside a periodically rewritten manifest recording the
	// read cursor they cover. The directory survives failures and
	// cancellation (that is its purpose) and is removed only by a
	// successful Build. Checkpointed Adds are serialized internally, and
	// resume is only correct when the caller streams the same reads in
	// the same order as the interrupted build.
	CheckpointDir string
	// Resume adopts the manifest already in CheckpointDir: surviving runs
	// are revalidated (header + full CRC), unlisted runs are deleted, and
	// Add skips the leading reads the manifest covers. Without a manifest
	// (a build killed before its first checkpoint) resume degenerates to
	// a fresh build. A corrupt manifest or run is a hard ErrCheckpoint —
	// delete the directory to rebuild from scratch.
	Resume bool
	// CheckpointEvery is the number of reads between automatic
	// checkpoints in durable mode; <= 0 means the default (262144).
	CheckpointEvery int64
	// Context, when non-nil, cancels the out-of-core machinery: once it
	// is done, spills stop writing and Build aborts its merge loops at
	// the next batch boundary, returning ctx.Err(). nil is never
	// cancelled (context.Background()).
	Context context.Context
}

// minSpillEntries floors the per-shard spill threshold so pathological
// budgets degrade into many small runs rather than a run per flush.
const minSpillEntries = 64

// defaultCheckpointEvery is the read interval between automatic durable
// checkpoints when StreamOptions.CheckpointEvery is unset.
const defaultCheckpointEvery = 1 << 18

// StreamStats describes a builder's spill activity.
type StreamStats struct {
	// SpilledRuns is the number of sorted run files written.
	SpilledRuns int64
	// SpilledEntries is the total distinct-kmer entries across all runs
	// (the same kmer may recur in later runs of the same shard).
	SpilledEntries int64
	// SpilledBytes is the total on-disk size of all runs.
	SpilledBytes int64
}

// runInfo identifies one written run file and its integrity metadata —
// what the manifest records and resume revalidates.
type runInfo struct {
	path    string
	shard   int
	entries int64
	bytes   int64
	crc     uint32
}

// StreamBuilder is the out-of-core variant of SpectrumBuilder (§2.3's
// divide-and-merge taken past memory): counting workers scatter kmers into
// high-bit prefix shards exactly as the in-memory engine does, but any shard
// whose accumulator exceeds its slice of the MemoryBudget is spilled to a
// sorted run file in a temp directory and restarts empty. Build merges each
// shard's runs with its in-memory residue — the prefix partition keeps shard
// ranges disjoint and ordered, so the final cross-shard merge is a
// concatenation — and yields a Spectrum byte-identical to the in-memory
// path. Unlike SpectrumBuilder, Build is one-shot: it consumes the spilled
// runs and closes the builder.
//
// With StreamOptions.CheckpointDir set the builder is additionally
// crash-safe; see the manifest machinery in manifest.go.
type StreamBuilder struct {
	sb *SpectrumBuilder
	// ctx cancels spill and merge work; never nil.
	ctx context.Context
	// spillBytes is the per-shard resident footprint beyond which a flush
	// spills (0 = never); compared against Counter.ResidentBytes.
	spillBytes int64
	dir        string
	// durable marks a checkpointing builder: runs are fsynced, dir is the
	// caller's CheckpointDir and survives everything but a successful
	// Build.
	durable   bool
	ckptEvery int64
	// runs[s] lists shard s's spilled run files, in spill order; guarded
	// by shard s's stripe lock (only flushers of s append).
	runs [][]runInfo
	// runSeq names run files uniquely across shards.
	runSeq atomic.Int64

	// addMu serializes Add/Checkpoint in durable mode, making the read
	// cursor well-defined.
	addMu sync.Mutex
	// seen counts reads streamed through Add (including skipped ones);
	// cursor is the resume skip threshold; lastCkpt the cursor at the
	// newest manifest. All guarded by addMu.
	seen, cursor, lastCkpt int64
	resumedFrom            int64

	stats struct {
		runs, entries, bytes atomic.Int64
	}

	// errMu guards err, the first spill/checkpoint failure; surfaced by
	// Build.
	errMu  sync.Mutex
	err    error
	closed bool
}

// NewStreamBuilder validates k and prepares an out-of-core accumulator.
func NewStreamBuilder(k int, bothStrands bool, opts StreamOptions) (*StreamBuilder, error) {
	var m *manifest
	if opts.CheckpointDir != "" {
		if opts.Resume {
			var err error
			if m, err = readManifestFile(opts.CheckpointDir); err != nil {
				return nil, err
			}
			if m != nil {
				if m.K != k || m.BothStrands != bothStrands {
					return nil, checkpointErr("manifest built with k=%d bothStrands=%v, resuming with k=%d bothStrands=%v",
						m.K, m.BothStrands, k, bothStrands)
				}
				// The run partition is only valid under the manifest's
				// shard geometry; adopt it over the caller's.
				opts.Build.Shards = m.Shards
			}
		} else if _, err := os.Stat(filepath.Join(opts.CheckpointDir, ManifestName)); err == nil {
			return nil, checkpointErr("directory %s already holds a manifest; resume it or delete the directory",
				opts.CheckpointDir)
		}
	}
	sb, err := NewSpectrumBuilder(k, bothStrands, opts.Build)
	if err != nil {
		return nil, err
	}
	st := &StreamBuilder{sb: sb, ctx: opts.Context, durable: opts.CheckpointDir != ""}
	if st.ctx == nil {
		st.ctx = context.Background()
	}
	if opts.MemoryBudget > 0 {
		// Floor each shard's slice at the footprint of a table holding
		// minSpillEntries, so pathological budgets degrade into many small
		// runs rather than a run per flush.
		st.spillBytes = max(opts.MemoryBudget/int64(len(sb.shards)),
			ApproxAccumulatorBytes(minSpillEntries))
	}
	switch {
	case st.durable:
		st.dir = opts.CheckpointDir
		if err := os.MkdirAll(st.dir, 0o755); err != nil {
			return nil, fmt.Errorf("kspectrum: checkpoint dir: %w", err)
		}
		st.ckptEvery = opts.CheckpointEvery
		if st.ckptEvery <= 0 {
			st.ckptEvery = defaultCheckpointEvery
		}
	case st.spillBytes > 0:
		st.dir, err = os.MkdirTemp(opts.TempDir, "kspectrum-spill-*")
		if err != nil {
			return nil, fmt.Errorf("kspectrum: spill dir: %w", err)
		}
	}
	if st.dir != "" {
		st.runs = make([][]runInfo, len(sb.shards))
		if st.spillBytes > 0 {
			sb.onFlush = st.maybeSpill
		}
	}
	if st.durable {
		if m != nil {
			if len(sb.shards) != m.Shards {
				return nil, checkpointErr("manifest shards=%d resolved to %d; geometry caps changed", m.Shards, len(sb.shards))
			}
			if err := st.adoptManifest(m); err != nil {
				return nil, err
			}
		} else if err := st.removeStrayRuns(nil); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// adoptManifest loads a validated manifest's state into the builder:
// every listed run is revalidated end to end, unlisted run files are
// deleted (they cover reads past the cursor, which will be counted
// again), and the read cursor arms Add's skip logic.
func (st *StreamBuilder) adoptManifest(m *manifest) error {
	keep := make(map[string]bool, len(m.Runs))
	for _, mr := range m.Runs {
		if mr.Shard < 0 || mr.Shard >= len(st.runs) {
			return checkpointErr("run %s: shard %d out of range [0,%d)", mr.File, mr.Shard, len(st.runs))
		}
		ri := runInfo{
			path:    filepath.Join(st.dir, mr.File),
			shard:   mr.Shard,
			entries: mr.Entries,
			bytes:   mr.Bytes,
			crc:     mr.CRC,
		}
		if ri.bytes != runSize(ri.entries) {
			return checkpointErr("run %s: %d entries cannot occupy %d bytes", mr.File, ri.entries, ri.bytes)
		}
		if err := validateRun(ri, st.sb.k, st.sb.bothStrands); err != nil {
			return err
		}
		st.runs[mr.Shard] = append(st.runs[mr.Shard], ri)
		st.stats.runs.Add(1)
		st.stats.entries.Add(ri.entries)
		st.stats.bytes.Add(ri.bytes)
		keep[mr.File] = true
	}
	if err := st.removeStrayRuns(keep); err != nil {
		return err
	}
	st.runSeq.Store(m.NextRun)
	st.cursor = m.Reads
	st.resumedFrom = m.Reads
	st.lastCkpt = m.Reads
	return nil
}

// removeStrayRuns deletes run files the manifest does not list: they
// were spilled after the newest manifest (or belong to a build killed
// before its first checkpoint) and cover reads the resume will count
// again — merging them would double-count.
func (st *StreamBuilder) removeStrayRuns(keep map[string]bool) error {
	matches, err := filepath.Glob(filepath.Join(st.dir, "run*.bin"))
	if err != nil {
		return err
	}
	for _, p := range matches {
		if keep[filepath.Base(p)] {
			continue
		}
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("kspectrum: checkpoint: removing stray run: %w", err)
		}
	}
	return nil
}

// Add merges one chunk of reads into the accumulator; safe for concurrent
// use, exactly like SpectrumBuilder.Add. In durable mode Adds serialize
// internally, leading reads up to the resumed cursor are skipped (their
// counts already live in the adopted runs), and an automatic checkpoint
// fires every CheckpointEvery reads.
func (st *StreamBuilder) Add(reads []seq.Read) {
	if !st.durable {
		st.sb.Add(reads)
		return
	}
	st.addMu.Lock()
	defer st.addMu.Unlock()
	batch := reads
	if skip := st.cursor - st.seen; skip > 0 {
		if skip >= int64(len(reads)) {
			st.seen += int64(len(reads))
			return
		}
		batch = reads[skip:]
	}
	st.sb.Add(batch)
	st.seen += int64(len(reads))
	if st.seen-st.lastCkpt >= st.ckptEvery {
		if err := st.checkpointLocked(); err != nil {
			st.fail(err)
		}
	}
}

// Checkpoint forces a durable checkpoint covering every read Added so
// far: all accumulators flush to fsynced runs and the manifest is
// atomically rewritten. Only valid on a builder with a CheckpointDir.
func (st *StreamBuilder) Checkpoint() error {
	if !st.durable {
		return fmt.Errorf("kspectrum: Checkpoint on a builder without a CheckpointDir")
	}
	st.addMu.Lock()
	defer st.addMu.Unlock()
	if st.closed {
		return fmt.Errorf("kspectrum: StreamBuilder used after Build/Close")
	}
	return st.checkpointLocked()
}

// Resumed reports the read cursor adopted from a manifest at
// construction — the number of leading reads Add skips. Zero for a
// fresh build.
func (st *StreamBuilder) Resumed() int64 { return st.resumedFrom }

// checkpointLocked (addMu held) drains every shard's accumulator to a
// durable run, then publishes a manifest covering st.seen reads. On
// failure the manifest is not advanced: the previous checkpoint stays
// authoritative and any runs written here are strays a resume deletes.
func (st *StreamBuilder) checkpointLocked() error {
	if err := st.ctx.Err(); err != nil {
		return err
	}
	for s := range st.sb.shards {
		shard := &st.sb.shards[s]
		shard.mu.Lock()
		if shard.counts.Len() == 0 {
			shard.mu.Unlock()
			continue
		}
		kmers := make([]seq.Kmer, 0, shard.counts.Len())
		counts := make([]uint32, 0, shard.counts.Len())
		kmers, counts = shard.counts.AppendSortedInto(kmers, counts)
		ri, err := st.writeRunFile(s, kmers, counts)
		if err != nil {
			shard.mu.Unlock()
			return err
		}
		st.runs[s] = append(st.runs[s], ri)
		st.stats.runs.Add(1)
		st.stats.entries.Add(ri.entries)
		st.stats.bytes.Add(ri.bytes)
		shard.counts = NewCounter(0)
		shard.mu.Unlock()
	}
	m := &manifest{
		K:           st.sb.k,
		BothStrands: st.sb.bothStrands,
		Shards:      len(st.sb.shards),
		Reads:       st.seen,
		NextRun:     st.runSeq.Load(),
	}
	for s := range st.runs {
		for _, ri := range st.runs[s] {
			m.Runs = append(m.Runs, manifestRun{
				File:    filepath.Base(ri.path),
				Shard:   s,
				Entries: ri.entries,
				Bytes:   ri.bytes,
				CRC:     ri.crc,
			})
		}
	}
	if err := writeManifestFile(st.dir, m); err != nil {
		return err
	}
	st.lastCkpt = st.seen
	return nil
}

// fail records the first spill/checkpoint failure for Build to surface.
func (st *StreamBuilder) fail(err error) {
	st.errMu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.errMu.Unlock()
}

// Stats reports the spill activity so far.
func (st *StreamBuilder) Stats() StreamStats {
	return StreamStats{
		SpilledRuns:    st.stats.runs.Load(),
		SpilledEntries: st.stats.entries.Load(),
		SpilledBytes:   st.stats.bytes.Load(),
	}
}

// maybeSpill runs under the shard's stripe lock after each flush: when the
// accumulator crosses the per-shard threshold it is drained to a sorted run
// file and restarted empty. I/O errors are recorded once and surfaced by
// Build; after a failure the engine stops spilling (counting stays correct,
// memory is no longer bounded).
func (st *StreamBuilder) maybeSpill(s int, shard *countShard) {
	if shard.counts.ResidentBytes() < st.spillBytes || shard.counts.Len() == 0 {
		return
	}
	// A cancelled build stops investing in spill I/O; the recorded
	// ctx.Err() surfaces from Build exactly like a spill failure.
	if err := st.ctx.Err(); err != nil {
		st.fail(err)
		return
	}
	st.errMu.Lock()
	failed := st.err != nil
	st.errMu.Unlock()
	if failed {
		return
	}
	kmers := make([]seq.Kmer, 0, shard.counts.Len())
	counts := make([]uint32, 0, shard.counts.Len())
	kmers, counts = shard.counts.AppendSortedInto(kmers, counts)
	ri, err := st.writeRunFile(s, kmers, counts)
	if err != nil {
		st.fail(err)
		return
	}
	st.runs[s] = append(st.runs[s], ri)
	st.stats.runs.Add(1)
	st.stats.entries.Add(ri.entries)
	st.stats.bytes.Add(ri.bytes)
	shard.counts = NewCounter(0)
}

// runEntryBytes is the fixed on-disk size of one (kmer, count) record.
const runEntryBytes = 12

// writeRunFile names and writes one run for shard s.
func (st *StreamBuilder) writeRunFile(s int, kmers []seq.Kmer, counts []uint32) (runInfo, error) {
	path := filepath.Join(st.dir, fmt.Sprintf("run%06d.bin", st.runSeq.Add(1)))
	h := runHeader{k: st.sb.k, bothStrands: st.sb.bothStrands, shard: s, count: int64(len(kmers))}
	sum, err := writeRun(path, h, kmers, counts, st.durable)
	if err != nil {
		return runInfo{}, err
	}
	return runInfo{
		path:    path,
		shard:   s,
		entries: int64(len(kmers)),
		bytes:   runSize(int64(len(kmers))),
		crc:     sum,
	}, nil
}

// writeRun writes one sorted run: header, fixed-width little-endian
// (kmer uint64, count uint32) records, CRC-32C trailer. durable
// additionally fsyncs — a manifest must never reference a run whose
// bytes could still be lost by a crash. Every failure path removes the
// partial file: durable directories outlive the builder, so a leaked
// partial would linger forever and a resume must never find a torn run.
func writeRun(path string, h runHeader, kmers []seq.Kmer, counts []uint32, durable bool) (uint32, error) {
	f, err := faultinject.Create(faultinject.SiteSpill, path)
	if err != nil {
		return 0, fmt.Errorf("kspectrum: spill: %w", err)
	}
	fail := func(err error) (uint32, error) {
		f.Close()
		os.Remove(path)
		return 0, fmt.Errorf("kspectrum: spill: %w", err)
	}
	crc := crc32.New(crcTable)
	bw := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<16)
	hdr := h.encode()
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	var rec [runEntryBytes]byte
	for i, km := range kmers {
		binary.LittleEndian.PutUint64(rec[:8], uint64(km))
		binary.LittleEndian.PutUint32(rec[8:], counts[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	// The trailer covers everything before it, so it bypasses the
	// buffered/CRC path; direct writes must catch the n < len, nil-error
	// contract violation themselves.
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(rec[:4], sum)
	if n, err := f.Write(rec[:4]); err != nil {
		return fail(err)
	} else if n != 4 {
		return fail(io.ErrShortWrite)
	}
	if durable {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return 0, fmt.Errorf("kspectrum: spill: %w", err)
	}
	return sum, nil
}

// Build merges every shard's spilled runs with its in-memory residue and
// returns the finished spectrum. Shard s holds exactly the kmers whose high
// bits equal s — in every run and in the residue — so shard ranges are
// disjoint and ordered and the cross-shard merge is a concatenation,
// preserving byte-identity with the in-memory engine (see DESIGN.md §4).
// Build consumes the builder: the spill directory is removed — including a
// durable checkpoint directory, whose job ends with a successful build —
// and further use is an error. On failure a checkpoint directory is kept
// for resumption.
func (st *StreamBuilder) Build() (*Spectrum, error) {
	if st.closed {
		return nil, fmt.Errorf("kspectrum: StreamBuilder used after Build/Close")
	}
	st.closed = true
	st.errMu.Lock()
	err := st.err
	st.errMu.Unlock()
	if err == nil {
		err = st.ctx.Err()
	}
	if err != nil {
		st.cleanup()
		return nil, err
	}

	type shardRun struct {
		kmers  []seq.Kmer
		counts []uint32
	}
	merged := make([]shardRun, len(st.sb.shards))
	errs := make([]error, len(st.sb.shards))
	work := make(chan int, len(st.sb.shards))
	var wg sync.WaitGroup
	for w := 0; w < min(st.sb.workers, len(st.sb.shards)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				kmers, counts, err := st.mergeShard(s)
				merged[s] = shardRun{kmers: kmers, counts: counts}
				errs[s] = err
			}
		}()
	}
	for s := range st.sb.shards {
		work <- s
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			st.cleanup()
			return nil, err
		}
	}

	total := 0
	for _, r := range merged {
		total += len(r.kmers)
	}
	spec := &Spectrum{
		K:           st.sb.k,
		BothStrands: st.sb.bothStrands,
		Kmers:       make([]seq.Kmer, 0, total),
		Counts:      make([]uint32, 0, total),
	}
	for _, r := range merged {
		spec.Kmers = append(spec.Kmers, r.kmers...)
		spec.Counts = append(spec.Counts, r.counts...)
	}
	spec.freezeIndex()
	st.removeDir()
	return spec, nil
}

// Close abandons the builder. Plain spill directories are removed; a
// durable checkpoint directory is kept — it is exactly the artifact a
// later resume needs after a failure or cancellation. It is safe to call
// after Build (a no-op then).
func (st *StreamBuilder) Close() error {
	st.closed = true
	return st.cleanup()
}

// cleanup removes the spill directory unless it is a durable checkpoint
// directory, which survives everything except a successful Build.
func (st *StreamBuilder) cleanup() error {
	if st.durable {
		return nil
	}
	return st.removeDir()
}

func (st *StreamBuilder) removeDir() error {
	if st.dir == "" {
		return nil
	}
	dir := st.dir
	st.dir = ""
	return os.RemoveAll(dir)
}

// mergeShard produces shard s's slice of the final spectrum: the in-memory
// residue sorted, then k-way merged with the shard's sorted runs, summing
// counts of kmers that appear in several sources.
func (st *StreamBuilder) mergeShard(s int) ([]seq.Kmer, []uint32, error) {
	shard := &st.sb.shards[s]
	shard.mu.Lock()
	kmers := make([]seq.Kmer, 0, shard.counts.Len())
	counts := make([]uint32, 0, shard.counts.Len())
	kmers, counts = shard.counts.AppendSortedInto(kmers, counts)
	var runs []runInfo
	if st.runs != nil {
		runs = st.runs[s]
	}
	shard.mu.Unlock()

	if len(runs) == 0 {
		return kmers, counts, nil
	}

	streams := make([]runStream, 0, len(runs)+1)
	defer func() {
		for i := range streams {
			streams[i].close()
		}
	}()
	for _, ri := range runs {
		f, err := os.Open(ri.path)
		if err != nil {
			return nil, nil, fmt.Errorf("kspectrum: merge: %w", err)
		}
		br := bufio.NewReaderSize(faultinject.Reader(faultinject.SiteMerge, f), 1<<16)
		var hdr [runHeaderLen]byte
		_, err = io.ReadFull(br, hdr[:])
		var h runHeader
		if err == nil {
			h, err = decodeRunHeader(hdr[:])
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("kspectrum: merge %s: %w", filepath.Base(ri.path), err)
		}
		streams = append(streams, runStream{f: f, br: br, remaining: h.count})
	}
	if len(kmers) > 0 {
		streams = append(streams, runStream{memK: kmers, memC: counts})
	}

	h := make(runHeap, 0, len(streams))
	for i := range streams {
		km, c, ok, err := streams[i].next()
		if err != nil {
			return nil, nil, err
		}
		if ok {
			h = append(h, runHead{km: km, count: c, src: i})
		}
	}
	heap.Init(&h)

	var outK []seq.Kmer
	var outC []uint32
	for n := 0; len(h) > 0; n++ {
		// The merge is the long tail of an out-of-core build; poll the
		// context every batch so cancellation aborts it promptly without
		// a per-record overhead.
		if n&8191 == 0 {
			if err := st.ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		head := h[0]
		if n := len(outK); n > 0 && outK[n-1] == head.km {
			outC[n-1] += head.count
		} else {
			outK = append(outK, head.km)
			outC = append(outC, head.count)
		}
		km, c, ok, err := streams[head.src].next()
		if err != nil {
			return nil, nil, err
		}
		if ok {
			h[0] = runHead{km: km, count: c, src: head.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return outK, outC, nil
}

// runStream iterates one sorted source: a run file or the in-memory residue.
// File sources carry the header's record count; hitting end-of-file before
// it is exhausted is a truncation error, not a clean end.
type runStream struct {
	f         *os.File
	br        *bufio.Reader
	remaining int64
	memK      []seq.Kmer
	memC      []uint32
	pos       int
}

func (rs *runStream) next() (seq.Kmer, uint32, bool, error) {
	if rs.br == nil {
		if rs.pos >= len(rs.memK) {
			return 0, 0, false, nil
		}
		km, c := rs.memK[rs.pos], rs.memC[rs.pos]
		rs.pos++
		return km, c, true, nil
	}
	if rs.remaining <= 0 {
		return 0, 0, false, nil
	}
	var rec [runEntryBytes]byte
	if _, err := io.ReadFull(rs.br, rec[:]); err != nil {
		return 0, 0, false, fmt.Errorf("kspectrum: merge: %w", err)
	}
	rs.remaining--
	km := seq.Kmer(binary.LittleEndian.Uint64(rec[:8]))
	c := binary.LittleEndian.Uint32(rec[8:])
	return km, c, true, nil
}

func (rs *runStream) close() {
	if rs.f != nil {
		rs.f.Close()
	}
}

// runHead is one source's current minimum in the shard merge heap.
type runHead struct {
	km    seq.Kmer
	count uint32
	src   int
}

type runHeap []runHead

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].km < h[j].km }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(runHead)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// BuildOutOfCore constructs the spectrum from an in-memory read set through
// the out-of-core engine, returning the spill statistics alongside. It is
// the one-shot convenience over NewStreamBuilder/Add/Build that redeem and
// the benchmarks use.
func BuildOutOfCore(reads []seq.Read, k int, bothStrands bool, opts StreamOptions) (*Spectrum, StreamStats, error) {
	st, err := NewStreamBuilder(k, bothStrands, opts)
	if err != nil {
		return nil, StreamStats{}, err
	}
	st.Add(reads)
	spec, err := st.Build()
	return spec, st.Stats(), err
}
