package kspectrum

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/seq"
)

// StreamOptions tunes the out-of-core spectrum engine. The zero value never
// spills and is equivalent to the in-memory SpectrumBuilder.
type StreamOptions struct {
	// Build configures the underlying sharded parallel engine.
	Build BuildOptions
	// MemoryBudget caps the resident bytes of the counting accumulators
	// across all shards; <= 0 means unlimited — nothing is ever spilled.
	// Each shard gets an equal slice of the budget and compares it against
	// its Counter's actual table footprint (Counter.ResidentBytes), so the
	// cap tracks real memory rather than a per-entry estimate.
	MemoryBudget int64
	// TempDir is where spilled run files live; "" uses os.TempDir(). A
	// fresh subdirectory is created per builder and removed by Build/Close.
	TempDir string
	// Context, when non-nil, cancels the out-of-core machinery: once it
	// is done, spills stop writing and Build aborts its merge loops at
	// the next batch boundary, returning ctx.Err(). nil is never
	// cancelled (context.Background()).
	Context context.Context
}

// minSpillEntries floors the per-shard spill threshold so pathological
// budgets degrade into many small runs rather than a run per flush.
const minSpillEntries = 64

// StreamStats describes a builder's spill activity.
type StreamStats struct {
	// SpilledRuns is the number of sorted run files written.
	SpilledRuns int64
	// SpilledEntries is the total distinct-kmer entries across all runs
	// (the same kmer may recur in later runs of the same shard).
	SpilledEntries int64
	// SpilledBytes is the total on-disk size of all runs.
	SpilledBytes int64
}

// StreamBuilder is the out-of-core variant of SpectrumBuilder (§2.3's
// divide-and-merge taken past memory): counting workers scatter kmers into
// high-bit prefix shards exactly as the in-memory engine does, but any shard
// whose accumulator exceeds its slice of the MemoryBudget is spilled to a
// sorted run file in a temp directory and restarts empty. Build merges each
// shard's runs with its in-memory residue — the prefix partition keeps shard
// ranges disjoint and ordered, so the final cross-shard merge is a
// concatenation — and yields a Spectrum byte-identical to the in-memory
// path. Unlike SpectrumBuilder, Build is one-shot: it consumes the spilled
// runs and closes the builder.
type StreamBuilder struct {
	sb *SpectrumBuilder
	// ctx cancels spill and merge work; never nil.
	ctx context.Context
	// spillBytes is the per-shard resident footprint beyond which a flush
	// spills (0 = never); compared against Counter.ResidentBytes.
	spillBytes int64
	dir        string
	// runs[s] lists shard s's spilled run files, in spill order; guarded
	// by shard s's stripe lock (only flushers of s append).
	runs [][]string
	// runSeq names run files uniquely across shards.
	runSeq atomic.Int64

	stats struct {
		runs, entries, bytes atomic.Int64
	}

	// errMu guards err, the first spill failure; surfaced by Build.
	errMu  sync.Mutex
	err    error
	closed bool
}

// NewStreamBuilder validates k and prepares an out-of-core accumulator.
func NewStreamBuilder(k int, bothStrands bool, opts StreamOptions) (*StreamBuilder, error) {
	sb, err := NewSpectrumBuilder(k, bothStrands, opts.Build)
	if err != nil {
		return nil, err
	}
	st := &StreamBuilder{sb: sb, ctx: opts.Context}
	if st.ctx == nil {
		st.ctx = context.Background()
	}
	if opts.MemoryBudget > 0 {
		// Floor each shard's slice at the footprint of a table holding
		// minSpillEntries, so pathological budgets degrade into many small
		// runs rather than a run per flush.
		st.spillBytes = max(opts.MemoryBudget/int64(len(sb.shards)),
			ApproxAccumulatorBytes(minSpillEntries))
		st.dir, err = os.MkdirTemp(opts.TempDir, "kspectrum-spill-*")
		if err != nil {
			return nil, fmt.Errorf("kspectrum: spill dir: %w", err)
		}
		st.runs = make([][]string, len(sb.shards))
		sb.onFlush = st.maybeSpill
	}
	return st, nil
}

// Add merges one chunk of reads into the accumulator; safe for concurrent
// use, exactly like SpectrumBuilder.Add.
func (st *StreamBuilder) Add(reads []seq.Read) { st.sb.Add(reads) }

// Stats reports the spill activity so far.
func (st *StreamBuilder) Stats() StreamStats {
	return StreamStats{
		SpilledRuns:    st.stats.runs.Load(),
		SpilledEntries: st.stats.entries.Load(),
		SpilledBytes:   st.stats.bytes.Load(),
	}
}

// maybeSpill runs under the shard's stripe lock after each flush: when the
// accumulator crosses the per-shard threshold it is drained to a sorted run
// file and restarted empty. I/O errors are recorded once and surfaced by
// Build; after a failure the engine stops spilling (counting stays correct,
// memory is no longer bounded).
func (st *StreamBuilder) maybeSpill(s int, shard *countShard) {
	if shard.counts.ResidentBytes() < st.spillBytes || shard.counts.Len() == 0 {
		return
	}
	// A cancelled build stops investing in spill I/O; the recorded
	// ctx.Err() surfaces from Build exactly like a spill failure.
	if err := st.ctx.Err(); err != nil {
		st.errMu.Lock()
		if st.err == nil {
			st.err = err
		}
		st.errMu.Unlock()
		return
	}
	st.errMu.Lock()
	failed := st.err != nil
	st.errMu.Unlock()
	if failed {
		return
	}
	kmers := make([]seq.Kmer, 0, shard.counts.Len())
	counts := make([]uint32, 0, shard.counts.Len())
	kmers, counts = shard.counts.AppendSortedInto(kmers, counts)
	path := filepath.Join(st.dir, fmt.Sprintf("run%06d.bin", st.runSeq.Add(1)))
	n, err := writeRun(path, kmers, counts)
	if err != nil {
		st.errMu.Lock()
		if st.err == nil {
			st.err = err
		}
		st.errMu.Unlock()
		return
	}
	st.runs[s] = append(st.runs[s], path)
	st.stats.runs.Add(1)
	st.stats.entries.Add(int64(len(kmers)))
	st.stats.bytes.Add(n)
	shard.counts = NewCounter(0)
}

// runEntryBytes is the fixed on-disk size of one (kmer, count) record.
const runEntryBytes = 12

// writeRun writes the sorted entries as fixed-width little-endian
// (kmer uint64, count uint32) records and returns the byte size.
func writeRun(path string, kmers []seq.Kmer, counts []uint32) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("kspectrum: spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var rec [runEntryBytes]byte
	for i, km := range kmers {
		binary.LittleEndian.PutUint64(rec[:8], uint64(km))
		binary.LittleEndian.PutUint32(rec[8:], counts[i])
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return 0, fmt.Errorf("kspectrum: spill: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, fmt.Errorf("kspectrum: spill: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("kspectrum: spill: %w", err)
	}
	return int64(len(kmers)) * runEntryBytes, nil
}

// Build merges every shard's spilled runs with its in-memory residue and
// returns the finished spectrum. Shard s holds exactly the kmers whose high
// bits equal s — in every run and in the residue — so shard ranges are
// disjoint and ordered and the cross-shard merge is a concatenation,
// preserving byte-identity with the in-memory engine (see DESIGN.md §4).
// Build consumes the builder: the temp directory is removed and further use
// is an error.
func (st *StreamBuilder) Build() (*Spectrum, error) {
	if st.closed {
		return nil, fmt.Errorf("kspectrum: StreamBuilder used after Build/Close")
	}
	st.closed = true
	defer st.cleanup()
	st.errMu.Lock()
	err := st.err
	st.errMu.Unlock()
	if err == nil {
		err = st.ctx.Err()
	}
	if err != nil {
		return nil, err
	}

	type shardRun struct {
		kmers  []seq.Kmer
		counts []uint32
	}
	merged := make([]shardRun, len(st.sb.shards))
	errs := make([]error, len(st.sb.shards))
	work := make(chan int, len(st.sb.shards))
	var wg sync.WaitGroup
	for w := 0; w < min(st.sb.workers, len(st.sb.shards)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				kmers, counts, err := st.mergeShard(s)
				merged[s] = shardRun{kmers: kmers, counts: counts}
				errs[s] = err
			}
		}()
	}
	for s := range st.sb.shards {
		work <- s
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	total := 0
	for _, r := range merged {
		total += len(r.kmers)
	}
	spec := &Spectrum{
		K:           st.sb.k,
		BothStrands: st.sb.bothStrands,
		Kmers:       make([]seq.Kmer, 0, total),
		Counts:      make([]uint32, 0, total),
	}
	for _, r := range merged {
		spec.Kmers = append(spec.Kmers, r.kmers...)
		spec.Counts = append(spec.Counts, r.counts...)
	}
	spec.freezeIndex()
	return spec, nil
}

// Close abandons the builder, removing any spilled runs. It is safe to call
// after Build (a no-op then).
func (st *StreamBuilder) Close() error {
	st.closed = true
	return st.cleanup()
}

func (st *StreamBuilder) cleanup() error {
	if st.dir == "" {
		return nil
	}
	dir := st.dir
	st.dir = ""
	return os.RemoveAll(dir)
}

// mergeShard produces shard s's slice of the final spectrum: the in-memory
// residue sorted, then k-way merged with the shard's sorted runs, summing
// counts of kmers that appear in several sources.
func (st *StreamBuilder) mergeShard(s int) ([]seq.Kmer, []uint32, error) {
	shard := &st.sb.shards[s]
	shard.mu.Lock()
	kmers := make([]seq.Kmer, 0, shard.counts.Len())
	counts := make([]uint32, 0, shard.counts.Len())
	kmers, counts = shard.counts.AppendSortedInto(kmers, counts)
	var runs []string
	if st.runs != nil {
		runs = st.runs[s]
	}
	shard.mu.Unlock()

	if len(runs) == 0 {
		return kmers, counts, nil
	}

	streams := make([]runStream, 0, len(runs)+1)
	defer func() {
		for i := range streams {
			streams[i].close()
		}
	}()
	for _, path := range runs {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("kspectrum: merge: %w", err)
		}
		streams = append(streams, runStream{f: f, br: bufio.NewReaderSize(f, 1<<16)})
	}
	if len(kmers) > 0 {
		streams = append(streams, runStream{memK: kmers, memC: counts})
	}

	h := make(runHeap, 0, len(streams))
	for i := range streams {
		km, c, ok, err := streams[i].next()
		if err != nil {
			return nil, nil, err
		}
		if ok {
			h = append(h, runHead{km: km, count: c, src: i})
		}
	}
	heap.Init(&h)

	var outK []seq.Kmer
	var outC []uint32
	for n := 0; len(h) > 0; n++ {
		// The merge is the long tail of an out-of-core build; poll the
		// context every batch so cancellation aborts it promptly without
		// a per-record overhead.
		if n&8191 == 0 {
			if err := st.ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		head := h[0]
		if n := len(outK); n > 0 && outK[n-1] == head.km {
			outC[n-1] += head.count
		} else {
			outK = append(outK, head.km)
			outC = append(outC, head.count)
		}
		km, c, ok, err := streams[head.src].next()
		if err != nil {
			return nil, nil, err
		}
		if ok {
			h[0] = runHead{km: km, count: c, src: head.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return outK, outC, nil
}

// runStream iterates one sorted source: a run file or the in-memory residue.
type runStream struct {
	f    *os.File
	br   *bufio.Reader
	memK []seq.Kmer
	memC []uint32
	pos  int
}

func (rs *runStream) next() (seq.Kmer, uint32, bool, error) {
	if rs.br == nil {
		if rs.pos >= len(rs.memK) {
			return 0, 0, false, nil
		}
		km, c := rs.memK[rs.pos], rs.memC[rs.pos]
		rs.pos++
		return km, c, true, nil
	}
	var rec [runEntryBytes]byte
	if _, err := io.ReadFull(rs.br, rec[:]); err != nil {
		if err == io.EOF {
			return 0, 0, false, nil
		}
		return 0, 0, false, fmt.Errorf("kspectrum: merge: %w", err)
	}
	km := seq.Kmer(binary.LittleEndian.Uint64(rec[:8]))
	c := binary.LittleEndian.Uint32(rec[8:])
	return km, c, true, nil
}

func (rs *runStream) close() {
	if rs.f != nil {
		rs.f.Close()
	}
}

// runHead is one source's current minimum in the shard merge heap.
type runHead struct {
	km    seq.Kmer
	count uint32
	src   int
}

type runHeap []runHead

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, j int) bool { return h[i].km < h[j].km }
func (h runHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(runHead)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// BuildOutOfCore constructs the spectrum from an in-memory read set through
// the out-of-core engine, returning the spill statistics alongside. It is
// the one-shot convenience over NewStreamBuilder/Add/Build that redeem and
// the benchmarks use.
func BuildOutOfCore(reads []seq.Read, k int, bothStrands bool, opts StreamOptions) (*Spectrum, StreamStats, error) {
	st, err := NewStreamBuilder(k, bothStrands, opts)
	if err != nil {
		return nil, StreamStats{}, err
	}
	st.Add(reads)
	spec, err := st.Build()
	return spec, st.Stats(), err
}
