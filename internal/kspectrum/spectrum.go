// Package kspectrum implements the k-spectrum machinery of Chapter 2: the
// sorted k-spectrum of a read set, the space-replicated chunk-masked index
// for exact d-neighborhood retrieval (§2.3 Phase 1), and quality-aware tile
// occurrence counting (Oc and Og).
package kspectrum

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Spectrum is the sorted k-spectrum R^k of a read collection with
// per-kmer occurrence counts. Both strands of every read contribute
// (§2.3, "Phase 1"), so the spectrum is reverse-complement closed.
type Spectrum struct {
	K      int
	Kmers  []seq.Kmer // sorted ascending, unique
	Counts []uint32   // parallel to Kmers
}

// Build constructs the k-spectrum from reads. Windows containing non-ACGT
// characters are skipped. When bothStrands is true each window also counts
// toward its reverse complement.
func Build(reads []seq.Read, k int, bothStrands bool) (*Spectrum, error) {
	sb, err := NewSpectrumBuilder(k, bothStrands)
	if err != nil {
		return nil, err
	}
	sb.Add(reads)
	return sb.Build(), nil
}

// SpectrumBuilder accumulates the k-spectrum incrementally, supporting the
// §2.3 divide-and-merge strategy: read chunks are streamed through Add and
// need not be retained.
type SpectrumBuilder struct {
	k           int
	bothStrands bool
	counts      map[seq.Kmer]uint32
}

// NewSpectrumBuilder validates k and prepares an empty accumulator.
func NewSpectrumBuilder(k int, bothStrands bool) (*SpectrumBuilder, error) {
	if k <= 0 || k > seq.MaxK {
		return nil, fmt.Errorf("kspectrum: invalid k=%d", k)
	}
	return &SpectrumBuilder{k: k, bothStrands: bothStrands, counts: make(map[seq.Kmer]uint32)}, nil
}

// Add merges one chunk of reads into the accumulator.
func (sb *SpectrumBuilder) Add(reads []seq.Read) {
	for _, r := range reads {
		forEachKmer(r.Seq, sb.k, func(km seq.Kmer, _ int) {
			sb.counts[km]++
			if sb.bothStrands {
				sb.counts[seq.RevComp(km, sb.k)]++
			}
		})
	}
}

// Build finalizes the sorted spectrum.
func (sb *SpectrumBuilder) Build() *Spectrum {
	s := &Spectrum{K: sb.k, Kmers: make([]seq.Kmer, 0, len(sb.counts))}
	for km := range sb.counts {
		s.Kmers = append(s.Kmers, km)
	}
	sort.Slice(s.Kmers, func(i, j int) bool { return s.Kmers[i] < s.Kmers[j] })
	s.Counts = make([]uint32, len(s.Kmers))
	for i, km := range s.Kmers {
		s.Counts[i] = sb.counts[km]
	}
	return s
}

// forEachKmer calls fn for every clean (ACGT-only) k-window of bases,
// re-packing incrementally.
func forEachKmer(bases []byte, k int, fn func(km seq.Kmer, pos int)) {
	if len(bases) < k {
		return
	}
	var km seq.Kmer
	valid := 0
	for i, ch := range bases {
		b, ok := seq.BaseFromChar(ch)
		if !ok {
			valid = 0
			continue
		}
		km = km.Append(b, k)
		valid++
		if valid >= k {
			fn(km, i-k+1)
		}
	}
}

// Size returns the number of distinct kmers.
func (s *Spectrum) Size() int { return len(s.Kmers) }

// Index returns the position of km in the sorted spectrum, or -1.
func (s *Spectrum) Index(km seq.Kmer) int {
	i := sort.Search(len(s.Kmers), func(i int) bool { return s.Kmers[i] >= km })
	if i < len(s.Kmers) && s.Kmers[i] == km {
		return i
	}
	return -1
}

// Contains reports spectrum membership.
func (s *Spectrum) Contains(km seq.Kmer) bool { return s.Index(km) >= 0 }

// Count returns the occurrence count of km (0 if absent).
func (s *Spectrum) Count(km seq.Kmer) uint32 {
	if i := s.Index(km); i >= 0 {
		return s.Counts[i]
	}
	return 0
}

// CountHistogram tallies how many kmers have each occurrence count,
// truncated at maxCount (counts above are binned at maxCount).
func (s *Spectrum) CountHistogram(maxCount int) []int {
	h := make([]int, maxCount+1)
	for _, c := range s.Counts {
		idx := int(c)
		if idx > maxCount {
			idx = maxCount
		}
		h[idx]++
	}
	return h
}
