// Package kspectrum implements the k-spectrum machinery of Chapter 2: the
// sorted k-spectrum of a read set built by a sharded parallel engine
// (§2.3's divide-and-merge strategy), the space-replicated chunk-masked
// index for exact d-neighborhood retrieval (§2.3 Phase 1), and
// quality-aware tile occurrence counting (Oc and Og).
package kspectrum

import (
	"fmt"
	"sort"

	"repro/internal/seq"
)

// Spectrum is the sorted k-spectrum R^k of a read collection with
// per-kmer occurrence counts. Both strands of every read contribute
// (§2.3, "Phase 1"), so the spectrum is reverse-complement closed.
//
// Kmers and Counts stay public, sorted and unindexed in layout — the
// NeighborIndex, the stream merge and serialization consume them exactly
// as before — but Build additionally freezes a prefix-bucket query index
// (see freezeIndex) so Index/Contains/Count run in O(1) expected time
// instead of a binary search.
type Spectrum struct {
	K      int
	Kmers  []seq.Kmer // sorted ascending, unique
	Counts []uint32   // parallel to Kmers

	// BothStrands records whether the build counted reverse complements
	// alongside forward windows (the spectrum is then RC-closed). It is
	// metadata, not used by queries; the persistent store (store.go)
	// round-trips it so a loaded spectrum can be validated against the
	// requesting configuration. Hand-assembled spectra leave it false.
	BothStrands bool

	// pshift/pbuckets are the frozen query index: bucket b spans
	// Kmers[pbuckets[b]:pbuckets[b+1]], where a kmer's bucket is its top
	// pbits bits (km >> pshift). nil pbuckets — a hand-assembled Spectrum
	// that never went through Build — falls back to binary search.
	pshift   uint
	pbuckets []int32

	// mapped is non-nil when the columns are views over a read-only
	// memory mapping (OpenMapped): queries then resolve bucket boundaries
	// lazily and validate each bucket on first touch instead of using a
	// frozen table. closeErr is set by Close and makes use-after-close
	// defined (queries answer absent, Err reports it).
	mapped   *mappedState
	closeErr error
}

func errInvalidK(k int) error { return fmt.Errorf("kspectrum: invalid k=%d", k) }

// Build constructs the k-spectrum from reads with the default parallelism
// (all cores). Windows containing non-ACGT characters are skipped. When
// bothStrands is true each window also counts toward its reverse complement.
func Build(reads []seq.Read, k int, bothStrands bool) (*Spectrum, error) {
	return BuildParallel(reads, k, bothStrands, BuildOptions{})
}

// BuildParallel is Build with explicit worker and shard counts. The result
// is identical for every options choice.
func BuildParallel(reads []seq.Read, k int, bothStrands bool, opts BuildOptions) (*Spectrum, error) {
	sb, err := NewSpectrumBuilder(k, bothStrands, opts)
	if err != nil {
		return nil, err
	}
	sb.Add(reads)
	return sb.Build(), nil
}

// ForEachKmer calls fn for every clean (ACGT-only) k-window of bases,
// re-packing incrementally.
func ForEachKmer(bases []byte, k int, fn func(km seq.Kmer, pos int)) {
	if len(bases) < k {
		return
	}
	var km seq.Kmer
	valid := 0
	for i, ch := range bases {
		b, ok := seq.BaseFromChar(ch)
		if !ok {
			valid = 0
			continue
		}
		km = km.Append(b, k)
		valid++
		if valid >= k {
			fn(km, i-k+1)
		}
	}
}

// Size returns the number of distinct kmers.
func (s *Spectrum) Size() int { return len(s.Kmers) }

// freezeIndex builds the prefix-bucket offset table over the sorted Kmers
// slice. pbits is chosen so the average bucket holds ~2 kmers (capped by
// 2k and a 4M-bucket table bound), which makes the in-bucket scan O(1)
// expected under the near-uniform high-bit distribution of a spectrum.
// Because the slice is sorted, each bucket is one contiguous range and the
// table is a single counting pass.
func (s *Spectrum) freezeIndex() {
	n := len(s.Kmers)
	if n == 0 {
		return
	}
	part := pickIndexPartition(n, s.K)
	s.pshift = part.Shift()
	s.pbuckets = make([]int32, part.Shards()+1)
	cur := 0
	for i, km := range s.Kmers {
		b := part.ShardOf(km)
		for cur <= b {
			s.pbuckets[cur] = int32(i)
			cur++
		}
	}
	for ; cur < len(s.pbuckets); cur++ {
		s.pbuckets[cur] = int32(n)
	}
}

// pickIndexPartition sizes the prefix-bucket table for n kmers of length
// k so the average bucket holds ~2 entries, capped by 2k and a 4M-bucket
// bound. Both the frozen index and the lazy mapped index use it, so a
// mapped and a copied load of the same store bucket identically.
func pickIndexPartition(n, k int) PrefixPartition {
	bits := prefixBitsFor(n/2, min(uint(2*k), 22))
	if bits < 1 {
		bits = 1
	}
	return PrefixPartition{K: k, Bits: bits}
}

// Index returns the position of km in the sorted spectrum, or -1. After
// Build it is an O(1) prefix-bucket lookup plus a short in-bucket scan;
// memory-mapped spectra (OpenMapped) resolve bucket bounds lazily and
// validate each bucket on first touch; hand-assembled spectra fall back
// to IndexBinarySearch.
func (s *Spectrum) Index(km seq.Kmer) int {
	if s.mapped != nil {
		return s.mapped.index(s, km)
	}
	if s.pbuckets == nil {
		return s.IndexBinarySearch(km)
	}
	b := uint64(km) >> s.pshift
	for i, hi := int(s.pbuckets[b]), int(s.pbuckets[b+1]); i < hi; i++ {
		if s.Kmers[i] >= km {
			if s.Kmers[i] == km {
				return i
			}
			return -1
		}
	}
	return -1
}

// IndexBinarySearch is the log₂(n) reference lookup the prefix-bucket
// index replaced; it is retained (no build tags) as the comparison
// baseline for BenchmarkSpectrumQuery and the correctness oracle in tests.
func (s *Spectrum) IndexBinarySearch(km seq.Kmer) int {
	i := sort.Search(len(s.Kmers), func(i int) bool { return s.Kmers[i] >= km })
	if i < len(s.Kmers) && s.Kmers[i] == km {
		return i
	}
	return -1
}

// Contains reports spectrum membership.
func (s *Spectrum) Contains(km seq.Kmer) bool { return s.Index(km) >= 0 }

// Count returns the occurrence count of km (0 if absent).
func (s *Spectrum) Count(km seq.Kmer) uint32 {
	if i := s.Index(km); i >= 0 {
		return s.Counts[i]
	}
	return 0
}

// CountHistogram tallies how many kmers have each occurrence count,
// truncated at maxCount (counts above are binned at maxCount).
func (s *Spectrum) CountHistogram(maxCount int) []int {
	h := make([]int, maxCount+1)
	for _, c := range s.Counts {
		idx := int(c)
		if idx > maxCount {
			idx = maxCount
		}
		h[idx]++
	}
	return h
}
