package kspectrum

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/seq"
)

// The shared store-backend conformance harness: one corruption-mutation
// table and one identity suite, run against both ways of materializing a
// KSPC file — the streaming copier (ReadSpectrum, eager whole-file
// validation) and the zero-copy mapping (OpenMapped, lazy validation).
// The two backends are allowed to detect corruption at different times
// (the mapped contract defers the CRC to the first full scan and bucket
// structure to first touch) but never to disagree on answers for a valid
// store, and never to crash on an invalid one.

// The corruption matrix itself lives in conformance.go (exported as
// CorruptionCases) so internal/remote's conformance suite runs the same
// table against the distributed backend.

// storeBackend is one way of materializing a store image as a queryable
// Spectrum.
type storeBackend struct {
	name string
	// lazy reports that the backend may accept a corrupt image at open
	// and only reject it on Verify (the mapped contract). It is false
	// for the mapped backend under the no-mmap fallback, which copies
	// eagerly.
	lazy bool
	open func(t testing.TB, data []byte) (*Spectrum, error)
}

// writeStoreFile lands a store image in a temp file; both backends open
// through the filesystem so path-wrapping of errors is exercised too.
func writeStoreFile(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.kspc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func storeBackends() []storeBackend {
	return []storeBackend{
		{name: "copied", open: func(t testing.TB, data []byte) (*Spectrum, error) {
			return ReadSpectrumFile(writeStoreFile(t, data))
		}},
		{name: "mapped", lazy: MmapSupported, open: func(t testing.TB, data []byte) (*Spectrum, error) {
			return OpenMapped(writeStoreFile(t, data))
		}},
	}
}

// TestStoreConformanceCorruption runs the full corruption matrix against
// both backends. The copied backend must reject every case at open. The
// mapped backend may instead accept lazily — but then a query sweep must
// never fault, Verify must report the corruption (wrapping
// ErrSpectrumStore), and queries after the failure must answer absent
// with Err set.
func TestStoreConformanceCorruption(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	valid := encodeSpectrum(t, s)
	for _, be := range storeBackends() {
		t.Run(be.name, func(t *testing.T) {
			for _, tc := range CorruptionCases(s, valid) {
				t.Run(tc.Name, func(t *testing.T) {
					got, err := be.open(t, tc.Data)
					if err != nil {
						if !errors.Is(err, ErrSpectrumStore) {
							t.Fatalf("error does not wrap ErrSpectrumStore: %v", err)
						}
						return
					}
					defer got.Close()
					if !be.lazy {
						t.Fatalf("corrupted input accepted: %d kmers decoded", got.Size())
					}
					// Deferred detection: sweeping every original kmer must
					// not fault, whatever it answers.
					for _, km := range s.Kmers {
						got.Index(km)
						got.Count(km)
					}
					verr := got.Verify()
					if verr == nil {
						t.Fatal("corrupt store passed Verify")
					}
					if !errors.Is(verr, ErrSpectrumStore) {
						t.Fatalf("Verify error does not wrap ErrSpectrumStore: %v", verr)
					}
					if got.Err() == nil {
						t.Fatal("Err() nil after failed Verify")
					}
					// A failed spectrum answers absent, not garbage.
					if got.Index(s.Kmers[0]) != -1 || got.Count(s.Kmers[0]) != 0 {
						t.Fatal("failed spectrum still serves answers")
					}
				})
			}
		})
	}
}

// identityProbes returns the query probes for a spectrum: the full kmer
// space when it is small enough, otherwise every stored kmer plus
// mutated near-misses on both sides of it.
func identityProbes(s *Spectrum) []seq.Kmer {
	if s.K <= 8 {
		kmax := seq.Kmer(^uint64(0) >> (64 - 2*uint(s.K)))
		probes := make([]seq.Kmer, 0, int(kmax)+1)
		for km := seq.Kmer(0); ; km++ {
			probes = append(probes, km)
			if km == kmax {
				return probes
			}
		}
	}
	kmax := seq.Kmer(^uint64(0) >> (64 - 2*uint(s.K)))
	probes := make([]seq.Kmer, 0, 3*len(s.Kmers))
	for _, km := range s.Kmers {
		probes = append(probes, km, km^1)
		if km < kmax {
			probes = append(probes, km+1)
		}
	}
	return probes
}

// TestStoreConformanceIdentity: for valid stores of every interesting
// shape, the two backends must be observationally identical — metadata,
// columns, and every Index/Contains/Count answer over the probe set
// (the complete kmer space for small k), plus neighbor retrieval through
// an eager index on the copied spectrum versus a lazy index on the
// mapped one, both against the brute-force oracle.
func TestStoreConformanceIdentity(t *testing.T) {
	type shape struct {
		name  string
		k     int
		reads int
		both  bool
	}
	shapes := []shape{
		{"k1", 1, 50, true},
		{"k7-full-keyspace", 7, 150, true},
		{"k12-both", 12, 200, true},
		{"k12-forward", 12, 200, false},
		{"k31", 31, 120, true},
		{"k32", 32, 120, false},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			s := storeTestSpectrum(t, sh.k, sh.reads, sh.both)
			conformanceCheckIdentity(t, s)
		})
	}
	t.Run("empty", func(t *testing.T) {
		conformanceCheckIdentity(t, &Spectrum{K: 9, BothStrands: true})
	})
}

func conformanceCheckIdentity(t *testing.T, s *Spectrum) {
	t.Helper()
	valid := encodeSpectrum(t, s)
	backends := storeBackends()
	opened := make([]*Spectrum, len(backends))
	for i, be := range backends {
		got, err := be.open(t, valid)
		if err != nil {
			t.Fatalf("%s rejects a valid store: %v", be.name, err)
		}
		defer got.Close()
		if got.K != s.K || got.BothStrands != s.BothStrands || got.Size() != s.Size() {
			t.Fatalf("%s metadata mismatch: got (%d,%v,%d) want (%d,%v,%d)",
				be.name, got.K, got.BothStrands, got.Size(), s.K, s.BothStrands, s.Size())
		}
		if s.Size() > 0 && (!reflect.DeepEqual(got.Kmers, s.Kmers) || !reflect.DeepEqual(got.Counts, s.Counts)) {
			t.Fatalf("%s columns differ from the original build", be.name)
		}
		opened[i] = got
	}
	ref, mapped := opened[0], opened[1]
	for _, km := range identityProbes(s) {
		ri, mi := ref.Index(km), mapped.Index(km)
		if ri != mi {
			t.Fatalf("Index(%#x): copied %d, mapped %d", uint64(km), ri, mi)
		}
		if rc, mc := ref.Count(km), mapped.Count(km); rc != mc {
			t.Fatalf("Count(%#x): copied %d, mapped %d", uint64(km), rc, mc)
		}
		if ref.Contains(km) != mapped.Contains(km) {
			t.Fatalf("Contains(%#x) disagrees", uint64(km))
		}
	}
	conformanceCheckNeighbors(t, s, ref, mapped)
	for i, got := range opened {
		if err := got.Err(); err != nil {
			t.Fatalf("%s: Err after a clean sweep: %v", backends[i].name, err)
		}
		if err := got.Verify(); err != nil {
			t.Fatalf("%s: Verify on a valid store: %v", backends[i].name, err)
		}
	}
}

// conformanceCheckNeighbors compares d-neighborhood retrieval between an
// eager index over the copied spectrum and a lazy index over the mapped
// one, with BruteForceNeighbors as the shared oracle.
func conformanceCheckNeighbors(t *testing.T, s *Spectrum, ref, mapped *Spectrum) {
	t.Helper()
	d := 1
	c := min(s.K, d+4)
	if c <= d || s.Size() == 0 {
		return // k too small for a (d, c) split, or nothing to retrieve
	}
	eager, err := NewNeighborIndex(ref, d, c)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewNeighborIndexLazy(mapped, d, c)
	if err != nil {
		t.Fatal(err)
	}
	probes := s.Kmers
	if len(probes) > 64 {
		probes = probes[:64]
	}
	for _, km := range probes {
		for _, probe := range []seq.Kmer{km, km ^ 2} {
			want := BruteForceNeighbors(ref, probe, d)
			got := append([]int32(nil), eager.Neighbors(probe, nil)...)
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("eager Neighbors(%#x) = %v, oracle %v", uint64(probe), got, want)
			}
			gotLazy := append([]int32(nil), lazy.Neighbors(probe, nil)...)
			sort.Slice(gotLazy, func(a, b int) bool { return gotLazy[a] < gotLazy[b] })
			if !reflect.DeepEqual(gotLazy, want) {
				t.Fatalf("lazy Neighbors(%#x) = %v, oracle %v", uint64(probe), gotLazy, want)
			}
		}
	}
}

// TestMappedLazyBucketValidation pins the lazy-detection contract of the
// mapped backend: corruption confined to one region of the kmer column is
// invisible to queries that never touch it, detected on the first query
// that does, and count-column corruption (structurally unverifiable per
// bucket) is caught by the deferred whole-file check.
func TestMappedLazyBucketValidation(t *testing.T) {
	if !MmapSupported {
		t.Skip("no mmap on this platform/build: OpenMapped validates eagerly")
	}
	s := storeTestSpectrum(t, 12, 300, true)
	valid := encodeSpectrum(t, s)
	n := len(s.Kmers)
	if n < 8 {
		t.Fatal("test spectrum too small")
	}

	t.Run("kmer corruption detected on touch", func(t *testing.T) {
		// Duplicate the last kmer record over its predecessor's value:
		// individually in-range, same prefix bucket candidates, but the
		// strict-ascending invariant breaks inside the final bucket.
		data := append([]byte(nil), valid...)
		last := storeHeaderLen + 8*(n-1)
		copy(data[last:last+8], data[last-8:last])
		spec, err := OpenMapped(writeStoreFile(t, data))
		if err != nil {
			t.Fatalf("geometry-clean corruption rejected at open: %v", err)
		}
		defer spec.Close()
		// Queries confined to the first bucket never see the damage.
		if got := spec.Index(s.Kmers[0]); got != 0 {
			t.Fatalf("Index(first) = %d want 0", got)
		}
		if err := spec.Err(); err != nil {
			t.Fatalf("undamaged-bucket query tripped Err: %v", err)
		}
		// The first query into the damaged bucket detects it.
		if got := spec.Index(s.Kmers[n-1]); got != -1 {
			t.Fatalf("query in corrupt bucket answered %d", got)
		}
		err = spec.Err()
		if err == nil {
			t.Fatal("corrupt bucket touched but Err is nil")
		}
		if !errors.Is(err, ErrSpectrumStore) {
			t.Fatalf("Err does not wrap ErrSpectrumStore: %v", err)
		}
	})

	t.Run("count corruption caught by Verify", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[storeHeaderLen+8*n] ^= 0x01 // first count byte
		spec, err := OpenMapped(writeStoreFile(t, data))
		if err != nil {
			t.Fatalf("count corruption rejected at open: %v", err)
		}
		defer spec.Close()
		// The kmer column is intact, so queries stay structurally clean…
		for _, km := range s.Kmers[:16] {
			spec.Index(km)
		}
		if err := spec.Err(); err != nil {
			t.Fatalf("count corruption tripped bucket validation: %v", err)
		}
		// …until the whole-file check runs.
		if err := spec.Verify(); !errors.Is(err, ErrSpectrumStore) {
			t.Fatalf("Verify = %v, want an ErrSpectrumStore checksum failure", err)
		}
	})
}

// TestMappedCloseThenUse: use-after-Close is defined behavior — absent
// answers and ErrSpectrumClosed, never a fault against unmapped pages.
func TestMappedCloseThenUse(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	spec, err := OpenMapped(writeStoreFile(t, encodeSpectrum(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	km := s.Kmers[0]
	if got := spec.Index(km); got != 0 {
		t.Fatalf("Index before Close = %d want 0", got)
	}
	if err := spec.Close(); err != nil {
		t.Fatal(err)
	}
	if got := spec.Index(km); got != -1 {
		t.Fatalf("Index after Close = %d want -1", got)
	}
	if got := spec.Count(km); got != 0 {
		t.Fatalf("Count after Close = %d want 0", got)
	}
	if spec.Contains(km) {
		t.Fatal("Contains after Close")
	}
	if err := spec.Err(); !errors.Is(err, ErrSpectrumClosed) {
		t.Fatalf("Err after Close = %v want ErrSpectrumClosed", err)
	}
	if err := spec.Verify(); !errors.Is(err, ErrSpectrumClosed) {
		t.Fatalf("Verify after Close = %v want ErrSpectrumClosed", err)
	}
	if err := WriteSpectrum(&bytes.Buffer{}, spec); err == nil {
		t.Fatal("WriteSpectrum on a closed spectrum succeeded")
	}
	if err := spec.Close(); err != nil {
		t.Fatalf("second Close = %v want nil (idempotent)", err)
	}
}

// TestMappedConcurrentLazyMaterialization drives the mapped backend's
// lazy machinery — bucket-boundary resolution, first-touch validation,
// verifyOnce, and lazy neighbor-replica builds — from many goroutines at
// once, the daemon's request shape. Run under -race this is the
// publication-safety proof; the answers must also all be right.
func TestMappedConcurrentLazyMaterialization(t *testing.T) {
	s := storeTestSpectrum(t, 12, 400, true)
	spec, err := OpenMapped(writeStoreFile(t, encodeSpectrum(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	defer spec.Close()
	ni, err := NewNeighborIndexLazy(spec, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger starting offsets so goroutines race on different
			// buckets first, then converge on the same ones.
			for i := range s.Kmers {
				j := (i + w*len(s.Kmers)/workers) % len(s.Kmers)
				km := s.Kmers[j]
				if got := spec.Index(km); got != j {
					errc <- fmt.Errorf("worker %d: Index(%#x) = %d want %d", w, uint64(km), got, j)
					return
				}
				if got := spec.Count(km); got != s.Counts[j] {
					errc <- fmt.Errorf("worker %d: Count mismatch at %d", w, j)
					return
				}
			}
			for _, km := range s.Kmers[:32] {
				got := append([]int32(nil), ni.Neighbors(km, nil)...)
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				want := BruteForceNeighbors(spec, km, 1)
				if !reflect.DeepEqual(got, want) {
					errc <- fmt.Errorf("worker %d: Neighbors(%#x) = %v want %v", w, uint64(km), got, want)
					return
				}
			}
			if err := spec.Verify(); err != nil {
				errc <- fmt.Errorf("worker %d: Verify: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// FuzzOpenMapped: for arbitrary bytes, the mapped backend must agree
// with the streaming decoder — accept and serve identically what it
// accepts, reject (at open or at Verify) what it rejects — and never
// crash either way.
func FuzzOpenMapped(f *testing.F) {
	s := storeTestSpectrum(f, 6, 80, true)
	valid := encodeSpectrum(f, s)
	f.Add(valid)
	for _, tc := range CorruptionCases(s, valid) {
		f.Add(tc.Data)
	}
	f.Add(encodeSpectrum(f, &Spectrum{K: 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refErr := ReadSpectrum(bytes.NewReader(data))
		spec, err := OpenMapped(writeStoreFile(t, data))
		if refErr == nil {
			// The streaming decoder accepted: the mapping must too, pass
			// the full check, and answer identically everywhere.
			if err != nil {
				t.Fatalf("decoder accepts, OpenMapped rejects: %v", err)
			}
			defer spec.Close()
			if err := spec.Verify(); err != nil {
				t.Fatalf("decoder accepts, mapped Verify rejects: %v", err)
			}
			if spec.K != ref.K || spec.BothStrands != ref.BothStrands || spec.Size() != ref.Size() {
				t.Fatalf("metadata mismatch: mapped (%d,%v,%d) copied (%d,%v,%d)",
					spec.K, spec.BothStrands, spec.Size(), ref.K, ref.BothStrands, ref.Size())
			}
			for i, km := range ref.Kmers {
				if got := spec.Index(km); got != i {
					t.Fatalf("Index(%#x) = %d want %d", uint64(km), got, i)
				}
				if got := spec.Count(km); got != ref.Counts[i] {
					t.Fatalf("Count(%#x) = %d want %d", uint64(km), got, ref.Counts[i])
				}
				if got := spec.Index(km ^ 3); got != ref.Index(km^3) {
					t.Fatalf("Index(%#x) disagrees", uint64(km^3))
				}
			}
			return
		}
		// The streaming decoder rejected. The mapping may reject at open or
		// accept lazily — but then a bounded query sweep must not fault and
		// Verify must reject.
		if err != nil {
			return
		}
		defer spec.Close()
		probes := spec.Kmers
		if len(probes) > 256 {
			probes = probes[:256]
		}
		for _, km := range probes {
			spec.Index(km)
			spec.Count(km)
		}
		if spec.Verify() == nil {
			t.Fatal("decoder rejects, mapped Verify accepts")
		}
	})
}
