package kspectrum

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/faultinject"
)

// Crash-safe checkpointing for the out-of-core builder (DESIGN.md §10):
// when StreamOptions.CheckpointDir is set, every spilled run file carries
// a versioned header and a CRC-32C trailer, and the builder periodically
// writes a manifest — atomically, via temp+rename+dir-fsync — recording
// the read cursor and the exact run files that cover it. A build killed
// at any point (SIGKILL, power cut) resumes from the newest manifest:
// surviving runs are revalidated (header + full CRC), runs the manifest
// does not list are deleted (they count reads past the cursor and would
// double-count on resume), and counting restarts at the cursor. The
// merged spectrum is byte-identical to an uninterrupted run because
// merge sums are order-independent and the manifest's runs plus the
// re-counted tail partition the input exactly.

// ManifestName is the checkpoint manifest's file name inside a
// checkpoint directory.
const ManifestName = "MANIFEST.kman"

// manifestMagic identifies a checkpoint manifest file.
var manifestMagic = [4]byte{'K', 'M', 'A', 'N'}

// manifestVersion is the current manifest format version.
const manifestVersion = 1

// manifest is the JSON payload of a checkpoint: the builder geometry
// (which must match on resume), the read cursor the listed runs cover,
// and each run's identity and checksum.
type manifest struct {
	K           int           `json:"k"`
	BothStrands bool          `json:"both_strands"`
	Shards      int           `json:"shards"`
	Reads       int64         `json:"reads"`
	NextRun     int64         `json:"next_run"`
	Runs        []manifestRun `json:"runs"`
}

// manifestRun records one durable run file. File is the base name (the
// directory may move); CRC covers the whole file except its own trailer.
type manifestRun struct {
	File    string `json:"file"`
	Shard   int    `json:"shard"`
	Entries int64  `json:"entries"`
	Bytes   int64  `json:"bytes"`
	CRC     uint32 `json:"crc"`
}

// ErrCheckpoint wraps every structural failure of a checkpoint directory
// — a corrupt manifest, a run failing its CRC, mismatched geometry — so
// callers can distinguish "this checkpoint is unusable, delete it and
// rebuild" from I/O errors.
var ErrCheckpoint = errors.New("kspectrum: invalid checkpoint")

func checkpointErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCheckpoint, fmt.Sprintf(format, args...))
}

// writeManifestFile atomically publishes m as dir's manifest:
// temp+rename in the same directory, fsync of file and directory, so
// after a crash either the previous manifest or this one is intact —
// never a torn mixture.
func writeManifestFile(dir string, m *manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("kspectrum: checkpoint manifest: %w", err)
	}
	buf := make([]byte, 16, 16+len(payload)+4)
	copy(buf[0:4], manifestMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], manifestVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf, crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, sum)

	tmpPath := filepath.Join(dir, "."+ManifestName+".tmp")
	wrap := func(err error) error {
		os.Remove(tmpPath)
		return fmt.Errorf("kspectrum: checkpoint manifest: %w", err)
	}
	f, err := faultinject.Create(faultinject.SiteManifest, tmpPath)
	if err != nil {
		return fmt.Errorf("kspectrum: checkpoint manifest: %w", err)
	}
	if n, err := f.Write(buf); err != nil {
		f.Close()
		return wrap(err)
	} else if n != len(buf) {
		f.Close()
		return wrap(io.ErrShortWrite)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return wrap(err)
	}
	if err := f.Close(); err != nil {
		return wrap(err)
	}
	if err := faultinject.Rename(faultinject.SiteManifest, tmpPath, filepath.Join(dir, ManifestName)); err != nil {
		return wrap(err)
	}
	if err := syncDir(faultinject.SiteManifestDir, dir); err != nil {
		return fmt.Errorf("kspectrum: checkpoint manifest: %w", err)
	}
	return nil
}

// readManifestFile loads and validates dir's manifest. A missing file
// returns (nil, nil): the build crashed before its first checkpoint and
// resume degenerates to a fresh build.
func readManifestFile(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if len(data) < 20 {
		return nil, checkpointErr("manifest truncated (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != manifestMagic {
		return nil, checkpointErr("manifest bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != manifestVersion {
		return nil, checkpointErr("manifest unsupported version %d (want %d)", v, manifestVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:16])
	if plen != uint64(len(data)-20) {
		return nil, checkpointErr("manifest payload length %d does not match file size", plen)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, crcTable); got != want {
		return nil, checkpointErr("manifest checksum mismatch (file %#x, computed %#x)", got, want)
	}
	var m manifest
	if err := json.Unmarshal(body[16:], &m); err != nil {
		return nil, checkpointErr("manifest payload: %v", err)
	}
	if m.Shards < 1 || m.Reads < 0 {
		return nil, checkpointErr("manifest geometry: shards=%d reads=%d", m.Shards, m.Reads)
	}
	return &m, nil
}

// The run-file format shared by plain spills and durable checkpoints:
//
//	offset  size  field
//	0       4     magic "KRUN"
//	4       4     version (1)
//	8       4     k
//	12      4     flags (bit 0: both strands)
//	16      4     shard index
//	20      4     reserved (0)
//	24      8     entry count
//	32      12*n  (kmer uint64, count uint32) records, little-endian,
//	              sorted strictly ascending within the run
//	…       4     CRC-32C of every preceding byte

var runMagic = [4]byte{'K', 'R', 'U', 'N'}

const (
	runVersion   = 1
	runHeaderLen = 32
)

// runHeader is the decoded fixed header of a run file.
type runHeader struct {
	k           int
	bothStrands bool
	shard       int
	count       int64
}

func (h runHeader) encode() [runHeaderLen]byte {
	var hdr [runHeaderLen]byte
	copy(hdr[0:4], runMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], runVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(h.k))
	var flags uint32
	if h.bothStrands {
		flags |= storeFlagBothStrands
	}
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(h.shard))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(h.count))
	return hdr
}

func decodeRunHeader(hdr []byte) (runHeader, error) {
	if [4]byte(hdr[0:4]) != runMagic {
		return runHeader{}, checkpointErr("run bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != runVersion {
		return runHeader{}, checkpointErr("run unsupported version %d (want %d)", v, runVersion)
	}
	return runHeader{
		k:           int(binary.LittleEndian.Uint32(hdr[8:12])),
		bothStrands: binary.LittleEndian.Uint32(hdr[12:16])&storeFlagBothStrands != 0,
		shard:       int(binary.LittleEndian.Uint32(hdr[16:20])),
		count:       int64(binary.LittleEndian.Uint64(hdr[24:32])),
	}, nil
}

// runSize is the exact on-disk size of a run holding entries records.
func runSize(entries int64) int64 {
	return runHeaderLen + entries*runEntryBytes + 4
}

// validateRun re-reads a surviving run end to end: header fields against
// the manifest's record and the builder geometry, the full CRC against
// both the trailer and the manifest, and the exact file length. A run
// that fails is grounds to refuse the whole checkpoint — a torn or
// bit-flipped run silently merged would corrupt the spectrum.
func validateRun(ri runInfo, k int, bothStrands bool) error {
	f, err := os.Open(ri.path)
	if err != nil {
		return fmt.Errorf("kspectrum: checkpoint run: %w", err)
	}
	defer f.Close()
	crc := crc32.New(crcTable)
	var hdr [runHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return checkpointErr("run %s: truncated header", filepath.Base(ri.path))
	}
	crc.Write(hdr[:])
	h, err := decodeRunHeader(hdr[:])
	if err != nil {
		return fmt.Errorf("%w (%s)", err, filepath.Base(ri.path))
	}
	if h.k != k || h.bothStrands != bothStrands || h.shard != ri.shard || h.count != ri.entries {
		return checkpointErr("run %s header (k=%d both=%v shard=%d count=%d) disagrees with manifest (k=%d both=%v shard=%d count=%d)",
			filepath.Base(ri.path), h.k, h.bothStrands, h.shard, h.count, k, bothStrands, ri.shard, ri.entries)
	}
	slab := make([]byte, storeSlabEntries*runEntryBytes)
	for left := h.count * runEntryBytes; left > 0; {
		n := int64(len(slab))
		if n > left {
			n = left
		}
		if _, err := io.ReadFull(f, slab[:n]); err != nil {
			return checkpointErr("run %s: truncated records", filepath.Base(ri.path))
		}
		crc.Write(slab[:n])
		left -= n
	}
	var tail [4]byte
	if _, err := io.ReadFull(f, tail[:]); err != nil {
		return checkpointErr("run %s: truncated checksum", filepath.Base(ri.path))
	}
	got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32()
	if got != want || got != ri.crc {
		return checkpointErr("run %s: checksum mismatch (file %#x, computed %#x, manifest %#x)",
			filepath.Base(ri.path), got, want, ri.crc)
	}
	if extra, err := f.Read(tail[:1]); err != io.EOF || extra != 0 {
		return checkpointErr("run %s: trailing data after checksum", filepath.Base(ri.path))
	}
	return nil
}

// syncDir fsyncs a directory so a preceding rename (or create) in it is
// durable: on ext4-ordered mounts the rename itself can otherwise be
// lost by a crash even though the file's bytes survived. Filesystems
// that reject directory fsync (EINVAL) are treated as success — there
// is nothing more this process can do.
func syncDir(site faultinject.Site, dir string) error {
	if err := faultinject.Check(site, faultinject.OpSync); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && errors.Is(err, syscall.EINVAL) {
		return nil
	}
	return err
}
