package kspectrum

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/seq"
)

// The persistent spectrum store: a versioned binary on-disk format for a
// built Spectrum, so the expensive Phase-1 counting runs once and its
// product is reused across processes (the -save-spectrum/-load-spectrum
// CLI flags and the cmd/kserve daemon registry).
//
// Layout, all little-endian, fixed width (DESIGN.md §6):
//
//	offset  size       field
//	0       4          magic "KSPC"
//	4       4          format version (currently 1)
//	8       4          k (kmer length, 1..32)
//	12      4          flags (bit 0: built from both strands)
//	16      8          count (number of distinct kmers)
//	24      8*count    Kmers column, sorted strictly ascending
//	…       4*count    Counts column, parallel to Kmers
//	…       4          CRC-32C (Castagnoli) of every preceding byte
//
// Both directions stream in fixed slabs, so encoding and decoding use O(1)
// memory beyond the spectrum itself, and a truncated, bit-flipped,
// wrong-version or out-of-order file is rejected with a clean error —
// never a panic, never a silently wrong spectrum.

// storeMagic identifies a spectrum store file.
var storeMagic = [4]byte{'K', 'S', 'P', 'C'}

// StoreVersion is the current on-disk format version.
const StoreVersion = 1

// storeFlagBothStrands marks a spectrum whose build counted reverse
// complements (Spectrum.BothStrands).
const storeFlagBothStrands = 1 << 0

// storeHeaderLen is the fixed byte length of the header (through count).
const storeHeaderLen = 24

// ErrSpectrumStore is wrapped by every structural decode failure —
// truncation, corruption, bad magic, unsupported version, out-of-order
// kmers — so callers can distinguish "this is not a valid spectrum file"
// from I/O errors with errors.Is.
var ErrSpectrumStore = errors.New("kspectrum: invalid spectrum file")

func storeErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSpectrumStore, fmt.Sprintf(format, args...))
}

// storeSlabEntries is the streaming granularity of both directions: 64Ki
// entries, a 512 KiB kmer slab — large enough to amortize syscalls, small
// enough that decode memory stays flat while a truncated count field
// cannot trigger a giant up-front allocation.
const storeSlabEntries = 64 << 10

// crcTable is the Castagnoli polynomial table shared by both directions.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteSpectrum encodes s to w in the versioned store format. It streams:
// beyond a fixed slab buffer it allocates nothing, regardless of spectrum
// size. The writer is buffered internally; callers pass a raw os.File or
// network stream.
func WriteSpectrum(w io.Writer, s *Spectrum) error {
	if s.K < 1 || s.K > seq.MaxK {
		return errInvalidK(s.K)
	}
	if len(s.Kmers) != len(s.Counts) {
		return fmt.Errorf("kspectrum: spectrum has %d kmers but %d counts", len(s.Kmers), len(s.Counts))
	}
	// Re-encoding is a full scan: a memory-mapped source must pass the
	// deferred whole-file check first, or corrupt bytes would be laundered
	// into a fresh file with a valid checksum. Built/copied spectra (and
	// a closed one, which errors here) resolve this without any scan.
	if err := s.Verify(); err != nil {
		return err
	}
	crc := crc32.New(crcTable)
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)

	var hdr [storeHeaderLen]byte
	copy(hdr[0:4], storeMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], StoreVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(s.K))
	var flags uint32
	if s.BothStrands {
		flags |= storeFlagBothStrands
	}
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(s.Kmers)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("kspectrum: write spectrum: %w", err)
	}

	var rec [8]byte
	for _, km := range s.Kmers {
		binary.LittleEndian.PutUint64(rec[:], uint64(km))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("kspectrum: write spectrum: %w", err)
		}
	}
	for _, c := range s.Counts {
		binary.LittleEndian.PutUint32(rec[:4], c)
		if _, err := bw.Write(rec[:4]); err != nil {
			return fmt.Errorf("kspectrum: write spectrum: %w", err)
		}
	}
	// The trailer covers everything before it, so it must leave the
	// buffered/CRC path: flush first, then append the sum to w directly.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("kspectrum: write spectrum: %w", err)
	}
	binary.LittleEndian.PutUint32(rec[:4], crc.Sum32())
	// This write bypasses bufio (which maps short writes itself), so the
	// io.Writer contract violation a fake or broken sink can commit —
	// n < len with a nil error — must be caught here or the trailer is
	// silently truncated.
	if n, err := w.Write(rec[:4]); err != nil {
		return fmt.Errorf("kspectrum: write spectrum: %w", err)
	} else if n != 4 {
		return fmt.Errorf("kspectrum: write spectrum: %w", io.ErrShortWrite)
	}
	return nil
}

// ReadSpectrum decodes a spectrum from r, verifying magic, version,
// geometry, strict kmer ordering and the trailing checksum, and freezes
// the O(1) query index before returning — the result is query-ready,
// indistinguishable from a fresh Build. Structural failures wrap
// ErrSpectrumStore. The stream must end at the trailer; trailing garbage
// is rejected.
func ReadSpectrum(r io.Reader) (*Spectrum, error) {
	crc := crc32.New(crcTable)
	br := &crcReader{r: bufio.NewReaderSize(r, 1<<16), crc: crc}

	var hdr [storeHeaderLen]byte
	if err := br.readFull(hdr[:], "header"); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != storeMagic {
		return nil, storeErr("bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != StoreVersion {
		return nil, storeErr("unsupported version %d (want %d)", v, StoreVersion)
	}
	k := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if k < 1 || k > seq.MaxK {
		return nil, storeErr("invalid k=%d", k)
	}
	flags := binary.LittleEndian.Uint32(hdr[12:16])
	if flags&^storeFlagBothStrands != 0 {
		return nil, storeErr("unknown flags %#x", flags)
	}
	count64 := binary.LittleEndian.Uint64(hdr[16:24])
	if k < seq.MaxK && count64 > 1<<(2*uint(k)) {
		return nil, storeErr("count %d exceeds 4^%d distinct kmers", count64, k)
	}
	if count64 > (1<<31)-1 {
		// The frozen index addresses entries with int32 offsets.
		return nil, storeErr("count %d exceeds the index limit", count64)
	}
	count := int(count64)

	// Capacity grows with bytes actually read (append per slab), never
	// from the untrusted count alone — a forged header cannot trigger a
	// giant up-front allocation; it hits "truncated kmer column" after at
	// most one slab.
	s := &Spectrum{
		K:           k,
		BothStrands: flags&storeFlagBothStrands != 0,
		Kmers:       make([]seq.Kmer, 0, min(count, storeSlabEntries)),
		Counts:      make([]uint32, 0, min(count, storeSlabEntries)),
	}
	kmax := ^uint64(0) >> (64 - 2*uint(k)) // largest kmer representable in 2k bits
	slab := make([]byte, storeSlabEntries*8)
	var prev uint64
	for done := 0; done < count; {
		n := min(storeSlabEntries, count-done)
		buf := slab[:n*8]
		if err := br.readFull(buf, "kmer column"); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			km := binary.LittleEndian.Uint64(buf[i*8:])
			if km > kmax {
				return nil, storeErr("kmer %#x out of range for k=%d", km, k)
			}
			if done+i > 0 && km <= prev {
				return nil, storeErr("kmers not strictly ascending at entry %d", done+i)
			}
			prev = km
			s.Kmers = append(s.Kmers, seq.Kmer(km))
		}
		done += n
	}
	for done := 0; done < count; {
		n := min(storeSlabEntries, count-done)
		buf := slab[:n*4]
		if err := br.readFull(buf, "count column"); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			s.Counts = append(s.Counts, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		done += n
	}

	// The trailer is read outside the CRC accumulation.
	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br.r, tail[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, storeErr("truncated checksum")
		}
		return nil, fmt.Errorf("kspectrum: read spectrum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, storeErr("checksum mismatch (file %#x, computed %#x)", got, want)
	}
	if _, err := br.r.ReadByte(); err != io.EOF {
		return nil, storeErr("trailing data after checksum")
	}
	s.freezeIndex()
	return s, nil
}

// crcReader feeds every consumed byte through the running checksum.
type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

// readFull fills buf, mapping any premature end of stream to a clean
// truncation error naming the section.
func (cr *crcReader) readFull(buf []byte, section string) error {
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return storeErr("truncated %s", section)
		}
		return fmt.Errorf("kspectrum: read spectrum: %w", err)
	}
	cr.crc.Write(buf)
	return nil
}

// WriteSpectrumFile writes s to path atomically: the bytes land in a
// temporary sibling first and rename into place only after a successful
// synced close, so readers never observe a half-written store. Every
// failure path closes and removes the temporary file and wraps the
// destination path, so a daemon log names the offending store. All I/O
// runs behind the "kspc" fault-injection site.
func WriteSpectrumFile(path string, s *Spectrum) error {
	wrap := func(err error) error {
		return fmt.Errorf("kspectrum: write spectrum %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".kspc-*")
	if err != nil {
		return wrap(err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteSpectrum(faultinject.Writer(faultinject.SiteKSPC, tmp), s); err != nil {
		tmp.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	// CreateTemp's private 0600 would survive the rename; widen to the
	// conventional output mode so other users (a daemon running under a
	// service account) can read the store.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return wrap(err)
	}
	// Flush to stable storage before the rename: without it a crash
	// after rename but before writeback replaces a previously good store
	// with a zero-length or partial file — the CRC would catch it on
	// load, but the good data would already be gone.
	if err := faultinject.Check(faultinject.SiteKSPC, faultinject.OpSync); err != nil {
		tmp.Close()
		return wrap(err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return wrap(err)
	}
	if err := tmp.Close(); err != nil {
		return wrap(err)
	}
	if err := faultinject.Rename(faultinject.SiteKSPC, tmp.Name(), path); err != nil {
		return wrap(err)
	}
	// The rename itself is a directory mutation: fsync the parent so a
	// crash immediately after this return cannot roll the directory back
	// to an entry-less (or old-entry) state while the caller already
	// reported success.
	if err := syncDir(faultinject.SiteKSPCDir, filepath.Dir(path)); err != nil {
		return wrap(err)
	}
	return nil
}

// ReadSpectrumFile loads the spectrum stored at path.
func ReadSpectrumFile(path string) (*Spectrum, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSpectrum(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
