package kspectrum

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// randomReads simulates a read set large enough to populate many shards.
func randomReads(t *testing.T, n int) []seq.Read {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	genome, err := simulate.RandomGenome(6000, simulate.UniformProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulate.SimulateReads(genome, simulate.ReadSimConfig{
		N: n, Model: simulate.UniformModel(36, 0.02), BothStrands: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return simulate.Reads(sim)
}

// spectraEqual requires byte-identical Kmers and Counts.
func spectraEqual(t *testing.T, want, got *Spectrum, label string) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d want %d", label, got.Size(), want.Size())
	}
	for i := range want.Kmers {
		if got.Kmers[i] != want.Kmers[i] || got.Counts[i] != want.Counts[i] {
			t.Fatalf("%s: entry %d: (%v,%d) want (%v,%d)",
				label, i, got.Kmers[i], got.Counts[i], want.Kmers[i], want.Counts[i])
		}
	}
}

// TestShardedBuildDeterministic verifies the acceptance property of the
// sharded engine: every (Workers, Shards) choice — including the non-power-
// of-two shard count 7 — produces a spectrum byte-identical to the
// sequential single-shard build, on both strand settings.
func TestShardedBuildDeterministic(t *testing.T) {
	reads := randomReads(t, 2000)
	for _, bothStrands := range []bool{false, true} {
		want, err := BuildParallel(reads, 13, bothStrands, BuildOptions{Workers: 1, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4, 7} {
			for _, workers := range []int{1, 3, 8} {
				got, err := BuildParallel(reads, 13, bothStrands, BuildOptions{Workers: workers, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				label := "both=" + map[bool]string{true: "t", false: "f"}[bothStrands]
				spectraEqual(t, want, got, label)
			}
		}
	}
}

// TestShardedBuildSmallK exercises the shard-bit clamp: with k=2 there are
// only 16 possible kmers, so an extravagant shard request must degrade to at
// most 4^k shards and still count exactly.
func TestShardedBuildSmallK(t *testing.T) {
	reads := randomReads(t, 200)
	want, err := BuildParallel(reads, 2, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildParallel(reads, 2, true, BuildOptions{Workers: 4, Shards: 4096})
	if err != nil {
		t.Fatal(err)
	}
	spectraEqual(t, want, got, "small-k")
}

// TestSpectrumBuilderConcurrentAdd drives Add from many goroutines at once —
// the divide-and-merge ingestion pattern — and checks the merged spectrum
// matches a one-shot sequential build. Run under -race this doubles as the
// engine's data-race test.
func TestSpectrumBuilderConcurrentAdd(t *testing.T) {
	reads := randomReads(t, 3000)
	want, err := BuildParallel(reads, 11, true, BuildOptions{Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSpectrumBuilder(11, true, BuildOptions{Workers: 2, Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 9
	var wg sync.WaitGroup
	size := (len(reads) + chunks - 1) / chunks
	for lo := 0; lo < len(reads); lo += size {
		hi := min(lo+size, len(reads))
		wg.Add(1)
		go func(chunk []seq.Read) {
			defer wg.Done()
			sb.Add(chunk)
		}(reads[lo:hi])
	}
	wg.Wait()
	spectraEqual(t, want, sb.Build(), "concurrent-add")
}

// TestBuilderReusableAfterBuild preserves the historical builder contract:
// Build snapshots the accumulator without consuming it, so further Adds and
// a second Build keep counting.
func TestBuilderReusableAfterBuild(t *testing.T) {
	reads := mkReads("ACGTACGT")
	sb, err := NewSpectrumBuilder(4, false, BuildOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb.Add(reads)
	first := sb.Build()
	sb.Add(reads)
	second := sb.Build()
	if second.Size() != first.Size() {
		t.Fatalf("size changed: %d vs %d", first.Size(), second.Size())
	}
	for i := range first.Counts {
		if second.Counts[i] != 2*first.Counts[i] {
			t.Fatalf("count %d: %d want %d", i, second.Counts[i], 2*first.Counts[i])
		}
	}
}

// TestBuildOptionsResolve pins the option-resolution rules the docs promise.
func TestBuildOptionsResolve(t *testing.T) {
	if w, bits := (BuildOptions{Workers: 1}).resolve(13); w != 1 || bits != 0 {
		t.Errorf("serial resolve: workers=%d shardBits=%d", w, bits)
	}
	if w, bits := (BuildOptions{Workers: 4, Shards: 7}).resolve(13); w != 4 || bits != 3 {
		t.Errorf("shards=7 should round to 8: workers=%d shardBits=%d", w, bits)
	}
	if _, bits := (BuildOptions{Workers: 2, Shards: 1 << 20}).resolve(13); bits != 10 {
		t.Errorf("shard cap: shardBits=%d want 10", bits)
	}
	if _, bits := (BuildOptions{Workers: 2, Shards: 64}).resolve(2); bits != 4 {
		t.Errorf("k clamp: shardBits=%d want 4", bits)
	}
}
