package kspectrum

import "repro/internal/seq"

// PrefixPartition is the one description of how this package splits kmer
// space by high bits. Three subsystems partition identically — the
// builder's count shards (sharded.go), the frozen and lazy query-index
// buckets (spectrum.go, mapped.go), and the distributed shard router
// (shardsplit.go, internal/remote) — and all of them now derive their
// routing from this type, so the partitions cannot drift.
//
// A partition of k-mers into 2^Bits shards assigns kmer km to shard
// km >> Shift(): because kmers pack bases MSB-first, each shard is one
// contiguous range of the sorted spectrum, and the concatenation of
// sorted shards in shard order is the sorted whole.
type PrefixPartition struct {
	K    int  // kmer length in bases
	Bits uint // number of high bits that select the shard; Bits <= 2*K
}

// Shift is the right-shift that maps a kmer to its shard number.
func (p PrefixPartition) Shift() uint { return uint(2*p.K) - p.Bits }

// Shards is the number of shards, 2^Bits.
func (p PrefixPartition) Shards() int { return 1 << p.Bits }

// ShardOf returns the shard owning km.
func (p PrefixPartition) ShardOf(km seq.Kmer) int {
	return int(uint64(km) >> p.Shift())
}

// prefixBitsFor returns the smallest bit count whose shard count is >= n,
// clamped to [0, max]. Callers supply their own cap: the builder caps at
// min(10, 2k), the query index at min(22, 2k), the distributed splitter
// at 2k.
func prefixBitsFor(n int, max uint) uint {
	var bits uint
	for n > 1<<bits && bits < max {
		bits++
	}
	return bits
}

// NeighborShards appends to dst the shards that can own a kmer within
// Hamming distance d of km, deduplicated and in ascending order. It is
// exact: a shard is included iff some kmer at distance <= d lands there.
//
// Only substitutions in the first ceil(Bits/2) bases can change the
// shard — base i occupies bits [2(K-1-i), 2(K-i)) from the bottom, so a
// base with 2i >= Bits lies entirely below the shard prefix — which
// bounds the fan-out of a d-neighborhood query at C(nb,d)*3^d shards
// for nb prefix bases, independent of K.
func (p PrefixPartition) NeighborShards(km seq.Kmer, d int, dst []int) []int {
	nb := int((p.Bits + 1) / 2) // bases overlapping the shard prefix
	if nb > p.K {
		nb = p.K
	}
	seen := map[int]bool{p.ShardOf(km): true}
	var walk func(km seq.Kmer, from, left int)
	walk = func(cur seq.Kmer, from, left int) {
		if left == 0 {
			return
		}
		for i := from; i < nb; i++ {
			orig := cur.At(i, p.K)
			for b := seq.Base(0); b < 4; b++ {
				if b == orig {
					continue
				}
				mut := cur.WithBase(i, p.K, b)
				seen[p.ShardOf(mut)] = true
				walk(mut, i+1, left-1)
			}
		}
	}
	walk(km, 0, d)
	start := len(dst)
	for s := range seen {
		dst = append(dst, s)
	}
	sub := dst[start:]
	for i := 1; i < len(sub); i++ {
		for j := i; j > 0 && sub[j] < sub[j-1]; j-- {
			sub[j], sub[j-1] = sub[j-1], sub[j]
		}
	}
	return dst
}
