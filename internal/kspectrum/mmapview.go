package kspectrum

import (
	"unsafe"

	"repro/internal/seq"
)

// mapColumns reinterprets the column region of a mapped KSPC file as the
// in-memory kmer and count slices, without copying. The columns start at
// offsets storeHeaderLen and storeHeaderLen+8*count — 8- and 4-byte
// aligned within a page-aligned mapping — so on the little-endian
// platforms this file format is built for, the fixed-width LE columns ARE
// the in-memory representation. data must hold at least
// storeHeaderLen+12*count bytes and count must be positive; the caller
// (openMappedData) has already validated the geometry.
//
// This is the only unsafe code outside the mmap syscall wrappers, and it
// lives in an mmap*.go file so the unsafescope analyzer can fence it in.
func mapColumns(data []byte, count int) ([]seq.Kmer, []uint32) {
	kmers := unsafe.Slice((*seq.Kmer)(unsafe.Pointer(&data[storeHeaderLen])), count)
	counts := unsafe.Slice((*uint32)(unsafe.Pointer(&data[storeHeaderLen+8*count])), count)
	return kmers, counts
}
