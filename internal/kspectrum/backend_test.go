package kspectrum

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/seq"
)

// TestLocalBackendIdentity: the Local adapter must answer exactly as the
// spectrum it wraps, for both a built and a mapped spectrum.
func TestLocalBackendIdentity(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	mapped, err := OpenMapped(writeStoreFile(t, encodeSpectrum(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for _, tc := range []struct {
		name string
		spec *Spectrum
	}{{"inmem", s}, {"mapped", mapped}} {
		t.Run(tc.name, func(t *testing.T) {
			b := Local(tc.spec)
			if b.K() != s.K || b.Len() != s.Size() {
				t.Fatalf("K/Len = %d/%d want %d/%d", b.K(), b.Len(), s.K, s.Size())
			}
			if Unwrap(b) != tc.spec {
				t.Fatal("Unwrap lost the spectrum")
			}
			for _, km := range identityProbes(s)[:min(4096, len(identityProbes(s)))] {
				i, err := b.Index(km)
				if err != nil || i != tc.spec.Index(km) {
					t.Fatalf("Index(%#x) = %d,%v want %d,nil", uint64(km), i, err, tc.spec.Index(km))
				}
				c, err := b.Count(km)
				if err != nil || c != tc.spec.Count(km) {
					t.Fatalf("Count(%#x) mismatch", uint64(km))
				}
				ok, err := b.Contains(km)
				if err != nil || ok != tc.spec.Contains(km) {
					t.Fatalf("Contains(%#x) mismatch", uint64(km))
				}
			}
			kms := s.Kmers[:min(64, len(s.Kmers))]
			counts := make([]uint32, len(kms))
			if err := b.CountMany(kms, counts); err != nil {
				t.Fatal(err)
			}
			for i, km := range kms {
				if counts[i] != tc.spec.Count(km) {
					t.Fatalf("CountMany[%d] = %d want %d", i, counts[i], tc.spec.Count(km))
				}
			}
			if err := b.Err(); err != nil {
				t.Fatalf("Err on a healthy backend: %v", err)
			}
		})
	}
}

// TestLocalNeighborsMatchesOracle pins the NeighborSource contract on
// the local implementation: ascending unique kmers, equal to the
// brute-force oracle, with d == 0 degenerating to membership.
func TestLocalNeighborsMatchesOracle(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	ni, err := NewNeighborIndex(s, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := LocalNeighbors(s, ni)
	for _, km := range s.Kmers[:64] {
		for _, probe := range []seq.Kmer{km, km ^ 2} {
			got, err := src.Neighborhood(probe, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			var want []seq.Kmer
			for _, i := range BruteForceNeighbors(s, probe, 1) {
				want = append(want, s.Kmers[i])
			}
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("Neighborhood(%#x, 1) = %v want %v", uint64(probe), got, want)
			}
			m0, err := src.Neighborhood(probe, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if s.Contains(probe) != (len(m0) == 1) {
				t.Fatalf("d=0 membership mismatch for %#x", uint64(probe))
			}
		}
	}
}

// TestLocalNeighborsHonorsRequestedRadius: a d=1 query against a D=2
// index must return exactly the d=1 neighborhood, not the index's full
// D-neighborhood. The distributed path answers the requested radius
// exactly (each node builds a per-d index), so the seam's
// local/remote byte-identity — in particular the corrector's [D3a]
// shifted retry, which queries d=1 while running with p.D >= 2 —
// depends on the local source filtering.
func TestLocalNeighborsHonorsRequestedRadius(t *testing.T) {
	s := storeTestSpectrum(t, 12, 200, true)
	ni, err := NewNeighborIndex(s, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	src := LocalNeighbors(s, ni)
	for _, km := range s.Kmers[:64] {
		for _, probe := range []seq.Kmer{km, km ^ 2, km ^ (3 << 8)} {
			for d := 1; d <= 2; d++ {
				got, err := src.Neighborhood(probe, d, nil)
				if err != nil {
					t.Fatal(err)
				}
				var want []seq.Kmer
				for _, i := range BruteForceNeighbors(s, probe, d) {
					want = append(want, s.Kmers[i])
				}
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("Neighborhood(%#x, %d) = %v want %v", uint64(probe), d, got, want)
				}
			}
		}
	}
	// A radius the index cannot answer is an error, never a silent
	// partial neighborhood.
	if _, err := src.Neighborhood(s.Kmers[0], 3, nil); err == nil {
		t.Fatal("Neighborhood(d=3) on a D=2 index answered without error")
	}
}

// TestSplitShardsRoundTrip: the shards must concatenate back to the
// source byte-for-byte, each shard must be a valid standalone store, and
// every kmer must live in the shard the partition routes it to.
func TestSplitShardsRoundTrip(t *testing.T) {
	s := storeTestSpectrum(t, 12, 300, true)
	for _, n := range []int{1, 2, 3, 4, 8} {
		part, shards, err := SplitShards(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != part.Shards() {
			t.Fatalf("n=%d: %d shards, partition says %d", n, len(shards), part.Shards())
		}
		if part.Shards() < n {
			t.Fatalf("n=%d rounded down to %d", n, part.Shards())
		}
		var kmers []seq.Kmer
		var counts []uint32
		for i, sh := range shards {
			for _, km := range sh.Kmers {
				if part.ShardOf(km) != i {
					t.Fatalf("kmer %#x filed in shard %d, owner %d", uint64(km), i, part.ShardOf(km))
				}
			}
			// Each shard must persist and reload as a standalone store.
			path := filepath.Join(t.TempDir(), ShardFileName("spec", i, part.Shards()))
			if err := WriteSpectrumFile(path, sh); err != nil {
				t.Fatalf("shard %d does not persist: %v", i, err)
			}
			back, err := ReadSpectrumFile(path)
			if err != nil {
				t.Fatalf("shard %d does not reload: %v", i, err)
			}
			if back.Size() != sh.Size() || back.K != s.K || back.BothStrands != s.BothStrands {
				t.Fatalf("shard %d round-trip metadata mismatch", i)
			}
			kmers = append(kmers, sh.Kmers...)
			counts = append(counts, sh.Counts...)
		}
		if !reflect.DeepEqual(kmers, s.Kmers) || !reflect.DeepEqual(counts, s.Counts) {
			t.Fatalf("n=%d: concatenated shards differ from source", n)
		}
	}
}

// TestSplitShardsEmptyAndMapped: empty shards exist as valid files, and
// a mapped source is verified before splitting.
func TestSplitShardsEmptyAndMapped(t *testing.T) {
	s := storeTestSpectrum(t, 12, 10, false) // sparse: some of 8 shards empty
	_, shards, err := SplitShards(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	var empty int
	for _, sh := range shards {
		if sh.Size() == 0 {
			empty++
			var buf bytes.Buffer
			if err := WriteSpectrum(&buf, sh); err != nil {
				t.Fatalf("empty shard does not encode: %v", err)
			}
		}
	}

	valid := encodeSpectrum(t, s)
	mapped, err := OpenMapped(writeStoreFile(t, valid))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	_, mshards, err := SplitShards(mapped, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, sh := range mshards {
		total += sh.Size()
	}
	if total != s.Size() {
		t.Fatalf("mapped split lost kmers: %d want %d", total, s.Size())
	}

	if MmapSupported {
		// A corrupt mapped source must be rejected at split time.
		bad := append([]byte(nil), valid...)
		bad[len(bad)-1] ^= 0x01
		corrupt, err := OpenMapped(writeStoreFile(t, bad))
		if err == nil {
			defer corrupt.Close()
			if _, _, err := SplitShards(corrupt, 4); err == nil {
				t.Fatal("SplitShards accepted a corrupt mapped source")
			}
		}
	}
}
