package kspectrum

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/seq"
)

// NeighborIndex retrieves the d-neighborhood N^d of any kmer within the
// spectrum: all spectrum kmers at Hamming distance at most d. It implements
// the replicated masked-sort strategy of §2.3: the k positions are divided
// into c chunks; for every choice of d chunks the spectrum is sorted with
// those chunks masked out. Two kmers within Hamming distance d agree on at
// least c-d chunks, so they collide under at least one of the C(c,d) masks,
// making retrieval exact.
type NeighborIndex struct {
	spec     *Spectrum
	D        int
	C        int
	masks    []seq.Kmer // bitmask of the 2-bit positions zeroed per replica
	replicas [][]int32  // spectrum indices sorted by masked kmer value
	// lazy, when non-nil, defers each replica's sort to its first use
	// (NewNeighborIndexLazy): replicas[r] is then written exactly once
	// under lazy[r] and nil until the spectrum passes Verify.
	lazy []sync.Once
}

// NewNeighborIndex builds the index eagerly. c must satisfy d < c <= k;
// larger c costs more replicas (C(c,d)) but each replica bucket is more
// selective. Building sorts the full spectrum C(c,d) times — a full scan
// — so a memory-mapped spectrum is verified (whole-file CRC) first.
func NewNeighborIndex(spec *Spectrum, d, c int) (*NeighborIndex, error) {
	ni, err := newNeighborIndex(spec, d, c)
	if err != nil {
		return nil, err
	}
	if err := spec.Verify(); err != nil {
		return nil, err
	}
	for r := range ni.masks {
		ni.replicas[r] = ni.buildReplica(r)
	}
	return ni, nil
}

// NewNeighborIndexLazy validates the parameters eagerly but defers each
// replica's sorted permutation to its first Neighbors call, so a service
// over a freshly-mapped spectrum starts serving without paying C(c,d)
// full-spectrum sorts up front. The first materialization verifies the
// spectrum; if verification fails, the failure is sticky on the spectrum
// (Spectrum.Err) and Neighbors answers empty rather than serving results
// computed from corrupt bytes. Materialization is safe for concurrent
// use.
func NewNeighborIndexLazy(spec *Spectrum, d, c int) (*NeighborIndex, error) {
	ni, err := newNeighborIndex(spec, d, c)
	if err != nil {
		return nil, err
	}
	ni.lazy = make([]sync.Once, len(ni.masks))
	return ni, nil
}

// newNeighborIndex checks parameters and computes the replica masks —
// the cheap, size-independent part shared by both construction modes.
func newNeighborIndex(spec *Spectrum, d, c int) (*NeighborIndex, error) {
	k := spec.K
	if d < 0 {
		return nil, fmt.Errorf("kspectrum: negative d")
	}
	if c <= d || c > k {
		return nil, fmt.Errorf("kspectrum: need d < c <= k, got d=%d c=%d k=%d", d, c, k)
	}
	ni := &NeighborIndex{spec: spec, D: d, C: c}
	chunks := chunkRanges(k, c)
	for _, combo := range combinations(c, d) {
		var mask seq.Kmer
		for _, ci := range combo {
			for pos := chunks[ci][0]; pos < chunks[ci][1]; pos++ {
				shift := uint(2 * (k - 1 - pos))
				mask |= 3 << shift
			}
		}
		ni.masks = append(ni.masks, mask)
	}
	ni.replicas = make([][]int32, len(ni.masks))
	return ni, nil
}

// buildReplica sorts the spectrum's index permutation under replica r's
// mask.
func (ni *NeighborIndex) buildReplica(r int) []int32 {
	spec, mask := ni.spec, ni.masks[r]
	idx := make([]int32, len(spec.Kmers))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		return spec.Kmers[idx[a]]&^mask < spec.Kmers[idx[b]]&^mask
	})
	return idx
}

// replica returns replica r, materializing it on first use in lazy mode.
// It is nil when the backing spectrum failed verification.
func (ni *NeighborIndex) replica(r int) []int32 {
	if ni.lazy == nil {
		return ni.replicas[r]
	}
	ni.lazy[r].Do(func() {
		// The sort reads every kmer — a full scan — so the deferred
		// whole-file check runs first. sync.Once publishes the write to
		// every later caller.
		if ni.spec.Verify() != nil {
			return
		}
		ni.replicas[r] = ni.buildReplica(r)
	})
	return ni.replicas[r]
}

// Replicas reports how many sorted copies the index stores (C(c,d)),
// the paper's memory knob.
func (ni *NeighborIndex) Replicas() int { return len(ni.replicas) }

// Neighbors appends to dst the spectrum indices of all kmers within Hamming
// distance ni.D of km (including km itself when present) and returns the
// extended slice. Results are deduplicated and unordered. Passing a reused
// dst makes the call allocation-free — the correction inner loop depends
// on that.
//
//repro:noalloc
func (ni *NeighborIndex) Neighbors(km seq.Kmer, dst []int32) []int32 {
	k := ni.spec.K
	start := len(dst)
	for r, mask := range ni.masks {
		key := km &^ mask
		idx := ni.replica(r)
		kmers := ni.spec.Kmers
		// The closure captures only stack values; BenchmarkNeighbors pins
		// this call at zero allocations.
		lo := sort.Search(len(idx), func(i int) bool { return kmers[idx[i]]&^mask >= key }) //repro:alloc-ok
		for i := lo; i < len(idx) && kmers[idx[i]]&^mask == key; i++ {
			cand := idx[i]
			if seq.HammingKmer(km, kmers[cand], k) <= ni.D {
				dst = append(dst, cand)
			}
		}
	}
	// Deduplicate across replicas. slices.Sort, unlike sort.Slice, keeps
	// the slice header off the heap.
	found := dst[start:]
	slices.Sort(found)
	out := dst[:start]
	for i, v := range found {
		if i == 0 || v != found[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// NeighborKmers is Neighbors by value: it appends the kmers (not the
// spectrum indices) of km's d-neighborhood to dst, deduplicated and in
// ascending kmer order. Because the spectrum is sorted and unique,
// ascending kmer order and ascending index order are the same
// enumeration — the property the distributed path relies on to make a
// merged multi-shard neighborhood byte-identical to a local one.
func (ni *NeighborIndex) NeighborKmers(km seq.Kmer, dst []seq.Kmer) []seq.Kmer {
	k := ni.spec.K
	start := len(dst)
	for r, mask := range ni.masks {
		key := km &^ mask
		idx := ni.replica(r)
		kmers := ni.spec.Kmers
		lo := sort.Search(len(idx), func(i int) bool { return kmers[idx[i]]&^mask >= key })
		for i := lo; i < len(idx) && kmers[idx[i]]&^mask == key; i++ {
			cand := kmers[idx[i]]
			if seq.HammingKmer(km, cand, k) <= ni.D {
				dst = append(dst, cand)
			}
		}
	}
	found := dst[start:]
	slices.Sort(found)
	out := dst[:start]
	for i, v := range found {
		if i == 0 || v != found[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// BruteForceNeighbors enumerates the complete d-neighborhood by probing
// every kmer within Hamming distance d of km against the spectrum — the
// paper's alternative O(C(k,d)·4^d·log|R^k|) method, kept as the oracle for
// correctness tests and as the ablation baseline.
func BruteForceNeighbors(spec *Spectrum, km seq.Kmer, d int) []int32 {
	var out []int32
	var walk func(cur seq.Kmer, pos, left int)
	walk = func(cur seq.Kmer, pos, left int) {
		if left == 0 || pos == spec.K {
			if i := spec.Index(cur); i >= 0 {
				out = append(out, int32(i))
			}
			return
		}
		walk(cur, pos+1, left) // no change at pos; try later positions
		orig := cur.At(pos, spec.K)
		for b := seq.Base(0); b < 4; b++ {
			if b == orig {
				continue
			}
			walk(cur.WithBase(pos, spec.K, b), pos+1, left-1)
		}
	}
	walk(km, 0, d)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	// walk visits each kmer exactly once for distance ≤ d? No: the
	// "no change" branch combined with later substitutions enumerates each
	// mutation set exactly once, but distance-<d kmers are reached via
	// multiple left values; dedupe defensively.
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func chunkRanges(k, c int) [][2]int {
	out := make([][2]int, c)
	for i := 0; i < c; i++ {
		out[i] = [2]int{i * k / c, (i + 1) * k / c}
	}
	return out
}

// combinations enumerates all d-subsets of {0..n-1}.
func combinations(n, d int) [][]int {
	if d == 0 {
		return [][]int{{}}
	}
	var out [][]int
	combo := make([]int, d)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == d {
			out = append(out, append([]int(nil), combo...))
			return
		}
		for i := start; i <= n-(d-idx); i++ {
			combo[idx] = i
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
	return out
}
