package kspectrum

import (
	"testing"

	"repro/internal/seq"
)

func TestCountTilesGeometry(t *testing.T) {
	if _, err := CountTiles(nil, 4, 4, 0); err == nil {
		t.Error("expected error for overlap >= k")
	}
	if _, err := CountTiles(nil, 20, 0, 0); err == nil {
		t.Error("expected error for tile length > 32")
	}
	ts, err := CountTiles(nil, 6, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts.TileLen != 10 {
		t.Errorf("TileLen %d want 10", ts.TileLen)
	}
}

func TestCountTilesBothStrands(t *testing.T) {
	reads := mkReads("ACGTACGT")
	ts, err := CountTiles(reads, 3, 0, 0) // tile length 6
	if err != nil {
		t.Fatal(err)
	}
	// Forward windows: ACGTAC, CGTACG, GTACGT. RC read = ACGTACGT (palindrome),
	// so every tile counts twice.
	if got := ts.Get(seq.MustPack("ACGTAC")).Oc; got != 2 {
		t.Errorf("Oc = %d want 2", got)
	}
}

func TestCountTilesQuality(t *testing.T) {
	r := seq.Read{
		ID:   "q",
		Seq:  []byte("ACGTACG"),
		Qual: []byte{40, 40, 40, 40, 40, 40, 5},
	}
	ts, err := CountTiles([]seq.Read{r}, 3, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	first := ts.Get(seq.MustPack("ACGTAC"))
	if first.Oc != 1 || first.Og != 1 {
		t.Errorf("high-quality tile counts = %+v", first)
	}
	// CGTACG is its own reverse complement, so it occurs once on each
	// strand; both occurrences overlap the q=5 base, so Og stays 0.
	second := ts.Get(seq.MustPack("CGTACG"))
	if second.Oc != 2 || second.Og != 0 {
		t.Errorf("low-quality tile counts = %+v (last base q=5)", second)
	}
}

func TestCountTilesNilQualityCountsAsHigh(t *testing.T) {
	ts, _ := CountTiles(mkReads("ACGTAC"), 3, 0, 40)
	tc := ts.Get(seq.MustPack("ACGTAC"))
	if tc.Og != tc.Oc {
		t.Errorf("nil quality should give Og=Oc, got %+v", tc)
	}
}

func TestPackSplitTile(t *testing.T) {
	ts, _ := CountTiles(nil, 4, 1, 0)
	a := seq.MustPack("ACGT")
	b := seq.MustPack("TGCA") // overlap 1: tile = ACGT + GCA = ACGTGCA
	tile := ts.PackTile(a, b)
	if got := string(tile.Unpack(ts.TileLen)); got != "ACGTGCA" {
		t.Errorf("PackTile = %q want ACGTGCA", got)
	}
	ga, gb := ts.SplitTile(tile)
	if ga != a {
		t.Errorf("SplitTile a = %v want %v", ga, a)
	}
	if got := string(gb.Unpack(4)); got != "TGCA" {
		t.Errorf("SplitTile b = %q want TGCA", got)
	}
}

func TestPackTileZeroOverlap(t *testing.T) {
	ts, _ := CountTiles(nil, 3, 0, 0)
	tile := ts.PackTile(seq.MustPack("ACG"), seq.MustPack("TTT"))
	if got := string(tile.Unpack(6)); got != "ACGTTT" {
		t.Errorf("PackTile = %q", got)
	}
	a, b := ts.SplitTile(tile)
	if string(a.Unpack(3)) != "ACG" || string(b.Unpack(3)) != "TTT" {
		t.Error("SplitTile round trip failed")
	}
}

func TestOgQuantile(t *testing.T) {
	reads := mkReads("AAAAAA", "AAAAAA", "AAAAAA", "CCCCCC")
	ts, _ := CountTiles(reads, 3, 0, 0)
	// Tiles: AAAAAA (Og 3 fwd + 3 rc? rc of AAAAAA is TTTTTT) ->
	// AAAAAA:3, TTTTTT:3, CCCCCC:1, GGGGGG:1.
	if ts.Size() != 4 {
		t.Fatalf("tile count %d want 4", ts.Size())
	}
	if q := ts.OgQuantile(0.4); q != 1 {
		t.Errorf("OgQuantile(0.4) = %d want 1", q)
	}
	if q := ts.OgQuantile(0.99); q != 3 {
		t.Errorf("OgQuantile(0.99) = %d want 3", q)
	}
}

func TestQualityQuantile(t *testing.T) {
	reads := []seq.Read{
		{Seq: []byte("AAAA"), Qual: []byte{10, 20, 30, 40}},
	}
	if q := QualityQuantile(reads, 0.5); q != 20 {
		t.Errorf("QualityQuantile(0.5) = %d want 20", q)
	}
	if q := QualityQuantile(nil, 0.5); q != 0 {
		t.Errorf("empty QualityQuantile = %d want 0", q)
	}
}
