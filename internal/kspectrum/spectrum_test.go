package kspectrum

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

func mkReads(ss ...string) []seq.Read {
	out := make([]seq.Read, len(ss))
	for i, s := range ss {
		out[i] = seq.Read{ID: "r", Seq: []byte(s)}
	}
	return out
}

func TestBuildSpectrumSingleStrand(t *testing.T) {
	spec, err := Build(mkReads("ACGTA"), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	// Windows: ACG, CGT, GTA.
	if spec.Size() != 3 {
		t.Fatalf("size %d want 3", spec.Size())
	}
	for _, s := range []string{"ACG", "CGT", "GTA"} {
		if spec.Count(seq.MustPack(s)) != 1 {
			t.Errorf("missing kmer %s", s)
		}
	}
	if spec.Contains(seq.MustPack("TTT")) {
		t.Error("phantom kmer")
	}
}

func TestBuildSpectrumBothStrands(t *testing.T) {
	spec, err := Build(mkReads("ACGTA"), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// Forward ACG,CGT,GTA plus reverse complements CGT,ACG,TAC:
	// distinct = {ACG:2, CGT:2, GTA:1, TAC:1}.
	if spec.Size() != 4 {
		t.Fatalf("size %d want 4", spec.Size())
	}
	if spec.Count(seq.MustPack("ACG")) != 2 || spec.Count(seq.MustPack("TAC")) != 1 {
		t.Error("strand counting wrong")
	}
}

func TestBuildSkipsAmbiguous(t *testing.T) {
	spec, err := Build(mkReads("ACNGT"), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Windows AC, CN, NG, GT -> only AC and GT survive.
	if spec.Size() != 2 {
		t.Fatalf("size %d want 2", spec.Size())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 0, false); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Build(nil, 33, false); err == nil {
		t.Error("expected error for k>32")
	}
}

func TestCountHistogram(t *testing.T) {
	spec, _ := Build(mkReads("AAAA", "AAAA"), 4, false)
	h := spec.CountHistogram(5)
	if h[2] != 1 {
		t.Errorf("histogram %v: want one kmer with count 2", h)
	}
}

func TestNeighborIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	genome, _ := simulate.RandomGenome(4000, simulate.UniformProfile, rng)
	sim, _ := simulate.SimulateReads(genome, simulate.ReadSimConfig{N: 600, Model: simulate.UniformModel(36, 0.02), BothStrands: true}, rng)
	for _, d := range []int{1, 2} {
		spec, err := Build(simulate.Reads(sim), 11, true)
		if err != nil {
			t.Fatal(err)
		}
		ni, err := NewNeighborIndex(spec, d, min(11, d+4))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			km := spec.Kmers[rng.Intn(spec.Size())]
			got := ni.Neighbors(km, nil)
			want := BruteForceNeighbors(spec, km, d)
			if len(got) != len(want) {
				t.Fatalf("d=%d kmer %v: index found %d neighbors, brute force %d", d, km, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("d=%d neighbor mismatch at %d: %v vs %v", d, i, got, want)
				}
			}
		}
	}
}

func TestNeighborIndexIncludesSelf(t *testing.T) {
	spec, _ := Build(mkReads("ACGTACGTACGT"), 6, false)
	ni, err := NewNeighborIndex(spec, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	km := seq.MustPack("ACGTAC")
	ns := ni.Neighbors(km, nil)
	self := spec.Index(km)
	found := false
	for _, n := range ns {
		if n == int32(self) {
			found = true
		}
	}
	if !found {
		t.Error("self not in own neighborhood")
	}
}

func TestNeighborIndexValidation(t *testing.T) {
	spec, _ := Build(mkReads("ACGTACGT"), 4, false)
	if _, err := NewNeighborIndex(spec, 2, 2); err == nil {
		t.Error("expected error for c <= d")
	}
	if _, err := NewNeighborIndex(spec, 1, 5); err == nil {
		t.Error("expected error for c > k")
	}
	if _, err := NewNeighborIndex(spec, -1, 2); err == nil {
		t.Error("expected error for negative d")
	}
}

func TestNeighborIndexReplicaCount(t *testing.T) {
	spec, _ := Build(mkReads("ACGTACGTACGTACG"), 12, false)
	ni, err := NewNeighborIndex(spec, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ni.Replicas() != 15 { // C(6,2)
		t.Errorf("replicas %d want 15", ni.Replicas())
	}
}

func TestCombinations(t *testing.T) {
	cs := combinations(4, 2)
	if len(cs) != 6 {
		t.Fatalf("C(4,2) = %d want 6", len(cs))
	}
	seen := map[[2]int]bool{}
	for _, c := range cs {
		seen[[2]int{c[0], c[1]}] = true
	}
	if !seen[[2]int{0, 3}] || !seen[[2]int{1, 2}] {
		t.Errorf("missing combinations: %v", cs)
	}
}
