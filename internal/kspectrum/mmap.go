//go:build (darwin || dragonfly || freebsd || linux || netbsd || openbsd) && (386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64) && !repro_nommap

package kspectrum

import (
	"os"
	"syscall"
)

// The mmap shim behind OpenMapped: real memory mappings on little-endian
// unix platforms, where the store's fixed-width LE columns can be served
// in place by reinterpreting the mapping (mapped.go). Big-endian or
// non-unix builds — and any build with the repro_nommap tag, which CI
// forces once to keep the portability path green — compile
// mmap_fallback.go instead and OpenMapped degrades to the copying reader.

// mmapSupported reports that this build maps files instead of copying
// them.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so N processes
// serving the same spectrum share one copy of page cache.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
