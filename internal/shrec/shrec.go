// Package shrec implements the SHREC error corrector (Schröder et al. 2009)
// as described in §1.2 of the dissertation, serving as the comparison
// baseline of Tables 2.3 and 3.4. SHREC builds a generalized suffix trie
// over both strands of the read set; an internal node u whose occurrence
// count falls below the statistically expected count (e - alpha*sigma under
// a Bernoulli sampling model of a random genome) is deemed erroneous in its
// last base, and is corrected to a sibling v that passes the test and whose
// subtree structurally contains u's subtree. The procedure iterates a fixed
// number of rounds to catch multiple errors per read.
//
// The deliberately trie-heavy design reproduces SHREC's published resource
// profile relative to Reptile: substantially higher memory and run time.
package shrec

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/seq"
)

// Config holds SHREC's tuning parameters.
type Config struct {
	// FromLevel..ToLevel is the range of trie depths analyzed; the level
	// corresponds to the substring length ending at the corrected base.
	FromLevel int
	ToLevel   int
	// ContextDepth is how far below the analyzed level subtrees are built
	// and compared when deciding whether u can merge into v.
	ContextDepth int
	// Alpha is the deviation multiplier in the frequency test; counts
	// below e - Alpha*sigma are suspected errors.
	Alpha float64
	// GenomeLen is the (estimated) genome length used by the expected
	// count model; 0 lets the corrector estimate it from distinct kmers.
	GenomeLen int
	// Iterations repeats the whole build-and-correct cycle.
	Iterations int
	// Workers > 1 shards trie construction by first base (the top two
	// bits of the path) across up to four goroutines, each owning
	// disjoint root branches, so the build is lock-free and its result
	// independent of the worker count. The zero value (and 1) keeps the
	// published serial build and its memory profile — parallelism is
	// opt-in for this deliberately resource-faithful baseline.
	Workers int
}

// DefaultConfig mirrors the published defaults: levels around log4 of the
// genome length, alpha ~= 5 for conservative detection, 3 iterations.
func DefaultConfig(genomeLen int) Config {
	lvl := 12
	if genomeLen > 0 {
		lvl = int(math.Ceil(math.Log(float64(genomeLen))/math.Log(4))) + 2
	}
	return Config{
		FromLevel:    lvl,
		ToLevel:      lvl + 2,
		ContextDepth: 4,
		Alpha:        5,
		GenomeLen:    genomeLen,
		Iterations:   3,
	}
}

func (c Config) validate() error {
	if c.FromLevel < 2 || c.ToLevel < c.FromLevel {
		return fmt.Errorf("shrec: invalid level range [%d,%d]", c.FromLevel, c.ToLevel)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("shrec: alpha must be positive")
	}
	if c.Iterations < 1 {
		return fmt.Errorf("shrec: need at least one iteration")
	}
	return nil
}

// Stats reports the corrector's work.
type Stats struct {
	Corrections  int
	NodesBuilt   int
	PeakNodes    int
	DistinctKmer int
}

// occur records one suffix occurrence passing through a node: the read, the
// position of the node's last base within the oriented read, and the strand.
type occur struct {
	read int32
	pos  int32 // position of the corrected (last) base in read coordinates
	rc   bool
}

type node struct {
	children [4]*node
	count    int32
	occ      []occur
}

// arenaBlockNodes sizes the slabs a nodeArena hands trie nodes from.
const arenaBlockNodes = 4096

// nodeArena allocates trie nodes from slabs instead of one heap object
// per node: the build creates millions of nodes (SHREC's published
// resource profile), and slab allocation removes the per-node allocator
// overhead and GC scan pressure from that hot path. Arenas are
// per-goroutine — each parallel build shard owns one — so handing out
// nodes needs no synchronization. Nodes are only reclaimed when the whole
// trie is dropped, which matches the build-then-discard lifecycle.
type nodeArena struct {
	free []node
}

func (a *nodeArena) new() *node {
	if len(a.free) == 0 {
		a.free = make([]node, arenaBlockNodes)
	}
	nd := &a.free[0]
	a.free = a.free[1:]
	return nd
}

// Correct runs SHREC over the read set and returns corrected copies.
func Correct(reads []seq.Read, cfg Config) ([]seq.Read, Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, Stats{}, err
	}
	out := make([]seq.Read, len(reads))
	for i, r := range reads {
		out[i] = r.Clone()
	}
	var stats Stats
	for iter := 0; iter < cfg.Iterations; iter++ {
		n := correctOnce(out, cfg, &stats)
		stats.Corrections += n
		if n == 0 {
			break
		}
	}
	return out, stats, nil
}

func correctOnce(reads []seq.Read, cfg Config, stats *Stats) int {
	maxDepth := cfg.ToLevel + cfg.ContextDepth
	root := &node{}
	// insert walks every suffix of the oriented string whose first base the
	// worker owns (ownedMask bit set), so disjoint ownership keeps the four
	// root branches free of cross-goroutine writes; new nodes come from the
	// caller's arena. It returns the number of trie nodes created.
	insert := func(arena *nodeArena, ownedMask uint8, bases []byte, readID int32, rc bool, readLen int) int {
		nodes := 0
		for start := 0; start < len(bases); start++ {
			first, ok := seq.BaseFromChar(bases[start])
			if !ok || ownedMask&(1<<first) == 0 {
				continue
			}
			cur := root
			end := min(len(bases), start+maxDepth)
			for j := start; j < end; j++ {
				b, ok := seq.BaseFromChar(bases[j])
				if !ok {
					break
				}
				child := cur.children[b]
				if child == nil {
					child = arena.new()
					cur.children[b] = child
					nodes++
				}
				child.count++
				depth := j - start + 1
				if depth >= cfg.FromLevel && depth <= cfg.ToLevel {
					// Record the occurrence in forward read coordinates of
					// the oriented string's last base.
					pos := int32(j)
					if rc {
						pos = int32(readLen - 1 - j)
					}
					child.occ = append(child.occ, occur{read: readID, pos: pos, rc: rc})
				}
				cur = child
			}
		}
		return nodes
	}
	workers := min(cfg.Workers, 4)
	nodes := 0
	if workers <= 1 {
		// Serial path: materialize each reverse complement transiently,
		// keeping the memory-sensitive corrector's historical footprint.
		mask := uint8(0b1111)
		var arena nodeArena
		for i := range reads {
			nodes += insert(&arena, mask, reads[i].Seq, int32(i), false, len(reads[i].Seq))
			nodes += insert(&arena, mask, seq.ReverseComplement(reads[i].Seq), int32(i), true, len(reads[i].Seq))
		}
	} else {
		// Reverse complements are shared across workers rather than
		// recomputed inside each shard's pass.
		rcs := make([][]byte, len(reads))
		for i := range reads {
			rcs[i] = seq.ReverseComplement(reads[i].Seq)
		}
		buildShard := func(ownedMask uint8) int {
			nodes := 0
			var arena nodeArena // per-shard, so allocation stays lock-free
			for i := range reads {
				nodes += insert(&arena, ownedMask, reads[i].Seq, int32(i), false, len(reads[i].Seq))
				nodes += insert(&arena, ownedMask, rcs[i], int32(i), true, len(reads[i].Seq))
			}
			return nodes
		}
		// Distribute the four root branches round-robin over the workers.
		masks := make([]uint8, workers)
		for b := 0; b < 4; b++ {
			masks[b%workers] |= 1 << b
		}
		perWorker := make([]int, workers)
		var wg sync.WaitGroup
		for w := range masks {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				perWorker[w] = buildShard(masks[w])
			}(w)
		}
		wg.Wait()
		for _, n := range perWorker {
			nodes += n
		}
	}
	stats.NodesBuilt += nodes
	if nodes > stats.PeakNodes {
		stats.PeakNodes = nodes
	}

	// Expected-count model: suffixes covering a fixed genome locus.
	genomeLen := cfg.GenomeLen
	if genomeLen <= 0 {
		genomeLen = estimateGenomeLen(root, cfg.FromLevel)
	}
	stats.DistinctKmer = countNodesAtLevel(root, cfg.FromLevel)

	// Bernoulli sampling model (§1.2): the trie holds one ℓ-window per
	// suffix per strand; a locus-specific string collects a 1/(2|G|) share,
	// so e = nWindows/(2|G|) is the expected ℓ-window coverage of a locus.
	thresholds := make(map[int]float64)
	for level := cfg.FromLevel; level <= cfg.ToLevel; level++ {
		var nWindows float64
		for i := range reads {
			if w := len(reads[i].Seq) - level + 1; w > 0 {
				nWindows += float64(2 * w)
			}
		}
		p := 1 / float64(2*genomeLen)
		e := nWindows * p
		sigma := math.Sqrt(nWindows * p * (1 - p))
		thr := e - cfg.Alpha*sigma
		if thr < 2 {
			thr = 2
		}
		thresholds[level] = thr
	}

	corrections := 0
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if depth+1 >= cfg.FromLevel && depth+1 <= cfg.ToLevel {
			corrections += correctSiblings(reads, n, thresholds[depth+1])
		}
		if depth+1 < cfg.ToLevel {
			for _, ch := range n.children {
				if ch != nil {
					walk(ch, depth+1)
				}
			}
		}
	}
	walk(root, 0)
	return corrections
}

// correctSiblings applies the SHREC frequency test among the children of
// parent using the precomputed level threshold.
func correctSiblings(reads []seq.Read, parent *node, threshold float64) int {
	var weak, strong []int
	for b, ch := range parent.children {
		if ch == nil {
			continue
		}
		if float64(ch.count) < threshold {
			weak = append(weak, b)
		} else {
			strong = append(strong, b)
		}
	}
	corrections := 0
	for _, wb := range weak {
		u := parent.children[wb]
		// A unique strong sibling whose subtree contains u's subtree.
		target := -1
		for _, sb := range strong {
			if subtreeContained(u, parent.children[sb]) {
				if target >= 0 {
					target = -2 // ambiguous
					break
				}
				target = sb
			}
		}
		if target < 0 {
			continue
		}
		newBase := seq.Base(target)
		for _, oc := range u.occ {
			r := &reads[oc.read]
			if oc.pos < 0 || int(oc.pos) >= len(r.Seq) {
				continue
			}
			want := newBase
			if oc.rc {
				want = newBase.Complement()
			}
			if cur, ok := seq.BaseFromChar(r.Seq[oc.pos]); ok && cur == want {
				continue
			}
			r.Seq[oc.pos] = want.Char()
			corrections++
		}
	}
	return corrections
}

// subtreeContained reports whether every path under u also exists under v —
// SHREC's "the two subtrees are identical" merge condition, relaxed to
// containment so that the higher-coverage target may have extra context.
func subtreeContained(u, v *node) bool {
	if u == nil {
		return true
	}
	if v == nil {
		return false
	}
	for b := 0; b < 4; b++ {
		if u.children[b] != nil {
			if v.children[b] == nil {
				return false
			}
			if !subtreeContained(u.children[b], v.children[b]) {
				return false
			}
		}
	}
	return true
}

func countNodesAtLevel(root *node, level int) int {
	count := 0
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if depth == level {
			count++
			return
		}
		for _, ch := range n.children {
			if ch != nil {
				walk(ch, depth+1)
			}
		}
	}
	walk(root, 0)
	return count
}

// estimateGenomeLen approximates |G| as half the number of distinct
// FromLevel-mers (both strands counted once each).
func estimateGenomeLen(root *node, level int) int {
	n := countNodesAtLevel(root, level) / 2
	if n < 1 {
		return 1
	}
	return n
}
