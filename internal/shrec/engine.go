package shrec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/seq"
)

// EngineName is SHREC's registry key.
const EngineName = "shrec"

func init() { engine.Register(shrecEngine{}) }

// extOf returns the engine-specific payload (a Config) of a run.
func extOf(r *engine.Run) *Config {
	if v, ok := r.Ext(EngineName); ok {
		return v.(*Config)
	}
	c := &Config{}
	r.SetExt(EngineName, c)
	return c
}

// WithConfig supplies a SHREC configuration; a zero FromLevel takes
// DefaultConfig(genomeLen) with the explicit Workers preserved.
func WithConfig(cfg Config) engine.Option {
	return func(r *engine.Run) { *extOf(r) = cfg }
}

// WithAlpha sets the deviation multiplier of the frequency test.
func WithAlpha(alpha float64) engine.Option {
	return func(r *engine.Run) { extOf(r).Alpha = alpha }
}

// WithIterations repeats the whole build-and-correct cycle.
func WithIterations(n int) engine.Option {
	return func(r *engine.Run) { extOf(r).Iterations = n }
}

// shrecEngine adapts SHREC to the pluggable engine contract. SHREC is the
// resource-faithful baseline: no spectrum to reuse and no out-of-core
// streaming path, so Capabilities is all zero and CorrectStream buffers.
type shrecEngine struct{}

func (shrecEngine) Name() string { return EngineName }

func (shrecEngine) Capabilities() engine.Capabilities { return engine.Capabilities{} }

// resolveConfig finalizes the configuration: defaults from the genome
// length when no explicit level range is given, and SHREC's opt-in
// parallel trie build — only an explicit positive worker request enables
// it, because the all-cores meaning of Workers <= 0 would change the
// baseline's published memory profile.
func resolveConfig(run *engine.Run) Config {
	cfg := *extOf(run)
	if cfg.FromLevel == 0 {
		// Explicitly-set knobs survive the defaults swap; everything
		// level-shaped comes from DefaultConfig.
		workers, alpha, iters := cfg.Workers, cfg.Alpha, cfg.Iterations
		cfg = DefaultConfig(run.GenomeLen)
		cfg.Workers = workers
		if alpha > 0 {
			cfg.Alpha = alpha
		}
		if iters > 0 {
			cfg.Iterations = iters
		}
	}
	if cfg.Workers == 0 && run.Workers > 0 {
		cfg.Workers = run.Workers
	}
	return cfg
}

func (shrecEngine) Correct(ctx context.Context, reads []seq.Read, run *engine.Run) ([]seq.Read, *engine.Result, error) {
	start := time.Now()
	if err := run.RejectSpectrumOptions(EngineName); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	cfg := resolveConfig(run)
	out, st, err := Correct(reads, cfg)
	if err != nil {
		return nil, nil, err
	}
	return out, &engine.Result{
		Engine:      EngineName,
		Duration:    time.Since(start),
		Corrections: st.Corrections,
		Summary: fmt.Sprintf("levels [%d,%d] alpha %.1f; %d corrections over %d iterations",
			cfg.FromLevel, cfg.ToLevel, cfg.Alpha, st.Corrections, cfg.Iterations),
	}, nil
}

// CorrectStream satisfies the canonical streaming contract by buffering:
// SHREC's generalized suffix trie needs the whole read set, so the input
// is drained (cancellation still lands at chunk boundaries), corrected in
// memory, and emitted as one chunk.
func (shrecEngine) CorrectStream(ctx context.Context, open engine.SourceOpener, sink engine.Sink, run *engine.Run) (*engine.Result, error) {
	start := time.Now()
	if err := run.RejectSpectrumOptions(EngineName); err != nil {
		return nil, err
	}
	reads, err := engine.CollectReads(ctx, open)
	if err != nil {
		return nil, err
	}
	out, res, err := shrecEngine{}.Correct(ctx, reads, run)
	if err != nil {
		return nil, err
	}
	res.Reads = len(reads)
	res.Changed = engine.CountChanged(reads, out)
	if err := sink.WriteChunk(reads, out); err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	return res, nil
}

// NewService implements engine.Servicer: SHREC needs no shared per-corpus
// state — each chunk is corrected independently from its own trie — so
// the service is stateless and any loaded spectrum is simply irrelevant
// to it.
func (shrecEngine) NewService(run *engine.Run) (engine.ChunkCorrector, error) {
	cfg := resolveConfig(run)
	return chunkService{cfg: cfg}, nil
}

// chunkService corrects each chunk with a fresh trie.
type chunkService struct{ cfg Config }

func (s chunkService) CorrectChunk(ctx context.Context, reads []seq.Read, workers int) ([]seq.Read, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	if cfg.Workers == 0 && workers > 1 {
		cfg.Workers = workers
	}
	out, _, err := Correct(reads, cfg)
	return out, err
}
