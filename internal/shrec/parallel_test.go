package shrec

import (
	"math/rand"
	"testing"

	"repro/internal/simulate"
)

// TestCorrectWorkerInvariance checks that the base-sharded parallel trie
// build leaves SHREC's output and accounting byte-identical to the serial
// build for every worker count.
func TestCorrectWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	genome, err := simulate.RandomGenome(8000, simulate.UniformProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulate.SimulateReads(genome, simulate.ReadSimConfig{
		N: 4000, Model: simulate.UniformModel(36, 0.01), BothStrands: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(sim)
	base := DefaultConfig(len(genome))
	base.Workers = 1
	want, wantStats, err := Correct(reads, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 0} {
		cfg := base
		cfg.Workers = workers
		got, gotStats, err := Correct(reads, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats %+v want %+v", workers, gotStats, wantStats)
		}
		for i := range want {
			if string(got[i].Seq) != string(want[i].Seq) {
				t.Fatalf("workers=%d: read %d differs", workers, i)
			}
		}
	}
}
