package shrec

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/simulate"
)

func simData(t *testing.T, genomeLen, nReads int, errRate float64, seed int64) ([]byte, []simulate.SimRead) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	genome, err := simulate.RandomGenome(genomeLen, simulate.MaizeProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulate.SimulateReads(genome, simulate.ReadSimConfig{
		N: nReads, Model: simulate.IlluminaModel(36, errRate, simulate.EcoliBias), BothStrands: true, QualityNoise: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return genome, sim
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{FromLevel: 1, ToLevel: 2, Alpha: 1, Iterations: 1},
		{FromLevel: 5, ToLevel: 4, Alpha: 1, Iterations: 1},
		{FromLevel: 5, ToLevel: 6, Alpha: 0, Iterations: 1},
		{FromLevel: 5, ToLevel: 6, Alpha: 1, Iterations: 0},
	}
	for i, cfg := range bad {
		if _, _, err := Correct(nil, cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDefaultConfigScalesWithGenome(t *testing.T) {
	small := DefaultConfig(10000)
	large := DefaultConfig(4640000)
	if small.FromLevel >= large.FromLevel {
		t.Errorf("levels should grow with genome: %d vs %d", small.FromLevel, large.FromLevel)
	}
}

func TestCorrectRemovesErrors(t *testing.T) {
	genome, sim := simData(t, 10000, 15000, 0.006, 1)
	cfg := DefaultConfig(len(genome))
	corrected, stats, err := Correct(simulate.Reads(sim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := eval.EvaluateCorrection(sim, corrected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shrec: %v corrections=%d nodes=%d", cs, stats.Corrections, stats.PeakNodes)
	if cs.Gain() < 0.3 {
		t.Errorf("Gain = %.3f want > 0.3", cs.Gain())
	}
	if cs.Specificity() < 0.99 {
		t.Errorf("Specificity = %.4f", cs.Specificity())
	}
	if stats.Corrections == 0 {
		t.Error("no corrections recorded")
	}
}

func TestCorrectDoesNotMutateInput(t *testing.T) {
	_, sim := simData(t, 4000, 3000, 0.01, 2)
	reads := simulate.Reads(sim)
	before := string(reads[3].Seq)
	if _, _, err := Correct(reads, DefaultConfig(4000)); err != nil {
		t.Fatal(err)
	}
	if string(reads[3].Seq) != before {
		t.Error("input reads mutated")
	}
}

func TestCorrectCleanReadsNearlyUntouched(t *testing.T) {
	// Error-free data: SHREC's statistical test may still miscorrect a
	// handful of under-sampled loci (its known FP-proneness), but the
	// damage must stay negligible.
	genome, sim := simData(t, 5000, 6000, 0.0, 3)
	_ = genome
	corrected, _, err := Correct(simulate.Reads(sim), DefaultConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := eval.EvaluateCorrection(sim, corrected)
	if cs.Specificity() < 0.9999 {
		t.Errorf("Specificity = %.5f on clean data (FP=%d)", cs.Specificity(), cs.FP)
	}
}

func TestIterationsConverge(t *testing.T) {
	_, sim := simData(t, 5000, 8000, 0.01, 4)
	cfg := DefaultConfig(5000)
	cfg.Iterations = 1
	_, s1, err := Correct(simulate.Reads(sim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Iterations = 3
	_, s3, err := Correct(simulate.Reads(sim), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Corrections < s1.Corrections {
		t.Errorf("more iterations found fewer corrections: %d vs %d", s3.Corrections, s1.Corrections)
	}
}

func TestSubtreeContained(t *testing.T) {
	u := &node{}
	v := &node{}
	u.children[0] = &node{}
	if subtreeContained(u, v) {
		t.Error("u has a path v lacks")
	}
	v.children[0] = &node{}
	if !subtreeContained(u, v) {
		t.Error("containment should hold")
	}
	if !subtreeContained(nil, v) {
		t.Error("nil u is contained in anything")
	}
	if subtreeContained(u, nil) {
		t.Error("non-nil u cannot be contained in nil")
	}
}
