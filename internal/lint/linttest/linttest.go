// Package linttest is the fixture runner for internal/lint analyzers —
// an analysistest-style harness built on the stdlib toolchain. A test
// names packages under testdata/src; each fixture file annotates the
// lines where the analyzer must report with
//
//	code // want "regexp"
//
// comments (multiple quoted regexps per comment allowed). The runner
// typechecks the fixture, runs the analyzer, and fails the test on any
// unmatched expectation or unexpected diagnostic.
//
// Imports inside fixtures resolve in two steps: a path with a directory
// under testdata/src is compiled from source (so fixtures can model
// project packages like faultinject without importing the real one),
// and anything else resolves through the gc importer fed by
// `go list -export`, i.e. the build cache — no network, no GOPATH
// layout, same export data the vettool run sees.
package linttest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// Run checks the analyzer against each named fixture package under
// testdata/src.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, testdata, a, pkg)
	}
}

func runOne(t *testing.T, testdata string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	res, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkgPath, err)
	}

	wants := collectWants(t, res.fset, res.files)
	var got []lint.Diagnostic
	pass := lint.NewPass(a, res.fset, res.files, res.pkg, res.info, func(d lint.Diagnostic) {
		got = append(got, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("fixture %s: analyzer %s: %v", pkgPath, a.Name, err)
	}

	for _, d := range got {
		pos := res.fset.Position(d.Pos)
		key := wantKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.claimed && w.re.MatchString(d.Message) {
				w.claimed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.claimed {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	claimed bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	out := make(map[wantKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, expr := range lint.ParseWants(c.Text) {
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", expr, err)
					}
					pos := fset.Position(c.Pos())
					key := wantKey{filepath.Base(pos.Filename), pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// loader typechecks fixture packages, resolving local imports from
// srcRoot and everything else through the shared build-cache importer.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	local   map[string]*types.Package
}

type loadResult struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(srcRoot string) *loader {
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		local:   make(map[string]*types.Package),
	}
	ld.std = importer.ForCompiler(ld.fset, "gc", exportLookup)
	return ld
}

func (ld *loader) load(pkgPath string) (*loadResult, error) {
	dir := filepath.Join(ld.srcRoot, pkgPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := types.Config{Importer: (*fixtureImporter)(ld)}
	pkg, err := cfg.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &loadResult{fset: ld.fset, files: files, pkg: pkg, info: info}, nil
}

// fixtureImporter adapts loader to types.Importer for the local-first,
// build-cache-second import policy.
type fixtureImporter loader

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(imp)
	if pkg, ok := ld.local[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(ld.srcRoot, path)); err == nil && st.IsDir() {
		res, err := ld.load(path)
		if err != nil {
			return nil, fmt.Errorf("fixture import %q: %w", path, err)
		}
		res.pkg.MarkComplete()
		ld.local[path] = res.pkg
		return res.pkg, nil
	}
	return ld.std.Import(path)
}

var (
	exportMu    sync.Mutex
	exportFiles = make(map[string]string)
)

// exportLookup feeds the gc importer with export data from the build
// cache: `go list -export` compiles (or reuses) the package and reports
// the .a/export file path. Results memoize per-process.
func exportLookup(path string) (io.ReadCloser, error) {
	exportMu.Lock()
	file, ok := exportFiles[path]
	exportMu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list -export %s: %v: %s", path, err, errb.String())
		}
		file = strings.TrimSpace(out.String())
		if file == "" {
			return nil, fmt.Errorf("go list -export %s: no export data", path)
		}
		exportMu.Lock()
		exportFiles[path] = file
		exportMu.Unlock()
	}
	return os.Open(file)
}
