// Package noalloc enforces the repo's zero-allocation contract: a
// function whose doc comment carries //repro:noalloc must not contain
// the heap-escaping constructs the PR 3 hot-path work eliminated. The
// runtime AllocsPerRun pins stay as the ground-truth backstop, but this
// analyzer turns the contract into a compile gate — a contributor who
// adds a fmt call or a stray append to the correction inner loop gets a
// vet failure, not a benchmark regression three PRs later.
//
// Flagged constructs:
//   - calls into package fmt (formatting always allocates);
//   - string concatenation (+ and +=);
//   - function literals (closures capture and may escape);
//   - append calls not in the self-growing `x = append(x, ...)` form
//     (growing a caller-owned buffer is the designed idiom; appending
//     into a fresh variable is a hidden allocation);
//   - interface boxing: passing or returning a concrete non-pointer
//     value where an interface is expected (pointers, maps, chans and
//     funcs box without allocating and are exempt).
//
// `make` is deliberately not flagged: the Into-style primitives grow
// their destination when capacity demands it, and the cap-check-guarded
// make is the documented slow path. A deliberate allocation on a line
// is whitelisted with //repro:alloc-ok — e.g. a closure that a
// known-inlined callee (sort.Search) keeps on the stack.
package noalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer is the //repro:noalloc contract checker.
var Analyzer = &lint.Analyzer{
	Name: "noalloc",
	Doc:  "reject heap-escaping constructs in //repro:noalloc functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !lint.HasDirective(fn, "noalloc") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	selfAppends := collectSelfAppends(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //repro:noalloc but contains a closure, which may capture and escape", name)
			return true // still check the closure body
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isString(pass.TypesInfo, n.X) {
				pass.Reportf(n.Pos(), "%s is //repro:noalloc but concatenates strings", name)
			}
		case *ast.AssignStmt:
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isString(pass.TypesInfo, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "%s is //repro:noalloc but concatenates strings", name)
			}
		case *ast.CallExpr:
			checkCall(pass, name, n, selfAppends)
		}
		return true
	})
}

func checkCall(pass *lint.Pass, fname string, call *ast.CallExpr, selfAppends map[*ast.CallExpr]bool) {
	if pkg := lint.CalleePkgPath(pass.TypesInfo, call); pkg == "fmt" {
		pass.Reportf(call.Pos(), "%s is //repro:noalloc but calls fmt.%s, which allocates", fname, lint.CalleeName(call))
		return // don't double-report its boxed arguments
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass.TypesInfo, id) {
		if !selfAppends[call] {
			pass.Reportf(call.Pos(), "%s is //repro:noalloc but appends into a different slice than it grows (want x = append(x, ...))", fname)
		}
		return
	}
	checkBoxing(pass, fname, call)
}

// checkBoxing flags concrete non-pointer values handed to interface
// parameters — the hidden allocation the old AllocsPerRun pins existed
// to catch.
func checkBoxing(pass *lint.Pass, fname string, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if ok && len(call.Args) > 0 {
		for i, arg := range call.Args {
			param := paramAt(sig, i)
			if param == nil {
				continue
			}
			if boxes(pass.TypesInfo, arg, param) {
				pass.Reportf(arg.Pos(), "%s is //repro:noalloc but boxes a %s into a %s parameter", fname, typeOf(pass.TypesInfo, arg), param)
			}
		}
	}
}

func paramAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// boxes reports whether passing arg to a param of type paramType stores
// a concrete value in an interface in a way that allocates.
func boxes(info *types.Info, arg ast.Expr, paramType types.Type) bool {
	if !types.IsInterface(paramType) {
		return false
	}
	at := typeOf(info, arg)
	if at == nil || types.IsInterface(at) {
		return false
	}
	switch u := at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: the iface data word holds it directly
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return false
		}
	}
	return true
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// collectSelfAppends finds the append calls in the blessed
// `x = append(x, ...)` / `x := append(x, ...)` shape, where the grown
// slice and the assignment target are the same expression.
func collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}
