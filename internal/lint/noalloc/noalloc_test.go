package noalloc_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/noalloc"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, "testdata", noalloc.Analyzer, "a")
}
