package a

import "fmt"

type T struct{ buf []byte }

func sink(v interface{})    {}
func take(f func() int) int { return f() }

//repro:noalloc
func Bad(dst []byte, s string, p *T, n int) []byte {
	fmt.Println(s) // want `calls fmt\.Println`
	msg := s + "!" // want `concatenates strings`
	msg += "?"     // want `concatenates strings`
	_ = msg
	_ = take(func() int { return len(dst) }) // want `contains a closure`
	out := append(dst, 'x')                  // want `appends into a different slice`
	sink(p)                                  // ok: pointers box without allocating
	sink(n)                                  // want `boxes a int`
	return out
}

//repro:noalloc
func Good(dst []byte, p *T) []byte {
	dst = append(dst, 'x')
	if cap(dst) < 8 {
		dst = make([]byte, 8) // make is the documented grow path, not flagged
	}
	sink(p)
	return dst
}

//repro:noalloc
func Hatch(dst []byte) []byte {
	tmp := append(dst, 'x') //repro:alloc-ok deliberate copy, caller keeps dst
	return tmp
}

// Unannotated functions allocate freely.
func Unannotated(s string) string {
	f := func() string { return s + "!" }
	return fmt.Sprintf("%s", f())
}
