package faultsite_test

import (
	"testing"

	"repro/internal/lint/faultsite"
	"repro/internal/lint/linttest"
)

func TestFaultsite(t *testing.T) {
	linttest.Run(t, "testdata", faultsite.Analyzer, "a")
}
