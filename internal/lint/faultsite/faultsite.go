// Package faultsite makes fault-injection coverage un-typo-able. Every
// faultinject call site names a site; harnesses arm rules against those
// names via REPRO_FAULTS. Before this analyzer the names were matched
// by convention — a typo'd site string compiled fine and silently
// produced dead fault coverage (the rule never fired, the test
// "passed"). Now faultinject declares its sites as constants of type
// faultinject.Site, and this analyzer checks that every constant site
// argument reaching the faultinject API equals one of the declared
// constants. Non-constant arguments of type Site (a threaded parameter,
// e.g. manifest.syncDir) are accepted: any constant that fed them was
// itself checked at its own call site.
//
// The registry is read from the imported faultinject package's export
// data, so the analyzer needs no hardcoded site list and works
// per-package under go vet.
package faultsite

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer checks fault-site arguments against the declared registry.
var Analyzer = &lint.Analyzer{
	Name: "faultsite",
	Doc:  "fault-injection site names must be declared faultinject.Site constants",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if isFaultinjectPkg(pass.Pkg.Path()) {
		return nil // the registry itself
	}
	fipkg := findFaultinject(pass.Pkg)
	if fipkg == nil {
		return nil // package doesn't touch the seam
	}
	siteType, registry := loadRegistry(fipkg)
	if siteType == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call, siteType, registry)
			return true
		})
	}
	return nil
}

func isFaultinjectPkg(path string) bool {
	return path == "faultinject" || strings.HasSuffix(path, "/faultinject")
}

func findFaultinject(pkg *types.Package) *types.Package {
	for _, imp := range pkg.Imports() {
		if isFaultinjectPkg(imp.Path()) {
			return imp
		}
	}
	return nil
}

// loadRegistry extracts the Site named type and the set of declared
// site values from faultinject's package scope (via export data).
func loadRegistry(fipkg *types.Package) (types.Type, map[string]bool) {
	obj := fipkg.Scope().Lookup("Site")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	siteType := tn.Type()
	registry := make(map[string]bool)
	for _, name := range fipkg.Scope().Names() {
		c, ok := fipkg.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), siteType) {
			continue
		}
		if c.Val().Kind() == constant.String {
			registry[constant.StringVal(c.Val())] = true
		}
	}
	return siteType, registry
}

// checkCall validates every argument position whose parameter type is
// faultinject.Site.
func checkCall(pass *lint.Pass, call *ast.CallExpr, siteType types.Type, registry map[string]bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if !types.Identical(sig.Params().At(i).Type(), siteType) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.Value == nil {
			continue // non-constant: a threaded Site value, checked at its source
		}
		if atv.Value.Kind() != constant.String {
			continue
		}
		if site := constant.StringVal(atv.Value); !registry[site] {
			pass.Reportf(arg.Pos(), "%q is not a declared fault site; add a faultinject.Site constant or use an existing one", site)
		}
	}
}
