package a

import (
	"io"

	"faultinject"
)

func declared() {
	_ = faultinject.Check("kspc", faultinject.OpAny)                // ok: literal matches a declared site
	_ = faultinject.Check(faultinject.SiteSpill, faultinject.OpAny) // ok: the constant itself
}

func typo(w io.Writer) {
	_ = faultinject.Check("kpsc", faultinject.OpAny)                   // want `"kpsc" is not a declared fault site`
	_ = faultinject.Check(faultinject.Site("nope"), faultinject.OpAny) // want `"nope" is not a declared fault site`
	_ = faultinject.Writer("spll", w)                                  // want `"spll" is not a declared fault site`
}

// A threaded Site parameter is accepted: whatever constant fed it was
// checked at its own call site.
func threaded(site faultinject.Site) error {
	return faultinject.Check(site, faultinject.OpWrite)
}
