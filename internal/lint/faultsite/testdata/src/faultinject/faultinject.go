// Package faultinject is a fixture model of the real
// internal/faultinject registry: a Site type plus its declared
// constants. The analyzer reads this table through the import, exactly
// as it reads the real package's export data under go vet.
package faultinject

import "io"

type Op uint8

const (
	OpAny Op = iota
	OpWrite
)

// Site names an instrumented call site.
type Site string

// The declared registry.
const (
	SiteKSPC  Site = "kspc"
	SiteSpill Site = "spill"
)

func Check(site Site, op Op) error            { return nil }
func Writer(site Site, w io.Writer) io.Writer { return w }
