package a

import "errors"

func f() error { return nil }

func shadowedErr(fail bool) error {
	err := errors.New("outer")
	if fail {
		err := f() // want `shadows the err declared at`
		_ = err
	}
	return err // outer err consulted after the inner scope closed
}

func shadowedParam(n int) int {
	if n > 0 {
		n := n - 1 // want `shadows the n declared at`
		_ = n
	}
	return n
}

// The guard idiom: the outer err is never consulted after the inner
// scope, so there is nothing to confuse.
func guardIdiom() error {
	if err := f(); err != nil {
		return err
	}
	return nil
}

// Outer variable's last use precedes the shadowing scope's end.
func lastUseBefore(n int) int {
	x := n + 1
	if x > 1 {
		x := n * 2
		return x
	}
	return 0
}

// Function-literal parameters are the worker-pool idiom, not shadows.
func workerIdiom(lo, hi int) {
	done := make(chan struct{})
	go func(lo, hi int) {
		_ = hi - lo
		close(done)
	}(lo, hi)
	<-done
	_ = lo
	_ = hi
}

// When the outer variable's first touch after the shadowing scope is a
// store, every later read observes that store — no confusion possible.
func storeAfter(n int) error {
	v, err := n+1, f()
	if err != nil {
		return err
	}
	if err := f(); err != nil { // ok: next touch of the outer err is a store
		return err
	}
	_ = v
	err = f()
	return err
}
