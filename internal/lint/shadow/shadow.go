// Package shadow is an offline reimplementation of the x/tools shadow
// heuristic (the build container has no module proxy, so the real one
// cannot be vendored): a `:=` or `var` declaration that shadows an
// outer variable is reported only when the outer variable is still
// READ after the shadowing scope ends — the situation where a reader
// (or a later edit) can plausibly confuse the two.
//
// Matching x/tools, only short variable declarations and var specs are
// considered: function-literal parameters (the `go func(w, lo, hi int)`
// worker idiom) and range variables never shadow. Beyond x/tools, the
// outer variable's first touch after the shadowing scope must be a
// read, not a store — a store cannot observe the wrong variable, and
// every later read observes the store — which keeps the idiomatic
// `if err := f(); err != nil { return err }` guard quiet in functions
// that go on to reassign err. Package-level variables are not
// considered shadowable, and _test.go files are skipped.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer reports confusable variable shadowing.
var Analyzer = &lint.Analyzer{
	Name: "shadow",
	Doc:  "flag declarations that shadow an outer variable still read afterwards",
	Run:  run,
}

func run(pass *lint.Pass) error {
	// A use that is the entire LHS of an assignment is a store; only
	// reads can observe the wrong variable.
	writes := make(map[*ast.Ident]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					writes[id] = true
				}
			}
			return true
		})
	}
	touches := make(map[types.Object][]touch)
	for ident, obj := range pass.TypesInfo.Uses {
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			touches[obj] = append(touches[obj], touch{ident.Pos(), writes[ident]})
		}
	}

	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							checkShadow(pass, id, touches)
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					for _, spec := range n.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, id := range vs.Names {
								checkShadow(pass, id, touches)
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// touch is one appearance of a variable: where, and whether it was the
// bare target of an assignment (a store) rather than a read.
type touch struct {
	pos   token.Pos
	store bool
}

func checkShadow(pass *lint.Pass, ident *ast.Ident, touches map[types.Object][]touch) {
	if ident.Name == "_" {
		return
	}
	v, ok := pass.TypesInfo.Defs[ident].(*types.Var)
	if !ok {
		return // := redeclaration of an existing variable, not a new decl
	}
	inner := v.Parent()
	if inner == nil || inner == pass.Pkg.Scope() {
		return
	}
	outerScope, outerObj := inner.Parent().LookupParent(ident.Name, ident.Pos())
	if outerObj == nil || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
		return
	}
	outerVar, ok := outerObj.(*types.Var)
	if !ok || outerVar == v || outerVar.Pos() >= ident.Pos() {
		return
	}
	// Report only when the outer variable's first touch after the inner
	// scope ends is a read: before that point the shadow cannot be
	// observed, and a store resets the variable before any later read.
	var first *touch
	for i := range touches[outerVar] {
		t := &touches[outerVar][i]
		if t.pos > inner.End() && (first == nil || t.pos < first.pos) {
			first = t
		}
	}
	if first != nil && !first.store {
		pass.Reportf(ident.Pos(), "declaration of %q shadows the %s declared at %s, which is read again after this scope",
			ident.Name, ident.Name, pass.Fset.Position(outerVar.Pos()))
	}
}
