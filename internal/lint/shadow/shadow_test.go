package shadow_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/shadow"
)

func TestShadow(t *testing.T) {
	linttest.Run(t, "testdata", shadow.Analyzer, "a")
}
