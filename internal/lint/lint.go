// Package lint is the repository's static-analysis framework: a
// minimal, dependency-free reimplementation of the parts of
// golang.org/x/tools/go/analysis that reprolint needs. The container
// this repo builds in has no module proxy access, so vendoring x/tools
// is not an option; everything here is stdlib (go/ast, go/types,
// go/importer) and implements the same contracts — an Analyzer runs
// once per type-checked package and reports position-anchored
// diagnostics — plus the cmd/go vettool wire protocol (driver.go), so
// `go vet -vettool=$(reprolint)` works exactly as it would with a
// unitchecker-based tool.
//
// The analyzers themselves live in subpackages (noalloc, ctxflow,
// faultsite, errwrap, unsafescope, nilness, shadow) and are wired
// together by cmd/reprolint. Fixture-driven tests use
// internal/lint/linttest, an analysistest-style runner.
//
// Suppression: a statement-line comment `//repro:alloc-ok` silences
// noalloc on that line (the audited escape hatch for a deliberate or
// provably non-escaping allocation), and `//repro:lint-ok <name>`
// silences the named analyzer on that line. Both are deliberate,
// greppable paper trails — the reviewer sees every spot the machine
// was overruled.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one named invariant checker. Run is invoked once per
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repro:lint-ok suppressions. It must be a lowercase identifier.
	Name string
	// Doc is the one-paragraph description printed by reprolint help.
	Doc string
	// Run inspects one package. Diagnostics go through Pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through an
// Analyzer.Run, mirroring analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives every diagnostic. The driver and the test runner
	// install their own sinks.
	Report func(Diagnostic)

	analyzer   *Analyzer
	suppressed map[suppressKey]bool
}

// Diagnostic is one finding, anchored to a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewPass assembles a Pass for one package. Suppression comments are
// indexed up front so Reportf can honor them in O(1).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	p := &Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    report,
		analyzer:  a,
	}
	p.suppressed = indexSuppressions(fset, files, a.Name)
	return p
}

// Reportf records a finding at pos unless a suppression comment on the
// same line overrules it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed[suppressKey{position.Filename, position.Line}] {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

type suppressKey struct {
	file string
	line int
}

// allocOKAnalyzers are the analyzers the legacy-spelled //repro:alloc-ok
// directive silences; every other analyzer uses //repro:lint-ok <name>.
const allocOKAnalyzer = "noalloc"

// indexSuppressions collects the (file, line) pairs where the named
// analyzer is silenced by //repro:alloc-ok or //repro:lint-ok <name>.
func indexSuppressions(fset *token.FileSet, files []*ast.File, name string) map[suppressKey]bool {
	out := make(map[suppressKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				ok := false
				switch {
				case text == "repro:alloc-ok" || strings.HasPrefix(text, "repro:alloc-ok "):
					ok = name == allocOKAnalyzer
				case strings.HasPrefix(text, "repro:lint-ok"):
					rest := strings.TrimPrefix(text, "repro:lint-ok")
					for _, n := range strings.Fields(rest) {
						if n == name {
							ok = true
						}
					}
				}
				if ok {
					pos := fset.Position(c.Pos())
					out[suppressKey{pos.Filename, pos.Line}] = true
				}
			}
		}
	}
	return out
}

// HasDirective reports whether the function declaration carries the
// given //repro:<directive> comment (exact token, e.g. "noalloc") in
// its doc comment.
func HasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	want := "repro:" + directive
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The project
// analyzers skip test files: tests sleep, allocate and shadow freely by
// design, and the invariants under enforcement are production-path
// invariants.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PathMatches reports whether the package import path matches any of
// the patterns. A pattern matches when it equals the path, is a suffix
// beginning at a path-segment boundary, or — for fixture packages —
// equals the path's last segment.
func PathMatches(path string, patterns []string) bool {
	for _, pat := range patterns {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// CalleePkgPath resolves the import path of the package a call
// expression's callee belongs to, or "" when the callee is not a
// package-level or method selection the type info can resolve.
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if pkg := sel.Obj().Pkg(); pkg != nil {
				return pkg.Path()
			}
			return ""
		}
		if obj, ok := info.Uses[fun.Sel]; ok {
			if pkg := obj.Pkg(); pkg != nil {
				return pkg.Path()
			}
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if pkg := obj.Pkg(); pkg != nil {
				return pkg.Path()
			}
		}
	}
	return ""
}

// CalleeName resolves the bare name of a call's callee ("Sleep",
// "Errorf"), or "".
func CalleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// wantRE matches one expectation inside a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// ParseWants extracts the expectation regexps from a fixture comment of
// the form `// want "re1" "re2"`. Used by linttest; exported here so the
// driver package does not need its own copy.
func ParseWants(text string) []string {
	idx := strings.Index(text, "want ")
	if idx < 0 {
		return nil
	}
	var out []string
	for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
		if m[1] != "" {
			out = append(out, m[1])
		} else {
			out = append(out, m[2])
		}
	}
	return out
}
