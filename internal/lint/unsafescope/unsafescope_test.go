package unsafescope_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/unsafescope"
)

func TestUnsafescope(t *testing.T) {
	// Fixture allowlist: any mmap*.go file. The default analyzer pins
	// the directory too (internal/kspectrum/mmap*.go).
	linttest.Run(t, "testdata", unsafescope.NewAnalyzer("mmap*.go"), "bad", "allowed")
}

func TestDefaultPatternShape(t *testing.T) {
	// The bad fixture is also bad under the project's default
	// allowlist: it lives outside internal/kspectrum.
	linttest.Run(t, "testdata", unsafescope.Analyzer, "bad")
}
