// Package unsafescope contains the PR 6 zero-copy blast radius: the
// unsafe pointer reinterpretation that serves a KSPC file in place, and
// the mmap/munmap syscalls backing it, are only permitted in
// internal/kspectrum's mmap*.go files. Everywhere else, importing
// unsafe or calling a memory-mapping syscall is a diagnostic — the
// reviewer of a diff that widens the unsafe surface should see a
// deliberate allowlist change, not a quiet new import.
//
// Importing syscall for signals and errnos (SIGTERM, EINVAL) stays
// legal everywhere; only the mapping entry points are fenced.
package unsafescope

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// DefaultAllowed is where unsafe and mapping syscalls may live.
var DefaultAllowed = []string{"internal/kspectrum/mmap*.go"}

// Analyzer enforces the project's default allowlist.
var Analyzer = NewAnalyzer(DefaultAllowed...)

// mappingSyscalls are the syscall-package entry points that create or
// manage memory mappings.
var mappingSyscalls = map[string]bool{
	"Mmap": true, "Munmap": true, "Mprotect": true,
	"Madvise": true, "Mlock": true, "Munlock": true, "Msync": true,
}

// NewAnalyzer builds an unsafescope analyzer with the given allowed
// file patterns (matched segment-wise from the right, so
// "internal/kspectrum/mmap*.go" matches any build of that package).
func NewAnalyzer(allowed ...string) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "unsafescope",
		Doc:  "confine unsafe and mmap syscalls to kspectrum's mmap*.go files",
		Run: func(pass *lint.Pass) error {
			return run(pass, allowed)
		},
	}
}

func run(pass *lint.Pass, allowed []string) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if fileAllowed(name, allowed) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "unsafe" {
				pass.Reportf(imp.Pos(), "import of unsafe outside the allowed files (%s); keep the zero-copy blast radius in kspectrum's mmap*.go", strings.Join(allowed, ", "))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lint.CalleePkgPath(pass.TypesInfo, call) == "syscall" && mappingSyscalls[lint.CalleeName(call)] {
				pass.Reportf(call.Pos(), "syscall.%s outside the allowed files (%s); memory mappings belong in kspectrum's mmap*.go", lint.CalleeName(call), strings.Join(allowed, ", "))
			}
			return true
		})
	}
	return nil
}

// fileAllowed matches path against each pattern, segment-wise from the
// right: the pattern's base globs against the file base, and every
// further pattern segment globs against the corresponding path segment.
func fileAllowed(path string, allowed []string) bool {
	pathSegs := strings.Split(filepath.ToSlash(path), "/")
	for _, pat := range allowed {
		patSegs := strings.Split(pat, "/")
		if len(patSegs) > len(pathSegs) {
			continue
		}
		match := true
		for i := 1; i <= len(patSegs); i++ {
			ok, err := filepath.Match(patSegs[len(patSegs)-i], pathSegs[len(pathSegs)-i])
			if err != nil || !ok {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
