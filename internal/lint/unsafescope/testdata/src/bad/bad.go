package bad

import (
	"syscall"
	"unsafe" // want `import of unsafe outside the allowed files`
)

// Pointer reinterpretation outside the fence.
func view(b []byte) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[0]))
}

// Mapping syscalls outside the fence.
func mapIt(fd int, n int) ([]byte, error) {
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED) // want `syscall\.Mmap outside the allowed files`
}

// Signal/errno use of syscall stays legal everywhere.
func errno() error { return syscall.EINVAL }
