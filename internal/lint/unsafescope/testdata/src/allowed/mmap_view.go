package allowed

import (
	"syscall"
	"unsafe"
)

// Inside an mmap*.go file both unsafe and the mapping syscalls are
// permitted — this is the blast-radius file.
func view(b []byte) *uint64 {
	return (*uint64)(unsafe.Pointer(&b[0]))
}

func unmap(b []byte) error {
	return syscall.Munmap(b)
}
