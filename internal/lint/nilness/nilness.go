// Package nilness is an offline, deliberately small stand-in for
// golang.org/x/tools' SSA-based nilness analyzer (the build container
// has no module proxy, so the real one cannot be vendored). It catches
// the highest-confidence slice of that analyzer's findings with pure
// AST reasoning: using a value inside the very branch that just proved
// it nil.
//
// Flagged, for an identifier x of pointer, func, interface, slice or
// chan type:
//
//	if x == nil { ... x.f / x() / x[i] / *x ... }
//	if x != nil { ... } else { ... same uses ... }
//
// The check bails out of a branch as soon as x is reassigned inside
// it. Map indexing is exempt (reading a nil map is defined), as is
// method selection on a nil pointer (a value-receiver-free method set
// may tolerate it; the conservative cases are field access, calls,
// indexing and explicit dereference).
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer reports uses of values on the branch that proved them nil.
var Analyzer = &lint.Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of values the enclosing branch proved nil",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			ident, eq := nilComparison(pass, ifs.Cond)
			if ident == nil {
				return true
			}
			if eq {
				checkBranch(pass, ident, ifs.Body)
			} else if els, ok := ifs.Else.(*ast.BlockStmt); ok {
				checkBranch(pass, ident, els)
			}
			return true
		})
	}
	return nil
}

// nilComparison recognizes `x == nil` / `nil == x` (eq=true) and
// `x != nil` / `nil != x` (eq=false) over a nilable identifier.
func nilComparison(pass *lint.Pass, cond ast.Expr) (*ast.Ident, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	var ident *ast.Ident
	switch {
	case isNil(pass, be.Y):
		ident, _ = be.X.(*ast.Ident)
	case isNil(pass, be.X):
		ident, _ = be.Y.(*ast.Ident)
	}
	if ident == nil || !nilable(pass.TypesInfo.TypeOf(ident)) {
		return nil, false
	}
	return ident, be.Op == token.EQL
}

func isNil(pass *lint.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}

// nilable reports whether a nil value of type t traps on the uses this
// analyzer checks.
func nilable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Interface, *types.Slice, *types.Chan:
		return true
	}
	return false
}

// checkBranch walks one branch in statement order, reporting trapping
// uses of the known-nil ident until it is reassigned.
func checkBranch(pass *lint.Pass, ident *ast.Ident, body *ast.BlockStmt) {
	obj := pass.TypesInfo.Uses[ident]
	if obj == nil {
		return
	}
	reassigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					reassigned = true
				}
			}
		case *ast.SelectorExpr:
			// Field access through a nil pointer traps; method selection
			// is tolerated (see package doc).
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					pass.Reportf(n.Pos(), "%s is nil on this branch; selecting %s.%s panics", ident.Name, ident.Name, n.Sel.Name)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this branch; calling it panics", ident.Name)
			}
		case *ast.IndexExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				if t := pass.TypesInfo.TypeOf(id); t != nil {
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						pass.Reportf(n.Pos(), "%s is nil on this branch; indexing it panics", ident.Name)
					}
				}
			}
		case *ast.StarExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "%s is nil on this branch; dereferencing it panics", ident.Name)
			}
		}
		return true
	})
}
