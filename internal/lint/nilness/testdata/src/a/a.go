package a

type T struct{ n int }

func derefInNilBranch(p *T) int {
	if p == nil {
		return p.n // want `p is nil on this branch`
	}
	return p.n
}

func callInNilBranch(f func() int) int {
	if f == nil {
		return f() // want `f is nil on this branch`
	}
	return f()
}

func indexInNilBranch(s []int) int {
	if nil == s {
		return s[0] // want `s is nil on this branch`
	}
	return s[0]
}

func starInNilBranch(p *int) int {
	if p == nil {
		return *p // want `p is nil on this branch`
	}
	return *p
}

func elseBranch(p *T) int {
	if p != nil {
		return p.n
	} else {
		return p.n // want `p is nil on this branch`
	}
}

func reassigned(p *T) int {
	if p == nil {
		p = &T{}
		return p.n // ok: reassigned before use
	}
	return p.n
}

// Reading a nil map is defined behavior.
func mapRead(m map[string]int) int {
	if m == nil {
		return m["k"]
	}
	return m["k"]
}

// Method selection on a possibly-nil pointer is tolerated (the method
// may handle nil receivers).
func (t *T) len() int {
	if t == nil {
		return 0
	}
	return t.n
}
