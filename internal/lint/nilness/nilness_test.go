package nilness_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nilness"
)

func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata", nilness.Analyzer, "a")
}
