package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the JSON the go command hands a vettool for each
// package: the file set, the import universe (as compiled export data),
// and where to put the (for us, empty) facts file. The field set
// mirrors what cmd/go emits for unitchecker-based tools; unknown fields
// are ignored by encoding/json, so the driver tolerates go-version skew
// in either direction.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point cmd/reprolint delegates to. It speaks the
// cmd/go vettool protocol:
//
//	reprolint -V=full      print a content-addressed version line
//	reprolint -flags       print the supported flags (none) as JSON
//	reprolint <file>.cfg   analyze one package described by the config
//
// Diagnostics print as file:line:col: messages on stderr and make the
// process exit 2, which `go vet` surfaces as a failed package — the
// compile-gate behavior reprolint exists for.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	var cfgPath string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		case arg == "help" || arg == "-help" || arg == "--help":
			printHelp(progname, analyzers)
			return
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		}
		// Anything else (stray vet flags) is deliberately ignored: the
		// driver has no tunables, and failing on an unknown flag would
		// couple us to the exact flag set each go release forwards.
	}
	if cfgPath == "" {
		fmt.Fprintf(os.Stderr, "%s: run me via go vet -vettool=%s ./... (see %s help)\n", progname, progname, progname)
		os.Exit(1)
	}

	diags, err := runConfig(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// selfID hashes the executable so the go command's vet result cache
// invalidates whenever reprolint is rebuilt with different analyzers —
// a constant version string would serve stale verdicts.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func printHelp(progname string, analyzers []*Analyzer) {
	fmt.Printf("%s: the repro project's invariant checkers (run via go vet -vettool)\n\nAnalyzers:\n", progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-12s %s\n", a.Name, doc)
	}
}

// runConfig analyzes the one package a vet config describes and returns
// rendered diagnostics.
func runConfig(cfgPath string, analyzers []*Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}

	// The facts file must exist even though reprolint's analyzers are
	// factless: cmd/go records it as the action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only so a fact-using tool could read its
		// exports; nothing to analyze.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var parseErrs []string
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			parseErrs = append(parseErrs, err.Error())
			continue
		}
		files = append(files, f)
	}
	if len(parseErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("parse errors:\n%s", strings.Join(parseErrs, "\n"))
	}

	// Imports resolve through the export data the go command compiled
	// for each dependency; ImportMap canonicalizes source-level paths
	// (vendoring, test variants) first.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Error:    func(error) {}, // collect via the returned error; keep going
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := newTypesInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	var diags []string
	for _, a := range analyzers {
		pass := NewPass(a, fset, files, pkg, info, func(d Diagnostic) {
			diags = append(diags, fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, a.Name))
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Strings(diags)
	return diags, nil
}

// newTypesInfo allocates a types.Info with every map the analyzers
// consult populated.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
