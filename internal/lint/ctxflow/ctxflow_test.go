package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.NewAnalyzer("a"), "a")
}

// TestOutOfScope proves the analyzer is inert outside its package
// scope: the same violating fixture produces nothing when the scope
// names another package.
func TestOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata", ctxflow.NewAnalyzer("unrelated/pkg"), "clean")
}
