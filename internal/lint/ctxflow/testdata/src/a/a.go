package a

import (
	"context"
	"time"
)

func sleepNoCtx() {
	time.Sleep(time.Second) // want `accept a context\.Context and select`
}

func sleepWithCtx(ctx context.Context) {
	time.Sleep(time.Second) // want `ignoring its context`
	<-ctx.Done()
}

func sleepCtxAware(ctx context.Context) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func goNoCtx(done chan struct{}) {
	go func() { close(done) }() // want `no context to bound it`
}

func goWithCtx(ctx context.Context, done chan struct{}) {
	go func() {
		<-ctx.Done()
		close(done)
	}()
}

func dropsCtx(ctx context.Context) context.CancelFunc {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `discarding the caller's cancellation`
	_ = c
	return cancel
}

func threadsCtx(ctx context.Context) context.CancelFunc {
	c, cancel := context.WithTimeout(ctx, time.Second)
	_ = c
	return cancel
}

type server struct {
	ctx context.Context
}

// Receiver carries the lifecycle context: goroutines are bounded.
func (s *server) spawn(done chan struct{}) {
	go func() {
		<-s.ctx.Done()
		close(done)
	}()
}

// A root function that creates its own context owns its lifecycle.
func rootDaemon(done chan struct{}) {
	ctx, cancel := context.WithCancel(context.TODO())
	defer cancel()
	go func() {
		<-ctx.Done()
		close(done)
	}()
}
