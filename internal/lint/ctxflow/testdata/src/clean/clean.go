package clean

import "time"

// Violations galore — but the analyzer under test is scoped to a
// different package path, so none of this may be reported.
func sleepNoCtx() {
	time.Sleep(time.Millisecond)
}

func goNoCtx(done chan struct{}) {
	go func() { close(done) }()
}
