// Package ctxflow enforces context discipline in the service-path
// packages (internal/remote, internal/cli, internal/engine): code that
// waits or spawns must be cancellable. This is the exact bug class the
// PR 9 review fixed — a retry loop sleeping through shutdown because
// the sleep never consulted the context the rest of the daemon was
// plumbed with.
//
// Three checks, in scoped packages, outside _test.go files:
//
//  1. A bare time.Sleep is always flagged: sleeps must be select-based
//     waits on ctx.Done() (or go through a context-bound backend view,
//     kspectrum.BindContext style). The message distinguishes whether
//     the function already has a context to use or needs to grow one.
//  2. A `go` statement in a function with no reachable context — no
//     context.Context parameter, no *http.Request parameter, no
//     context field on the receiver, and no locally created context —
//     is flagged: the goroutine cannot be bounded or drained.
//  3. context.Background()/context.TODO() passed as a call argument in
//     a function that already receives a ctx parameter is flagged: it
//     silently discards the caller's deadline and cancellation.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// DefaultScope is the set of package-path suffixes the project
// enforces context discipline in.
var DefaultScope = []string{"internal/remote", "internal/cli", "internal/engine"}

// Analyzer checks the project's default scope.
var Analyzer = NewAnalyzer(DefaultScope...)

// NewAnalyzer builds a ctxflow analyzer scoped to the given package
// path patterns (see lint.PathMatches); tests scope it to fixtures.
func NewAnalyzer(scope ...string) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "ctxflow",
		Doc:  "require context threading for sleeps and goroutines in service-path packages",
		Run: func(pass *lint.Pass) error {
			return run(pass, scope)
		},
	}
}

func run(pass *lint.Pass, scope []string) error {
	if !lint.PathMatches(pass.Pkg.Path(), scope) {
		return nil
	}
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fn.Name.Name == "main" || fn.Name.Name == "init" {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// ctxAccess describes how a function can reach a context.
type ctxAccess struct {
	param    bool // context.Context parameter
	request  bool // *http.Request parameter (r.Context())
	receiver bool // receiver struct carries a context.Context field
	local    bool // body creates a context (root functions, daemons)
}

func (c ctxAccess) any() bool { return c.param || c.request || c.receiver || c.local }

func checkFunc(pass *lint.Pass, fn *ast.FuncDecl) {
	access := classify(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !access.any() {
				pass.Reportf(n.Pos(), "%s launches a goroutine but has no context to bound it; accept a context.Context and honor its cancellation", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fn, access, n)
		}
		return true
	})
}

func checkCall(pass *lint.Pass, fn *ast.FuncDecl, access ctxAccess, call *ast.CallExpr) {
	pkg := lint.CalleePkgPath(pass.TypesInfo, call)
	name := lint.CalleeName(call)
	if pkg == "time" && name == "Sleep" {
		if access.param || access.request {
			pass.Reportf(call.Pos(), "%s calls bare time.Sleep, ignoring its context; select on ctx.Done() with a timer instead", fn.Name.Name)
		} else {
			pass.Reportf(call.Pos(), "%s calls bare time.Sleep; accept a context.Context and select on ctx.Done() with a timer instead", fn.Name.Name)
		}
		return
	}
	// Rule 3: context.Background()/TODO() fed into a call while a
	// perfectly good ctx parameter sits unused.
	if access.param {
		for _, arg := range call.Args {
			inner, ok := arg.(*ast.CallExpr)
			if !ok {
				continue
			}
			ipkg := lint.CalleePkgPath(pass.TypesInfo, inner)
			iname := lint.CalleeName(inner)
			if ipkg == "context" && (iname == "Background" || iname == "TODO") {
				pass.Reportf(inner.Pos(), "%s receives a context but passes context.%s here, discarding the caller's cancellation and deadline", fn.Name.Name, iname)
			}
		}
	}
}

func classify(pass *lint.Pass, fn *ast.FuncDecl) ctxAccess {
	var access ctxAccess
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if lint.IsContextType(t) {
				access.param = true
			}
			if isHTTPRequestPtr(t) {
				access.request = true
			}
		}
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if t := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type); t != nil {
			access.receiver = receiverHasCtxField(t)
		}
	}
	// A locally created context (signal.NotifyContext, context.With*,
	// context.Background assigned to a variable) marks a root function
	// that owns its own lifecycle.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if t := pass.TypesInfo.TypeOf(lhs); t != nil && lint.IsContextType(t) {
				access.local = true
			}
		}
		return true
	})
	return access
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func receiverHasCtxField(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if lint.IsContextType(s.Field(i).Type()) {
			return true
		}
	}
	return false
}
