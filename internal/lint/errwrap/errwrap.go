// Package errwrap keeps the errors.Is contracts of the storage and
// wire layers from rotting: in internal/kspectrum and internal/remote,
// a fmt.Errorf that embeds another error must use %w, not %v/%s/%q.
// Those packages export sentinel-wrapping guarantees (ErrSpectrumStore,
// ErrCheckpoint, ShardUnavailableError) that callers test with
// errors.Is/errors.As across process and HTTP boundaries; one %v in a
// wrapping path silently severs the chain and the contract fails only
// when the caller's errors.Is quietly returns false.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/lint"
)

// DefaultScope is where the wrapping contract is load-bearing.
var DefaultScope = []string{"internal/kspectrum", "internal/remote"}

// Analyzer checks the project's default scope.
var Analyzer = NewAnalyzer(DefaultScope...)

// NewAnalyzer builds an errwrap analyzer scoped to the given package
// path patterns.
func NewAnalyzer(scope ...string) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "errwrap",
		Doc:  "fmt.Errorf embedding an error must use %w in the store/wire packages",
		Run: func(pass *lint.Pass) error {
			return run(pass, scope)
		},
	}
}

func run(pass *lint.Pass, scope []string) error {
	if !lint.PathMatches(pass.Pkg.Path(), scope) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		if lint.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lint.CalleePkgPath(pass.TypesInfo, call) != "fmt" || lint.CalleeName(call) != "Errorf" {
				return true
			}
			checkErrorf(pass, call, errType)
			return true
		})
	}
	return nil
}

func checkErrorf(pass *lint.Pass, call *ast.CallExpr, errType *types.Interface) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string; printf vet handles arity, we can't see verbs
	}
	verbs := parseVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break // arity mismatch is vet printf's finding, not ours
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || !types.Implements(at, errType) {
			continue
		}
		if v := verbs[i]; v != 'w' {
			pass.Reportf(arg.Pos(), "error formatted with %%%c loses the error chain; use %%w so errors.Is/As keep working", v)
		}
	}
}

// parseVerbs returns the verb rune consuming each successive argument
// of a printf format string. A '*' width or precision consumes an
// argument of its own and is recorded as '*'.
func parseVerbs(format string) []rune {
	var verbs []rune
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		// flags, width, precision — '*' consumes an arg.
	spec:
		for i < len(runes) {
			switch runes[i] {
			case '+', '-', '#', ' ', '0', '.', '1', '2', '3', '4', '5', '6', '7', '8', '9':
				i++
			case '*':
				verbs = append(verbs, '*')
				i++
			default:
				break spec
			}
		}
		if i < len(runes) && runes[i] != '%' {
			verbs = append(verbs, runes[i])
		}
	}
	return verbs
}
