package clean

import "fmt"

// Out of the analyzer's scope: %v on an error is legal here.
func wrap(err error) error { return fmt.Errorf("context: %v", err) }
