package a

import (
	"errors"
	"fmt"
)

var sentinel = errors.New("boom")

type opError struct{ msg string }

func (e *opError) Error() string { return e.msg }

func wrapOK(err error) error      { return fmt.Errorf("open store: %w", err) }
func wrapBadV(err error) error    { return fmt.Errorf("open store: %v", err) } // want `use %w`
func wrapBadS(err error) error    { return fmt.Errorf("open store: %s", err) } // want `use %w`
func wrapBadQ(e *opError) error   { return fmt.Errorf("open store: %q", e) }   // want `use %w`
func sentinelOK(msg string) error { return fmt.Errorf("%w: %s", sentinel, msg) }
func noError(n int) error         { return fmt.Errorf("bad shard count %d", n) }
func widthOK(err error, n int) error {
	return fmt.Errorf("%*d tries: %w", 4, n, err)
}
