package errwrap_test

import (
	"testing"

	"repro/internal/lint/errwrap"
	"repro/internal/lint/linttest"
)

func TestErrwrap(t *testing.T) {
	linttest.Run(t, "testdata", errwrap.NewAnalyzer("a"), "a")
}

func TestOutOfScope(t *testing.T) {
	linttest.Run(t, "testdata", errwrap.NewAnalyzer("unrelated/pkg"), "clean")
}
