package fastq

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/seq"
)

const sample = `@read1 extra metadata
ACGTN
+
IIIII
@read2
TTTT
+read2
!!!!
`

func TestReaderParsesRecords(t *testing.T) {
	r := NewReader(strings.NewReader(sample))
	r1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID != "read1" {
		t.Errorf("ID = %q want read1 (metadata stripped)", r1.ID)
	}
	if string(r1.Seq) != "ACGTN" {
		t.Errorf("Seq = %q", r1.Seq)
	}
	if r1.Qual[0] != 'I'-PhredOffset {
		t.Errorf("Qual[0] = %d want %d", r1.Qual[0], 'I'-PhredOffset)
	}
	r2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Qual[0] != 0 {
		t.Errorf("'!' should decode to quality 0, got %d", r2.Qual[0])
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r := NewReader(strings.NewReader("\n@x\nAC\n\n+\nII\n\n"))
	rd, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Seq) != "AC" {
		t.Errorf("Seq = %q", rd.Seq)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad header", "read1\nAC\n+\nII\n"},
		{"bad separator", "@r\nAC\nII\nII\n"},
		{"length mismatch", "@r\nACG\n+\nII\n"},
		{"truncated", "@r\nACG\n+\n"},
		{"quality below range", "@r\nA\n+\n\x1f\n"},
		{"quality above range", "@r\nA\n+\n\x7f\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewReader(strings.NewReader(tc.in)).Next(); err == nil || err == io.EOF {
				t.Errorf("expected parse error, got %v", err)
			}
		})
	}
}

func TestWriteRoundTrip(t *testing.T) {
	in := []seq.Read{
		{ID: "a", Seq: []byte("ACGT"), Qual: []byte{0, 10, 40, 93}},
		{ID: "b", Seq: []byte("NNN"), Qual: []byte{2, 2, 2}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || string(out[i].Seq) != string(in[i].Seq) || !bytes.Equal(out[i].Qual, in[i].Qual) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

// TestReaderWriterIdentity proves decode→encode is the identity over the
// full accepted quality range: every character the Reader admits survives
// a write→read cycle unchanged, and in particular the top of the range
// ('~', quality 93) is no longer silently clamped into a different value.
func TestReaderWriterIdentity(t *testing.T) {
	// One read per quality value, plus one read sweeping the whole range.
	var buf bytes.Buffer
	sweep := make([]byte, 0, MaxQuality+1)
	for q := 0; q <= MaxQuality; q++ {
		fmt.Fprintf(&buf, "@q%d\nA\n+\n%c\n", q, byte(q)+PhredOffset)
		sweep = append(sweep, byte(q)+PhredOffset)
	}
	fmt.Fprintf(&buf, "@sweep\n%s\n+\n%s\n", strings.Repeat("C", len(sweep)), sweep)
	original := buf.String()

	reads, err := NewReader(strings.NewReader(original)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Write(&out, reads); err != nil {
		t.Fatal(err)
	}
	if out.String() != original {
		t.Errorf("decode→encode is not the identity:\n in: %q\nout: %q", original, out.String())
	}
}

func TestWriteDefaultsQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []seq.Read{{ID: "a", Seq: []byte("AC")}}); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Qual[0] != 40 {
		t.Errorf("default quality = %d want 40", out[0].Qual[0])
	}
}

func TestWriteClampsQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []seq.Read{{ID: "a", Seq: []byte("A"), Qual: []byte{200}}}); err != nil {
		t.Fatal(err)
	}
	out, _ := NewReader(&buf).ReadAll()
	if out[0].Qual[0] != MaxQuality {
		t.Errorf("clamped quality = %d want %d", out[0].Qual[0], MaxQuality)
	}
}

func TestWriteRejectsInvalidRead(t *testing.T) {
	bad := []seq.Read{{ID: "a", Seq: []byte("ACG"), Qual: []byte{1}}}
	if err := Write(io.Discard, bad); err == nil {
		t.Error("expected validation error")
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []FastaRecord{
		{ID: "chr1", Seq: bytes.Repeat([]byte("ACGT"), 50)},
		{ID: "chr2", Seq: []byte("TTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "chr1" || !bytes.Equal(got[0].Seq, recs[0].Seq) || !bytes.Equal(got[1].Seq, recs[1].Seq) {
		t.Errorf("fasta round trip mismatch: %+v", got)
	}
}

func TestFastaMultilineAndErrors(t *testing.T) {
	got, err := ReadFasta(strings.NewReader(">s desc here\nACGT\nACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != "s" || string(got[0].Seq) != "ACGTACGT" {
		t.Errorf("parsed %+v", got[0])
	}
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("expected error for data before header")
	}
}

func TestReaderLargeStreamNoAliasing(t *testing.T) {
	// Regression: scanner tokens are invalidated by subsequent Scan calls;
	// records near internal buffer boundaries must still round-trip.
	var in []seq.Read
	for i := 0; i < 5000; i++ {
		r := seq.Read{
			ID:   "r" + string(rune('A'+i%26)) + "x",
			Seq:  bytes.Repeat([]byte("ACGT"), 9),
			Qual: bytes.Repeat([]byte{byte(10 + i%30)}, 36),
		}
		r.Seq[i%36] = "ACGT"[i%4]
		in = append(in, r)
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count %d want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || !bytes.Equal(out[i].Seq, in[i].Seq) || !bytes.Equal(out[i].Qual, in[i].Qual) {
			t.Fatalf("record %d corrupted: %+v vs %+v", i, out[i], in[i])
		}
	}
}
