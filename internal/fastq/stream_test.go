package fastq

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/seq"
)

// TestReaderCRLF verifies Windows line endings are stripped from every line
// of a record, including the quality line (whose length check would
// otherwise fail on the trailing '\r').
func TestReaderCRLF(t *testing.T) {
	in := "@r1 meta\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTT\r\n+\r\nII\r\n"
	out, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("count %d want 2", len(out))
	}
	if out[0].ID != "r1" || string(out[0].Seq) != "ACGT" || len(out[0].Qual) != 4 {
		t.Errorf("CRLF record 1 parsed as %+v", out[0])
	}
	if string(out[1].Seq) != "TT" {
		t.Errorf("CRLF record 2 parsed as %+v", out[1])
	}
}

// TestReaderTruncatedFinalRecord exercises each way the last record of a
// stream can be cut off mid-write.
func TestReaderTruncatedFinalRecord(t *testing.T) {
	prefix := "@ok\nAC\n+\nII\n"
	cases := []struct {
		name, tail string
	}{
		{"header only", "@cut\n"},
		{"no separator", "@cut\nACGT\n"},
		{"no quality", "@cut\nACGT\n+\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(prefix + tc.tail))
			if _, err := r.Next(); err != nil {
				t.Fatalf("intact first record: %v", err)
			}
			if _, err := r.Next(); err == nil || err == io.EOF {
				t.Errorf("truncated record should be a parse error, got %v", err)
			}
		})
	}
}

// TestReaderEmptyQualityLine documents the blank-line policy: empty lines
// are skipped as inter-record padding, so a record whose quality line is
// empty is malformed — the reader must error, never silently mispair
// quality with the wrong record.
func TestReaderEmptyQualityLine(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty quality then EOF", "@r\nACGT\n+\n\n"},
		{"empty quality then next record", "@r\nACGT\n+\n\n@r2\nAC\n+\nII\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewReader(strings.NewReader(tc.in)).Next(); err == nil || err == io.EOF {
				t.Errorf("expected parse error, got %v", err)
			}
		})
	}
}

// nopCloser adapts a bytes.Reader into the io.ReadCloser ChunkReader owns.
type nopCloser struct{ io.Reader }

func (nopCloser) Close() error { return nil }

// TestChunkedRoundTrip streams reads out through the chunked Writer and back
// through ChunkReader at an uneven chunk size, verifying order, content, and
// the short final chunk.
func TestChunkedRoundTrip(t *testing.T) {
	var in []seq.Read
	for i := 0; i < 250; i++ {
		in = append(in, seq.Read{
			ID:   "r" + strings.Repeat("x", i%5),
			Seq:  bytes.Repeat([]byte("ACGT"), 3),
			Qual: bytes.Repeat([]byte{byte(5 + i%40)}, 12),
		})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for lo := 0; lo < len(in); lo += 64 {
		if err := w.WriteChunk(in[lo:min(lo+64, len(in))]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	cr := NewChunkReader(nopCloser{bytes.NewReader(buf.Bytes())}, 100)
	var out []seq.Read
	var sizes []int
	for {
		chunk, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(chunk))
		out = append(out, chunk...)
	}
	if err := cr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 100 || sizes[1] != 100 || sizes[2] != 50 {
		t.Fatalf("chunk sizes = %v want [100 100 50]", sizes)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || !bytes.Equal(out[i].Seq, in[i].Seq) || !bytes.Equal(out[i].Qual, in[i].Qual) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
	// Exhausted reader keeps returning EOF.
	if _, err := cr.Next(); err != io.EOF {
		t.Errorf("after close/EOF: %v", err)
	}
}

// TestChunkReaderPropagatesError ends the stream on the first parse error.
func TestChunkReaderPropagatesError(t *testing.T) {
	in := "@a\nAC\n+\nII\n@bad\nACG\n+\nII\n"
	cr := NewChunkReader(nopCloser{strings.NewReader(in)}, 1)
	if _, err := cr.Next(); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if _, err := cr.Next(); err == nil || err == io.EOF {
		t.Fatalf("expected parse error, got %v", err)
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Errorf("stream should stay ended, got %v", err)
	}
}
