package fastq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/seq"
)

// DefaultChunkSize is the read-batch granularity of the streaming pipeline:
// large enough to keep the sharded spectrum engine's workers busy per Add,
// small enough that a chunk of typical short reads stays in the low
// megabytes.
const DefaultChunkSize = 2048

// ChunkReader adapts a FASTQ stream into fixed-size read chunks — the
// producer side of the out-of-core correction pipeline. It owns the
// underlying ReadCloser and closes it with Close.
type ChunkReader struct {
	r    *Reader
	rc   io.Closer
	size int
	done bool
}

// NewChunkReader wraps rc in a chunked FASTQ reader yielding up to size
// reads per Next (size <= 0 selects DefaultChunkSize).
func NewChunkReader(rc io.ReadCloser, size int) *ChunkReader {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &ChunkReader{r: NewReader(rc), rc: rc, size: size}
}

// Next returns the next chunk of reads. The final chunk may be short; once
// the stream is exhausted Next returns (nil, io.EOF). Any parse error ends
// the stream.
func (cr *ChunkReader) Next() ([]seq.Read, error) {
	if cr.done {
		return nil, io.EOF
	}
	chunk := make([]seq.Read, 0, cr.size)
	for len(chunk) < cr.size {
		rd, err := cr.r.Next()
		if err == io.EOF {
			cr.done = true
			if len(chunk) == 0 {
				return nil, io.EOF
			}
			return chunk, nil
		}
		if err != nil {
			cr.done = true
			return nil, err
		}
		chunk = append(chunk, rd)
	}
	return chunk, nil
}

// Close closes the underlying stream.
func (cr *ChunkReader) Close() error {
	cr.done = true
	return cr.rc.Close()
}

// Writer emits reads incrementally in FASTQ format — the consumer side of
// the streaming pipeline. Callers must Flush once done.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w in a streaming FASTQ writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// WriteRead appends one read. Reads without quality scores get a constant
// placeholder score of 40.
func (w *Writer) WriteRead(rd seq.Read) error {
	if err := rd.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w.bw, "@%s\n%s\n+\n", rd.ID, rd.Seq); err != nil {
		return err
	}
	qual := rd.Qual
	if qual == nil {
		qual = bytes.Repeat([]byte{40}, len(rd.Seq))
	}
	line := make([]byte, len(qual))
	for i, q := range qual {
		if q > MaxQuality {
			q = MaxQuality
		}
		line[i] = q + PhredOffset
	}
	if _, err := w.bw.Write(line); err != nil {
		return err
	}
	return w.bw.WriteByte('\n')
}

// WriteChunk appends a chunk of reads.
func (w *Writer) WriteChunk(reads []seq.Read) error {
	for _, rd := range reads {
		if err := w.WriteRead(rd); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }
