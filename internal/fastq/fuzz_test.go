package fastq

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/seq"
)

// FuzzReaderWriterRoundTrip pins the Reader↔Writer identity on arbitrary
// input: whatever records the Reader accepts, the Writer must re-encode
// into a stream the Reader parses back to the same records — same IDs,
// bases, and quality values. Since the Reader now validates both ends of
// the Phred+33 range at parse time, every accepted quality value is
// representable on write and no silent clamping can break the cycle.
func FuzzReaderWriterRoundTrip(f *testing.F) {
	f.Add([]byte("@r1\nACGT\n+\nIIII\n"))
	f.Add([]byte("@r1 meta\nACGTN\n+\n!!~~J\n@r2\nTT\n+r2\nII\n"))
	f.Add([]byte("@r\nA\n+\n\x7f\n"))    // above Phred+33 range: must be rejected
	f.Add([]byte("@r\nA\n+\n\x1f\n"))    // below Phred+33 range: must be rejected
	f.Add([]byte("\n\n@x\nAC\n\n+\nII")) // blank lines and missing trailing newline
	f.Fuzz(func(t *testing.T, data []byte) {
		var reads []seq.Read
		r := NewReader(bytes.NewReader(data))
		for {
			rd, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed input: rejection is the correct outcome
			}
			for _, q := range rd.Qual {
				if q > MaxQuality {
					t.Fatalf("Reader accepted out-of-range quality %d", q)
				}
			}
			reads = append(reads, rd)
		}
		// Re-encode and re-parse: the records must survive unchanged.
		var buf bytes.Buffer
		if err := Write(&buf, reads); err != nil {
			t.Fatalf("Writer rejected a Reader-accepted record: %v", err)
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-parse of Writer output failed: %v", err)
		}
		if len(got) != len(reads) {
			t.Fatalf("round trip count %d want %d", len(got), len(reads))
		}
		for i, rd := range reads {
			if got[i].ID != rd.ID || !bytes.Equal(got[i].Seq, rd.Seq) || !bytes.Equal(got[i].Qual, rd.Qual) {
				t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], rd)
			}
		}
	})
}
