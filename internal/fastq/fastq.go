// Package fastq reads and writes the FASTQ and FASTA interchange formats
// used throughout next-generation sequencing pipelines. Quality values are
// converted between the on-disk Phred+33 ASCII encoding and the raw Phred
// scores stored on seq.Read.
package fastq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/seq"
)

// PhredOffset is the Sanger/Illumina-1.8 quality character offset.
const PhredOffset = 33

// MaxQuality caps encoded scores so they stay within printable ASCII.
const MaxQuality = 93

// Reader streams reads from a FASTQ file.
type Reader struct {
	s    *bufio.Scanner
	line int
}

// NewReader wraps r in a FASTQ reader.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

// Next returns the next read, or io.EOF when the stream is exhausted.
func (r *Reader) Next() (seq.Read, error) {
	header, err := r.nextLine()
	if err != nil {
		return seq.Read{}, err
	}
	if len(header) == 0 || header[0] != '@' {
		return seq.Read{}, fmt.Errorf("fastq: line %d: header %q does not start with '@'", r.line, header)
	}
	id := string(idToken(header[1:]))
	basesTok, err := r.nextLine()
	if err != nil {
		return seq.Read{}, r.truncated(err)
	}
	// Scanner tokens are invalidated by the next Scan call; copy now.
	bases := append([]byte(nil), basesTok...)
	plus, err := r.nextLine()
	if err != nil {
		return seq.Read{}, r.truncated(err)
	}
	if len(plus) == 0 || plus[0] != '+' {
		return seq.Read{}, fmt.Errorf("fastq: line %d: separator %q does not start with '+'", r.line, plus)
	}
	qual, err := r.nextLine()
	if err != nil {
		return seq.Read{}, r.truncated(err)
	}
	if len(qual) != len(bases) {
		return seq.Read{}, fmt.Errorf("fastq: line %d: %d bases but %d quality characters", r.line, len(bases), len(qual))
	}
	read := seq.Read{
		ID:   id,
		Seq:  bases,
		Qual: make([]byte, len(qual)),
	}
	for i, ch := range qual {
		if ch < PhredOffset {
			return seq.Read{}, fmt.Errorf("fastq: line %d: quality character %q below Phred+33 range", r.line, ch)
		}
		if ch > PhredOffset+MaxQuality {
			return seq.Read{}, fmt.Errorf("fastq: line %d: quality character %q above Phred+33 range (max %q)", r.line, ch, byte(PhredOffset+MaxQuality))
		}
		read.Qual[i] = ch - PhredOffset
	}
	return read, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]seq.Read, error) {
	var out []seq.Read
	for {
		rd, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rd)
	}
}

func (r *Reader) truncated(err error) error {
	if err == io.EOF {
		return fmt.Errorf("fastq: line %d: truncated record", r.line)
	}
	return err
}

func (r *Reader) nextLine() ([]byte, error) {
	for r.s.Scan() {
		r.line++
		line := bytes.TrimRight(r.s.Bytes(), "\r\n")
		if len(line) == 0 {
			continue
		}
		return line, nil
	}
	if err := r.s.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

func idToken(header []byte) []byte {
	if i := bytes.IndexByte(header, ' '); i >= 0 {
		return header[:i]
	}
	return header
}

// Write emits reads in FASTQ format. Reads without quality scores get a
// constant placeholder score of 40. It is the one-shot form of Writer.
func Write(w io.Writer, reads []seq.Read) error {
	fw := NewWriter(w)
	if err := fw.WriteChunk(reads); err != nil {
		return err
	}
	return fw.Flush()
}

// FastaRecord is a named sequence from a FASTA file.
type FastaRecord struct {
	ID  string
	Seq []byte
}

// ReadFasta parses an entire FASTA stream.
func ReadFasta(r io.Reader) ([]FastaRecord, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []FastaRecord
	var cur *FastaRecord
	line := 0
	for s.Scan() {
		line++
		text := bytes.TrimSpace(s.Bytes())
		if len(text) == 0 {
			continue
		}
		if text[0] == '>' {
			out = append(out, FastaRecord{ID: string(idToken(text[1:]))})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fasta: line %d: sequence data before first header", line)
		}
		cur.Seq = append(cur.Seq, text...)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFasta emits records with 70-column line wrapping.
func WriteFasta(w io.Writer, recs []FastaRecord) error {
	const width = 70
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.ID); err != nil {
			return err
		}
		for i := 0; i < len(rec.Seq); i += width {
			end := min(i+width, len(rec.Seq))
			if _, err := bw.Write(rec.Seq[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
