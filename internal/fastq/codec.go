package fastq

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/seq"
)

// Chunk encode/decode over byte streams — the wire format of the
// correction service (cmd/kserve): request and response bodies are plain
// FASTQ, so any client that can write reads to a file can talk to the
// daemon with curl.

// ErrChunkTooLarge is wrapped by DecodeChunk when the input exceeds the
// read cap, so a service endpoint can map it to a size-specific status.
var ErrChunkTooLarge = errors.New("fastq: chunk exceeds read limit")

// DecodeChunk parses one bounded chunk of FASTQ records from r. maxReads
// caps the record count (0 = unbounded); an input exceeding the cap is
// rejected rather than truncated, so a service endpoint can enforce a
// request-size limit without silently correcting half a chunk.
func DecodeChunk(r io.Reader, maxReads int) ([]seq.Read, error) {
	fr := NewReader(r)
	var out []seq.Read
	for {
		rd, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if maxReads > 0 && len(out) >= maxReads {
			return nil, fmt.Errorf("%w (%d reads)", ErrChunkTooLarge, maxReads)
		}
		out = append(out, rd)
	}
}

// EncodeChunk renders reads as FASTQ bytes — the response-body side of
// DecodeChunk. EncodeChunk(DecodeChunk(b)) reproduces any well-formed b
// (the Reader↔Writer identity of fuzz_test.go).
func EncodeChunk(reads []seq.Read) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, reads); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
