// Package reptile implements Reptile (Chapter 2): short-read error
// correction by representative tiling. Reads are decomposed into tiles —
// l-concatenations of two kmers — and each tile is validated or corrected by
// comparing its high-quality occurrence count against the counts of its
// d-mutant tiles, retrieved through the Hamming-neighborhood index of the
// kspectrum package. Flexible tile placement (Algorithm 2's decisions
// D1–D3) routes the tiling around clusters of more than d errors, and a
// second pass over the reverse complement applies the same strategy in the
// 3'→5' direction.
package reptile

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/kspectrum"
	"repro/internal/seq"
)

// Params are Reptile's tuning parameters (§2.3 "Choosing Parameters").
type Params struct {
	K       int // kmer length; dlog4 |G|e when genome size is known
	D       int // maximum Hamming distance per constituent kmer (default 1)
	Overlap int // l, the overlap between a tile's two kmers (default 0)
	C       int // chunk count for the neighborhood index (d < C <= K)

	Cg uint32  // tiles with Og >= Cg are automatically valid
	Cm uint32  // minimum occurrence for low-frequency validation
	Cr float64 // required ratio Og(t')/Og(t) for a correction (default 2)
	Qc byte    // quality threshold defining high-quality occurrences Og
	Qm byte    // a correction must touch at least one base with q < Qm

	// DefaultBase replaces ambiguous bases before correction (§2.4).
	DefaultBase byte
	// MaxNPerWindow is the ambiguous-base density constraint: an N is
	// converted only if every K-window containing it has at most this many
	// ambiguous bases (defaults to D).
	MaxNPerWindow int

	// Spectrum, when non-nil, is a preloaded k-spectrum (typically from
	// kspectrum.ReadSpectrumFile): Phase 1 skips kmer counting entirely
	// and uses it as-is, leaving only the (much cheaper) tile counting on
	// the build pass. It must match K and have been built from both
	// strands — the corrector's reverse-complement pass depends on the
	// spectrum being RC-closed.
	Spectrum *kspectrum.Spectrum
	// Build configures the sharded parallel spectrum engine of Phase 1;
	// the zero value selects full parallelism (see kspectrum.BuildOptions).
	Build kspectrum.BuildOptions
	// MemoryBudget, when positive, routes Phase 1's spectrum accumulation
	// through the out-of-core engine (kspectrum.StreamBuilder): shard
	// accumulators exceeding their slice of the budget spill to sorted run
	// files and are merged back in Finish. The resulting spectrum is
	// byte-identical to the in-memory path. Tile counts stay in memory
	// (they are a small multiple of the distinct-tile count).
	MemoryBudget int64
	// TempDir hosts the spill files ("" = os.TempDir()).
	TempDir string
	// CheckpointDir, when set, routes Phase 1 through the out-of-core
	// engine in crash-safe mode: spectrum runs and a read-cursor manifest
	// persist in this directory, and Resume continues a killed build from
	// its newest checkpoint. Tile counts are cheap and always rebuilt
	// over the full input (Add feeds them unconditionally), so only the
	// expensive kmer counting skips ahead. Ignored when Spectrum is
	// preloaded.
	CheckpointDir string
	// Resume adopts the manifest already in CheckpointDir.
	Resume bool
	// CheckpointEvery is the read interval between automatic checkpoints
	// (<= 0 = the kspectrum default).
	CheckpointEvery int64
}

// DefaultParams derives parameters from the data per §2.3: Qc at the
// 15-20% quality quantile, Cg and Cm from the tile occurrence histogram,
// and k from the genome length estimate when available (0 = unknown).
func DefaultParams(reads []seq.Read, genomeLen int) Params {
	p := Params{D: 1, Overlap: 0, Cr: 2, DefaultBase: 'A'}
	p.K = 12
	if genomeLen > 0 {
		k := 1
		for n := 4; n < genomeLen; n *= 4 {
			k++
		}
		p.K = min(max(k, 10), 15)
	}
	p.C = min(p.K, p.D+4)
	p.Qc = kspectrum.QualityQuantile(reads, 0.17)
	p.Qm = p.Qc + 15 // corrections may touch anything but very confident bases
	p.MaxNPerWindow = p.D
	return p
}

func (p Params) validate() error {
	if p.K <= 0 || 2*p.K-p.Overlap > seq.MaxK {
		return fmt.Errorf("reptile: invalid k=%d overlap=%d", p.K, p.Overlap)
	}
	if p.D < 0 || p.D >= p.K {
		return fmt.Errorf("reptile: invalid d=%d", p.D)
	}
	if p.C <= p.D || p.C > p.K {
		return fmt.Errorf("reptile: need d < c <= k, got c=%d", p.C)
	}
	if p.Cr <= 1 {
		return fmt.Errorf("reptile: Cr must exceed 1, got %v", p.Cr)
	}
	if p.Spectrum != nil {
		if p.Spectrum.K != p.K {
			return fmt.Errorf("reptile: preloaded spectrum has k=%d but params want k=%d", p.Spectrum.K, p.K)
		}
		if !p.Spectrum.BothStrands {
			return fmt.Errorf("reptile: preloaded spectrum was not built from both strands")
		}
	}
	return nil
}

// Corrector holds the Phase-1 information extraction products (§2.3):
// the k-spectrum, the Hamming-neighborhood index, and the tile counts.
//
// Spectrum queries go through the backend/neigh seam: hand-built
// Correctors (tests, the batch pipeline) fill only Spec and NI and the
// seam self-wires from them on first use (ensureQuerier); the service
// path can instead plug any kspectrum.SpectrumBackend + NeighborSource
// pair — in particular a remote, sharded spectrum — leaving Spec nil.
type Corrector struct {
	P     Params
	Spec  *kspectrum.Spectrum
	NI    *kspectrum.NeighborIndex
	Tiles *kspectrum.TileSet

	// backend and neigh are the pluggable query seam. When nil they are
	// derived from Spec and NI before the first correction.
	backend kspectrum.SpectrumBackend
	neigh   kspectrum.NeighborSource
}

// ensureQuerier wires the query seam from the legacy Spec/NI fields when
// the caller did not supply one. It runs at every single-threaded entry
// point, before worker pools fork, so the written fields are safely
// published to the workers.
func (c *Corrector) ensureQuerier() {
	if c.neigh == nil {
		c.neigh = kspectrum.LocalNeighbors(c.Spec, c.NI)
	}
	if c.backend == nil && c.Spec != nil {
		c.backend = kspectrum.Local(c.Spec)
	}
}

// New runs Phase 1 over the read set. Parameter thresholds Cg and Cm are
// filled from the tile histogram when left at zero.
func New(reads []seq.Read, p Params) (*Corrector, error) {
	b, err := NewBuilder(p)
	if err != nil {
		return nil, err
	}
	b.Add(reads)
	return b.Finish()
}

// Builder accumulates Phase 1 (k-spectrum and tile counts) over read chunks
// — the §2.3 divide-and-merge strategy for inputs that do not fit in main
// memory: stream each chunk through Add, discard it, and call Finish once.
type Builder struct {
	p      Params
	sb     *kspectrum.SpectrumBuilder
	stream *kspectrum.StreamBuilder // out-of-core path when MemoryBudget > 0
	tiles  *kspectrum.TileSet
}

// NewBuilder validates the parameters and prepares an empty accumulator.
// A positive Params.MemoryBudget or a CheckpointDir selects the
// out-of-core engine.
func NewBuilder(p Params) (*Builder, error) {
	return newBuilderCtx(context.Background(), p)
}

// newBuilderCtx threads a context into the out-of-core machinery so a
// cancelled streaming run aborts its spill and merge loops.
func newBuilderCtx(ctx context.Context, p Params) (*Builder, error) {
	if p.DefaultBase == 0 {
		p.DefaultBase = 'A'
	}
	if p.MaxNPerWindow == 0 {
		p.MaxNPerWindow = p.D
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	b := &Builder{p: p}
	var err error
	switch {
	case p.Spectrum != nil:
		// Preloaded spectrum: no kmer accumulator at all — Add feeds only
		// the tile counts and Finish adopts the spectrum directly.
	case p.MemoryBudget > 0 || p.CheckpointDir != "":
		b.stream, err = kspectrum.NewStreamBuilder(p.K, true, kspectrum.StreamOptions{
			Build: p.Build, MemoryBudget: p.MemoryBudget, TempDir: p.TempDir,
			CheckpointDir: p.CheckpointDir, Resume: p.Resume,
			CheckpointEvery: p.CheckpointEvery, Context: ctx,
		})
	default:
		b.sb, err = kspectrum.NewSpectrumBuilder(p.K, true, p.Build)
	}
	if err != nil {
		return nil, err
	}
	b.tiles, err = kspectrum.CountTiles(nil, p.K, p.Overlap, p.Qc)
	if err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// Close abandons the builder, reclaiming any out-of-core spill files. It is
// a no-op after Finish (which consumes them) and on the in-memory path, so
// deferring it is always safe.
func (b *Builder) Close() error {
	if b.stream != nil {
		return b.stream.Close()
	}
	return nil
}

// Add streams one chunk of reads into the Phase 1 accumulators. Ambiguous
// bases are pre-converted per §2.4, so the spectrum contains the tiles the
// corrector will query; the chunk may be released afterwards.
func (b *Builder) Add(reads []seq.Read) {
	prepared := make([]seq.Read, len(reads))
	for i, r := range reads {
		prepared[i] = prepareRead(r, b.p)
	}
	switch {
	case b.stream != nil:
		b.stream.Add(prepared)
	case b.sb != nil:
		b.sb.Add(prepared)
	}
	b.tiles.Add(prepared)
}

// Finish builds the neighborhood index and derives the occurrence
// thresholds, producing the ready-to-use Corrector.
func (b *Builder) Finish() (*Corrector, error) {
	p := b.p
	var spec *kspectrum.Spectrum
	switch {
	case p.Spectrum != nil:
		spec = p.Spectrum
	case b.stream != nil:
		var err error
		spec, err = b.stream.Build()
		if err != nil {
			return nil, err
		}
	default:
		spec = b.sb.Build()
	}
	ni, err := kspectrum.NewNeighborIndex(spec, p.D, p.C)
	if err != nil {
		return nil, err
	}
	cg, cm := deriveThresholds(b.tiles)
	if p.Cg == 0 {
		p.Cg = cg
	}
	if p.Cm == 0 {
		p.Cm = cm
	}
	return &Corrector{P: p, Spec: spec, NI: ni, Tiles: b.tiles}, nil
}

// deriveThresholds picks Cm and Cg from the Og histogram of distinct tiles,
// following the empirical selection of §2.3: distinct tiles are dominated by
// erroneous singletons, so the histogram shows an error spike at low counts,
// a valley, and a coverage peak for genuine tiles. Cm sits at the valley and
// Cg between the valley and the peak.
func deriveThresholds(tiles *kspectrum.TileSet) (cg, cm uint32) {
	const maxBin = 255
	h := tiles.OgHistogram(maxBin)
	// Smooth lightly to stabilize valley detection on small datasets.
	sm := make([]float64, len(h))
	for i := range h {
		sum, n := 0.0, 0.0
		for j := max(0, i-1); j <= min(len(h)-1, i+1); j++ {
			sum += float64(h[j])
			n++
		}
		sm[i] = sum / n
	}
	// Locate the coverage peak: the maximum after the error spike's decay.
	// Skip bins 0..2, which belong to the error mass by construction.
	peak := 3
	for i := 4; i < len(sm); i++ {
		if sm[i] > sm[peak] {
			peak = i
		}
	}
	// Valley: the minimum between the spike and the peak.
	valley := 1
	for i := 2; i <= peak; i++ {
		if sm[i] < sm[valley] {
			valley = i
		}
	}
	cm = uint32(max(valley, 2))
	cg = uint32(max((valley+peak)/2, int(cm)+2))
	return cg, cm
}

// prepareRead clones the read and converts its correctable ambiguous
// bases; correction operates on the copy.
func prepareRead(r seq.Read, p Params) seq.Read {
	out := r.Clone()
	convertAmbiguous(out.Seq, out.Qual, p)
	return out
}

// convertAmbiguous converts correctable ambiguous bases to the default base
// in place (validated or corrected later by the algorithm) and leaves dense
// clusters of Ns untouched (§2.4).
func convertAmbiguous(bases, qual []byte, p Params) {
	w := p.K
	for i, ch := range bases {
		if !seq.IsAmbiguous(ch) {
			continue
		}
		// Check every w-window containing position i.
		convertible := true
		lo := max(0, i-w+1)
		hi := min(i, len(bases)-w)
		for start := lo; start <= hi; start++ {
			n := 0
			for j := start; j < start+w; j++ {
				if seq.IsAmbiguous(bases[j]) {
					n++
				}
			}
			if n > p.MaxNPerWindow {
				convertible = false
				break
			}
		}
		if convertible {
			bases[i] = p.DefaultBase
			if qual != nil {
				qual[i] = 0 // force the base to be correctable
			}
		}
	}
}

// decision is the outcome of Algorithm 1 on one tile.
type decision int

const (
	decValid decision = iota
	decCorrected
	decInsufficient
)

// mutantTile is a candidate replacement tile.
type mutantTile struct {
	a, b seq.Kmer
	og   uint32
	hd   int
}

// scratch holds the per-goroutine buffers of the correction inner loop.
// Every slice is reused across tiles and reads, so steady-state correction
// performs no allocations: mutant candidates, the two kmer neighborhoods,
// the unpacked replacement tile, and the reverse-complement pass buffers
// all live here. CorrectAll and CorrectStream hand each worker its own
// scratch; CorrectRead draws one from a pool.
type scratch struct {
	mutants []mutantTile
	sel     []mutantTile // dominating/strong candidates of the current tile
	best    []mutantTile // minimum-Hamming subset of sel
	na, nb  []seq.Kmer   // d-neighborhoods of the two constituent kmers
	tile    []byte       // unpacked replacement tile
	rcSeq   []byte       // reverse-complement pass: bases
	rcQual  []byte       // reverse-complement pass: qualities

	// err records the first backend failure seen by this worker. Local
	// backends never fail; a remote one can, and a failed neighborhood
	// must abort the run rather than silently correct against an
	// incomplete candidate set.
	err error
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// correctTile is Algorithm 1. bases/qual give the tile's current content and
// per-base qualities at read offset pos; d1 and d2 bound the search distance
// of the two constituent kmers. On decCorrected, the replacement is written
// into bases.
func (c *Corrector) correctTile(bases, qual []byte, pos int, d1, d2 int, s *scratch) decision {
	p := c.P
	step := p.K - p.Overlap
	a, okA := seq.Pack(bases[pos:], p.K)
	b, okB := seq.Pack(bases[pos+step:], p.K)
	if !okA || !okB {
		return decInsufficient // residual ambiguous bases block this tile
	}
	tile := c.Tiles.PackTile(a, b)
	og := c.Tiles.Get(tile).Og
	if og >= p.Cg {
		return decValid // line 1-2: overwhelming support
	}
	mutants := c.mutantTiles(a, b, d1, d2, s)
	if len(mutants) == 0 {
		if og >= p.Cm {
			return decValid // line 4-6
		}
		return decInsufficient // line 8
	}
	if og >= p.Cm {
		// Line 11: keep only strongly dominating mutants.
		sel := s.sel[:0]
		for _, m := range mutants {
			if float64(m.og) >= p.Cr*float64(og) {
				sel = append(sel, m)
			}
		}
		s.sel = sel
		if len(sel) == 0 {
			return decValid // line 12
		}
		best := closestInto(sel, s)
		if len(best) != 1 {
			return decInsufficient // line 15: ambiguous
		}
		if !c.applyIfLowQuality(bases, qual, pos, best[0], s) {
			return decInsufficient
		}
		return decCorrected // line 14
	}
	// Lines 17-21: very low multiplicity tile.
	strong := s.sel[:0]
	for _, m := range mutants {
		if m.og >= p.Cm {
			strong = append(strong, m)
		}
	}
	s.sel = strong
	if len(strong) == 1 {
		c.apply(bases, pos, strong[0], s)
		return decCorrected
	}
	return decInsufficient
}

// mutantTiles enumerates the observed d-mutant tiles of (a,b), excluding the
// tile itself (Definition 2.2 with the overlap-consistency constraint),
// into the scratch mutant buffer. The candidate kmers arrive by value in
// ascending order from either neighborhood source, so the enumeration —
// and every downstream decision — is identical for local and remote
// backends.
func (c *Corrector) mutantTiles(a, b seq.Kmer, d1, d2 int, s *scratch) []mutantTile {
	p := c.P
	s.na = c.hood(a, d1, s.na[:0], s)
	s.nb = c.hood(b, d2, s.nb[:0], s)
	na, nb := s.na, s.nb
	out := s.mutants[:0]
	for _, ka := range na {
		for _, kb := range nb {
			if ka == a && kb == b {
				continue
			}
			if p.Overlap > 0 && !overlapConsistent(ka, kb, p.K, p.Overlap) {
				continue
			}
			tc := c.Tiles.Get(c.Tiles.PackTile(ka, kb))
			if tc.Oc == 0 {
				continue
			}
			hd := seq.HammingKmer(a, ka, p.K) + seq.HammingKmer(b, kb, p.K)
			out = append(out, mutantTile{a: ka, b: kb, og: tc.Og, hd: hd})
		}
	}
	s.mutants = out
	return out
}

// hood appends the spectrum kmers within distance d of km to dst through
// the neighborhood seam, recording the first failure in the scratch.
func (c *Corrector) hood(km seq.Kmer, d int, dst []seq.Kmer, s *scratch) []seq.Kmer {
	out, err := c.neigh.Neighborhood(km, d, dst)
	if err != nil && s.err == nil {
		s.err = err
	}
	return out
}

// overlapConsistent checks that the last l bases of ka equal the first l of kb.
func overlapConsistent(ka, kb seq.Kmer, k, l int) bool {
	suffix := ka & (seq.Kmer(1)<<(2*uint(l)) - 1)
	prefix := kb >> (2 * uint(k-l))
	return suffix == prefix
}

// closestInto collects the mutants achieving the minimum Hamming distance
// into the scratch best buffer.
func closestInto(ms []mutantTile, s *scratch) []mutantTile {
	best := ms[0].hd
	for _, m := range ms[1:] {
		if m.hd < best {
			best = m.hd
		}
	}
	out := s.best[:0]
	for _, m := range ms {
		if m.hd == best {
			out = append(out, m)
		}
	}
	s.best = out
	return out
}

// applyIfLowQuality writes the replacement only if at least one changed base
// has quality below Qm (Algorithm 1 line 14 condition 2); reads without
// quality information are always correctable.
func (c *Corrector) applyIfLowQuality(bases, qual []byte, pos int, m mutantTile, s *scratch) bool {
	p := c.P
	repl := c.tileBytes(m, s)
	if qual != nil {
		touchedLow := false
		for i := range repl {
			if bases[pos+i] != repl[i] && qual[pos+i] < p.Qm {
				touchedLow = true
				break
			}
		}
		if !touchedLow {
			return false
		}
	}
	copy(bases[pos:], repl)
	return true
}

func (c *Corrector) apply(bases []byte, pos int, m mutantTile, s *scratch) {
	copy(bases[pos:], c.tileBytes(m, s))
}

// tileBytes unpacks the replacement tile into the scratch tile buffer.
func (c *Corrector) tileBytes(m mutantTile, s *scratch) []byte {
	s.tile = c.Tiles.PackTile(m.a, m.b).UnpackInto(s.tile, c.Tiles.TileLen)
	return s.tile
}

// CorrectRead is Algorithm 2: it walks a tiling across the read in the
// 5'→3' direction, then repeats on the reverse complement to cover the
// 3'→5' direction, and returns the corrected read. Beyond the corrected
// copy itself it allocates nothing: the inner loop runs entirely on pooled
// scratch buffers (see CorrectInPlace for the fully allocation-free form).
func (c *Corrector) CorrectRead(r seq.Read) seq.Read {
	c.ensureQuerier()
	s := scratchPool.Get().(*scratch)
	s.err = nil
	out := c.correctRead(r, s)
	scratchPool.Put(s)
	return out
}

func (c *Corrector) correctRead(r seq.Read, s *scratch) seq.Read {
	out := prepareRead(r, c.P)
	c.correctInPlace(out.Seq, out.Qual, s)
	return out
}

// CorrectInPlace corrects a read's bases in place (mutating bases and,
// for converted ambiguous positions, qual) — the zero-allocation form of
// CorrectRead for callers that own their buffers. qual may be nil.
//
//repro:noalloc
func (c *Corrector) CorrectInPlace(bases, qual []byte) {
	c.ensureQuerier()
	s := scratchPool.Get().(*scratch)
	s.err = nil
	convertAmbiguous(bases, qual, c.P)
	c.correctInPlace(bases, qual, s)
	scratchPool.Put(s)
}

// correctInPlace runs both tiling passes over prepared bases using the
// scratch buffers: the 5'→3' walk directly, then the 3'→5' walk on a
// reverse complement staged in s.rcSeq/s.rcQual and folded back.
func (c *Corrector) correctInPlace(bases, qual []byte, s *scratch) {
	if len(bases) < c.Tiles.TileLen {
		return
	}
	c.correctPass(bases, qual, s)
	// 3'→5' pass on the reverse complement; the spectrum and tile counts
	// are reverse-complement closed, so the same structures serve.
	s.rcSeq = seq.ReverseComplementInto(s.rcSeq, bases)
	var rcQual []byte
	if qual != nil {
		if cap(s.rcQual) < len(qual) {
			s.rcQual = make([]byte, len(qual))
		}
		s.rcQual = s.rcQual[:len(qual)]
		for i, q := range qual {
			s.rcQual[len(qual)-1-i] = q
		}
		rcQual = s.rcQual
	}
	c.correctPass(s.rcSeq, rcQual, s)
	seq.ReverseComplementInto(bases, s.rcSeq)
}

// correctPass runs the tiling walk in place over one orientation.
func (c *Corrector) correctPass(bases, qual []byte, s *scratch) {
	p := c.P
	tileLen := c.Tiles.TileLen
	step := p.K - p.Overlap
	pos := 0
	d1 := p.D
	retried := false
	for pos+tileLen <= len(bases) {
		if s.err != nil {
			// A backend failure poisons the run: stop deciding against
			// incomplete neighborhoods; the caller discards the output.
			return
		}
		dec := c.correctTile(bases, qual, pos, d1, p.D, s)
		switch dec {
		case decValid, decCorrected:
			retried = false
			if pos+tileLen == len(bases) {
				return
			}
			next := pos + step
			if next+tileLen > len(bases) {
				// [D1]/[D2] end handling: the final tile is the read suffix.
				next = len(bases) - tileLen
				if next == pos {
					return
				}
				d1 = p.D // suffix tile is not anchored on a validated kmer
			} else {
				d1 = 0 // the leading kmer was just validated/corrected
			}
			pos = next
		default:
			if !retried && pos+1+tileLen <= len(bases) {
				// [D3a]: alternative placement shifted by one base with a
				// d=1 budget on the re-anchored leading kmer.
				retried = true
				pos++
				d1 = min(1, p.D)
				continue
			}
			// [D3b]: skip past the dead-end region, leaving an
			// unvalidated gap, and restart with the full budget.
			retried = false
			pos += tileLen
			d1 = p.D
		}
	}
}

// CorrectAll corrects every read using `workers` goroutines (1 = serial).
// The input reads are not modified. Each worker owns one scratch for its
// whole read range, so the per-read cost is the output copy alone.
func (c *Corrector) CorrectAll(reads []seq.Read, workers int) []seq.Read {
	out, _ := c.CorrectAllCtx(context.Background(), reads, workers)
	return out
}

// cancelPollMask is the read-count stride at which correction workers
// poll the context: frequent enough that cancellation lands well inside a
// chunk, sparse enough to stay invisible next to per-read correction
// cost.
const cancelPollMask = 63

// CorrectAllCtx is CorrectAll under a context: every worker polls ctx
// every few dozen reads and the pool drains promptly once it is
// cancelled, returning (nil, ctx.Err()). All workers have exited by the
// time it returns — cancellation leaks no goroutines.
func (c *Corrector) CorrectAllCtx(ctx context.Context, reads []seq.Read, workers int) ([]seq.Read, error) {
	c.ensureQuerier()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	done := ctx.Done()
	out := make([]seq.Read, len(reads))
	if workers == 1 {
		var s scratch
		for i, r := range reads {
			if i&cancelPollMask == 0 && canceled(done) {
				return nil, ctx.Err()
			}
			out[i] = c.correctRead(r, &s)
			if s.err != nil {
				return nil, s.err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(reads) + workers - 1) / workers
	nw := (len(reads) + chunk - 1) / chunk
	errs := make([]error, nw)
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(reads))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var s scratch
			for i := lo; i < hi; i++ {
				if (i-lo)&cancelPollMask == 0 && canceled(done) {
					return
				}
				out[i] = c.correctRead(reads[i], &s)
				if s.err != nil {
					errs[w] = s.err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// canceled is the non-blocking poll of a context's done channel (nil for
// context.Background, where the select always takes the default arm).
func canceled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
