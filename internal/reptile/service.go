package reptile

import (
	"context"
	"fmt"

	"repro/internal/kspectrum"
	"repro/internal/seq"
)

// Service is the correction-as-a-service form of Reptile: one spectrum
// and one Hamming-neighborhood index, built once, shared read-only across
// many independent correction requests. Per request only the cheap,
// chunk-local state is computed — tile counts and the data-derived
// thresholds (Qc, Cg, Cm) over the request's reads — so a long-lived
// daemon (cmd/kserve) amortizes the expensive Phase-1 products across its
// whole lifetime.
//
// CorrectChunk is safe for concurrent use: the shared spectrum and index
// are never written after New, and everything else is request-local.
type Service struct {
	p    Params
	spec *kspectrum.Spectrum
	ni   *kspectrum.NeighborIndex

	// backend and neigh are the query seam handed to every per-request
	// Corrector. For a local service they wrap spec/ni; a distributed
	// service (NewServiceBackend) carries a remote pair and leaves
	// spec/ni nil.
	backend kspectrum.SpectrumBackend
	neigh   kspectrum.NeighborSource
}

// NewService validates the parameters against the preloaded spectrum and
// builds the shared neighborhood index. A zero p.K adopts the spectrum's
// k; zero D/C/Cr take the package defaults. Parameters that are derived
// from read data when left zero (Qc, Cg, Cm) stay zero here and are
// derived per chunk instead.
func NewService(spec *kspectrum.Spectrum, p Params) (*Service, error) {
	if spec == nil {
		return nil, fmt.Errorf("reptile: service needs a spectrum")
	}
	if p.K == 0 {
		p.K = spec.K
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.C == 0 {
		p.C = min(p.K, p.D+4)
	}
	if p.Cr == 0 {
		p.Cr = 2
	}
	if p.DefaultBase == 0 {
		p.DefaultBase = 'A'
	}
	if p.MaxNPerWindow == 0 {
		p.MaxNPerWindow = p.D
	}
	// An explicit Qc with Qm left zero would make applyIfLowQuality's
	// "quality below Qm" condition unsatisfiable and silently suppress
	// every correction; pair them like DefaultParams does.
	if p.Qc != 0 && p.Qm == 0 {
		p.Qm = p.Qc + 15
	}
	p.Spectrum = spec
	if err := p.validate(); err != nil {
		return nil, err
	}
	// A memory-mapped spectrum keeps service construction instant: the
	// replica sorts (and the deferred whole-file check they trigger)
	// materialize on the first request that needs a neighborhood, not at
	// registration. Copied spectra keep the historical eager build, so a
	// daemon's first request pays no index-build latency.
	var ni *kspectrum.NeighborIndex
	var err error
	if spec.Mapped() {
		ni, err = kspectrum.NewNeighborIndexLazy(spec, p.D, p.C)
	} else {
		ni, err = kspectrum.NewNeighborIndex(spec, p.D, p.C)
	}
	if err != nil {
		return nil, err
	}
	return &Service{
		p: p, spec: spec, ni: ni,
		backend: kspectrum.Local(spec),
		neigh:   kspectrum.LocalNeighbors(spec, ni),
	}, nil
}

// NewServiceBackend is NewService over the pluggable query seam: the
// spectrum lives behind b (typically a remote shard router) and
// d-neighborhoods come from neigh, so the service holds no local columns
// at all. p.K must be zero (adopt the backend's k) or agree with it; the
// backend must answer for both strands — the corrector's
// reverse-complement pass depends on an RC-closed spectrum, and backends
// exposing a BothStrands() accessor are checked for it.
func NewServiceBackend(b kspectrum.SpectrumBackend, neigh kspectrum.NeighborSource, p Params) (*Service, error) {
	if b == nil || neigh == nil {
		return nil, fmt.Errorf("reptile: service backend needs a SpectrumBackend and a NeighborSource")
	}
	if spec := kspectrum.Unwrap(b); spec != nil {
		// A local backend keeps the richer local path (lazy NI choice,
		// full validation) — the seam costs nothing when the data is here.
		return NewService(spec, p)
	}
	if p.K == 0 {
		p.K = b.K()
	} else if p.K != b.K() {
		return nil, fmt.Errorf("reptile: params want k=%d but backend has k=%d", p.K, b.K())
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.C == 0 {
		p.C = min(p.K, p.D+4)
	}
	if p.Cr == 0 {
		p.Cr = 2
	}
	if p.DefaultBase == 0 {
		p.DefaultBase = 'A'
	}
	if p.MaxNPerWindow == 0 {
		p.MaxNPerWindow = p.D
	}
	if p.Qc != 0 && p.Qm == 0 {
		p.Qm = p.Qc + 15
	}
	if bs, ok := b.(interface{ BothStrands() bool }); ok && !bs.BothStrands() {
		return nil, fmt.Errorf("reptile: backend spectrum was not built from both strands")
	}
	// validate() with Spectrum nil checks the scalar parameters only.
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Service{p: p, backend: b, neigh: neigh}, nil
}

// Params returns the service's resolved parameter block (request-derived
// fields still zero).
func (s *Service) Params() Params { return s.p }

// Spectrum returns the shared spectrum (nil for a backend-only service).
func (s *Service) Spectrum() *kspectrum.Spectrum { return s.spec }

// Backend returns the service's spectrum query backend.
func (s *Service) Backend() kspectrum.SpectrumBackend { return s.backend }

// CorrectChunk corrects one independent chunk of reads with `workers`
// goroutines and returns the corrected copies plus the fully-resolved
// corrector used (exposing the thresholds derived for this chunk). The
// input reads are not modified. Unlike the batch pipeline — where tile
// counts aggregate over the whole input — tile support here comes from
// the request chunk alone, the service trade-off that keeps requests
// independent.
func (s *Service) CorrectChunk(reads []seq.Read, workers int) ([]seq.Read, *Corrector, error) {
	return s.CorrectChunkCtx(context.Background(), reads, workers)
}

// CorrectChunkCtx is CorrectChunk under a context: a cancelled ctx drains
// the correction worker pool promptly and returns ctx.Err(), so a
// dropped request aborts its correction work.
func (s *Service) CorrectChunkCtx(ctx context.Context, reads []seq.Read, workers int) ([]seq.Read, *Corrector, error) {
	p := s.p
	if p.Qc == 0 {
		p.Qc = kspectrum.QualityQuantile(reads, 0.17)
		p.Qm = p.Qc + 15
	}
	tiles, err := kspectrum.CountTiles(nil, p.K, p.Overlap, p.Qc)
	if err != nil {
		return nil, nil, err
	}
	prepared := make([]seq.Read, len(reads))
	for i, r := range reads {
		prepared[i] = prepareRead(r, p)
	}
	tiles.Add(prepared)
	cg, cm := deriveThresholds(tiles)
	if p.Cg == 0 {
		p.Cg = cg
	}
	if p.Cm == 0 {
		p.Cm = cm
	}
	c := &Corrector{P: p, Spec: s.spec, NI: s.ni, Tiles: tiles, backend: s.backend, neigh: s.neigh}
	// A remote backend's shard round trips must die with this request:
	// bind its queries (and the neighborhood seam, which for a remote
	// service is the same object) to ctx so the daemon's deadline and
	// client disconnects cancel in-flight fan-outs instead of letting
	// retries hold a correction slot long past cancellation.
	if cb, ok := s.backend.(kspectrum.ContextBinder); ok {
		c.backend = cb.BindContext(ctx)
	}
	if cb, ok := s.neigh.(kspectrum.ContextBinder); ok {
		if bn, ok := cb.BindContext(ctx).(kspectrum.NeighborSource); ok {
			c.neigh = bn
		}
	}
	out, err := c.CorrectAllCtx(ctx, reads, workers)
	if err != nil {
		return nil, nil, err
	}
	return out, c, nil
}
