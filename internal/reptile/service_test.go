package reptile

import (
	"bytes"
	"testing"

	"repro/internal/kspectrum"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func serviceFixture(t *testing.T) ([]seq.Read, *kspectrum.Spectrum) {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 8000, ReadLen: 36, Coverage: 30,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	spec, err := kspectrum.Build(reads, 12, true)
	if err != nil {
		t.Fatal(err)
	}
	return reads, spec
}

// TestServiceMatchesBatchOnFullCorpus: when the request chunk is the whole
// corpus, the service (preloaded spectrum + shared index, chunk-derived
// tiles and thresholds) must reproduce the batch corrector byte for byte —
// the same inputs flow into the same Algorithm 1/2.
func TestServiceMatchesBatchOnFullCorpus(t *testing.T) {
	reads, spec := serviceFixture(t)

	svc, err := NewService(spec, Params{D: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, c, err := svc.CorrectChunk(reads, 2)
	if err != nil {
		t.Fatal(err)
	}

	p := DefaultParams(reads, 8000)
	p.K = spec.K
	p.C = min(p.K, p.D+4)
	batch, err := New(reads, p)
	if err != nil {
		t.Fatal(err)
	}
	want := batch.CorrectAll(reads, 1)

	if c.P.Cg != batch.P.Cg || c.P.Cm != batch.P.Cm || c.P.Qc != batch.P.Qc {
		t.Fatalf("derived thresholds diverge: service (Cg=%d Cm=%d Qc=%d) batch (Cg=%d Cm=%d Qc=%d)",
			c.P.Cg, c.P.Cm, c.P.Qc, batch.P.Cg, batch.P.Cm, batch.P.Qc)
	}
	changed := 0
	for i := range want {
		if !bytes.Equal(got[i].Seq, want[i].Seq) {
			t.Fatalf("read %d diverges from batch corrector", i)
		}
		if !bytes.Equal(got[i].Seq, reads[i].Seq) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("service corrected nothing on a full-corpus chunk")
	}
}

// TestServicePairsQmWithExplicitQc: an explicit Qc with Qm left zero must
// not silently disable applyIfLowQuality's acceptance condition.
func TestServicePairsQmWithExplicitQc(t *testing.T) {
	_, spec := serviceFixture(t)
	svc, err := NewService(spec, Params{Qc: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Params().Qm; got != 35 {
		t.Errorf("Qm = %d want 35 (Qc+15)", got)
	}
}
