package reptile

import (
	"context"
	"fmt"

	"repro/internal/seq"
)

// ChunkSource is the chunked read source of the streaming pipeline; see
// seq.ChunkSource.
type ChunkSource = seq.ChunkSource

// CorrectStream is the out-of-core correction pipeline: a first pass streams
// every chunk from open() through the Phase 1 accumulators (with
// Params.MemoryBudget bounding the spectrum's resident size), then a second
// pass re-opens the source, corrects each chunk with `workers` goroutines,
// and hands (original, corrected) chunk pairs to emit. Neither pass retains
// more than one chunk of reads, so peak memory is the Phase 1 products plus
// a chunk — independent of the input size when a budget is set.
//
// Params must carry an explicit K (use DefaultParams on a sampled chunk to
// derive data-dependent settings before calling). The returned Corrector
// exposes the derived thresholds and Phase 1 structures.
func CorrectStream(open func() (ChunkSource, error), emit func(orig, corrected []seq.Read) error, p Params, workers int) (*Corrector, error) {
	return correctStreamCtx(context.Background(), open, emit, p, workers)
}

// correctStreamCtx is the context-aware two-pass pipeline every front end
// (the legacy CorrectStream, the engine adapter) shares: cancellation is
// polled at every chunk boundary, inside the correction worker pool, and
// in the out-of-core spill/merge loops, so a cancelled ctx aborts the run
// promptly with ctx.Err() and leaks no goroutines or spill files.
func correctStreamCtx(ctx context.Context, open seq.SourceOpener, emit func(orig, corrected []seq.Read) error, p Params, workers int) (*Corrector, error) {
	b, err := newBuilderCtx(ctx, p)
	if err != nil {
		return nil, err
	}
	defer b.Close() // reclaim spill files if either pass aborts
	if err := seq.StreamChunksCtx(ctx, open, func(chunk []seq.Read) error {
		b.Add(chunk)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("reptile: build pass: %w", err)
	}
	c, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if err := seq.StreamChunksCtx(ctx, open, func(chunk []seq.Read) error {
		corrected, err := c.CorrectAllCtx(ctx, chunk, workers)
		if err != nil {
			return err
		}
		return emit(chunk, corrected)
	}); err != nil {
		return nil, fmt.Errorf("reptile: correct pass: %w", err)
	}
	return c, nil
}
