package reptile

import (
	"fmt"

	"repro/internal/seq"
)

// ChunkSource is the chunked read source of the streaming pipeline; see
// seq.ChunkSource.
type ChunkSource = seq.ChunkSource

// CorrectStream is the out-of-core correction pipeline: a first pass streams
// every chunk from open() through the Phase 1 accumulators (with
// Params.MemoryBudget bounding the spectrum's resident size), then a second
// pass re-opens the source, corrects each chunk with `workers` goroutines,
// and hands (original, corrected) chunk pairs to emit. Neither pass retains
// more than one chunk of reads, so peak memory is the Phase 1 products plus
// a chunk — independent of the input size when a budget is set.
//
// Params must carry an explicit K (use DefaultParams on a sampled chunk to
// derive data-dependent settings before calling). The returned Corrector
// exposes the derived thresholds and Phase 1 structures.
func CorrectStream(open func() (ChunkSource, error), emit func(orig, corrected []seq.Read) error, p Params, workers int) (*Corrector, error) {
	b, err := NewBuilder(p)
	if err != nil {
		return nil, err
	}
	defer b.Close() // reclaim spill files if either pass aborts
	if err := seq.StreamChunks(open, func(chunk []seq.Read) error {
		b.Add(chunk)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("reptile: build pass: %w", err)
	}
	c, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if err := seq.StreamChunks(open, func(chunk []seq.Read) error {
		return emit(chunk, c.CorrectAll(chunk, workers))
	}); err != nil {
		return nil, fmt.Errorf("reptile: correct pass: %w", err)
	}
	return c, nil
}
