package reptile

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// buildTestData simulates a dataset and returns the corrector inputs.
func buildTestData(t *testing.T, genomeLen, nReads, readLen int, errRate float64, seed int64) ([]byte, []simulate.SimRead) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	genome, err := simulate.RandomGenome(genomeLen, simulate.MaizeProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := simulate.IlluminaModel(readLen, errRate, simulate.EcoliBias)
	sim, err := simulate.SimulateReads(genome, simulate.ReadSimConfig{
		N: nReads, Model: model, BothStrands: true, QualityNoise: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return genome, sim
}

func defaultTestParams() Params {
	return Params{K: 10, D: 1, Overlap: 0, C: 5, Cr: 2, Qc: 15, Qm: 60, DefaultBase: 'A', MaxNPerWindow: 1}
}

func TestParamsValidation(t *testing.T) {
	cases := []Params{
		{K: 0, D: 1, C: 2, Cr: 2},
		{K: 20, D: 1, Overlap: 0, C: 5, Cr: 2}, // tile 40 > 32
		{K: 10, D: 10, C: 11, Cr: 2},
		{K: 10, D: 1, C: 1, Cr: 2},
		{K: 10, D: 1, C: 5, Cr: 0.5},
	}
	for i, p := range cases {
		if _, err := New(nil, p); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	_, sim := buildTestData(t, 5000, 500, 36, 0.01, 1)
	p := DefaultParams(simulate.Reads(sim), 5000)
	if p.K < 7 || p.K > 15 {
		t.Errorf("K = %d", p.K)
	}
	if p.Qc == 0 {
		t.Error("Qc not derived from data")
	}
	if p.D != 1 || p.Cr != 2 {
		t.Errorf("defaults: %+v", p)
	}
}

func TestCorrectorFixesIsolatedErrors(t *testing.T) {
	genome, sim := buildTestData(t, 20000, 25000, 36, 0.006, 2)
	_ = genome
	c, err := New(simulate.Reads(sim), defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	corrected := c.CorrectAll(simulate.Reads(sim), 1)
	stats, err := eval.EvaluateCorrection(sim, corrected)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reptile on 45x/0.6%%: %v", stats)
	if stats.Gain() < 0.5 {
		t.Errorf("Gain = %.3f want > 0.5", stats.Gain())
	}
	if stats.Specificity() < 0.995 {
		t.Errorf("Specificity = %.4f want > 0.995", stats.Specificity())
	}
	if stats.EBA() > 0.05 {
		t.Errorf("EBA = %.4f want < 0.05", stats.EBA())
	}
}

func TestCorrectorDeterministicAndNonMutating(t *testing.T) {
	_, sim := buildTestData(t, 5000, 4000, 36, 0.01, 3)
	reads := simulate.Reads(sim)
	orig := string(reads[7].Seq)
	c, err := New(reads, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	a := c.CorrectAll(reads, 1)
	b := c.CorrectAll(reads, 1)
	if string(reads[7].Seq) != orig {
		t.Error("CorrectAll mutated its input")
	}
	for i := range a {
		if string(a[i].Seq) != string(b[i].Seq) {
			t.Fatalf("nondeterministic correction at read %d", i)
		}
	}
}

func TestCorrectAllParallelMatchesSerial(t *testing.T) {
	_, sim := buildTestData(t, 5000, 4000, 36, 0.01, 4)
	reads := simulate.Reads(sim)
	c, err := New(reads, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	serial := c.CorrectAll(reads, 1)
	parallel := c.CorrectAll(reads, 4)
	for i := range serial {
		if string(serial[i].Seq) != string(parallel[i].Seq) {
			t.Fatalf("parallel differs from serial at read %d", i)
		}
	}
}

func TestCorrectReadShortRead(t *testing.T) {
	_, sim := buildTestData(t, 5000, 1000, 36, 0.01, 5)
	c, err := New(simulate.Reads(sim), defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	short := seq.Read{ID: "s", Seq: []byte("ACGTACGT")} // shorter than a tile
	out := c.CorrectRead(short)
	if string(out.Seq) != "ACGTACGT" {
		t.Errorf("short read altered: %s", out.Seq)
	}
}

func TestAmbiguousBaseConversion(t *testing.T) {
	p := defaultTestParams()
	// Sparse N converts; dense cluster does not.
	sparse := seq.Read{ID: "a", Seq: []byte("ACGTNACGTACGTACGTACG"), Qual: make([]byte, 20)}
	out := prepareRead(sparse, p)
	if out.Seq[4] != 'A' {
		t.Errorf("sparse N not converted: %s", out.Seq)
	}
	dense := seq.Read{ID: "b", Seq: []byte("ACNNNACGTACGTACGTACG"), Qual: make([]byte, 20)}
	out = prepareRead(dense, p)
	if out.Seq[2] != 'N' || out.Seq[3] != 'N' {
		t.Errorf("dense N cluster converted: %s", out.Seq)
	}
}

func TestAmbiguousBasesGetCorrected(t *testing.T) {
	genome, sim := buildTestData(t, 20000, 25000, 36, 0.004, 6)
	_ = genome
	reads := simulate.Reads(sim)
	// Punch isolated Ns into 200 reads at a mid-read position.
	for i := 0; i < 200; i++ {
		reads[i] = reads[i].Clone()
		reads[i].Seq[15] = 'N'
		reads[i].Qual[15] = 2
	}
	c, err := New(reads, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	fixed := 0
	for i := 0; i < 200; i++ {
		out := c.CorrectRead(reads[i])
		if out.Seq[15] == sim[i].True[15] {
			fixed++
		}
	}
	// §2.4 reports ~99.9% accuracy on ambiguous-base correction; at this
	// reduced scale we require a strong majority.
	if fixed < 150 {
		t.Errorf("fixed %d/200 ambiguous bases", fixed)
	}
}

func TestHigherDIncreasesCorrections(t *testing.T) {
	_, sim := buildTestData(t, 10000, 15000, 36, 0.015, 7)
	reads := simulate.Reads(sim)
	p1 := defaultTestParams()
	c1, err := New(reads, p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := defaultTestParams()
	p2.D = 2
	p2.C = 6
	c2, err := New(reads, p2)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := eval.EvaluateCorrection(sim, c1.CorrectAll(reads, 1))
	s2, _ := eval.EvaluateCorrection(sim, c2.CorrectAll(reads, 1))
	t.Logf("d=1: %v", s1)
	t.Logf("d=2: %v", s2)
	// Table 2.3: increasing d raises TP (more errors identified).
	if s2.TP <= s1.TP {
		t.Errorf("d=2 TP=%d not above d=1 TP=%d", s2.TP, s1.TP)
	}
}

func TestOverlapConsistent(t *testing.T) {
	ka := seq.MustPack("ACGT")
	kb := seq.MustPack("GTTT")
	if !overlapConsistent(ka, kb, 4, 2) {
		t.Error("GT suffix/prefix should be consistent")
	}
	if overlapConsistent(ka, seq.MustPack("TTTT"), 4, 2) {
		t.Error("inconsistent overlap accepted")
	}
}

func TestQualityGuardBlocksHighQualityCorrection(t *testing.T) {
	// A tile whose bases are all above Qm must not be corrected via the
	// Og>=Cm branch (Algorithm 1 line 14 condition 2).
	_, sim := buildTestData(t, 10000, 12000, 36, 0.01, 8)
	reads := simulate.Reads(sim)
	p := defaultTestParams()
	p.Cm = 1 // route every observed tile through the quality-guarded branch
	p.Qm = 1 // nothing is below quality 1 -> guarded corrections blocked
	c, err := New(reads, p)
	if err != nil {
		t.Fatal(err)
	}
	pLoose := defaultTestParams()
	pLoose.Cm = 1
	cLoose, err := New(reads, pLoose)
	if err != nil {
		t.Fatal(err)
	}
	sStrict, _ := eval.EvaluateCorrection(sim, c.CorrectAll(reads, 1))
	sLoose, _ := eval.EvaluateCorrection(sim, cLoose.CorrectAll(reads, 1))
	if sStrict.TP >= sLoose.TP {
		t.Errorf("quality guard had no effect: strict TP=%d loose TP=%d", sStrict.TP, sLoose.TP)
	}
}

func TestChunkedBuilderMatchesWholeSlice(t *testing.T) {
	// The §2.3 divide-and-merge construction must be equivalent to
	// building from the whole read set at once.
	_, sim := buildTestData(t, 8000, 8000, 36, 0.01, 9)
	reads := simulate.Reads(sim)
	whole, err := New(reads, defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(defaultTestParams())
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(reads); lo += 1000 {
		b.Add(reads[lo:min(lo+1000, len(reads))])
	}
	chunked, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if whole.Spec.Size() != chunked.Spec.Size() || whole.Tiles.Size() != chunked.Tiles.Size() {
		t.Fatalf("structures differ: spectrum %d/%d tiles %d/%d",
			whole.Spec.Size(), chunked.Spec.Size(), whole.Tiles.Size(), chunked.Tiles.Size())
	}
	if whole.P.Cg != chunked.P.Cg || whole.P.Cm != chunked.P.Cm {
		t.Fatalf("derived thresholds differ: (%d,%d) vs (%d,%d)",
			whole.P.Cg, whole.P.Cm, chunked.P.Cg, chunked.P.Cm)
	}
	a := whole.CorrectAll(reads, 1)
	c := chunked.CorrectAll(reads, 1)
	for i := range a {
		if string(a[i].Seq) != string(c[i].Seq) {
			t.Fatalf("correction differs at read %d", i)
		}
	}
}
