package reptile

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/kspectrum"
	"repro/internal/seq"
)

// EngineName is Reptile's registry key.
const EngineName = "reptile"

func init() { engine.Register(reptileEngine{}) }

// extConfig is the engine-specific payload reptile's functional options
// tuck into an engine.Run. A non-zero params.K means the caller supplied
// a fully-resolved parameter block (the facade's CorrectOptions.Reptile
// semantics: used as-is); otherwise parameters are data-derived and the
// individual overrides (d, overlap) are applied in the CLI's historical
// order, preserving byte-identity with both front ends.
type extConfig struct {
	params     Params
	d          int
	dSet       bool
	overlap    int
	overlapSet bool
}

func extOf(r *engine.Run) *extConfig {
	if v, ok := r.Ext(EngineName); ok {
		return v.(*extConfig)
	}
	c := &extConfig{}
	r.SetExt(EngineName, c)
	return c
}

// WithParams supplies a complete Reptile parameter block. A non-zero
// p.K means the block is used as-is (zero thresholds still take
// data-derived defaults in Finish); with p.K == 0 only p.Build survives
// the defaults derivation, mirroring the historical facade.
func WithParams(p Params) engine.Option {
	return func(r *engine.Run) { extOf(r).params = p }
}

// WithD sets the per-constituent-kmer Hamming budget d, applied after the
// data-derived defaults exactly like the CLI's -d flag (C is bumped to
// d+2 only when the derived C would not exceed d).
func WithD(d int) engine.Option {
	return func(r *engine.Run) { e := extOf(r); e.d, e.dSet = d, true }
}

// WithOverlap sets the tile overlap l, applied after the data-derived
// defaults.
func WithOverlap(l int) engine.Option {
	return func(r *engine.Run) { e := extOf(r); e.overlap, e.overlapSet = l, true }
}

// reptileEngine adapts Reptile to the pluggable engine contract.
type reptileEngine struct{}

func (reptileEngine) Name() string { return EngineName }

func (reptileEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Streaming:     true,
		SpectrumReuse: true,
		// A tile packs 2k - overlap bases into one word, so served
		// spectra are bounded at half the packable kmer length.
		MaxSpectrumK: seq.MaxK / 2,
		// The service path queries only through the SpectrumBackend /
		// NeighborSource seam, so a remote sharded spectrum serves.
		RemoteSpectrum: true,
	}
}

// explicitK is the caller's explicitly-requested kmer length: a full
// parameter block's K wins, then the run-level K, else 0 (data-derived).
func (e *extConfig) explicitK(run *engine.Run) int {
	if e.params.K != 0 {
		return e.params.K
	}
	return run.K
}

// resolveParams finalizes the parameter block from the run, the sampled
// reads, and the (possibly preloaded) spectrum. It reproduces both
// historical resolution orders: a caller-supplied block with K set is
// used as-is (facade semantics), otherwise data-derived defaults are
// computed from the sample and the K/spectrum/d/overlap overrides apply
// in the CLI's order.
func resolveParams(sample []seq.Read, run *engine.Run, spec *kspectrum.Spectrum) Params {
	e := extOf(run)
	p := e.params
	explicitK := p.K != 0
	if !explicitK {
		build := p.Build // survives the defaults swap
		p = DefaultParams(sample, run.GenomeLen)
		p.Build = build
		if run.K != 0 {
			p.K = run.K
			p.C = min(p.K, p.D+4)
			explicitK = true
		}
	}
	if spec != nil {
		if !explicitK && p.K != spec.K {
			p.K = spec.K
			p.C = min(p.K, p.D+4)
		}
		p.Spectrum = spec
	}
	if e.dSet {
		p.D = e.d
		if p.C <= p.D {
			p.C = p.D + 2
		}
	}
	if e.overlapSet {
		p.Overlap = e.overlap
	}
	if p.Build == (kspectrum.BuildOptions{}) {
		p.Build = kspectrum.BuildOptions{Workers: run.Workers, Shards: run.Shards}
	}
	if p.MemoryBudget == 0 {
		p.MemoryBudget = run.MemoryBudget
	}
	if p.TempDir == "" {
		p.TempDir = run.TempDir
	}
	if p.CheckpointDir == "" {
		p.CheckpointDir = run.CheckpointDir
		p.Resume = run.Resume
		p.CheckpointEvery = run.CheckpointEvery
	}
	return p
}

// summary renders the resolved parameters and Phase-1 products for the
// CLI status line.
func (c *Corrector) summary() string {
	size := 0
	if c.Spec != nil {
		size = c.Spec.Size()
	} else if c.backend != nil {
		size = c.backend.Len()
	}
	return fmt.Sprintf("k=%d d=%d Cg=%d Cm=%d Qc=%d; spectrum %d kmers, %d tiles",
		c.P.K, c.P.D, c.P.Cg, c.P.Cm, c.P.Qc, size, c.Tiles.Size())
}

func (reptileEngine) Correct(ctx context.Context, reads []seq.Read, run *engine.Run) ([]seq.Read, *engine.Result, error) {
	start := time.Now()
	spec, err := run.ResolveSpectrum(extOf(run).explicitK(run))
	if err != nil {
		return nil, nil, err
	}
	p := resolveParams(reads, run, spec)
	c, err := New(reads, p)
	if err != nil {
		return nil, nil, err
	}
	out, err := c.CorrectAllCtx(ctx, reads, run.Workers)
	if err != nil {
		return nil, nil, err
	}
	if err := run.SaveSpectrum(c.Spec); err != nil {
		return nil, nil, err
	}
	return out, &engine.Result{
		Engine:   EngineName,
		Duration: time.Since(start),
		Spectrum: c.Spec,
		Summary:  c.summary(),
	}, nil
}

func (reptileEngine) CorrectStream(ctx context.Context, open engine.SourceOpener, sink engine.Sink, run *engine.Run) (*engine.Result, error) {
	start := time.Now()
	e := extOf(run)
	spec, err := run.ResolveSpectrum(e.explicitK(run))
	if err != nil {
		return nil, err
	}
	var sample []seq.Read
	if e.params.K == 0 {
		// Data-dependent defaults (Qc, default k) come from a bounded
		// leading sample of a fresh stream.
		if sample, err = engine.Sample(ctx, open); err != nil {
			return nil, err
		}
	}
	p := resolveParams(sample, run, spec)
	res := &engine.Result{Engine: EngineName}
	emit := func(orig, corrected []seq.Read) error {
		res.Reads += len(orig)
		res.Changed += engine.CountChanged(orig, corrected)
		return sink.WriteChunk(orig, corrected)
	}
	c, err := correctStreamCtx(ctx, seq.SourceOpener(open), emit, p, run.Workers)
	if err != nil {
		return nil, err
	}
	if err := run.SaveSpectrum(c.Spec); err != nil {
		return nil, err
	}
	res.Duration = time.Since(start)
	res.Spectrum = c.Spec
	res.Summary = c.summary()
	return res, nil
}

// NewService implements engine.Servicer: the shared-spectrum,
// request-independent correction service behind the kserve daemon. The
// run must carry a spectrum (WithSpectrum or WithSpectrumPath); D and
// overlap overrides apply, everything request-derived (Qc, Cg, Cm) is
// computed per chunk.
func (reptileEngine) NewService(run *engine.Run) (engine.ChunkCorrector, error) {
	e := extOf(run)
	spec, err := run.ResolveSpectrum(e.explicitK(run))
	if err != nil {
		return nil, err
	}
	p := e.params
	if e.dSet {
		p.D = e.d
	}
	if e.overlapSet {
		p.Overlap = e.overlap
	}
	if spec == nil && run.Backend != nil {
		// Distributed serving: the spectrum lives behind the backend. The
		// backend must also answer neighborhoods (RemoteSpectrum in
		// internal/remote does; so does any kspectrum.NeighborSource).
		neigh, ok := run.Backend.(kspectrum.NeighborSource)
		if !ok {
			return nil, fmt.Errorf("reptile: spectrum backend %T cannot answer neighborhood queries", run.Backend)
		}
		svc, err := NewServiceBackend(run.Backend, neigh, p)
		if err != nil {
			return nil, err
		}
		return chunkService{svc: svc}, nil
	}
	if spec == nil {
		return nil, fmt.Errorf("reptile: service needs a spectrum")
	}
	svc, err := NewService(spec, p)
	if err != nil {
		return nil, err
	}
	return chunkService{svc: svc}, nil
}

// chunkService adapts Service to the engine.ChunkCorrector contract.
type chunkService struct{ svc *Service }

func (s chunkService) CorrectChunk(ctx context.Context, reads []seq.Read, workers int) ([]seq.Read, error) {
	out, _, err := s.svc.CorrectChunkCtx(ctx, reads, workers)
	return out, err
}
