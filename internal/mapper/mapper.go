// Package mapper implements a mismatch-minimizing short-read mapper in the
// role RMAP v2.05 plays in the dissertation: mapping reads to a known
// reference to (a) classify them as uniquely / ambiguously / un-mapped
// (Table 2.2), (b) estimate per-position misread probability matrices from
// uniquely mapped reads (§3.4.1), and (c) provide ground-truth errors for
// evaluating correction when simulation truth is unavailable.
//
// The mapper is seed-and-extend: the reference is indexed by fixed-length
// seeds; a read with at most m mismatches must, by the pigeonhole principle,
// contain at least one exact seed among m+1 disjoint seeds, so full
// sensitivity up to the configured mismatch budget is retained as long as
// m+1 disjoint seeds fit in the read.
package mapper

import (
	"fmt"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// Index is a seed index over a reference genome.
type Index struct {
	genome  []byte
	seedLen int
	seedPos map[seq.Kmer][]int32
}

// NewIndex builds the seed index. seedLen around 12 balances specificity
// against memory for megabase genomes.
func NewIndex(genome []byte, seedLen int) (*Index, error) {
	if seedLen <= 0 || seedLen > seq.MaxK {
		return nil, fmt.Errorf("mapper: invalid seed length %d", seedLen)
	}
	if len(genome) < seedLen {
		return nil, fmt.Errorf("mapper: genome shorter than seed")
	}
	idx := &Index{
		genome:  genome,
		seedLen: seedLen,
		seedPos: make(map[seq.Kmer][]int32),
	}
	for pos := 0; pos+seedLen <= len(genome); pos++ {
		if km, ok := seq.Pack(genome[pos:], seedLen); ok {
			idx.seedPos[km] = append(idx.seedPos[km], int32(pos))
		}
	}
	return idx, nil
}

// Status classifies a mapping attempt.
type Status int

// Mapping outcomes, in the vocabulary of Table 2.2.
const (
	Unmapped Status = iota
	Unique
	Ambiguous
)

func (s Status) String() string {
	switch s {
	case Unique:
		return "unique"
	case Ambiguous:
		return "ambiguous"
	default:
		return "unmapped"
	}
}

// Result describes the best alignment found for a read.
type Result struct {
	Status     Status
	Pos        int  // genome position of the best alignment (forward coords)
	RC         bool // read aligned to the reverse strand
	Mismatches int
}

// Map aligns one read allowing up to maxMismatches substitutions. Reverse
// strand alignments are found by mapping the reverse complement of the read
// against the forward reference. Ambiguous ('N') read bases always count as
// mismatches.
func (idx *Index) Map(read []byte, maxMismatches int) Result {
	type hit struct {
		pos int
		rc  bool
	}
	best := maxMismatches + 1
	var bestHits []hit
	consider := func(pos int, rc bool, oriented []byte) {
		if pos < 0 || pos+len(oriented) > len(idx.genome) {
			return
		}
		mm := mismatchesCapped(oriented, idx.genome[pos:pos+len(oriented)], best)
		if mm > maxMismatches || mm > best {
			return
		}
		h := hit{pos, rc}
		if mm < best {
			best = mm
			bestHits = bestHits[:0]
		}
		for _, e := range bestHits {
			if e == h {
				return
			}
		}
		bestHits = append(bestHits, h)
	}
	for _, rc := range []bool{false, true} {
		oriented := read
		if rc {
			oriented = seq.ReverseComplement(read)
		}
		nSeeds := min(maxMismatches+1, len(oriented)/idx.seedLen)
		if nSeeds == 0 {
			nSeeds = 1
		}
		for s := 0; s < nSeeds; s++ {
			off := s * idx.seedLen
			if off+idx.seedLen > len(oriented) {
				break
			}
			km, ok := seq.Pack(oriented[off:], idx.seedLen)
			if !ok {
				continue
			}
			for _, p := range idx.seedPos[km] {
				consider(int(p)-off, rc, oriented)
			}
		}
	}
	switch len(bestHits) {
	case 0:
		return Result{Status: Unmapped}
	case 1:
		return Result{Status: Unique, Pos: bestHits[0].pos, RC: bestHits[0].rc, Mismatches: best}
	default:
		return Result{Status: Ambiguous, Pos: bestHits[0].pos, RC: bestHits[0].rc, Mismatches: best}
	}
}

func mismatchesCapped(a, b []byte, cap int) int {
	mm := 0
	for i := range a {
		if a[i] != b[i] {
			mm++
			if mm > cap {
				return mm
			}
		}
	}
	return mm
}

// Summary aggregates Table 2.2-style statistics for a read set.
type Summary struct {
	Total     int
	Unique    int
	Ambiguous int
	Unmapped  int
	// MismatchBases counts mismatching bases over uniquely mapped reads,
	// the paper's estimator of the dataset error rate (Table 2.1 note).
	MismatchBases int
	UniqueBases   int
}

// UniqueFraction is the Table 2.2 "uniquely mapped reads" column.
func (s Summary) UniqueFraction() float64 { return frac(s.Unique, s.Total) }

// AmbiguousFraction is the Table 2.2 "ambiguously mapped reads" column.
func (s Summary) AmbiguousFraction() float64 { return frac(s.Ambiguous, s.Total) }

// ErrorRate estimates the per-base substitution rate from unique mappings.
func (s Summary) ErrorRate() float64 { return frac(s.MismatchBases, s.UniqueBases) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// MapAll maps every read and aggregates the summary.
func (idx *Index) MapAll(reads []seq.Read, maxMismatches int) Summary {
	var s Summary
	for _, r := range reads {
		s.Total++
		res := idx.Map(r.Seq, maxMismatches)
		switch res.Status {
		case Unique:
			s.Unique++
			s.MismatchBases += res.Mismatches
			s.UniqueBases += len(r.Seq)
		case Ambiguous:
			s.Ambiguous++
		default:
			s.Unmapped++
		}
	}
	return s
}

// EstimateErrorMatrices reproduces the §3.4.1 estimation: map each read,
// keep unique hits, and tally, for every read position i, how often
// reference base a was called as b. The result is the L-vector of 4x4
// misread probability matrices M.
func (idx *Index) EstimateErrorMatrices(reads []seq.Read, readLen, maxMismatches int) []simulate.Matrix4 {
	counts := make([]simulate.Matrix4, readLen)
	for _, r := range reads {
		if len(r.Seq) != readLen {
			continue
		}
		res := idx.Map(r.Seq, maxMismatches)
		if res.Status != Unique {
			continue
		}
		ref := idx.genome[res.Pos : res.Pos+readLen]
		var oriented []byte
		if res.RC {
			oriented = seq.ReverseComplement(ref)
		} else {
			oriented = ref
		}
		for i := 0; i < readLen; i++ {
			a, okA := seq.BaseFromChar(oriented[i])
			b, okB := seq.BaseFromChar(r.Seq[i])
			if okA && okB {
				counts[i][a][b]++
			}
		}
	}
	for i := range counts {
		counts[i].Normalize()
	}
	return counts
}
