package mapper

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

func testGenome(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	g, err := simulate.RandomGenome(n, simulate.UniformProfile, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex([]byte("ACGT"), 0); err == nil {
		t.Error("expected error for seed length 0")
	}
	if _, err := NewIndex([]byte("AC"), 5); err == nil {
		t.Error("expected error for genome shorter than seed")
	}
}

func TestMapExactForward(t *testing.T) {
	g := testGenome(t, 5000, 1)
	idx, err := NewIndex(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	read := append([]byte(nil), g[1234:1234+36]...)
	res := idx.Map(read, 2)
	if res.Status != Unique || res.Pos != 1234 || res.RC || res.Mismatches != 0 {
		t.Errorf("Map = %+v", res)
	}
}

func TestMapReverseStrand(t *testing.T) {
	g := testGenome(t, 5000, 2)
	idx, _ := NewIndex(g, 12)
	read := seq.ReverseComplement(g[800 : 800+36])
	res := idx.Map(read, 2)
	if res.Status != Unique || res.Pos != 800 || !res.RC {
		t.Errorf("Map = %+v", res)
	}
}

func TestMapWithMismatches(t *testing.T) {
	g := testGenome(t, 5000, 3)
	idx, _ := NewIndex(g, 12)
	read := append([]byte(nil), g[2000:2000+36]...)
	// Mutate two bases in different seed blocks.
	read[2] = flip(read[2])
	read[30] = flip(read[30])
	res := idx.Map(read, 5)
	if res.Status != Unique || res.Pos != 2000 || res.Mismatches != 2 {
		t.Errorf("Map = %+v", res)
	}
	// Budget of 1 cannot place it.
	if res := idx.Map(read, 1); res.Status != Unmapped {
		t.Errorf("expected Unmapped with tight budget, got %+v", res)
	}
}

func flip(ch byte) byte {
	b, _ := seq.BaseFromChar(ch)
	return ((b + 1) & 3).Char()
}

func TestMapAmbiguousInRepeat(t *testing.T) {
	// Construct a genome with an exact 200bp duplication.
	g := testGenome(t, 3000, 4)
	copy(g[2500:2700], g[100:300])
	idx, _ := NewIndex(g, 12)
	read := append([]byte(nil), g[150:150+36]...)
	res := idx.Map(read, 2)
	if res.Status != Ambiguous {
		t.Errorf("read inside duplication should map ambiguously, got %+v", res)
	}
}

func TestMapNBasesCountAsMismatch(t *testing.T) {
	g := testGenome(t, 4000, 5)
	idx, _ := NewIndex(g, 12)
	read := append([]byte(nil), g[1000:1000+36]...)
	read[20] = 'N'
	res := idx.Map(read, 3)
	if res.Status != Unique || res.Mismatches != 1 {
		t.Errorf("Map with N = %+v", res)
	}
}

func TestMapUnmappedRandomRead(t *testing.T) {
	g := testGenome(t, 4000, 6)
	idx, _ := NewIndex(g, 12)
	other := testGenome(t, 100, 999)
	if res := idx.Map(other[:36], 2); res.Status != Unmapped {
		t.Errorf("foreign read mapped: %+v", res)
	}
}

func TestMapAllSummary(t *testing.T) {
	g := testGenome(t, 20000, 7)
	rng := rand.New(rand.NewSource(8))
	sim, err := simulate.SimulateReads(g, simulate.ReadSimConfig{
		N: 2000, Model: simulate.UniformModel(36, 0.01), BothStrands: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := NewIndex(g, 12)
	sum := idx.MapAll(simulate.Reads(sim), 5)
	if sum.Total != 2000 {
		t.Fatalf("total %d", sum.Total)
	}
	if sum.UniqueFraction() < 0.9 {
		t.Errorf("unique fraction %.3f too low for random genome", sum.UniqueFraction())
	}
	// Estimated error rate should track the simulated 1%.
	if got := sum.ErrorRate(); got < 0.005 || got > 0.02 {
		t.Errorf("estimated error rate %.4f want ~0.01", got)
	}
}

func TestEstimateErrorMatrices(t *testing.T) {
	g := testGenome(t, 50000, 9)
	rng := rand.New(rand.NewSource(10))
	model := simulate.IlluminaModel(36, 0.02, simulate.AspBias)
	sim, err := simulate.SimulateReads(g, simulate.ReadSimConfig{N: 20000, Model: model, BothStrands: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := NewIndex(g, 12)
	est := idx.EstimateErrorMatrices(simulate.Reads(sim), 36, 5)
	if len(est) != 36 {
		t.Fatalf("got %d matrices", len(est))
	}
	// Diagonals dominate everywhere and the 3' ramp is recovered.
	err5 := est[2].ErrorRate()
	err3 := est[33].ErrorRate()
	if err3 <= err5 {
		t.Errorf("3' error %.4f not above 5' error %.4f", err3, err5)
	}
	wantMean := 0.0
	gotMean := 0.0
	for i := 0; i < 36; i++ {
		wantMean += model.PositionErrorRate(i)
		gotMean += est[i].ErrorRate()
	}
	wantMean /= 36
	gotMean /= 36
	if math.Abs(gotMean-wantMean) > wantMean*0.5 {
		t.Errorf("mean estimated error %.4f want ~%.4f", gotMean, wantMean)
	}
}

func BenchmarkMap(b *testing.B) {
	g, _ := simulate.RandomGenome(100000, simulate.UniformProfile, rand.New(rand.NewSource(1)))
	idx, _ := NewIndex(g, 12)
	read := append([]byte(nil), g[50000:50036]...)
	read[5] = flip(read[5])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Map(read, 5)
	}
}
