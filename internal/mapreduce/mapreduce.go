// Package mapreduce is a small in-process MapReduce engine standing in for
// the 32-node Hadoop cluster of Chapter 4. Jobs are expressed exactly as in
// the dissertation — a map function emitting <key, value> pairs, a
// hash-partitioned shuffle, and a reduce function per key group — and run on
// a configurable number of simulated nodes (bounded goroutine pools). Each
// job reports per-stage wall-clock durations and record counts, which
// regenerate the stage/row structure of Tables 4.2 and 4.3.
package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"
)

// Config describes the simulated cluster a job runs on.
type Config struct {
	// Nodes is the number of simulated cluster nodes: the shuffle produces
	// this many partitions, and map/reduce tasks use up to this many
	// concurrent workers (capped by GOMAXPROCS for real parallelism, but
	// partitioning always honors Nodes so data placement matches the
	// cluster being simulated).
	Nodes int
	// Name labels the job in its Stats.
	Name string
}

// Stats records one job's execution profile.
type Stats struct {
	Name            string
	MapDuration     time.Duration
	ShuffleDuration time.Duration
	ReduceDuration  time.Duration
	InputRecords    int
	MapOutput       int
	DistinctKeys    int
	ReduceOutput    int
}

// Total is the job wall-clock across stages.
func (s Stats) Total() time.Duration {
	return s.MapDuration + s.ShuffleDuration + s.ReduceDuration
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: in=%d mapped=%d keys=%d out=%d (map %v, shuffle %v, reduce %v)",
		s.Name, s.InputRecords, s.MapOutput, s.DistinctKeys, s.ReduceOutput,
		s.MapDuration.Round(time.Microsecond), s.ShuffleDuration.Round(time.Microsecond), s.ReduceDuration.Round(time.Microsecond))
}

// Emitter receives the pairs produced by a map function.
type Emitter[K comparable, V any] func(key K, value V)

// Run executes one MapReduce job.
//
// mapFn is invoked once per input record; reduceFn once per distinct key
// with all values grouped (value order within a group is unspecified, as on
// a real cluster). hash places keys onto nodes. The output concatenates
// whatever reduceFn emits, in unspecified order.
func Run[I any, K comparable, V any, O any](
	cfg Config,
	input []I,
	mapFn func(rec I, emit Emitter[K, V]),
	reduceFn func(key K, values []V, emit func(O)),
	hash func(K) uint64,
) ([]O, Stats, error) {
	if cfg.Nodes <= 0 {
		return nil, Stats{}, fmt.Errorf("mapreduce: need at least one node, got %d", cfg.Nodes)
	}
	stats := Stats{Name: cfg.Name, InputRecords: len(input)}
	workers := min(cfg.Nodes, runtime.GOMAXPROCS(0)*4)
	if workers < 1 {
		workers = 1
	}

	// Map stage: each worker keeps per-partition buffers so the shuffle is
	// a cheap concatenation.
	type kv struct {
		k K
		v V
	}
	start := time.Now()
	workerParts := make([][][]kv, workers)
	var mapErr error
	var mapErrOnce sync.Once
	var wg sync.WaitGroup
	chunk := (len(input) + workers - 1) / workers
	mapped := make([]int, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(input))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mapErrOnce.Do(func() { mapErr = fmt.Errorf("mapreduce: map task panicked: %v", r) })
				}
			}()
			parts := make([][]kv, cfg.Nodes)
			emit := func(k K, v V) {
				p := int(hash(k) % uint64(cfg.Nodes))
				parts[p] = append(parts[p], kv{k, v})
				mapped[w]++
			}
			for i := lo; i < hi; i++ {
				mapFn(input[i], emit)
			}
			workerParts[w] = parts
		}(w, lo, hi)
	}
	wg.Wait()
	if mapErr != nil {
		return nil, stats, mapErr
	}
	for _, n := range mapped {
		stats.MapOutput += n
	}
	stats.MapDuration = time.Since(start)

	// Shuffle: group values by key within each partition.
	start = time.Now()
	grouped := make([]map[K][]V, cfg.Nodes)
	var sg sync.WaitGroup
	distinct := make([]int, cfg.Nodes)
	sem := make(chan struct{}, workers)
	for p := 0; p < cfg.Nodes; p++ {
		sg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer sg.Done()
			defer func() { <-sem }()
			g := make(map[K][]V)
			for w := range workerParts {
				if workerParts[w] == nil {
					continue
				}
				for _, pair := range workerParts[w][p] {
					g[pair.k] = append(g[pair.k], pair.v)
				}
			}
			grouped[p] = g
			distinct[p] = len(g)
		}(p)
	}
	sg.Wait()
	for _, d := range distinct {
		stats.DistinctKeys += d
	}
	stats.ShuffleDuration = time.Since(start)

	// Reduce: one task per partition.
	start = time.Now()
	outputs := make([][]O, cfg.Nodes)
	var rg sync.WaitGroup
	var redErr error
	var redErrOnce sync.Once
	for p := 0; p < cfg.Nodes; p++ {
		rg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer rg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					redErrOnce.Do(func() { redErr = fmt.Errorf("mapreduce: reduce task panicked: %v", r) })
				}
			}()
			var out []O
			emit := func(o O) { out = append(out, o) }
			for k, vs := range grouped[p] {
				reduceFn(k, vs, emit)
			}
			outputs[p] = out
		}(p)
	}
	rg.Wait()
	if redErr != nil {
		return nil, stats, redErr
	}
	var result []O
	for _, out := range outputs {
		result = append(result, out...)
	}
	stats.ReduceOutput = len(result)
	stats.ReduceDuration = time.Since(start)
	return result, stats, nil
}

// HashString hashes string keys with FNV-1a.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// HashUint64 mixes an integer key (SplitMix64 finalizer).
func HashUint64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashInt32 hashes an int32 key.
func HashInt32(x int32) uint64 { return HashUint64(uint64(uint32(x))) }

// HashInt32Pair hashes a pair of int32 keys.
func HashInt32Pair(p [2]int32) uint64 {
	return HashUint64(uint64(uint32(p[0]))<<32 | uint64(uint32(p[1])))
}

// HashFloat64 hashes a float64 key by its bits.
func HashFloat64(f float64) uint64 { return HashUint64(math.Float64bits(f)) }
