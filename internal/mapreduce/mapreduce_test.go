package mapreduce

import (
	"sort"
	"strings"
	"testing"
)

func TestWordCount(t *testing.T) {
	docs := []string{"a b a", "b c", "a"}
	type count struct {
		word string
		n    int
	}
	out, stats, err := Run(
		Config{Nodes: 4, Name: "wordcount"},
		docs,
		func(doc string, emit Emitter[string, int]) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(word string, ones []int, emit func(count)) {
			emit(count{word, len(ones)})
		},
		HashString,
	)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].word < out[j].word })
	want := []count{{"a", 3}, {"b", 2}, {"c", 1}}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v want %v", i, out[i], want[i])
		}
	}
	if stats.InputRecords != 3 || stats.MapOutput != 6 || stats.DistinctKeys != 3 || stats.ReduceOutput != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestRunValidatesNodes(t *testing.T) {
	_, _, err := Run(Config{Nodes: 0}, []int{1},
		func(i int, emit Emitter[int, int]) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { emit(k) },
		func(k int) uint64 { return HashUint64(uint64(k)) },
	)
	if err == nil {
		t.Error("expected error for zero nodes")
	}
}

func TestPartitioningCoversAllKeys(t *testing.T) {
	// Every emitted key must reach exactly one reducer regardless of node
	// count: the grouped totals are invariant.
	input := make([]int, 10000)
	for i := range input {
		input[i] = i
	}
	for _, nodes := range []int{1, 3, 32, 100} {
		out, _, err := Run(Config{Nodes: nodes},
			input,
			func(i int, emit Emitter[int, int]) { emit(i%97, 1) },
			func(k int, vs []int, emit func([2]int)) { emit([2]int{k, len(vs)}) },
			func(k int) uint64 { return HashUint64(uint64(k)) },
		)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 97 {
			t.Fatalf("nodes=%d: %d keys want 97", nodes, len(out))
		}
		total := 0
		for _, kv := range out {
			total += kv[1]
		}
		if total != 10000 {
			t.Errorf("nodes=%d: total %d want 10000", nodes, total)
		}
	}
}

func TestDeterministicGroupContents(t *testing.T) {
	// Group contents (as multisets) are deterministic even though order
	// is not: sum of values per key must match across runs.
	input := make([]int, 5000)
	for i := range input {
		input[i] = i
	}
	runOnce := func() map[int]int {
		out, _, err := Run(Config{Nodes: 8},
			input,
			func(i int, emit Emitter[int, int]) { emit(i%13, i) },
			func(k int, vs []int, emit func([2]int)) {
				s := 0
				for _, v := range vs {
					s += v
				}
				emit([2]int{k, s})
			},
			func(k int) uint64 { return HashUint64(uint64(k)) },
		)
		if err != nil {
			t.Fatal(err)
		}
		m := map[int]int{}
		for _, kv := range out {
			m[kv[0]] = kv[1]
		}
		return m
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatal("different key sets")
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("key %d: %d vs %d", k, v, b[k])
		}
	}
}

func TestMapPanicSurfacesAsError(t *testing.T) {
	_, _, err := Run(Config{Nodes: 2}, []int{1, 2, 3},
		func(i int, emit Emitter[int, int]) {
			if i == 2 {
				panic("boom")
			}
			emit(i, i)
		},
		func(k int, vs []int, emit func(int)) { emit(k) },
		func(k int) uint64 { return HashUint64(uint64(k)) },
	)
	if err == nil || !strings.Contains(err.Error(), "map task panicked") {
		t.Errorf("err = %v", err)
	}
}

func TestReducePanicSurfacesAsError(t *testing.T) {
	_, _, err := Run(Config{Nodes: 2}, []int{1},
		func(i int, emit Emitter[int, int]) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { panic("reduce boom") },
		func(k int) uint64 { return HashUint64(uint64(k)) },
	)
	if err == nil || !strings.Contains(err.Error(), "reduce task panicked") {
		t.Errorf("err = %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	out, stats, err := Run(Config{Nodes: 4}, nil,
		func(i int, emit Emitter[int, int]) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { emit(k) },
		func(k int) uint64 { return HashUint64(uint64(k)) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.MapOutput != 0 {
		t.Errorf("out=%v stats=%+v", out, stats)
	}
}

func TestHashHelpersSpread(t *testing.T) {
	// Adjacent keys should land on many distinct buckets.
	buckets := map[uint64]bool{}
	for i := int32(0); i < 1000; i++ {
		buckets[HashInt32(i)%32] = true
	}
	if len(buckets) < 30 {
		t.Errorf("HashInt32 spread over %d/32 buckets", len(buckets))
	}
	if HashInt32Pair([2]int32{1, 2}) == HashInt32Pair([2]int32{2, 1}) {
		t.Error("pair hash should be order sensitive")
	}
	if HashFloat64(1.0) == HashFloat64(2.0) {
		t.Error("float hash collision on distinct values")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Name: "job", InputRecords: 1}
	if !strings.Contains(s.String(), "job") {
		t.Errorf("String() = %q", s.String())
	}
	if s.Total() != 0 {
		t.Errorf("Total = %v", s.Total())
	}
}
