package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	cases := []struct{ x, want float64 }{
		{1, -gamma},
		{2, 1 - gamma},
		{0.5, -gamma - 2*math.Ln2},
		{10, 2.251752589066721},
	}
	for _, tc := range cases {
		if got := Digamma(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Digamma(%v) = %v want %v", tc.x, got, tc.want)
		}
	}
	if !math.IsNaN(Digamma(-1)) {
		t.Error("Digamma(-1) should be NaN")
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x
	for _, x := range []float64{0.3, 1.7, 5.5, 20} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("recurrence failed at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestLogGammaPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integration of the density.
	alpha, beta := 2.5, 0.7
	sum := 0.0
	dx := 0.001
	for x := dx; x < 60; x += dx {
		sum += math.Exp(LogGammaPDF(x, alpha, beta)) * dx
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("gamma density integrates to %v", sum)
	}
	if !math.IsInf(LogGammaPDF(-1, alpha, beta), -1) {
		t.Error("negative support should give -Inf")
	}
}

func TestLogNormalPDF(t *testing.T) {
	got := LogNormalPDF(0, 0, 1)
	want := -0.5 * math.Log(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("standard normal at 0: %v want %v", got, want)
	}
}

func TestFitGammaWeightedRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha, beta := 3.0, 0.5
	xs := make([]float64, 20000)
	ws := make([]float64, len(xs))
	for i := range xs {
		// Sum of alpha exponentials approximates Gamma for integer alpha.
		s := 0.0
		for j := 0; j < int(alpha); j++ {
			s += rng.ExpFloat64() / beta
		}
		xs[i] = s
		ws[i] = 1
	}
	a, b, err := FitGammaWeighted(xs, ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-alpha) > 0.2 || math.Abs(b-beta) > 0.05 {
		t.Errorf("recovered alpha=%v beta=%v want %v,%v", a, b, alpha, beta)
	}
}

func TestFitGammaWeightedErrors(t *testing.T) {
	if _, _, err := FitGammaWeighted([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("expected error for zero total weight")
	}
}

func synthMixtureSample(rng *rand.Rand, n int, theta float64) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		switch {
		case u < 0.35: // erroneous kmers: small gamma-ish values
			out = append(out, rng.ExpFloat64()*2)
		case u < 0.90: // single-copy coverage peak
			out = append(out, theta+rng.NormFloat64()*math.Sqrt(theta*1.5))
		default: // two-copy peak
			out = append(out, 2*theta+rng.NormFloat64()*math.Sqrt(2*theta*1.5))
		}
	}
	for i, v := range out {
		if v < 0.01 {
			out[i] = 0.01
		}
	}
	return out
}

func TestFitMixtureRecoversStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	theta := 57.0 // the paper's E. coli coverage constant (§3.7)
	ts := synthMixtureSample(rng, 8000, theta)
	m, err := FitMixture(ts, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.Theta < theta*0.8 || m.Theta > theta*1.2 {
		t.Errorf("theta = %v want ~%v", m.Theta, theta)
	}
	// The threshold must separate the error mass from the coverage peak.
	thr := m.Threshold()
	if thr < 3 || thr > theta*0.8 {
		t.Errorf("threshold = %v outside plausible (3, %v)", thr, theta*0.8)
	}
	// Posterior classification: small values error, peak values valid.
	if m.ErrorPosterior(1) < 0.9 {
		t.Errorf("P(error|T=1) = %v want >0.9", m.ErrorPosterior(1))
	}
	if m.ErrorPosterior(theta) > 0.1 {
		t.Errorf("P(error|T=theta) = %v want <0.1", m.ErrorPosterior(theta))
	}
}

func TestFitMixtureBICPrefersParsimony(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ts := synthMixtureSample(rng, 6000, 40)
	m, err := FitMixtureBIC(ts, 1, 4, 150)
	if err != nil {
		t.Fatal(err)
	}
	if m.G < 1 || m.G > 4 {
		t.Fatalf("selected G=%d", m.G)
	}
	// The sample has two coverage peaks; BIC should not need four.
	if m.G == 4 {
		t.Errorf("BIC chose the most complex model (G=4); likely overfit")
	}
}

func TestFitMixtureValidation(t *testing.T) {
	if _, err := FitMixture(nil, 2, 10); err == nil {
		t.Error("expected error on empty sample")
	}
	if _, err := FitMixture([]float64{1}, 0, 10); err == nil {
		t.Error("expected error on G=0")
	}
	if _, err := FitMixture([]float64{0, 0}, 1, 10); err == nil {
		t.Error("expected error on all-zero sample")
	}
}

func TestPosteriorSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := synthMixtureSample(rng, 2000, 30)
	m, err := FitMixture(ts, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 10, 30, 60, 90} {
		post := m.Posterior(x)
		sum := 0.0
		for _, p := range post {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("posterior at %v sums to %v", x, sum)
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}
