// Package stats provides the statistical machinery REDEEM needs: the
// digamma special function, Gamma/Normal log densities, and the §3.7
// mixture model (Gamma + G coverage-peaked Normals + Uniform) fitted by EM
// with BIC model selection, used to infer the error/valid kmer threshold
// from the histogram of estimated read attempts T_l.
package stats

import (
	"fmt"
	"math"
)

// Digamma computes the logarithmic derivative of the Gamma function ψ(x)
// for x > 0 using upward recurrence into the asymptotic region.
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion.
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return result
}

// LogGammaPDF is the log density of Gamma(shape α, rate β) at x > 0.
func LogGammaPDF(x, alpha, beta float64) float64 {
	if x <= 0 || alpha <= 0 || beta <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(alpha)
	return alpha*math.Log(beta) + (alpha-1)*math.Log(x) - beta*x - lg
}

// LogNormalPDF is the log density of N(mu, sigma^2) at x.
func LogNormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(-1)
	}
	z := (x - mu) / sigma
	return -0.5*z*z - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// FitGammaWeighted computes weighted maximum-likelihood Gamma(α, β)
// parameters from observations xs with non-negative weights ws, solving
// ln α − ψ(α) = ln(mean) − mean(ln x) by Newton iteration.
func FitGammaWeighted(xs, ws []float64) (alpha, beta float64, err error) {
	const eps = 1e-9
	var sw, swx, swl float64
	for i, x := range xs {
		w := ws[i]
		if w <= 0 {
			continue
		}
		if x < eps {
			x = eps
		}
		sw += w
		swx += w * x
		swl += w * math.Log(x)
	}
	if sw < eps {
		return 0, 0, fmt.Errorf("stats: no weight on gamma component")
	}
	mean := swx / sw
	meanLog := swl / sw
	s := math.Log(mean) - meanLog
	if s <= 0 {
		s = 1e-6
	}
	// Minka's initialization then Newton on f(α)=ln α − ψ(α) − s.
	alpha = (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	for iter := 0; iter < 60; iter++ {
		f := math.Log(alpha) - Digamma(alpha) - s
		// f'(α) = 1/α − ψ'(α); approximate trigamma numerically.
		h := 1e-6 * alpha
		fp := (math.Log(alpha+h) - Digamma(alpha+h) - s - f) / h
		if fp == 0 {
			break
		}
		next := alpha - f/fp
		if next <= 0 {
			next = alpha / 2
		}
		if math.Abs(next-alpha) < 1e-10*alpha {
			alpha = next
			break
		}
		alpha = next
	}
	beta = alpha / mean
	return alpha, beta, nil
}

// Mixture is the fitted §3.7 model: a Gamma component for erroneous kmers,
// G Normal components peaked at multiples of the coverage constant, and a
// Uniform catch-all for high-copy repeats.
type Mixture struct {
	G          int       // number of Normal (valid-kmer) components
	Weights    []float64 // length G+2: [gamma, normal_1..normal_G, uniform]
	GammaAlpha float64
	GammaBeta  float64
	// Theta is the coverage constant: the Normal component g has mean
	// g*Theta and variance g*Theta*Disp.
	Theta float64
	Disp  float64 // overdispersion factor (>=1 for Negative-Binomial-like)
	MaxT  float64 // uniform component support
	// LogLik is the final observed-data log likelihood; BIC the criterion.
	LogLik float64
	BIC    float64
	Iters  int
}

// componentLogPDF returns the log density of component c at x.
func (m *Mixture) componentLogPDF(c int, x float64) float64 {
	switch {
	case c == 0:
		return LogGammaPDF(x, m.GammaAlpha, m.GammaBeta)
	case c <= m.G:
		g := float64(c)
		sigma := math.Sqrt(g * m.Theta * m.Disp)
		return LogNormalPDF(x, g*m.Theta, sigma)
	default:
		if x < 0 || x > m.MaxT {
			return math.Inf(-1)
		}
		return -math.Log(m.MaxT)
	}
}

// Posterior returns P(component | x) for all G+2 components.
func (m *Mixture) Posterior(x float64) []float64 {
	logs := make([]float64, m.G+2)
	maxLog := math.Inf(-1)
	for c := range logs {
		logs[c] = math.Log(m.Weights[c]) + m.componentLogPDF(c, x)
		if logs[c] > maxLog {
			maxLog = logs[c]
		}
	}
	out := make([]float64, len(logs))
	sum := 0.0
	for c, l := range logs {
		out[c] = math.Exp(l - maxLog)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
	return out
}

// ErrorPosterior is P(erroneous | x): the Gamma component's responsibility.
func (m *Mixture) ErrorPosterior(x float64) float64 { return m.Posterior(x)[0] }

// Threshold locates the boundary between the Gamma (error) component and
// the first coverage peak: the smallest x at or beyond the Gamma mean where
// the error posterior drops below 0.5 (§3.7's argmax rule as a cut point).
// Scanning starts at the Gamma mean because below it the low-density tails
// of the other components can win spuriously.
func (m *Mixture) Threshold() float64 {
	lo := m.GammaAlpha / m.GammaBeta
	if lo <= 0 || math.IsNaN(lo) {
		lo = 0
	}
	hi := m.Theta
	if hi <= lo || math.IsNaN(hi) {
		hi = m.MaxT
	}
	steps := 4000
	for i := 0; i <= steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps)
		if x <= 0 {
			continue
		}
		if m.ErrorPosterior(x) < 0.5 {
			return x
		}
	}
	return hi
}

// FitMixture fits the mixture with a fixed number of Normal components G.
func FitMixture(ts []float64, G int, maxIter int) (*Mixture, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("stats: empty sample")
	}
	if G < 1 {
		return nil, fmt.Errorf("stats: need at least one normal component")
	}
	maxT := 0.0
	for _, t := range ts {
		if t > maxT {
			maxT = t
		}
	}
	if maxT <= 0 {
		return nil, fmt.Errorf("stats: all observations are zero")
	}
	m := &Mixture{G: G, MaxT: maxT}
	// Initialization: theta from a robust high quantile heuristic — the
	// dominant coverage peak sits near the mode of the nonzero mass.
	m.Theta = initTheta(ts)
	m.Disp = 2
	m.GammaAlpha, m.GammaBeta = 1, 1.0/math.Max(m.Theta/10, 0.5)
	m.Weights = make([]float64, G+2)
	for c := range m.Weights {
		m.Weights[c] = 1 / float64(G+2)
	}
	resp := make([][]float64, len(ts))
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		// E step.
		ll := 0.0
		for i, t := range ts {
			post := m.Posterior(t)
			resp[i] = post
			// Observed log likelihood term.
			acc := 0.0
			for c := range post {
				acc += m.Weights[c] * math.Exp(m.componentLogPDF(c, t))
			}
			if acc > 0 {
				ll += math.Log(acc)
			} else {
				ll += -745 // log of smallest normal float64
			}
		}
		m.LogLik = ll
		m.Iters = iter + 1
		// M step: weights.
		for c := range m.Weights {
			sum := 0.0
			for i := range ts {
				sum += resp[i][c]
			}
			m.Weights[c] = math.Max(sum/float64(len(ts)), 1e-12)
		}
		// Gamma component.
		w0 := make([]float64, len(ts))
		for i := range ts {
			w0[i] = resp[i][0]
		}
		if a, b, err := FitGammaWeighted(ts, w0); err == nil {
			m.GammaAlpha, m.GammaBeta = a, b
		}
		// Coverage constant: weighted regression of T on g through the
		// origin, then the shared dispersion factor. This preserves the
		// paper's constraint that component g has mean g·θ and variance
		// proportional to g·θ.
		var num, den float64
		for i, t := range ts {
			for g := 1; g <= G; g++ {
				z := resp[i][g]
				num += z * t * float64(g)
				den += z * float64(g) * float64(g)
			}
		}
		if den > 0 {
			m.Theta = num / den
		}
		var vnum, vden float64
		for i, t := range ts {
			for g := 1; g <= G; g++ {
				z := resp[i][g]
				d := t - float64(g)*m.Theta
				vnum += z * d * d
				vden += z * float64(g) * m.Theta
			}
		}
		if vden > 0 {
			m.Disp = math.Max(vnum/vden, 0.25)
		}
		if iter > 0 && math.Abs(ll-prevLL) < 1e-6*(1+math.Abs(ll)) {
			break
		}
		prevLL = ll
	}
	// Parameter count: weights (G+1 free) + gamma (2) + theta + disp.
	k := float64(G+1) + 4
	m.BIC = -2*m.LogLik + k*math.Log(float64(len(ts)))
	return m, nil
}

// FitMixtureBIC fits the mixture for G in [minG, maxG] and returns the
// BIC-minimizing model (§3.7: "compute and minimize the BIC over a range of
// plausible G").
func FitMixtureBIC(ts []float64, minG, maxG, maxIter int) (*Mixture, error) {
	var best *Mixture
	for G := minG; G <= maxG; G++ {
		m, err := FitMixture(ts, G, maxIter)
		if err != nil {
			return nil, err
		}
		if best == nil || m.BIC < best.BIC {
			best = m
		}
	}
	return best, nil
}

// initTheta estimates the primary coverage peak as the mode of a coarse
// histogram over the upper 80% of the sample range.
func initTheta(ts []float64) float64 {
	maxT := 0.0
	for _, t := range ts {
		if t > maxT {
			maxT = t
		}
	}
	const bins = 60
	hist := make([]float64, bins)
	for _, t := range ts {
		b := int(t / maxT * float64(bins-1))
		hist[b]++
	}
	// Ignore the error spike near zero: start after the first valley.
	start := 1
	for start < bins-1 && hist[start] > hist[start+1] {
		start++
	}
	best, bestV := start, -1.0
	for b := start; b < bins; b++ {
		if hist[b] > bestV {
			best, bestV = b, hist[b]
		}
	}
	theta := (float64(best) + 0.5) * maxT / float64(bins)
	if theta <= 0 {
		theta = maxT / 2
	}
	return theta
}

// Mean computes the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
