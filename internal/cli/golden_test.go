package cli

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// goldenInput writes a simulated corpus to a FASTQ file and returns its
// path plus the genome length.
func goldenInput(t *testing.T) (string, int) {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "golden", GenomeLen: 6000, ReadLen: 36, Coverage: 25,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "reads.fastq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fastq.Write(f, simulate.Reads(ds.Sim)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, len(ds.Genome)
}

// fileOpener is the historical CLIs' source shape.
func fileOpener(path string) func() (seq.ChunkSource, error) {
	return func() (seq.ChunkSource, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return fastq.NewChunkReader(f, 0), nil
	}
}

// legacyReptileOutput reproduces the pre-refactor cmd/reptile pipeline
// verbatim — sampling, parameter derivation and override order included —
// and returns the corrected FASTQ bytes. It is the frozen reference the
// repro subcommand must match byte for byte.
func legacyReptileOutput(t *testing.T, in string, k, d, genomeLen, workers int) []byte {
	t.Helper()
	open := fileOpener(in)
	const sampleReads = 20000
	src, err := open()
	if err != nil {
		t.Fatal(err)
	}
	var sample []seq.Read
	for len(sample) < sampleReads {
		chunk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sample = append(sample, chunk...)
	}
	src.Close()
	params := reptile.DefaultParams(sample, genomeLen)
	if k > 0 {
		params.K = k
		params.C = min(params.K, params.D+4)
	}
	params.D = d
	if params.C <= params.D {
		params.C = params.D + 2
	}
	params.Build = kspectrum.BuildOptions{Workers: workers}
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	emit := func(orig, corrected []seq.Read) error { return w.WriteChunk(corrected) }
	if _, err := reptile.CorrectStream(open, emit, params, workers); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// legacyRedeemOutput reproduces the pre-refactor cmd/redeem pipeline
// verbatim.
func legacyRedeemOutput(t *testing.T, in string, k int, errorRate float64, workers int) []byte {
	t.Helper()
	model := simulate.NewUniformKmerModel(k, errorRate)
	cfg := redeem.DefaultConfig(k)
	cfg.Build = kspectrum.BuildOptions{Workers: workers}
	cfg.MixtureMaxG = 4
	var buf bytes.Buffer
	w := fastq.NewWriter(&buf)
	emit := func(orig, corrected []seq.Read) error { return w.WriteChunk(corrected) }
	if _, _, err := redeem.CorrectStream(fileOpener(in), emit, model, cfg, workers); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runSubcommand executes a cli subcommand into a temp output file and
// returns the output bytes.
func runSubcommand(t *testing.T, run func([]string, io.Writer) error, args []string, out string) []byte {
	t.Helper()
	var status bytes.Buffer
	if err := run(args, &status); err != nil {
		t.Fatalf("subcommand failed: %v (status: %s)", err, status.String())
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestGoldenReptileCLI: `repro reptile` (and therefore the legacy reptile
// wrapper, which calls the same function) produces output byte-identical
// to the pre-refactor pipeline, with and without explicit -k and across
// a memory budget.
func TestGoldenReptileCLI(t *testing.T) {
	in, genomeLen := goldenInput(t)
	gl := itoa(genomeLen)
	cases := []struct {
		name string
		args []string
		want func() []byte
	}{
		{
			"derived-k",
			[]string{"-in", in, "-workers", "1", "-genome-len", gl},
			func() []byte { return legacyReptileOutput(t, in, 0, 1, genomeLen, 1) },
		},
		{
			"explicit-k-d2",
			[]string{"-in", in, "-workers", "1", "-genome-len", gl, "-k", "11", "-d", "2"},
			func() []byte { return legacyReptileOutput(t, in, 11, 2, genomeLen, 1) },
		},
		{
			"mem-budget",
			[]string{"-in", in, "-workers", "1", "-genome-len", gl, "-mem-budget", "64KB"},
			func() []byte { return legacyReptileOutput(t, in, 0, 1, genomeLen, 1) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "out.fastq")
			got := runSubcommand(t, reptileCmd, append(tc.args, "-out", out), out)
			want := tc.want()
			if !bytes.Equal(got, want) {
				t.Errorf("repro reptile output diverges from the legacy pipeline (%d vs %d bytes)", len(got), len(want))
			}
			if len(got) == 0 {
				t.Error("empty output")
			}
		})
	}
}

// TestGoldenRedeemCLI: `repro redeem` ≡ the pre-refactor pipeline.
func TestGoldenRedeemCLI(t *testing.T) {
	in, _ := goldenInput(t)
	out := filepath.Join(t.TempDir(), "out.fastq")
	got := runSubcommand(t, redeemCmd, []string{"-in", in, "-out", out, "-workers", "1"}, out)
	want := legacyRedeemOutput(t, in, 11, 0.01, 1)
	if !bytes.Equal(got, want) {
		t.Errorf("repro redeem output diverges from the legacy pipeline (%d vs %d bytes)", len(got), len(want))
	}
	if len(got) == 0 {
		t.Error("empty output")
	}
}

// TestGoldenSpectrumRoundTrip: -save-spectrum then -load-spectrum through
// the subcommands reproduces the fresh-build output, and the k-authority
// rule still rejects a disagreeing explicit -k.
func TestGoldenSpectrumRoundTrip(t *testing.T) {
	in, genomeLen := goldenInput(t)
	gl := itoa(genomeLen)
	dir := t.TempDir()
	spec := filepath.Join(dir, "run.kspc")
	out1 := filepath.Join(dir, "out1.fastq")
	out2 := filepath.Join(dir, "out2.fastq")
	first := runSubcommand(t, reptileCmd,
		[]string{"-in", in, "-out", out1, "-workers", "1", "-genome-len", gl, "-save-spectrum", spec}, out1)
	second := runSubcommand(t, reptileCmd,
		[]string{"-in", in, "-out", out2, "-workers", "1", "-genome-len", gl, "-load-spectrum", spec}, out2)
	if !bytes.Equal(first, second) {
		t.Error("spectrum-reuse output diverges from fresh build")
	}
	stored, err := kspectrum.ReadSpectrumFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	err = reptileCmd([]string{"-in", in, "-out", filepath.Join(dir, "x.fastq"),
		"-workers", "1", "-k", itoa(stored.K + 1), "-load-spectrum", spec}, io.Discard)
	if err == nil {
		t.Error("disagreeing explicit -k accepted against stored spectrum")
	}
}

// itoa shortens the flag-value conversions above.
func itoa(n int) string { return strconv.Itoa(n) }
