package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// testFixture builds a corpus, persists its spectrum through the store
// (exercising the same load path the daemon uses), and returns the server
// plus the reads and spectrum.
func testFixture(t *testing.T, opts ServerOptions) (*server, []seq.Read, *kspectrum.Spectrum) {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 6000, ReadLen: 36, Coverage: 30,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	built, err := kspectrum.Build(reads, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.kspc")
	if err := kspectrum.WriteSpectrumFile(path, built); err != nil {
		t.Fatal(err)
	}
	spec, err := kspectrum.ReadSpectrumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(map[string]*kspectrum.Spectrum{"main": spec, "alt": spec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, reads, spec
}

func postChunk(t *testing.T, client *http.Client, url string, chunk []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "text/x-fastq", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServeEndpoints covers the metadata endpoints and the error paths of
// the request lifecycle.
func TestServeEndpoints(t *testing.T) {
	srv, reads, _ := testFixture(t, ServerOptions{Workers: 1, MaxChunkReads: 100})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["spectra"] != float64(2) {
		t.Errorf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/v1/spectra")
	if err != nil {
		t.Fatal(err)
	}
	var specs []struct {
		Name        string `json:"name"`
		K           int    `json:"k"`
		Kmers       int    `json:"kmers"`
		BothStrands bool   `json:"both_strands"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&specs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(specs) != 2 || specs[0].Name != "alt" || specs[1].Name != "main" || specs[0].K != 11 || !specs[0].BothStrands {
		t.Errorf("spectra = %+v", specs)
	}

	chunk, err := fastq.EncodeChunk(reads[:50])
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, url, body string
		status          int
	}{
		{"unknown spectrum", "/v1/correct?spectrum=nope", string(chunk), http.StatusNotFound},
		{"ambiguous spectrum", "/v1/correct", string(chunk), http.StatusBadRequest},
		{"unknown method", "/v1/correct?spectrum=main&method=shrec", string(chunk), http.StatusBadRequest},
		{"bad fastq", "/v1/correct?spectrum=main", "not a fastq", http.StatusBadRequest},
		{"empty chunk", "/v1/correct?spectrum=main", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, _ := postChunk(t, ts.Client(), ts.URL+tc.url, []byte(tc.body))
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	// Oversized chunk: MaxChunkReads is 100, send more.
	big, err := fastq.EncodeChunk(reads[:150])
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := postChunk(t, ts.Client(), ts.URL+"/v1/correct?spectrum=main", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized chunk: status %d want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}

	// Wrong verb.
	resp, err = http.Get(ts.URL + "/v1/correct?spectrum=main")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/correct: status %d want 405", resp.StatusCode)
	}
}

// TestServeRedeemOnlySpectrum: a spectrum Reptile cannot serve (k > 16
// overflows the packed 2k-base tile) must not kill the daemon — it loads,
// lists, serves REDEEM, and answers method=reptile with a clean 400.
func TestServeRedeemOnlySpectrum(t *testing.T) {
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 4000, ReadLen: 36, Coverage: 20,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	spec, err := kspectrum.Build(reads, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(map[string]*kspectrum.Spectrum{"wide": spec}, ServerOptions{Workers: 1})
	if err != nil {
		t.Fatalf("k=20 spectrum rejected at registration: %v", err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	chunk, err := fastq.EncodeChunk(reads[:50])
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postChunk(t, ts.Client(), ts.URL+"/v1/correct?method=reptile", chunk)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte("reptile")) {
		t.Errorf("method=reptile on k=20 spectrum: status %d body %q", resp.StatusCode, body)
	}
	resp, body = postChunk(t, ts.Client(), ts.URL+"/v1/correct?method=redeem", chunk)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("method=redeem on k=20 spectrum: status %d body %q", resp.StatusCode, body)
	}
}

// TestServeCorrectConcurrent is the acceptance test of the serve path:
// 12 parallel clients (≥ 8), alternating algorithms, through a semaphore
// narrower than the client count, each response byte-identical to the
// locally computed reference for its method. Run under -race (CI does).
func TestServeCorrectConcurrent(t *testing.T) {
	srv, reads, spec := testFixture(t, ServerOptions{Workers: 2, MaxInflight: 3})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	chunk := reads[:600]
	body, err := fastq.EncodeChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}

	// Reference outputs, computed without the server.
	svc, err := reptile.NewService(spec, reptile.Params{D: 1})
	if err != nil {
		t.Fatal(err)
	}
	repOut, _, err := svc.CorrectChunk(chunk, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantReptile, err := fastq.EncodeChunk(repOut)
	if err != nil {
		t.Fatal(err)
	}
	cfg := redeem.DefaultConfig(spec.K)
	cfg.Spectrum = spec
	m, err := redeem.NewFromSpectrum(spec, simulate.NewUniformKmerModel(spec.K, 0.01), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	thr, _, err := m.InferThreshold(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantRedeem, err := fastq.EncodeChunk(m.CorrectReads(chunk, thr, 1))
	if err != nil {
		t.Fatal(err)
	}

	const clients = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		method := "reptile"
		want := wantReptile
		if c%2 == 1 {
			method = "redeem"
			want = wantRedeem
		}
		wg.Add(1)
		go func(method string, want []byte) {
			defer wg.Done()
			resp, err := ts.Client().Post(
				fmt.Sprintf("%s/v1/correct?spectrum=main&method=%s", ts.URL, method),
				"text/x-fastq", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", method, resp.StatusCode, got)
				return
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("%s: response diverges from local reference", method)
				return
			}
			if h := resp.Header.Get("X-Kserve-Reads"); h != "600" {
				errs <- fmt.Errorf("%s: X-Kserve-Reads = %q want 600", method, h)
				return
			}
			if resp.Header.Get("X-Kserve-Method") != method {
				errs <- fmt.Errorf("method header mismatch")
			}
		}(method, want)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := srv.stats.requests.Load(); got != clients {
		t.Errorf("request counter = %d want %d", got, clients)
	}
	if got := srv.stats.reads.Load(); got != clients*600 {
		t.Errorf("read counter = %d want %d", got, clients*600)
	}

	// The corrected output is itself valid FASTQ with preserved IDs.
	out, err := fastq.DecodeChunk(bytes.NewReader(wantReptile), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(chunk) {
		t.Fatalf("reference decodes to %d reads want %d", len(out), len(chunk))
	}
	for i := range out {
		if out[i].ID != chunk[i].ID {
			t.Fatalf("read %d: ID %q want %q", i, out[i].ID, chunk[i].ID)
		}
	}
	// And correction must actually help: strictly more corrected reads
	// match nothing? (quality asserted elsewhere); here just confirm some
	// change happened so the serve path is not an identity shim.
	if bytes.Equal(wantReptile, body) && bytes.Equal(wantRedeem, body) {
		t.Error("server output identical to input for both methods — no correction happened")
	}
}
