package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// hardenFixture is testFixture plus the on-disk store file, for tests
// that upload or corrupt spectrum bytes.
func hardenFixture(t *testing.T, opts ServerOptions) (*server, []seq.Read, string) {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "h", GenomeLen: 6000, ReadLen: 36, Coverage: 30,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	built, err := kspectrum.Build(reads, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "h.kspc")
	if err := kspectrum.WriteSpectrumFile(path, built); err != nil {
		t.Fatal(err)
	}
	spec, err := kspectrum.ReadSpectrumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { spec.Close() })
	srv, err := newServer(map[string]*kspectrum.Spectrum{"main": spec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, reads, path
}

func encodeChunk(t *testing.T, reads []seq.Read) []byte {
	t.Helper()
	body, err := fastq.EncodeChunk(reads)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// assertJSONError asserts the daemon's error contract: the response is
// application/json with a non-empty "error" field.
func assertJSONError(t *testing.T, resp *http.Response, body []byte) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("%s %s: status %d Content-Type = %q, want application/json; body: %s",
			resp.Request.Method, resp.Request.URL, resp.StatusCode, ct, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Errorf("error body is not JSON: %v; body: %s", err, body)
	} else if e.Error == "" {
		t.Errorf("error body has empty error field: %s", body)
	}
}

func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServeErrorsAreJSON drives every client-visible failure path and
// asserts the uniform error contract: a JSON body with an "error" field
// and an application/json Content-Type on each 4xx/5xx.
func TestServeErrorsAreJSON(t *testing.T) {
	srv, reads, _ := hardenFixture(t, ServerOptions{Workers: 1, MaxChunkBytes: 1 << 20, SpectraDir: t.TempDir()})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	chunk := encodeChunk(t, reads[:50])

	small, sreads, _ := hardenFixture(t, ServerOptions{Workers: 1, MaxChunkBytes: 64})
	tsSmall := httptest.NewServer(small.mux())
	defer tsSmall.Close()
	bigChunk := encodeChunk(t, sreads[:50])

	cases := []struct {
		name   string
		method string
		url    string
		body   []byte
		status int
	}{
		{"bad fastq", "POST", ts.URL + "/v1/correct", []byte("not fastq"), 400},
		{"empty chunk", "POST", ts.URL + "/v1/correct", nil, 400},
		{"unknown method", "POST", ts.URL + "/v1/correct?method=bogus", chunk, 400},
		{"wrong verb", "GET", ts.URL + "/v1/correct", nil, 405},
		{"unknown engine", "POST", ts.URL + "/v2/correct?engine=bogus", chunk, 400},
		{"unknown spectrum", "POST", ts.URL + "/v2/correct?spectrum=nope", chunk, 404},
		{"oversize chunk", "POST", tsSmall.URL + "/v1/correct", bigChunk, 413},
		{"invalid upload", "POST", ts.URL + "/v2/spectra?name=bad", []byte("garbage"), 400},
		{"bad upload name", "POST", ts.URL + "/v2/spectra?name=.dotfile", chunk, 400},
		{"delete unknown", "DELETE", ts.URL + "/v2/spectra/nope", nil, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.url, bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d want %d; body: %s", resp.StatusCode, tc.status, body)
			}
			assertJSONError(t, resp, body)
		})
	}
}

// stallRequest starts a correction request whose body never arrives, so
// it occupies an admission token (and correction slot) until the caller
// finishes the body through the returned pipe writer — abort with
// CloseWithError, or write a valid chunk and Close to let it complete.
// It returns once the server has admitted the request.
func stallRequest(t *testing.T, srv *server, url string) (pw *io.PipeWriter, done <-chan int) {
	t.Helper()
	pr, w := io.Pipe()
	statusc := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "text/x-fastq", pr)
		if err != nil {
			statusc <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		statusc <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.occupancy.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request was never admitted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return w, statusc
}

// TestServeShedsWhenSaturated saturates a no-queue server and asserts
// the admission queue's contract: an immediate 429 with Retry-After, a
// JSON error body, and a shed counter the /metrics endpoint exposes.
func TestServeShedsWhenSaturated(t *testing.T) {
	srv, reads, _ := hardenFixture(t, ServerOptions{Workers: 1, MaxInflight: 1, MaxQueue: -1})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	url := ts.URL + "/v1/correct?spectrum=main"

	pw, done := stallRequest(t, srv, url)
	defer pw.Close()

	resp, body := postChunk(t, ts.Client(), url, encodeChunk(t, reads[:20]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status = %d want 429; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	assertJSONError(t, resp, body)
	if got := srv.m.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d want 1", got)
	}
	out := scrapeMetrics(t, ts.URL)
	if !strings.Contains(out, "repro_requests_shed_total 1") {
		t.Errorf("/metrics missing shed counter:\n%s", out)
	}

	pw.Close() // empty body: the stalled request drains as a clean 400
	if st := <-done; st != http.StatusBadRequest {
		t.Errorf("stalled request finished with status %d want 400", st)
	}
}

// TestServeRequestDeadline holds the sole correction slot and asserts
// that a queued request gives up with 504 when -request-timeout elapses,
// without leaking its goroutines.
func TestServeRequestDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, reads, _ := hardenFixture(t, ServerOptions{
		Workers: 1, MaxInflight: 1, MaxQueue: 1, RequestTimeout: 150 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.mux())
	url := ts.URL + "/v1/correct?spectrum=main"

	pw, done := stallRequest(t, srv, url)
	start := time.Now()
	resp, body := postChunk(t, ts.Client(), url, encodeChunk(t, reads[:20]))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status = %d want 504; body: %s", resp.StatusCode, body)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Errorf("504 after %v: returned before the deadline could have fired", waited)
	}
	assertJSONError(t, resp, body)
	out := scrapeMetrics(t, ts.URL)
	if !strings.Contains(out, `repro_request_errors_total{class="deadline"} 1`) {
		t.Errorf("/metrics missing deadline error class:\n%s", out)
	}

	pw.Close()
	<-done
	ts.Close()
	// The timed-out request's handler and the stalled request's plumbing
	// must all unwind — a leak here means cancellation is not propagating.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines: %d before, %d after deadline test", before, n)
	}
}

// TestServeSpectrumUploadSwapDelete walks the hot-management lifecycle:
// upload a spectrum, correct against it, hot-swap it by re-uploading the
// name, delete it mid-flight and observe the in-flight request drain
// unharmed.
func TestServeSpectrumUploadSwapDelete(t *testing.T) {
	dir := t.TempDir()
	srv, reads, storePath := hardenFixture(t, ServerOptions{Workers: 1, SpectraDir: dir})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	specBytes, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	chunk := encodeChunk(t, reads[:50])

	upload := func(name string) map[string]any {
		t.Helper()
		resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/spectra?name="+name, specBytes)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %q: status %d; body: %s", name, resp.StatusCode, body)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("upload response: %v", err)
		}
		return out
	}

	if out := upload("up"); out["replaced"] != false {
		t.Errorf("first upload: replaced = %v want false", out["replaced"])
	}
	if _, err := os.Stat(filepath.Join(dir, "up.kspc")); err != nil {
		t.Errorf("uploaded store not at its published path: %v", err)
	}
	if got := srv.reg.size(); got != 2 {
		t.Fatalf("registry size = %d want 2 after upload", got)
	}

	// The uploaded spectrum serves corrections byte-identically to the
	// startup copy of the same store.
	respUp, bodyUp := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=up", chunk)
	respMain, bodyMain := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=main", chunk)
	if respUp.StatusCode != 200 || respMain.StatusCode != 200 {
		t.Fatalf("correct statuses: up=%d main=%d; up body: %s", respUp.StatusCode, respMain.StatusCode, bodyUp)
	}
	if !bytes.Equal(bodyUp, bodyMain) {
		t.Error("uploaded spectrum corrects differently from the same store loaded at startup")
	}

	// Hot swap: re-uploading the name replaces the entry atomically.
	if out := upload("up"); out["replaced"] != true {
		t.Errorf("re-upload: replaced = %v want true", out["replaced"])
	}

	// Delete while a request is in flight: the entry leaves the registry
	// at once (new requests 404) but the stalled request keeps its hold
	// and corrects successfully against the unmapped-pending spectrum.
	pw, done := stallRequest(t, srv, ts.URL+"/v2/correct?spectrum=up")
	defer pw.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/spectra/up", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d; body: %s", resp.StatusCode, delBody)
	}
	if _, err := os.Stat(filepath.Join(dir, "up.kspc")); !os.IsNotExist(err) {
		t.Errorf("deleted store still on disk (err=%v)", err)
	}
	resp404, body404 := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=up", chunk)
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("correct after delete: status %d want 404; body: %s", resp404.StatusCode, body404)
	}
	// Complete the stalled request's body: the correction must succeed
	// even though its spectrum was deleted (and its store unlinked) while
	// the request was in flight.
	if _, err := pw.Write(chunk); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if st := <-done; st != http.StatusOK {
		t.Errorf("in-flight request during delete finished %d want 200", st)
	}

	out := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		`repro_spectrum_swaps_total{op="upload"} 1`,
		`repro_spectrum_swaps_total{op="replace"} 1`,
		`repro_spectrum_swaps_total{op="delete"} 1`,
		`repro_spectra_loaded 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}

// TestServeUploadDeleteVerifyRace hammers the window between an upload's
// background whole-file Verify and a hot delete or swap of the same
// name: the verifier holds the entry like an in-flight request, so the
// drain-then-unmap must wait for the scan instead of pulling the mapping
// out from under it (a crash, and a -race report, without the hold).
func TestServeUploadDeleteVerifyRace(t *testing.T) {
	dir := t.TempDir()
	srv, _, storePath := hardenFixture(t, ServerOptions{Workers: 1, SpectraDir: dir})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	specBytes, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/spectra?name=race", specBytes)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %d: status %d; body: %s", i, resp.StatusCode, body)
		}
		if i%2 == 0 {
			// Delete immediately: the registry hold drops while the fresh
			// upload's verifier may still be scanning.
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/spectra/race", nil)
			dresp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("delete %d: status %d", i, dresp.StatusCode)
			}
		}
		// Odd iterations leave the entry in place so the next upload takes
		// the hot-swap path, displacing an entry whose verifier may still
		// be running.
	}
}

// TestServeUnserviceableSpectrum corrupts a mapped store's column bytes:
// OpenMapped's eager header checks pass, Verify fails sticky, and every
// correction against the spectrum becomes a clean JSON 503 with the
// spectrum quarantined (no backing path here, so the quarantine is
// permanent and the daemon keeps refusing rather than serving garbage).
func TestServeUnserviceableSpectrum(t *testing.T) {
	_, reads, storePath := hardenFixture(t, ServerOptions{Workers: 1})
	raw, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	raw[30] ^= 0xff // inside the kmer column: breaks ordering and the CRC
	badPath := filepath.Join(t.TempDir(), "bad.kspc")
	if err := os.WriteFile(badPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := kspectrum.OpenMapped(badPath)
	if err != nil {
		t.Skipf("no mmap on this platform: corruption is caught eagerly (%v)", err)
	}
	defer spec.Close()
	if !spec.Mapped() {
		t.Skip("no mmap on this platform")
	}
	if err := spec.Verify(); err == nil {
		t.Fatal("corrupted store passed Verify")
	}

	srv, err := newServer(map[string]*kspectrum.Spectrum{"bad": spec}, ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	resp, body := postChunk(t, ts.Client(), ts.URL+"/v1/correct?spectrum=bad", encodeChunk(t, reads[:20]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d want 503; body: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 quarantine response missing Retry-After")
	}
	assertJSONError(t, resp, body)
	if !strings.Contains(string(body), "quarantined") {
		t.Errorf("error body does not say quarantined: %s", body)
	}
	out := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		"repro_spectra_quarantined 1",
		`repro_request_errors_total{class="quarantined_spectrum"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
	// The spectrum listing exposes the quarantine so operators can see it
	// without scraping metrics.
	lresp, err := http.Get(ts.URL + "/v2/spectra")
	if err != nil {
		t.Fatal(err)
	}
	lbody, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	var list []struct {
		Name        string `json:"name"`
		Quarantined bool   `json:"quarantined"`
	}
	if err := json.Unmarshal(lbody, &list); err != nil {
		t.Fatalf("/v2/spectra: %v (%s)", err, lbody)
	}
	if len(list) != 1 || !list[0].Quarantined {
		t.Errorf("/v2/spectra = %s, want bad marked quarantined", lbody)
	}
}

// TestServeMetricsEndpoint asserts the scrape contract CI relies on:
// per-engine request counts and latency histograms appear after traffic,
// and the in-flight gauge returns to zero when the daemon is idle.
func TestServeMetricsEndpoint(t *testing.T) {
	srv, reads, _ := hardenFixture(t, ServerOptions{Workers: 1})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	chunk := encodeChunk(t, reads[:50])

	for i := 0; i < 3; i++ {
		resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?engine=reptile&spectrum=main", chunk)
		if resp.StatusCode != 200 {
			t.Fatalf("correct: status %d; body: %s", resp.StatusCode, body)
		}
	}
	if resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=nope", chunk); resp.StatusCode != 404 {
		t.Fatalf("expected 404, got %d: %s", resp.StatusCode, body)
	}

	out := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		`repro_requests_total{engine="reptile",spectrum="main",code="200"} 3`,
		`repro_requests_total{engine="reptile",spectrum="",code="404"} 1`,
		`repro_request_duration_seconds_count{engine="reptile",spectrum="main"} 3`,
		`repro_request_errors_total{class="unknown_spectrum"} 1`,
		`repro_inflight_requests 0`,
		`repro_spectra_loaded 1`,
		fmt.Sprintf("repro_reads_total %d", 3*50),
	} {
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q in:\n%s", line, out)
		}
	}
}
