package cli

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fastq"
	"repro/internal/loadgen"
)

// TestLoadgenAgainstServe runs the loadgen subcommand end-to-end against
// a real in-process daemon: the JSON report on stdout must parse, show
// successful corrections, and contain no server errors — the same
// assertions the CI service-smoke job makes against a booted binary.
func TestLoadgenAgainstServe(t *testing.T) {
	srv, reads, _ := testFixture(t, ServerOptions{Workers: 1})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "reads.fastq")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fastq.Write(f, reads[:600]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = loadgenCmd([]string{
		"-url", ts.URL, "-in", path, "-spectrum", "main",
		"-chunk-reads", "200", "-c", "2", "-duration", "400ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, out.String())
	}
	if rep.OK == 0 {
		t.Errorf("no successful corrections: %+v", rep)
	}
	if rep.Server5xx != 0 || rep.Failed != 0 {
		t.Errorf("server errors under load: 5xx=%d failed=%d", rep.Server5xx, rep.Failed)
	}
	if rep.Reads == 0 || rep.P50Ms <= 0 {
		t.Errorf("report missing measurements: %+v", rep)
	}
}

// TestLoadgenUsage covers the flag-validation exit paths.
func TestLoadgenUsage(t *testing.T) {
	var out bytes.Buffer
	if err := loadgenCmd(nil, &out); err == nil {
		t.Error("missing -in did not error")
	}
	if err := loadgenCmd([]string{"-in", "nope.fastq", "-url", "://bad"}, &out); err == nil {
		t.Error("unreadable input did not error")
	}
}
