package cli

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/fastq"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// ngsimCmd synthesizes the evaluation datasets of the dissertation:
// reference genomes with controlled repeat content, Illumina-like short
// reads with position-specific error profiles and ground truth, and
// 454-like metagenomic 16S read pools with taxonomy labels.
func ngsimCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("ngsim")
	var (
		mode       = fs.String("mode", "reads", "what to simulate: reads | meta")
		out        = fs.String("out", "", "output FASTQ path (required)")
		seed       = fs.Int64("seed", 1, "random seed")
		genomeLen  = fs.Int("genome-len", 100000, "reference genome length (reads mode)")
		repeatFrac = fs.Float64("repeat-frac", 0, "fraction of genome covered by repeats (reads mode)")
		readLen    = fs.Int("read-len", 36, "read length (reads mode)")
		coverage   = fs.Float64("coverage", 80, "sequencing coverage (reads mode)")
		errorRate  = fs.Float64("error-rate", 0.006, "mean substitution rate")
		bias       = fs.String("bias", "ecoli", "platform bias profile: ecoli | asp | uniform")
		nRate      = fs.Float64("n-rate", 0, "ambiguous base rate (reads mode)")
		truth      = fs.String("truth", "", "optional error-free truth FASTQ (reads mode)")
		ref        = fs.String("ref", "", "optional reference genome FASTA (reads mode)")
		n          = fs.Int("n", 10000, "number of reads (meta mode)")
		labels     = fs.String("labels", "", "optional taxonomy label TSV (meta mode)")
		workers    = fs.Int("workers", 1, "read-synthesis workers (reads mode); <=1 = the single-stream sampler, >1 = parallel per-read RNG streams (identical output for any worker count >1, but different from the single-stream sampler)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *out == "" {
		return usagef(fs, "-out is required")
	}
	switch *mode {
	case "reads":
		return simReads(stdout, *out, *truth, *ref, *seed, *genomeLen, *repeatFrac, *readLen, *coverage, *errorRate, *bias, *nRate, *workers)
	case "meta":
		return simMeta(stdout, *out, *labels, *seed, *n, *errorRate)
	default:
		return usagef(fs, "unknown mode %q", *mode)
	}
}

func simReads(stdout io.Writer, out, truth, ref string, seed int64, genomeLen int, repeatFrac float64, readLen int, coverage, errorRate float64, bias string, nRate float64, workers int) error {
	var platform simulate.PlatformBias
	switch bias {
	case "ecoli":
		platform = simulate.EcoliBias
	case "asp":
		platform = simulate.AspBias
	case "uniform":
		platform = simulate.PlatformBias{Name: "uniform", Bias: simulate.Matrix4{
			{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0},
		}}
	default:
		return fmt.Errorf("unknown bias %q", bias)
	}
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "ngsim", GenomeLen: genomeLen, RepeatFrac: repeatFrac,
		ReadLen: readLen, Coverage: coverage, ErrorRate: errorRate,
		Bias: platform, QualityNoise: 2, AmbiguousRate: nRate, Seed: seed,
		Workers: workers,
	})
	if err != nil {
		return err
	}
	if err := writeFastqFile(out, simulate.Reads(ds.Sim)); err != nil {
		return err
	}
	if truth != "" {
		tr := make([]seq.Read, len(ds.Sim))
		for i, s := range ds.Sim {
			tr[i] = seq.Read{ID: s.Read.ID, Seq: s.True}
		}
		if err := writeFastqFile(truth, tr); err != nil {
			return err
		}
	}
	if ref != "" {
		f, err := os.Create(ref)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fastq.WriteFasta(f, []fastq.FastaRecord{{ID: "ngsim-ref", Seq: ds.Genome}}); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "wrote %d reads (%dbp, %.0fx, %.2f%% error) over a %d bp genome (%.0f%% repeats)\n",
		len(ds.Sim), readLen, coverage, 100*errorRate, genomeLen, 100*repeatFrac)
	return nil
}

func simMeta(stdout io.Writer, out, labels string, seed int64, n int, errorRate float64) error {
	rng := rand.New(rand.NewSource(seed))
	tax, err := simulate.NewTaxonomy(simulate.DefaultTaxonomyConfig(), rng)
	if err != nil {
		return err
	}
	cfg := simulate.DefaultMetagenomeConfig(n)
	if errorRate > 0 {
		cfg.ErrorRate = errorRate
	}
	reads, err := simulate.SampleMetagenome(tax, cfg, rng)
	if err != nil {
		return err
	}
	if err := writeFastqFile(out, simulate.MetaReads(reads)); err != nil {
		return err
	}
	if labels != "" {
		f, err := os.Create(labels)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "read\tphylum\tgenus\tspecies")
		for _, r := range reads {
			fmt.Fprintf(f, "%s\t%d\t%d\t%d\n", r.Read.ID, r.Taxon.Phylum, r.Taxon.Genus, r.Taxon.Species)
		}
	}
	fmt.Fprintf(stdout, "wrote %d metagenomic reads from %d species\n", len(reads), len(tax.Species))
	return nil
}

func writeFastqFile(path string, reads []seq.Read) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fastq.Write(f, reads); err != nil {
		return err
	}
	return f.Close()
}
