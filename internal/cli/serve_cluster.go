package cli

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/remote"
	"repro/internal/reptile"
	"repro/internal/seq"
)

// This file is the daemon's cluster face. A node serves shard entries
// (local spectra that are prefix slices of a larger one) and answers
// the two wire endpoints a coordinator needs: GET /v2/shards for
// discovery and POST /v2/query for membership/count/neighborhood
// queries. A coordinator registers RemoteSpectrum entries whose
// correction requests fan those queries back out to the owning nodes;
// GET /v2/cluster shows the shard map and per-shard traffic.

// parseShardList parses a -shards-owned value: comma-separated shard
// numbers in [0, of), deduplicated and sorted.
func parseShardList(s string, of int) ([]int, error) {
	var out []int
	seen := make(map[int]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		i, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad shard number %q", f)
		}
		if i < 0 || i >= of {
			return nil, fmt.Errorf("shard %d out of range [0, %d)", i, of)
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shards listed")
	}
	sort.Ints(out)
	return out, nil
}

// discoverCluster polls the nodes' shard listings until every shard of
// every advertised spectrum has an owner, retrying so node and
// coordinator processes can start in any order. ctx bounds the whole
// wait: a SIGTERM during startup aborts the retry loop immediately
// instead of spinning until the -cluster-wait deadline.
func discoverCluster(ctx context.Context, nodes []string, wait time.Duration) (map[string]*remote.ShardMap, error) {
	httpc := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(wait)
	retry := time.NewTimer(0)
	if !retry.Stop() {
		<-retry.C
	}
	defer retry.Stop()
	for {
		attemptCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		maps, err := remote.Discover(attemptCtx, httpc, nodes)
		cancel()
		if err == nil && len(maps) == 0 {
			err = fmt.Errorf("cluster discovery: the nodes advertise no shards")
		}
		if err == nil {
			return maps, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("cluster discovery aborted: %w", cerr)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster discovery failed after %v: %w", wait, err)
		}
		log.Printf("cluster discovery not ready, retrying: %v", err)
		retry.Reset(500 * time.Millisecond)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster discovery aborted: %w", ctx.Err())
		case <-retry.C:
		}
	}
}

// retryAfterSeconds renders a Retry-After value from a node's own
// recovery estimate, defaulting to the daemon's standard 5s.
func retryAfterSeconds(secs int) string {
	if secs <= 0 {
		secs = 5
	}
	return strconv.Itoa(secs)
}

// newRemoteEntry builds a registry slot for a coordinator spectrum:
// spec stays nil, queries go through the fan-out backend. The Reptile
// service slot still resolves eagerly (construction is metadata-only —
// no shard round trips), so startup logs whether the cluster spectrum
// is Reptile-servable.
func (s *server) newRemoteEntry(name string, rs *remote.RemoteSpectrum) *entry {
	e := &entry{name: name, remote: rs, services: make(map[string]*serviceSlot)}
	e.refs.Store(1)
	for _, engName := range engine.Names() {
		e.services[engName] = &serviceSlot{}
	}
	if rep, err := engine.Lookup(reptile.EngineName); err == nil {
		if e.reptileErr = s.checkServable(rep, e); e.reptileErr == nil {
			_, e.reptileErr = s.service(rep, e)
		}
	}
	return e
}

// handleShards is GET /v2/shards: the shard entries this node owns, in
// the shape remote.Discover consumes.
func (s *server) handleShards(w http.ResponseWriter, r *http.Request) {
	resp := remote.ShardsResponse{Shards: []remote.ShardInfo{}}
	for _, e := range s.reg.snapshot() {
		if e.shard != nil {
			resp.Shards = append(resp.Shards, *e.shard)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// defaultMaxQueryRadius bounds the neighborhood radius POST /v2/query
// accepts when the serve -d flag does not ask for more. d=4 already
// covers every radius the correction engines issue in practice while
// keeping the per-d index builds (C(min(k,d+4),d) spectrum sorts each,
// cached forever) and the nis map bounded.
const defaultMaxQueryRadius = 4

// maxQueryRadius is the largest d the node answers: the configured
// Reptile budget when the operator raised it past the default cap.
func (s *server) maxQueryRadius() int {
	if s.opts.D > defaultMaxQueryRadius {
		return s.opts.D
	}
	return defaultMaxQueryRadius
}

// handleQuery is POST /v2/query?spectrum=ENTRY: batched kmer queries
// against one registry entry. On a node the entry is a local (shard)
// spectrum and answers come from its columns; on a coordinator the
// entry may be a remote spectrum, in which case the query proxies
// through the fan-out backend — that is how a cluster client can probe
// per-shard availability without issuing a correction.
//
// The endpoint is quarantine-aware exactly like the correction paths: a
// spectrum whose integrity checks failed answers 503 with Retry-After,
// never silently-absent kmers.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, ok := s.selectEntry(w, r)
	if !ok {
		return
	}
	defer e.release()

	var req remote.QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxChunkBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "decoding query: %v", err)
		return
	}
	if req.D < 0 {
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "negative neighborhood radius %d", req.D)
		return
	}
	if maxD := s.maxQueryRadius(); req.D > maxD {
		// Each distinct d>0 costs a permanently cached NeighborIndex
		// build — C(c,d) full-spectrum sorts — on an unauthenticated
		// endpoint; without the cap a handful of large-d requests is a
		// trivial CPU/memory exhaustion.
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest,
			"neighborhood radius %d exceeds this server's maximum %d", req.D, maxD)
		return
	}
	// Reject kmer values outside the spectrum's 2k-bit keyspace before
	// they reach any index structure: an oversized value would index
	// the local prefix buckets — or, on a coordinator, the remote shard
	// table inside fan-out goroutines, past the recover middleware —
	// out of range.
	kbits := uint(2 * e.k())
	kms := make([]seq.Kmer, len(req.Kmers))
	for i, str := range req.Kmers {
		v, err := strconv.ParseUint(str, 10, 64)
		if err != nil {
			s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "kmer %d: bad value %q", i, str)
			return
		}
		if kbits < 64 && v>>kbits != 0 {
			s.errorJSON(w, http.StatusBadRequest, errClassBadRequest,
				"kmer %d: value %q does not fit a packed %d-mer", i, str, e.k())
			return
		}
		kms[i] = seq.Kmer(v)
	}

	if e.quarantined.Load() {
		w.Header().Set("Retry-After", "5")
		s.errorJSON(w, http.StatusServiceUnavailable, errClassQuarantined,
			"spectrum %q is quarantined (unserviceable pending repair): %v", e.name, e.healthErr())
		return
	}
	if e.remote != nil {
		s.proxyQuery(r.Context(), w, e, kms, req.D)
		return
	}

	var resp remote.QueryResponse
	if req.D == 0 {
		resp.Indexes = make([]int, len(kms))
		resp.Counts = make([]uint32, len(kms))
		for i, km := range kms {
			resp.Indexes[i] = e.spec.Index(km)
			if resp.Indexes[i] >= 0 {
				resp.Counts[i] = e.spec.Count(km)
			}
		}
	} else {
		ni, err := e.neighborIndex(req.D)
		if err != nil {
			s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "neighborhood radius %d: %v", req.D, err)
			return
		}
		resp.Neighbors = make([][]string, len(kms))
		var buf []seq.Kmer
		for i, km := range kms {
			buf = ni.NeighborKmers(km, buf[:0])
			out := make([]string, len(buf))
			for j, nb := range buf {
				out[j] = strconv.FormatUint(uint64(nb), 10)
			}
			resp.Neighbors[i] = out
		}
	}
	// A mapped spectrum that failed lazy validation mid-scan answered
	// some of the queries above "absent"; quarantine and refuse rather
	// than hand a coordinator wrong data.
	if specErr := e.spec.Err(); specErr != nil {
		s.quarantine(e, specErr)
		w.Header().Set("Retry-After", "5")
		s.errorJSON(w, http.StatusServiceUnavailable, errClassQuarantined,
			"spectrum %q is quarantined (unserviceable pending repair): %v", e.name, specErr)
		return
	}
	s.countShardQuery(e, "ok")
	writeJSON(w, http.StatusOK, resp)
}

// proxyQuery answers /v2/query against a coordinator's remote entry by
// fanning out through the backend — one round trip per owning shard for
// a d=0 batch, the indexes and counts riding the same answer — mapping
// an unreachable shard to the same 503-with-Retry-After the correction
// path produces. The shard round trips are scoped to the request ctx.
func (s *server) proxyQuery(ctx context.Context, w http.ResponseWriter, e *entry, kms []seq.Kmer, d int) {
	var resp remote.QueryResponse
	var err error
	if d == 0 {
		resp.Indexes = make([]int, len(kms))
		resp.Counts = make([]uint32, len(kms))
		err = e.remote.IndexCountManyCtx(ctx, kms, resp.Indexes, resp.Counts)
	} else {
		resp.Neighbors = make([][]string, len(kms))
		for i, km := range kms {
			var hood []seq.Kmer
			if hood, err = e.remote.NeighborhoodCtx(ctx, km, d, nil); err != nil {
				break
			}
			out := make([]string, len(hood))
			for j, nb := range hood {
				out[j] = strconv.FormatUint(uint64(nb), 10)
			}
			resp.Neighbors[i] = out
		}
	}
	if err != nil {
		var sue *remote.ShardUnavailableError
		if errors.As(err, &sue) {
			w.Header().Set("Retry-After", retryAfterSeconds(sue.RetryAfter))
			s.errorJSON(w, http.StatusServiceUnavailable, errClassShardUnavailable, "%v", err)
			return
		}
		s.errorJSON(w, http.StatusBadGateway, errClassInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// countShardQuery feeds the node-side per-shard request counter; a
// no-op for entries that are not shards.
func (s *server) countShardQuery(e *entry, outcome string) {
	if e.shard != nil {
		s.m.shardRequests.With(e.shard.Spectrum, strconv.Itoa(e.shard.Shard), outcome).Inc()
	}
}

// handleCluster is GET /v2/cluster: the coordinator's shard map and
// per-shard traffic counters. On a non-coordinator daemon the spectra
// list is empty.
func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	type shardStatus struct {
		Shard    int    `json:"shard"`
		Node     string `json:"node"`
		Entry    string `json:"entry"`
		Kmers    int    `json:"kmers"`
		Requests int64  `json:"requests"`
		Errors   int64  `json:"errors"`
	}
	type spectrumStatus struct {
		Name       string        `json:"name"`
		K          int           `json:"k"`
		Kmers      int           `json:"kmers"`
		PrefixBits uint          `json:"prefix_bits"`
		Shards     []shardStatus `json:"shards"`
	}
	type nodeStatus struct {
		Node     string `json:"node"`
		Shards   int    `json:"shards"`
		Requests int64  `json:"requests"`
		Errors   int64  `json:"errors"`
	}
	spectra := []spectrumStatus{}
	byNode := make(map[string]*nodeStatus)
	for _, e := range s.reg.snapshot() {
		if e.remote == nil {
			continue
		}
		locs := e.remote.Shards()
		stats := e.remote.ShardStats()
		ss := spectrumStatus{
			Name: e.name, K: e.remote.K(), Kmers: e.remote.Len(),
			PrefixBits: e.remote.Partition().Bits,
			Shards:     make([]shardStatus, len(locs)),
		}
		for i, loc := range locs {
			ss.Shards[i] = shardStatus{
				Shard: i, Node: loc.Node, Entry: loc.Entry, Kmers: loc.Kmers,
				Requests: stats[i].Requests, Errors: stats[i].Errors,
			}
			ns := byNode[loc.Node]
			if ns == nil {
				ns = &nodeStatus{Node: loc.Node}
				byNode[loc.Node] = ns
			}
			ns.Shards++
			ns.Requests += stats[i].Requests
			ns.Errors += stats[i].Errors
		}
		spectra = append(spectra, ss)
	}
	nodes := make([]nodeStatus, 0, len(byNode))
	for _, ns := range byNode {
		nodes = append(nodes, *ns)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })
	writeJSON(w, http.StatusOK, map[string]any{
		"spectra": spectra,
		"nodes":   nodes,
	})
}
