package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// redeemCmd performs repeat-aware error detection and correction
// (Chapter 3) through the engine registry's streaming path; -detect-only
// keeps its historical direct analysis mode (T histogram + inferred
// threshold, no correction pass). Output is byte-identical to the
// historical cmd/redeem pipeline (asserted by the golden tests).
func redeemCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("redeem")
	var f correctFlags
	f.register(fs, true)
	var (
		k          = fs.Int("k", 11, "kmer length")
		errorRate  = fs.Float64("error-rate", 0.01, "assumed uniform substitution rate for the error model")
		detectOnly = fs.Bool("detect-only", false, "estimate T, print histogram and inferred threshold, and exit")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if f.in == "" || (f.out == "" && !*detectOnly) {
		return usagef(fs, "-in is required, and -out unless -detect-only")
	}
	stopProfiles, err := core.StartProfiles(f.cpuprofile, f.memprofile)
	if err != nil {
		return err
	}
	// -k has a non-zero default, so only an explicitly-set flag counts as
	// an explicit k for the spectrum k-authority rule.
	explicitK := 0
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "k" {
			explicitK = *k
		}
	})
	start := time.Now()

	if *detectOnly {
		if err := redeemDetectOnly(f, *k, explicitK, *errorRate, start, stdout); err != nil {
			return err
		}
		return stopProfiles()
	}

	opts, err := f.engineOptions()
	if err != nil {
		return err
	}
	runK := *k
	if f.loadSpec != "" && explicitK == 0 {
		runK = 0 // defer to the stored k
	}
	opts = append(opts,
		engine.WithK(runK),
		redeem.WithErrorRate(*errorRate),
		// The CLI has always swept up to 4 mixture components; keep the
		// correction pass consistent with the -detect-only report.
		redeem.WithMixtureMaxG(4),
	)
	eng, err := engine.Lookup(redeem.EngineName)
	if err != nil {
		return err
	}
	res, err := f.correctToFile(eng, engine.NewRun(opts...))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s; corrected %d of %d reads (budget %s) in %v\n",
		res.Summary, res.Changed, res.Reads, f.memBudget, time.Since(start).Round(time.Millisecond))
	return stopProfiles()
}

// redeemDetectOnly is the historical analysis mode: fit the model, infer
// the threshold, print the flagged-kmer tally and the T histogram.
func redeemDetectOnly(f correctFlags, k, explicitK int, errorRate float64, start time.Time, stdout io.Writer) error {
	var spec *kspectrum.Spectrum
	var err error
	if f.loadSpec != "" {
		if spec, err = engine.LoadSpectrumForK(f.loadSpec, explicitK, f.spectrumMode()); err != nil {
			return err
		}
		k = spec.K // the stored k is authoritative over the default
	}
	model := simulate.NewUniformKmerModel(k, errorRate)
	cfg := redeem.DefaultConfig(k)
	cfg.Spectrum = spec
	cfg.Build = kspectrum.BuildOptions{Workers: f.workers, Shards: f.shards}
	if cfg.MemoryBudget, err = core.ParseByteSize(f.memBudget); err != nil {
		return err
	}
	cfg.MixtureMaxG = 4
	// With a preloaded spectrum the reads are never consulted — detection
	// runs purely on the stored counts — so skip reading the (possibly
	// huge) input entirely.
	var reads []seq.Read
	if spec == nil {
		file, err := os.Open(f.in)
		if err != nil {
			return err
		}
		if reads, err = fastq.NewReader(file).ReadAll(); err != nil {
			file.Close()
			return err
		}
		file.Close()
	}
	m, err := redeem.New(reads, model, cfg)
	if err != nil {
		return err
	}
	iters := m.Run()
	thr, mix, err := m.InferThreshold(1, 4)
	if err != nil {
		return err
	}
	if f.saveSpec != "" {
		if err := kspectrum.WriteSpectrumFile(f.saveSpec, m.Spec); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "spectrum %d kmers; EM converged in %d iterations; inferred threshold %.2f (coverage constant %.1f, G=%d) in %v\n",
		m.Spec.Size(), iters, thr, mix.Theta, mix.G, time.Since(start).Round(time.Millisecond))
	flagged := m.DetectByT(thr)
	n := 0
	for _, b := range flagged {
		if b {
			n++
		}
	}
	fmt.Fprintf(stdout, "flagged %d of %d kmers as erroneous\n", n, len(flagged))
	fmt.Fprintln(stdout, "T histogram (bin width = coverage/20):")
	width := mix.Theta / 20
	if width <= 0 {
		width = 1
	}
	h := m.THistogram(width, 2.5*mix.Theta)
	for b, c := range h {
		fmt.Fprintf(stdout, "%8.1f %d\n", float64(b)*width, c)
	}
	return nil
}
