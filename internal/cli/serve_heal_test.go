package cli

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/kspectrum"
)

// TestServePanicRecovery injects a one-shot panic into the correction
// middleware and asserts the daemon's self-defense contract: the
// poisoned request answers a JSON 500, the panic error class counts,
// and the very next request corrects normally — the daemon survives its
// own bugs.
func TestServePanicRecovery(t *testing.T) {
	srv, reads, _ := hardenFixture(t, ServerOptions{Workers: 1})
	defer srv.close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	chunk := encodeChunk(t, reads[:20])
	url := ts.URL + "/v1/correct?spectrum=main"

	disable := faultinject.Enable(&faultinject.Rule{
		Site: "serve.request", Op: faultinject.OpAny, Nth: 1, Panic: true,
	})
	defer disable()

	resp, body := postChunk(t, ts.Client(), url, chunk)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status = %d want 500; body: %s", resp.StatusCode, body)
	}
	assertJSONError(t, resp, body)
	if !strings.Contains(string(body), "panic") {
		t.Errorf("error body does not mention the panic: %s", body)
	}

	// The rule was one-shot: the daemon must still be serving.
	resp2, body2 := postChunk(t, ts.Client(), url, chunk)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status = %d want 200; body: %s", resp2.StatusCode, body2)
	}
	out := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		`repro_request_errors_total{class="panic"} 1`,
		`repro_requests_total{engine="reptile",spectrum="main",code="200"} 1`,
		"repro_inflight_requests 0",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q in:\n%s", line, out)
		}
	}
}

// TestServeQuarantineRestore is the self-healing round trip: a spectrum
// whose store is corrupt on disk quarantines at startup (background
// verification), requests answer 503, and once the file is repaired the
// probe loop re-opens, re-verifies and atomically restores it — requests
// succeed again with no operator action and no restart.
func TestServeQuarantineRestore(t *testing.T) {
	_, reads, storePath := hardenFixture(t, ServerOptions{Workers: 1})
	chunkBody := encodeChunk(t, reads[:20])

	// Corrupt one kmer-column byte in place BEFORE the server maps the
	// file (never truncate or rewrite a file that may be mapped).
	f, err := os.OpenFile(storePath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]byte, 1)
	if _, err := f.ReadAt(orig, 30); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{orig[0] ^ 0xff}, 30); err != nil {
		t.Fatal(err)
	}

	spec, err := engine.LoadSpectrumForK(storePath, 0, engine.SpectrumMapped)
	if err != nil {
		f.Close()
		t.Skipf("no mmap on this platform: corruption is caught eagerly (%v)", err)
	}
	defer spec.Close()
	if !spec.Mapped() {
		f.Close()
		t.Skip("no mmap on this platform")
	}
	// Make the sticky error deterministic before the server starts: the
	// first request then answers 503 whether the background verifier or
	// the request path's own check quarantines first.
	if err := spec.Verify(); err == nil {
		f.Close()
		t.Fatal("corrupted store passed Verify")
	}

	srv, err := newServer(map[string]*kspectrum.Spectrum{"main": spec}, ServerOptions{
		Workers:        1,
		SpectrumPaths:  map[string]string{"main": storePath},
		QuarantineBase: 5 * time.Millisecond,
		QuarantineMax:  20 * time.Millisecond,
	})
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	defer srv.close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	url := ts.URL + "/v2/correct?spectrum=main"

	// The background verifier (or the first request's sticky-error check)
	// quarantines the spectrum; either way the request must answer 503.
	resp, body := postChunk(t, ts.Client(), url, chunkBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		f.Close()
		t.Fatalf("corrupt spectrum: status = %d want 503; body: %s", resp.StatusCode, body)
	}
	assertJSONError(t, resp, body)

	// Repair the store in place. The probe's next attempt re-opens the
	// file, verifies the whole store, and restores service.
	if _, err := f.WriteAt(orig, 30); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(10 * time.Second)
	var last int
	var lastBody []byte
	for time.Now().Before(deadline) {
		resp, body := postChunk(t, ts.Client(), url, chunkBody)
		last, lastBody = resp.StatusCode, body
		if last == http.StatusOK {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if last != http.StatusOK {
		t.Fatalf("spectrum never restored: final status %d; body: %s", last, lastBody)
	}

	// The restored entry must serve the same corrections as a clean load.
	cleanSpec, err := kspectrum.ReadSpectrumFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanSpec.Close()
	cleanSrv, err := newServer(map[string]*kspectrum.Spectrum{"main": cleanSpec}, ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanSrv.close()
	tsClean := httptest.NewServer(cleanSrv.mux())
	defer tsClean.Close()
	respClean, bodyClean := postChunk(t, tsClean.Client(), tsClean.URL+"/v2/correct?spectrum=main", chunkBody)
	if respClean.StatusCode != http.StatusOK {
		t.Fatalf("clean server: status %d; body: %s", respClean.StatusCode, bodyClean)
	}
	if !bytes.Equal(lastBody, bodyClean) {
		t.Error("restored spectrum corrects differently from a clean load")
	}

	out := scrapeMetrics(t, ts.URL)
	for _, line := range []string{
		"repro_spectra_quarantined 0",
		`repro_spectrum_swaps_total{op="restore"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("/metrics missing %q in:\n%s", line, out)
		}
	}
}

// TestServeQuarantineDeleteWins quarantines a spectrum with no hope of
// repair (the backing file stays corrupt) and deletes it: the probe must
// stand down, the gauge must drop to zero, and the name must 404 — the
// operator's resolution beats the probe's.
func TestServeQuarantineDeleteWins(t *testing.T) {
	_, reads, storePath := hardenFixture(t, ServerOptions{Workers: 1})
	chunkBody := encodeChunk(t, reads[:20])

	f, err := os.OpenFile(storePath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 30); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec, err := engine.LoadSpectrumForK(storePath, 0, engine.SpectrumMapped)
	if err != nil {
		t.Skipf("no mmap on this platform: corruption is caught eagerly (%v)", err)
	}
	defer spec.Close()
	if !spec.Mapped() {
		t.Skip("no mmap on this platform")
	}
	if err := spec.Verify(); err == nil {
		t.Fatal("corrupted store passed Verify")
	}

	srv, err := newServer(map[string]*kspectrum.Spectrum{"doomed": spec}, ServerOptions{
		Workers:        1,
		SpectrumPaths:  map[string]string{"doomed": storePath},
		QuarantineBase: 5 * time.Millisecond,
		QuarantineMax:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.close()
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=doomed", chunkBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("corrupt spectrum: status = %d want 503; body: %s", resp.StatusCode, body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/spectra/doomed", nil)
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}

	resp404, _ := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=doomed", chunkBody)
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("correct after delete: status %d want 404", resp404.StatusCode)
	}
	// The gauge recomputes from the registry, so the deleted quarantined
	// entry stops counting even while its probe unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for srv.reg.countQuarantined() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	srv.updateQuarantineGauge()
	if out := scrapeMetrics(t, ts.URL); !strings.Contains(out, "repro_spectra_quarantined 0") {
		t.Errorf("/metrics still counts a deleted spectrum as quarantined:\n%s", out)
	}
}
