package cli

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/simulate"
)

// TestMain doubles the test binary as the repro CLI: with REPRO_CLI_CHILD
// set, the process runs the real command front end — Main, flag parsing,
// REPRO_FAULTS arming, signal handling, real exit codes — instead of the
// test suite. The chaos tests below re-exec themselves this way to
// SIGKILL and SIGTERM a genuine repro process, not a simulation of one.
func TestMain(m *testing.M) {
	if os.Getenv("REPRO_CLI_CHILD") == "1" {
		Main("repro", func(argv []string) error { return Run(argv, os.Stdout) })
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// reproCmd builds a re-exec'ed repro child process running the given
// subcommand args, with extra environment entries appended.
func reproCmd(t *testing.T, env []string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "REPRO_CLI_CHILD=1")
	cmd.Env = append(cmd.Env, env...)
	return cmd
}

// writeChaosInput simulates a read set big enough to cross several
// checkpoint intervals and writes it as a FASTQ file.
func writeChaosInput(t *testing.T, path string) int {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "chaos", GenomeLen: 9000, ReadLen: 36, Coverage: 12,
		ErrorRate: 0.01, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := fastq.NewWriter(f)
	if err := w.WriteChunk(reads); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return len(reads)
}

// TestChaosKillResumeByteIdentical is the crash-safety proof the
// checkpoint layer promises: SIGKILL a real `repro reptile` build
// mid-run via an injected fault, resume it from the on-disk manifest,
// and require the resumed run's spectrum AND corrected output to be
// byte-identical to an uninterrupted run's.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos run in -short mode")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.fastq")
	n := writeChaosInput(t, in)
	if n < 1000 {
		t.Fatalf("chaos input too small to cross checkpoints: %d reads", n)
	}

	common := []string{
		"reptile", "-in", in, "-k", "13",
		"-mem-budget", "96KB", "-checkpoint-every", "400", "-workers", "2",
	}

	// Uninterrupted reference run.
	refOut := filepath.Join(dir, "ref.fastq")
	refSpec := filepath.Join(dir, "ref.kspc")
	refCkpt := filepath.Join(dir, "ckpt-ref")
	ref := reproCmd(t, nil, append(common, "-out", refOut, "-save-spectrum", refSpec, "-checkpoint", refCkpt)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(refCkpt, kspectrum.ManifestName)); !os.IsNotExist(err) {
		t.Errorf("successful build left its checkpoint dir behind (err=%v)", err)
	}

	// Chaos run: the injected rule SIGKILLs the process at its second
	// manifest rename — i.e. mid-build, with checkpoint #1 durably on
	// disk — exactly the crash the resume path exists for.
	killOut := filepath.Join(dir, "kill.fastq")
	killSpec := filepath.Join(dir, "kill.kspc")
	ckpt := filepath.Join(dir, "ckpt")
	kill := reproCmd(t, []string{"REPRO_FAULTS=manifest:rename:nth=2:kill"},
		append(common, "-out", killOut, "-save-spectrum", killSpec, "-checkpoint", ckpt)...)
	out, err := kill.CombinedOutput()
	if err == nil {
		t.Fatalf("kill-injected run exited cleanly:\n%s", out)
	}
	ws, ok := kill.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("chaos child did not die by SIGKILL: %v (state %v)\n%s", err, kill.ProcessState, out)
	}
	if _, err := os.Stat(filepath.Join(ckpt, kspectrum.ManifestName)); err != nil {
		t.Fatalf("killed run left no manifest to resume from: %v", err)
	}
	if _, err := os.Stat(killSpec); !os.IsNotExist(err) {
		t.Errorf("killed run published a spectrum file (err=%v)", err)
	}

	// Resume: re-counts only the residue past the manifest cursor, then
	// must converge to the exact bytes of the uninterrupted run.
	resume := reproCmd(t, nil,
		append(common, "-out", killOut, "-save-spectrum", killSpec, "-checkpoint", ckpt, "-resume")...)
	if out, err := resume.CombinedOutput(); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}

	refBytes, err := os.ReadFile(refSpec)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(killSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Errorf("resumed spectrum differs from uninterrupted build: %d vs %d bytes", len(gotBytes), len(refBytes))
	}
	refFq, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	gotFq, err := os.ReadFile(killOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refFq, gotFq) {
		t.Error("resumed run's corrected FASTQ differs from the uninterrupted run's")
	}
}

var serveAddrRE = regexp.MustCompile(`serving \d+ spectra on ([0-9.:\[\]]+)`)

// TestChaosServeSIGTERMDrainsUpload runs a real serve daemon, SIGTERMs
// it while a spectrum upload is mid-body, and requires a clean drain:
// exit status 0 and no stranded .upload- temp file in the spectra
// directory.
func TestChaosServeSIGTERMDrainsUpload(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos run in -short mode")
	}
	dir := t.TempDir()
	_, _, storePath := hardenFixture(t, ServerOptions{Workers: 1})
	specBytes, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	spectraDir := filepath.Join(dir, "spectra")
	if err := os.Mkdir(spectraDir, 0o755); err != nil {
		t.Fatal(err)
	}

	srv := reproCmd(t, nil, "serve",
		"-listen", "127.0.0.1:0",
		"-spectrum", "main="+storePath,
		"-spectra-dir", spectraDir,
		"-drain-timeout", "10s")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	srv.Stdout = &stdout
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// Scrape the daemon's actual address from its startup log (the
	// explicit-listen contract for -listen 127.0.0.1:0), then keep
	// draining stderr so the child never blocks on a full pipe.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := serveAddrRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}
	base := "http://" + addr

	// Upload whose body stalls halfway: the daemon is mid-read when the
	// SIGTERM arrives, so the drain must carry this request to completion.
	pr, pw := io.Pipe()
	upErr := make(chan error, 1)
	upStatus := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v2/spectra?name=up", "application/octet-stream", pr)
		if err != nil {
			upErr <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		upStatus <- resp.StatusCode
	}()
	if _, err := pw.Write(specBytes[:len(specBytes)/2]); err != nil {
		t.Fatal(err)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Give the daemon a moment to enter its drain, then finish the body.
	time.Sleep(200 * time.Millisecond)
	if _, err := pw.Write(specBytes[len(specBytes)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	select {
	case st := <-upStatus:
		if st != http.StatusCreated {
			t.Errorf("mid-drain upload finished with status %d, want 201", st)
		}
	case err := <-upErr:
		t.Errorf("mid-drain upload failed: %v", err)
	case <-time.After(15 * time.Second):
		t.Fatal("mid-drain upload never finished")
	}

	if err := srv.Wait(); err != nil {
		t.Fatalf("daemon did not exit 0 after SIGTERM: %v", err)
	}
	if !strings.Contains(stdout.String(), "served") {
		t.Errorf("drained daemon did not print its summary: %q", stdout.String())
	}
	entries, err := os.ReadDir(spectraDir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
		if strings.Contains(e.Name(), ".upload-") {
			t.Errorf("stranded upload temp file: %s", e.Name())
		}
	}
	// The completed upload must have been published under its final name.
	if want := "up.kspc"; len(names) != 1 || names[0] != want {
		t.Errorf("spectra dir = %v, want exactly [%s]", names, want)
	}
}

// TestChaosFaultEnvRejected asserts the REPRO_FAULTS arming contract: a
// malformed spec must fail fast at process start with exit 2, not be
// silently ignored mid-run.
func TestChaosFaultEnvRejected(t *testing.T) {
	cmd := reproCmd(t, []string{"REPRO_FAULTS=not-a-rule"}, "reptile", "-h")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("malformed REPRO_FAULTS: err=%v, want exit 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "REPRO_FAULTS") {
		t.Errorf("error does not mention REPRO_FAULTS:\n%s", out)
	}
}
