package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"time"

	"repro/internal/fastq"
	"repro/internal/loadgen"
)

// loadgenCmd replays a FASTQ file as correction chunks against a running
// serve daemon and reports service-level numbers: latency percentiles of
// successful corrections, achieved throughput, and the shed rate of the
// daemon's admission queue. The report is one JSON object on stdout (the
// machine contract, consumed by CI and the bench harness); the human
// summary goes to the log. Exit is zero even when the daemon sheds —
// shed load is a measurement, not a failure — and non-zero only when the
// run itself could not execute.
func loadgenCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("loadgen")
	var (
		base        = fs.String("url", "http://127.0.0.1:8424", "base URL of the serve daemon")
		in          = fs.String("in", "", "FASTQ file replayed as correction chunks (required)")
		chunkReads  = fs.Int("chunk-reads", 500, "reads per request chunk")
		engineName  = fs.String("engine", "", "engine parameter for /v2/correct (empty = daemon default)")
		spectrum    = fs.String("spectrum", "", "spectrum parameter (empty = daemon's sole spectrum)")
		qps         = fs.Float64("qps", 0, "target aggregate request rate (0 = closed loop at daemon pace)")
		concurrency = fs.Int("c", 4, "concurrent client workers")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		timeout     = fs.Duration("timeout", time.Minute, "per-request client timeout")
		retries     = fs.Int("retries", 0, "retry budget per request for 429/5xx/transport failures, with backoff honoring Retry-After (0 = record every wire response, the historical behavior)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef(fs, "-in FASTQ is required")
	}

	chunks, reads, err := loadChunks(*in, *chunkReads)
	if err != nil {
		return err
	}

	target, err := url.Parse(*base)
	if err != nil {
		return fmt.Errorf("-url %q: %w", *base, err)
	}
	target = target.JoinPath("/v2/correct")
	q := target.Query()
	if *engineName != "" {
		q.Set("engine", *engineName)
	}
	if *spectrum != "" {
		q.Set("spectrum", *spectrum)
	}
	target.RawQuery = q.Encode()

	ctx, stop := signalContext()
	defer stop()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		URL:         target.String(),
		Chunks:      chunks,
		QPS:         *qps,
		Concurrency: *concurrency,
		Duration:    *duration,
		Timeout:     *timeout,
		MaxRetries:  *retries,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d chunks of <=%d reads (%d reads total) against %s\n",
		len(chunks), *chunkReads, reads, target)
	fmt.Fprintf(os.Stderr, "loadgen: %s\n", rep)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// loadChunks splits a FASTQ file into encoded request bodies of at most
// chunkReads reads each.
func loadChunks(path string, chunkReads int) (chunks [][]byte, total int, err error) {
	if chunkReads <= 0 {
		chunkReads = 500
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	cr := fastq.NewChunkReader(f, chunkReads)
	defer cr.Close()
	for {
		reads, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		body, err := fastq.EncodeChunk(reads)
		if err != nil {
			return nil, 0, err
		}
		chunks = append(chunks, body)
		total += len(reads)
	}
	if len(chunks) == 0 {
		return nil, 0, fmt.Errorf("%s: no reads", path)
	}
	return chunks, total, nil
}
