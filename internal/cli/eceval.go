package cli

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/eval"
	"repro/internal/fastq"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// ecevalCmd scores an error correction run at base level (§2.4): given
// the original reads, the corrected reads, and the error-free truth (all
// FASTQ, same order), it reports TP/FP/TN/FN, EBA, Sensitivity,
// Specificity and Gain.
func ecevalCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("eceval")
	var (
		before  = fs.String("before", "", "original reads FASTQ (required)")
		after   = fs.String("after", "", "corrected reads FASTQ (required)")
		truth   = fs.String("truth", "", "error-free truth FASTQ (required)")
		workers = fs.Int("workers", 0, "parallel workers (0 = all cores)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *before == "" || *after == "" || *truth == "" {
		return usagef(fs, "-before, -after and -truth are required")
	}
	b, err := readAllFastq(*before)
	if err != nil {
		return err
	}
	a, err := readAllFastq(*after)
	if err != nil {
		return err
	}
	tr, err := readAllFastq(*truth)
	if err != nil {
		return err
	}
	if len(b) != len(a) || len(b) != len(tr) {
		return fmt.Errorf("read counts differ: before=%d after=%d truth=%d", len(b), len(a), len(tr))
	}
	sim := make([]simulate.SimRead, len(b))
	for i := range b {
		if b[i].ID != tr[i].ID {
			return fmt.Errorf("read %d: id mismatch %q vs truth %q", i, b[i].ID, tr[i].ID)
		}
		sim[i] = simulate.SimRead{Read: b[i], True: tr[i].Seq}
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	stats, err := eval.EvaluateCorrectionParallel(sim, a, w)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, stats)
	return nil
}

// readAllFastq loads a whole FASTQ file.
func readAllFastq(path string) ([]seq.Read, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fastq.NewReader(f).ReadAll()
}
