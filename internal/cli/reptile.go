package cli

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/reptile"
)

// reptileCmd corrects substitution errors with the representative-tiling
// algorithm of Chapter 2 through the engine registry's streaming path:
// two chunked passes over the input, so with -mem-budget the k-spectrum
// accumulators spill to disk and peak memory is bounded regardless of
// input size. Output is byte-identical to the historical cmd/reptile
// pipeline (asserted by the golden tests).
func reptileCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("reptile")
	var f correctFlags
	f.register(fs, true)
	var (
		k         = fs.Int("k", 0, "kmer length (0 = derive from genome length)")
		d         = fs.Int("d", 1, "max Hamming distance per constituent kmer")
		genomeLen = fs.Int("genome-len", 0, "estimated genome length for parameter selection")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if f.in == "" || f.out == "" {
		return usagef(fs, "-in and -out are required")
	}
	opts, err := f.engineOptions()
	if err != nil {
		return err
	}
	stopProfiles, err := core.StartProfiles(f.cpuprofile, f.memprofile)
	if err != nil {
		return err
	}
	opts = append(opts,
		engine.WithK(*k),
		engine.WithGenomeLen(*genomeLen),
		reptile.WithD(*d),
	)
	eng, err := engine.Lookup(reptile.EngineName)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := f.correctToFile(eng, engine.NewRun(opts...))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "corrected %d of %d reads (%s, budget %s) in %v\n",
		res.Changed, res.Reads, res.Summary, f.memBudget, time.Since(start).Round(time.Millisecond))
	return stopProfiles()
}
