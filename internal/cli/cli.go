// Package cli implements the repro multi-command front end and the
// legacy single-purpose binaries as thin wrappers over the same
// subcommand functions. One shared failure path (Main) replaces the
// historical per-main mix of log.Fatal and os.Exit: every subcommand is a
// run() error, bad invocations print usage to stderr and exit 2, runtime
// failures print the error and exit 1, and -h exits 0.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/faultinject"
)

// command is one repro subcommand.
type command struct {
	name    string
	summary string
	run     func(args []string, stdout io.Writer) error
}

// commands lists the repro subcommands in help order.
func commands() []command {
	return []command{
		{"reptile", "correct reads with representative tiling (Chapter 2)", reptileCmd},
		{"redeem", "correct reads with EM-based repeat-aware detection (Chapter 3)", redeemCmd},
		{"shrec", "correct reads with the SHREC suffix-trie baseline (§1.2)", shrecCmd},
		{"serve", "run the correction-as-a-service HTTP daemon", serveCmd},
		{"shard", "split a spectrum store into per-prefix shard files", shardCmd},
		{"loadgen", "replay FASTQ chunks against a serve daemon and report latency", loadgenCmd},
		{"ngsim", "simulate genomes, reads and metagenomic pools", ngsimCmd},
		{"eceval", "score a correction run against ground truth (§2.4)", ecevalCmd},
		{"closet", "cluster metagenomic reads (Chapter 4)", closetCmd},
	}
}

// Run dispatches a repro invocation: args[0] names the subcommand, the
// rest are its flags. It is the single entry the repro binary and the
// tests share.
func Run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return &usageError{msg: "a subcommand is required"}
	}
	name := args[0]
	if name == "-h" || name == "--help" || name == "help" {
		usage(stdout)
		return nil
	}
	for _, c := range commands() {
		if c.name == name {
			return c.run(args[1:], stdout)
		}
	}
	usage(os.Stderr)
	return &usageError{msg: fmt.Sprintf("unknown subcommand %q", name)}
}

// usage prints the top-level command synopsis.
func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: repro <subcommand> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Subcommands:")
	for _, c := range commands() {
		fmt.Fprintf(w, "  %-8s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Run 'repro <subcommand> -h' for that subcommand's flags.")
}

// usageError is a failure caused by a bad invocation rather than bad
// data: Main prints the message (and the failing flag set's usage when
// present) to stderr and exits 2.
type usageError struct {
	msg string
	fs  *flag.FlagSet
}

func (e *usageError) Error() string { return e.msg }

// usagef builds a usageError against a subcommand's flag set.
func usagef(fs *flag.FlagSet, format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...), fs: fs}
}

// errParse marks a flag-parse failure whose message the flag package has
// already printed (with usage) to stderr; Main exits 2 without repeating
// it.
var errParse = errors.New("invalid arguments")

// Main is the shared process entry of every binary: it runs the
// subcommand function and turns its error into the exit status. All
// failure paths go through here — no main calls log.Fatal.
func Main(tool string, run func(args []string) error) {
	log.SetFlags(0)
	log.SetPrefix(tool + ": ")
	// REPRO_FAULTS arms the fault-injection seam for chaos harnesses
	// driving a real binary; unset (the normal case) this is a no-op and
	// every instrumented site stays on its zero-cost disabled path.
	if err := faultinject.EnableFromEnv(os.Getenv("REPRO_FAULTS")); err != nil {
		fmt.Fprintf(os.Stderr, "%s: REPRO_FAULTS: %v\n", tool, err)
		os.Exit(2)
	}
	err := run(os.Args[1:])
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errParse):
		os.Exit(2)
	default:
		var ue *usageError
		if errors.As(err, &ue) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", tool, ue.msg)
			if ue.fs != nil {
				ue.fs.SetOutput(os.Stderr)
				ue.fs.Usage()
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// newFlagSet builds a subcommand flag set that reports errors instead of
// exiting, so all exits funnel through Main.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// parse wraps fs.Parse, mapping its errors onto the shared failure path.
func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return errParse
	}
	return nil
}

// Exported wrappers: the legacy single-purpose binaries call these, so
// `reptile ...` and `repro reptile ...` are literally the same function.

// Reptile runs the reptile subcommand.
func Reptile(args []string) error { return reptileCmd(args, os.Stdout) }

// Redeem runs the redeem subcommand.
func Redeem(args []string) error { return redeemCmd(args, os.Stdout) }

// Shrec runs the shrec subcommand.
func Shrec(args []string) error { return shrecCmd(args, os.Stdout) }

// Serve runs the serve subcommand (the kserve daemon).
func Serve(args []string) error { return serveCmd(args, os.Stdout) }

// Ngsim runs the ngsim subcommand.
func Ngsim(args []string) error { return ngsimCmd(args, os.Stdout) }

// Eceval runs the eceval subcommand.
func Eceval(args []string) error { return ecevalCmd(args, os.Stdout) }

// Closet runs the closet subcommand.
func Closet(args []string) error { return closetCmd(args, os.Stdout) }
