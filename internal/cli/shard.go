package cli

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/kspectrum"
)

// shardCmd splits a persisted spectrum store into per-prefix shard
// files for distributed serving: shard i of n holds exactly the kmers
// whose top partition bits equal i, each file is a complete, valid KSPC
// store on its own, and the concatenation of the shards in shard order
// reproduces the source columns byte-for-byte. Serve the files across
// nodes with `repro serve -shard-spectrum ... -shards-owned ...` and
// front them with `repro serve -coordinator`.
func shardCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("shard")
	var (
		in     = fs.String("in", "", "source spectrum store (.kspc, required)")
		outDir = fs.String("out-dir", "", "directory for the shard files (default: the source's directory)")
		shards = fs.Int("shards", 0, "shard count, rounded up to a power of two (required)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return usagef(fs, "-in is required")
	}
	if *shards < 1 {
		return usagef(fs, "-shards must be at least 1")
	}
	// The eager reader validates the whole file (header, columns, CRC)
	// before anything is split: a corrupt source is rejected here, never
	// smeared across shard files.
	spec, err := kspectrum.ReadSpectrumFile(*in)
	if err != nil {
		return err
	}
	part, views, err := kspectrum.SplitShards(spec, *shards)
	if err != nil {
		return err
	}
	dir := *outDir
	if dir == "" {
		dir = filepath.Dir(*in)
	}
	base := strings.TrimSuffix(filepath.Base(*in), ".kspc")
	n := len(views)
	for i, sh := range views {
		path := filepath.Join(dir, kspectrum.ShardFileName(base, i, n))
		if err := kspectrum.WriteSpectrumFile(path, sh); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		fmt.Fprintf(stdout, "%s: %d kmers\n", path, sh.Size())
	}
	fmt.Fprintf(stdout, "split %d kmers (k=%d) into %d shards on %d prefix bits\n",
		spec.Size(), spec.K, n, part.Bits)
	return nil
}
