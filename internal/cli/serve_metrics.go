package cli

import (
	"log"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// serverMetrics is the daemon's instrument panel: every server owns one
// registry (no process globals), exposed as GET /metrics in Prometheus
// text format. The hot-path updates are single atomic operations; the
// only per-request overhead beyond them is one child lookup per labeled
// family.
type serverMetrics struct {
	registry *metrics.Registry

	// requests counts every correction request by resolved engine,
	// spectrum and final HTTP status ("" engine/spectrum = the request
	// failed before routing).
	requests *metrics.CounterVec
	// errors counts non-200 outcomes by failure class (bad_request,
	// too_large, unknown_engine, unknown_spectrum, quarantined_spectrum,
	// shed, client_gone, deadline, internal, panic).
	errors *metrics.CounterVec
	// shed counts requests refused with 429 by the bounded admission
	// queue — the daemon's load-shedding signal.
	shed *metrics.Counter
	// inflight tracks correction requests currently inside a handler
	// (queued or executing); it returns to 0 when the daemon is drained.
	inflight *metrics.Gauge
	// occupancy mirrors the admission counter: executing + queued
	// requests currently holding an admission token.
	occupancy *metrics.Gauge
	// latency is the end-to-end request duration of successful
	// corrections, per engine and spectrum.
	latency *metrics.HistogramVec
	// reads / changedReads / changedBases tally correction throughput:
	// reads processed, reads altered, and individual bases rewritten.
	reads        *metrics.Counter
	changedReads *metrics.Counter
	changedBases *metrics.Counter
	// shardRequests counts shard query round trips by spectrum, shard
	// and outcome: on a coordinator these are the fan-out requests its
	// RemoteSpectrum backends issue ("ok", "unavailable", "error"); on a
	// node they are the /v2/query requests its shard entries answered.
	shardRequests *metrics.CounterVec
	// spectra is the number of spectra currently registered; quarantined
	// is how many of them are refusing requests pending repair; swaps
	// counts registry mutations by operation (upload, replace, delete,
	// restore).
	spectra     *metrics.Gauge
	quarantined *metrics.Gauge
	swaps       *metrics.CounterVec
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	return &serverMetrics{
		registry: reg,
		requests: reg.NewCounterVec("repro_requests_total",
			"Correction requests by engine, spectrum and HTTP status code.",
			"engine", "spectrum", "code"),
		errors: reg.NewCounterVec("repro_request_errors_total",
			"Failed correction requests by failure class.", "class"),
		shed: reg.NewCounter("repro_requests_shed_total",
			"Requests refused with 429 because the admission queue was full."),
		inflight: reg.NewGauge("repro_inflight_requests",
			"Correction requests currently queued or executing."),
		occupancy: reg.NewGauge("repro_admission_occupancy",
			"Admission tokens held: executing plus queued requests."),
		latency: reg.NewHistogramVec("repro_request_duration_seconds",
			"End-to-end latency of successful corrections.",
			metrics.DefLatencyBuckets, "engine", "spectrum"),
		reads: reg.NewCounter("repro_reads_total",
			"Reads corrected across all requests."),
		changedReads: reg.NewCounter("repro_changed_reads_total",
			"Reads whose sequence was altered by correction."),
		changedBases: reg.NewCounter("repro_changed_bases_total",
			"Individual bases rewritten by correction."),
		shardRequests: reg.NewCounterVec("repro_shard_requests_total",
			"Shard query round trips by spectrum, shard and outcome.",
			"spectrum", "shard", "outcome"),
		spectra: reg.NewGauge("repro_spectra_loaded",
			"Spectra currently registered and servable."),
		quarantined: reg.NewGauge("repro_spectra_quarantined",
			"Registered spectra currently quarantined (refusing requests pending repair)."),
		swaps: reg.NewCounterVec("repro_spectrum_swaps_total",
			"Spectrum registry mutations by operation.", "op"),
	}
}

// correctionTrace is the middleware's view of one correction request: it
// records the final status code and lets the inner handler report which
// engine and spectrum the request resolved to, so the tail of the
// middleware can label its series without re-parsing the request.
type correctionTrace struct {
	http.ResponseWriter
	code             int
	engine, spectrum string
}

func (t *correctionTrace) WriteHeader(code int) {
	if t.code == 0 {
		t.code = code
	}
	t.ResponseWriter.WriteHeader(code)
}

// setTrace reports the resolved routing labels of the request; a no-op
// outside the correction middleware (direct handler tests).
func setTrace(w http.ResponseWriter, engine, spectrum string) {
	if t, ok := w.(*correctionTrace); ok {
		t.engine, t.spectrum = engine, spectrum
	}
}

// correction is the request-path middleware wrapping both correct
// handlers: panic recovery, in-flight accounting, per-engine/
// per-spectrum request counts, and the end-to-end latency histogram
// (successful requests only — sheds and refusals return in microseconds
// and would drown the distribution the histogram exists to show).
//
// The recovery path is the daemon's last line of self-defense: a bug in
// one request's handler (or an injected serve.request fault) answers
// that request with a JSON 500, increments the panic error class, logs
// the stack, and leaves the daemon serving — net/http would otherwise
// kill only the connection, but silently and without a client-readable
// body or a metric. http.ErrAbortHandler is re-raised: it is the
// sanctioned way to abort a response mid-write, not a bug.
func (s *server) correction(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := &correctionTrace{ResponseWriter: w}
		s.m.inflight.Inc()
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					s.m.inflight.Dec()
					panic(rec)
				}
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				log.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, buf)
				if t.code == 0 {
					s.errorJSON(t, http.StatusInternalServerError, errClassPanic,
						"internal error: the request handler panicked")
				} else {
					// The response is already under way; the connection is
					// lost, but the failure still counts.
					s.m.errors.With(errClassPanic).Inc()
				}
			}
			s.m.inflight.Dec()
			code := t.code
			if code == 0 {
				code = http.StatusOK
			}
			s.m.requests.With(t.engine, t.spectrum, strconv.Itoa(code)).Inc()
			if code == http.StatusOK && t.engine != "" {
				s.m.latency.With(t.engine, t.spectrum).Observe(time.Since(start).Seconds())
			}
		}()
		// The chaos harness's injectable crash point: REPRO_FAULTS
		// "serve.request:any:panic" (or an err rule) exercises the
		// recovery path above against a live daemon. Disabled, this is
		// one atomic load.
		if err := faultinject.Check(faultinject.SiteServeRequest, faultinject.OpAny); err != nil {
			panic(err)
		}
		h(t, r)
	}
}
