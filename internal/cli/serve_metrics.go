package cli

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// serverMetrics is the daemon's instrument panel: every server owns one
// registry (no process globals), exposed as GET /metrics in Prometheus
// text format. The hot-path updates are single atomic operations; the
// only per-request overhead beyond them is one child lookup per labeled
// family.
type serverMetrics struct {
	registry *metrics.Registry

	// requests counts every correction request by resolved engine,
	// spectrum and final HTTP status ("" engine/spectrum = the request
	// failed before routing).
	requests *metrics.CounterVec
	// errors counts non-200 outcomes by failure class (bad_request,
	// too_large, unknown_engine, unknown_spectrum, unserviceable_spectrum,
	// shed, client_gone, deadline, internal).
	errors *metrics.CounterVec
	// shed counts requests refused with 429 by the bounded admission
	// queue — the daemon's load-shedding signal.
	shed *metrics.Counter
	// inflight tracks correction requests currently inside a handler
	// (queued or executing); it returns to 0 when the daemon is drained.
	inflight *metrics.Gauge
	// occupancy mirrors the admission counter: executing + queued
	// requests currently holding an admission token.
	occupancy *metrics.Gauge
	// latency is the end-to-end request duration of successful
	// corrections, per engine and spectrum.
	latency *metrics.HistogramVec
	// reads / changedReads / changedBases tally correction throughput:
	// reads processed, reads altered, and individual bases rewritten.
	reads        *metrics.Counter
	changedReads *metrics.Counter
	changedBases *metrics.Counter
	// spectra is the number of spectra currently registered; swaps counts
	// registry mutations by operation (upload, replace, delete).
	spectra *metrics.Gauge
	swaps   *metrics.CounterVec
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	return &serverMetrics{
		registry: reg,
		requests: reg.NewCounterVec("repro_requests_total",
			"Correction requests by engine, spectrum and HTTP status code.",
			"engine", "spectrum", "code"),
		errors: reg.NewCounterVec("repro_request_errors_total",
			"Failed correction requests by failure class.", "class"),
		shed: reg.NewCounter("repro_requests_shed_total",
			"Requests refused with 429 because the admission queue was full."),
		inflight: reg.NewGauge("repro_inflight_requests",
			"Correction requests currently queued or executing."),
		occupancy: reg.NewGauge("repro_admission_occupancy",
			"Admission tokens held: executing plus queued requests."),
		latency: reg.NewHistogramVec("repro_request_duration_seconds",
			"End-to-end latency of successful corrections.",
			metrics.DefLatencyBuckets, "engine", "spectrum"),
		reads: reg.NewCounter("repro_reads_total",
			"Reads corrected across all requests."),
		changedReads: reg.NewCounter("repro_changed_reads_total",
			"Reads whose sequence was altered by correction."),
		changedBases: reg.NewCounter("repro_changed_bases_total",
			"Individual bases rewritten by correction."),
		spectra: reg.NewGauge("repro_spectra_loaded",
			"Spectra currently registered and servable."),
		swaps: reg.NewCounterVec("repro_spectrum_swaps_total",
			"Spectrum registry mutations by operation.", "op"),
	}
}

// correctionTrace is the middleware's view of one correction request: it
// records the final status code and lets the inner handler report which
// engine and spectrum the request resolved to, so the tail of the
// middleware can label its series without re-parsing the request.
type correctionTrace struct {
	http.ResponseWriter
	code             int
	engine, spectrum string
}

func (t *correctionTrace) WriteHeader(code int) {
	if t.code == 0 {
		t.code = code
	}
	t.ResponseWriter.WriteHeader(code)
}

// setTrace reports the resolved routing labels of the request; a no-op
// outside the correction middleware (direct handler tests).
func setTrace(w http.ResponseWriter, engine, spectrum string) {
	if t, ok := w.(*correctionTrace); ok {
		t.engine, t.spectrum = engine, spectrum
	}
}

// correction is the request-path middleware wrapping both correct
// handlers: in-flight accounting, per-engine/per-spectrum request
// counts, and the end-to-end latency histogram (successful requests
// only — sheds and refusals return in microseconds and would drown the
// distribution the histogram exists to show).
func (s *server) correction(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := &correctionTrace{ResponseWriter: w}
		s.m.inflight.Inc()
		start := time.Now()
		h(t, r)
		s.m.inflight.Dec()
		code := t.code
		if code == 0 {
			code = http.StatusOK
		}
		s.m.requests.With(t.engine, t.spectrum, strconv.Itoa(code)).Inc()
		if code == http.StatusOK && t.engine != "" {
			s.m.latency.With(t.engine, t.spectrum).Observe(time.Since(start).Seconds())
		}
	}
}
