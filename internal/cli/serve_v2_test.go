package cli

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/simulate"
)

// TestServeV2MatchesV1 is the golden test of the registry-driven serve
// path: for reptile and redeem, /v2/correct answers byte-identically to
// the legacy /v1/correct over the same chunk, so clients can migrate
// without revalidating outputs.
func TestServeV2MatchesV1(t *testing.T) {
	srv, reads, _ := testFixture(t, ServerOptions{Workers: 1})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	chunk, err := fastq.EncodeChunk(reads[:200])
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"reptile", "redeem"} {
		t.Run(method, func(t *testing.T) {
			respV1, bodyV1 := postChunk(t, ts.Client(), ts.URL+"/v1/correct?spectrum=main&method="+method, chunk)
			if respV1.StatusCode != http.StatusOK {
				t.Fatalf("/v1 status %d: %s", respV1.StatusCode, bodyV1)
			}
			respV2, bodyV2 := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=main&engine="+method, chunk)
			if respV2.StatusCode != http.StatusOK {
				t.Fatalf("/v2 status %d: %s", respV2.StatusCode, bodyV2)
			}
			if !bytes.Equal(bodyV1, bodyV2) {
				t.Errorf("/v2 response diverges from /v1 for %s", method)
			}
			if h := respV2.Header.Get("X-Kserve-Method"); h != method {
				t.Errorf("X-Kserve-Method = %q", h)
			}
		})
	}
}

// TestServeV2Shrec: the capability-driven path makes SHREC servable — an
// engine the hand-rolled /v1 method switch could never offer — without
// any spectrum parameter.
func TestServeV2Shrec(t *testing.T) {
	srv, reads, _ := testFixture(t, ServerOptions{Workers: 1})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	chunk, err := fastq.EncodeChunk(reads[:200])
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?engine=shrec", chunk)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v2 shrec status %d: %s", resp.StatusCode, body)
	}
	out, err := fastq.DecodeChunk(bytes.NewReader(body), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Errorf("shrec returned %d reads want 200", len(out))
	}
	// /v1 still rejects it, documenting why /v2 exists.
	resp, _ = postChunk(t, ts.Client(), ts.URL+"/v1/correct?spectrum=main&method=shrec", chunk)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/v1 method=shrec status %d want 400", resp.StatusCode)
	}
}

// TestServeV2UnknownEngine: the daemon surfaces the registry's typed
// lookup error — unknown names report what is registered.
func TestServeV2UnknownEngine(t *testing.T) {
	srv, reads, _ := testFixture(t, ServerOptions{Workers: 1})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	chunk, err := fastq.EncodeChunk(reads[:10])
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?engine=nope", chunk)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown engine status %d want 400", resp.StatusCode)
	}
	for _, name := range []string{"redeem", "reptile", "shrec"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("unknown-engine error %q does not list %s", body, name)
		}
	}
}

// TestServeV2Engines: /v2/engines reports capabilities and per-spectrum
// servability, replacing the hand-rolled k>16 special case.
func TestServeV2Engines(t *testing.T) {
	// One k=11 spectrum every engine serves, one k=20 spectrum only
	// REDEEM can.
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 4000, ReadLen: 36, Coverage: 15,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	narrow, err := kspectrum.Build(reads, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := kspectrum.Build(reads, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(map[string]*kspectrum.Spectrum{"narrow": narrow, "wide": wide}, ServerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v2/engines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var engines []struct {
		Name          string   `json:"name"`
		Streaming     bool     `json:"streaming"`
		SpectrumReuse bool     `json:"spectrum_reuse"`
		MaxSpectrumK  int      `json:"max_spectrum_k"`
		Spectra       []string `json:"spectra"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&engines); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, e := range engines {
		byName[e.Name] = i
	}
	rep, ok := byName["reptile"]
	if !ok {
		t.Fatal("reptile missing from /v2/engines")
	}
	if got := engines[rep]; !got.Streaming || !got.SpectrumReuse || got.MaxSpectrumK != 16 ||
		strings.Join(got.Spectra, ",") != "narrow" {
		t.Errorf("reptile entry = %+v", got)
	}
	red, ok := byName["redeem"]
	if !ok {
		t.Fatal("redeem missing from /v2/engines")
	}
	if got := engines[red]; strings.Join(got.Spectra, ",") != "narrow,wide" {
		t.Errorf("redeem entry = %+v", got)
	}
	sh, ok := byName["shrec"]
	if !ok {
		t.Fatal("shrec missing from /v2/engines")
	}
	if got := engines[sh]; got.SpectrumReuse || strings.Join(got.Spectra, ",") != "*" {
		t.Errorf("shrec entry = %+v", got)
	}

	// The declared boundary is enforced: reptile on the wide spectrum is
	// a clean 400 carrying the capability explanation.
	chunk, err := fastq.EncodeChunk(reads[:10])
	if err != nil {
		t.Fatal(err)
	}
	r2, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=wide&engine=reptile", chunk)
	if r2.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "max spectrum k") {
		t.Errorf("reptile on k=20 spectrum: status %d body %q", r2.StatusCode, body)
	}
	// And the same spectrum still serves REDEEM through /v2.
	r3, body := postChunk(t, ts.Client(), ts.URL+"/v2/correct?spectrum=wide&engine=redeem", chunk)
	if r3.StatusCode != http.StatusOK {
		t.Errorf("redeem on k=20 spectrum: status %d body %q", r3.StatusCode, body)
	}
}
