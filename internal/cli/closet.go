package cli

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/closet"
	"repro/internal/eval"
)

// closetCmd clusters metagenomic reads (Chapter 4): sketch-based edge
// construction followed by incremental γ-quasi-clique enumeration over a
// decreasing similarity-threshold ladder, executed on the in-process
// MapReduce engine. With -labels (a TSV from ngsim -mode meta), the
// Adjusted Rand Index against the ground-truth species partition is
// reported per threshold.
func closetCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("closet")
	var (
		in         = fs.String("in", "", "input FASTQ (required)")
		out        = fs.String("out", "", "output cluster TSV (required)")
		thresholds = fs.String("thresholds", "0.95,0.92,0.90", "decreasing similarity ladder")
		gamma      = fs.Float64("gamma", 2.0/3.0, "quasi-clique density γ")
		cmin       = fs.Float64("cmin", 0.60, "candidate similarity cutoff Cmin")
		nodes      = fs.Int("nodes", 32, "simulated cluster nodes")
		workers    = fs.Int("workers", 0, "parallel workers, mapped onto the MapReduce node count (0 = keep -nodes)")
		labelsPath = fs.String("labels", "", "optional taxonomy TSV for ARI evaluation")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return usagef(fs, "-in and -out are required")
	}
	reads, err := readAllFastq(*in)
	if err != nil {
		return err
	}
	meanLen := 0
	for _, r := range reads {
		meanLen += len(r.Seq)
	}
	if len(reads) > 0 {
		meanLen /= len(reads)
	}
	cfg := closet.DefaultConfig(meanLen)
	cfg.Gamma = *gamma
	cfg.Cmin = *cmin
	cfg.Nodes = *nodes
	// -workers is the cross-CLI parallelism knob: here it sizes the
	// simulated cluster (mapreduce.Config.Nodes bounds both the shuffle
	// partitions and the concurrent map/reduce workers).
	if *workers > 0 {
		cfg.Nodes = *workers
	}
	cfg.Thresholds = nil
	for _, s := range strings.Split(*thresholds, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad threshold %q: %w", s, err)
		}
		cfg.Thresholds = append(cfg.Thresholds, v)
	}
	start := time.Now()
	res, err := closet.Run(reads, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "edges: predicted %d, unique %d, confirmed %d\n", res.PredictedEdges, res.UniqueEdges, res.ConfirmedEdges)
	for _, st := range res.Timings {
		fmt.Fprintf(stdout, "stage %-16s %v\n", st.Stage, st.Duration.Round(time.Millisecond))
	}

	var truth []int
	if *labelsPath != "" {
		truth, err = readLabels(*labelsPath, len(reads))
		if err != nil {
			return err
		}
	}
	o, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer o.Close()
	w := bufio.NewWriter(o)
	fmt.Fprintln(w, "threshold\tcluster\tread")
	for _, tr := range res.ByThreshold {
		fmt.Fprintf(stdout, "t=%.2f: %d edges, %d clusters processed, %d resulting clusters",
			tr.Threshold, tr.EdgesUsed, tr.ClustersProcessed, len(tr.Clusters))
		if truth != nil {
			labels := closet.PartitionLabels(tr.Clusters, len(reads))
			ari, err := eval.ARI(truth, labels)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, ", ARI=%.3f", ari)
		}
		fmt.Fprintln(stdout)
		for ci, c := range tr.Clusters {
			for _, v := range c.Verts {
				fmt.Fprintf(w, "%.2f\t%d\t%s\n", tr.Threshold, ci, reads[v].ID)
			}
		}
	}
	fmt.Fprintf(stdout, "total %v\n", time.Since(start).Round(time.Millisecond))
	if err := w.Flush(); err != nil {
		return err
	}
	return o.Close()
}

// readLabels parses the ngsim label TSV, matching rows to read order.
func readLabels(path string, n int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := bufio.NewScanner(f)
	var out []int
	first := true
	for s.Scan() {
		line := strings.TrimSpace(s.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "read\t") {
				continue
			}
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 4 {
			return nil, fmt.Errorf("labels: bad line %q", line)
		}
		sp, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("labels: bad species id in %q", line)
		}
		out = append(out, sp)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	if len(out) != n {
		return nil, fmt.Errorf("labels: %d rows but %d reads", len(out), n)
	}
	return out, nil
}
