package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/remote"
	"repro/internal/reptile"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// clusterFixture stands up a full two-tier deployment in-process: the
// corpus spectrum split into 4 shard files, two node daemons each owning
// two shards, and a coordinator daemon whose "main" entry is a
// RemoteSpectrum over those nodes. It returns the coordinator server and
// everything a test needs to compute single-node references.
type clusterFixture struct {
	coord   *server
	coordTS *httptest.Server
	nodes   []*httptest.Server
	reads   []seq.Read
	spec    *kspectrum.Spectrum
	part    kspectrum.PrefixPartition
	rs      *remote.RemoteSpectrum
}

func newClusterFixture(t *testing.T) *clusterFixture {
	return newClusterFixtureD(t, 0)
}

// newClusterFixtureD is newClusterFixture with the coordinator's Reptile
// Hamming budget (the serve -d flag) set, so tests can exercise the
// d>1 query mix the [D3a] shifted retry produces.
func newClusterFixtureD(t *testing.T, d int) *clusterFixture {
	t.Helper()
	ds, err := simulate.BuildDataset(simulate.DatasetSpec{
		Name: "t", GenomeLen: 6000, ReadLen: 36, Coverage: 30,
		ErrorRate: 0.008, Bias: simulate.EcoliBias, QualityNoise: 2, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := simulate.Reads(ds.Sim)
	spec, err := kspectrum.Build(reads, 11, true)
	if err != nil {
		t.Fatal(err)
	}

	const shards = 4
	dir := t.TempDir()
	part, views, err := kspectrum.SplitShards(spec, shards)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, shards)
	for i, sh := range views {
		paths[i] = filepath.Join(dir, kspectrum.ShardFileName("main", i, shards))
		if err := kspectrum.WriteSpectrumFile(paths[i], sh); err != nil {
			t.Fatal(err)
		}
	}

	fx := &clusterFixture{reads: reads, spec: spec, part: part}
	var urls []string
	for _, owned := range [][]int{{0, 1}, {2, 3}} {
		loaded := make(map[string]*kspectrum.Spectrum)
		meta := make(map[string]remote.ShardInfo)
		for _, i := range owned {
			sh, err := kspectrum.ReadSpectrumFile(paths[i])
			if err != nil {
				t.Fatal(err)
			}
			entry := kspectrum.ShardEntryName("main", i, shards)
			loaded[entry] = sh
			meta[entry] = remote.ShardInfo{
				Spectrum: "main", Shard: i, Of: shards, Entry: entry,
				K: sh.K, BothStrands: sh.BothStrands, Kmers: sh.Size(),
			}
		}
		nsrv, err := newServer(loaded, ServerOptions{Workers: 1, ShardEntries: meta})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(nsrv.mux())
		t.Cleanup(ts.Close)
		fx.nodes = append(fx.nodes, ts)
		urls = append(urls, ts.URL)
	}

	maps, err := remote.Discover(context.Background(), nil, urls)
	if err != nil {
		t.Fatal(err)
	}
	fx.rs, err = remote.New(maps["main"], remote.Options{
		Policy: client.Policy{MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.coord, err = newServer(map[string]*kspectrum.Spectrum{}, ServerOptions{
		Workers:       2,
		D:             d,
		RemoteSpectra: map[string]*remote.RemoteSpectrum{"main": fx.rs},
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.coordTS = httptest.NewServer(fx.coord.mux())
	t.Cleanup(fx.coordTS.Close)
	return fx
}

// queryCluster POSTs a /v2/query for the given kmers against the
// coordinator and returns the raw response.
func (fx *clusterFixture) queryCluster(t *testing.T, kms []seq.Kmer, d int) (*http.Response, []byte) {
	t.Helper()
	req := remote.QueryRequest{D: d}
	for _, km := range kms {
		req.Kmers = append(req.Kmers, strconv.FormatUint(uint64(km), 10))
	}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fx.coordTS.URL+"/v2/query?spectrum=main",
		"application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// kmerOnShard returns a spectrum kmer the partition assigns to shard.
func (fx *clusterFixture) kmerOnShard(t *testing.T, shard int) seq.Kmer {
	t.Helper()
	for _, km := range fx.spec.Kmers {
		if fx.part.ShardOf(km) == shard {
			return km
		}
	}
	t.Fatalf("no spectrum kmer lands on shard %d", shard)
	return 0
}

// TestClusterCorrectByteIdentity is the acceptance test of the PR:
// a correction through the coordinator — every spectrum access a
// fan-out query to the shard-owning nodes — must be byte-identical to
// the same chunk corrected against the unsharded spectrum in one
// process.
func TestClusterCorrectByteIdentity(t *testing.T) {
	fx := newClusterFixture(t)

	chunk := fx.reads[:200]
	body, err := fastq.EncodeChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reptile.NewService(fx.spec, reptile.Params{D: 1})
	if err != nil {
		t.Fatal(err)
	}
	refOut, _, err := svc.CorrectChunk(chunk, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fastq.EncodeChunk(refOut)
	if err != nil {
		t.Fatal(err)
	}

	resp, got := postChunk(t, http.DefaultClient,
		fx.coordTS.URL+"/v2/correct?spectrum=main&engine=reptile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster correct: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cluster correction diverges from the single-node reference")
	}

	// REDEEM walks every spectrum column during its EM fit; the
	// capability gate must refuse it on a sharded spectrum rather than
	// time out fanning the whole spectrum over the wire.
	resp, got = postChunk(t, http.DefaultClient,
		fx.coordTS.URL+"/v2/correct?spectrum=main&engine=redeem", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("redeem on sharded spectrum: status %d, want 400: %s", resp.StatusCode, got)
	}
	if !strings.Contains(string(got), "sharded across the cluster") {
		t.Errorf("redeem refusal does not explain the sharding: %s", got)
	}

	// The cluster status endpoint reflects the deployment and the
	// traffic the correction generated.
	var status struct {
		Spectra []struct {
			Name   string `json:"name"`
			K      int    `json:"k"`
			Kmers  int    `json:"kmers"`
			Shards []struct {
				Shard    int    `json:"shard"`
				Node     string `json:"node"`
				Requests int64  `json:"requests"`
			} `json:"shards"`
		} `json:"spectra"`
		Nodes []struct {
			Node   string `json:"node"`
			Shards int    `json:"shards"`
		} `json:"nodes"`
	}
	cresp, err := http.Get(fx.coordTS.URL + "/v2/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(cresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if len(status.Spectra) != 1 || status.Spectra[0].Name != "main" ||
		status.Spectra[0].K != fx.spec.K || status.Spectra[0].Kmers != fx.spec.Size() ||
		len(status.Spectra[0].Shards) != 4 || len(status.Nodes) != 2 {
		t.Fatalf("/v2/cluster = %+v", status)
	}
	var fanout int64
	for _, sh := range status.Spectra[0].Shards {
		fanout += sh.Requests
	}
	if fanout == 0 {
		t.Error("correction generated no shard fan-out traffic")
	}

	// The per-shard counters surface in /metrics.
	mresp, err := http.Get(fx.coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mbody), `repro_shard_requests_total{spectrum="main",shard="0",outcome="ok"}`) {
		t.Error("/metrics has no per-shard request counters")
	}
}

// TestClusterCorrectByteIdentityD2: byte-identity must also hold at
// D=2, where the corrector mixes radii — full-D neighborhoods for
// [D3]/[D4] plus the d=1 query of the [D3a] shifted retry. The local
// reference only matches if its NeighborSource honors the requested
// radius exactly, as each remote node does with its per-d index.
func TestClusterCorrectByteIdentityD2(t *testing.T) {
	fx := newClusterFixtureD(t, 2)

	chunk := fx.reads[:200]
	body, err := fastq.EncodeChunk(chunk)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := reptile.NewService(fx.spec, reptile.Params{D: 2})
	if err != nil {
		t.Fatal(err)
	}
	refOut, refC, err := svc.CorrectChunk(chunk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if refC.P.D != 2 {
		t.Fatalf("reference corrector resolved D=%d, want 2", refC.P.D)
	}
	want, err := fastq.EncodeChunk(refOut)
	if err != nil {
		t.Fatal(err)
	}

	resp, got := postChunk(t, http.DefaultClient,
		fx.coordTS.URL+"/v2/correct?spectrum=main&engine=reptile", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster correct at D=2: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("D=2 cluster correction diverges from the single-node reference")
	}
}

// TestClusterQueryRejectsOutOfRangeKmer: a kmer value outside the
// spectrum's 2k-bit keyspace must be a 400, not a crash. Before the
// keyspace check such a value indexed the coordinator's shard table out
// of range inside fan-out goroutines — past the recover middleware —
// and took the daemon down.
func TestClusterQueryRejectsOutOfRangeKmer(t *testing.T) {
	fx := newClusterFixture(t)

	oversized := seq.Kmer(1) << uint(2*fx.spec.K) // first value past the keyspace
	for _, d := range []int{0, 1} {
		resp, body := fx.queryCluster(t, []seq.Kmer{oversized}, d)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("oversized kmer at d=%d: status %d, want 400: %s", d, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "does not fit") {
			t.Errorf("d=%d rejection does not explain the keyspace: %s", d, body)
		}
	}

	// The nodes run the same validation on their own query endpoint.
	req := remote.QueryRequest{Kmers: []string{strconv.FormatUint(uint64(oversized), 10)}}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	entry := kspectrum.ShardEntryName("main", 0, 4)
	nresp, err := http.Post(fx.nodes[0].URL+"/v2/query?spectrum="+entry,
		"application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized kmer on a node: status %d, want 400", nresp.StatusCode)
	}

	// The coordinator and its cluster survived all of it.
	km := fx.kmerOnShard(t, 3)
	resp, body := fx.queryCluster(t, []seq.Kmer{km}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid query after oversized ones: status %d: %s", resp.StatusCode, body)
	}
	var qr remote.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Indexes[0] != fx.spec.Index(km) {
		t.Errorf("post-attack answer diverged: index %d, local %d", qr.Indexes[0], fx.spec.Index(km))
	}
}

// TestClusterQueryRadiusCap: an unauthenticated client must not be able
// to force unbounded per-d NeighborIndex builds; radii past the
// server's maximum are a 400.
func TestClusterQueryRadiusCap(t *testing.T) {
	fx := newClusterFixture(t)

	km := fx.kmerOnShard(t, 0)
	resp, body := fx.queryCluster(t, []seq.Kmer{km}, defaultMaxQueryRadius+5)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("d=%d query: status %d, want 400: %s", defaultMaxQueryRadius+5, resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "maximum") {
		t.Errorf("radius rejection does not name the cap: %s", body)
	}
	// The cap tracks an operator-raised -d: the server must never refuse
	// the radius its own corrector will issue.
	if got := fx.coord.maxQueryRadius(); got != defaultMaxQueryRadius {
		t.Fatalf("default maxQueryRadius = %d, want %d", got, defaultMaxQueryRadius)
	}
	fx.coord.opts.D = defaultMaxQueryRadius + 2
	if got := fx.coord.maxQueryRadius(); got != defaultMaxQueryRadius+2 {
		t.Fatalf("raised maxQueryRadius = %d, want %d", got, defaultMaxQueryRadius+2)
	}
	fx.coord.opts.D = 1
}

// TestClusterQueryProxy: the coordinator's /v2/query must answer with
// global indexes and counts identical to the unsharded spectrum.
func TestClusterQueryProxy(t *testing.T) {
	fx := newClusterFixture(t)

	kms := []seq.Kmer{
		fx.kmerOnShard(t, 0), fx.kmerOnShard(t, 1),
		fx.kmerOnShard(t, 2), fx.kmerOnShard(t, 3),
		fx.kmerOnShard(t, 0) ^ 3, // mutated, very likely absent
	}
	resp, body := fx.queryCluster(t, kms, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	var qr remote.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Indexes) != len(kms) || len(qr.Counts) != len(kms) {
		t.Fatalf("query answered %d indexes / %d counts for %d kmers", len(qr.Indexes), len(qr.Counts), len(kms))
	}
	for i, km := range kms {
		if qr.Indexes[i] != fx.spec.Index(km) {
			t.Errorf("kmer %d: index %d, local %d", i, qr.Indexes[i], fx.spec.Index(km))
		}
		wantCnt := uint32(0)
		if fx.spec.Index(km) >= 0 {
			wantCnt = fx.spec.Count(km)
		}
		if qr.Counts[i] != wantCnt {
			t.Errorf("kmer %d: count %d, local %d", i, qr.Counts[i], wantCnt)
		}
	}
}

// TestClusterNodeDeath: killing one node must turn that node's shards
// into 503-with-Retry-After through the coordinator while the surviving
// node's shards keep answering — partial degradation, not an outage.
func TestClusterNodeDeath(t *testing.T) {
	fx := newClusterFixture(t)

	kmAlive := fx.kmerOnShard(t, 0) // node 0
	kmDead := fx.kmerOnShard(t, 3)  // node 1

	fx.nodes[1].Close()

	resp, body := fx.queryCluster(t, []seq.Kmer{kmDead}, 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query for dead node's shard: status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 for dead shard has no Retry-After header")
	}
	var errResp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &errResp); err != nil {
		t.Fatalf("503 body is not the daemon's JSON error shape: %s", body)
	}
	if !strings.Contains(errResp.Error, "shard 3") || !strings.Contains(errResp.Error, "unavailable") {
		t.Errorf("error does not identify the unavailable shard: %q", errResp.Error)
	}

	resp, body = fx.queryCluster(t, []seq.Kmer{kmAlive}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query for live node's shard after peer death: status %d: %s", resp.StatusCode, body)
	}
	var qr remote.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Indexes[0] != fx.spec.Index(kmAlive) {
		t.Errorf("live shard answer diverged after peer death: index %d, local %d",
			qr.Indexes[0], fx.spec.Index(kmAlive))
	}

	// A correction through the coordinator now reports the unavailable
	// shard (its neighborhoods span all prefixes) instead of serving a
	// partial answer.
	chunk, err := fastq.EncodeChunk(fx.reads[:50])
	if err != nil {
		t.Fatal(err)
	}
	cresp, cbody := postChunk(t, http.DefaultClient,
		fx.coordTS.URL+"/v2/correct?spectrum=main&engine=reptile", chunk)
	if cresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("correction with a dead node: status %d, want 503: %s", cresp.StatusCode, cbody)
	}
	if cresp.Header.Get("Retry-After") == "" {
		t.Error("degraded correction 503 has no Retry-After header")
	}
}

// TestParseShardList pins the -shards-owned grammar.
func TestParseShardList(t *testing.T) {
	cases := []struct {
		in   string
		of   int
		want string // comma-joined result, "" = error
	}{
		{"0,1", 4, "0 1"},
		{" 2 , 0,2", 4, "0 2"},
		{"3", 4, "3"},
		{"4", 4, ""},
		{"-1", 4, ""},
		{"a", 4, ""},
		{"", 4, ""},
	}
	for _, tc := range cases {
		got, err := parseShardList(tc.in, tc.of)
		if tc.want == "" {
			if err == nil {
				t.Errorf("parseShardList(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShardList(%q): %v", tc.in, err)
			continue
		}
		str := strings.Trim(strings.Join(strings.Fields(fmt.Sprint(got)), " "), "[]")
		if str != tc.want {
			t.Errorf("parseShardList(%q) = %q, want %q", tc.in, str, tc.want)
		}
	}
}
