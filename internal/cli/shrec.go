package cli

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/shrec"
)

// shrecCmd corrects reads with the SHREC suffix-trie baseline (§1.2)
// through the engine registry. SHREC has no streaming path — the input is
// buffered — and no k-spectrum, so the spectrum flags are absent; the
// command exists so the baseline of Tables 2.3 and 3.4 is reachable from
// the same front end as the dissertation's own algorithms.
func shrecCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("shrec")
	var f correctFlags
	f.register(fs, false)
	var (
		genomeLen  = fs.Int("genome-len", 0, "estimated genome length for the expected-count model (0 = estimate from distinct kmers)")
		alpha      = fs.Float64("alpha", 0, "deviation multiplier of the frequency test (0 = default 5)")
		iterations = fs.Int("iterations", 0, "build-and-correct cycles (0 = default 3)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if f.in == "" || f.out == "" {
		return usagef(fs, "-in and -out are required")
	}
	opts, err := f.engineOptions()
	if err != nil {
		return err
	}
	stopProfiles, err := core.StartProfiles(f.cpuprofile, f.memprofile)
	if err != nil {
		return err
	}
	opts = append(opts, engine.WithGenomeLen(*genomeLen))
	if *alpha > 0 {
		opts = append(opts, shrec.WithAlpha(*alpha))
	}
	if *iterations > 0 {
		opts = append(opts, shrec.WithIterations(*iterations))
	}
	eng, err := engine.Lookup(shrec.EngineName)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := f.correctToFile(eng, engine.NewRun(opts...))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "corrected %d of %d reads (%s) in %v\n",
		res.Changed, res.Reads, res.Summary, time.Since(start).Round(time.Millisecond))
	return stopProfiles()
}
