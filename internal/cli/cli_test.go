package cli

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
)

// TestRunHelp: `repro help` prints the subcommand synopsis and succeeds.
func TestRunHelp(t *testing.T) {
	var out bytes.Buffer
	if err := Run([]string{"help"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"reptile", "redeem", "shrec", "serve", "ngsim", "eceval", "closet"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("top-level usage misses %q", name)
		}
	}
}

// TestRunUnknownSubcommand: unknown names fail through the shared usage
// path with a non-nil error.
func TestRunUnknownSubcommand(t *testing.T) {
	err := Run([]string{"frobnicate"}, io.Discard)
	var ue *usageError
	if !errors.As(err, &ue) {
		t.Fatalf("error = %v, want usageError", err)
	}
	if !strings.Contains(ue.msg, "frobnicate") {
		t.Errorf("usage error %q does not name the subcommand", ue.msg)
	}
	if err := Run(nil, io.Discard); !errors.As(err, &ue) {
		t.Errorf("empty invocation error = %v, want usageError", err)
	}
}

// TestSubcommandHelp: `-h` on every subcommand resolves to flag.ErrHelp —
// the shared wrapper maps it to exit 0, which the CI smoke step relies
// on.
func TestSubcommandHelp(t *testing.T) {
	for _, c := range commands() {
		if err := c.run([]string{"-h"}, io.Discard); !errors.Is(err, flag.ErrHelp) {
			t.Errorf("%s -h: error = %v, want flag.ErrHelp", c.name, err)
		}
	}
}

// TestSubcommandMissingArgs: every correction-shaped subcommand reports
// bad invocations as usage errors (message + usage to stderr, exit 2)
// instead of log.Fatal.
func TestSubcommandMissingArgs(t *testing.T) {
	cases := []struct {
		name string
		run  func([]string, io.Writer) error
	}{
		{"reptile", reptileCmd},
		{"redeem", redeemCmd},
		{"shrec", shrecCmd},
		{"serve", serveCmd},
		{"ngsim", ngsimCmd},
		{"eceval", ecevalCmd},
		{"closet", closetCmd},
	}
	for _, tc := range cases {
		err := tc.run([]string{}, io.Discard)
		var ue *usageError
		if !errors.As(err, &ue) {
			t.Errorf("%s with no args: error = %v, want usageError", tc.name, err)
		}
	}
}

// TestSubcommandBadFlag: unparseable flags map onto the silent errParse
// path (flag already printed the message and usage).
func TestSubcommandBadFlag(t *testing.T) {
	err := reptileCmd([]string{"-definitely-not-a-flag"}, io.Discard)
	if !errors.Is(err, errParse) {
		t.Errorf("bad flag error = %v, want errParse", err)
	}
}

// TestNgsimBadMode: mode validation flows through the usage path too.
func TestNgsimBadMode(t *testing.T) {
	err := ngsimCmd([]string{"-out", "/dev/null", "-mode", "nope"}, io.Discard)
	var ue *usageError
	if !errors.As(err, &ue) {
		t.Errorf("bad mode error = %v, want usageError", err)
	}
}
