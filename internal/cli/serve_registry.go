package cli

import (
	"errors"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/kspectrum"
	"repro/internal/remote"
	"repro/internal/reptile"
)

// entry is one registry slot: a loaded spectrum plus the per-engine
// service slots derived from it. Both API versions share the slots —
// one neighbor index and one EM fit per (spectrum, engine), however the
// request arrives — so serving /v1 and /v2 together costs no more than
// either alone. The Reptile slot is built eagerly at registration (the
// original daemon's behavior: the first request pays no index-build
// latency), the rest on first use, because many deployments serve a
// single algorithm.
type entry struct {
	name string
	spec *kspectrum.Spectrum
	// reptileErr is non-nil when the spectrum cannot serve Reptile
	// (e.g. k > 16 overflows the packed tile — now a declared
	// capability); it says why, and the spectrum still serves REDEEM.
	reptileErr error

	// services are the per-engine correctors, keyed by engine name and
	// built at most once through engine.Servicer.
	services map[string]*serviceSlot

	// refs counts the entry's holders: one for registry membership plus
	// one per in-flight request using it. Hot swap and delete drop the
	// registry hold and let in-flight requests drain — the spectrum is
	// only released when the count reaches zero, so an unmap can never
	// pull pages out from under a running correction.
	refs atomic.Int64
	// owned marks spectra the server itself opened (uploads, quarantine
	// restores): the final release closes them. Startup spectra belong
	// to the caller, which closes them at process exit.
	owned bool
	// path is the store file backing the spectrum: set for uploads
	// (removed when the entry is deleted) and for startup spectra whose
	// path the caller declared via ServerOptions.SpectrumPaths. The
	// quarantine probe repairs from it; without a path a quarantine is
	// permanent until the operator re-uploads or deletes the name.
	path string

	// quarantined flips true when the spectrum's integrity checks fail
	// sticky (lazy bucket validation or the whole-file scan): requests
	// answer 503 instead of silently useless corrections, and a single
	// background probe (the CAS is the spawn dedup) retries the backing
	// file until it verifies again or the entry leaves the registry.
	quarantined atomic.Bool

	// remote is set on coordinator entries: the spectrum lives sharded
	// across the cluster behind this backend and spec is nil. Remote
	// entries never quarantine — node failures surface per-request as
	// shard-unavailable 503s.
	remote *remote.RemoteSpectrum
	// shard is set on node-side shard entries: the metadata GET
	// /v2/shards advertises to discovering coordinators.
	shard *remote.ShardInfo
	// nis caches the per-radius neighbor indexes POST /v2/query d>0
	// answers are served from, built lazily per distinct d.
	nimu sync.Mutex
	nis  map[int]*kspectrum.NeighborIndex
}

// k, size and bothStrands read the entry's spectrum metadata through
// whichever backing it has — local columns or the remote shard map.
func (e *entry) k() int {
	if e.spec != nil {
		return e.spec.K
	}
	return e.remote.K()
}

func (e *entry) size() int {
	if e.spec != nil {
		return e.spec.Size()
	}
	return e.remote.Len()
}

func (e *entry) bothStrands() bool {
	if e.spec != nil {
		return e.spec.BothStrands
	}
	return e.remote.BothStrands()
}

// healthErr is the entry's sticky health: a local spectrum's deferred
// integrity verdict, or the remote backend's closed state.
func (e *entry) healthErr() error {
	if e.spec != nil {
		return e.spec.Err()
	}
	return e.remote.Err()
}

// neighborIndex resolves the entry's shared NeighborIndex for radius d,
// building it at most once per distinct d (c = min(k, d+4), the same
// derivation the correction engines use, so node answers are identical
// to local ones). Only valid on local entries.
func (e *entry) neighborIndex(d int) (*kspectrum.NeighborIndex, error) {
	e.nimu.Lock()
	defer e.nimu.Unlock()
	if ni, ok := e.nis[d]; ok {
		return ni, nil
	}
	c := min(e.spec.K, d+4)
	var (
		ni  *kspectrum.NeighborIndex
		err error
	)
	if e.spec.Mapped() {
		ni, err = kspectrum.NewNeighborIndexLazy(e.spec, d, c)
	} else {
		ni, err = kspectrum.NewNeighborIndex(e.spec, d, c)
	}
	if err != nil {
		return nil, err
	}
	if e.nis == nil {
		e.nis = make(map[int]*kspectrum.NeighborIndex)
	}
	e.nis[d] = ni
	return ni, nil
}

// acquire takes a request hold on the entry.
func (e *entry) acquire() { e.refs.Add(1) }

// release drops one hold; the last hold on an owned entry closes the
// spectrum (for mapped spectra: unmaps the file). Safe on nil, so
// spectrum-free request paths can release unconditionally.
func (e *entry) release() {
	if e == nil {
		return
	}
	if e.refs.Add(-1) == 0 && e.owned && e.spec != nil {
		if err := e.spec.Close(); err != nil {
			log.Printf("spectrum %q: close after drain: %v", e.name, err)
		}
	}
}

// serviceSlot builds one engine's chunk corrector at most once.
type serviceSlot struct {
	once sync.Once
	svc  engine.ChunkCorrector
	err  error
}

// specRegistry is the daemon's mutable spectrum table. Reads (every
// correction request) take a read lock and a refcount; writes (upload,
// swap, delete) take the write lock only to splice the map, never while
// doing I/O — validation and store writes happen before the entry is
// published, so a swap is one pointer exchange and in-flight requests on
// the displaced entry drain against their own hold.
type specRegistry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// get resolves a name to an acquired entry (the caller must release),
// or nil when unknown.
func (reg *specRegistry) get(name string) *entry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e := reg.entries[name]
	if e != nil {
		e.acquire()
	}
	return e
}

// sole acquires the single registered entry when exactly one exists;
// the count lets callers phrase the ambiguity error.
func (reg *specRegistry) sole() (*entry, int) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	if len(reg.entries) == 1 {
		for _, e := range reg.entries {
			e.acquire()
			return e, 1
		}
	}
	return nil, len(reg.entries)
}

// put publishes an entry, displacing and returning any previous holder
// of the name (the caller releases the displaced entry's registry hold).
func (reg *specRegistry) put(e *entry) *entry {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	old := reg.entries[e.name]
	reg.entries[e.name] = e
	return old
}

// current returns the entry a name maps to right now, without acquiring
// a hold: only valid for identity checks (is this still the entry my
// probe quarantined?), never for serving corrections.
func (reg *specRegistry) current(name string) *entry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.entries[name]
}

// replaceIf atomically swaps old for repaired, but only when old is
// still the name's registered entry — a concurrent upload or delete
// wins, and the caller discards the repaired entry. On success the
// caller releases old's registry hold; repaired starts with its own.
func (reg *specRegistry) replaceIf(old, repaired *entry) bool {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.entries[old.name] != old {
		return false
	}
	reg.entries[repaired.name] = repaired
	return true
}

// countQuarantined tallies the registered entries currently quarantined;
// the gauge is recomputed from this after every transition, so no
// inc/dec pairing can drift.
func (reg *specRegistry) countQuarantined() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	n := 0
	for _, e := range reg.entries {
		if e.quarantined.Load() {
			n++
		}
	}
	return n
}

// remove unpublishes a name, returning the displaced entry (the caller
// releases its registry hold) or nil.
func (reg *specRegistry) remove(name string) *entry {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	e := reg.entries[name]
	delete(reg.entries, name)
	return e
}

// size reports the number of registered spectra.
func (reg *specRegistry) size() int {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return len(reg.entries)
}

// names lists the registered names, sorted.
func (reg *specRegistry) names() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]string, 0, len(reg.entries))
	for name := range reg.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// snapshot returns the current entries sorted by name, without acquiring
// holds: valid for metadata reads (name, k, size, capability checks) —
// struct fields stay readable after a concurrent close — but not for
// serving corrections.
func (reg *specRegistry) snapshot() []*entry {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]*entry, 0, len(reg.entries))
	for _, e := range reg.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// newEntry builds a registry slot for a loaded spectrum: per-engine
// service slots, with the Reptile slot resolved eagerly so the first
// request pays no index-build latency and registration can report
// Reptile-servability. The entry starts with the registry's hold.
func (s *server) newEntry(name string, spec *kspectrum.Spectrum) *entry {
	e := &entry{name: name, spec: spec, services: make(map[string]*serviceSlot)}
	e.refs.Store(1)
	for _, engName := range engine.Names() {
		e.services[engName] = &serviceSlot{}
	}
	// A spectrum Reptile cannot serve (k > 16 overflows the packed
	// 2k-base tile — the declared MaxSpectrumK capability) is not
	// fatal: it still serves REDEEM, and method=reptile requests
	// get the stored reason back as a clean 400.
	if rep, err := engine.Lookup(reptile.EngineName); err == nil {
		if e.reptileErr = s.checkServable(rep, e); e.reptileErr == nil {
			_, e.reptileErr = s.service(rep, e)
		}
	}
	return e
}

// spectrumNameRE admits registry names that are safe as both URL path
// segments and file names: leading alphanumeric, then up to 63 of
// [A-Za-z0-9._-]. The leading-alphanumeric rule excludes dotfiles and
// any traversal spelling.
var spectrumNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// handleSpectraUpload is POST /v2/spectra?name=NAME: the request body is
// a .kspc spectrum store, persisted with the store's temp+rename
// discipline, opened via OpenMapped (header validated eagerly, whole
// file verified in the background — a failure turns that spectrum's
// requests into clean 500s), and published atomically. Re-uploading an
// existing name is the hot-swap path: the new entry replaces the old in
// one registry splice, and in-flight requests on the old spectrum drain
// against their refcount before it is closed.
func (s *server) handleSpectraUpload(w http.ResponseWriter, r *http.Request) {
	if s.spectraDir == "" {
		s.errorJSON(w, http.StatusServiceUnavailable, errClassDisabled,
			"spectrum uploads are disabled: the server has no spectra directory")
		return
	}
	name := r.URL.Query().Get("name")
	if !spectrumNameRE.MatchString(name) {
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest,
			"name parameter %q: want a leading alphanumeric then [A-Za-z0-9._-], at most 64 chars", name)
		return
	}

	// Temp+rename discipline: the bytes land in a dot-temp file in the
	// same directory, are validated, and only then take the final name —
	// a crashed or rejected upload never leaves a half-written .kspc
	// behind the daemon's back.
	tmp, err := os.CreateTemp(s.spectraDir, "."+name+".upload-*")
	if err != nil {
		s.errorJSON(w, http.StatusInternalServerError, errClassInternal, "staging upload: %v", err)
		return
	}
	tmpPath := tmp.Name()
	discard := func() { os.Remove(tmpPath) }
	capped := http.MaxBytesReader(w, r.Body, s.opts.MaxSpectrumBytes)
	_, err = io.Copy(tmp, capped)
	if err2 := tmp.Close(); err == nil {
		err = err2
	}
	if err != nil {
		discard()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.errorJSON(w, http.StatusRequestEntityTooLarge, errClassTooLarge,
				"spectrum exceeds the %d-byte upload cap", s.opts.MaxSpectrumBytes)
			return
		}
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "reading upload: %v", err)
		return
	}

	// OpenMapped validates the header (magic, version, k, count) eagerly;
	// on platforms without mmap it falls back to the copying reader,
	// which validates everything. The mapping follows the inode, so the
	// rename below does not disturb it.
	spec, err := engine.LoadSpectrumForK(tmpPath, 0, s.opts.SpectrumMode)
	if err != nil {
		discard()
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "invalid spectrum upload: %v", err)
		return
	}
	final := filepath.Join(s.spectraDir, name+".kspc")
	if err := os.Rename(tmpPath, final); err != nil {
		spec.Close()
		discard()
		s.errorJSON(w, http.StatusInternalServerError, errClassInternal, "publishing upload: %v", err)
		return
	}
	e := s.newEntry(name, spec)
	e.owned = true
	e.path = final
	old := s.reg.put(e)
	s.verifyInBackground(e)
	op := "upload"
	if old != nil {
		op = "replace"
		old.release() // registry hold; closes once in-flight requests drain
	}
	s.m.swaps.With(op).Inc()
	s.m.spectra.Set(int64(s.reg.size()))
	s.updateQuarantineGauge()
	log.Printf("spectrum %q %sed: k=%d, %d kmers (%s)", name, op, spec.K, spec.Size(), final)

	writeJSON(w, http.StatusCreated, map[string]any{
		"name":     name,
		"k":        spec.K,
		"kmers":    spec.Size(),
		"mapped":   spec.Mapped(),
		"replaced": old != nil,
	})
}

// handleSpectraDelete is DELETE /v2/spectra/{name}: the entry leaves the
// registry immediately (new requests 404), in-flight requests drain
// against their holds, and an uploaded spectrum's store file is removed.
func (s *server) handleSpectraDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e := s.reg.remove(name)
	if e == nil {
		s.errorJSON(w, http.StatusNotFound, errClassUnknownSpectrum,
			"unknown spectrum %q (loaded: %s)", name, joinOr(s.reg.names(), "none"))
		return
	}
	if e.owned && e.path != "" {
		// The unlink is safe under in-flight mappings: the inode lives
		// until the last mapping is released.
		if err := os.Remove(e.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			log.Printf("spectrum %q: removing %s: %v", name, e.path, err)
		}
	}
	e.release() // registry hold
	s.m.swaps.With("delete").Inc()
	s.m.spectra.Set(int64(s.reg.size()))
	s.updateQuarantineGauge()
	log.Printf("spectrum %q deleted", name)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// joinOr renders a sorted name list, or a placeholder when empty.
func joinOr(names []string, empty string) string {
	if len(names) == 0 {
		return empty
	}
	return strings.Join(names, ", ")
}
