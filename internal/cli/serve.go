package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/remote"
	"repro/internal/reptile"
	"repro/internal/seq"
)

// serveCmd is the correction-as-a-service daemon: it loads one or more
// persisted k-spectra into a named registry at startup and serves
// correction requests over HTTP from then on, so the expensive Phase-1
// spectrum work is paid once per corpus instead of once per invocation.
//
// Endpoints:
//
//	POST /v1/correct?spectrum=NAME&method=reptile|redeem
//	    The legacy request shape, byte-for-byte compatible with the
//	    original daemon: a FASTQ chunk in, the corrected chunk out.
//	POST /v2/correct?spectrum=NAME&engine=NAME
//	    The registry-driven path: any engine whose declared capabilities
//	    allow the request is servable — including SHREC, which needs no
//	    spectrum — and unknown engine names report the registered ones.
//	    Same FASTQ body contract and X-Kserve-* stat headers as /v1.
//	GET /v2/engines
//	    JSON list of the registered engines: capabilities plus which
//	    loaded spectra each can serve.
//	GET /v1/spectra, GET /v2/spectra
//	    JSON list of the loaded spectra (name, k, kmers, both_strands).
//	POST /v2/spectra?name=NAME
//	    Upload a .kspc spectrum store and serve it without a restart;
//	    re-uploading an existing name hot-swaps it atomically while
//	    in-flight requests on the old spectrum drain.
//	DELETE /v2/spectra/{name}
//	    Unregister a spectrum; in-flight requests drain cleanly.
//	GET /metrics
//	    Prometheus text exposition: per-engine/per-spectrum request
//	    counts and latency histograms, error classes, shed counter,
//	    in-flight gauge, corrected reads/bases counters.
//	GET /healthz
//	    Liveness plus aggregate request counters.
//
// Concurrency is bounded by a semaphore of -max-inflight slots fronted
// by a bounded admission queue of -max-queue waiters: a request arriving
// beyond inflight+queue is shed immediately with 429 and Retry-After
// instead of queueing without bound. -request-timeout is the end-to-end
// per-request deadline (queue wait included): exceeding it cancels the
// correction work and answers 504. All error responses are
// application/json {"error": "..."}. A dropped request's context cancels
// its correction work. SIGINT/SIGTERM drain in-flight requests before
// exit.
func serveCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("serve")
	var specs specFlags
	var (
		listen         = fs.String("listen", ":8424", "HTTP listen address")
		maxInflight    = fs.Int("max-inflight", 0, "max concurrent correction requests (0 = 2x GOMAXPROCS)")
		maxQueue       = fs.Int("max-queue", 0, "max requests waiting for a correction slot before shedding with 429 (0 = 4x max-inflight, -1 = no queue)")
		requestTimeout = fs.Duration("request-timeout", time.Minute, "end-to-end deadline per correction request, queue wait included; exceeding it cancels the work and answers 504 (0 = none)")
		maxChunkReads  = fs.Int("max-chunk-reads", 100000, "max reads accepted per request (0 = unlimited)")
		maxChunkBytes  = fs.String("max-chunk-bytes", "64MB", "max raw request body size")
		maxSpecBytes   = fs.String("max-spectrum-bytes", "1GB", "max POST /v2/spectra upload size")
		spectraDirFlag = fs.String("spectra-dir", "", "directory for uploaded spectrum stores (empty = a private temp dir, removed at exit)")
		workers        = fs.Int("workers", 1, "correction workers per request (0 = all cores; keep small, requests already run in parallel)")
		errorRate      = fs.Float64("error-rate", 0.01, "assumed substitution rate for the REDEEM error model")
		d              = fs.Int("d", 1, "Reptile max Hamming distance per constituent kmer")
		readTimeout    = fs.Duration("read-timeout", 2*time.Minute, "deadline for reading one full request; bounds how long a slow upload can hold a correction slot (0 = none)")
		drainTimeout   = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
		mapSpectrum    = fs.Bool("map-spectrum", true, "serve spectra zero-copy off read-only memory mappings (false = copy each into memory with eager validation)")
		shardsOwned    = fs.String("shards-owned", "", "comma-separated shard numbers this node serves, e.g. 0,1 (node mode, with -shard-spectrum and -shards-of)")
		shardsOf       = fs.Int("shards-of", 0, "total shard count the -shard-spectrum spectra were split into (node mode)")
		coordinator    = fs.Bool("coordinator", false, "coordinator mode: discover shards from the -node daemons and serve corrections by fanning spectrum queries out to them")
		clusterWait    = fs.Duration("cluster-wait", 30*time.Second, "how long the coordinator retries discovery until every -node answers")
		shardRetries   = fs.Int("shard-retries", 2, "coordinator retries per shard query before degrading the shard to 503")
	)
	var shardSpecs, nodes specFlags
	fs.Var(&specs, "spectrum", "name=path of a persisted spectrum to serve (repeatable)")
	fs.Var(&shardSpecs, "shard-spectrum", "name=base.kspc of a sharded spectrum; the owned shard files (repro shard output) sit beside base (node mode, repeatable)")
	fs.Var(&nodes, "node", "base URL of a shard-serving node, e.g. http://10.0.0.2:8424 (coordinator mode, repeatable)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if len(specs) == 0 && len(shardSpecs) == 0 && !*coordinator {
		return usagef(fs, "at least one -spectrum name=path, -shard-spectrum name=base.kspc, or -coordinator is required")
	}
	if *coordinator && len(nodes) == 0 {
		return usagef(fs, "-coordinator requires at least one -node URL")
	}
	if len(shardSpecs) > 0 && (*shardsOf < 1 || *shardsOwned == "") {
		return usagef(fs, "-shard-spectrum requires -shards-of and -shards-owned")
	}

	mode := engine.SpectrumMapped
	if !*mapSpectrum {
		mode = engine.SpectrumCopied
	}
	loaded := make(map[string]*kspectrum.Spectrum, len(specs))
	paths := make(map[string]string, len(specs))
	// The deferred Close loop runs after the server's close() below has
	// waited out the background verifiers and quarantine probes, so an
	// unmap can never pull pages out from under a running scan.
	defer func() {
		for _, spec := range loaded {
			spec.Close()
		}
	}()
	for _, nv := range specs {
		name, path, ok := strings.Cut(nv, "=")
		if !ok || name == "" || path == "" {
			return usagef(fs, "-spectrum %q: want name=path", nv)
		}
		if _, dup := loaded[name]; dup {
			return usagef(fs, "-spectrum %q: duplicate name", name)
		}
		start := time.Now()
		spec, err := engine.LoadSpectrumForK(path, 0, mode)
		if err != nil {
			return err
		}
		loaded[name] = spec
		paths[name] = path
		how := "copied"
		if spec.Mapped() {
			how = "mapped"
		}
		log.Printf("loaded spectrum %q (%s): k=%d, %d kmers, bothStrands=%v (%v)",
			name, how, spec.K, spec.Size(), spec.BothStrands, time.Since(start).Round(time.Millisecond))
	}

	// Node mode: load the owned shard files of each sharded spectrum as
	// registry entries under their shard entry names and record the
	// metadata GET /v2/shards advertises to discovering coordinators.
	var shardEntries map[string]remote.ShardInfo
	if len(shardSpecs) > 0 {
		owned, err := parseShardList(*shardsOwned, *shardsOf)
		if err != nil {
			return usagef(fs, "-shards-owned: %v", err)
		}
		shardEntries = make(map[string]remote.ShardInfo)
		for _, nv := range shardSpecs {
			name, base, ok := strings.Cut(nv, "=")
			if !ok || name == "" || base == "" {
				return usagef(fs, "-shard-spectrum %q: want name=base.kspc", nv)
			}
			stem := strings.TrimSuffix(base, ".kspc")
			for _, i := range owned {
				path := kspectrum.ShardFileName(stem, i, *shardsOf)
				entryName := kspectrum.ShardEntryName(name, i, *shardsOf)
				if _, dup := loaded[entryName]; dup {
					return usagef(fs, "-shard-spectrum %q: duplicate entry %q", nv, entryName)
				}
				spec, err := engine.LoadSpectrumForK(path, 0, mode)
				if err != nil {
					return err
				}
				loaded[entryName] = spec
				paths[entryName] = path
				shardEntries[entryName] = remote.ShardInfo{
					Spectrum: name, Shard: i, Of: *shardsOf, Entry: entryName,
					K: spec.K, BothStrands: spec.BothStrands, Kmers: spec.Size(),
				}
				log.Printf("loaded shard %d/%d of spectrum %q: k=%d, %d kmers (%s)",
					i, *shardsOf, name, spec.K, spec.Size(), path)
			}
		}
	}

	// Coordinator mode: discover the cluster's shard maps from the nodes
	// (retrying until -cluster-wait elapses, so node and coordinator
	// processes can start in any order) and register a remote fan-out
	// backend per discovered spectrum.
	// The signal context exists before cluster discovery so a SIGTERM
	// during the startup retry loop aborts it immediately; the serving
	// select below reuses it for graceful drain.
	ctx, stop := signalContext()
	defer stop()
	var remoteSpectra map[string]*remote.RemoteSpectrum
	if *coordinator {
		maps, err := discoverCluster(ctx, nodes, *clusterWait)
		if err != nil {
			return err
		}
		remoteSpectra = make(map[string]*remote.RemoteSpectrum, len(maps))
		for name, m := range maps {
			if _, dup := loaded[name]; dup {
				return fmt.Errorf("cluster spectrum %q collides with a locally loaded spectrum", name)
			}
			rs, err := remote.New(m, remote.Options{
				HTTP: &http.Client{Timeout: 15 * time.Second},
				Policy: client.Policy{
					MaxRetries:  *shardRetries,
					BaseBackoff: 50 * time.Millisecond,
					MaxBackoff:  2 * time.Second,
				},
			})
			if err != nil {
				return err
			}
			remoteSpectra[name] = rs
			log.Printf("discovered spectrum %q: k=%d, %d kmers across %d shards on %d nodes",
				name, rs.K(), rs.Len(), len(m.Shards), len(nodes))
		}
	}

	chunkBytes, err := core.ParseByteSize(*maxChunkBytes)
	if err != nil {
		return err
	}
	specBytes, err := core.ParseByteSize(*maxSpecBytes)
	if err != nil {
		return err
	}
	spectraDir := *spectraDirFlag
	if spectraDir == "" {
		dir, err := os.MkdirTemp("", "repro-spectra-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		spectraDir = dir
	}
	srv, err := newServer(loaded, ServerOptions{
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		RequestTimeout:   *requestTimeout,
		MaxChunkReads:    *maxChunkReads,
		MaxChunkBytes:    chunkBytes,
		MaxSpectrumBytes: specBytes,
		SpectraDir:       spectraDir,
		SpectrumMode:     mode,
		Workers:          *workers,
		ErrorRate:        *errorRate,
		D:                *d,
		SpectrumPaths:    paths,
		ShardEntries:     shardEntries,
		RemoteSpectra:    remoteSpectra,
	})
	if err != nil {
		return err
	}
	// Stop the background machinery (verifiers, quarantine probes) before
	// the deferred spectrum Close loop above unmaps anything.
	defer srv.close()
	for _, e := range srv.reg.snapshot() {
		if e.reptileErr != nil {
			log.Printf("spectrum %q serves redeem only on /v1 (%v)", e.name, e.reptileErr)
		}
	}

	// An explicit Listen (instead of ListenAndServe) pins the bound
	// address before the serving goroutine starts: `-listen 127.0.0.1:0`
	// logs the real port, which harnesses scrape to find the daemon.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.mux(),
		// Without read deadlines, max-inflight slow uploads would pin
		// every correction slot forever (each handler reads the body
		// while holding its semaphore slot).
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("serving %d spectra on %s (max-inflight %d, max-queue %d, request-timeout %v, engines %s)",
		len(loaded), ln.Addr(), srv.maxInflight, srv.maxQueue, *requestTimeout, strings.Join(engine.Names(), ","))
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintf(stdout, "served %d requests (%d reads, %d changed, %d shed)\n",
		srv.stats.requests.Load(), srv.stats.reads.Load(), srv.stats.changed.Load(), srv.m.shed.Value())
	return nil
}

// specFlags collects repeated -spectrum name=path arguments.
type specFlags []string

func (s *specFlags) String() string     { return strings.Join(*s, ",") }
func (s *specFlags) Set(v string) error { *s = append(*s, v); return nil }

var _ flag.Value = (*specFlags)(nil)

// ServerOptions configures a correction server. It is exported so
// benchmarks and embedding tests can stand up the daemon's handler
// (NewHandler) without going through flags.
type ServerOptions struct {
	// MaxInflight bounds concurrently-executing correction requests
	// (<= 0 selects 2x GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds the requests waiting for a correction slot; a
	// request arriving beyond MaxInflight+MaxQueue is shed with 429.
	// 0 selects 4x MaxInflight; negative means no queue (shed as soon
	// as every slot is busy).
	MaxQueue int
	// RequestTimeout is the end-to-end deadline of one correction
	// request, queue wait included; exceeding it cancels the work and
	// answers 504 (0 = no deadline).
	RequestTimeout time.Duration
	// MaxChunkReads caps the reads accepted per request (0 = unlimited).
	MaxChunkReads int
	// MaxChunkBytes caps the raw request body size (<= 0 selects 64 MiB)
	// via http.MaxBytesReader, so a hostile or misconfigured client
	// cannot balloon the daemon before read-count limits even apply.
	MaxChunkBytes int64
	// MaxSpectrumBytes caps POST /v2/spectra upload bodies (<= 0
	// selects 1 GiB).
	MaxSpectrumBytes int64
	// SpectraDir is where uploaded spectrum stores land (empty disables
	// uploads with a clean 503).
	SpectraDir string
	// SpectrumMode is how uploaded spectra are opened (zero value =
	// mapped).
	SpectrumMode engine.SpectrumMode
	// Workers is the per-request correction parallelism (the inter-request
	// parallelism is MaxInflight; <= 0 uses all cores per request).
	Workers int
	// ErrorRate parameterizes the uniform REDEEM error model.
	ErrorRate float64
	// D is Reptile's per-kmer Hamming budget (0 selects the default 1).
	D int
	// SpectrumPaths maps startup spectrum names to their backing store
	// files, so the quarantine probe can re-open and repair a spectrum
	// whose in-memory state failed verification. Names without a path
	// stay quarantined until re-uploaded or deleted.
	SpectrumPaths map[string]string
	// QuarantineBase and QuarantineMax bound the quarantine probe's
	// exponential backoff: the first re-verification attempt runs after
	// QuarantineBase, doubling per failure up to QuarantineMax
	// (defaults 1s and 30s).
	QuarantineBase time.Duration
	QuarantineMax  time.Duration
	// ShardEntries marks loaded spectra that are shards of a larger
	// sharded spectrum, keyed by their registry entry name (which must
	// also be a key of the startup spectra map). Marked entries are
	// advertised on GET /v2/shards for coordinator discovery and served
	// on POST /v2/query.
	ShardEntries map[string]remote.ShardInfo
	// RemoteSpectra registers coordinator entries: named spectra whose
	// columns live sharded across other nodes behind a RemoteSpectrum
	// backend. Correction requests against them fan spectrum queries out
	// to the owning nodes.
	RemoteSpectra map[string]*remote.RemoteSpectrum
}

// server is the HTTP correction service: a mutable, refcounted registry
// of named spectra, a semaphore bounding in-flight correction work, a
// bounded admission queue in front of it, and an instrument panel.
type server struct {
	reg         *specRegistry
	sem         chan struct{}
	maxInflight int
	maxQueue    int
	// occupancy counts admission tokens held: requests executing plus
	// requests waiting for a slot. Admission compares it against
	// maxInflight+maxQueue — the shed decision is one atomic add.
	occupancy atomic.Int64
	opts      ServerOptions
	// global holds the /v2 service slots of spectrum-free engines
	// (SHREC): one shared corrector per engine, independent of any
	// loaded spectrum.
	global     map[string]*serviceSlot
	spectraDir string
	m          *serverMetrics

	// ctx scopes the server's background goroutines (startup and upload
	// verifiers, quarantine probes); close cancels it and waits for wg so
	// a stopped server leaks nothing — tests run under -race depend on
	// this, and so does the drain path of the serve subcommand.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stats struct {
		requests atomic.Int64
		reads    atomic.Int64
		changed  atomic.Int64
	}
}

// newServer builds the registry: a service slot per (spectrum, engine),
// with the Reptile slot resolved eagerly so the first request pays no
// index-build latency and startup can log which spectra are
// Reptile-servable.
func newServer(specs map[string]*kspectrum.Spectrum, opts ServerOptions) (*server, error) {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.MaxQueue == 0:
		opts.MaxQueue = 4 * opts.MaxInflight
	case opts.MaxQueue < 0:
		opts.MaxQueue = 0
	}
	if opts.MaxChunkBytes <= 0 {
		opts.MaxChunkBytes = 64 << 20
	}
	if opts.MaxSpectrumBytes <= 0 {
		opts.MaxSpectrumBytes = 1 << 30
	}
	if opts.ErrorRate <= 0 {
		opts.ErrorRate = 0.01
	}
	if opts.QuarantineBase <= 0 {
		opts.QuarantineBase = time.Second
	}
	if opts.QuarantineMax <= 0 {
		opts.QuarantineMax = 30 * time.Second
	}
	s := &server{
		reg:         &specRegistry{entries: make(map[string]*entry, len(specs))},
		sem:         make(chan struct{}, opts.MaxInflight),
		maxInflight: opts.MaxInflight,
		maxQueue:    opts.MaxQueue,
		opts:        opts,
		global:      make(map[string]*serviceSlot),
		spectraDir:  opts.SpectraDir,
		m:           newServerMetrics(),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	for _, engName := range engine.Names() {
		s.global[engName] = &serviceSlot{}
	}
	for name, spec := range specs {
		e := s.newEntry(name, spec)
		e.path = opts.SpectrumPaths[name]
		if si, ok := opts.ShardEntries[name]; ok {
			e.shard = &si
		}
		s.reg.put(e)
		// Surface latent file corruption without delaying startup: the
		// whole-file check runs in the background; a failure quarantines
		// the spectrum (clean 503s plus a repair probe) instead of
		// silently wrong corrections.
		s.verifyInBackground(e)
	}
	for name, rs := range opts.RemoteSpectra {
		// The fan-out backend reports every shard round trip into the
		// per-shard counter family, so /metrics shows cluster routing and
		// failures per shard.
		rs.SetOnQuery(func(shard int, outcome string) {
			s.m.shardRequests.With(name, strconv.Itoa(shard), outcome).Inc()
		})
		s.reg.put(s.newRemoteEntry(name, rs))
	}
	s.m.spectra.Set(int64(s.reg.size()))
	return s, nil
}

// close stops the server's background machinery — verifiers and
// quarantine probes — and waits for it to unwind. The HTTP listener and
// in-flight requests are the caller's to drain (http.Server.Shutdown);
// close concerns only the goroutines the server itself spawned.
func (s *server) close() {
	s.cancel()
	s.wg.Wait()
}

// verifyInBackground starts the whole-file integrity scan of a mapped
// entry. The verifier holds the entry like an in-flight request, so a
// hot-swap or delete that drains the other holds cannot unmap the file
// mid-scan; a verification failure quarantines the entry.
func (s *server) verifyInBackground(e *entry) {
	if e.spec == nil || !e.spec.Mapped() {
		return
	}
	e.acquire()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer e.release()
		if err := e.spec.Verify(); err != nil {
			s.quarantine(e, err)
		}
	}()
}

// quarantine moves an entry into the quarantined state: requests answer
// 503 from here on, and a single background probe (the CAS is the spawn
// dedup) retries the backing store until it verifies clean again.
func (s *server) quarantine(e *entry, cause error) {
	if !e.quarantined.CompareAndSwap(false, true) {
		return
	}
	log.Printf("spectrum %q quarantined, refusing its requests: %v", e.name, cause)
	s.updateQuarantineGauge()
	s.wg.Add(1)
	go s.probeQuarantined(e)
}

// probeQuarantined is the self-healing loop of one quarantined entry:
// exponential backoff between attempts to re-open and re-verify the
// backing store, restoring service atomically on the first clean pass.
// It exits when the entry is repaired, displaced (an upload or delete
// replaced the name — the operator's fix wins), or the server closes.
func (s *server) probeQuarantined(e *entry) {
	defer s.wg.Done()
	if e.path == "" {
		log.Printf("spectrum %q has no backing store path; quarantine is permanent until re-upload or delete", e.name)
		return
	}
	backoff := s.opts.QuarantineBase
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-timer.C:
		}
		if s.reg.current(e.name) != e {
			// Replaced or deleted while quarantined: the probe's work is
			// moot, the gauge only counts registered entries.
			s.updateQuarantineGauge()
			return
		}
		err := s.tryRestore(e)
		if err == nil {
			return
		}
		log.Printf("spectrum %q repair probe failed: %v (next attempt in %v)", e.name, err, backoff)
		if backoff *= 2; backoff > s.opts.QuarantineMax {
			backoff = s.opts.QuarantineMax
		}
		timer.Reset(backoff)
	}
}

// tryRestore attempts one repair of a quarantined entry: re-open the
// backing store, verify the whole file synchronously, and atomically
// swap a fresh entry into the registry. In-flight requests on the
// quarantined entry drain against their own holds, exactly like a hot
// swap.
func (s *server) tryRestore(e *entry) error {
	spec, err := engine.LoadSpectrumForK(e.path, 0, s.opts.SpectrumMode)
	if err != nil {
		return err
	}
	if err := spec.Verify(); err != nil {
		spec.Close()
		return err
	}
	repaired := s.newEntry(e.name, spec)
	repaired.owned = true // the server opened it, the last release closes it
	repaired.path = e.path
	if !s.reg.replaceIf(e, repaired) {
		// A concurrent upload or delete displaced the quarantined entry
		// first; its resolution wins and the repair is discarded.
		repaired.release()
		s.updateQuarantineGauge()
		return nil
	}
	e.release() // old registry hold; unmaps once in-flight requests drain
	s.m.swaps.With("restore").Inc()
	s.updateQuarantineGauge()
	log.Printf("spectrum %q restored from %s, quarantine lifted", e.name, e.path)
	return nil
}

// updateQuarantineGauge recomputes repro_spectra_quarantined from the
// registry — transitions recount instead of pairing inc/dec, so the
// gauge cannot drift when a probe races an upload or delete.
func (s *server) updateQuarantineGauge() {
	s.m.quarantined.Set(int64(s.reg.countQuarantined()))
}

// NewHandler stands up the daemon's full HTTP handler over preloaded
// spectra — the embedding and benchmarking entry. The serve subcommand
// adds flags, signal handling and logging around the same construction.
// The caller keeps ownership of the passed spectra; uploaded ones are
// owned (and closed) by the handler.
func NewHandler(specs map[string]*kspectrum.Spectrum, opts ServerOptions) (http.Handler, error) {
	srv, err := newServer(specs, opts)
	if err != nil {
		return nil, err
	}
	return srv.mux(), nil
}

// serviceRun builds the engine.Run a /v2 service is resolved against:
// the entry's spectrum for engines that reuse spectra, plus the server's
// request-independent tuning.
func (s *server) serviceRun(eng engine.Engine, e *entry) *engine.Run {
	opts := []engine.Option{
		reptile.WithD(s.opts.D),
		redeem.WithErrorRate(s.opts.ErrorRate),
	}
	if eng.Capabilities().SpectrumReuse && e != nil {
		if e.remote != nil {
			opts = append(opts, engine.WithSpectrumBackend(e.remote))
		} else {
			opts = append(opts, engine.WithSpectrum(e.spec))
		}
	}
	return engine.NewRun(opts...)
}

// checkServable is the cheap capability gate, run before request
// admission: an engine declared impossible for the request (e.g. Reptile
// on a k=20 spectrum) fails fast with the declaration, not a
// construction error, and without burning a correction slot.
func (s *server) checkServable(eng engine.Engine, e *entry) error {
	caps := eng.Capabilities()
	if caps.SpectrumReuse && e != nil && e.remote != nil && !caps.RemoteSpectrum {
		return fmt.Errorf("engine %q needs its spectrum local and %q is sharded across the cluster",
			eng.Name(), e.name)
	}
	if caps.SpectrumReuse && !caps.ServesSpectrum(e.k()) {
		return fmt.Errorf("engine %q cannot serve spectrum %q (k=%d exceeds max spectrum k %d)",
			eng.Name(), e.name, e.k(), caps.MaxSpectrumK)
	}
	if _, ok := eng.(engine.Servicer); !ok {
		return fmt.Errorf("engine %q does not support request-independent serving", eng.Name())
	}
	return nil
}

// service resolves the chunk corrector for an engine, building it at
// most once. Construction can be expensive (REDEEM's EM fit, Reptile's
// neighbor index), so callers on the request path invoke it only while
// holding a semaphore slot — cold-start work stays inside the
// -max-inflight bound.
func (s *server) service(eng engine.Engine, e *entry) (engine.ChunkCorrector, error) {
	if err := s.checkServable(eng, e); err != nil {
		return nil, err
	}
	sv := eng.(engine.Servicer) // checked by checkServable
	// Spectrum-reusing engines amortize per spectrum entry; spectrum-free
	// engines share one server-wide slot.
	var slot *serviceSlot
	if eng.Capabilities().SpectrumReuse && e != nil {
		slot = e.services[eng.Name()]
	} else {
		slot = s.global[eng.Name()]
	}
	if slot == nil {
		// An engine registered after server construction: serve it
		// unamortized rather than failing.
		return sv.NewService(s.serviceRun(eng, e))
	}
	slot.once.Do(func() {
		slot.svc, slot.err = sv.NewService(s.serviceRun(eng, e))
	})
	return slot.svc, slot.err
}

// mux wires the endpoints. The correct paths run inside the metrics
// middleware; the metadata endpoints are uninstrumented.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/spectra", s.handleSpectra)
	mux.HandleFunc("/v1/correct", s.correction(s.handleCorrectV1))
	mux.HandleFunc("/v2/engines", s.handleEngines)
	mux.HandleFunc("/v2/correct", s.correction(s.handleCorrectV2))
	mux.HandleFunc("GET /v2/spectra", s.handleSpectra)
	mux.HandleFunc("POST /v2/spectra", s.handleSpectraUpload)
	mux.HandleFunc("DELETE /v2/spectra/{name}", s.handleSpectraDelete)
	mux.HandleFunc("GET /v2/shards", s.handleShards)
	mux.HandleFunc("POST /v2/query", s.handleQuery)
	mux.HandleFunc("GET /v2/cluster", s.handleCluster)
	mux.Handle("GET /metrics", s.m.registry)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"spectra":     s.reg.size(),
		"quarantined": s.reg.countQuarantined(),
		"engines":     engine.Names(),
		"requests":    s.stats.requests.Load(),
		"reads":       s.stats.reads.Load(),
		"changed":     s.stats.changed.Load(),
		"inflight":    s.m.inflight.Value(),
		"shed":        s.m.shed.Value(),
	})
}

func (s *server) handleSpectra(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		Name        string `json:"name"`
		K           int    `json:"k"`
		Kmers       int    `json:"kmers"`
		BothStrands bool   `json:"both_strands"`
		Quarantined bool   `json:"quarantined,omitempty"`
		Remote      bool   `json:"remote,omitempty"`
	}
	entries := s.reg.snapshot()
	out := make([]specInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, specInfo{
			Name: e.name, K: e.k(), Kmers: e.size(),
			BothStrands: e.bothStrands(), Quarantined: e.quarantined.Load(),
			Remote: e.remote != nil,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleEngines reports the registry: each engine's declared capabilities
// and which loaded spectra it can serve ("*" for engines that need none).
func (s *server) handleEngines(w http.ResponseWriter, r *http.Request) {
	type engineInfo struct {
		Name          string   `json:"name"`
		Streaming     bool     `json:"streaming"`
		SpectrumReuse bool     `json:"spectrum_reuse"`
		MaxSpectrumK  int      `json:"max_spectrum_k,omitempty"`
		Spectra       []string `json:"spectra"`
	}
	entries := s.reg.snapshot()
	out := make([]engineInfo, 0)
	for _, eng := range engine.Engines() {
		caps := eng.Capabilities()
		info := engineInfo{
			Name:          eng.Name(),
			Streaming:     caps.Streaming,
			SpectrumReuse: caps.SpectrumReuse,
			MaxSpectrumK:  caps.MaxSpectrumK,
		}
		if caps.SpectrumReuse {
			info.Spectra = make([]string, 0, len(entries))
			for _, e := range entries {
				if e.remote != nil && !caps.RemoteSpectrum {
					continue
				}
				if caps.ServesSpectrum(e.k()) {
					info.Spectra = append(info.Spectra, e.name)
				}
			}
			sort.Strings(info.Spectra)
		} else {
			// No spectrum needed: servable against any request.
			info.Spectra = []string{"*"}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCorrectV1 is the legacy serve path: the method parameter selects
// reptile (default) or redeem, everything else is a 400. It corrects
// through the same per-entry engine slots as /v2, so both API versions
// share one neighbor index and one EM fit per spectrum.
func (s *server) handleCorrectV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, errClassBadRequest, "POST a FASTQ chunk")
		return
	}
	e, ok := s.selectEntry(w, r)
	if !ok {
		return
	}
	defer e.release()
	method := r.URL.Query().Get("method")
	if method == "" {
		method = reptile.EngineName
	}
	if method != reptile.EngineName && method != redeem.EngineName {
		s.errorJSON(w, http.StatusBadRequest, errClassUnknownEngine, "unknown method %q (want reptile or redeem)", method)
		return
	}
	if method == reptile.EngineName && e.reptileErr != nil {
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "spectrum %q cannot serve method reptile: %v", e.name, e.reptileErr)
		return
	}
	eng, err := engine.Lookup(method)
	if err != nil {
		s.errorJSON(w, http.StatusInternalServerError, errClassInternal, "%v", err)
		return
	}
	s.correctWithEngine(w, r, eng, e, method)
}

// handleCorrectV2 is the registry-driven serve path: any registered
// engine whose capabilities allow the request is servable, and unknown
// engine names report the registered ones (the same typed error every
// front end shares).
func (s *server) handleCorrectV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errorJSON(w, http.StatusMethodNotAllowed, errClassBadRequest, "POST a FASTQ chunk")
		return
	}
	name := r.URL.Query().Get("engine")
	if name == "" {
		name = reptile.EngineName
	}
	eng, err := engine.Lookup(name)
	if err != nil {
		// engine.Lookup's UnknownEngineError already lists the
		// registered names — exactly what an API client needs.
		s.errorJSON(w, http.StatusBadRequest, errClassUnknownEngine, "%v", err)
		return
	}
	setTrace(w, eng.Name(), "")
	var e *entry
	if eng.Capabilities().SpectrumReuse {
		var ok bool
		if e, ok = s.selectEntry(w, r); !ok {
			return
		}
		defer e.release()
	}
	if err := s.checkServable(eng, e); err != nil {
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "%v", err)
		return
	}
	s.correctWithEngine(w, r, eng, e, name)
}

// correctWithEngine is the shared tail of both serve paths: apply the
// request deadline, admit the request (bounded queue + semaphore slot +
// body decode), resolve the engine's service slot — only while holding
// the slot, so cold-start construction (REDEEM's EM fit) stays inside
// the -max-inflight bound — and correct under the request context, so a
// dropped connection or an expired deadline aborts the work instead of
// finishing it for nobody. The caller holds e's refcount for the whole
// call, so a concurrent hot swap or delete cannot unmap the spectrum
// under the correction.
func (s *server) correctWithEngine(w http.ResponseWriter, r *http.Request, eng engine.Engine, e *entry, method string) {
	specName := ""
	if e != nil {
		specName = e.name
	}
	setTrace(w, eng.Name(), specName)
	// A mapped spectrum that failed its deferred integrity checks (lazy
	// bucket validation or the background whole-file scan) answers every
	// query "absent" — correct for library callers but silently useless
	// corrections for a daemon client. Quarantine it — 503 with
	// Retry-After, because the repair probe may restore service — rather
	// than serving garbage or a misleading hard 500.
	if e != nil {
		if specErr := e.healthErr(); specErr != nil && e.spec != nil {
			s.quarantine(e, specErr)
		}
		if e.quarantined.Load() {
			w.Header().Set("Retry-After", "5")
			s.errorJSON(w, http.StatusServiceUnavailable, errClassQuarantined,
				"spectrum %q is quarantined (unserviceable pending repair): %v", e.name, e.healthErr())
			return
		}
	}
	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	reads, ok := s.admit(ctx, w, r)
	if !ok {
		return
	}
	defer s.releaseSlot()

	start := time.Now()
	var corrected []seq.Read
	svc, err := s.service(eng, e)
	if err == nil {
		corrected, err = svc.CorrectChunk(ctx, reads, s.opts.Workers)
	}
	s.respond(w, r, reads, corrected, err, specName, method, start)
}

// admit runs the shared request admission. The shed decision is one
// atomic add against the occupancy bound (executing + queued), so
// sustained over-capacity load turns into immediate 429s instead of an
// unbounded queue of doomed requests; under the bound the request waits
// for a semaphore slot (deadline and client disconnect both abort the
// wait), then decodes the body under the size caps. On false the
// response has been written and all admission state released.
func (s *server) admit(ctx context.Context, w http.ResponseWriter, r *http.Request) ([]seq.Read, bool) {
	// A declared-oversize body is refused before it costs anything — no
	// admission token, no slot, no read. MaxBytesReader below remains
	// the backstop for chunked uploads that never declare a length.
	if s.opts.MaxChunkBytes > 0 && r.ContentLength > s.opts.MaxChunkBytes {
		s.errorJSON(w, http.StatusRequestEntityTooLarge, errClassTooLarge,
			"request body %d bytes exceeds the %d-byte chunk cap", r.ContentLength, s.opts.MaxChunkBytes)
		return nil, false
	}
	if occ := s.occupancy.Add(1); occ > int64(s.maxInflight+s.maxQueue) {
		s.occupancy.Add(-1)
		s.m.shed.Inc()
		// The queue is full of requests that each hold a slot for a
		// correction's worth of time; one second is an honest lower
		// bound on when retrying could succeed.
		w.Header().Set("Retry-After", "1")
		s.errorJSON(w, http.StatusTooManyRequests, errClassShed,
			"server saturated: %d requests in flight and %d queued; retry later", s.maxInflight, s.maxQueue)
		return nil, false
	}
	s.m.occupancy.Set(s.occupancy.Load())
	// Bounded in-flight concurrency: wait for a slot, give up if the
	// client or the deadline does. Admission happens BEFORE the body is
	// decoded so at most max-inflight fully-parsed chunks exist at once;
	// the time a slow upload can then occupy a slot is bounded by the
	// server's ReadTimeout (-read-timeout), not by client goodwill.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.occupancy.Add(-1)
		s.m.occupancy.Set(s.occupancy.Load())
		if r.Context().Err() != nil {
			s.errorJSON(w, http.StatusServiceUnavailable, errClassClientGone, "client gave up waiting for a correction slot")
		} else {
			s.errorJSON(w, http.StatusGatewayTimeout, errClassDeadline,
				"request timed out after %v waiting for a correction slot", s.opts.RequestTimeout)
		}
		return nil, false
	}
	capped := http.MaxBytesReader(w, r.Body, s.opts.MaxChunkBytes)
	reads, err := fastq.DecodeChunk(capped, s.opts.MaxChunkReads)
	if err != nil {
		s.releaseSlot()
		var tooBig *http.MaxBytesError
		if errors.Is(err, fastq.ErrChunkTooLarge) || errors.As(err, &tooBig) {
			s.errorJSON(w, http.StatusRequestEntityTooLarge, errClassTooLarge, "%v", err)
		} else {
			s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "%v", err)
		}
		return nil, false
	}
	if len(reads) == 0 {
		s.releaseSlot()
		s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "empty chunk")
		return nil, false
	}
	return reads, true
}

// releaseSlot returns a semaphore slot and its admission token.
func (s *server) releaseSlot() {
	<-s.sem
	s.occupancy.Add(-1)
	s.m.occupancy.Set(s.occupancy.Load())
}

// respond finishes a correction request: error mapping, stats, headers,
// body.
func (s *server) respond(w http.ResponseWriter, r *http.Request, reads, corrected []seq.Read, err error, spectrum, method string, start time.Time) {
	if err != nil {
		var sue *remote.ShardUnavailableError
		switch {
		case r.Context().Err() != nil:
			// The client is gone; the status is a formality.
			s.errorJSON(w, http.StatusServiceUnavailable, errClassClientGone, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			s.errorJSON(w, http.StatusGatewayTimeout, errClassDeadline,
				"correction exceeded the %v request deadline", s.opts.RequestTimeout)
		case errors.As(err, &sue):
			// A shard's node stayed unreachable through the fan-out retry
			// budget: the coordinator degrades requests touching that
			// keyspace slice to an honest retryable 503 — spectra on other
			// nodes keep serving.
			w.Header().Set("Retry-After", retryAfterSeconds(sue.RetryAfter))
			s.errorJSON(w, http.StatusServiceUnavailable, errClassShardUnavailable, "%v", err)
		default:
			s.errorJSON(w, http.StatusInternalServerError, errClassInternal, "%v", err)
		}
		return
	}
	body, err := fastq.EncodeChunk(corrected)
	if err != nil {
		s.errorJSON(w, http.StatusInternalServerError, errClassInternal, "%v", err)
		return
	}

	changed := engine.CountChanged(reads, corrected)
	changedBases := engine.CountChangedBases(reads, corrected)
	s.stats.requests.Add(1)
	s.stats.reads.Add(int64(len(reads)))
	s.stats.changed.Add(int64(changed))
	s.m.reads.Add(uint64(len(reads)))
	s.m.changedReads.Add(uint64(changed))
	s.m.changedBases.Add(uint64(changedBases))

	h := w.Header()
	h.Set("Content-Type", "text/x-fastq")
	if spectrum != "" {
		h.Set("X-Kserve-Spectrum", spectrum)
	}
	h.Set("X-Kserve-Method", method)
	h.Set("X-Kserve-Reads", fmt.Sprint(len(reads)))
	h.Set("X-Kserve-Changed", fmt.Sprint(changed))
	h.Set("X-Kserve-Duration-Ms", fmt.Sprint(time.Since(start).Milliseconds()))
	w.WriteHeader(http.StatusOK)
	// A write failure means the client disconnected mid-response; the
	// work is already done and counted, nothing to clean up.
	_, _ = w.Write(body)
}

// selectEntry resolves the spectrum query parameter — an explicit name,
// or the sole loaded spectrum when the parameter is omitted — and
// acquires a hold on the entry; the caller must release it.
func (s *server) selectEntry(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	name := r.URL.Query().Get("spectrum")
	if name == "" {
		e, n := s.reg.sole()
		if e != nil {
			return e, true
		}
		if n == 0 {
			s.errorJSON(w, http.StatusBadRequest, errClassUnknownSpectrum, "no spectra loaded")
		} else {
			s.errorJSON(w, http.StatusBadRequest, errClassBadRequest, "spectrum parameter required (several spectra loaded)")
		}
		return nil, false
	}
	e := s.reg.get(name)
	if e == nil {
		s.errorJSON(w, http.StatusNotFound, errClassUnknownSpectrum,
			"unknown spectrum %q (loaded: %s)", name, strings.Join(s.reg.names(), ", "))
		return nil, false
	}
	return e, true
}

// Error classes label repro_request_errors_total so operators can tell
// client mistakes from shed load from real failures at a glance.
const (
	errClassBadRequest       = "bad_request"
	errClassTooLarge         = "too_large"
	errClassUnknownEngine    = "unknown_engine"
	errClassUnknownSpectrum  = "unknown_spectrum"
	errClassQuarantined      = "quarantined_spectrum"
	errClassDisabled         = "uploads_disabled"
	errClassShed             = "shed"
	errClassShardUnavailable = "shard_unavailable"
	errClassClientGone       = "client_gone"
	errClassDeadline         = "deadline"
	errClassInternal         = "internal"
	errClassPanic            = "panic"
)

// errorJSON is the single error-response path of the daemon: every 4xx
// and 5xx carries application/json {"error": "..."} and increments the
// per-class error counter, so clients parse one shape and operators see
// one taxonomy.
func (s *server) errorJSON(w http.ResponseWriter, status int, class, format string, args ...any) {
	if class != "" {
		s.m.errors.With(class).Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure only means the
	// client went away.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure only means the
	// client went away.
	_ = json.NewEncoder(w).Encode(v)
}
