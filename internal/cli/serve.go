package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fastq"
	"repro/internal/kspectrum"
	"repro/internal/redeem"
	"repro/internal/reptile"
	"repro/internal/seq"
)

// serveCmd is the correction-as-a-service daemon: it loads one or more
// persisted k-spectra into a named registry at startup and serves
// correction requests over HTTP from then on, so the expensive Phase-1
// spectrum work is paid once per corpus instead of once per invocation.
//
// Endpoints:
//
//	POST /v1/correct?spectrum=NAME&method=reptile|redeem
//	    The legacy request shape, byte-for-byte compatible with the
//	    original daemon: a FASTQ chunk in, the corrected chunk out.
//	POST /v2/correct?spectrum=NAME&engine=NAME
//	    The registry-driven path: any engine whose declared capabilities
//	    allow the request is servable — including SHREC, which needs no
//	    spectrum — and unknown engine names report the registered ones.
//	    Same FASTQ body contract and X-Kserve-* stat headers as /v1.
//	GET /v2/engines
//	    JSON list of the registered engines: capabilities plus which
//	    loaded spectra each can serve.
//	GET /v1/spectra
//	    JSON list of the loaded spectra (name, k, kmers, both_strands).
//	GET /healthz
//	    Liveness plus aggregate request counters.
//
// Concurrency is bounded by a semaphore of -max-inflight slots; requests
// beyond the bound queue until a slot frees or the client gives up. A
// dropped request's context cancels its correction work. SIGINT/SIGTERM
// drain in-flight requests before exit.
func serveCmd(args []string, stdout io.Writer) error {
	fs := newFlagSet("serve")
	var specs specFlags
	var (
		listen        = fs.String("listen", ":8424", "HTTP listen address")
		maxInflight   = fs.Int("max-inflight", 0, "max concurrent correction requests (0 = 2x GOMAXPROCS)")
		maxChunkReads = fs.Int("max-chunk-reads", 100000, "max reads accepted per request (0 = unlimited)")
		maxChunkBytes = fs.String("max-chunk-bytes", "64MB", "max raw request body size")
		workers       = fs.Int("workers", 1, "correction workers per request (0 = all cores; keep small, requests already run in parallel)")
		errorRate     = fs.Float64("error-rate", 0.01, "assumed substitution rate for the REDEEM error model")
		d             = fs.Int("d", 1, "Reptile max Hamming distance per constituent kmer")
		readTimeout   = fs.Duration("read-timeout", 2*time.Minute, "deadline for reading one full request; bounds how long a slow upload can hold a correction slot (0 = none)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight requests")
		mapSpectrum   = fs.Bool("map-spectrum", true, "serve spectra zero-copy off read-only memory mappings (false = copy each into memory with eager validation)")
	)
	fs.Var(&specs, "spectrum", "name=path of a persisted spectrum to serve (repeatable, required)")
	if err := parse(fs, args); err != nil {
		return err
	}
	if len(specs) == 0 {
		return usagef(fs, "at least one -spectrum name=path is required")
	}

	mode := engine.SpectrumMapped
	if !*mapSpectrum {
		mode = engine.SpectrumCopied
	}
	loaded := make(map[string]*kspectrum.Spectrum, len(specs))
	defer func() {
		for _, spec := range loaded {
			spec.Close()
		}
	}()
	for _, nv := range specs {
		name, path, ok := strings.Cut(nv, "=")
		if !ok || name == "" || path == "" {
			return usagef(fs, "-spectrum %q: want name=path", nv)
		}
		if _, dup := loaded[name]; dup {
			return usagef(fs, "-spectrum %q: duplicate name", name)
		}
		start := time.Now()
		spec, err := engine.LoadSpectrumForK(path, 0, mode)
		if err != nil {
			return err
		}
		loaded[name] = spec
		how := "copied"
		if spec.Mapped() {
			how = "mapped"
		}
		log.Printf("loaded spectrum %q (%s): k=%d, %d kmers, bothStrands=%v (%v)",
			name, how, spec.K, spec.Size(), spec.BothStrands, time.Since(start).Round(time.Millisecond))
		if spec.Mapped() {
			// Surface latent file corruption without delaying startup: the
			// whole-file check runs in the background; a failure is sticky
			// on the spectrum, so requests touching it turn into clean 500s
			// (see correctWithEngine) instead of silently wrong corrections.
			go func(name string, spec *kspectrum.Spectrum) {
				if err := spec.Verify(); err != nil {
					log.Printf("spectrum %q failed verification, refusing its requests: %v", name, err)
				}
			}(name, spec)
		}
	}

	chunkBytes, err := core.ParseByteSize(*maxChunkBytes)
	if err != nil {
		return err
	}
	srv, err := newServer(loaded, serverOptions{
		MaxInflight:   *maxInflight,
		MaxChunkReads: *maxChunkReads,
		MaxChunkBytes: chunkBytes,
		Workers:       *workers,
		ErrorRate:     *errorRate,
		D:             *d,
	})
	if err != nil {
		return err
	}
	for name, e := range srv.entries {
		if e.reptileErr != nil {
			log.Printf("spectrum %q serves redeem only on /v1 (%v)", name, e.reptileErr)
		}
	}

	httpSrv := &http.Server{
		Addr:    *listen,
		Handler: srv.mux(),
		// Without read deadlines, max-inflight slow uploads would pin
		// every correction slot forever (each handler reads the body
		// while holding its semaphore slot).
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signalContext()
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d spectra on %s (max-inflight %d, engines %s)",
		len(loaded), *listen, srv.maxInflight, strings.Join(engine.Names(), ","))
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintf(stdout, "served %d requests (%d reads, %d changed)\n",
		srv.stats.requests.Load(), srv.stats.reads.Load(), srv.stats.changed.Load())
	return nil
}

// specFlags collects repeated -spectrum name=path arguments.
type specFlags []string

func (s *specFlags) String() string     { return strings.Join(*s, ",") }
func (s *specFlags) Set(v string) error { *s = append(*s, v); return nil }

var _ flag.Value = (*specFlags)(nil)

// serverOptions configures a correction server.
type serverOptions struct {
	// MaxInflight bounds concurrently-executing correction requests
	// (<= 0 selects 2x GOMAXPROCS).
	MaxInflight int
	// MaxChunkReads caps the reads accepted per request (0 = unlimited).
	MaxChunkReads int
	// MaxChunkBytes caps the raw request body size (<= 0 selects 64 MiB)
	// via http.MaxBytesReader, so a hostile or misconfigured client
	// cannot balloon the daemon before read-count limits even apply.
	MaxChunkBytes int64
	// Workers is the per-request correction parallelism (the inter-request
	// parallelism is MaxInflight; <= 0 uses all cores per request).
	Workers int
	// ErrorRate parameterizes the uniform REDEEM error model.
	ErrorRate float64
	// D is Reptile's per-kmer Hamming budget (0 selects the default 1).
	D int
}

// entry is one registry slot: a loaded spectrum plus the per-engine
// service slots derived from it. Both API versions share the slots —
// one neighbor index and one EM fit per (spectrum, engine), however the
// request arrives — so serving /v1 and /v2 together costs no more than
// either alone. The Reptile slot is built eagerly at registration (the
// original daemon's behavior: the first request pays no index-build
// latency), the rest on first use, because many deployments serve a
// single algorithm.
type entry struct {
	name string
	spec *kspectrum.Spectrum
	// reptileErr is non-nil when the spectrum cannot serve Reptile
	// (e.g. k > 16 overflows the packed tile — now a declared
	// capability); it says why, and the spectrum still serves REDEEM.
	reptileErr error

	// services are the per-engine correctors, keyed by engine name and
	// built at most once through engine.Servicer.
	services map[string]*serviceSlot
}

// serviceSlot builds one engine's chunk corrector at most once.
type serviceSlot struct {
	once sync.Once
	svc  engine.ChunkCorrector
	err  error
}

// server is the HTTP correction service: an immutable registry of named
// spectra and a semaphore bounding in-flight correction work.
type server struct {
	entries     map[string]*entry
	sem         chan struct{}
	maxInflight int
	opts        serverOptions
	// global holds the /v2 service slots of spectrum-free engines
	// (SHREC): one shared corrector per engine, independent of any
	// loaded spectrum.
	global map[string]*serviceSlot

	stats struct {
		requests atomic.Int64
		reads    atomic.Int64
		changed  atomic.Int64
	}
}

// newServer builds the registry: a service slot per (spectrum, engine),
// with the Reptile slot resolved eagerly so the first request pays no
// index-build latency and startup can log which spectra are
// Reptile-servable.
func newServer(specs map[string]*kspectrum.Spectrum, opts serverOptions) (*server, error) {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.MaxChunkBytes <= 0 {
		opts.MaxChunkBytes = 64 << 20
	}
	if opts.ErrorRate <= 0 {
		opts.ErrorRate = 0.01
	}
	s := &server{
		entries:     make(map[string]*entry, len(specs)),
		sem:         make(chan struct{}, opts.MaxInflight),
		maxInflight: opts.MaxInflight,
		opts:        opts,
		global:      make(map[string]*serviceSlot),
	}
	for _, engName := range engine.Names() {
		s.global[engName] = &serviceSlot{}
	}
	for name, spec := range specs {
		e := &entry{name: name, spec: spec, services: make(map[string]*serviceSlot)}
		for _, engName := range engine.Names() {
			e.services[engName] = &serviceSlot{}
		}
		s.entries[name] = e
		// A spectrum Reptile cannot serve (k > 16 overflows the packed
		// 2k-base tile — the declared MaxSpectrumK capability) is not
		// fatal: it still serves REDEEM, and method=reptile requests
		// get the stored reason back as a clean 400.
		if rep, err := engine.Lookup(reptile.EngineName); err == nil {
			if e.reptileErr = s.checkServable(rep, e); e.reptileErr == nil {
				_, e.reptileErr = s.service(rep, e)
			}
		}
	}
	return s, nil
}

// serviceRun builds the engine.Run a /v2 service is resolved against:
// the entry's spectrum for engines that reuse spectra, plus the server's
// request-independent tuning.
func (s *server) serviceRun(eng engine.Engine, e *entry) *engine.Run {
	opts := []engine.Option{
		reptile.WithD(s.opts.D),
		redeem.WithErrorRate(s.opts.ErrorRate),
	}
	if eng.Capabilities().SpectrumReuse && e != nil {
		opts = append(opts, engine.WithSpectrum(e.spec))
	}
	return engine.NewRun(opts...)
}

// checkServable is the cheap capability gate, run before request
// admission: an engine declared impossible for the request (e.g. Reptile
// on a k=20 spectrum) fails fast with the declaration, not a
// construction error, and without burning a correction slot.
func (s *server) checkServable(eng engine.Engine, e *entry) error {
	caps := eng.Capabilities()
	if caps.SpectrumReuse && !caps.ServesSpectrum(e.spec.K) {
		return fmt.Errorf("engine %q cannot serve spectrum %q (k=%d exceeds max spectrum k %d)",
			eng.Name(), e.name, e.spec.K, caps.MaxSpectrumK)
	}
	if _, ok := eng.(engine.Servicer); !ok {
		return fmt.Errorf("engine %q does not support request-independent serving", eng.Name())
	}
	return nil
}

// service resolves the chunk corrector for an engine, building it at
// most once. Construction can be expensive (REDEEM's EM fit, Reptile's
// neighbor index), so callers on the request path invoke it only while
// holding a semaphore slot — cold-start work stays inside the
// -max-inflight bound.
func (s *server) service(eng engine.Engine, e *entry) (engine.ChunkCorrector, error) {
	if err := s.checkServable(eng, e); err != nil {
		return nil, err
	}
	sv := eng.(engine.Servicer) // checked by checkServable
	// Spectrum-reusing engines amortize per spectrum entry; spectrum-free
	// engines share one server-wide slot.
	var slot *serviceSlot
	if eng.Capabilities().SpectrumReuse && e != nil {
		slot = e.services[eng.Name()]
	} else {
		slot = s.global[eng.Name()]
	}
	if slot == nil {
		// An engine registered after server construction: serve it
		// unamortized rather than failing.
		return sv.NewService(s.serviceRun(eng, e))
	}
	slot.once.Do(func() {
		slot.svc, slot.err = sv.NewService(s.serviceRun(eng, e))
	})
	return slot.svc, slot.err
}

// mux wires the endpoints.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/spectra", s.handleSpectra)
	mux.HandleFunc("/v1/correct", s.handleCorrectV1)
	mux.HandleFunc("/v2/engines", s.handleEngines)
	mux.HandleFunc("/v2/correct", s.handleCorrectV2)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"spectra":  len(s.entries),
		"engines":  engine.Names(),
		"requests": s.stats.requests.Load(),
		"reads":    s.stats.reads.Load(),
		"changed":  s.stats.changed.Load(),
	})
}

func (s *server) handleSpectra(w http.ResponseWriter, r *http.Request) {
	type specInfo struct {
		Name        string `json:"name"`
		K           int    `json:"k"`
		Kmers       int    `json:"kmers"`
		BothStrands bool   `json:"both_strands"`
	}
	out := make([]specInfo, 0, len(s.entries))
	for name, e := range s.entries {
		out = append(out, specInfo{Name: name, K: e.spec.K, Kmers: e.spec.Size(), BothStrands: e.spec.BothStrands})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleEngines reports the registry: each engine's declared capabilities
// and which loaded spectra it can serve ("*" for engines that need none).
func (s *server) handleEngines(w http.ResponseWriter, r *http.Request) {
	type engineInfo struct {
		Name          string   `json:"name"`
		Streaming     bool     `json:"streaming"`
		SpectrumReuse bool     `json:"spectrum_reuse"`
		MaxSpectrumK  int      `json:"max_spectrum_k,omitempty"`
		Spectra       []string `json:"spectra"`
	}
	out := make([]engineInfo, 0)
	for _, eng := range engine.Engines() {
		caps := eng.Capabilities()
		info := engineInfo{
			Name:          eng.Name(),
			Streaming:     caps.Streaming,
			SpectrumReuse: caps.SpectrumReuse,
			MaxSpectrumK:  caps.MaxSpectrumK,
		}
		if caps.SpectrumReuse {
			info.Spectra = make([]string, 0, len(s.entries))
			for name, e := range s.entries {
				if caps.ServesSpectrum(e.spec.K) {
					info.Spectra = append(info.Spectra, name)
				}
			}
			sort.Strings(info.Spectra)
		} else {
			// No spectrum needed: servable against any request.
			info.Spectra = []string{"*"}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCorrectV1 is the legacy serve path, byte-for-byte compatible
// with the original daemon's responses: the method parameter selects
// reptile (default) or redeem, everything else is a 400. It corrects
// through the same per-entry engine slots as /v2, so both API versions
// share one neighbor index and one EM fit per spectrum.
func (s *server) handleCorrectV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a FASTQ chunk", http.StatusMethodNotAllowed)
		return
	}
	e, ok := s.selectEntry(w, r)
	if !ok {
		return
	}
	method := r.URL.Query().Get("method")
	if method == "" {
		method = reptile.EngineName
	}
	if method != reptile.EngineName && method != redeem.EngineName {
		http.Error(w, fmt.Sprintf("unknown method %q (want reptile or redeem)", method), http.StatusBadRequest)
		return
	}
	if method == reptile.EngineName && e.reptileErr != nil {
		http.Error(w, fmt.Sprintf("spectrum %q cannot serve method reptile: %v", e.name, e.reptileErr), http.StatusBadRequest)
		return
	}
	eng, err := engine.Lookup(method)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.correctWithEngine(w, r, eng, e, method)
}

// handleCorrectV2 is the registry-driven serve path: any registered
// engine whose capabilities allow the request is servable, and unknown
// engine names report the registered ones (the same typed error every
// front end shares).
func (s *server) handleCorrectV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a FASTQ chunk", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("engine")
	if name == "" {
		name = reptile.EngineName
	}
	eng, err := engine.Lookup(name)
	if err != nil {
		// engine.Lookup's UnknownEngineError already lists the
		// registered names — exactly what an API client needs.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var e *entry
	if eng.Capabilities().SpectrumReuse {
		var ok bool
		if e, ok = s.selectEntry(w, r); !ok {
			return
		}
	}
	if err := s.checkServable(eng, e); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.correctWithEngine(w, r, eng, e, name)
}

// correctWithEngine is the shared tail of both serve paths: admit the
// request (semaphore slot + body decode), resolve the engine's service
// slot — only while holding the slot, so cold-start construction
// (REDEEM's EM fit) stays inside the -max-inflight bound — and correct
// under the request context, so a dropped connection aborts its work
// instead of finishing it for nobody.
func (s *server) correctWithEngine(w http.ResponseWriter, r *http.Request, eng engine.Engine, e *entry, method string) {
	// A mapped spectrum that failed its deferred integrity checks (lazy
	// bucket validation or the background whole-file scan) answers every
	// query "absent" — correct for library callers but silently useless
	// corrections for a daemon client. Refuse the request instead.
	if e != nil {
		if specErr := e.spec.Err(); specErr != nil {
			http.Error(w, fmt.Sprintf("spectrum %q is unserviceable: %v", e.name, specErr), http.StatusInternalServerError)
			return
		}
	}
	reads, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer func() { <-s.sem }()

	start := time.Now()
	var corrected []seq.Read
	svc, err := s.service(eng, e)
	if err == nil {
		corrected, err = svc.CorrectChunk(r.Context(), reads, s.opts.Workers)
	}
	specName := ""
	if e != nil {
		specName = e.name
	}
	s.respond(w, reads, corrected, err, specName, method, start)
}

// admit runs the shared request admission: take a semaphore slot (give up
// if the client does), then decode the body under the size caps. On false
// the response has been written and the slot released.
func (s *server) admit(w http.ResponseWriter, r *http.Request) ([]seq.Read, bool) {
	// Bounded in-flight concurrency: block for a slot, give up if the
	// client does. Admission happens BEFORE the body is decoded so at
	// most max-inflight fully-parsed chunks exist at once; the time a
	// slow upload can then occupy a slot is bounded by the server's
	// ReadTimeout (-read-timeout), not by client goodwill.
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		http.Error(w, "client gave up waiting for a correction slot", http.StatusServiceUnavailable)
		return nil, false
	}
	release := func() { <-s.sem }
	capped := http.MaxBytesReader(w, r.Body, s.opts.MaxChunkBytes)
	reads, err := fastq.DecodeChunk(capped, s.opts.MaxChunkReads)
	if err != nil {
		release()
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.Is(err, fastq.ErrChunkTooLarge) || errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return nil, false
	}
	if len(reads) == 0 {
		release()
		http.Error(w, "empty chunk", http.StatusBadRequest)
		return nil, false
	}
	return reads, true
}

// respond finishes a correction request: error mapping, stats, headers,
// body.
func (s *server) respond(w http.ResponseWriter, reads, corrected []seq.Read, err error, spectrum, method string, start time.Time) {
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone; the status is a formality.
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	body, err := fastq.EncodeChunk(corrected)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	changed := engine.CountChanged(reads, corrected)
	s.stats.requests.Add(1)
	s.stats.reads.Add(int64(len(reads)))
	s.stats.changed.Add(int64(changed))

	h := w.Header()
	h.Set("Content-Type", "text/x-fastq")
	if spectrum != "" {
		h.Set("X-Kserve-Spectrum", spectrum)
	}
	h.Set("X-Kserve-Method", method)
	h.Set("X-Kserve-Reads", fmt.Sprint(len(reads)))
	h.Set("X-Kserve-Changed", fmt.Sprint(changed))
	h.Set("X-Kserve-Duration-Ms", fmt.Sprint(time.Since(start).Milliseconds()))
	w.WriteHeader(http.StatusOK)
	// A write failure means the client disconnected mid-response; the
	// work is already done and counted, nothing to clean up.
	_, _ = w.Write(body)
}

// selectEntry resolves the spectrum query parameter: an explicit name, or
// the sole loaded spectrum when the parameter is omitted.
func (s *server) selectEntry(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	name := r.URL.Query().Get("spectrum")
	if name == "" {
		if len(s.entries) == 1 {
			for _, e := range s.entries {
				return e, true
			}
		}
		http.Error(w, "spectrum parameter required (several spectra loaded)", http.StatusBadRequest)
		return nil, false
	}
	e, ok := s.entries[name]
	if !ok {
		known := make([]string, 0, len(s.entries))
		for n := range s.entries {
			known = append(known, n)
		}
		sort.Strings(known)
		http.Error(w, fmt.Sprintf("unknown spectrum %q (loaded: %s)", name, strings.Join(known, ", ")), http.StatusNotFound)
		return nil, false
	}
	return e, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already out; an encode failure only means the
	// client went away.
	_ = json.NewEncoder(w).Encode(v)
}
