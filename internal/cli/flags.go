package cli

import (
	"context"
	"errors"
	"flag"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fastq"
	"repro/internal/seq"
)

// correctFlags is the flag block shared by the correction subcommands —
// declared once here instead of re-declared by every main, so names,
// defaults and help strings cannot drift between front ends.
type correctFlags struct {
	in, out    string
	workers    int
	shards     int
	memBudget  string
	loadSpec   string
	saveSpec   string
	mapSpec    bool
	ckptDir    string
	resume     bool
	ckptEvery  int64
	cpuprofile string
	memprofile string
}

// register installs the shared correction flags on fs. Engines without a
// spectrum (SHREC) pass spectrum=false to omit the -load/-save-spectrum
// pair.
func (f *correctFlags) register(fs *flag.FlagSet, spectrum bool) {
	fs.StringVar(&f.in, "in", "", "input FASTQ (required)")
	fs.StringVar(&f.out, "out", "", "output FASTQ (required)")
	fs.IntVar(&f.workers, "workers", 0, "parallel workers (0 = all cores)")
	fs.IntVar(&f.shards, "shards", 0, "spectrum shard count (0 = derive from workers)")
	fs.StringVar(&f.memBudget, "mem-budget", "0", "spectrum accumulator budget, e.g. 64MB (0 = unlimited, in-memory)")
	fs.StringVar(&f.ckptDir, "checkpoint", "", "directory for crash-safe spectrum-build checkpoints (empty = off)")
	fs.BoolVar(&f.resume, "resume", false, "resume the interrupted build checkpointed in -checkpoint")
	fs.Int64Var(&f.ckptEvery, "checkpoint-every", 0, "reads between automatic checkpoints (0 = default)")
	if spectrum {
		fs.StringVar(&f.loadSpec, "load-spectrum", "", "reuse a persisted k-spectrum instead of counting the input")
		fs.StringVar(&f.saveSpec, "save-spectrum", "", "persist the run's k-spectrum to this path")
		fs.BoolVar(&f.mapSpec, "map-spectrum", true, "serve -load-spectrum zero-copy off a read-only memory mapping (false = copy with eager validation)")
	}
	fs.StringVar(&f.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.memprofile, "memprofile", "", "write a heap profile to this file on exit")
}

// engineOptions translates the shared flags into cross-engine run
// options, parsing the memory budget.
func (f *correctFlags) engineOptions() ([]engine.Option, error) {
	budget, err := core.ParseByteSize(f.memBudget)
	if err != nil {
		return nil, err
	}
	if f.resume && f.ckptDir == "" {
		return nil, errors.New("-resume requires -checkpoint")
	}
	return []engine.Option{
		engine.WithWorkers(f.workers),
		engine.WithShards(f.shards),
		engine.WithMemoryBudget(budget),
		engine.WithSpectrumPath(f.loadSpec),
		engine.WithSpectrumMode(f.spectrumMode()),
		engine.WithSaveSpectrumPath(f.saveSpec),
		engine.WithCheckpointDir(f.ckptDir),
		engine.WithResume(f.resume),
		engine.WithCheckpointEvery(f.ckptEvery),
	}, nil
}

// spectrumMode maps the -map-spectrum flag onto the engine's load mode.
func (f *correctFlags) spectrumMode() engine.SpectrumMode {
	if f.mapSpec {
		return engine.SpectrumMapped
	}
	return engine.SpectrumCopied
}

// opener returns the re-openable chunked source over the input file the
// two-pass streaming engines require.
func (f *correctFlags) opener() engine.SourceOpener {
	path := f.in
	return func() (engine.Source, error) {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return fastq.NewChunkReader(file, 0), nil
	}
}

// signalContext is the interactive-run context: cancelled on SIGINT or
// SIGTERM, so Ctrl-C aborts worker pools and spill/merge loops instead of
// leaving a half-written run behind. The returned stop func releases the
// signal handler.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// correctToFile drives an engine's streaming correction from f.in to
// f.out under a signal-aware context, returning the engine result. The
// output is staged in a temp file and renamed into place only on
// success, so a failed or cancelled run (bad spectrum k, empty input,
// Ctrl-C) never destroys a previous run's output — the historical CLIs
// guaranteed this by validating before os.Create; the rename makes it
// hold for every engine and failure mode.
func (f *correctFlags) correctToFile(eng engine.Engine, run *engine.Run) (*engine.Result, error) {
	ctx, stop := signalContext()
	defer stop()
	out, commit, err := createOutput(f.out)
	if err != nil {
		return nil, err
	}
	committed := false
	defer func() {
		if !committed {
			commit(false)
		}
	}()
	w := fastq.NewWriter(out)
	sink := engine.SinkFunc(func(orig, corrected []seq.Read) error {
		return w.WriteChunk(corrected)
	})
	res, err := eng.CorrectStream(ctx, f.opener(), sink, run)
	if err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	if err := commit(true); err != nil {
		return nil, err
	}
	committed = true
	return res, nil
}

// createOutput opens the correction output for writing. Regular-file
// destinations are staged in a same-directory temp file and renamed into
// place only when commit(true) runs — so a failed or cancelled run never
// destroys a previous run's output. Destinations that exist and are not
// regular files (/dev/null, FIFOs, symlinked sinks — the README's
// spectrum-build recipe discards output through /dev/null) cannot be
// renamed over and are written directly, matching the historical
// os.Create behavior. commit(false) abandons the attempt.
func createOutput(path string) (*os.File, func(success bool) error, error) {
	if fi, err := os.Lstat(path); err == nil && !fi.Mode().IsRegular() {
		out, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return out, func(success bool) error {
			if !success {
				out.Close()
				return nil
			}
			return out.Close()
		}, nil
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage in the destination directory, not
		// os.TempDir() — the final rename cannot cross filesystems.
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, nil, err
	}
	commit := func(success bool) error {
		if !success {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil
		}
		// CreateTemp's 0600 would surprise pipelines that read the
		// output as another user; match os.Create's effective mode
		// before publishing.
		if err := tmp.Chmod(0o644); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		return os.Rename(tmp.Name(), path)
	}
	return tmp, commit, nil
}
