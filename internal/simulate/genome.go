// Package simulate synthesizes the datasets the dissertation evaluates on:
// reference genomes with controlled repeat content (Table 3.1), Illumina-like
// short reads produced through position-specific misread probability matrices
// (§3.4.1), and 454-like metagenomic 16S rRNA read pools with ground-truth
// taxonomy (Chapter 4).
//
// The paper's real SRA datasets are proprietary-scale downloads; this package
// is the documented substitute (see DESIGN.md): it exercises the identical
// code paths and, because it records ground truth, enables the exact
// base-level evaluation the paper performs by proxy through read mapping.
package simulate

import (
	"fmt"
	"math/rand"
)

// Profile is a base composition over A, C, G, T. The dissertation uses the
// composition of a piece of the B73 maize genome for its synthetic
// references (§3.4.1).
type Profile [4]float64

// MaizeProfile is the composition quoted in §3.4.1: A 28%, C 23%, G 22%, T 27%.
var MaizeProfile = Profile{0.28, 0.23, 0.22, 0.27}

// UniformProfile draws the four bases with equal probability.
var UniformProfile = Profile{0.25, 0.25, 0.25, 0.25}

func (p Profile) validate() error {
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			return fmt.Errorf("simulate: negative base frequency %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("simulate: base frequencies sum to %v, want 1", sum)
	}
	return nil
}

func (p Profile) draw(rng *rand.Rand) byte {
	const bases = "ACGT"
	u := rng.Float64()
	acc := 0.0
	for i := 0; i < 3; i++ {
		acc += p[i]
		if u < acc {
			return bases[i]
		}
	}
	return 'T'
}

// RandomGenome generates a random reference sequence of n bases drawn i.i.d.
// from the profile.
func RandomGenome(n int, p Profile, rng *rand.Rand) ([]byte, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := make([]byte, n)
	for i := range g {
		g[i] = p.draw(rng)
	}
	return g, nil
}

// RepeatSpec describes one family of embedded repeats, matching the
// "(length, multiplicity)" notation of Table 3.1: Count copies of a single
// Length-base element are placed in the genome. Divergence mutates each
// copy independently by that fraction of positions, producing the
// nearly-identical repeats that Chapter 3 identifies as the hard case —
// rare variants of a high-frequency element look exactly like sequencing
// errors to conventional correctors.
type RepeatSpec struct {
	Length     int
	Count      int
	Divergence float64
}

// RepeatGenome is a synthetic reference with known repeat structure.
type RepeatGenome struct {
	Seq []byte
	// RepeatSpans lists the half-open [start,end) intervals occupied by
	// repeat copies, in genome order.
	RepeatSpans [][2]int
	// RepeatFraction is the fraction of genome length covered by repeats.
	RepeatFraction float64
}

// GenomeWithRepeats builds a totalLen-base genome in which the given repeat
// families are embedded at random non-overlapping positions, emulating the
// type 1(a) references of §3.4.1. Each family's element is itself drawn from
// the profile; all copies within a family are identical.
func GenomeWithRepeats(totalLen int, specs []RepeatSpec, p Profile, rng *rand.Rand) (*RepeatGenome, error) {
	repeatTotal := 0
	for _, s := range specs {
		if s.Length <= 0 || s.Count <= 0 {
			return nil, fmt.Errorf("simulate: invalid repeat spec %+v", s)
		}
		repeatTotal += s.Length * s.Count
	}
	if repeatTotal > totalLen {
		return nil, fmt.Errorf("simulate: repeats need %d bases but genome is %d", repeatTotal, totalLen)
	}
	background, err := RandomGenome(totalLen-repeatTotal, p, rng)
	if err != nil {
		return nil, err
	}
	// Choose the element sequence per family, then build the genome as a
	// shuffled interleaving of background segments and repeat copies.
	type copyJob struct{ elem []byte }
	var jobs []copyJob
	for _, s := range specs {
		elem, err := RandomGenome(s.Length, p, rng)
		if err != nil {
			return nil, err
		}
		for c := 0; c < s.Count; c++ {
			cp := elem
			if s.Divergence > 0 {
				cp = mutate(elem, s.Divergence, rng)
			}
			jobs = append(jobs, copyJob{cp})
		}
	}
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

	// Split the background into len(jobs)+1 random chunks and interleave.
	cuts := make([]int, len(jobs))
	for i := range cuts {
		cuts[i] = rng.Intn(len(background) + 1)
	}
	sortInts(cuts)
	g := &RepeatGenome{Seq: make([]byte, 0, totalLen)}
	prev := 0
	for i, job := range jobs {
		g.Seq = append(g.Seq, background[prev:cuts[i]]...)
		start := len(g.Seq)
		g.Seq = append(g.Seq, job.elem...)
		g.RepeatSpans = append(g.RepeatSpans, [2]int{start, len(g.Seq)})
		prev = cuts[i]
	}
	g.Seq = append(g.Seq, background[prev:]...)
	g.RepeatFraction = float64(repeatTotal) / float64(totalLen)
	return g, nil
}

func sortInts(a []int) {
	// Insertion sort: cut lists are tiny relative to genome work.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// RepeatLadder reproduces the three Table 3.1 synthetic designs at a given
// genome scale: 20% repeats as (1000,200)-equivalent, 50% as
// (500,400)+(1500,200), 80% adding (3000,100), all proportionally scaled so
// that the repeat fractions are preserved at smaller genome lengths.
// Copies within a family diverge by 1%, the nearly-identical-repeat regime
// Chapter 3 targets.
func RepeatLadder(totalLen int, fraction float64) []RepeatSpec {
	const div = 0.01
	// The paper's 1 Mb designs, expressed as fractions of genome length.
	switch {
	case fraction <= 0.25:
		return scaleSpecs(totalLen, []RepeatSpec{{1000, 200, div}}, 1e6)
	case fraction <= 0.55:
		return scaleSpecs(totalLen, []RepeatSpec{{500, 400, div}, {1500, 200, div}}, 1e6)
	default:
		return scaleSpecs(totalLen, []RepeatSpec{{500, 400, div}, {1500, 200, div}, {3000, 100, div}}, 1e6)
	}
}

func scaleSpecs(totalLen int, specs []RepeatSpec, refLen float64) []RepeatSpec {
	scale := float64(totalLen) / refLen
	out := make([]RepeatSpec, len(specs))
	for i, s := range specs {
		count := int(float64(s.Count)*scale + 0.5)
		if count < 2 {
			count = 2
		}
		length := s.Length
		// Keep elements sensible when the genome is very small.
		for length*count > totalLen/2 && length > 50 {
			length /= 2
		}
		out[i] = RepeatSpec{Length: length, Count: count, Divergence: s.Divergence}
	}
	return out
}
