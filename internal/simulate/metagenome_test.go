package simulate

import (
	"math/rand"
	"testing"

	"repro/internal/seq"
)

func TestNewTaxonomyStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultTaxonomyConfig()
	tax, err := NewTaxonomy(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Phyla * cfg.GeneraPerPhylum * cfg.SpeciesPerGenus
	if len(tax.Species) != want {
		t.Fatalf("species count %d want %d", len(tax.Species), want)
	}
	total := 0.0
	for _, sp := range tax.Species {
		if len(sp.Marker) != cfg.MarkerLen {
			t.Fatalf("marker length %d", len(sp.Marker))
		}
		total += sp.Abundance
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("abundances sum to %v", total)
	}
}

func TestTaxonomyDivergenceOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := DefaultTaxonomyConfig()
	tax, err := NewTaxonomy(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Average pairwise distance: same genus < same phylum < cross phylum.
	var sameGenus, samePhylum, cross []float64
	for i := range tax.Species {
		for j := i + 1; j < len(tax.Species); j++ {
			a, b := tax.Species[i], tax.Species[j]
			d := float64(seq.Hamming(a.Marker, b.Marker)) / float64(len(a.Marker))
			switch {
			case a.Taxon.Genus == b.Taxon.Genus:
				sameGenus = append(sameGenus, d)
			case a.Taxon.Phylum == b.Taxon.Phylum:
				samePhylum = append(samePhylum, d)
			default:
				cross = append(cross, d)
			}
		}
	}
	mg, mp, mc := mean(sameGenus), mean(samePhylum), mean(cross)
	if !(mg < mp && mp < mc) {
		t.Errorf("divergence ordering violated: genus %.3f phylum %.3f cross %.3f", mg, mp, mc)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestNewTaxonomyRejectsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewTaxonomy(TaxonomyConfig{MarkerLen: 100}, rng); err == nil {
		t.Error("expected config error")
	}
}

func TestSampleMetagenome(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tax, err := NewTaxonomy(DefaultTaxonomyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultMetagenomeConfig(3000)
	reads, err := SampleMetagenome(tax, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 3000 {
		t.Fatalf("got %d reads", len(reads))
	}
	minL, maxL, sumL := 1<<30, 0, 0
	bySpecies := map[int]int{}
	for _, r := range reads {
		L := len(r.Read.Seq)
		if L < cfg.MinLen {
			t.Fatalf("read below MinLen: %d", L)
		}
		minL = min(minL, L)
		maxL = max(maxL, L)
		sumL += L
		bySpecies[r.Taxon.Species]++
	}
	avg := sumL / len(reads)
	if avg < cfg.MeanLen-40 || avg > cfg.MeanLen+40 {
		t.Errorf("mean read length %d want ~%d", avg, cfg.MeanLen)
	}
	if maxL <= minL {
		t.Error("no length variation")
	}
	// Abundance skew: most-abundant species gets more reads than the least.
	most, least := 0, 1<<30
	for _, c := range bySpecies {
		most = max(most, c)
		least = min(least, c)
	}
	if most < 3*least {
		t.Errorf("abundance skew too weak: most %d least %d", most, least)
	}
}

func TestSampleMetagenomeErrorRate(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tax, _ := NewTaxonomy(DefaultTaxonomyConfig(), rng)
	cfg := DefaultMetagenomeConfig(500)
	cfg.ErrorRate = 0.02
	reads, err := SampleMetagenome(tax, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Each read should differ from its species marker only at error sites.
	mismatch, total := 0, 0
	for _, r := range reads {
		marker := tax.Species[r.Taxon.Species].Marker
		best := -1
		// Locate the read on the marker (exact positions are not recorded;
		// scan for the minimum-distance placement).
		bestD := 1 << 30
		for pos := 0; pos+len(r.Read.Seq) <= len(marker); pos++ {
			d := seq.Hamming(r.Read.Seq, marker[pos:pos+len(r.Read.Seq)])
			if d < bestD {
				bestD, best = d, pos
			}
		}
		_ = best
		mismatch += bestD
		total += len(r.Read.Seq)
	}
	rate := float64(mismatch) / float64(total)
	if rate > 0.03 {
		t.Errorf("realized error rate %.4f too high", rate)
	}
}
