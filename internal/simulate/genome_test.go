package simulate

import (
	"math/rand"
	"testing"
)

func TestRandomGenomeComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := RandomGenome(200000, MaizeProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	var counts [4]int
	idx := map[byte]int{'A': 0, 'C': 1, 'G': 2, 'T': 3}
	for _, ch := range g {
		counts[idx[ch]]++
	}
	for i, want := range MaizeProfile {
		got := float64(counts[i]) / float64(len(g))
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("base %d frequency %.3f want %.3f±0.01", i, got, want)
		}
	}
}

func TestRandomGenomeRejectsBadProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomGenome(10, Profile{0.5, 0.5, 0.5, 0.5}, rng); err == nil {
		t.Error("expected error for non-normalized profile")
	}
	if _, err := RandomGenome(10, Profile{-0.5, 0.5, 0.5, 0.5}, rng); err == nil {
		t.Error("expected error for negative frequency")
	}
}

func TestGenomeWithRepeatsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specs := []RepeatSpec{{Length: 100, Count: 10}, {Length: 50, Count: 20}}
	g, err := GenomeWithRepeats(10000, specs, UniformProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Seq) != 10000 {
		t.Fatalf("genome length = %d want 10000", len(g.Seq))
	}
	if len(g.RepeatSpans) != 30 {
		t.Fatalf("repeat spans = %d want 30", len(g.RepeatSpans))
	}
	wantFrac := float64(100*10+50*20) / 10000
	if g.RepeatFraction != wantFrac {
		t.Errorf("RepeatFraction = %v want %v", g.RepeatFraction, wantFrac)
	}
	// Spans are ordered, non-overlapping, in range.
	prev := 0
	for _, sp := range g.RepeatSpans {
		if sp[0] < prev || sp[1] <= sp[0] || sp[1] > len(g.Seq) {
			t.Fatalf("bad span %v (prev end %d)", sp, prev)
		}
		prev = sp[1]
	}
	// Copies within a family are identical (zero divergence): group by
	// span length.
	byLen := map[int][]string{}
	for _, sp := range g.RepeatSpans {
		l := sp[1] - sp[0]
		byLen[l] = append(byLen[l], string(g.Seq[sp[0]:sp[1]]))
	}
	for l, copies := range byLen {
		for _, c := range copies[1:] {
			if c != copies[0] {
				t.Errorf("length-%d repeat copies differ", l)
			}
		}
	}
}

func TestGenomeWithDivergentRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := GenomeWithRepeats(10000, []RepeatSpec{{Length: 200, Count: 10, Divergence: 0.02}}, UniformProfile, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Copies are near-identical: pairwise distance around 2 x 2%.
	first := g.Seq[g.RepeatSpans[0][0]:g.RepeatSpans[0][1]]
	for _, sp := range g.RepeatSpans[1:] {
		other := g.Seq[sp[0]:sp[1]]
		d := 0
		for i := range first {
			if first[i] != other[i] {
				d++
			}
		}
		frac := float64(d) / float64(len(first))
		if frac == 0 || frac > 0.1 {
			t.Errorf("copy divergence %.3f outside (0, 0.1]", frac)
		}
	}
}

func TestGenomeWithRepeatsOversized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenomeWithRepeats(100, []RepeatSpec{{Length: 60, Count: 2}}, UniformProfile, rng); err == nil {
		t.Error("expected error when repeats exceed genome")
	}
	if _, err := GenomeWithRepeats(100, []RepeatSpec{{Length: 0, Count: 2}}, UniformProfile, rng); err == nil {
		t.Error("expected error for zero-length repeat")
	}
}

func TestRepeatLadderFractions(t *testing.T) {
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		specs := RepeatLadder(100000, frac)
		total := 0
		for _, s := range specs {
			total += s.Length * s.Count
		}
		got := float64(total) / 100000
		if got < frac*0.5 || got > frac*1.5 {
			t.Errorf("fraction %.2f: ladder covers %.2f", frac, got)
		}
	}
}
